module v6scan

go 1.23
