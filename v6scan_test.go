package v6scan

import (
	"bytes"
	"context"
	"testing"
	"time"

	"v6scan/internal/layers"
	"v6scan/internal/mawi"
	"v6scan/internal/netaddr6"
)

// TestFacadeEndToEnd exercises the public API surface the way a
// downstream user would: build records, run the detector, write and
// re-read a log, round-trip a pcap.
func TestFacadeEndToEnd(t *testing.T) {
	det := NewDetector(DefaultDetectorConfig())
	ts := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	src := netaddr6.MustAddr("2001:db8:bad::1")
	var recs []Record
	for i := 0; i < 150; i++ {
		r := Record{
			Time: ts, Src: src,
			Dst:   netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(i+1)),
			Proto: layers.ProtoTCP, DstPort: 22, Length: 60,
		}
		recs = append(recs, r)
		if err := det.Process(r); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Second)
	}
	det.Finish()
	scans := det.Scans(Agg64)
	if len(scans) != 1 || scans[0].Dsts != 150 {
		t.Fatalf("scans: %+v", scans)
	}
	if scans[0].Class() != SinglePort {
		t.Errorf("class: %v", scans[0].Class())
	}

	// Log round trip.
	var buf bytes.Buffer
	w := WriteLog(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lr := ReadLog(&buf)
	got, err := lr.Next()
	if err != nil || got != recs[0] {
		t.Fatalf("log round trip: %+v, %v", got, err)
	}
}

// TestFacadeBuilderBatchEndToEnd is the acceptance check for the
// fluent public API: a policy+artifact-filtered pipeline from a binary
// LogSource into the sharded detector stays batch-to-batch
// (Pipeline.Batched reports true) and detects the same scan the
// record-fed facade detector does.
func TestFacadeBuilderBatchEndToEnd(t *testing.T) {
	ts := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	src := netaddr6.MustAddr("2001:db8:bad::1")
	var buf bytes.Buffer
	w := WriteLog(&buf)
	for i := 0; i < 200; i++ {
		r := Record{
			Time: ts, Src: src,
			Dst:   netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(i+1)),
			Proto: layers.ProtoTCP, DstPort: 22, Length: 60,
		}
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Second)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	det := NewShardedDetector(DefaultDetectorConfig(), 4)
	sink := NewShardedSink(det)
	var counted *PipelineCounter
	p := From(NewLogSource(&buf)).
		Policy(DefaultCollectPolicy()).
		Artifact().
		Counter(&counted).
		Build(sink)
	if !p.Batched() {
		t.Fatal("filtered log→sharded pipeline must be batch-to-batch")
	}
	if err := p.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if counted.Count() != 200 {
		t.Fatalf("counted %d records, want 200", counted.Count())
	}
	scans := sink.Result().Scans(Agg64)
	if len(scans) != 1 || scans[0].Dsts != 200 {
		t.Fatalf("scans: %+v", scans)
	}
}

func TestFacadePcap(t *testing.T) {
	var buf bytes.Buffer
	recs := []Record{{
		Time: time.Unix(1622505600, 0).UTC(),
		Src:  netaddr6.MustAddr("2001:db8::1"), Dst: netaddr6.MustAddr("2001:db8::2"),
		Proto: layers.ProtoTCP, SrcPort: 4000, DstPort: 22, Length: 60,
	}}
	if err := mawi.WritePcapDay(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, skipped, err := RecordsFromPcap(&buf)
	if err != nil || skipped != 0 || len(got) != 1 {
		t.Fatalf("pcap: %v %d %d", err, skipped, len(got))
	}
	if got[0].Dst != recs[0].Dst || got[0].DstPort != 22 {
		t.Errorf("record: %+v", got[0])
	}
}

func TestFacadeAggregateAndClassify(t *testing.T) {
	a := netaddr6.MustAddr("2001:db8:1:2:3::9")
	if Aggregate(a, Agg48) != netaddr6.MustPrefix("2001:db8:1::/48") {
		t.Error("Aggregate broken")
	}
	ports := map[Service]uint64{{Proto: layers.ProtoTCP, Port: 22}: 10}
	if ClassifyPorts(ports) != SinglePort {
		t.Error("ClassifyPorts broken")
	}
}

func TestFacadeMAWIDetector(t *testing.T) {
	det := NewMAWIDetector(DefaultMAWIConfig())
	ts := time.Date(2021, 6, 1, 5, 0, 0, 0, time.UTC)
	for i := 0; i < 120; i++ {
		det.Process(Record{
			Time: ts, Src: netaddr6.MustAddr("2001:db8:9::1"),
			Dst:   netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(i+1)),
			Proto: layers.ProtoICMPv6, Length: 48,
		})
		ts = ts.Add(time.Second)
	}
	scans := det.Finish()
	if len(scans) != 1 || scans[0].Dsts != 120 {
		t.Fatalf("mawi scans: %+v", scans)
	}
}
