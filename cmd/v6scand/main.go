// v6scand is the long-running serving counterpart of the v6scan batch
// CLI: it follows a growing binary firewall log (the record format of
// cmd/telescope-sim and tools/mklog), runs the dynamic-aggregation
// IDS continuously with stream-time eviction and periodic
// checkpoints, and serves the results over HTTP:
//
//	GET /healthz            liveness + generation
//	GET /api/state          serving snapshot (records, candidates, tail progress)
//	GET /api/sessions       IDS working set per aggregation level
//	GET /api/alerts         published alerts, paginated (?offset=&limit=)
//	GET /api/alerts/stream  Server-Sent Events alert feed (?from=)
//	GET /metrics            Prometheus text exposition
//
// Alerted prefixes can additionally be mirrored into an atomically
// rewritten one-CIDR-per-line blocklist file (-blocklist) for a
// firewall reload hook to consume.
//
// Lifecycle: SIGTERM/SIGINT drain everything durable in the log, cut
// a final checkpoint (with -checkpoint-dir), and exit; SIGHUP drains,
// snapshots, and restarts the pipeline in place with the engine state
// carried over — the log path is reopened, so rotation schemes that
// replace the file are picked up. After a crash or a stop, -resume
// restores the latest checkpoint and skips the already-processed log
// prefix; the alerts of the exact tick a periodic checkpoint was cut
// at may be re-published (at-least-once delivery).
//
//	v6scand -i /var/log/fw.log -listen 127.0.0.1:8080
//	v6scand -i fw.log -shards 8 -advance-every 1m \
//	        -checkpoint-every 1h -checkpoint-dir ck -resume \
//	        -blocklist block.rules
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"v6scan/internal/ids"
	"v6scan/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "v6scand:", err)
		os.Exit(1)
	}
}

// run is the testable seam: flags in, exit error out.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("v6scand", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input     = fs.String("i", "", "binary firewall log to tail (required; may not exist yet)")
		listen    = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		shards    = fs.Int("shards", 1, "IDS worker shards (>1 enables the sharded engine)")
		minDsts   = fs.Int("min-dsts", 0, "destination threshold for alerting (0 = engine default)")
		timeout   = fs.Duration("timeout", 0, "idle eviction timeout (0 = engine default)")
		advance   = fs.Duration("advance-every", time.Minute, "stream-time tick cadence (alerting latency)")
		ckptEvery = fs.Duration("checkpoint-every", 0, "stream-time checkpoint cadence (0 = final checkpoint only)")
		ckptDir   = fs.String("checkpoint-dir", "", "checkpoint directory (enables final + periodic snapshots)")
		resume    = fs.Bool("resume", false, "restore the latest checkpoint before tailing")
		poll      = fs.Duration("poll", 0, "tail growth-poll interval (0 = default)")
		blocklist = fs.String("blocklist", "", "CIDR rule file to mirror alerted prefixes into")
		filter    = fs.Bool("filter", false, "apply the 5-duplicate artifact pre-filter")
		alertCap  = fs.Int("alert-backlog", 0, "paginable alert backlog bound (0 = default 4096)")
		sseBuf    = fs.Int("sse-buffer", 0, "per-SSE-client buffer bound (0 = default 64)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *input == "" {
		fs.Usage()
		return fmt.Errorf("-i is required")
	}

	d, err := serve.NewDaemon(serve.Config{
		LogPath:         *input,
		Shards:          *shards,
		IDS:             ids.Config{MinDsts: *minDsts, Timeout: *timeout},
		AdvanceEvery:    *advance,
		CheckpointEvery: *ckptEvery,
		CheckpointDir:   *ckptDir,
		Resume:          *resume,
		Poll:            *poll,
		ArtifactFilter:  *filter,
		BlocklistPath:   *blocklist,
		AlertBacklog:    *alertCap,
		SSEBuffer:       *sseBuf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	fmt.Fprintf(stdout, "v6scand: tailing %s, serving http://%s\n", *input, ln.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sig)
	go func() {
		for s := range sig {
			if s == syscall.SIGHUP {
				fmt.Fprintln(stdout, "v6scand: reloading (SIGHUP)")
				d.Reload()
				continue
			}
			fmt.Fprintf(stdout, "v6scand: draining (%v)\n", s)
			cancel()
			return
		}
	}()

	err = d.Run(ctx)
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	srv.Shutdown(shCtx)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "v6scand: stopped cleanly")
	return nil
}
