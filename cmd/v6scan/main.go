// v6scan detects large-scale IPv6 scans in a firewall log (the binary
// record format of cmd/telescope-sim) or a classic pcap capture, using
// the paper's scan definition with configurable threshold, timeout and
// aggregation levels. Input streams through the standard pipeline —
// optional 5-duplicate artifact pre-filter into the scan detector,
// sharded across worker goroutines with -shards.
//
// With -ids the offline detector is replaced by the inline
// dynamic-aggregation IDS engine (sketched destination sets, bounded
// memory): output is the blocklist-recommendation alert list instead
// of per-level scan tables. -shards applies to the IDS path too,
// partitioning candidate state by coarsest-level source prefix across
// worker shards; alerts are byte-identical at any shard count (unless
// the engine's MaxCandidates bound kicks in, which each shard applies
// to its own tables).
//
//	v6scan -i telescope.log                  # offline detector
//	v6scan -i telescope.log -shards 8        # sharded detector
//	v6scan -i telescope.log -ids -shards 8   # sharded inline IDS
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"v6scan"
)

func main() {
	var (
		input   = flag.String("i", "", "input file (.log binary records or .pcap); - for stdin log")
		minDsts = flag.Int("min-dsts", 100, "minimum distinct destinations per scan")
		timeout = flag.Duration("timeout", time.Hour, "maximum packet inter-arrival time")
		levels  = flag.String("agg", "128,64,48", "comma-separated aggregation prefix lengths")
		topN    = flag.Int("top", 20, "print at most N scans per level (0 = all)")
		filter  = flag.Bool("filter", false, "apply the 5-duplicate artifact pre-filter first")
		shards  = flag.Int("shards", 1, "detector/IDS worker shards (1 = serial; output is identical)")
		useIDS  = flag.Bool("ids", false, "run the inline dynamic-aggregation IDS instead of the offline detector")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := v6scan.DefaultDetectorConfig()
	cfg.MinDsts = *minDsts
	cfg.Timeout = *timeout
	cfg.Levels = nil
	for _, part := range strings.Split(*levels, ",") {
		var bits int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &bits); err != nil {
			log.Fatalf("bad -agg element %q", part)
		}
		lvl := v6scan.AggLevel(bits)
		if !lvl.Valid() {
			log.Fatalf("invalid aggregation level %d", bits)
		}
		cfg.Levels = append(cfg.Levels, lvl)
	}

	src, err := openSource(*input)
	if err != nil {
		log.Fatal(err)
	}

	if *useIDS {
		runIDS(src, cfg, *shards, *filter, *topN)
		return
	}

	// Builder chain: optional artifact filter → counter → detector
	// (plain when serial, sharded otherwise; Detect returns the merged
	// view either way). The counter sits past the filter so
	// "processed" reports what detection actually consumed.
	b := v6scan.From(src)
	if *filter {
		b.Artifact()
	}
	var counted *v6scan.PipelineCounter
	b.Counter(&counted)
	det, err := b.Detect(context.Background(), cfg, *shards)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d records\n", counted.Count())
	for _, lvl := range cfg.Levels {
		scans := det.Scans(lvl)
		fmt.Printf("\n=== %s: %d scans ===\n", lvl, len(scans))
		sort.Slice(scans, func(i, j int) bool { return scans[i].Packets > scans[j].Packets })
		for i, s := range scans {
			if *topN > 0 && i >= *topN {
				fmt.Printf("  … %d more\n", len(scans)-i)
				break
			}
			fmt.Printf("  %-30s %8d pkts %6d dsts %5d ports %3d srcs %v [%s]\n",
				s.Source, s.Packets, s.Dsts, s.NumPorts(), s.SrcAddrs,
				s.Duration().Round(time.Second), s.Class())
		}
	}
}

// runIDS streams the source through the inline dynamic-aggregation
// engine (sharded when -shards > 1) and prints the merged alert list —
// the blocklist recommendations the Discussion section calls for.
func runIDS(src v6scan.RecordSource, det v6scan.DetectorConfig, shards int, filter bool, topN int) {
	cfg := v6scan.DefaultIDSConfig()
	cfg.MinDsts = det.MinDsts
	cfg.Timeout = det.Timeout
	cfg.Levels = det.Levels

	// Tick once per minute of stream time, the inline-deployment
	// cadence: idle candidates are evicted (and their alerts emitted)
	// mid-stream instead of all pooling until Flush. The cadence and
	// drop introspection need the sink in hand, so the builder
	// terminates through RunInto rather than the IDS helper.
	const tickEvery = time.Minute
	var idsSink v6scan.TerminalSink
	var drained func() []v6scan.IDSAlert
	var dropped func() uint64
	if shards > 1 {
		s := v6scan.NewShardedIDSSink(v6scan.NewShardedIDS(cfg, shards))
		s.TickEvery = tickEvery
		idsSink = s
		drained = s.Result
		dropped = s.E.DroppedCandidates
	} else {
		s := v6scan.NewIDSSink(v6scan.NewIDS(cfg))
		s.TickEvery = tickEvery
		idsSink = s
		drained = s.Result
		dropped = s.E.DroppedCandidates
	}
	b := v6scan.From(src)
	if filter {
		b.Artifact()
	}
	var counted *v6scan.PipelineCounter
	b.Counter(&counted)
	if err := b.RunInto(context.Background(), idsSink); err != nil {
		log.Fatal(err)
	}

	alerts := drained()
	fmt.Printf("processed %d records: %d IDS alerts\n", counted.Count(), len(alerts))
	if n := dropped(); n > 0 {
		fmt.Printf("  warning: %d candidates dropped by the MaxCandidates bound — alerts are incomplete\n", n)
	}
	for i, a := range alerts {
		if topN > 0 && i >= topN {
			fmt.Printf("  … %d more\n", len(alerts)-i)
			break
		}
		fmt.Printf("  %s\n", a)
	}
}

// openSource returns a pipeline source for the input path: a streaming
// log reader, or a pcap decode materialized and sorted (detection
// requires time order; captures normally are ordered, so the
// defensive sort is the run-aware one — a single linear scan when the
// capture is in order, bounded run merges when it is not).
func openSource(path string) (v6scan.RecordSource, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r = bufio.NewReaderSize(f, 1<<20)
	}
	if strings.HasSuffix(path, ".pcap") {
		recs, skipped, err := v6scan.RecordsFromPcap(r)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "skipped %d undecodable packets\n", skipped)
		}
		v6scan.SortRecordsByTime(recs)
		return v6scan.NewSliceSource(recs), nil
	}
	return v6scan.NewLogSource(r), nil
}
