// v6scan detects large-scale IPv6 scans in a firewall log (the binary
// record format of cmd/telescope-sim) or a classic pcap capture, using
// the paper's scan definition with configurable threshold, timeout and
// aggregation levels.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"v6scan"
)

func main() {
	var (
		input   = flag.String("i", "", "input file (.log binary records or .pcap); - for stdin log")
		minDsts = flag.Int("min-dsts", 100, "minimum distinct destinations per scan")
		timeout = flag.Duration("timeout", time.Hour, "maximum packet inter-arrival time")
		levels  = flag.String("agg", "128,64,48", "comma-separated aggregation prefix lengths")
		topN    = flag.Int("top", 20, "print at most N scans per level (0 = all)")
		filter  = flag.Bool("filter", false, "apply the 5-duplicate artifact pre-filter first")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg := v6scan.DefaultDetectorConfig()
	cfg.MinDsts = *minDsts
	cfg.Timeout = *timeout
	cfg.Levels = nil
	for _, part := range strings.Split(*levels, ",") {
		var bits int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &bits); err != nil {
			log.Fatalf("bad -agg element %q", part)
		}
		lvl := v6scan.AggLevel(bits)
		if !lvl.Valid() {
			log.Fatalf("invalid aggregation level %d", bits)
		}
		cfg.Levels = append(cfg.Levels, lvl)
	}
	det := v6scan.NewDetector(cfg)

	records, err := readInput(*input)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	if *filter {
		af := v6scan.NewArtifactFilter()
		process := func(rs []v6scan.Record) {
			for _, r := range rs {
				n++
				if err := det.Process(r); err != nil {
					log.Fatal(err)
				}
			}
		}
		for _, r := range records {
			process(af.Push(r))
		}
		process(af.Close())
	} else {
		for _, r := range records {
			n++
			if err := det.Process(r); err != nil {
				log.Fatal(err)
			}
		}
	}
	det.Finish()

	fmt.Printf("processed %d records\n", n)
	for _, lvl := range cfg.Levels {
		scans := det.Scans(lvl)
		fmt.Printf("\n=== %s: %d scans ===\n", lvl, len(scans))
		sort.Slice(scans, func(i, j int) bool { return scans[i].Packets > scans[j].Packets })
		for i, s := range scans {
			if *topN > 0 && i >= *topN {
				fmt.Printf("  … %d more\n", len(scans)-i)
				break
			}
			fmt.Printf("  %-30s %8d pkts %6d dsts %5d ports %3d srcs %v [%s]\n",
				s.Source, s.Packets, s.Dsts, s.NumPorts(), s.SrcAddrs,
				s.Duration().Round(time.Second), s.Class())
		}
	}
}

func readInput(path string) ([]v6scan.Record, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = bufio.NewReaderSize(f, 1<<20)
	}
	if strings.HasSuffix(path, ".pcap") {
		recs, skipped, err := v6scan.RecordsFromPcap(r)
		if err != nil {
			return nil, err
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "skipped %d undecodable packets\n", skipped)
		}
		// Detection requires time order; captures normally are ordered,
		// but sort defensively.
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
		return recs, nil
	}
	lr := v6scan.ReadLog(r)
	var out []v6scan.Record
	for {
		rec, err := lr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
