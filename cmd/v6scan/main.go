// v6scan detects large-scale IPv6 scans in a firewall log (the binary
// record format of cmd/telescope-sim) or a classic pcap capture, using
// the paper's scan definition with configurable threshold, timeout and
// aggregation levels. Input streams through the standard pipeline —
// optional 5-duplicate artifact pre-filter into the scan detector,
// sharded across worker goroutines with -shards.
//
// Ingestion can be streaming and memory-bounded end to end: with
// -window, pcap captures decode incrementally through a
// bounded-lateness reorder buffer holding one window of records
// instead of the whole capture (the default, -window 0, keeps the
// materialize-and-sort behavior, which tolerates any disorder), and
// -advance-every forwards a stream-time eviction horizon to every
// detector shard so session state for idle sources is released
// continuously instead of accumulating until the end of input. Output
// is byte-identical whichever path is used, at any shard count, as
// long as capture disorder stays within the window (a record trailing
// the stream by more than the window aborts the run — rerun with a
// larger window or -window 0).
//
// With -ids the offline detector is replaced by the inline
// dynamic-aggregation IDS engine (sketched destination sets, bounded
// memory): output is the blocklist-recommendation alert list instead
// of per-level scan tables. -shards applies to the IDS path too,
// partitioning candidate state by coarsest-level source prefix across
// worker shards; alerts are byte-identical at any shard count (unless
// the engine's MaxCandidates bound kicks in, which each shard applies
// to its own tables). -advance-every overrides the engine's default
// one-minute Tick cadence.
//
// Binary-log ingest is parallel: each log decodes in record-aligned
// chunks across -decode-workers goroutines (default one per CPU), and
// several log files given as positional arguments — day-logs,
// typically — k-way merge into a single time-ordered stream, so a
// month of logs is one run. Output is byte-identical to a serial
// single-file run at any worker count. Stdin (-) and pcap inputs stay
// single-input and serial-decode.
//
// Long runs survive interruption with -checkpoint-dir: the terminal's
// state is snapshotted every -checkpoint-every of stream time, at cuts
// aligned with the eviction cadence, into versioned checksummed files.
// Rerunning with -resume restores the latest snapshot (re-partitioned
// to the current -shards, which may differ from the interrupted run's)
// and replays the same input with the already-processed prefix
// skipped; output is byte-identical to the uninterrupted run. The
// detection parameters (-min-dsts, -timeout, -agg) travel inside the
// snapshot, so the resumed run uses the interrupted run's.
//
//	v6scan -i telescope.log                  # offline detector
//	v6scan -i telescope.log -shards 8        # sharded detector
//	v6scan -i capture.pcap -window 5s        # streaming pcap reorder
//	v6scan -i telescope.log -advance-every 10m -shards 8
//	v6scan -i telescope.log -ids -shards 8   # sharded inline IDS
//	v6scan -shards 8 day1.log day2.log       # merged multi-day run
//	v6scan -decode-workers 4 telescope.log   # bounded decode parallelism
//	v6scan -checkpoint-dir ck day*.log       # snapshot hourly
//	v6scan -checkpoint-dir ck -resume day*.log  # pick up after a crash
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"v6scan"
)

// errUsage marks usage errors whose diagnostics have already been
// written to stderr (bad flags, missing input), so main neither
// double-prints nor stays silent. Usage errors exit 2; runtime
// failures exit 1 — the pre-refactor flag.ExitOnError / log.Fatal
// contract.
var errUsage = errors.New("usage error")

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp): // -h: usage already printed, success
	case errors.Is(err, errUsage): // diagnostic already printed
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "v6scan:", err)
		os.Exit(1)
	}
}

// run is the whole command behind a testable seam: flags in, report on
// stdout, diagnostics on stderr (the golden end-to-end tests drive it
// directly and pin stdout byte for byte).
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("v6scan", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		input    = fs.String("i", "", "input file (.log binary records or .pcap); - for stdin log; additional log files may follow the flags as positional arguments and are merged in time order")
		workers  = fs.Int("decode-workers", 0, "parallel decode workers for binary log files (0 = one per CPU; stdin and pcap decode serially)")
		minDsts  = fs.Int("min-dsts", 100, "minimum distinct destinations per scan")
		timeout  = fs.Duration("timeout", time.Hour, "maximum packet inter-arrival time")
		levels   = fs.String("agg", "128,64,48", "comma-separated aggregation prefix lengths")
		topN     = fs.Int("top", 20, "print at most N scans per level (0 = all)")
		filter   = fs.Bool("filter", false, "apply the 5-duplicate artifact pre-filter first")
		shards   = fs.Int("shards", 1, "detector/IDS worker shards (1 = serial; output is identical)")
		useIDS   = fs.Bool("ids", false, "run the inline dynamic-aggregation IDS instead of the offline detector")
		window   = fs.Duration("window", 0, "repair at most this much timestamp disorder in flight through a reorder buffer bounded to one window of records; for pcap, 0 materializes the capture and sorts it instead (tolerating any disorder), for logs 0 streams as-is (logs are written in order)")
		advEvery = fs.Duration("advance-every", 0, "stream-time eviction cadence: periodically close idle detector sessions / tick the IDS, bounding memory (0 = only at end of input)")
		ckptDir  = fs.String("checkpoint-dir", "", "write versioned snapshots of detector/IDS state into this directory on the -checkpoint-every cadence; with -resume, also where the snapshot to restore is found")
		ckptEv   = fs.Duration("checkpoint-every", time.Hour, "stream-time cadence between checkpoints (needs -checkpoint-dir)")
		resume   = fs.Bool("resume", false, "restore the latest checkpoint in -checkpoint-dir and skip the already-processed input prefix")
		publish  = fs.Int("publish", 0, "distributed demonstration: split the input log across N publisher pipelines feeding one aggregator over an in-process event bus (output is identical to the direct run; needs a single binary log input)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return errUsage // the FlagSet already printed the diagnostic
	}
	inputs := fs.Args()
	if *input != "" {
		inputs = append([]string{*input}, inputs...)
	}
	if len(inputs) == 0 {
		fmt.Fprintln(stderr, "v6scan: missing input (-i file, or log files as arguments)")
		fs.Usage()
		return errUsage
	}

	cfg := v6scan.DefaultDetectorConfig()
	cfg.MinDsts = *minDsts
	cfg.Timeout = *timeout
	cfg.Levels = nil
	for _, part := range strings.Split(*levels, ",") {
		var bits int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &bits); err != nil {
			return fmt.Errorf("bad -agg element %q", part)
		}
		lvl := v6scan.AggLevel(bits)
		if !lvl.Valid() {
			return fmt.Errorf("invalid aggregation level %d", bits)
		}
		cfg.Levels = append(cfg.Levels, lvl)
	}

	if *ckptDir != "" && *ckptEv <= 0 {
		return fmt.Errorf("-checkpoint-dir needs a positive -checkpoint-every")
	}
	var resumed *v6scan.ResumedSink
	if *resume {
		if *ckptDir == "" {
			return fmt.Errorf("-resume needs -checkpoint-dir")
		}
		// A crashed earlier run may have stranded a half-written temp in
		// the checkpoint dir; clean those out before picking a snapshot.
		if _, err := v6scan.SweepCheckpointTemps(*ckptDir); err != nil {
			return err
		}
		path, err := v6scan.LatestCheckpoint(*ckptDir)
		if err != nil {
			return err
		}
		if path == "" {
			fmt.Fprintln(stderr, "v6scan: no checkpoint to resume from; starting fresh")
		} else if resumed, err = v6scan.ResumeCheckpoint(path, *shards); err != nil {
			return fmt.Errorf("resuming %s: %w", path, err)
		}
	}

	var (
		b             *v6scan.Builder
		reportSkipped func()
		closer        io.Closer
		waitPubs      func() error
		err           error
	)
	if *publish > 0 {
		if *resume {
			// The partition level must match the detection levels, which
			// on resume travel inside the snapshot; keep the combination
			// out of scope rather than partially honoring the flags.
			return fmt.Errorf("-publish cannot be combined with -resume")
		}
		b, waitPubs, closer, err = openPublishSplit(inputs, *publish, *window,
			v6scan.CoarsestLevel(cfg.Levels))
	} else {
		b, reportSkipped, closer, err = openSource(inputs, *window, *workers, stderr)
	}
	if err != nil {
		return err
	}
	if closer != nil {
		defer closer.Close()
	}
	if *advEvery > 0 {
		b.AdvanceEvery(*advEvery)
	}
	if *ckptDir != "" {
		b.CheckpointEvery(*ckptEv, *ckptDir)
	}
	if *filter {
		b.Artifact()
	}
	// On resume the whole input replays — stateful stages (the artifact
	// filter) rebuild their state from the full stream — and only the
	// terminal's view is cut, skipping the prefix the snapshot already
	// covers. The skip precedes the counter so "processed" reports what
	// detection actually consumed this run.
	if resumed != nil {
		b.ResumeFrom(resumed.Horizon)
	}
	// The counter sits past the filter so "processed" reports what
	// detection actually consumed. The counter stage is created at
	// build time (inside the terminal helpers), so the helpers take
	// the out-pointer's address.
	var counted *v6scan.PipelineCounter
	b.Counter(&counted)

	if *useIDS {
		err = runIDS(b, stdout, cfg, *shards, *advEvery, *topN, &counted, resumed)
	} else {
		err = runDetect(b, stdout, cfg, *shards, *topN, &counted, resumed)
	}
	if waitPubs != nil {
		if perr := waitPubs(); err == nil {
			err = perr
		}
	}
	if reportSkipped != nil {
		reportSkipped()
	}
	return err
}

// publishTopics is the per-publisher topic fan-out of -publish: each
// publisher partitions its stream across this many prefix-keyed topics
// (the aggregator merges publishers × topics of them).
const publishTopics = 4

// openPublishSplit is the -publish input path: the single log file is
// split into n contiguous record-aligned chunks, each chunk replayed
// by its own publisher pipeline onto an in-process event bus, and the
// returned builder is the aggregator consuming all topics merged in
// time order — the collectors→aggregator deployment in one process.
// The subscriber's subscriptions attach before any publisher starts,
// so no envelope can be lost. The returned wait func joins the
// publishers and surfaces the first real publisher error (cancelled
// publishes after a subscriber failure are expected teardown, not
// errors).
func openPublishSplit(inputs []string, n int, window time.Duration, level v6scan.AggLevel) (*v6scan.Builder, func() error, io.Closer, error) {
	if len(inputs) != 1 || inputs[0] == "-" || strings.HasSuffix(inputs[0], ".pcap") {
		return nil, nil, nil, fmt.Errorf("-publish needs exactly one binary log file input")
	}
	f, err := os.Open(inputs[0])
	if err != nil {
		return nil, nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, nil, err
	}
	chunks := v6scan.PlanLogChunks(fi.Size(), n)

	// Topic order is the merge tie-break order: publisher-major, so
	// records tying on the chunk-boundary timestamp reproduce the
	// original file order.
	bus := v6scan.NewBus()
	topics := make([][]string, len(chunks))
	var all []string
	for i := range chunks {
		topics[i] = v6scan.RecordTopics(fmt.Sprintf("pub%d", i), publishTopics)
		all = append(all, topics[i]...)
	}
	ctx, cancel := context.WithCancel(context.Background())
	b := v6scan.FromBusContext(ctx, bus, all...) // subscribes now
	if window > 0 {
		b.WindowSort(window)
	}

	errs := make([]error, len(chunks))
	var wg sync.WaitGroup
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c v6scan.LogChunk) {
			defer wg.Done()
			src := v6scan.NewLogSource(io.NewSectionReader(f, c.Offset, c.Length))
			errs[i] = v6scan.From(src).PublishInto(ctx, bus, level, topics[i]...)
		}(i, c)
	}
	wait := func() error {
		// The aggregator is done (or failed): release any publisher still
		// blocked on backpressure, then join them all.
		cancel()
		wg.Wait()
		for _, e := range errs {
			if e != nil && !errors.Is(e, context.Canceled) {
				return fmt.Errorf("publisher: %w", e)
			}
		}
		return nil
	}
	return b, wait, f, nil
}

// runDetect terminates the prepared builder in the offline detector —
// plain when serial, sharded otherwise, restored from the checkpoint
// when resuming (which also carries the detection parameters) — and
// prints the per-level scan tables.
func runDetect(b *v6scan.Builder, stdout io.Writer, cfg v6scan.DetectorConfig, shards, topN int, counted **v6scan.PipelineCounter, resumed *v6scan.ResumedSink) error {
	var sink v6scan.RecordSink
	var result func() *v6scan.Detector
	switch {
	case resumed != nil:
		switch s := resumed.Sink.(type) {
		case *v6scan.DetectorSink:
			sink, result = s, s.Result
		case *v6scan.ShardedSink:
			sink, result = s, s.Result
		default:
			return fmt.Errorf("checkpoint holds IDS state; rerun with -ids")
		}
	case shards > 1:
		s := v6scan.NewShardedSink(v6scan.NewShardedDetector(cfg, shards))
		sink, result = s, s.Result
	default:
		s := v6scan.NewDetectorSink(v6scan.NewDetector(cfg))
		sink, result = s, s.Result
	}
	if err := b.RunInto(context.Background(), sink); err != nil {
		return err
	}
	det := result()
	levels := cfg.Levels
	if resumed != nil {
		levels = det.Config().Levels
	}

	fmt.Fprintf(stdout, "processed %d records\n", (*counted).Count())
	for _, lvl := range levels {
		scans := det.Scans(lvl)
		fmt.Fprintf(stdout, "\n=== %s: %d scans ===\n", lvl, len(scans))
		sort.Slice(scans, func(i, j int) bool { return scans[i].Packets > scans[j].Packets })
		for i, s := range scans {
			if topN > 0 && i >= topN {
				fmt.Fprintf(stdout, "  … %d more\n", len(scans)-i)
				break
			}
			fmt.Fprintf(stdout, "  %-30s %8d pkts %6d dsts %5d ports %3d srcs %v [%s]\n",
				s.Source, s.Packets, s.Dsts, s.NumPorts(), s.SrcAddrs,
				s.Duration().Round(time.Second), s.Class())
		}
	}
	return nil
}

// runIDS terminates the prepared builder in the inline
// dynamic-aggregation engine (sharded when -shards > 1) and prints the
// merged alert list — the blocklist recommendations the Discussion
// section calls for.
func runIDS(b *v6scan.Builder, stdout io.Writer, det v6scan.DetectorConfig, shards int, advEvery time.Duration, topN int, counted **v6scan.PipelineCounter, resumed *v6scan.ResumedSink) error {
	cfg := v6scan.DefaultIDSConfig()
	cfg.MinDsts = det.MinDsts
	cfg.Timeout = det.Timeout
	cfg.Levels = det.Levels

	// Tick once per minute of stream time by default — the
	// inline-deployment cadence, overridable with -advance-every: idle
	// candidates are evicted (and their alerts emitted) mid-stream
	// instead of all pooling until Flush. The cadence and drop
	// introspection need the sink in hand, so the builder terminates
	// through RunInto rather than the IDS helper. The cadence is
	// configuration, not checkpointed state, so a resumed sink gets it
	// re-applied here.
	tickEvery := time.Minute
	if advEvery > 0 {
		tickEvery = advEvery
	}
	var idsSink v6scan.TerminalSink
	var drained func() []v6scan.IDSAlert
	var dropped func() uint64
	switch {
	case resumed != nil:
		switch s := resumed.Sink.(type) {
		case *v6scan.IDSSink:
			s.AdvanceEvery = tickEvery
			idsSink, drained, dropped = s, s.Result, s.E.DroppedCandidates
		case *v6scan.ShardedIDSSink:
			s.AdvanceEvery = tickEvery
			idsSink, drained, dropped = s, s.Result, s.E.DroppedCandidates
		default:
			return fmt.Errorf("checkpoint holds offline-detector state; rerun without -ids")
		}
	case shards > 1:
		s := v6scan.NewShardedIDSSink(v6scan.NewShardedIDS(cfg, shards))
		s.AdvanceEvery = tickEvery
		idsSink, drained, dropped = s, s.Result, s.E.DroppedCandidates
	default:
		s := v6scan.NewIDSSink(v6scan.NewIDS(cfg))
		s.AdvanceEvery = tickEvery
		idsSink, drained, dropped = s, s.Result, s.E.DroppedCandidates
	}
	if err := b.RunInto(context.Background(), idsSink); err != nil {
		return err
	}

	alerts := drained()
	fmt.Fprintf(stdout, "processed %d records: %d IDS alerts\n", (*counted).Count(), len(alerts))
	if n := dropped(); n > 0 {
		fmt.Fprintf(stdout, "  warning: %d candidates dropped by the MaxCandidates bound — alerts are incomplete\n", n)
	}
	for i, a := range alerts {
		if topN > 0 && i >= topN {
			fmt.Fprintf(stdout, "  … %d more\n", len(alerts)-i)
			break
		}
		fmt.Fprintf(stdout, "  %s\n", a)
	}
	return nil
}

// openSource starts a pipeline builder for the input paths. Regular
// binary log files — one or several — ingest through the parallel
// multi-file path (FromFiles): each file decodes in record-aligned
// chunks across the worker budget, several files merge in time order,
// and the files are opened and closed by the source itself; window > 0
// adds the bounded-lateness reorder buffer for logs with interleave
// (e.g. multi-writer merges). A stdin log (-) decodes serially — the
// chunked decoder needs random access. Pcap captures stream through
// the bounded-lateness reorder buffer when window > 0 — peak memory is
// one window of records, and output is identical to a full sort as
// long as capture disorder stays within the window (records later than
// that abort the run; rerun with a larger -window). window = 0 falls
// back to decoding the whole capture into memory and repairing order
// with the run-aware sort. The returned report func, when non-nil,
// reports undecodable-packet counts to stderr after the run (streaming
// decode only knows them at the end); the returned closer, when
// non-nil, is the opened input file the caller must close after the
// run (run() is a reusable seam — the golden tests call it repeatedly
// in one process).
func openSource(inputs []string, window time.Duration, workers int, stderr io.Writer) (b *v6scan.Builder, report func(), closer io.Closer, err error) {
	if len(inputs) > 1 {
		for _, p := range inputs {
			if p == "-" || strings.HasSuffix(p, ".pcap") {
				return nil, nil, nil, fmt.Errorf("multi-file ingest merges binary log files only; %q cannot join a merge", p)
			}
		}
	}
	path := inputs[0]
	switch {
	case path == "-" || strings.HasSuffix(path, ".pcap"):
		// Single stream input: serial decode paths below.
	default:
		b := v6scan.FromFiles(inputs...).DecodeWorkers(workers)
		if window > 0 {
			// Logs are written in time order, but multi-writer merges
			// can interleave; the same bounded reorder repair applies.
			b.WindowSort(window)
		}
		return b, nil, nil, nil
	}
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, ferr := os.Open(path)
		if ferr != nil {
			return nil, nil, nil, ferr
		}
		closer = f
		r = bufio.NewReaderSize(f, 1<<20)
	}
	if !strings.HasSuffix(path, ".pcap") {
		b := v6scan.From(v6scan.NewLogSource(r))
		if window > 0 {
			b.WindowSort(window)
		}
		return b, nil, closer, nil
	}
	if window > 0 {
		src := v6scan.NewPcapSource(r)
		report = func() {
			if n := src.Skipped(); n > 0 {
				fmt.Fprintf(stderr, "skipped %d undecodable packets\n", n)
			}
		}
		return v6scan.From(src).WindowSort(window), report, closer, nil
	}
	recs, skipped, err := v6scan.RecordsFromPcap(r)
	if err != nil {
		if closer != nil {
			closer.Close()
		}
		return nil, nil, nil, err
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "skipped %d undecodable packets\n", skipped)
	}
	v6scan.SortRecordsByTime(recs)
	return v6scan.From(v6scan.NewSliceSource(recs)), nil, closer, nil
}
