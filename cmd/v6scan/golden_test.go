package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// The golden end-to-end suite pins the command's stdout byte for byte
// over a small committed log fixture, at several shard counts and with
// periodic advancement on — the parity check previous PRs ran by hand
// ("old-vs-new cmd output byte-identical") made permanent. Regenerate
// the fixture and goldens after an intentional output change with:
//
//	go test ./cmd/v6scan -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden fixture and outputs")

// goldenRecords synthesizes the fixture workload: a single-/128
// scanner split across a timeout lull (two sessions), a spread-/64
// actor below the threshold at /128 (escalation), an SMTP-style
// 5-duplicate artifact source (visible only with -filter), and a
// one-packet background population. Everything is seeded and
// timestamped deterministically.
func goldenRecords() []firewall.Record {
	rng := rand.New(rand.NewSource(2022))
	t0 := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	dsts := netaddr6.MustPrefix("2001:db8:f000::/44")
	var recs []firewall.Record
	add := func(ts time.Time, src, dst string, proto layers.IPProtocol, sport, dport uint16) {
		recs = append(recs, firewall.Record{
			Time: ts, Src: netaddr6.MustAddr(src), Dst: netaddr6.MustAddr(dst),
			Proto: proto, SrcPort: sport, DstPort: dport, Length: 60,
		})
	}

	// Scanner A: one /128, 600 sequential destinations over ~1h.
	seqA := netaddr6.SequentialAddrs(netaddr6.MustAddr("2001:db8:f000::10"), 600, 1)
	for i, d := range seqA {
		add(t0.Add(time.Duration(i)*6*time.Second), "2001:db8:a::1", d.String(),
			layers.ProtoTCP, 40001, 22)
	}
	// Scanner B: 16 /128s spread over one /64, 40 destinations each —
	// below threshold per /128, well above at /64 (the AS #9 pattern).
	b64 := netaddr6.MustPrefix("2001:db8:b:1::/64")
	for i := 0; i < 640; i++ {
		src := netaddr6.WithIID(b64.Addr(), uint64(1+i%16))
		add(t0.Add(2*time.Second+time.Duration(i)*5500*time.Millisecond),
			src.String(), netaddr6.RandomAddrIn(dsts, rng).String(),
			layers.ProtoTCP, 40002, 3389)
	}
	// Artifact actor: 200 packets at one (dst, TCP/25) pair — >30%
	// 5-duplicates, so -filter drops the whole source-day.
	for i := 0; i < 200; i++ {
		add(t0.Add(time.Duration(i)*17*time.Second), "2001:db8:e::5", "2001:db8:f000::dead",
			layers.ProtoTCP, 40003, 25)
	}
	// Background: 300 one-packet sources, never qualifying.
	bg := netaddr6.MustPrefix("2001:db8:c000::/36")
	for i := 0; i < 300; i++ {
		p64 := netaddr6.NthSubprefix(bg, 64, uint64(i))
		add(t0.Add(time.Duration(i)*11*time.Second),
			netaddr6.WithIID(p64.Addr(), 7).String(),
			netaddr6.RandomAddrIn(dsts, rng).String(),
			layers.ProtoUDP, 40004, 53)
	}
	// Scanner A returns after a 3-hour lull (above the 1h timeout):
	// a second, separate session — and a mid-stream eviction point for
	// the periodic-advancement paths.
	t2 := t0.Add(4 * time.Hour)
	seqA2 := netaddr6.SequentialAddrs(netaddr6.MustAddr("2001:db8:f000::2000"), 150, 1)
	for i, d := range seqA2 {
		add(t2.Add(time.Duration(i)*4*time.Second), "2001:db8:a::1", d.String(),
			layers.ProtoTCP, 40001, 22)
	}

	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	return recs
}

func writeFixture(t *testing.T, path string) {
	t.Helper()
	var buf bytes.Buffer
	w := firewall.NewWriter(&buf)
	for _, r := range goldenRecords() {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runGolden drives the command seam and returns its stdout.
func runGolden(t *testing.T, args ...string) string {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.String()
}

func goldenCompare(t *testing.T, goldenPath, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

func fixturePath(t *testing.T) string {
	t.Helper()
	path := filepath.Join("testdata", "golden.log")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		writeFixture(t, path)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	return path
}

// TestGoldenDetect pins `v6scan -filter` output and its shard/
// advancement invariance: -shards 1, -shards 4, and -shards 4 with
// -advance-every 10m must all produce the committed bytes.
func TestGoldenDetect(t *testing.T) {
	log := fixturePath(t)
	base := runGolden(t, "-i", log, "-filter", "-shards", "1")
	goldenCompare(t, filepath.Join("testdata", "golden_detect.txt"), base)

	for _, extra := range [][]string{
		{"-shards", "4"},
		{"-shards", "4", "-advance-every", "10m"},
		{"-shards", "1", "-advance-every", "10m"},
	} {
		args := append([]string{"-i", log, "-filter"}, extra...)
		if got := runGolden(t, args...); got != base {
			t.Errorf("%v: output differs from -shards 1 baseline\n--- got ---\n%s\n--- want ---\n%s", extra, got, base)
		}
	}
}

// TestGoldenIDS pins `v6scan -ids` output (minute-cadence ticks) and
// its shard invariance at 1 and 4 shards.
func TestGoldenIDS(t *testing.T) {
	log := fixturePath(t)
	got := runGolden(t, "-i", log, "-ids", "-shards", "4")
	goldenCompare(t, filepath.Join("testdata", "golden_ids.txt"), got)

	if serial := runGolden(t, "-i", log, "-ids", "-shards", "1"); serial != got {
		t.Errorf("-ids -shards 1 differs from -shards 4\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", serial, got)
	}
}

// TestGoldenUnfiltered pins the no-filter run too, so the artifact
// population's contribution (and the filter's effect) is visible as a
// golden diff rather than only a by-hand check.
func TestGoldenUnfiltered(t *testing.T) {
	log := fixturePath(t)
	got := runGolden(t, "-i", log, "-shards", "4")
	goldenCompare(t, filepath.Join("testdata", "golden_nofilter.txt"), got)
	if filtered := runGolden(t, "-i", log, "-filter", "-shards", "4"); filtered == got {
		t.Error("filtered and unfiltered outputs are identical; the fixture's artifact population is not exercising -filter")
	}
}

// TestGoldenParallelDecode pins the tentpole's cmd-level parity: the
// committed goldens must come out byte-identical at every
// -decode-workers count (the no-flag runs above already exercise the
// parallel path at its one-per-CPU default).
func TestGoldenParallelDecode(t *testing.T) {
	log := fixturePath(t)
	base := runGolden(t, "-i", log, "-filter", "-shards", "1")
	goldenCompare(t, filepath.Join("testdata", "golden_detect.txt"), base)
	for _, w := range []string{"1", "2", "8"} {
		if got := runGolden(t, "-i", log, "-filter", "-shards", "1", "-decode-workers", w); got != base {
			t.Errorf("-decode-workers %s: output differs from baseline\n--- got ---\n%s\n--- want ---\n%s", w, got, base)
		}
	}
}

// splitFixture cuts the committed fixture into n chronologically
// contiguous day-file-style logs at record boundaries.
func splitFixture(t *testing.T, log string, n int) []string {
	t.Helper()
	data, err := os.ReadFile(log)
	if err != nil {
		t.Fatal(err)
	}
	records := len(data) / firewall.RecordWireSize
	dir := t.TempDir()
	paths := make([]string, n)
	for i := range paths {
		lo := i * records / n * firewall.RecordWireSize
		hi := (i + 1) * records / n * firewall.RecordWireSize
		if i == n-1 {
			hi = len(data)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("day%d.log", i))
		if err := os.WriteFile(paths[i], data[lo:hi], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

// TestGoldenMultiFile pins the k-way merged multi-file ingest: the
// fixture split into three positional day-files must reproduce the
// committed single-file goldens exactly, on the detector and IDS
// paths, serial and sharded.
func TestGoldenMultiFile(t *testing.T) {
	log := fixturePath(t)
	parts := splitFixture(t, log, 3)

	base := runGolden(t, "-i", log, "-filter", "-shards", "4")
	args := append([]string{"-filter", "-shards", "4", "-decode-workers", "2"}, parts...)
	if got := runGolden(t, args...); got != base {
		t.Errorf("merged 3-file run differs from single-file run\n--- got ---\n%s\n--- want ---\n%s", got, base)
	}

	baseIDS := runGolden(t, "-i", log, "-ids", "-shards", "1")
	if got := runGolden(t, append([]string{"-ids", "-shards", "1"}, parts...)...); got != baseIDS {
		t.Errorf("merged -ids run differs from single-file run\n--- got ---\n%s\n--- want ---\n%s", got, baseIDS)
	}
}

// TestMultiFileRejectsStreams pins the CLI contract that only binary
// log files can join a merge.
func TestMultiFileRejectsStreams(t *testing.T) {
	log := fixturePath(t)
	var stdout, stderr bytes.Buffer
	if err := run([]string{log, "capture.pcap"}, &stdout, &stderr); err == nil {
		t.Error("merging a .pcap input did not error")
	}
	if err := run([]string{"-i", "-", log}, &stdout, &stderr); err == nil {
		t.Error("merging stdin did not error")
	}
}

// sanity: the fixture generator stays deterministic (the committed log
// must be reproducible from source).
func TestGoldenFixtureDeterministic(t *testing.T) {
	a, b := goldenRecords(), goldenRecords()
	if len(a) != len(b) {
		t.Fatal("generator is nondeterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generator is nondeterministic at record %d", i)
		}
	}
	if !*update {
		// The committed fixture must match the generator output.
		var buf bytes.Buffer
		w := firewall.NewWriter(&buf)
		for _, r := range a {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		disk, err := os.ReadFile(filepath.Join("testdata", "golden.log"))
		if err != nil {
			t.Fatalf("missing fixture (regenerate with -update): %v", err)
		}
		if !bytes.Equal(buf.Bytes(), disk) {
			t.Error("committed golden.log does not match the generator; regenerate with -update or revert the generator change")
		}
	}
}

// TestGoldenPublish pins the distributed demonstration end to end: the
// fixture split across N publisher pipelines feeding one aggregator
// over the in-process event bus must reproduce the committed
// single-process goldens byte for byte, on the detector and IDS paths,
// serial and sharded — the tentpole's acceptance bar at the CLI.
func TestGoldenPublish(t *testing.T) {
	log := fixturePath(t)

	base := runGolden(t, "-i", log, "-filter", "-shards", "1")
	goldenCompare(t, filepath.Join("testdata", "golden_detect.txt"), base)
	for _, n := range []string{"1", "3"} {
		for _, shards := range []string{"1", "4"} {
			got := runGolden(t, "-i", log, "-filter", "-shards", shards, "-publish", n)
			if got != base {
				t.Errorf("-publish %s -shards %s: output differs from direct run\n--- got ---\n%s\n--- want ---\n%s",
					n, shards, got, base)
			}
		}
	}

	baseIDS := runGolden(t, "-i", log, "-ids", "-shards", "1")
	if got := runGolden(t, "-i", log, "-ids", "-shards", "1", "-publish", "3"); got != baseIDS {
		t.Errorf("-publish 3 -ids: output differs from direct run\n--- got ---\n%s\n--- want ---\n%s", got, baseIDS)
	}
}

// TestPublishFlagValidation pins the -publish input contract: exactly
// one binary log file, and no -resume (the partition level must match
// the detection levels, which on resume live inside the snapshot).
func TestPublishFlagValidation(t *testing.T) {
	log := fixturePath(t)
	var stdout, stderr bytes.Buffer
	fail := func(wantSubstr string, args ...string) {
		t.Helper()
		stdout.Reset()
		stderr.Reset()
		err := run(args, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), wantSubstr) {
			t.Errorf("run(%v): err = %v, want mention of %q", args, err, wantSubstr)
		}
	}
	fail("-resume", "-publish", "3", "-resume",
		"-checkpoint-dir", t.TempDir(), "-checkpoint-every", "1m", "-i", log)
	fail("exactly one", "-publish", "3", "-i", "-")
	fail("exactly one", "-publish", "3", "-i", "capture.pcap")
	fail("exactly one", "-publish", "3", log, log)
}

// TestDuplicateInputRejected pins the multi-file guard at the CLI: the
// same log listed twice must refuse with the duplicate diagnostic
// rather than silently double-counting every record.
func TestDuplicateInputRejected(t *testing.T) {
	log := fixturePath(t)
	var stdout, stderr bytes.Buffer
	err := run([]string{log, log}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "duplicate input") {
		t.Errorf("run with a repeated input: err = %v, want duplicate-input diagnostic", err)
	}
}
