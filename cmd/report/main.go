// report regenerates every table and figure of the paper from the
// simulated vantage points. Each experiment is addressable by the IDs
// listed in DESIGN.md (§4); with no -experiment flag all of them run.
//
//	report                 # everything, default window
//	report -experiment tab2
//	report -full           # the complete 15-month paper window (slow)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	"v6scan"
	"v6scan/internal/entropy"
	"v6scan/internal/layers"
	"v6scan/internal/mawi"
	"v6scan/internal/scanner"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (fig1,tab1,sens,fig2,fig3,tab2,fig4,tab3,dns,fig5,fig6,fig7,fig8,a1,a4,icmp,ids); empty = all")
		full       = flag.Bool("full", false, "use the complete Jan 2021–Mar 2022 window (slow)")
		machines   = flag.Int("machines", 2500, "telescope machines")
		shards     = flag.Int("shards", runtime.NumCPU(), "detector worker shards (1 = serial)")
	)
	flag.Parse()

	start := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	weeks := 12
	if *full {
		start = scanner.DefaultStart
		weeks = 63
	}
	r := newRunner(start, weeks, *machines, *full)
	r.shards = *shards
	// The ids experiment replays the filtered stream after the CDN run;
	// only retain it when that experiment will actually execute.
	r.keepFiltered = *experiment == "" || *experiment == "ids"

	cdnExperiments := map[string]func(){
		"fig1": r.fig1, "tab1": r.tab1, "sens": r.sens, "fig2": r.fig2,
		"fig3": r.fig3, "tab2": r.tab2, "fig4": r.fig4, "tab3": r.tab3,
		"dns": r.dns, "fig8": r.fig8, "a1": r.a1, "a4": r.a4,
		"case32": r.case32, "ids": r.ids,
	}
	mawiExperiments := map[string]func(){
		"fig5": r.fig5, "fig6": r.fig6, "fig7": r.fig7, "icmp": r.icmp,
	}
	order := []string{"fig1", "tab1", "sens", "fig2", "fig3", "tab2", "fig4", "tab3", "dns", "fig8", "a1", "a4", "case32", "ids", "fig5", "fig6", "fig7", "icmp"}

	if *experiment != "" {
		if fn, ok := cdnExperiments[*experiment]; ok {
			fn()
			return
		}
		if fn, ok := mawiExperiments[*experiment]; ok {
			fn()
			return
		}
		log.Fatalf("unknown experiment %q (known: %s)", *experiment, strings.Join(order, ","))
	}
	for _, id := range order {
		if fn, ok := cdnExperiments[id]; ok {
			fn()
		} else {
			mawiExperiments[id]()
		}
	}
}

// runner caches the expensive CDN run across experiments.
type runner struct {
	start    time.Time
	weeks    int
	machines int
	full     bool
	shards   int

	res          *v6scan.ExperimentResult
	heat         *v6scan.HeatmapCollector
	dnsC         *v6scan.DNSCollector
	keepFiltered bool
	filtered     []v6scan.Record
}

func newRunner(start time.Time, weeks, machines int, full bool) *runner {
	return &runner{start: start, weeks: weeks, machines: machines, full: full}
}

func (r *runner) cdn() *v6scan.ExperimentResult {
	if r.res != nil {
		return r.res
	}
	cfg := r.baseConfig()
	cfg.Detector.TrackDsts = true
	// The figure collectors join the experiment pipeline as sinks: the
	// heatmap on the raw (pre-policy) tap, the provenance collector on
	// the filtered tap (buffered — it needs the telescope, which only
	// exists once Run returns).
	r.heat = v6scan.NewHeatmapCollector()
	cfg.RawSink = v6scan.CollectorSink(r.heat.Add)
	var filtered []v6scan.Record
	cfg.FilteredSink = v6scan.CollectorSink(func(rec v6scan.Record) { filtered = append(filtered, rec) })
	t0 := time.Now()
	res, err := v6scan.RunCDNExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	r.dnsC = v6scan.NewDNSCollector(res.Telescope, 0)
	if err := v6scan.From(v6scan.NewSliceSource(filtered)).
		RunInto(context.Background(), v6scan.CollectorSink(r.dnsC.Add)); err != nil {
		log.Fatal(err)
	}
	if r.keepFiltered {
		r.filtered = filtered
	}
	fmt.Printf("[cdn run: %d machines, %d weeks, %d shards, %d records detected, %v]\n\n",
		res.Telescope.NumMachines(), r.weeks, r.shards, res.RecordsDetected, time.Since(t0).Round(time.Millisecond))
	r.res = res
	return res
}

func (r *runner) baseConfig() v6scan.ExperimentConfig {
	cfg := v6scan.DefaultExperimentConfig()
	cfg.Telescope.Machines = r.machines
	cfg.Telescope.ASes = 30
	cfg.Census.Start = r.start
	cfg.Census.End = r.start.Add(time.Duration(r.weeks) * 7 * 24 * time.Hour)
	cfg.Detector.WeekEpoch = r.start
	cfg.Shards = r.shards
	return cfg
}

func header(id, title string) {
	fmt.Printf("──── %s: %s ────\n", id, title)
}

func (r *runner) fig1() {
	res := r.cdn()
	_ = res
	header("fig1", "heatmap of source /64s (dsts × packets)")
	hm := r.heat.Build()
	fmt.Print(hm.Render())
	fmt.Printf("near-origin share: %.1f%%; sources with ≥100 dsts: %d of %d\n\n",
		100*hm.NearOriginShare(), hm.HighDstSources(2), hm.Sources)
}

func (r *runner) tab1() {
	res := r.cdn()
	header("tab1", "detected scans per aggregation (Table 1)")
	fmt.Println(v6scan.BuildTable1(res.Detector, res.DB).Render())
}

func (r *runner) sens() {
	header("sens", "parameter sensitivity (Section 2.2)")
	base := r.cdn().Detector.TotalsFor(v6scan.Agg64)
	fmt.Printf("baseline (100 dsts, 3600s): %d scans, %d sources\n", base.Scans, base.Sources)
	for _, tc := range []struct {
		name    string
		minDsts int
		timeout time.Duration
	}{
		{"timeout 1800s", 100, 1800 * time.Second},
		{"timeout 900s", 100, 900 * time.Second},
		{"threshold 50 dsts", 50, time.Hour},
	} {
		cfg := r.baseConfig()
		cfg.Detector.MinDsts = tc.minDsts
		cfg.Detector.Timeout = tc.timeout
		res, err := v6scan.RunCDNExperiment(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tot := res.Detector.TotalsFor(v6scan.Agg64)
		fmt.Printf("%-20s %d scans (%+.1f%%), %d sources (%+.1f%%)\n",
			tc.name, tot.Scans, pct(tot.Scans, base.Scans), tot.Sources, pct(tot.Sources, base.Sources))
	}
	fmt.Println()
}

func pct(v, base int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(v) - float64(base)) / float64(base)
}

func (r *runner) fig2() {
	res := r.cdn()
	header("fig2", "weekly scan sources per aggregation (Figure 2)")
	fmt.Println(v6scan.BuildWeeklySources(res.Detector).Render())
}

func (r *runner) fig3() {
	res := r.cdn()
	header("fig3", "weekly scan-packet concentration (Figure 3)")
	fmt.Println(v6scan.BuildConcentration(res.Detector, v6scan.Agg64).Render())
}

func (r *runner) tab2() {
	res := r.cdn()
	header("tab2", "top-20 source ASes (Table 2)")
	t2 := v6scan.BuildTable2(res.Detector, res.DB, 20)
	fmt.Print(t2.Render())
	fmt.Printf("top-5 share %.1f%%, top-10 share %.1f%%\n\n", 100*t2.TopShare(5), 100*t2.TopShare(10))
}

func (r *runner) fig4() {
	res := r.cdn()
	header("fig4", "ports per scan at /64, AS18 excluded (Figure 4)")
	fmt.Println(v6scan.BuildPortBreakdown(res.Detector, res.DB, v6scan.Agg64, scanner.ASNOfRank(18)).Render())
}

func (r *runner) fig8() {
	res := r.cdn()
	header("fig8", "ports per scan at /128 and /48 (Figure 8)")
	fmt.Println(v6scan.BuildPortBreakdown(res.Detector, res.DB, v6scan.Agg128, 0).Render())
	fmt.Println(v6scan.BuildPortBreakdown(res.Detector, res.DB, v6scan.Agg48, 0).Render())
}

func (r *runner) tab3() {
	res := r.cdn()
	header("tab3", "top targeted services, AS18 excluded (Table 3)")
	fmt.Println(v6scan.BuildTable3(res.Detector, res.DB, scanner.ASNOfRank(18), 10).Render())
}

func (r *runner) dns() {
	res := r.cdn()
	header("dns", "target provenance: in-DNS vs not-in-DNS (Section 3.3)")
	fmt.Println(r.dnsC.Build(res.Detector, nil, scanner.Alloc(scanner.ASNOfRank(18))).Render())
	d128 := v6scan.BuildDurationStats(res.Detector, v6scan.Agg128)
	d64 := v6scan.BuildDurationStats(res.Detector, v6scan.Agg64)
	d48 := v6scan.BuildDurationStats(res.Detector, v6scan.Agg48)
	fmt.Print("scan durations: ", d128.Render(), "                ", d64.Render(), "                ", d48.Render())
	fmt.Println()
}

func (r *runner) a1() {
	res := r.cdn()
	header("a1", "artifact filtering (Appendix A.1)")
	st := res.Filter
	fmt.Printf("in %d packets; dropped %d packets from %d source-days\n",
		st.PacketsIn, st.PacketsDropped, st.SourcesDropped)
	for _, svc := range st.TopFilteredServices(6) {
		fmt.Printf("  %-10s %10d packets %6d sources\n", svc.Service, svc.Packets, svc.Sources)
	}
	fmt.Println()
}

func (r *runner) a4() {
	res := r.cdn()
	header("a4", "cloud provider #6 twin analysis (Appendix A.4)")
	rep, ok := v6scan.BuildTwinReport(res.Detector, scanner.Alloc(scanner.ASNOfRank(6)), res.Telescope)
	if !ok {
		fmt.Println("twins not detected in this window")
		return
	}
	fmt.Println(rep.Render())
}

func (r *runner) case32() {
	header("case32", "AS #18 /32 aggregation case study (Section 3.2)")
	cfg := r.baseConfig()
	cfg.Detector.Levels = []v6scan.AggLevel{v6scan.Agg64, v6scan.Agg48, v6scan.Agg32}
	res, err := v6scan.RunCDNExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v6scan.BuildCaseStudy32(res.Detector, scanner.Alloc(scanner.ASNOfRank(18))).Render())
}

func (r *runner) ids() {
	r.cdn() // populates the filtered record stream
	header("ids", "inline dynamic-aggregation IDS (Discussion)")
	cfg := v6scan.DefaultIDSConfig()
	t0 := time.Now()
	alerts, err := v6scan.From(v6scan.NewSliceSource(r.filtered)).
		IDS(context.Background(), cfg, r.shards)
	if err != nil {
		log.Fatal(err)
	}
	processed := len(r.filtered)
	r.filtered = nil // only this experiment reads the stream; release it
	escalated := 0
	byLevel := map[v6scan.AggLevel]int{}
	for _, a := range alerts {
		byLevel[a.Level]++
		if a.Escalated {
			escalated++
		}
	}
	fmt.Printf("%d records through %d shards in %v: %d blocklist recommendations (%d escalated)\n",
		processed, r.shards, time.Since(t0).Round(time.Millisecond), len(alerts), escalated)
	for _, lvl := range cfg.Levels {
		if byLevel[lvl] > 0 {
			fmt.Printf("  %-5v %d alerts\n", lvl, byLevel[lvl])
		}
	}
	show := min(5, len(alerts))
	for _, a := range alerts[:show] {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println()
}

// --- MAWI experiments ---

func (r *runner) mawiSim(days int, start time.Time) *v6scan.MAWISimulator {
	cfg := v6scan.DefaultMAWISimConfig()
	cfg.Start = start
	cfg.End = start.Add(time.Duration(days) * 24 * time.Hour)
	return v6scan.NewMAWISimulator(cfg)
}

func (r *runner) fig5() {
	header("fig5", "MAWI daily scan sources by aggregation and threshold (Figure 5)")
	days := 14
	start := time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)
	if r.full {
		days, start = 439, scanner.DefaultStart
	}
	sim := r.mawiSim(days, start)
	fmt.Printf("%-12s %7s %7s %7s %7s %7s %7s\n", "day", "128/5", "64/5", "48/5", "128/100", "64/100", "48/100")
	sim.Days(func(day time.Time) {
		var counts []int
		for _, min := range []int{5, 100} {
			for _, lvl := range []v6scan.AggLevel{v6scan.Agg128, v6scan.Agg64, v6scan.Agg48} {
				mc := v6scan.DefaultMAWIConfig()
				mc.MinDsts = min
				mc.Level = lvl
				det := v6scan.NewMAWIDetector(mc)
				for _, rec := range sim.EmitDay(day) {
					det.Process(rec)
				}
				counts = append(counts, len(det.Finish()))
			}
		}
		fmt.Printf("%-12s %7d %7d %7d %7d %7d %7d\n", day.Format("2006-01-02"),
			counts[0], counts[1], counts[2], counts[3], counts[4], counts[5])
	})
	fmt.Println()
}

func (r *runner) fig6() {
	header("fig6", "MAWI top-source packet shares (Figure 6)")
	days := 14
	start := time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)
	if r.full {
		days, start = 439, scanner.DefaultStart
	}
	sim := r.mawiSim(days, start)
	fmt.Printf("%-12s %9s %7s %7s %7s\n", "day", "packets", "top1%", "top2%", "top3%")
	sim.Days(func(day time.Time) {
		det := v6scan.NewMAWIDetector(v6scan.DefaultMAWIConfig())
		for _, rec := range sim.EmitDay(day) {
			det.Process(rec)
		}
		scans := det.Finish()
		var pkts uint64
		var tops [3]uint64
		for i, s := range scans {
			pkts += s.Packets
			if i < 3 {
				tops[i] = s.Packets
			}
		}
		sh := func(k int) float64 {
			var sum uint64
			for i := 0; i <= k && i < 3; i++ {
				sum += tops[i]
			}
			if pkts == 0 {
				return 0
			}
			return 100 * float64(sum) / float64(pkts)
		}
		fmt.Printf("%-12s %9d %6.1f%% %6.1f%% %6.1f%%\n", day.Format("2006-01-02"), pkts, sh(0), sh(1), sh(2))
	})
	fmt.Println()
}

func (r *runner) fig7() {
	header("fig7", "MAWI Hamming-weight distributions (Figure 7)")
	cases := []struct {
		label string
		day   time.Time
	}{
		{"AS1 May 27 (hitlist)", mawi.HitlistDay},
		{"AS1 May 28", mawi.HitlistDay.Add(24 * time.Hour)},
		{"AS3 Jul 6 peak", mawi.July6Peak},
		{"Dec 24 peak", mawi.Dec24Peak},
	}
	for _, c := range cases {
		sim := r.mawiSim(3, c.day.Add(-24*time.Hour))
		det := v6scan.NewMAWIDetector(v6scan.DefaultMAWIConfig())
		for _, rec := range sim.EmitDay(c.day) {
			det.Process(rec)
		}
		scans := det.Finish()
		if len(scans) == 0 {
			fmt.Printf("%-22s no scans\n", c.label)
			continue
		}
		top := pickScan(scans, c.label, sim)
		hist := entropy.HammingHistogram64(top.DstIIDs)
		st := entropy.SummarizeHamming(hist)
		fmt.Printf("%-22s n=%6d mean=%5.1f σ=%4.1f median=%2d gaussian=%v\n",
			c.label, st.N, st.Mean, st.StdDev, st.Median, entropy.LooksGaussian(hist))
		fmt.Println(sparkline(hist))
	}
	fmt.Println()
}

// pickScan selects the AS1 scan for AS1-labelled cases, else the top
// scan of the day.
func pickScan(scans []v6scan.MAWIScan, label string, sim *v6scan.MAWISimulator) v6scan.MAWIScan {
	if strings.HasPrefix(label, "AS1") {
		for _, s := range scans {
			if s.Source.Contains(sim.AS1Source()) {
				return s
			}
		}
	}
	return scans[0]
}

// sparkline renders a 65-bucket histogram compactly.
func sparkline(h [65]uint64) string {
	glyphs := []rune(" ▁▂▃▄▅▆▇█")
	var max uint64
	for _, c := range h {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("  HW 0→64 ")
	for _, c := range h {
		idx := int(c * uint64(len(glyphs)-1) / max)
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

func (r *runner) icmp() {
	header("icmp", "MAWI ICMPv6 scan prevalence (Section 4)")
	days := 27
	start := time.Date(2021, 6, 20, 0, 0, 0, 0, time.UTC)
	if r.full {
		days, start = 439, scanner.DefaultStart
	}
	sim := r.mawiSim(days, start)
	icmpDays, majorityDays, total := 0, 0, 0
	sim.Days(func(day time.Time) {
		total++
		det := v6scan.NewMAWIDetector(v6scan.DefaultMAWIConfig())
		for _, rec := range sim.EmitDay(day) {
			det.Process(rec)
		}
		scans := det.Finish()
		icmp := 0
		for _, s := range scans {
			if len(s.Services) > 0 && s.Services[0].Proto == layers.ProtoICMPv6 {
				icmp++
			}
		}
		if icmp > 0 {
			icmpDays++
		}
		if icmp*2 > len(scans) {
			majorityDays++
		}
	})
	fmt.Printf("ICMPv6 scans on %d of %d days (paper: 342/439); majority of sources on %d days (paper: 236)\n\n",
		icmpDays, total, majorityDays)
}
