// mawi-sim writes MAWI-style daily 15-minute capture windows as
// classic pcap files (LINKTYPE_RAW), one file per day, suitable for
// cmd/v6scan -i day.pcap or any standard pcap consumer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"v6scan"
	"v6scan/internal/mawi"
)

func main() {
	var (
		dir   = flag.String("dir", "mawi-days", "output directory")
		days  = flag.Int("days", 7, "days to generate")
		start = flag.String("start", "2021-12-20", "window start (YYYY-MM-DD); default spans the Dec 24 peak")
		seed  = flag.Int64("seed", 23, "simulation seed")
	)
	flag.Parse()

	from, err := time.Parse("2006-01-02", *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	cfg := v6scan.DefaultMAWISimConfig()
	cfg.Start = from
	cfg.End = from.Add(time.Duration(*days) * 24 * time.Hour)
	cfg.Seed = *seed
	sim := v6scan.NewMAWISimulator(cfg)

	sim.Days(func(day time.Time) {
		recs := sim.EmitDay(day)
		name := filepath.Join(*dir, day.Format("20060102")+".pcap")
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := mawi.WritePcapDay(f, recs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d packets\n", name, len(recs))
	})
}
