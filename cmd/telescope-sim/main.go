// telescope-sim generates a synthetic CDN firewall log: a telescope,
// the paper's scan-actor census, and artifact traffic, written as the
// binary record format consumed by cmd/v6scan.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"v6scan"
)

func main() {
	var (
		out      = flag.String("o", "telescope.log", "output log file")
		machines = flag.Int("machines", 2000, "CDN machines")
		ases     = flag.Int("ases", 25, "deployment ASes")
		weeks    = flag.Int("weeks", 4, "weeks to simulate")
		start    = flag.String("start", "2021-02-01", "window start (YYYY-MM-DD)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		raw      = flag.Bool("raw", false, "write the raw pre-filter stream instead of the filtered one")
	)
	flag.Parse()

	from, err := time.Parse("2006-01-02", *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	w := v6scan.WriteLog(bw)

	cfg := v6scan.DefaultExperimentConfig()
	cfg.Telescope.Machines = *machines
	cfg.Telescope.ASes = *ases
	cfg.Telescope.Seed = *seed
	cfg.Census.Start = from
	cfg.Census.End = from.Add(time.Duration(*weeks) * 7 * 24 * time.Hour)
	cfg.Census.Seed = *seed + 1
	cfg.Detector.WeekEpoch = from
	// The log writer joins the experiment's pipeline as a sink on the
	// requested tap point. The raw tap fires in emission order (before
	// the experiment's own day sorter), so sort it here — the log
	// format promises time order to its readers.
	if *raw {
		cfg.RawSink = v6scan.Chain().DaySort().Into(v6scan.NewLogSink(w))
	} else {
		cfg.FilteredSink = v6scan.NewLogSink(w)
	}

	res, err := v6scan.RunCDNExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d records to %s (generated %d, logged %d, filtered to %d)\n",
		w.Count(), *out, res.RecordsGenerated, res.RecordsLogged, res.RecordsDetected)
}
