// benchcmp compares two benchmark result files (the `go test -json
// -bench ... -benchmem` output the CI bench smoke uploads as
// bench.json) and prints a benchstat-style table, annotating every
// benchmark whose ns/op or allocs/op regressed by more than 10%.
//
//	go run ./tools/benchcmp old-bench.json new-bench.json
//
// The two metrics gate differently. allocs/op is deterministic even on
// a one-iteration smoke run on a shared 1-CPU runner, so an allocs/op
// regression is a failing check: it emits a ::error:: annotation and
// the tool exits 1. ns/op on the same runner is noise-dominated, so
// timing regressions stay advisory ::warning:: annotations for a human
// (or a longer local run) to judge, and never affect the exit code.
// Missing or unparsable baselines are reported and skipped (exit 0).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metrics is one benchmark's parsed result line.
type metrics struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// testEvent is the subset of the go test -json event schema we read.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches e.g.
//
//	BenchmarkDetectorSharded4-4  2  299813419 ns/op  100000 records/op  89392544 B/op  395937 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

func parse(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]metrics{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	// go test -json emits one event per write, not per line: a
	// benchmark's name and its numbers arrive as separate Output
	// fragments ("BenchmarkX \t" then "1\t 123 ns/op\n"), so fragments
	// are reassembled into lines before matching.
	var pending strings.Builder
	record := func(text string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(text))
		if m == nil {
			return
		}
		name, rest := m[1], m[2]
		var mt metrics
		fields := strings.Fields(rest)
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				mt.nsPerOp = v
			case "allocs/op":
				mt.allocsPerOp = v
				mt.hasAllocs = true
			}
		}
		if mt.nsPerOp > 0 {
			out[name] = mt
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		// Accept both raw `go test -bench` output and -json events.
		if len(line) > 0 && line[0] == '{' {
			var ev testEvent
			if json.Unmarshal(line, &ev) != nil || ev.Action != "output" {
				continue
			}
			pending.WriteString(ev.Output)
			for {
				buffered := pending.String()
				nl := strings.IndexByte(buffered, '\n')
				if nl < 0 {
					break
				}
				record(buffered[:nl])
				pending.Reset()
				pending.WriteString(buffered[nl+1:])
			}
			continue
		}
		record(string(line))
	}
	record(pending.String())
	return out, sc.Err()
}

// delta formats a relative change, guarding the zero baseline.
func delta(old, new float64) (float64, string) {
	if old == 0 {
		return 0, "n/a"
	}
	d := (new - old) / old * 100
	return d, fmt.Sprintf("%+.1f%%", d)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchcmp old-bench.json new-bench.json\n")
		os.Exit(2)
	}
	old, err := parse(os.Args[1])
	if err != nil {
		fmt.Printf("benchcmp: cannot read baseline %s: %v — skipping compare\n", os.Args[1], err)
		return
	}
	cur, err := parse(os.Args[2])
	if err != nil {
		fmt.Printf("benchcmp: cannot read %s: %v — skipping compare\n", os.Args[2], err)
		return
	}
	if len(old) == 0 {
		fmt.Printf("benchcmp: baseline %s holds no benchmark lines — skipping compare\n", os.Args[1])
		return
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		if _, ok := old[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	const threshold = 10.0 // percent
	warned, failed := 0, 0
	fmt.Printf("%-55s %14s %14s %9s %12s %12s %9s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ", "old allocs", "new allocs", "Δ")
	for _, name := range names {
		o, n := old[name], cur[name]
		dns, dnsStr := delta(o.nsPerOp, n.nsPerOp)
		allocsOld, allocsNew, dalStr := "-", "-", "-"
		var dal float64
		if o.hasAllocs && n.hasAllocs {
			dal, dalStr = delta(o.allocsPerOp, n.allocsPerOp)
			allocsOld = strconv.FormatFloat(o.allocsPerOp, 'f', 0, 64)
			allocsNew = strconv.FormatFloat(n.allocsPerOp, 'f', 0, 64)
		}
		fmt.Printf("%-55s %14.0f %14.0f %9s %12s %12s %9s\n",
			name, o.nsPerOp, n.nsPerOp, dnsStr, allocsOld, allocsNew, dalStr)
		if dns > threshold {
			fmt.Printf("::warning title=benchmark regression::%s ns/op %s vs main (%.0f → %.0f); single-iteration smoke, confirm with a longer local run\n",
				name, dnsStr, o.nsPerOp, n.nsPerOp)
			warned++
		}
		if o.hasAllocs && n.hasAllocs && dal > threshold {
			fmt.Printf("::error title=allocation regression::%s allocs/op %s vs main (%s → %s); allocs/op is deterministic — this gates the check\n",
				name, dalStr, allocsOld, allocsNew)
			failed++
		}
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			fmt.Printf("%-55s (new benchmark, no baseline)\n", name)
		}
	}
	if warned == 0 && failed == 0 {
		fmt.Println("no >10% regressions vs main")
	}
	if failed > 0 {
		fmt.Printf("benchcmp: %d allocs/op regression(s) vs main — failing\n", failed)
		os.Exit(1)
	}
}
