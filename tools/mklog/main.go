// mklog appends deterministic scan traffic to a binary firewall log —
// the hermetic traffic source for v6scand's CI smoke job and for local
// demos. Each invocation appends one burst: -dsts records from -src,
// one per second, to distinct destinations, starting at -start+-offset.
//
// A scan burst big enough to cross the IDS threshold followed by a
// later single-record burst (the time jump) is the minimal recipe for
// an alert:
//
//	mklog -o fw.log -src 2001:db8:bad::1 -dsts 150   # the scan
//	mklog -o fw.log -offset 2h -src 2001:db8:aa::1 -dsts 1  # idle > timeout → alert
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	"v6scan/internal/firewall"
)

func main() {
	var (
		out    = flag.String("o", "", "log file to append to (required)")
		start  = flag.String("start", "2021-05-20T00:00:00Z", "stream epoch (RFC3339)")
		offset = flag.Duration("offset", 0, "burst start relative to the epoch")
		src    = flag.String("src", "2001:db8:bad::1", "source address")
		dsts   = flag.Int("dsts", 150, "records to append (one distinct destination per second)")
	)
	flag.Parse()
	if err := run(*out, *start, *offset, *src, *dsts); err != nil {
		fmt.Fprintln(os.Stderr, "mklog:", err)
		os.Exit(1)
	}
}

func run(out, start string, offset time.Duration, src string, dsts int) error {
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	base, err := time.Parse(time.RFC3339, start)
	if err != nil {
		return fmt.Errorf("bad -start: %w", err)
	}
	srcAddr, err := netip.ParseAddr(src)
	if err != nil {
		return fmt.Errorf("bad -src: %w", err)
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	w := firewall.NewWriter(bw)
	for i := 0; i < dsts; i++ {
		r := firewall.Record{
			Time: base.Add(offset + time.Duration(i)*time.Second),
			Src:  srcAddr,
			Dst:  netip.AddrFrom16(dstFor(i)),
		}
		if err := w.Write(r); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err == nil {
		err = bw.Flush()
	}
	if err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dstFor spreads destinations across a /64 deterministically.
func dstFor(i int) [16]byte {
	var b [16]byte
	prefix := netip.MustParseAddr("2001:db8:ffff::").As16()
	copy(b[:], prefix[:])
	b[12] = byte(i >> 24)
	b[13] = byte(i >> 16)
	b[14] = byte(i >> 8)
	b[15] = byte(i + 1)
	return b
}
