// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact; see DESIGN.md §4 for the experiment index)
// plus ablations of the design choices DESIGN.md §5 calls out.
//
// The per-artifact benchmarks measure the cost of the full pipeline
// slice that produces the artifact at test scale: they are regression
// guards on pipeline throughput, not attempts to time the paper's
// original 2-billion-packet corpus.
package v6scan

import (
	"bytes"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"v6scan/internal/artifacts"
	"v6scan/internal/core"
	"v6scan/internal/dispatch"
	"v6scan/internal/entropy"
	"v6scan/internal/layers"
	"v6scan/internal/mawi"
	"v6scan/internal/netaddr6"
	"v6scan/internal/scanner"
	"v6scan/internal/sim"
)

// benchStart is a window that exercises both AS1 phases.
var benchStart = time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)

func benchConfig(days int) sim.Config {
	cfg := sim.QuickConfig(800, 10, benchStart, days)
	return cfg
}

// sharedBenchRun caches one CDN run for the analysis benchmarks.
var sharedBenchRun *sim.Result

func benchRun(b *testing.B) *sim.Result {
	b.Helper()
	if sharedBenchRun == nil {
		cfg := benchConfig(14)
		cfg.Detector.TrackDsts = true
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sharedBenchRun = res
	}
	return sharedBenchRun
}

// --- per-table / per-figure benchmarks ---

func BenchmarkFig1Heatmap(b *testing.B) {
	res := benchRun(b)
	// Rebuild the heatmap from scan records each iteration.
	recs := make([]Record, 0, 1<<16)
	res.Census.EmitDay(benchStart, func(r Record) { recs = append(recs, r) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hc := NewHeatmapCollector()
		for _, r := range recs {
			hc.Add(r)
		}
		hm := hc.Build()
		if hm.Sources == 0 {
			b.Fatal("empty heatmap")
		}
	}
}

func BenchmarkTable1Totals(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := BuildTable1(res.Detector, res.DB)
		if len(t1.Rows) != 3 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkParamSensitivity(b *testing.B) {
	// One full detection pass at a relaxed threshold per iteration —
	// the unit of work of the Section 2.2 sweep.
	res := benchRun(b)
	var recs []Record
	res.Census.EmitDay(benchStart.Add(24*time.Hour), func(r Record) { recs = append(recs, r) })
	// EmitDay is per-actor chronological, not globally ordered.
	sort.Slice(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultDetectorConfig()
		cfg.MinDsts = 50
		det := NewDetector(cfg)
		for _, r := range recs {
			if err := det.Process(r); err != nil {
				b.Fatal(err)
			}
		}
		det.Finish()
	}
}

func BenchmarkFig2WeeklySources(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := BuildWeeklySources(res.Detector)
		if len(w.Weeks) == 0 {
			b.Fatal("no weeks")
		}
	}
}

func BenchmarkFig3Concentration(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := BuildConcentration(res.Detector, Agg64)
		if c.OverallTop2Share == 0 {
			b.Fatal("no concentration")
		}
	}
}

func BenchmarkTable2TopASes(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t2 := BuildTable2(res.Detector, res.DB, 20)
		if len(t2.Rows) == 0 {
			b.Fatal("empty table 2")
		}
	}
}

func BenchmarkFig4PortsPerScan(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pb := BuildPortBreakdown(res.Detector, res.DB, Agg64, scanner.ASNOfRank(18))
		if pb.Level != Agg64 {
			b.Fatal("bad breakdown")
		}
	}
}

func BenchmarkFig8PortsAggregations(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildPortBreakdown(res.Detector, res.DB, Agg128, 0)
		BuildPortBreakdown(res.Detector, res.DB, Agg48, 0)
	}
}

func BenchmarkTable3TopPorts(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3 := BuildTable3(res.Detector, res.DB, scanner.ASNOfRank(18), 10)
		if len(t3.ByPackets) == 0 {
			b.Fatal("empty table 3")
		}
	}
}

func BenchmarkDNSTargeting(b *testing.B) {
	res := benchRun(b)
	var recs []Record
	res.Census.EmitDay(benchStart, func(r Record) { recs = append(recs, r) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc := NewDNSCollector(res.Telescope, 0)
		for _, r := range recs {
			dc.Add(r)
		}
		rep := dc.Build(res.Detector, nil)
		_ = rep.AllInDNSShare
	}
}

func BenchmarkFig5MAWISources(b *testing.B) {
	s := mawiBenchSim(time.Date(2021, 5, 24, 0, 0, 0, 0, time.UTC))
	day := time.Date(2021, 5, 25, 0, 0, 0, 0, time.UTC)
	recs := s.EmitDay(day)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lvl := range []AggLevel{Agg128, Agg64, Agg48} {
			mc := DefaultMAWIConfig()
			mc.Level = lvl
			det := NewMAWIDetector(mc)
			for _, r := range recs {
				det.Process(r)
			}
			if det.Finish() == nil {
				b.Fatal("no scans")
			}
		}
	}
	b.ReportMetric(float64(len(recs)*3), "records/op")
}

func BenchmarkFig6MAWIShare(b *testing.B) {
	s := mawiBenchSim(time.Date(2021, 5, 24, 0, 0, 0, 0, time.UTC))
	recs := s.EmitDay(time.Date(2021, 5, 25, 0, 0, 0, 0, time.UTC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewMAWIDetector(DefaultMAWIConfig())
		for _, r := range recs {
			det.Process(r)
		}
		scans := det.Finish()
		var total uint64
		for _, sc := range scans {
			total += sc.Packets
		}
		if total == 0 {
			b.Fatal("no packets")
		}
	}
}

func BenchmarkFig7HammingWeight(b *testing.B) {
	s := mawiBenchSim(mawi.Dec24Peak.Add(-24 * time.Hour))
	det := NewMAWIDetector(DefaultMAWIConfig())
	for _, r := range s.EmitDay(mawi.Dec24Peak) {
		det.Process(r)
	}
	scans := det.Finish()
	if len(scans) == 0 {
		b.Fatal("no scans")
	}
	iids := scans[0].DstIIDs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hist := entropy.HammingHistogram64(iids)
		if !entropy.LooksGaussian(hist) {
			b.Fatal("Dec 24 not Gaussian")
		}
	}
}

func BenchmarkICMPv6Scans(b *testing.B) {
	s := mawiBenchSim(time.Date(2021, 6, 20, 0, 0, 0, 0, time.UTC))
	day := time.Date(2021, 6, 21, 0, 0, 0, 0, time.UTC)
	recs := s.EmitDay(day)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewMAWIDetector(DefaultMAWIConfig())
		icmp := 0
		for _, r := range recs {
			if r.Proto == layers.ProtoICMPv6 {
				icmp++
			}
			det.Process(r)
		}
		det.Finish()
		if icmp == 0 {
			b.Fatal("no ICMPv6 traffic")
		}
	}
}

func BenchmarkArtifactFilter(b *testing.B) {
	res := benchRun(b)
	gen := artifacts.New(artifacts.DefaultConfig(), res.Telescope, nil)
	var recs []Record
	gen.EmitDay(benchStart, func(r Record) { recs = append(recs, r) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewArtifactFilter()
		for _, r := range recs {
			f.Push(r)
		}
		out := f.Close()
		if len(out) >= len(recs) {
			b.Fatal("filter dropped nothing")
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

func BenchmarkA4CloudCaseStudy(b *testing.B) {
	res := benchRun(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := BuildTwinReport(res.Detector, scanner.Alloc(scanner.ASNOfRank(6)), res.Telescope); !ok {
			b.Fatal("twins missing")
		}
	}
}

func mawiBenchSim(start time.Time) *MAWISimulator {
	cfg := DefaultMAWISimConfig()
	cfg.Start = start
	cfg.End = start.Add(3 * 24 * time.Hour)
	cfg.HitlistSize = 1000
	return NewMAWISimulator(cfg)
}

// --- ablation benchmarks (DESIGN.md §5) ---

// benchRecords synthesizes a deterministic detector workload:
// interleaved scanners and background sources, spread over many /48s
// the way the paper's spread-source actors are (which also gives the
// sharded detector a realistic partition key population).
func benchRecords(n int) []Record {
	rng := rand.New(rand.NewSource(99))
	recs := make([]Record, 0, n)
	ts := benchStart
	scanBase := netaddr6.MustPrefix("2001:db8::/36")
	dstBase := netaddr6.MustPrefix("2001:db8:f000::/44")
	for i := 0; i < n; i++ {
		src := netaddr6.RandomSubprefix(scanBase, 64, rng).Addr()
		recs = append(recs, Record{
			Time: ts, Src: netaddr6.WithIID(src, uint64(i%64)),
			Dst:   netaddr6.RandomAddrIn(dstBase, rng),
			Proto: layers.ProtoTCP, DstPort: uint16(1 + i%1024), Length: 60,
		})
		ts = ts.Add(10 * time.Millisecond)
	}
	return recs
}

// BenchmarkDetectorStreaming measures the single-pass streaming
// detector with periodic timeout eviction (bounded memory, the IDS
// deployment mode).
func BenchmarkDetectorStreaming(b *testing.B) {
	recs := benchRecords(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewDetector(DefaultDetectorConfig())
		for j, r := range recs {
			if err := det.Process(r); err != nil {
				b.Fatal(err)
			}
			if j%10_000 == 0 {
				det.Advance(r.Time)
			}
		}
		det.Finish()
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// BenchmarkDetectorBatch measures the same workload without periodic
// eviction (all sessions held until the end — the batch-analysis mode).
func BenchmarkDetectorBatch(b *testing.B) {
	recs := benchRecords(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewDetector(DefaultDetectorConfig())
		for _, r := range recs {
			if err := det.Process(r); err != nil {
				b.Fatal(err)
			}
		}
		det.Finish()
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// benchmarkDetectorSharded measures the sharded detector on the
// BenchmarkDetectorStreaming workload, fed in batches; shards=1 is the
// parallelism baseline (one worker, same batching overhead).
func benchmarkDetectorSharded(b *testing.B, shards int) {
	allowParallelism(b, shards+1)
	recs := benchRecords(100_000)
	const batch = 8192
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := core.NewShardedDetector(core.DefaultConfig(), shards)
		for j := 0; j < len(recs); j += batch {
			end := j + batch
			if end > len(recs) {
				end = len(recs)
			}
			if err := det.ProcessBatch(recs[j:end]); err != nil {
				b.Fatal(err)
			}
		}
		if err := det.Finish(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

func BenchmarkDetectorSharded1(b *testing.B) { benchmarkDetectorSharded(b, 1) }
func BenchmarkDetectorSharded4(b *testing.B) { benchmarkDetectorSharded(b, 4) }
func BenchmarkDetectorSharded8(b *testing.B) { benchmarkDetectorSharded(b, 8) }

// benchRecordsBursty generates a run-heavy workload: each source emits
// a burst of `burst` consecutive records (one scanner probing many
// destinations back-to-back — the traffic shape single-source scan
// bursts actually produce at a telescope). Maximal adjacent
// same-source runs are exactly what the detector's batched
// pre-hash/group lookup collapses to one index probe per aggregation
// level.
func benchRecordsBursty(n, burst int) []Record {
	rng := rand.New(rand.NewSource(99))
	recs := make([]Record, 0, n)
	ts := benchStart
	scanBase := netaddr6.MustPrefix("2001:db8::/36")
	dstBase := netaddr6.MustPrefix("2001:db8:f000::/44")
	for len(recs) < n {
		src := netaddr6.WithIID(netaddr6.RandomSubprefix(scanBase, 64, rng).Addr(), uint64(len(recs)))
		for j := 0; j < burst && len(recs) < n; j++ {
			recs = append(recs, Record{
				Time: ts, Src: src,
				Dst:   netaddr6.RandomAddrIn(dstBase, rng),
				Proto: layers.ProtoTCP, DstPort: uint16(1 + j%1024), Length: 60,
			})
			ts = ts.Add(time.Millisecond)
		}
	}
	return recs
}

// BenchmarkBatchGroupedLookup compares the detector's batched
// ProcessBatch against the per-record Process loop on the same bursty
// workload: ProcessBatch groups adjacent same-source runs and pays one
// u128idx probe per run per level, while the per-record path pays one
// per record (Process is a one-record batch, so the gap between the
// two sub-benchmarks isolates the grouping win — same detector, same
// records, no eviction until Finish).
func BenchmarkBatchGroupedLookup(b *testing.B) {
	recs := benchRecordsBursty(100_000, 32)
	const batch = 8192
	b.Run("Grouped", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det := NewDetector(DefaultDetectorConfig())
			for j := 0; j < len(recs); j += batch {
				end := j + batch
				if end > len(recs) {
					end = len(recs)
				}
				if err := det.ProcessBatch(recs[j:end]); err != nil {
					b.Fatal(err)
				}
			}
			det.Finish()
		}
		b.ReportMetric(float64(len(recs)), "records/op")
	})
	b.Run("PerRecord", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			det := NewDetector(DefaultDetectorConfig())
			for _, r := range recs {
				if err := det.Process(r); err != nil {
					b.Fatal(err)
				}
			}
			det.Finish()
		}
		b.ReportMetric(float64(len(recs)), "records/op")
	})
}

// BenchmarkShardDispatch isolates the shared dispatcher from the
// detector/IDS work it normally feeds: workers only count records, so
// ns/op and allocs/op measure partitioning, channel traffic, and the
// pooled batch arena. Steady-state dispatch must stay allocation-flat
// (near-constant allocs per run regardless of record count).
func BenchmarkShardDispatch(b *testing.B) {
	recs := benchRecords(100_000)
	const batch = 8192
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			allowParallelism(b, shards+1)
			counts := make([]uint64, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range counts {
					counts[j] = 0
				}
				d := dispatch.New(dispatch.Config{Shards: shards, Level: netaddr6.Agg48},
					func(shard int, rs []Record, mark time.Time) error {
						counts[shard] += uint64(len(rs))
						return nil
					})
				for j := 0; j < len(recs); j += batch {
					end := j + batch
					if end > len(recs) {
						end = len(recs)
					}
					if err := d.ProcessBatch(recs[j:end]); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
				total := uint64(0)
				for _, c := range counts {
					total += c
				}
				if total != uint64(len(recs)) {
					b.Fatalf("delivered %d records, want %d", total, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs)), "records/op")
		})
	}
}

// allowParallelism lifts GOMAXPROCS to n for one benchmark.
// Containerized CI often misreports NumCPU (this repo's sandbox shows
// 1 while ≥4 cores schedule), which would silently serialize the
// worker shards and benchmark goroutine scheduling instead of the
// parallel detector.
func allowParallelism(b *testing.B, n int) {
	if old := runtime.GOMAXPROCS(0); old < n {
		runtime.GOMAXPROCS(n)
		b.Cleanup(func() { runtime.GOMAXPROCS(old) })
	}
}

// BenchmarkMultiAggregationFused runs one detector tracking all three
// levels in a single pass.
func BenchmarkMultiAggregationFused(b *testing.B) {
	recs := benchRecords(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewDetector(DefaultDetectorConfig())
		for _, r := range recs {
			det.Process(r)
		}
		det.Finish()
	}
}

// BenchmarkMultiAggregationSeparate runs three single-level detectors
// over the stream — the naive alternative.
func BenchmarkMultiAggregationSeparate(b *testing.B) {
	recs := benchRecords(50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, lvl := range []AggLevel{Agg128, Agg64, Agg48} {
			cfg := DefaultDetectorConfig()
			cfg.Levels = []AggLevel{lvl}
			det := NewDetector(cfg)
			for _, r := range recs {
				det.Process(r)
			}
			det.Finish()
		}
	}
}

// BenchmarkDstSetMap measures exact per-source destination sets.
func BenchmarkDstSetMap(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	addrs := make([]netaddr6.U128, 10_000)
	for i := range addrs {
		addrs[i] = netaddr6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set := make(map[netaddr6.U128]struct{}, 16)
		for _, a := range addrs {
			set[a] = struct{}{}
		}
		if len(set) < 9_000 {
			b.Fatal("bad set")
		}
	}
	b.ReportMetric(float64(len(addrs)), "addrs/op")
}

// BenchmarkDstSetSketch measures the HyperLogLog alternative
// (constant 4 KiB per source at precision 12).
func BenchmarkDstSetSketch(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	addrs := make([]netaddr6.U128, 10_000)
	for i := range addrs {
		addrs[i] = netaddr6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk := core.NewDstSketch(12)
		for _, a := range addrs {
			sk.Add(a.ToAddr())
		}
		if e := sk.Estimate(); e < 9_000 || e > 11_000 {
			b.Fatalf("estimate %d", e)
		}
	}
	b.ReportMetric(float64(len(addrs)), "addrs/op")
}

// BenchmarkDecodeLayers measures zero-copy reused-struct decoding.
func BenchmarkDecodeLayers(b *testing.B) {
	frame, err := layers.BuildTCPSYN(
		netaddr6.MustAddr("2001:db8::1"), netaddr6.MustAddr("2001:db8::2"),
		40000, 22, layers.BuildOptions{Link: layers.LinkTypeEthernet})
	if err != nil {
		b.Fatal(err)
	}
	var d layers.Decoded
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := layers.ParseFrame(frame, layers.LinkTypeEthernet, &d); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

// BenchmarkDecodePacket measures the naive alternative: allocating a
// fresh Decoded and copying the frame per packet.
func BenchmarkDecodePacket(b *testing.B) {
	frame, err := layers.BuildTCPSYN(
		netaddr6.MustAddr("2001:db8::1"), netaddr6.MustAddr("2001:db8::2"),
		40000, 22, layers.BuildOptions{Link: layers.LinkTypeEthernet})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := make([]byte, len(frame))
		copy(buf, frame)
		d := new(layers.Decoded)
		if err := layers.ParseFrame(buf, layers.LinkTypeEthernet, d); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(frame)))
}

// BenchmarkEndToEndDay measures one full simulated CDN day through
// policy, filter, and detection — the pipeline's unit of progress.
func BenchmarkEndToEndDay(b *testing.B) {
	res := benchRun(b)
	policy := DefaultCollectPolicy()
	var recs []Record
	res.Census.EmitDay(benchStart.Add(48*time.Hour), func(r Record) { recs = append(recs, r) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det := NewDetector(DefaultDetectorConfig())
		f := NewArtifactFilter()
		feed := func(rs []Record) {
			for _, r := range rs {
				det.Process(r)
			}
		}
		for _, r := range recs {
			if !policy.Admit(r) {
				continue
			}
			feed(f.Push(r))
		}
		feed(f.Close())
		det.Finish()
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// BenchmarkEndToEndFilteredPipeline runs a full simulated CDN day
// through the builder-composed filtered pipeline — policy stage,
// artifact stage, sharded detector sink — on both dispatch paths: the
// batch path (every stage is batch-native, so records flow
// batch-to-batch end to end) and the record path (forced by hiding the
// source's batch capability). The batch path must not be slower; it is
// the deployment-shaped counterpart of BenchmarkEndToEndDay's
// hand-wired loop. (Replaces BenchmarkEndToEndDayPipeline, which only
// measured the nested-constructor record path.)
func BenchmarkEndToEndFilteredPipeline(b *testing.B) {
	allowParallelism(b, 9)
	res := benchRun(b)
	var recs []Record
	res.Census.EmitDay(benchStart.Add(48*time.Hour), func(r Record) { recs = append(recs, r) })
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })

	run := func(b *testing.B, src RecordSource, wantBatched bool) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := NewShardedSink(NewShardedDetector(DefaultDetectorConfig(), 8))
			p := From(src).
				Policy(DefaultCollectPolicy()).
				Artifact().
				Build(sink)
			if p.Batched() != wantBatched {
				b.Fatalf("Batched() = %v, want %v", p.Batched(), wantBatched)
			}
			if err := p.Run(); err != nil {
				b.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(recs)), "records/op")
	}

	b.Run("batch", func(b *testing.B) {
		run(b, NewSliceSource(recs), true)
	})
	b.Run("record", func(b *testing.B) {
		run(b, SourceFunc(NewSliceSource(recs).Emit), false)
	})
}

// BenchmarkMetricsHotPath proves the observability layer stays off the
// dispatch hot path: the same filtered batch pipeline as
// BenchmarkEndToEndFilteredPipeline, bare versus threaded through a
// registered metrics bundle (Builder.Instrument). The instrumented
// run must match the baseline's allocs/op — the per-batch counters are
// plain atomics, allocation happens only at registration.
func BenchmarkMetricsHotPath(b *testing.B) {
	allowParallelism(b, 9)
	res := benchRun(b)
	var recs []Record
	res.Census.EmitDay(benchStart.Add(48*time.Hour), func(r Record) { recs = append(recs, r) })
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time.Before(recs[j].Time) })

	run := func(b *testing.B, m *PipelineMetrics) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := NewShardedSink(NewShardedDetector(DefaultDetectorConfig(), 8))
			bl := From(NewSliceSource(recs)).
				Policy(DefaultCollectPolicy()).
				Artifact()
			if m != nil {
				bl = bl.Instrument(m)
			}
			if err := bl.Build(sink).Run(); err != nil {
				b.Fatal(err)
			}
			if err := sink.Close(); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("baseline", func(b *testing.B) {
		run(b, nil)
	})
	b.Run("instrumented", func(b *testing.B) {
		run(b, RegisterPipelineMetrics(NewMetricsRegistry()))
	})
}

// benchRecordsIDS synthesizes the IDS benchmark workload. Unlike
// benchRecords — whose sources all sit inside 2001:db8::/32, fine for
// the /48-coarsest detector — the IDS tracks /32 as its coarsest
// level, so its sharding partitions by /32 prefix: sources here spread
// across 64 /32s (the internet-wide background an inline deployment
// actually sees), keeping the per-shard partition meaningful.
func benchRecordsIDS(n int) []Record {
	rng := rand.New(rand.NewSource(99))
	recs := make([]Record, 0, n)
	ts := benchStart
	base := netaddr6.MustPrefix("2001::/16")
	dstBase := netaddr6.MustPrefix("2001:db8:f000::/44")
	for i := 0; i < n; i++ {
		p32 := netaddr6.NthSubprefix(base, 32, uint64(i%64))
		src := netaddr6.RandomSubprefix(p32, 64, rng).Addr()
		recs = append(recs, Record{
			Time: ts, Src: netaddr6.WithIID(src, uint64(i%64)),
			Dst:   netaddr6.RandomAddrIn(dstBase, rng),
			Proto: layers.ProtoTCP, DstPort: uint16(1 + i%1024), Length: 60,
		})
		ts = ts.Add(10 * time.Millisecond)
	}
	return recs
}

// BenchmarkIDSProcess measures the dynamic-aggregation IDS on the
// synthetic workload — the inline-deployment counterpart of
// BenchmarkDetectorStreaming, with sketched destination sets at four
// aggregation levels. (Formerly BenchmarkIDSEngine; renamed with the
// batch/sharded additions so the BENCH trajectory names the serial
// baseline explicitly.)
func BenchmarkIDSProcess(b *testing.B) {
	recs := benchRecordsIDS(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewIDS(DefaultIDSConfig())
		for j, r := range recs {
			e.Process(r)
			if j%10_000 == 9_999 {
				e.Tick(r.Time)
			}
		}
		if alerts := e.Flush(); len(alerts) == 0 {
			b.Fatal("no alerts")
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// benchmarkIDSSharded measures the sharded IDS engine on the
// BenchmarkIDSProcess workload, fed in batches with the identical Tick
// cadence (one Tick per 10k records — sweep cost dominates eviction
// cadence, so cadence must match for the comparison to be fair);
// shards=1 is the parallelism baseline (one worker, same batching
// overhead).
func benchmarkIDSSharded(b *testing.B, shards int) {
	allowParallelism(b, shards+1)
	recs := benchRecordsIDS(100_000)
	const batch = 10_000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewShardedIDS(DefaultIDSConfig(), shards)
		for j := 0; j < len(recs); j += batch {
			end := j + batch
			if end > len(recs) {
				end = len(recs)
			}
			e.ProcessBatch(recs[j:end])
			e.Tick(recs[end-1].Time)
		}
		if alerts := e.Flush(); len(alerts) == 0 {
			b.Fatal("no alerts")
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

func BenchmarkIDSSharded1(b *testing.B) { benchmarkIDSSharded(b, 1) }
func BenchmarkIDSSharded4(b *testing.B) { benchmarkIDSSharded(b, 4) }

// encodeBenchLog writes records to an in-memory binary log for the
// ingest benchmarks.
func encodeBenchLog(b *testing.B, recs []Record) []byte {
	b.Helper()
	var buf bytes.Buffer
	w := WriteLog(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// BenchmarkParallelDecode measures the chunked parallel log decode at
// 1, 4, and 8 workers against the same in-memory log — the tentpole's
// raw-ingest number. workers=1 doubles as the serial-overhead check:
// it should track BenchmarkLogSourceDecode-style serial decode within
// noise (the extra cost is one goroutine handoff per batch).
func BenchmarkParallelDecode(b *testing.B) {
	recs := benchRecords(100_000)
	data := encodeBenchLog(b, recs)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			allowParallelism(b, workers+2)
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				src := NewParallelLogSource(bytes.NewReader(data), int64(len(data)), workers)
				n := 0
				err := src.EmitBatch(4096, func(rs []Record) error {
					n += len(rs)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n != len(recs) {
					b.Fatalf("decoded %d records, want %d", n, len(recs))
				}
			}
			b.ReportMetric(float64(len(recs)), "records/op")
		})
	}
}

// BenchmarkMergeSource measures the k-way loser-tree merge over four
// chronologically split day-logs (serial decode per input, so the
// number isolates merge cost rather than decode parallelism).
func BenchmarkMergeSource(b *testing.B) {
	recs := benchRecords(100_000)
	const k = 4
	parts := make([][]byte, k)
	for i := range parts {
		lo, hi := i*len(recs)/k, (i+1)*len(recs)/k
		parts[i] = encodeBenchLog(b, recs[lo:hi])
	}
	allowParallelism(b, k+1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srcs := make([]RecordSource, k)
		for j := range srcs {
			srcs[j] = NewLogSource(bytes.NewReader(parts[j]))
		}
		n := 0
		err := NewMergeSource(srcs...).EmitBatch(4096, func(rs []Record) error {
			n += len(rs)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != len(recs) {
			b.Fatalf("merged %d records, want %d", n, len(recs))
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}
