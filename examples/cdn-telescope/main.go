// cdn-telescope runs a compressed CDN experiment end to end — synthetic
// telescope, Table-2 scan-actor census, artifact traffic, 5-duplicate
// filtering, multi-aggregation detection — and prints Table-1/Table-2
// style summaries plus the artifact-filter report of Appendix A.1.
//
// Flags scale the experiment; the default covers eight weeks at a
// laptop-friendly size (a few seconds).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"v6scan"
)

func main() {
	var (
		machines = flag.Int("machines", 2000, "CDN machines in the telescope")
		ases     = flag.Int("ases", 25, "CDN deployment ASes")
		weeks    = flag.Int("weeks", 8, "simulated weeks (from 2021-02-01)")
		start    = flag.String("start", "2021-02-01", "window start (YYYY-MM-DD)")
	)
	flag.Parse()

	from, err := time.Parse("2006-01-02", *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	cfg := v6scan.DefaultExperimentConfig()
	cfg.Telescope.Machines = *machines
	cfg.Telescope.ASes = *ases
	cfg.Census.Start = from
	cfg.Census.End = from.Add(time.Duration(*weeks) * 7 * 24 * time.Hour)
	cfg.Detector.WeekEpoch = from

	// The Figure-1 heatmap collector joins the experiment's builder
	// pipeline as a sink on the raw (pre-policy) tap. A tap needing its
	// own stages would compose one source-lessly:
	// v6scan.Chain().Filter(pred).Into(sink).
	heat := v6scan.NewHeatmapCollector()
	cfg.RawSink = v6scan.CollectorSink(heat.Add)

	t0 := time.Now()
	res, err := v6scan.RunCDNExperiment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment: %d machines, %v window, %v runtime\n",
		res.Telescope.NumMachines(), cfg.Census.End.Sub(cfg.Census.Start), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("records: %d generated, %d logged by policy, %d past artifact filter\n\n",
		res.RecordsGenerated, res.RecordsLogged, res.RecordsDetected)

	fmt.Println("— Table 1: detected scans per aggregation —")
	fmt.Println(v6scan.BuildTable1(res.Detector, res.DB).Render())

	fmt.Println("— Table 2: top source ASes —")
	t2 := v6scan.BuildTable2(res.Detector, res.DB, 20)
	fmt.Println(t2.Render())
	fmt.Printf("top-2 AS share: %.1f%%   top-5: %.1f%%\n\n", 100*t2.TopShare(2), 100*t2.TopShare(5))

	fmt.Println("— Appendix A.1: artifact filter —")
	st := res.Filter
	fmt.Printf("dropped %d packets from %d source-days\n", st.PacketsDropped, st.SourcesDropped)
	for _, svc := range st.TopFilteredServices(5) {
		fmt.Printf("  %-10s %8d packets %5d sources\n", svc.Service, svc.Packets, svc.Sources)
	}
	fmt.Println()

	fmt.Println("— Figure 1: raw per-/64 histogram —")
	hm := heat.Build()
	fmt.Print(hm.Render())
	fmt.Printf("near-origin /64s: %.1f%% of %d sources\n", 100*hm.NearOriginShare(), hm.Sources)
}
