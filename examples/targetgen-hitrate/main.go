// targetgen-hitrate quantifies the paper's closing argument: IPv6
// scanning stays rare only while finding targets stays expensive, and
// target-generation algorithms are the factor most likely to change
// that. The example trains a per-nybble model on a leaked half of a
// telescope's DNS-exposed addresses, then compares hit rates against
// the full telescope for three strategies a scanner could use:
//
//	random probing of the covering prefix   (the paper: futile)
//	learned per-nybble generation           (Entropy/IP-style)
//	nearby expansion around known targets   (the Section 3.3 pattern)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net/netip"

	"v6scan"
	"v6scan/internal/netaddr6"
	"v6scan/internal/targetgen"
	"v6scan/internal/telescope"
)

func main() {
	tcfg := v6scan.TelescopeConfig{
		Machines: 4000, ASes: 40, ASNBase: 64512,
		BasePrefix: netaddr6.MustPrefix("2a00::/12"), PairWithin123Share: 0.85, Seed: 1,
	}
	tele, err := telescope.New(tcfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))

	// The attacker's knowledge: half the DNS-exposed addresses.
	exposed := tele.ExposedAddrs()
	leak := exposed[:len(exposed)/2]

	// The defender's ground truth: every telescope address.
	population := make(map[netip.Addr]struct{}, 2*tele.NumMachines())
	for _, a := range exposed {
		population[a] = struct{}{}
	}
	for _, a := range tele.HiddenAddrs() {
		population[a] = struct{}{}
	}

	const budget = 20000

	// Strategy 1: random probing of the covering /12.
	random := make([]netip.Addr, budget)
	for i := range random {
		random[i] = netaddr6.RandomAddrIn(tcfg.BasePrefix, rng)
	}

	// Strategy 2: learned per-nybble generation.
	model, err := targetgen.Train(leak)
	if err != nil {
		log.Fatal(err)
	}
	learned := model.Generate(budget, rng)

	// Strategy 3: nearby expansion around each leaked address (/123,
	// the closeness of the telescope's address pairs).
	var nearby []netip.Addr
	for _, seed := range leak {
		nearby = append(nearby, targetgen.NearbyExpansion(seed, 123, 10)...)
		if len(nearby) >= budget {
			nearby = nearby[:budget]
			break
		}
	}

	fmt.Printf("telescope: %d machines (%d addresses); attacker knows %d exposed addrs\n\n",
		tele.NumMachines(), len(population), len(leak))
	fmt.Printf("%-34s %8s %9s\n", "strategy", "probes", "hit rate")
	show := func(name string, c []netip.Addr) {
		fmt.Printf("%-34s %8d %8.3f%%\n", name, len(c), 100*targetgen.HitRate(c, population))
	}
	show("random in covering /12", random)
	show("learned per-nybble model", learned)
	show("nearby expansion (/123) of leak", nearby)

	fmt.Println("\nper-nybble entropy of the leaked population (bits, 0-4):")
	e := model.Entropy()
	for i, v := range e {
		fmt.Printf("%4.1f", v)
		if (i+1)%16 == 0 {
			fmt.Println()
		}
	}
	fmt.Println("\ndense /48s a 6Gen-style scanner would enumerate first:")
	for _, p := range targetgen.TopPrefixes(leak, 48, 5) {
		fmt.Printf("  %v\n", p)
	}
}
