// mawi-crosscheck reproduces the Section-4 public-data cross-check:
// it simulates MAWI-style daily 15-minute capture windows (writing one
// day through the pcap round trip to prove format fidelity), runs the
// extended Fukuda–Heidemann detector, and reports scan sources per
// day, top-source packet shares, ICMPv6 prevalence, and the
// Hamming-weight signatures of the two 2021 peak events.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"v6scan"
	"v6scan/internal/entropy"
	"v6scan/internal/layers"
	"v6scan/internal/mawi"
)

func main() {
	var (
		days  = flag.Int("days", 21, "days to simulate")
		start = flag.String("start", "2021-12-15", "window start (YYYY-MM-DD); default spans the Dec 24 peak")
	)
	flag.Parse()

	from, err := time.Parse("2006-01-02", *start)
	if err != nil {
		log.Fatalf("bad -start: %v", err)
	}
	cfg := v6scan.DefaultMAWISimConfig()
	cfg.Start = from
	cfg.End = from.Add(time.Duration(*days) * 24 * time.Hour)
	sim := v6scan.NewMAWISimulator(cfg)

	mc := v6scan.DefaultMAWIConfig()
	mc.TrackDsts = true

	fmt.Printf("%-12s %8s %8s %9s %7s %7s\n", "day", "sources", "icmpv6", "packets", "top1%", "top3%")
	icmpDays, total := 0, 0
	sim.Days(func(day time.Time) {
		total++
		recs := sim.EmitDay(day)

		// Round-trip the first day through pcap to exercise the full
		// decode path.
		if total == 1 {
			var buf bytes.Buffer
			if err := mawi.WritePcapDay(&buf, recs); err != nil {
				log.Fatal(err)
			}
			rt, err := mawi.ReadPcapDay(&buf)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("pcap round trip: %d records in, %d out\n\n", len(recs), len(rt))
			recs = rt
		}

		// Each day is one capture window: a slice source terminated by
		// the builder's MAWI helper, which owns the detector lifecycle
		// and returns the window's scans.
		scans, err := v6scan.From(v6scan.NewSliceSource(recs)).
			MAWI(context.Background(), mc)
		if err != nil {
			log.Fatal(err)
		}
		var pkts, top1, top3 uint64
		icmp := 0
		for i, s := range scans {
			pkts += s.Packets
			if i == 0 {
				top1 = s.Packets
			}
			if i < 3 {
				top3 += s.Packets
			}
			if len(s.Services) > 0 && s.Services[0].Proto == layers.ProtoICMPv6 {
				icmp++
			}
		}
		if icmp > 0 {
			icmpDays++
		}
		share := func(x uint64) float64 {
			if pkts == 0 {
				return 0
			}
			return 100 * float64(x) / float64(pkts)
		}
		fmt.Printf("%-12s %8d %8d %9d %6.1f%% %6.1f%%\n",
			day.Format("2006-01-02"), len(scans), icmp, pkts, share(top1), share(top3))

		// Hamming-weight signature of the day's top scan (Figure 7).
		if len(scans) > 0 && (day.Equal(mawi.Dec24Peak) || day.Equal(mawi.July6Peak)) {
			hist := entropy.HammingHistogram64(scans[0].DstIIDs)
			st := entropy.SummarizeHamming(hist)
			fmt.Printf("  peak scan HW: mean=%.1f σ=%.1f gaussian=%v (random-IID signature)\n",
				st.Mean, st.StdDev, entropy.LooksGaussian(hist))
		}
	})
	fmt.Printf("\nICMPv6 scan days: %d of %d (paper: 342 of 439)\n", icmpDays, total)
}
