// Quickstart: feed a synthetic stream of unsolicited packets through a
// pipeline into the scan detector and print the detected scans at each
// aggregation level. This is the minimal end-to-end use of the public
// API: a record source, a left-to-right builder chain, one terminal
// call — first from an in-memory slice, then re-ingested from two
// day-log files through the parallel multi-file path (FromFiles), and
// finally split across two publisher pipelines feeding one aggregator
// over an event bus (PublishInto / FromBus) — all three produce
// identical results.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"v6scan"
	"v6scan/internal/layers"
)

func main() {
	// A scanner at 2001:db8:bad::1 probing 500 addresses on TCP/22,
	// one packet per second.
	var recs []v6scan.Record
	src := netip.MustParseAddr("2001:db8:bad::1")
	base := netip.MustParseAddr("2001:db8:cafe::")
	ts := time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 500; i++ {
		recs = append(recs, v6scan.Record{
			Time: ts, Src: src, Dst: addrPlus(base, uint64(i+1)),
			Proto: layers.ProtoTCP, SrcPort: 40000, DstPort: 22, Length: 60,
		})
		ts = ts.Add(time.Second)
	}
	// An ordinary client talking to a single server: never a scan.
	client := netip.MustParseAddr("2001:db8:c11e:17::1")
	server := addrPlus(base, 1)
	for i := 0; i < 200; i++ {
		recs = append(recs, v6scan.Record{
			Time: ts, Src: client, Dst: server,
			Proto: layers.ProtoTCP, SrcPort: 52000, DstPort: 8080, Length: uint16(60 + i%700),
		})
		ts = ts.Add(100 * time.Millisecond)
	}

	// Compose the pipeline left to right: source → collection policy →
	// detector. Raise the final argument of Detect above 1 to spread
	// detection across that many worker shards — the output is
	// identical at any shard count. AdvanceEvery periodically closes
	// sessions idle past the timeout as stream time passes, so peak
	// memory tracks concurrently active sources instead of every source
	// ever seen; it never changes the detected scans.
	det, err := v6scan.From(v6scan.NewSliceSource(recs)).
		Policy(v6scan.DefaultCollectPolicy()).
		AdvanceEvery(time.Minute).
		Detect(context.Background(), v6scan.DefaultDetectorConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, lvl := range []v6scan.AggLevel{v6scan.Agg128, v6scan.Agg64, v6scan.Agg48} {
		fmt.Printf("— detected scans at %s —\n", lvl)
		for _, s := range det.Scans(lvl) {
			fmt.Printf("  %-28s %5d packets  %4d dsts  %2d ports  %v class=%v\n",
				s.Source, s.Packets, s.Dsts, s.NumPorts(), s.Duration(), s.Class())
		}
	}

	// Multi-file ingest: real deployments read day-logs, not slices.
	// Split the same stream across two binary log files and run the
	// identical chain with FromFiles — each file decodes in parallel
	// record-aligned chunks (DecodeWorkers caps the pool) and the files
	// k-way merge back into one time-ordered stream, so the detector
	// sees exactly the stream the slice run saw.
	dir, err := os.MkdirTemp("", "quickstart-logs")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	paths := []string{filepath.Join(dir, "day1.log"), filepath.Join(dir, "day2.log")}
	for i, path := range paths {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w := v6scan.WriteLog(f)
		lo, hi := i*len(recs)/2, (i+1)*len(recs)/2
		for _, r := range recs[lo:hi] {
			if err := w.Write(r); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	det2, err := v6scan.FromFiles(paths...).
		DecodeWorkers(4).
		Policy(v6scan.DefaultCollectPolicy()).
		AdvanceEvery(time.Minute).
		Detect(context.Background(), v6scan.DefaultDetectorConfig(), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— multi-file re-ingest: %d scans at %s (same as above) —\n",
		len(det2.Scans(v6scan.Agg128)), v6scan.Agg128)

	// Distributed split: the same pipeline cut in half at a process
	// boundary. Each collector terminates its local chain in
	// PublishInto, which partitions its stream across per-collector
	// topics by coarsest-level source prefix and ships CRC-guarded
	// envelopes over an event bus; the aggregator subscribes to every
	// topic with FromBus (subscriptions attach immediately, so start it
	// first), merges them back into one time-ordered stream, and runs
	// detection — output identical to the single-process runs above.
	cfg := v6scan.DefaultDetectorConfig()
	level := v6scan.CoarsestLevel(cfg.Levels) // topic partition key
	bus := v6scan.NewBus()
	topics := [][]string{
		v6scan.RecordTopics("collector0", 2),
		v6scan.RecordTopics("collector1", 2),
	}
	// Aggregator half. Topic order is the merge tie-break: list
	// collector0's topics before collector1's.
	agg := v6scan.FromBus(bus, append(topics[0], topics[1]...)...)

	// Collector halves, one goroutine each (in a real deployment, one
	// process each, with the bus replaced by a broker).
	pubErrs := make(chan error, len(topics))
	for i, tp := range topics {
		go func(i int, tp []string) {
			lo, hi := i*len(recs)/2, (i+1)*len(recs)/2
			pubErrs <- v6scan.From(v6scan.NewSliceSource(recs[lo:hi])).
				Policy(v6scan.DefaultCollectPolicy()).
				PublishInto(context.Background(), bus, level, tp...)
		}(i, tp)
	}
	det3, err := agg.AdvanceEvery(time.Minute).
		Detect(context.Background(), cfg, 1)
	if err != nil {
		log.Fatal(err)
	}
	for range topics {
		if err := <-pubErrs; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("— distributed 2-collector run: %d scans at %s (same as above) —\n",
		len(det3.Scans(v6scan.Agg128)), v6scan.Agg128)
}

// addrPlus returns base + n (IID arithmetic).
func addrPlus(base netip.Addr, n uint64) netip.Addr {
	b := base.As16()
	var iid uint64
	for i := 8; i < 16; i++ {
		iid = iid<<8 | uint64(b[i])
	}
	iid += n
	for i := 15; i >= 8; i-- {
		b[i] = byte(iid)
		iid >>= 8
	}
	return netip.AddrFrom16(b)
}
