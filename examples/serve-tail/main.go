// Serve-tail: the daemon serving loop end to end, in-process. A
// writer goroutine plays the role of the firewall appending to a
// growing binary log; a ServeDaemon tails it, runs the
// dynamic-aggregation IDS continuously, and serves HTTP; the main
// goroutine plays the operator, curling /api/state and /api/alerts
// until the scanner written into the log comes back as an alert. The
// same flow from the shell is cmd/v6scand + tools/mklog:
//
//	v6scand -i fw.log -listen 127.0.0.1:8080 &
//	mklog -o fw.log -dsts 150 && mklog -o fw.log -offset 2h -dsts 1
//	curl http://127.0.0.1:8080/api/alerts
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/netip"
	"os"
	"path/filepath"
	"time"

	"v6scan"
)

func main() {
	dir, err := os.MkdirTemp("", "serve-tail")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "fw.log")

	// The daemon: tail the (not yet existing) log, tick stream time
	// every minute, alert on sources probing ≥20 destinations.
	d, err := v6scan.NewServeDaemon(v6scan.ServeConfig{
		LogPath:      logPath,
		Shards:       4,
		IDS:          v6scan.IDSConfig{MinDsts: 20, Timeout: 10 * time.Minute},
		AdvanceEvery: time.Minute,
		Poll:         5 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: d.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- d.Run(ctx) }()

	// The firewall: a scan burst (one distinct destination per second,
	// far past MinDsts), then benign singletons walking stream time
	// forward so the eviction clock ticks past the scanner's idle
	// timeout.
	go appendTraffic(logPath)

	// The operator: poll until the alert shows up.
	fmt.Println("serving on", base)
	for i := 0; ; i++ {
		body := get(base + "/api/alerts")
		if i%50 == 0 {
			fmt.Printf("state: %s\n", get(base+"/api/state"))
		}
		var page struct {
			Total  int              `json:"total"`
			Alerts []map[string]any `json:"alerts"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			log.Fatal(err)
		}
		if page.Total > 0 {
			fmt.Printf("alert: %v scanned %v destinations (level %v)\n",
				page.Alerts[0]["prefix"], page.Alerts[0]["estimated_dsts"], page.Alerts[0]["level"])
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Clean shutdown: cancel drains the tail, the daemon cuts its
	// final state, Run returns.
	cancel()
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	srv.Shutdown(context.Background())
	fmt.Println("stopped cleanly")
}

// appendTraffic writes the scan plus the clock-driving fillers to the
// log in two appends, flushing after each so the tail sees them.
func appendTraffic(path string) {
	epoch := time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)
	scanner := netip.MustParseAddr("2001:db8:bad::1")
	dst := netip.MustParseAddr("2001:db8:ffff::")
	var scan []v6scan.Record
	for i := 0; i < 30; i++ {
		scan = append(scan, v6scan.Record{
			Time: epoch.Add(time.Duration(i) * time.Second),
			Src:  scanner, Dst: addrPlus(dst, uint64(i+1)),
		})
	}
	appendRecords(path, scan)

	benign := netip.MustParseAddr("2001:db8:600d::")
	var fillers []v6scan.Record
	for m := 1; m <= 15; m++ {
		fillers = append(fillers, v6scan.Record{
			Time: epoch.Add(time.Duration(m) * time.Minute),
			Src:  addrPlus(benign, uint64(m)), Dst: addrPlus(dst, 1),
		})
	}
	appendRecords(path, fillers)
}

func appendRecords(path string, recs []v6scan.Record) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	w := v6scan.WriteLog(f)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return b
}

func addrPlus(a netip.Addr, n uint64) netip.Addr {
	b := a.As16()
	for i := 15; i >= 8 && n > 0; i-- {
		s := uint64(b[i]) + (n & 0xff)
		b[i] = byte(s)
		n = (n >> 8) + (s >> 8)
	}
	return netip.AddrFrom16(b)
}
