// ids-aggregation demonstrates the Discussion-section idea: an IDS
// that tracks several source-aggregation levels simultaneously and
// picks, per scanning entity, the most specific level that captures
// its activity — instead of committing to one fixed mask and either
// missing spread-source scans (too specific) or blocklisting innocent
// neighbours (too coarse).
//
// The example synthesizes three archetypal actors from the paper —
// a single-/128 scanner (AS #1 style), a /64-spread scanner (AS #9
// style), and a /48-spread scanner (AS #18 style) — then tees one
// record stream through a pipeline into both the offline
// multi-aggregation detector and the online IDS engine, showing which
// aggregation level each actor is caught at and what a blocklist
// entry should be.
//
// The IDS side runs the sharded engine: -shards picks the worker
// count (default 1), and the alert list is byte-identical at any
// value — partitioning by coarsest-level source prefix keeps each
// scanning entity's multi-level state on one shard.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/netip"
	"time"

	"v6scan"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

func main() {
	shards := flag.Int("shards", 1, "IDS worker shards (alerts are identical at any count)")
	flag.Parse()

	cfg := v6scan.DefaultDetectorConfig()
	cfg.Levels = []v6scan.AggLevel{v6scan.Agg128, v6scan.Agg64, v6scan.Agg48, v6scan.Agg32}

	// Synthesize the three actors into one time-ordered stream.
	rng := rand.New(rand.NewSource(42))
	ts := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	targets := netaddr6.MustPrefix("2001:db8:f::/48")
	var recs []v6scan.Record
	emit := func(src netip.Addr, n int) {
		for i := 0; i < n; i++ {
			recs = append(recs, v6scan.Record{
				Time: ts, Src: src, Dst: netaddr6.RandomAddrIn(targets, rng),
				Proto: layers.ProtoTCP, SrcPort: 40000, DstPort: 22, Length: 60,
			})
			ts = ts.Add(200 * time.Millisecond)
		}
	}
	// Actor A: one /128, 300 probes.
	emit(netaddr6.MustAddr("2001:db8:a::1"), 300)
	// Actor B: 50 random /128s inside one /64, 8 probes each.
	b64 := netaddr6.MustPrefix("2001:db8:b:1::/64")
	for i := 0; i < 50; i++ {
		emit(netaddr6.RandomAddrIn(b64, rng), 8)
	}
	// Actor C: 40 /64s inside one /48, 6 probes each.
	c48 := netaddr6.MustPrefix("2001:db8:c::/48")
	for i := 0; i < 40; i++ {
		p64 := netaddr6.NthSubprefix(c48, 64, uint64(i))
		emit(netaddr6.RandomAddrIn(p64, rng), 6)
	}

	// One pipeline, two terminal sinks: the offline detector rides a
	// Tee branch while the online dynamic-aggregation engine (sharded
	// across -shards workers) terminates the main chain — both see the
	// identical stream.
	det := v6scan.NewDetector(cfg)
	idsSink := v6scan.NewShardedIDSSink(v6scan.NewShardedIDS(v6scan.DefaultIDSConfig(), *shards))
	// Tick once per minute of stream time — the inline deployment's
	// timer: idle candidates are evicted (and their alerts emitted)
	// mid-stream, bounding memory; the horizon reaches every shard
	// through the dispatcher, so alerts stay identical at any -shards.
	idsSink.AdvanceEvery = time.Minute
	if err := v6scan.From(v6scan.NewSliceSource(recs)).
		Tee(v6scan.NewDetectorSink(det)).
		RunInto(context.Background(), idsSink); err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-level detections:")
	byLevel := map[v6scan.AggLevel][]v6scan.Scan{}
	for _, lvl := range cfg.Levels {
		byLevel[lvl] = det.Scans(lvl)
		for _, s := range byLevel[lvl] {
			fmt.Printf("  %-5s %-24s %4d dsts from %3d /128s\n", lvl, s.Source, s.Dsts, s.SrcAddrs)
		}
	}

	fmt.Println("\nIDS engine alerts:")
	for _, a := range idsSink.Result() {
		fmt.Printf("  %s\n", a)
	}

	// Minimal-footprint blocklist: for each detected /48-or-coarser
	// entity, prefer the most specific level that already captures the
	// bulk (≥90%) of its destinations — avoiding collateral damage.
	fmt.Println("\nrecommended blocklist entries (manual, most specific sufficient level):")
	for _, s48 := range byLevel[v6scan.Agg48] {
		best := s48.Source
		for _, lvl := range []v6scan.AggLevel{v6scan.Agg128, v6scan.Agg64} {
			for _, s := range byLevel[lvl] {
				if s48.Source.Contains(s.Source.Addr()) && float64(s.Dsts) >= 0.9*float64(s48.Dsts) {
					best = s.Source
					break
				}
			}
			if best != s48.Source {
				break
			}
		}
		fmt.Printf("  block %v\n", best)
	}
}
