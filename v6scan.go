// Package v6scan is a library for detecting and characterizing
// large-scale IPv6 scanning, reproducing the methodology of Richter,
// Gasser & Berger, "Illuminating Large-Scale IPv6 Scanning in the
// Internet" (IMC 2022).
//
// The package is a facade over the internal subsystems:
//
//   - the streaming pipeline that every consumer plugs into — sources
//     (record slices, binary logs, pcap captures), stages (collection
//     policy, day sorter, artifact filter, taps, tees) and terminal
//     sinks, all behind one RecordSink interface, assembled left to
//     right with the fluent builder: From / Chain and the
//     New*Source / New*Sink constructors;
//   - scan detection with multi-level source aggregation (the paper's
//     central methodological contribution): NewDetector / Detector,
//     and the parallel sharded variant NewShardedDetector whose output
//     is byte-identical at any shard count;
//   - the MAWI-style detector (extended Fukuda–Heidemann definition):
//     NewMAWIDetector;
//   - the CDN firewall-log record schema, binary codec, collection
//     policy and 5-duplicate artifact filter: Record, ReadLog,
//     WriteLog, NewArtifactFilter;
//   - packet decoding and classic pcap I/O for feeding captures into
//     detection: RecordsFromPcap / NewPcapSource;
//   - simulation of the paper's two vantage points and its scan-actor
//     census, for experimentation and regression of the published
//     results: RunCDNExperiment, NewMAWISimulator;
//   - analysis builders that regenerate every table and figure of the
//     paper: the Build* functions.
//
// Quickstart — compose the paper's processing chain left to right with
// the fluent builder and terminate it in a sharded detector:
//
//	det, err := v6scan.From(v6scan.NewLogSource(f)).
//	    Policy(v6scan.DefaultCollectPolicy()).
//	    Artifact().
//	    Detect(ctx, v6scan.DefaultDetectorConfig(), 8)
//	if err != nil { ... }
//	for _, scan := range det.Scans(v6scan.Agg64) {
//	    fmt.Println(scan.Source, scan.Packets, scan.Dsts)
//	}
//
// Multi-day workloads ingest through FromFiles: every log decodes in
// parallel record-aligned chunks and the files k-way merge into one
// time-ordered stream, byte-identical to a serial read of their
// concatenation:
//
//	det, err := v6scan.FromFiles("day1.log", "day2.log").
//	    DecodeWorkers(8).
//	    Artifact().
//	    Detect(ctx, v6scan.DefaultDetectorConfig(), 8)
//
// Every built-in stage is batch-native, so a fully filtered pipeline
// from a batching source (log, pcap, slice) into a batch-consuming
// terminal streams batch-to-batch end to end; Pipeline.Batched reports
// whether the fast path engaged. Ingestion is memory-bounded for
// larger-than-RAM inputs: the log and pcap sources decode
// incrementally through pooled chunk buffers, WindowSort repairs
// bounded timestamp disorder in flight (full-sort-equivalent output
// for window-bounded skew, buffering one window instead of a day),
// and the builder's AdvanceEvery forwards a stream-time eviction
// horizon to the detector/IDS terminals — sharded ones included — so
// idle per-source state is released continuously instead of
// accumulating until the end of input. AdvanceEvery is the one
// cadence name across all terminals (the IDS sinks' former TickEvery
// field remains as a deprecated alias). Arbitrary terminals plug in
// through RunInto, which owns the sink lifecycle (Flush to finalize,
// Close to release, typed Result accessors):
//
//	sink := v6scan.NewShardedIDSSink(v6scan.NewShardedIDS(cfg, 8))
//	sink.AdvanceEvery = time.Minute
//	err := v6scan.From(src).Artifact().RunInto(ctx, sink)
//	alerts := sink.Result()
//
// # Checkpoint and resume
//
// Long runs survive interruption through versioned snapshots of the
// terminal's state, cut at consistent stream-time points riding the
// AdvanceEvery cadence. Enable them with CheckpointEvery; resume by
// restoring the latest snapshot and replaying the same input with the
// already-processed prefix skipped:
//
//	// Checkpointed run: a snapshot every 6h of stream time.
//	det, err := v6scan.FromFiles(logs...).
//	    Artifact().
//	    AdvanceEvery(time.Hour).
//	    CheckpointEvery(6*time.Hour, ckptDir).
//	    Detect(ctx, cfg, 8)
//
//	// After a crash: restore the sink and skip the replayed prefix.
//	path, _ := v6scan.LatestCheckpoint(ckptDir)
//	res, err := v6scan.ResumeCheckpoint(path, 8)
//	err = v6scan.FromFiles(logs...).
//	    Artifact().
//	    AdvanceEvery(time.Hour).
//	    CheckpointEvery(6*time.Hour, ckptDir).
//	    ResumeFrom(res.Horizon).
//	    RunInto(ctx, res.Sink)
//
// The resumed run's results are byte-identical to the uninterrupted
// one, at any shard count — snapshots re-partition on restore, so a
// run checkpointed at 8 shards may resume at 2. Snapshots embed a
// format version and per-section checksums; corrupted or truncated
// files are rejected on restore.
//
// # Migrating from the nested constructors
//
// The pre-builder API composed chains inside-out. Its deprecated
// wrapper constructors have been removed (they had no remaining
// callers); each maps to one left-to-right builder call:
//
//	NewPipeline(src, sink).Run()            → From(src).RunInto(ctx, sink)
//	PolicyStage(p, next)                    → .Policy(p)
//	FilterStage(pred, next)                 → .Filter(pred)
//	TapStage(fn, next)                      → .Tap(fn)
//	NewPipelineCounter(next)                → .Counter(&c)
//	NewDaySortStage(next)                   → .DaySort()
//	NewArtifactStage(f, next)               → .Artifact(f)   (or .Artifact())
//	TeeStage(a, b)                          → .Tee(a) continuing into b,
//	                                          or Chain().…​.Into(sink) for
//	                                          a source-less stage chain
//	NewShardedSink(NewShardedDetector(c,n)) → .Detect(ctx, c, n)
//	NewIDSSink(NewIDS(c)) / sharded         → .IDS(ctx, c, n)
//	NewMAWISink(NewMAWIDetector(c))         → .MAWI(ctx, c)
//
// Likewise the two eviction-cadence names are now one: the builder's
// AdvanceEvery drives whichever terminal follows, and the IDS sinks'
// TickEvery field is a deprecated alias for their AdvanceEvery. A
// plain Detector fed record by record (Process / Finish / Scans)
// remains fully supported for single-goroutine use.
package v6scan

import (
	"context"
	"io"
	"time"

	"v6scan/internal/analysis"
	"v6scan/internal/artifacts"
	"v6scan/internal/asdb"
	"v6scan/internal/bus"
	"v6scan/internal/checkpoint"
	"v6scan/internal/core"
	"v6scan/internal/dispatch"
	"v6scan/internal/events"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/mawi"
	"v6scan/internal/metrics"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pipeline"
	"v6scan/internal/scanner"
	"v6scan/internal/serve"
	"v6scan/internal/sim"
	"v6scan/internal/telescope"
)

// Core detection types.
type (
	// DetectorConfig parameterizes scan detection (threshold, timeout,
	// aggregation levels).
	DetectorConfig = core.Config
	// Detector is the streaming multi-aggregation scan detector.
	Detector = core.Detector
	// Scan is one detected scan event.
	Scan = core.Scan
	// Totals is a Table-1 style per-level summary.
	Totals = core.Totals
	// PortClass buckets scans by targeted port count.
	PortClass = core.PortClass
	// MAWIConfig parameterizes the MAWI (Fukuda–Heidemann extended)
	// detector.
	MAWIConfig = core.MAWIConfig
	// MAWIDetector detects scans in one capture window.
	MAWIDetector = core.MAWIDetector
	// MAWIScan is one scan detected in a capture window.
	MAWIScan = core.MAWIScan
)

// Record & log types.
type (
	// Record is one unsolicited-packet log entry, the input unit of
	// all detectors.
	Record = firewall.Record
	// Service is a (protocol, destination port) pair.
	Service = firewall.Service
	// CollectPolicy is the logging policy (the CDN excludes TCP/80,
	// TCP/443 and ICMPv6).
	CollectPolicy = firewall.CollectPolicy
	// ArtifactFilter is the per-day 5-duplicate pre-filter.
	ArtifactFilter = firewall.ArtifactFilter
	// FilterStats reports what the artifact filter removed.
	FilterStats = firewall.FilterStats
)

// Aggregation levels.
type AggLevel = netaddr6.AggLevel

// Aggregation levels studied in the paper.
const (
	Agg128 = netaddr6.Agg128
	Agg64  = netaddr6.Agg64
	Agg48  = netaddr6.Agg48
	Agg32  = netaddr6.Agg32
)

// Port classes of Figures 4 and 8.
const (
	SinglePort   = core.SinglePort
	Ports2to10   = core.Ports2to10
	Ports10to100 = core.Ports10to100
	PortsOver100 = core.PortsOver100
)

// NewDetector returns a streaming scan detector.
func NewDetector(cfg DetectorConfig) *Detector { return core.NewDetector(cfg) }

// DefaultDetectorConfig returns the paper's parameters: 100
// destinations, 3600-second timeout, /128+/64+/48 aggregation.
func DefaultDetectorConfig() DetectorConfig { return core.DefaultConfig() }

// NewMAWIDetector returns a capture-window scan detector.
func NewMAWIDetector(cfg MAWIConfig) *MAWIDetector { return core.NewMAWIDetector(cfg) }

// DefaultMAWIConfig returns the Section-4 parameters.
func DefaultMAWIConfig() MAWIConfig { return core.DefaultMAWIConfig() }

// NewArtifactFilter returns the paper's 5-duplicate / 30% filter.
func NewArtifactFilter() *ArtifactFilter { return firewall.NewArtifactFilter() }

// DefaultCollectPolicy returns the CDN logging policy.
func DefaultCollectPolicy() CollectPolicy { return firewall.DefaultCollectPolicy() }

// ClassifyPorts applies the Appendix A.3 f-rule to a per-service
// packet histogram.
func ClassifyPorts(ports map[Service]uint64) PortClass { return core.ClassifyPorts(ports) }

// Aggregate masks an address to an aggregation level.
var Aggregate = netaddr6.Aggregate

// LogReader streams records from a binary log.
type LogReader = firewall.Reader

// LogWriter streams records to a binary log.
type LogWriter = firewall.Writer

// ReadLog returns a record reader over a binary log stream.
func ReadLog(r io.Reader) *LogReader { return firewall.NewReader(r) }

// WriteLog returns a record writer producing the binary log format.
func WriteLog(w io.Writer) *LogWriter { return firewall.NewWriter(w) }

// RecordsFromPcap decodes a classic pcap stream (Ethernet or raw IPv6
// link types) into records, skipping undecodable packets. The second
// return value reports how many packets were skipped. Decoding rides
// the chunked EmitBatch path (one append per chunk instead of one
// callback per record); streaming consumers can use NewPcapSource
// directly instead of materializing the slice.
func RecordsFromPcap(r io.Reader) ([]Record, int, error) {
	src := pipeline.NewPcapSource(r)
	var out []Record
	err := src.EmitBatch(pipeline.DefaultBatchSize, func(recs []Record) error {
		out = append(out, recs...)
		return nil
	})
	return out, src.Skipped(), err
}

// SortRecordsByTime stably sorts records by timestamp in place,
// run-aware: already-ordered input (the normal case for captures and
// logs) is detected in one linear scan and costs no sort work, and
// mostly-ordered input pays only bounded merges of its disordered
// runs. Use it over sort.SliceStable wherever defensive re-sorting of
// probably-sorted record slices is needed (cmd/v6scan's pcap path
// does).
func SortRecordsByTime(recs []Record) { pipeline.SortByTime(recs) }

// Pipeline types: the composable streaming architecture every record
// consumer plugs into (see internal/pipeline).
type (
	// Builder assembles a pipeline fluently, left to right; see From
	// and Chain.
	Builder = pipeline.Builder
	// Pipeline couples a record source to a sink chain.
	Pipeline = pipeline.Pipeline
	// RecordSink is the one interface every stage and terminal
	// consumer implements.
	RecordSink = pipeline.RecordSink
	// BatchSink marks sinks with a fast batch path (the sharded
	// detector).
	BatchSink = pipeline.BatchSink
	// TerminalSink is the unified terminal lifecycle every built-in
	// sink implements: Flush finalizes exactly once, Close releases
	// idempotently, typed Result accessors read the outcome.
	TerminalSink = pipeline.Sink
	// RecordSource produces a time-ordered record stream.
	RecordSource = pipeline.Source
	// RecordBatchSource produces the stream in chunked batches; when a
	// pipeline couples one to a BatchSink, records flow batch-to-batch.
	RecordBatchSource = pipeline.BatchSource
	// SourceFunc adapts a function to RecordSource.
	SourceFunc = pipeline.SourceFunc
	// SinkFunc adapts a function to RecordSink.
	SinkFunc = pipeline.SinkFunc
	// SliceSource emits an in-memory record slice.
	SliceSource = pipeline.SliceSource
	// LogSource streams records from a binary firewall log.
	LogSource = pipeline.LogSource
	// ParallelLogSource decodes a binary firewall log in parallel
	// record-aligned chunks, reassembled in file order — output is
	// byte-identical to LogSource at any worker count.
	ParallelLogSource = pipeline.ParallelLogSource
	// MergeSource k-way merges time-ordered sources (one per day-file)
	// into one time-ordered stream.
	MergeSource = pipeline.MergeSource
	// FilesSource ingests one or more binary log files with parallel
	// decode, merged in timestamp order; see FromFiles.
	FilesSource = pipeline.FilesSource
	// PcapSource streams decoded IPv6 frames from a classic pcap
	// capture.
	PcapSource = pipeline.PcapSource
	// PipelineCounter counts records passing through a chain.
	PipelineCounter = pipeline.Counter
	// DaySortStage buffers and sorts each UTC day of a per-actor
	// ordered stream.
	DaySortStage = pipeline.DaySort
	// WindowSortStage is the bounded-lateness streaming reorder
	// buffer: stable time order restored within a configurable skew
	// window, memory bounded by the window instead of the day.
	WindowSortStage = pipeline.WindowSort
	// ErrLateRecord reports a record trailing the stream beyond the
	// WindowSort window (and, with spill enabled, behind the emitted
	// prefix), carrying the record time and the violated horizon.
	ErrLateRecord = pipeline.ErrLateRecord
	// ArtifactStage runs the 5-duplicate pre-filter as a stage.
	ArtifactStage = pipeline.ArtifactStage
	// DetectorSink terminates a pipeline in the scan detector.
	DetectorSink = pipeline.DetectorSink
	// ShardedSink terminates a pipeline in the sharded detector.
	ShardedSink = pipeline.ShardedSink
	// MAWISink terminates a pipeline in a MAWI capture-window detector.
	MAWISink = pipeline.MAWISink
	// IDSSink terminates a pipeline in the dynamic-aggregation engine.
	IDSSink = pipeline.IDSSink
	// ShardedIDSSink terminates a pipeline in the sharded IDS engine.
	ShardedIDSSink = pipeline.ShardedIDSSink
	// LogSink writes the stream to a binary firewall log.
	LogSink = pipeline.LogSink
	// ShardedDetector runs multi-level detection across parallel
	// worker shards with byte-identical output at any shard count.
	ShardedDetector = core.ShardedDetector
)

// From starts a fluent pipeline builder reading from src — the
// entry point of the public pipeline API. Stages are appended left to
// right (Policy, DaySort, Artifact, Tap, Filter, Counter, Tee) and the
// chain is terminated by RunInto or one of the typed terminal helpers
// (Detect, IDS, MAWI).
func From(src RecordSource) *Builder { return pipeline.From(src) }

// FromFiles starts a builder ingesting one or more binary firewall
// log files: each file decodes in parallel record-aligned chunks
// (tune with DecodeWorkers), and multiple files — day-logs, typically
// — k-way merge into a single time-ordered stream, so a month of logs
// is one pipeline run:
//
//	det, err := v6scan.FromFiles("day1.log", "day2.log").
//	    DecodeWorkers(8).
//	    Artifact().
//	    Detect(ctx, v6scan.DefaultDetectorConfig(), 8)
//
// Files are opened when the pipeline runs, so an unreadable path
// surfaces as the run error. Output is byte-identical to reading the
// concatenation of the files through a serial LogSource.
func FromFiles(paths ...string) *Builder { return pipeline.FromFiles(paths...) }

// Chain starts a source-less stage chain terminated with Into — for
// composing the sink side of a pipeline (simulation taps, Tee
// branches) with the same left-to-right syntax.
func Chain() *Builder { return pipeline.Chain() }

// NewShardedDetector returns a scan detector partitioning session
// state by aggregated source prefix across n parallel worker shards.
// Scans() output is identical to a single Detector's for any n.
func NewShardedDetector(cfg DetectorConfig, n int) *ShardedDetector {
	return core.NewShardedDetector(cfg, n)
}

// Pipeline source constructors.
func NewLogSource(r io.Reader) *LogSource      { return pipeline.NewLogSource(r) }
func NewPcapSource(r io.Reader) *PcapSource    { return pipeline.NewPcapSource(r) }
func NewSliceSource(recs []Record) SliceSource { return SliceSource(recs) }

// NewParallelLogSource returns a source decoding the byte range
// [0, size) of r across workers decode goroutines (non-positive means
// one per CPU); records come out in file order, byte-identical to the
// serial LogSource. FromFiles wires this up from paths directly.
func NewParallelLogSource(r io.ReaderAt, size int64, workers int) *ParallelLogSource {
	return pipeline.NewParallelLogSource(r, size, workers)
}

// NewMergeSource returns a source k-way merging time-ordered sources
// into one time-ordered stream; ties break toward the earlier source,
// so chronologically split day-files merge back to their
// concatenation.
func NewMergeSource(srcs ...RecordSource) *MergeSource { return pipeline.NewMergeSource(srcs...) }

// NewFilesSource returns the lazy multi-file log source FromFiles
// builds on.
func NewFilesSource(paths ...string) *FilesSource { return pipeline.NewFilesSource(paths...) }

// NewWindowSortStage returns the bounded-lateness streaming reorder
// stage outside a builder chain; prefer From(...).WindowSort(window)
// or Chain().WindowSort(window).Into(next). Call EnableSpill on the
// stage (or use the builder's WindowSortSpill) to absorb
// beyond-window disorder through sorted on-disk runs instead of
// aborting with *ErrLateRecord.
func NewWindowSortStage(window time.Duration, next RecordSink) *WindowSortStage {
	return pipeline.NewWindowSort(window, next)
}

// Pipeline sink constructors.
func NewDetectorSink(d *Detector) *DetectorSink      { return pipeline.NewDetectorSink(d) }
func NewShardedSink(d *ShardedDetector) *ShardedSink { return pipeline.NewShardedSink(d) }
func NewMAWISink(d *MAWIDetector) *MAWISink          { return pipeline.NewMAWISink(d) }
func NewIDSSink(e *IDSEngine) *IDSSink               { return pipeline.NewIDSSink(e) }
func NewShardedIDSSink(e *ShardedIDSEngine) *ShardedIDSSink {
	return pipeline.NewShardedIDSSink(e)
}
func NewLogSink(w *LogWriter) *LogSink          { return pipeline.NewLogSink(w) }
func CollectorSink(add func(Record)) RecordSink { return pipeline.Collector(add) }

// DiscardSink drops every record; useful as a tee-branch terminator.
var DiscardSink = pipeline.Discard

// Durable-state facade: versioned checkpoint snapshots of terminal
// sink state and resume from them (see the package-doc "Checkpoint
// and resume" section).
type (
	// Checkpointer is implemented by terminal sinks that can snapshot
	// their state at a consistent stream-time cut — all built-in
	// detector and IDS sinks, plain and sharded.
	Checkpointer = pipeline.Checkpointer
	// ResumedSink is a terminal rebuilt from a checkpoint: the
	// restored Sink plus the Horizon to skip the replayed input to.
	ResumedSink = pipeline.Resumed
)

// Snapshot kinds reported in ResumedSink.Kind.
const (
	CheckpointKindDetector = checkpoint.KindDetector
	CheckpointKindIDS      = checkpoint.KindIDS
)

// LatestCheckpoint returns the newest checkpoint file in dir, or ""
// when there is none.
func LatestCheckpoint(dir string) (string, error) { return pipeline.LatestCheckpoint(dir) }

// ResumeCheckpoint rebuilds a terminal sink from a checkpoint file,
// sharded across shards workers when shards > 1 — the count need not
// match the one the snapshot was taken at.
func ResumeCheckpoint(path string, shards int) (*ResumedSink, error) {
	return pipeline.ResumeFile(path, shards)
}

// WriteCheckpoint snapshots a checkpoint-capable sink into dir at the
// stream-time cut mark, atomically. Builder.CheckpointEvery does this
// on a cadence; WriteCheckpoint is the manual escape hatch for
// callers driving a sink directly.
func WriteCheckpoint(dir string, ck Checkpointer, mark time.Time) error {
	return pipeline.WriteCheckpoint(dir, ck, mark)
}

// SweepCheckpointTemps removes temp files stranded in a checkpoint
// directory by a crashed writer. Call it before resuming from dir.
func SweepCheckpointTemps(dir string) (int, error) {
	return pipeline.SweepCheckpointTemps(dir)
}

// Wire-layer facade: distributed pipeline endpoints — publishers
// shipping topic-partitioned event envelopes over a broker, and
// subscribers replaying them into a pipeline with byte-identical
// output (see the pipeline package doc's "Wire layer" section).
type (
	// Bus is the hermetic in-memory broker: bounded pull-based
	// subscriptions with blocking publisher backpressure.
	Bus = bus.Bus
	// BusSubscription is one bounded pull endpoint on a Bus.
	BusSubscription = bus.Subscription
	// BusMsg is one delivered broker message.
	BusMsg = bus.Msg
	// BusStats is a point-in-time copy of a Bus's counters.
	BusStats = bus.Stats
	// EventEnvelope is the versioned wire envelope framing a run of
	// records (or alerts) for one topic.
	EventEnvelope = events.Envelope
	// PublishSinkT is the terminal sink publishing a pipeline's record
	// stream onto a Bus, partitioned across topics by coarsest-level
	// source prefix.
	PublishSinkT = pipeline.PublishSink
	// SubscribeSourceT replays one topic's envelopes into a pipeline.
	SubscribeSourceT = pipeline.SubscribeSource
)

// Envelope kinds carried in EventEnvelope.Kind.
const (
	EventKindRecords = events.KindRecords
	EventKindAlerts  = events.KindAlerts
	EventKindEOS     = events.KindEOS
)

// NewBus returns an empty in-memory broker.
func NewBus() *Bus { return bus.New() }

// NewPublishSink returns a terminal sink publishing onto b across
// topics, partitioned by the source prefix at level (normally
// CoarsestLevel of the detector/IDS aggregation levels).
func NewPublishSink(ctx context.Context, b *Bus, level AggLevel, topics ...string) *PublishSinkT {
	return pipeline.NewPublishSink(ctx, b, level, topics...)
}

// NewSubscribeSource subscribes to topic on b and returns a source
// replaying its envelopes.
func NewSubscribeSource(ctx context.Context, b *Bus, topic string) *SubscribeSourceT {
	return pipeline.NewSubscribeSource(ctx, b, topic)
}

// FromBus starts a builder consuming the given topics from b, k-way
// merged in timestamp order. List lower-indexed publishers' topics
// first: topic order is the merge tie-break order.
func FromBus(b *Bus, topics ...string) *Builder { return pipeline.FromBus(b, topics...) }

// FromBusContext is FromBus with a context bounding the blocking
// pulls.
func FromBusContext(ctx context.Context, b *Bus, topics ...string) *Builder {
	return pipeline.FromBusContext(ctx, b, topics...)
}

// RecordTopic names one record-stream partition of a publisher's
// stream; RecordTopics names all parts of them, in partition order.
func RecordTopic(stream string, part int) string { return events.RecordTopic(stream, part) }

// RecordTopics names all parts partitions of a publisher's stream.
func RecordTopics(stream string, parts int) []string { return events.RecordTopics(stream, parts) }

// AlertTopic names the finished-alert topic of a stream.
func AlertTopic(stream string) string { return events.AlertTopic(stream) }

// CoarsestLevel returns the coarsest (smallest prefix length) of the
// given aggregation levels — the partition level distributed
// publishers and sharded consumers route by.
func CoarsestLevel(levels []AggLevel) AggLevel { return dispatch.CoarsestLevel(levels) }

// RecordWireSize is the fixed on-disk size of one binary log record —
// the alignment unit for splitting a log at record boundaries.
const RecordWireSize = firewall.RecordWireSize

// LogChunk is one contiguous record-aligned byte span of a binary log.
type LogChunk = firewall.Chunk

// PlanLogChunks splits a binary log of size bytes into at most n
// contiguous record-aligned chunks covering it exactly — the
// splitting step of a distributed replay (one chunk per publisher).
func PlanLogChunks(size int64, n int) []LogChunk { return firewall.PlanChunks(size, n) }

// Simulation facade.
type (
	// ExperimentConfig assembles a CDN experiment (telescope, census,
	// artifacts, detector).
	ExperimentConfig = sim.Config
	// ExperimentResult carries a finished experiment.
	ExperimentResult = sim.Result
	// Telescope is the synthetic CDN vantage point.
	Telescope = telescope.Telescope
	// TelescopeConfig sizes the telescope.
	TelescopeConfig = telescope.Config
	// CensusConfig configures the Table-2 scan-actor population.
	CensusConfig = scanner.CensusConfig
	// ArtifactsConfig sizes the background-artifact population.
	ArtifactsConfig = artifacts.Config
	// MAWISimulator produces daily MAWI capture windows.
	MAWISimulator = mawi.Simulator
	// MAWISimConfig sizes the MAWI simulation.
	MAWISimConfig = mawi.Config
	// ASDB is the AS registry used for source attribution.
	ASDB = asdb.DB
	// AS describes an autonomous system.
	AS = asdb.AS
)

// DefaultExperimentConfig returns a full-window, laptop-scale CDN
// experiment.
func DefaultExperimentConfig() ExperimentConfig { return sim.DefaultConfig() }

// RunCDNExperiment executes a CDN experiment end to end.
func RunCDNExperiment(cfg ExperimentConfig) (*ExperimentResult, error) { return sim.Run(cfg) }

// NewMAWISimulator returns a MAWI vantage simulator.
func NewMAWISimulator(cfg MAWISimConfig) *MAWISimulator { return mawi.New(cfg) }

// DefaultMAWISimConfig covers the paper window.
func DefaultMAWISimConfig() MAWISimConfig { return mawi.DefaultConfig() }

// IDS facade: the Discussion-section dynamic-aggregation engine.
type (
	// IDSConfig parameterizes the inline engine.
	IDSConfig = ids.Config
	// IDSEngine is the memory-bounded multi-aggregation detector with
	// blocklist recommendations.
	IDSEngine = ids.Engine
	// ShardedIDSEngine runs the IDS across parallel worker shards with
	// alerts byte-identical to a single engine's at any shard count.
	ShardedIDSEngine = ids.ShardedEngine
	// IDSAlert is one detected entity with its recommended blocklist
	// prefix.
	IDSAlert = ids.Alert
)

// NewIDS returns a dynamic-aggregation IDS engine.
func NewIDS(cfg IDSConfig) *IDSEngine { return ids.New(cfg) }

// NewShardedIDS returns an IDS engine partitioning candidate state by
// coarsest-level source prefix across n parallel worker shards.
func NewShardedIDS(cfg IDSConfig, n int) *ShardedIDSEngine { return ids.NewSharded(cfg, n) }

// DefaultIDSConfig returns production-oriented IDS defaults.
func DefaultIDSConfig() IDSConfig { return ids.DefaultConfig() }

// Analysis facade: table/figure builders.
type (
	// Table1 is the per-aggregation totals table.
	Table1 = analysis.Table1
	// Table2 is the top source-AS table.
	Table2 = analysis.Table2
	// Table3 is the top targeted-services table.
	Table3 = analysis.Table3
	// Heatmap is the Figure-1 per-/64 histogram.
	Heatmap = analysis.Heatmap
	// HeatmapCollector accumulates Figure-1 input from raw records.
	HeatmapCollector = analysis.HeatmapCollector
	// WeeklySources is Figure 2.
	WeeklySources = analysis.WeeklySources
	// Concentration is Figure 3.
	Concentration = analysis.Concentration
	// PortBreakdown is Figures 4 and 8.
	PortBreakdown = analysis.PortBreakdown
	// DNSReport is the Section-3.3 target-provenance analysis.
	DNSReport = analysis.DNSReport
	// DNSCollector accumulates provenance input from filtered records.
	DNSCollector = analysis.DNSCollector
	// CaseStudy32 is the Section-3.2 /32 aggregation exercise.
	CaseStudy32 = analysis.CaseStudy32
)

// Analysis builders (see internal/analysis for documentation).
var (
	BuildTable1         = analysis.BuildTable1
	BuildTable2         = analysis.BuildTable2
	BuildTable3         = analysis.BuildTable3
	BuildWeeklySources  = analysis.BuildWeeklySources
	BuildConcentration  = analysis.BuildConcentration
	BuildPortBreakdown  = analysis.BuildPortBreakdown
	BuildDurationStats  = analysis.BuildDurationStats
	BuildTwinReport     = analysis.BuildTwinReport
	BuildCaseStudy32    = analysis.BuildCaseStudy32
	NewHeatmapCollector = analysis.NewHeatmapCollector
	NewDNSCollector     = analysis.NewDNSCollector
)

// Serving facade: follow-mode ingestion, pipeline observability, and
// the long-running daemon runtime behind cmd/v6scand. See the
// pipeline package doc's "Serving" section for the tailing and
// backpressure contracts.
type (
	// TailSource is a follow-mode Source that reads a growing binary
	// firewall log, surviving partial trailing records, rotation, and
	// truncation. Single-use; drains pending bytes on cancellation.
	TailSource = pipeline.TailSource
	// TailConfig tunes a TailSource (poll interval, chunking,
	// parallel decode).
	TailConfig = pipeline.TailConfig
	// TailStats is a TailSource progress snapshot (offset, rotations,
	// truncations observed).
	TailStats = pipeline.TailStats
	// MetricsRegistry is the dependency-free counter/gauge/histogram
	// registry with Prometheus text exposition.
	MetricsRegistry = metrics.Registry
	// PipelineMetrics is the instrument bundle Builder.Instrument
	// threads through sources, dispatch, and terminals.
	PipelineMetrics = pipeline.Metrics
	// ServeConfig parameterizes the serving daemon.
	ServeConfig = serve.Config
	// ServeDaemon tails a log, runs the IDS continuously, and serves
	// state, alerts (paginated + SSE), and metrics over HTTP.
	ServeDaemon = serve.Daemon
	// ServeState is the read-side serving snapshot (/api/state).
	ServeState = serve.State
)

// DefaultTailPoll is the TailSource growth-poll interval when
// TailConfig.Poll is zero.
const DefaultTailPoll = pipeline.DefaultTailPoll

// NewTailSource returns a follow-mode source for path; the file need
// not exist yet.
func NewTailSource(path string, cfg TailConfig) *TailSource {
	return pipeline.NewTailSource(path, cfg)
}

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// RegisterPipelineMetrics registers the pipeline instrument bundle on
// reg; pass the result to Builder.Instrument.
func RegisterPipelineMetrics(reg *MetricsRegistry) *PipelineMetrics {
	return pipeline.RegisterMetrics(reg)
}

// NewServeDaemon validates cfg and returns a daemon ready to Run.
func NewServeDaemon(cfg ServeConfig) (*ServeDaemon, error) { return serve.NewDaemon(cfg) }
