// Package pcap reads and writes classic libpcap capture files
// (the tcpdump format), supporting both microsecond (magic 0xa1b2c3d4)
// and nanosecond (magic 0xa1b23c4d) timestamp resolution, in either
// byte order. The MAWI archive distributes daily 15-minute traces in
// this format; the MAWI simulator writes them and the cross-check
// pipeline reads them back, so round-trip fidelity is tested.
//
// The pcapng format is deliberately out of scope: everything the paper
// consumes is classic pcap.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"v6scan/internal/layers"
)

// Magic numbers identifying pcap files.
const (
	magicMicro        = 0xa1b2c3d4
	magicNano         = 0xa1b23c4d
	magicMicroSwapped = 0xd4c3b2a1
	magicNanoSwapped  = 0x4d3cb2a1
)

// MaxSnapLen is the largest capture length accepted per packet; longer
// records indicate corruption.
const MaxSnapLen = 256 * 1024

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("pcap: bad magic number")
	ErrCorrupt  = errors.New("pcap: corrupt packet record")
	ErrSnapLen  = errors.New("pcap: record exceeds sane snap length")
)

// Header is the parsed pcap global header.
type Header struct {
	VersionMajor uint16
	VersionMinor uint16
	SnapLen      uint32
	LinkType     layers.LinkType
	Nanosecond   bool // true if timestamps carry nanoseconds
	ByteOrder    binary.ByteOrder
}

// Packet is one captured record.
type Packet struct {
	Timestamp time.Time
	// OrigLen is the original wire length; Data may be shorter if the
	// capture was truncated at SnapLen.
	OrigLen uint32
	Data    []byte
}

// Reader reads packets from a classic pcap stream.
type Reader struct {
	r   *bufio.Reader
	hdr Header
	buf []byte
}

// NewReader parses the global header and returns a reader. Reads are
// zero-copy in the sense that Next returns a buffer valid only until
// the following Next call.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var raw [24]byte
	if _, err := io.ReadFull(br, raw[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	magic := binary.LittleEndian.Uint32(raw[0:4])
	var (
		bo   binary.ByteOrder
		nano bool
	)
	switch magic {
	case magicMicro:
		bo, nano = binary.LittleEndian, false
	case magicNano:
		bo, nano = binary.LittleEndian, true
	case magicMicroSwapped:
		bo, nano = binary.BigEndian, false
	case magicNanoSwapped:
		bo, nano = binary.BigEndian, true
	default:
		return nil, fmt.Errorf("%w: %#08x", ErrBadMagic, magic)
	}
	h := Header{
		VersionMajor: bo.Uint16(raw[4:6]),
		VersionMinor: bo.Uint16(raw[6:8]),
		SnapLen:      bo.Uint32(raw[16:20]),
		LinkType:     layers.LinkType(bo.Uint32(raw[20:24])),
		Nanosecond:   nano,
		ByteOrder:    bo,
	}
	return &Reader{r: br, hdr: h}, nil
}

// Header returns the parsed global header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next packet. The returned Data slice is reused on
// the following Next call; callers retaining packets must copy.
// io.EOF signals a clean end of file.
func (r *Reader) Next() (Packet, error) {
	var rh [16]byte
	if _, err := io.ReadFull(r.r, rh[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: record header: %w (%v)", ErrCorrupt, err)
	}
	bo := r.hdr.ByteOrder
	sec := bo.Uint32(rh[0:4])
	frac := bo.Uint32(rh[4:8])
	capLen := bo.Uint32(rh[8:12])
	origLen := bo.Uint32(rh[12:16])
	if capLen > MaxSnapLen {
		return Packet{}, fmt.Errorf("%w: caplen %d", ErrSnapLen, capLen)
	}
	if cap(r.buf) < int(capLen) {
		r.buf = make([]byte, capLen)
	}
	data := r.buf[:capLen]
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: record body: %w (%v)", ErrCorrupt, err)
	}
	nsec := int64(frac)
	if !r.hdr.Nanosecond {
		nsec *= 1000
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), nsec).UTC(),
		OrigLen:   origLen,
		Data:      data,
	}, nil
}

// ReadAll drains the stream, returning owned copies of every packet.
func (r *Reader) ReadAll() ([]Packet, error) {
	var out []Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		d := make([]byte, len(p.Data))
		copy(d, p.Data)
		p.Data = d
		out = append(out, p)
	}
}

// Writer writes packets to a classic pcap stream.
type Writer struct {
	w       *bufio.Writer
	nano    bool
	snapLen uint32
	wrote   bool
	link    layers.LinkType
}

// WriterOptions configures a Writer.
type WriterOptions struct {
	LinkType   layers.LinkType // default LinkTypeEthernet
	Nanosecond bool            // write nanosecond-resolution timestamps
	SnapLen    uint32          // default 65535
}

// NewWriter returns a writer; the global header is emitted lazily on
// the first WritePacket (or explicitly via WriteHeader).
func NewWriter(w io.Writer, opts WriterOptions) *Writer {
	if opts.SnapLen == 0 {
		opts.SnapLen = 65535
	}
	if opts.LinkType == 0 {
		opts.LinkType = layers.LinkTypeEthernet
	}
	return &Writer{
		w:       bufio.NewWriterSize(w, 1<<16),
		nano:    opts.Nanosecond,
		snapLen: opts.SnapLen,
		link:    opts.LinkType,
	}
}

// WriteHeader writes the global header if not already written.
func (w *Writer) WriteHeader() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	var h [24]byte
	magic := uint32(magicMicro)
	if w.nano {
		magic = magicNano
	}
	binary.LittleEndian.PutUint32(h[0:4], magic)
	binary.LittleEndian.PutUint16(h[4:6], 2)
	binary.LittleEndian.PutUint16(h[6:8], 4)
	// thiszone and sigfigs remain zero.
	binary.LittleEndian.PutUint32(h[16:20], w.snapLen)
	binary.LittleEndian.PutUint32(h[20:24], uint32(w.link))
	_, err := w.w.Write(h[:])
	return err
}

// WritePacket writes one record, truncating data at SnapLen.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	capLen := uint32(len(data))
	if capLen > w.snapLen {
		capLen = w.snapLen
	}
	var rh [16]byte
	sec := ts.Unix()
	var frac int64
	if w.nano {
		frac = int64(ts.Nanosecond())
	} else {
		frac = int64(ts.Nanosecond()) / 1000
	}
	binary.LittleEndian.PutUint32(rh[0:4], uint32(sec))
	binary.LittleEndian.PutUint32(rh[4:8], uint32(frac))
	binary.LittleEndian.PutUint32(rh[8:12], capLen)
	binary.LittleEndian.PutUint32(rh[12:16], uint32(len(data)))
	if _, err := w.w.Write(rh[:]); err != nil {
		return err
	}
	_, err := w.w.Write(data[:capLen])
	return err
}

// Flush flushes buffered output to the underlying writer.
func (w *Writer) Flush() error {
	if err := w.WriteHeader(); err != nil {
		return err
	}
	return w.w.Flush()
}
