package pcap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

func buildTestFrames(t *testing.T, n int) [][]byte {
	t.Helper()
	src := netaddr6.MustAddr("2001:db8::1")
	frames := make([][]byte, n)
	for i := range frames {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(i))
		f, err := layers.BuildTCPSYN(src, dst, 40000, uint16(22+i), layers.BuildOptions{Link: layers.LinkTypeEthernet})
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = f
	}
	return frames
}

func TestRoundTripMicro(t *testing.T) { testRoundTrip(t, false) }
func TestRoundTripNano(t *testing.T)  { testRoundTrip(t, true) }

func testRoundTrip(t *testing.T, nano bool) {
	frames := buildTestFrames(t, 10)
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{LinkType: layers.LinkTypeEthernet, Nanosecond: nano})
	base := time.Date(2021, 11, 1, 0, 0, 0, 123456789, time.UTC)
	for i, f := range frames {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), f); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != layers.LinkTypeEthernet {
		t.Errorf("link type %d", r.Header().LinkType)
	}
	if r.Header().Nanosecond != nano {
		t.Error("nanosecond flag mismatch")
	}
	for i := 0; ; i++ {
		p, err := r.Next()
		if err == io.EOF {
			if i != len(frames) {
				t.Fatalf("read %d packets, want %d", i, len(frames))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data, frames[i]) {
			t.Fatalf("packet %d data mismatch", i)
		}
		wantTS := base.Add(time.Duration(i) * time.Second)
		if !nano {
			wantTS = wantTS.Truncate(time.Microsecond)
		}
		if !p.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts %v, want %v", i, p.Timestamp, wantTS)
		}
		if p.OrigLen != uint32(len(frames[i])) {
			t.Errorf("origlen %d", p.OrigLen)
		}
	}
}

func TestReadAll(t *testing.T) {
	frames := buildTestFrames(t, 5)
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	for _, f := range frames {
		if err := w.WritePacket(time.Unix(1609459200, 0), f); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 5 {
		t.Fatalf("got %d", len(pkts))
	}
	// ReadAll must return owned copies, not a shared buffer.
	if &pkts[0].Data[0] == &pkts[1].Data[0] {
		t.Error("packets share backing buffer")
	}
}

func TestSnapLenTruncation(t *testing.T) {
	frames := buildTestFrames(t, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{SnapLen: 30})
	if err := w.WritePacket(time.Unix(0, 0), frames[0]); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, _ := NewReader(&buf)
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 30 {
		t.Errorf("caplen %d, want 30", len(p.Data))
	}
	if p.OrigLen != uint32(len(frames[0])) {
		t.Errorf("origlen %d, want %d", p.OrigLen, len(frames[0]))
	}
}

func TestBigEndianRead(t *testing.T) {
	// Hand-build a big-endian (swapped magic) capture.
	var buf bytes.Buffer
	var h [24]byte
	binary.BigEndian.PutUint32(h[0:4], magicMicro) // BE writer → LE reader sees swapped
	binary.BigEndian.PutUint16(h[4:6], 2)
	binary.BigEndian.PutUint16(h[6:8], 4)
	binary.BigEndian.PutUint32(h[16:20], 65535)
	binary.BigEndian.PutUint32(h[20:24], uint32(layers.LinkTypeRaw))
	buf.Write(h[:])
	payload := []byte{0xde, 0xad}
	var rh [16]byte
	binary.BigEndian.PutUint32(rh[0:4], 100)
	binary.BigEndian.PutUint32(rh[4:8], 7)
	binary.BigEndian.PutUint32(rh[8:12], uint32(len(payload)))
	binary.BigEndian.PutUint32(rh[12:16], uint32(len(payload)))
	buf.Write(rh[:])
	buf.Write(payload)

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().ByteOrder != binary.BigEndian {
		t.Error("byte order not detected")
	}
	if r.Header().LinkType != layers.LinkTypeRaw {
		t.Errorf("link type %d", r.Header().LinkType)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Timestamp.Unix() != 100 || !bytes.Equal(p.Data, payload) {
		t.Errorf("packet %+v", p)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 24)))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader(make([]byte, 10)))
	if err == nil {
		t.Error("truncated header accepted")
	}
}

func TestCorruptRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	w.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4})
	w.Flush()
	data := buf.Bytes()
	// Chop off the last 2 payload bytes.
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("got %v", err)
	}
}

func TestInsaneCapLen(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	w.WriteHeader()
	w.Flush()
	var rh [16]byte
	binary.LittleEndian.PutUint32(rh[8:12], MaxSnapLen+1)
	buf.Write(rh[:])
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrSnapLen) {
		t.Errorf("got %v", err)
	}
}

func TestEmptyFileJustHeader(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{})
	w.Flush() // header only
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("got %v, want EOF", err)
	}
}

func TestPcapToParserPipeline(t *testing.T) {
	// End-to-end: build frames → pcap → read → ParseFrame.
	frames := buildTestFrames(t, 3)
	var buf bytes.Buffer
	w := NewWriter(&buf, WriterOptions{LinkType: layers.LinkTypeEthernet})
	for _, f := range frames {
		w.WritePacket(time.Unix(1609459200, 0), f)
	}
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var d layers.Decoded
	n := 0
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := layers.ParseFrame(p.Data, r.Header().LinkType, &d); err != nil {
			t.Fatal(err)
		}
		if d.Transport != layers.ProtoTCP || d.TCP.DstPort != uint16(22+n) {
			t.Errorf("packet %d: %v/%d", n, d.Transport, d.TCP.DstPort)
		}
		n++
	}
	if n != 3 {
		t.Errorf("parsed %d", n)
	}
}
