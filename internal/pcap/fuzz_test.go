package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"

	"v6scan/internal/layers"
)

// fuzzSeedCaptures builds seed corpora from the same captures the
// round-trip unit tests exercise: micro- and nanosecond resolution,
// both byte orders, truncations, and a corrupt snap length.
func fuzzSeedCaptures() [][]byte {
	write := func(nano bool, packets ...[]byte) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf, WriterOptions{Nanosecond: nano, LinkType: layers.LinkTypeEthernet})
		ts := time.Date(2021, 4, 1, 0, 0, 0, 123456789, time.UTC)
		for i, p := range packets {
			if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), p); err != nil {
				panic(err)
			}
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	small := []byte{0xde, 0xad, 0xbe, 0xef}
	big := bytes.Repeat([]byte{0x55}, 1500)
	micro := write(false, small, big, nil)
	nano := write(true, big, small)

	// Big-endian variant: byte-swap the header fields by hand (the
	// Writer only emits little-endian).
	be := append([]byte(nil), micro...)
	binary.BigEndian.PutUint32(be[0:4], magicMicro)
	binary.BigEndian.PutUint16(be[4:6], 2)
	binary.BigEndian.PutUint16(be[6:8], 4)
	binary.BigEndian.PutUint32(be[16:20], 65535)
	binary.BigEndian.PutUint32(be[20:24], uint32(layers.LinkTypeEthernet))

	// Corrupt caplen: valid header, then an absurd record length.
	corrupt := append([]byte(nil), micro[:24]...)
	var rh [16]byte
	binary.LittleEndian.PutUint32(rh[8:12], MaxSnapLen+1)
	binary.LittleEndian.PutUint32(rh[12:16], MaxSnapLen+1)
	corrupt = append(corrupt, rh[:]...)

	return [][]byte{
		nil,
		micro,
		nano,
		be,
		corrupt,
		micro[:24],              // header only
		micro[:30],              // truncated record header
		micro[:len(micro)-3],    // truncated record body
		bytes.Repeat(small, 12), // bad magic
	}
}

// FuzzPcapReader is the capture decoder fuzz target: for any byte
// stream, NewReader/Next must never panic, must bound every returned
// packet by the sane snap length, must terminate (each iteration
// consumes input or errors), and must end in exactly one of a clean
// io.EOF or a diagnostic error.
func FuzzPcapReader(f *testing.F) {
	for _, seed := range fuzzSeedCaptures() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if len(data) >= 24 {
				// With a full header the only rejection is a bad magic.
				if !bytes.Contains([]byte(err.Error()), []byte("magic")) {
					t.Fatalf("full header rejected for non-magic reason: %v", err)
				}
			}
			return
		}
		if got := r.Header(); got.ByteOrder == nil {
			t.Fatal("accepted header has no byte order")
		}
		packets := 0
		for {
			p, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				break // diagnostic error: fine, as long as no panic/hang
			}
			if len(p.Data) > MaxSnapLen {
				t.Fatalf("packet %d: %d bytes exceeds MaxSnapLen", packets, len(p.Data))
			}
			packets++
			// 16-byte record header per packet: the reader can never
			// produce more packets than the input could hold.
			if packets > len(data)/16+1 {
				t.Fatalf("decoded %d packets from %d input bytes", packets, len(data))
			}
		}
		// Decoding the same bytes again must be deterministic.
		r2, err2 := NewReader(bytes.NewReader(data))
		if err2 != nil {
			t.Fatalf("second NewReader failed after first succeeded: %v", err2)
		}
		again := 0
		for {
			_, err := r2.Next()
			if err != nil {
				break
			}
			again++
		}
		if again != packets {
			t.Fatalf("nondeterministic decode: %d then %d packets", packets, again)
		}
	})
}
