// Package bus is the in-memory message broker the distributed
// pipeline endpoints ride in tests, CI, and single-process
// collectors→aggregator splits: publishers and subscribers exchange
// opaque byte messages over named topics with bounded buffering and
// blocking backpressure, the same contract a networked broker would
// provide, but hermetic.
//
// # Model
//
// Topics are created implicitly on first use. A Subscription attaches
// to a fixed topic set at creation time and pulls messages from one
// bounded buffer; Publish copies the payload and delivers it to every
// subscription attached to the topic at that moment, blocking — per
// subscriber — while that subscriber's buffer is full. Backpressure is
// therefore end-to-end: a publisher can run ahead of a consumer by at
// most the subscription depth. Publishing to a topic nobody subscribes
// to drops the message (counted in Stats); subscribe before
// publishing.
//
// # Ordering
//
// Messages published to one topic arrive at each subscriber in publish
// order (delivery happens under the publisher's call, into a FIFO
// buffer). Messages on different topics have no relative order, even
// within one subscription. Each topic carries a bus-assigned sequence
// number, monotone from 1, that subscribers can use to detect missed
// messages (a subscription created after publishing started).
package bus

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// DefaultDepth is the per-subscription buffer depth when Subscribe is
// given a non-positive one: deep enough that moderately skewed topic
// traffic does not stall a publisher, small enough to bound memory.
const DefaultDepth = 64

// ErrClosed is returned by operations on a closed bus or subscription.
var ErrClosed = errors.New("bus: closed")

// Msg is one delivered message. Data is shared by every subscriber of
// the topic: receivers must treat it as read-only.
type Msg struct {
	Topic string
	// Seq is the topic's bus-assigned sequence number, monotone from 1.
	Seq  uint64
	Data []byte
}

// Stats is a point-in-time copy of the bus counters.
type Stats struct {
	// Published counts Publish calls that completed (including drops).
	Published uint64
	// Delivered counts per-subscriber deliveries.
	Delivered uint64
	// Dropped counts publishes to topics with no subscriber.
	Dropped uint64
}

// Bus is an in-memory broker. The zero value is not usable; call New.
// All methods are safe for concurrent use.
type Bus struct {
	mu     sync.Mutex
	closed bool
	topics map[string]*topic

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

type topic struct {
	seq  uint64
	subs []*Subscription
}

// New returns an empty bus.
func New() *Bus {
	return &Bus{topics: make(map[string]*topic)}
}

// Stats returns the current counters.
func (b *Bus) Stats() Stats {
	return Stats{
		Published: b.published.Load(),
		Delivered: b.delivered.Load(),
		Dropped:   b.dropped.Load(),
	}
}

// Close shuts the bus down: every subscription is closed and future
// publishes fail with ErrClosed. Messages already buffered remain
// pullable until each subscription drains or closes.
func (b *Bus) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var subs []*Subscription
	for _, t := range b.topics {
		subs = append(subs, t.subs...)
		t.subs = nil
	}
	b.mu.Unlock()
	for _, s := range subs {
		s.markClosed()
	}
}

// Publish delivers data on topic to every current subscriber, copying
// the payload once (subscribers share the copy read-only). It blocks,
// per subscriber, while that subscriber's buffer is full — the
// backpressure path — and unblocks when the subscriber pulls, closes,
// or ctx is cancelled. With no subscriber the message is dropped and
// counted.
func (b *Bus) Publish(ctx context.Context, topicName string, data []byte) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	t := b.topics[topicName]
	if t == nil {
		t = &topic{}
		b.topics[topicName] = t
	}
	t.seq++
	msg := Msg{Topic: topicName, Seq: t.seq}
	subs := append([]*Subscription(nil), t.subs...)
	b.mu.Unlock()

	b.published.Add(1)
	if len(subs) == 0 {
		b.dropped.Add(1)
		return nil
	}
	msg.Data = append([]byte(nil), data...)
	for _, s := range subs {
		select {
		case s.ch <- msg:
			b.delivered.Add(1)
		case <-s.done:
			// Subscriber left between the snapshot and the send.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Subscribe attaches a new subscription to the given topics (at least
// one) with a buffer of depth messages (DefaultDepth when depth <= 0).
// Messages published to any of the topics from this moment on are
// delivered into the subscription's buffer in per-topic publish order.
func (b *Bus) Subscribe(depth int, topics ...string) (*Subscription, error) {
	if len(topics) == 0 {
		return nil, errors.New("bus: subscribe needs at least one topic")
	}
	if depth <= 0 {
		depth = DefaultDepth
	}
	s := &Subscription{
		bus:    b,
		topics: append([]string(nil), topics...),
		ch:     make(chan Msg, depth),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	for _, name := range s.topics {
		t := b.topics[name]
		if t == nil {
			t = &topic{}
			b.topics[name] = t
		}
		t.subs = append(t.subs, s)
	}
	return s, nil
}

// Subscription is one bounded pull endpoint over a fixed topic set.
type Subscription struct {
	bus    *Bus
	topics []string
	ch     chan Msg
	done   chan struct{}
	once   sync.Once
}

// Pull returns the next buffered message, blocking until one arrives,
// the subscription (or bus) closes — ErrClosed — or ctx is cancelled.
// After close, messages already buffered are still drained first.
func (s *Subscription) Pull(ctx context.Context) (Msg, error) {
	select {
	case m := <-s.ch:
		return m, nil
	default:
	}
	select {
	case m := <-s.ch:
		return m, nil
	case <-s.done:
		// Closed, but a publisher may have delivered before we detached:
		// drain what is buffered before reporting the close.
		select {
		case m := <-s.ch:
			return m, nil
		default:
			return Msg{}, ErrClosed
		}
	case <-ctx.Done():
		return Msg{}, ctx.Err()
	}
}

// Close detaches the subscription: publishers stop delivering to it
// (and any publisher blocked on its full buffer unblocks). Idempotent.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	for _, name := range s.topics {
		if t := s.bus.topics[name]; t != nil {
			for i, sub := range t.subs {
				if sub == s {
					t.subs = append(t.subs[:i], t.subs[i+1:]...)
					break
				}
			}
		}
	}
	s.bus.mu.Unlock()
	s.markClosed()
}

func (s *Subscription) markClosed() {
	s.once.Do(func() { close(s.done) })
}
