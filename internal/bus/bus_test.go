package bus

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func pull(t *testing.T, s *Subscription) Msg {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	m, err := s.Pull(ctx)
	if err != nil {
		t.Fatalf("Pull: %v", err)
	}
	return m
}

func TestPublishOrderAndSeq(t *testing.T) {
	b := New()
	sub, err := b.Subscribe(0, "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := b.Publish(ctx, "t", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m := pull(t, sub)
		if m.Topic != "t" || m.Seq != uint64(i+1) || m.Data[0] != byte(i) {
			t.Fatalf("msg %d: got %+v", i, m)
		}
	}
}

func TestPayloadCopied(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(0, "t")
	data := []byte("abc")
	if err := b.Publish(context.Background(), "t", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X' // publisher reuses its buffer
	if m := pull(t, sub); string(m.Data) != "abc" {
		t.Fatalf("delivered payload aliases publisher buffer: %q", m.Data)
	}
}

func TestFanout(t *testing.T) {
	b := New()
	var subs []*Subscription
	for i := 0; i < 3; i++ {
		s, err := b.Subscribe(0, "t")
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	if err := b.Publish(context.Background(), "t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	for i, s := range subs {
		if m := pull(t, s); string(m.Data) != "x" {
			t.Fatalf("subscriber %d: got %+v", i, m)
		}
	}
	if st := b.Stats(); st.Published != 1 || st.Delivered != 3 || st.Dropped != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMultiTopicSubscription(t *testing.T) {
	b := New()
	sub, err := b.Subscribe(0, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b.Publish(ctx, "a", []byte("1"))
	b.Publish(ctx, "b", []byte("2"))
	seen := map[string]string{}
	for i := 0; i < 2; i++ {
		m := pull(t, sub)
		seen[m.Topic] = string(m.Data)
	}
	if seen["a"] != "1" || seen["b"] != "2" {
		t.Fatalf("got %v", seen)
	}
}

func TestNoSubscriberDrops(t *testing.T) {
	b := New()
	if err := b.Publish(context.Background(), "nobody", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Dropped != 1 || st.Published != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBackpressureBlocksUntilPull(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(1, "t")
	ctx := context.Background()
	if err := b.Publish(ctx, "t", []byte("0")); err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() { unblocked <- b.Publish(ctx, "t", []byte("1")) }()
	select {
	case err := <-unblocked:
		t.Fatalf("publish to a full buffer returned early: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if m := pull(t, sub); string(m.Data) != "0" {
		t.Fatalf("got %+v", m)
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish stayed blocked after the pull freed a slot")
	}
	if m := pull(t, sub); string(m.Data) != "1" {
		t.Fatalf("got %+v", m)
	}
}

func TestBackpressureUnblocksOnSubscriberClose(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(1, "t")
	ctx := context.Background()
	b.Publish(ctx, "t", []byte("0"))
	unblocked := make(chan error, 1)
	go func() { unblocked <- b.Publish(ctx, "t", []byte("1")) }()
	time.Sleep(20 * time.Millisecond)
	sub.Close()
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("publish stayed blocked after subscriber close")
	}
}

func TestPublishCancelled(t *testing.T) {
	b := New()
	b.Subscribe(1, "t")
	ctx := context.Background()
	b.Publish(ctx, "t", []byte("0")) // fill the buffer
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := b.Publish(cctx, "t", []byte("1")); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestPullCancelled(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(0, "t")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sub.Pull(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSubscriptionCloseDrainsBufferedFirst(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(2, "t")
	ctx := context.Background()
	b.Publish(ctx, "t", []byte("0"))
	b.Publish(ctx, "t", []byte("1"))
	sub.Close()
	for i := 0; i < 2; i++ {
		m, err := sub.Pull(ctx)
		if err != nil {
			t.Fatalf("msg %d after close: %v", i, err)
		}
		if m.Data[0] != byte('0'+i) {
			t.Fatalf("msg %d: got %+v", i, m)
		}
	}
	if _, err := sub.Pull(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestClosedSubscriberNotDelivered(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(0, "t")
	keep, _ := b.Subscribe(0, "t")
	sub.Close()
	if err := b.Publish(context.Background(), "t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if m := pull(t, keep); string(m.Data) != "x" {
		t.Fatalf("got %+v", m)
	}
	if st := b.Stats(); st.Delivered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBusClose(t *testing.T) {
	b := New()
	sub, _ := b.Subscribe(2, "t")
	ctx := context.Background()
	b.Publish(ctx, "t", []byte("0"))
	b.Close()
	b.Close() // idempotent
	if err := b.Publish(ctx, "t", []byte("1")); !errors.Is(err, ErrClosed) {
		t.Fatalf("publish after close: got %v, want ErrClosed", err)
	}
	if _, err := b.Subscribe(0, "t"); !errors.Is(err, ErrClosed) {
		t.Fatalf("subscribe after close: got %v, want ErrClosed", err)
	}
	// Buffered messages survive the close.
	if m, err := sub.Pull(ctx); err != nil || string(m.Data) != "0" {
		t.Fatalf("drain after close: %v %+v", err, m)
	}
	if _, err := sub.Pull(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestSubscribeNeedsTopics(t *testing.T) {
	if _, err := New().Subscribe(0); err == nil {
		t.Fatal("subscribe with no topics succeeded")
	}
}

func TestConcurrentPublishersSubscribers(t *testing.T) {
	const (
		topics     = 4
		perTopic   = 200
		publishers = 4
	)
	b := New()
	ctx := context.Background()
	var subs []*Subscription
	for i := 0; i < topics; i++ {
		s, err := b.Subscribe(8, fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			topic := fmt.Sprintf("t%d", p%topics)
			for i := 0; i < perTopic; i++ {
				if err := b.Publish(ctx, topic, []byte{byte(i)}); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(p)
	}
	var got [topics]int
	var rg sync.WaitGroup
	for i, s := range subs {
		rg.Add(1)
		go func(i int, s *Subscription) {
			defer rg.Done()
			var last uint64
			for n := 0; n < perTopic; n++ {
				m := pull(t, s)
				if m.Seq <= last {
					t.Errorf("topic %d: seq went backwards: %d after %d", i, m.Seq, last)
				}
				last = m.Seq
				got[i]++
			}
		}(i, s)
	}
	wg.Wait()
	rg.Wait()
	for i, n := range got {
		if n != perTopic {
			t.Errorf("topic %d: got %d messages, want %d", i, n, perTopic)
		}
	}
	if st := b.Stats(); st.Published != publishers*perTopic || st.Delivered != publishers*perTopic {
		t.Fatalf("stats: %+v", st)
	}
}
