package analysis

import (
	"strings"
	"testing"
	"time"

	"v6scan/internal/netaddr6"
	"v6scan/internal/scanner"
	"v6scan/internal/sim"
)

func TestCaseStudy32(t *testing.T) {
	cfg := sim.QuickConfig(800, 10, time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC), 21)
	cfg.Detector.Levels = []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alloc := scanner.Alloc(scanner.ASNOfRank(18))
	cs := BuildCaseStudy32(res.Detector, alloc)
	if cs.Packets48 == 0 || cs.Packets32 == 0 {
		t.Fatalf("case study empty: %+v", cs)
	}
	// The /32 aggregate must recover substantially more packets than
	// /48 detection (paper: >3x; our scaled census: >1.5x).
	if cs.Ratio < 1.5 {
		t.Errorf("/32 vs /48 ratio = %.2f, want ≥1.5", cs.Ratio)
	}
	// And /48 detection must itself exceed /64 (the shared-/48
	// clusters qualify only at /48).
	if cs.Packets48 < cs.Packets64 {
		t.Errorf("/48 packets %d < /64 packets %d", cs.Packets48, cs.Packets64)
	}
	if !strings.Contains(cs.Render(), "/32-detected") {
		t.Error("render broken")
	}
}
