package analysis

import (
	"fmt"
	"net/netip"

	"v6scan/internal/core"
	"v6scan/internal/netaddr6"
)

// CaseStudy32 reproduces the AS #18 /32 exercise of Section 3.2: the
// paper applies the scan definition to the actor's entire /32
// allocation and detects three times the packets attributed at /48
// aggregation, because many /48s inside the /32 individually stay
// below the 100-destination bar.
type CaseStudy32 struct {
	Alloc netip.Prefix
	// Packets detected against sources inside Alloc, per level.
	Packets48 uint64
	Packets64 uint64
	Packets32 uint64
	// Sources detected inside Alloc, per level.
	Sources48 int
	Sources64 int
	// Ratio is Packets32 / Packets48 (paper: >3).
	Ratio float64
}

// BuildCaseStudy32 computes the case study for one /32 allocation.
// The detector must have been configured with /64, /48 and /32 among
// its levels.
func BuildCaseStudy32(det *core.Detector, alloc netip.Prefix) CaseStudy32 {
	cs := CaseStudy32{Alloc: alloc}
	srcs48 := map[netip.Prefix]struct{}{}
	srcs64 := map[netip.Prefix]struct{}{}
	for _, s := range det.Scans(netaddr6.Agg48) {
		if alloc.Contains(s.Source.Addr()) {
			cs.Packets48 += s.Packets
			srcs48[s.Source] = struct{}{}
		}
	}
	for _, s := range det.Scans(netaddr6.Agg64) {
		if alloc.Contains(s.Source.Addr()) {
			cs.Packets64 += s.Packets
			srcs64[s.Source] = struct{}{}
		}
	}
	for _, s := range det.Scans(netaddr6.Agg32) {
		if alloc.Contains(s.Source.Addr()) {
			cs.Packets32 += s.Packets
		}
	}
	cs.Sources48 = len(srcs48)
	cs.Sources64 = len(srcs64)
	if cs.Packets48 > 0 {
		cs.Ratio = float64(cs.Packets32) / float64(cs.Packets48)
	}
	return cs
}

// Render formats the comparison.
func (c CaseStudy32) Render() string {
	return fmt.Sprintf(
		"allocation %v\n  /64-detected: %d packets from %d sources\n  /48-detected: %d packets from %d sources\n  /32-detected: %d packets (%.1fx the /48 view)\n",
		c.Alloc, c.Packets64, c.Sources64, c.Packets48, c.Sources48, c.Packets32, c.Ratio)
}
