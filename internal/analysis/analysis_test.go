package analysis

import (
	"strings"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pipeline"
	"v6scan/internal/scanner"
	"v6scan/internal/sim"
)

// shared four-week run with all taps enabled.
var (
	shared     *sim.Result
	sharedHeat *HeatmapCollector
	sharedDNS  *DNSCollector
)

func sharedRun(t *testing.T) (*sim.Result, *HeatmapCollector, *DNSCollector) {
	t.Helper()
	if shared != nil {
		return shared, sharedHeat, sharedDNS
	}
	cfg := sim.QuickConfig(1000, 12, time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC), 28)
	cfg.Detector.TrackDsts = true
	heat := NewHeatmapCollector()
	cfg.RawSink = pipeline.Collector(heat.Add)
	// The DNS collector needs the telescope, which exists only after
	// Run starts; buffer records and replay.
	var filtered []firewall.Record
	cfg.FilteredSink = pipeline.Collector(func(r firewall.Record) { filtered = append(filtered, r) })
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dns := NewDNSCollector(res.Telescope, 0)
	for _, r := range filtered {
		dns.Add(r)
	}
	shared, sharedHeat, sharedDNS = res, heat, dns
	return shared, sharedHeat, sharedDNS
}

func TestTable1(t *testing.T) {
	res, _, _ := sharedRun(t)
	t1 := BuildTable1(res.Detector, res.DB)
	if len(t1.Rows) != 3 {
		t.Fatalf("rows = %d", len(t1.Rows))
	}
	var r128, r64, r48 Table1Row
	for _, r := range t1.Rows {
		switch r.Level {
		case netaddr6.Agg128:
			r128 = r
		case netaddr6.Agg64:
			r64 = r
		case netaddr6.Agg48:
			r48 = r
		}
	}
	if r128.Scans <= r64.Scans {
		t.Errorf("/128 scans %d vs /64 %d", r128.Scans, r64.Scans)
	}
	if r48.ASes < r64.ASes {
		t.Errorf("AS counts: /48 %d < /64 %d (Table 1 shows growth)", r48.ASes, r64.ASes)
	}
	out := t1.Render()
	if !strings.Contains(out, "/128") || !strings.Contains(out, "sources") {
		t.Errorf("render: %q", out)
	}
}

func TestTable2(t *testing.T) {
	res, _, _ := sharedRun(t)
	t2 := BuildTable2(res.Detector, res.DB, 20)
	if len(t2.Rows) == 0 {
		t.Fatal("empty table 2")
	}
	// Ranks ordered by packets.
	for i := 1; i < len(t2.Rows); i++ {
		if t2.Rows[i].Packets > t2.Rows[i-1].Packets {
			t.Fatal("table 2 not sorted")
		}
	}
	// The top two must be the Chinese datacenter actors.
	if t2.Rows[0].ASN != scanner.ASNOfRank(1) && t2.Rows[0].ASN != scanner.ASNOfRank(2) {
		t.Errorf("top AS = %d", t2.Rows[0].ASN)
	}
	if t2.Rows[0].Label != "Datacenter (CN)" {
		t.Errorf("top label = %q", t2.Rows[0].Label)
	}
	if sh := t2.TopShare(5); sh < 0.75 {
		t.Errorf("top-5 share = %.2f, want high concentration", sh)
	}
	// AS18 must lead by /64 source count.
	var as18 Table2Row
	maxOther := 0
	for _, r := range t2.Rows {
		if r.ASN == scanner.ASNOfRank(18) {
			as18 = r
		} else if r.Srcs64 > maxOther {
			maxOther = r.Srcs64
		}
	}
	if as18.Srcs64 <= maxOther {
		t.Errorf("AS18 /64 sources = %d, max other = %d", as18.Srcs64, maxOther)
	}
	if as18.Srcs48 < as18.Srcs64 {
		t.Errorf("AS18 /48 sources (%d) should be >= /64 sources (%d)", as18.Srcs48, as18.Srcs64)
	}
	if !strings.Contains(t2.Render(), "Cloud/Transit (DE)") {
		t.Error("render missing AS18 label")
	}
}

func TestTable3(t *testing.T) {
	res, _, _ := sharedRun(t)
	t3 := BuildTable3(res.Detector, res.DB, scanner.ASNOfRank(18), 10)
	if len(t3.ByPackets) == 0 || len(t3.ByScans) == 0 || len(t3.BySources) == 0 {
		t.Fatal("empty rankings")
	}
	// No clear-cut dominant port: the top packet share stays modest
	// (paper: 3.5%); allow generous slack but reject >50%.
	if t3.ByPackets[0].Share > 0.5 {
		t.Errorf("top port packet share = %.2f — should be diffuse", t3.ByPackets[0].Share)
	}
	// TCP/22 must appear somewhere in the top-10 by scans (it is in
	// most actors' lists).
	found := false
	for _, s := range t3.ByScans {
		if s.Service.String() == "TCP/22" {
			found = true
		}
	}
	if !found {
		t.Error("TCP/22 missing from top scans ranking")
	}
	if !strings.Contains(t3.Render(), "by packets") {
		t.Error("render broken")
	}
}

func TestTable3ExcludesAS18(t *testing.T) {
	res, _, _ := sharedRun(t)
	with := BuildTable3(res.Detector, res.DB, 0, 5)
	without := BuildTable3(res.Detector, res.DB, scanner.ASNOfRank(18), 5)
	// AS18 probes only TCP/22 from hundreds of sources, so excluding it
	// must reduce TCP/22's source share.
	share := func(t3 Table3) float64 {
		for _, s := range t3.BySources {
			if s.Service.String() == "TCP/22" {
				return s.Share
			}
		}
		return 0
	}
	if share(without) >= share(with) {
		t.Errorf("TCP/22 source share with=%.2f without=%.2f", share(with), share(without))
	}
}

func TestHeatmap(t *testing.T) {
	_, heat, _ := sharedRun(t)
	hm := heat.Build()
	if hm.Sources == 0 {
		t.Fatal("no sources in heatmap")
	}
	// Figure 1 shape: most source /64s target very few destinations;
	// only a few target many.
	if hm.NearOriginShare() < 0.3 {
		t.Errorf("near-origin share = %.2f", hm.NearOriginShare())
	}
	if hm.HighDstSources(2) == 0 {
		t.Error("no high-destination sources (scanners missing from raw view)")
	}
	if hm.HighDstSources(2) >= hm.Sources/2 {
		t.Error("too many high-destination sources")
	}
	if !strings.Contains(hm.Render(), "10^0") {
		t.Error("render broken")
	}
}

func TestWeeklySources(t *testing.T) {
	res, _, _ := sharedRun(t)
	w := BuildWeeklySources(res.Detector)
	if w.MaxWeek < 3 {
		t.Fatalf("weeks = %d", w.MaxWeek)
	}
	for wk := 0; wk <= w.MaxWeek; wk++ {
		n128 := w.Weeks[netaddr6.Agg128][wk]
		n64 := w.Weeks[netaddr6.Agg64][wk]
		if n64 == 0 {
			t.Errorf("week %d: no /64 sources", wk)
		}
		if n128 < n64/2 {
			t.Errorf("week %d: /128 %d ≪ /64 %d", wk, n128, n64)
		}
	}
	if !strings.Contains(w.Render(), "/128") {
		t.Error("render broken")
	}
}

func TestConcentration(t *testing.T) {
	res, _, _ := sharedRun(t)
	c := BuildConcentration(res.Detector, netaddr6.Agg64)
	if len(c.Weeks) < 4 {
		t.Fatalf("weeks = %d", len(c.Weeks))
	}
	// Weekly top-2 dominance (paper: 92% average).
	for _, w := range c.Weeks {
		if w.Top2Share() < 0.4 {
			t.Errorf("week %d top-2 share %.2f", w.Week, w.Top2Share())
		}
	}
	if c.OverallTop2Share < 0.55 {
		t.Errorf("overall top-2 share %.2f", c.OverallTop2Share)
	}
	if !strings.Contains(c.Render(), "overall top-2") {
		t.Error("render broken")
	}
}

func TestPortBreakdown(t *testing.T) {
	res, _, _ := sharedRun(t)
	pb := BuildPortBreakdown(res.Detector, res.DB, netaddr6.Agg64, scanner.ASNOfRank(18))
	var sum float64
	for _, s := range pb.Scans {
		sum += s
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("scan shares sum to %.2f", sum)
	}
	// Packets dominated by >100-port scans.
	if pb.Packets[core.PortsOver100] < 0.5 {
		t.Errorf(">100-port packet share = %.2f", pb.Packets[core.PortsOver100])
	}
	if !strings.Contains(pb.Render(), ">100 ports") {
		t.Error("render broken")
	}
}

func TestDNSReport(t *testing.T) {
	res, _, dns := sharedRun(t)
	rep := dns.Build(res.Detector, nil)
	if len(rep.PerSource) == 0 {
		t.Fatal("no sources in DNS report")
	}
	// Most non-AS18 actors use pure-DNS pools, but AS18's pair sweeps
	// put half their targets outside DNS; overall the all-in-DNS share
	// is well below 1 and above 0.
	if rep.AllInDNSShare <= 0 || rep.AllInDNSShare >= 1 {
		t.Errorf("all-in-DNS share = %.2f", rep.AllInDNSShare)
	}
	if rep.HeavyNotInDNSShare == 0 {
		t.Error("no heavily not-in-DNS sources (AS18 missing)")
	}
	// AS18 sources sweep exposed-then-hidden pairs: their not-in-DNS
	// targets must have nearby in-DNS precursors at /123-ish closeness
	// far more often than chance.
	if len(rep.Precursors) == 0 {
		t.Fatal("no precursor stats")
	}
	high := 0
	for _, p := range rep.Precursors {
		if p.Plen == 112 && p.Share > 0.7 {
			high++
		}
	}
	if high == 0 {
		t.Error("no source shows strong nearby-precursor behaviour at /112")
	}
	if !strings.Contains(rep.Render(), "not in DNS") {
		t.Error("render broken")
	}
}

func TestDurationStats(t *testing.T) {
	res, _, _ := sharedRun(t)
	d128 := BuildDurationStats(res.Detector, netaddr6.Agg128)
	d64 := BuildDurationStats(res.Detector, netaddr6.Agg64)
	if d128.N == 0 || d64.N == 0 {
		t.Fatal("no scans")
	}
	// Section 3.1: /64 aggregation lengthens the median scan.
	if d64.Median <= d128.Median {
		t.Errorf("median /64 %v <= /128 %v", d64.Median, d128.Median)
	}
	// AS1's continuous pre-switch session runs for weeks.
	if d64.Max < 7*24*time.Hour {
		t.Errorf("max /64 duration %v, want multi-week", d64.Max)
	}
	if !strings.Contains(d64.Render(), "median") {
		t.Error("render broken")
	}
}

func TestTwinReport(t *testing.T) {
	res, _, _ := sharedRun(t)
	rep, ok := BuildTwinReport(res.Detector, scanner.Alloc(scanner.ASNOfRank(6)), res.Telescope)
	if !ok {
		t.Fatal("twin report unavailable")
	}
	// Appendix A.4: similar in/not-in-DNS splits and high Jaccard.
	if rep.Jaccard < 0.5 {
		t.Errorf("twin Jaccard = %.2f", rep.Jaccard)
	}
	if rep.NotA == 0 || rep.NotB == 0 {
		t.Errorf("twins lack not-in-DNS targets: %+v", rep)
	}
	if !strings.Contains(rep.Render(), "Jaccard") {
		t.Error("render broken")
	}
}

func TestLogBucket(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 0, 9: 0, 10: 1, 99: 1, 100: 2, 1000000: 6}
	for v, want := range cases {
		if got := logBucket(v); got != want {
			t.Errorf("logBucket(%d) = %d, want %d", v, got, want)
		}
	}
}
