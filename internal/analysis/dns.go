package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/telescope"
)

// DNSReport reproduces the "Targeted addresses" analysis of Section
// 3.3: for every /64 scan source, the split of its targets into
// DNS-exposed and non-exposed telescope addresses, plus the
// nearby-precursor analysis for heavily not-in-DNS sources.
type DNSReport struct {
	// PerSource lists each /64 scan source's provenance split.
	PerSource []SourceDNS
	// AllInDNSShare is the fraction of sources whose every target is
	// in DNS (paper: 75%).
	AllInDNSShare float64
	// HeavyNotInDNSShare is the fraction of sources with ≥ 1/3 targets
	// not in DNS (paper: ≥10%).
	HeavyNotInDNSShare float64
	// Precursors summarizes the nearby-in-DNS precursor condition per
	// heavily not-in-DNS source and nearby prefix length.
	Precursors []PrecursorStat
}

// SourceDNS is one source's target provenance.
type SourceDNS struct {
	Source   netip.Prefix
	InDNS    int
	NotInDNS int
	Dsts     int
}

// NotShare returns the source's not-in-DNS target share.
func (s SourceDNS) NotShare() float64 { return safeShareInt(s.NotInDNS, s.Dsts) }

// PrecursorStat reports, for one source and one "nearby" prefix
// length, the fraction of its not-in-DNS targets preceded by an
// in-DNS probe in the same /plen.
type PrecursorStat struct {
	Source netip.Prefix
	Plen   int
	Share  float64
}

// DNSCollector gathers per-/64-source target sequences from the
// filtered record stream (sim.Config.FilteredSink), preserving arrival
// order for the precursor analysis.
type DNSCollector struct {
	tele   *telescope.Telescope
	seqs   map[netip.Prefix]*targetSeq
	maxSeq int
}

type targetSeq struct {
	order []netip.Addr
	seen  map[netip.Addr]struct{}
}

// NewDNSCollector returns a collector. maxPerSource bounds memory per
// source (0 means unbounded).
func NewDNSCollector(tele *telescope.Telescope, maxPerSource int) *DNSCollector {
	return &DNSCollector{tele: tele, seqs: make(map[netip.Prefix]*targetSeq), maxSeq: maxPerSource}
}

// Add ingests one filtered record.
func (c *DNSCollector) Add(r firewall.Record) {
	key := netaddr6.Aggregate(r.Src, netaddr6.Agg64)
	s := c.seqs[key]
	if s == nil {
		s = &targetSeq{seen: make(map[netip.Addr]struct{})}
		c.seqs[key] = s
	}
	if _, dup := s.seen[r.Dst]; dup {
		return
	}
	if c.maxSeq > 0 && len(s.order) >= c.maxSeq {
		return
	}
	s.seen[r.Dst] = struct{}{}
	s.order = append(s.order, r.Dst)
}

// Build computes the report, restricted to /64 prefixes that are scan
// sources per the detector. nearbyPlens defaults to the paper's
// {124, 120, 116, 112}. Sources inside any exclude prefix are left out
// of the share statistics, mirroring the paper's separate treatment of
// AS #18 (which holds 80% of /64 sources); they still contribute to
// the precursor analysis.
func (c *DNSCollector) Build(det *core.Detector, nearbyPlens []int, exclude ...netip.Prefix) DNSReport {
	if len(nearbyPlens) == 0 {
		nearbyPlens = []int{124, 120, 116, 112}
	}
	excluded := func(p netip.Prefix) bool {
		for _, e := range exclude {
			if e.Contains(p.Addr()) {
				return true
			}
		}
		return false
	}
	scanSrcs := make(map[netip.Prefix]struct{})
	for _, s := range det.Scans(netaddr6.Agg64) {
		scanSrcs[s.Source] = struct{}{}
	}
	var rep DNSReport
	allIn, heavy := 0, 0
	for src := range scanSrcs {
		seq := c.seqs[src]
		if seq == nil || len(seq.order) == 0 {
			continue
		}
		sd := SourceDNS{Source: src, Dsts: len(seq.order)}
		for _, dst := range seq.order {
			if c.tele.InDNS(dst) {
				sd.InDNS++
			} else {
				sd.NotInDNS++
			}
		}
		skip := excluded(src)
		if !skip {
			rep.PerSource = append(rep.PerSource, sd)
			if sd.NotInDNS == 0 {
				allIn++
			}
			if sd.NotShare() >= 1.0/3.0 {
				heavy++
			}
		}
		// Precursor analysis for sources ≥50% not-in-DNS.
		if sd.NotShare() >= 0.5 {
			for _, plen := range nearbyPlens {
				rep.Precursors = append(rep.Precursors, PrecursorStat{
					Source: src, Plen: plen, Share: precursorShare(c.tele, seq.order, plen),
				})
			}
		}
	}
	sort.Slice(rep.PerSource, func(i, j int) bool {
		return rep.PerSource[i].Source.Addr().Compare(rep.PerSource[j].Source.Addr()) < 0
	})
	sort.Slice(rep.Precursors, func(i, j int) bool {
		if c := rep.Precursors[i].Source.Addr().Compare(rep.Precursors[j].Source.Addr()); c != 0 {
			return c < 0
		}
		return rep.Precursors[i].Plen > rep.Precursors[j].Plen
	})
	rep.AllInDNSShare = safeShareInt(allIn, len(rep.PerSource))
	rep.HeavyNotInDNSShare = safeShareInt(heavy, len(rep.PerSource))
	return rep
}

// precursorShare computes, over the ordered target sequence, the
// fraction of not-in-DNS targets for which an in-DNS target in the
// same /plen appeared earlier.
func precursorShare(tele *telescope.Telescope, order []netip.Addr, plen int) float64 {
	type key struct {
		hi, lo uint64
	}
	seenDNS := make(map[key]struct{})
	notTotal, notWithPre := 0, 0
	for _, dst := range order {
		u := netaddr6.ToU128(dst).Mask(plen)
		k := key{u.Hi, u.Lo}
		if tele.InDNS(dst) {
			seenDNS[k] = struct{}{}
			continue
		}
		notTotal++
		if _, ok := seenDNS[k]; ok {
			notWithPre++
		}
	}
	return safeShareInt(notWithPre, notTotal)
}

// Render summarizes the report.
func (r DNSReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan /64 sources analyzed: %d\n", len(r.PerSource))
	fmt.Fprintf(&b, "all targets in DNS:        %.1f%% of sources\n", 100*r.AllInDNSShare)
	fmt.Fprintf(&b, ">=33%% targets not in DNS:  %.1f%% of sources\n", 100*r.HeavyNotInDNSShare)
	if len(r.Precursors) > 0 {
		fmt.Fprintf(&b, "nearby in-DNS precursor shares (sources >=50%% not-in-DNS):\n")
		type agg struct {
			n    int
			sum  float64
			high int // sources with share >= 97%
			min  float64
			max  float64
		}
		perPlen := map[int]*agg{}
		for _, p := range r.Precursors {
			a := perPlen[p.Plen]
			if a == nil {
				a = &agg{min: 2}
				perPlen[p.Plen] = a
			}
			a.n++
			a.sum += p.Share
			if p.Share >= 0.97 {
				a.high++
			}
			if p.Share < a.min {
				a.min = p.Share
			}
			if p.Share > a.max {
				a.max = p.Share
			}
		}
		plens := make([]int, 0, len(perPlen))
		for plen := range perPlen {
			plens = append(plens, plen)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(plens)))
		for _, plen := range plens {
			a := perPlen[plen]
			fmt.Fprintf(&b, "  /%-4d %3d sources  mean %3.0f%%  min %3.0f%%  max %3.0f%%  >=97%%: %d\n",
				plen, a.n, 100*a.sum/float64(a.n), 100*a.min, 100*a.max, a.high)
		}
	}
	return b.String()
}

// DurationStats summarizes scan durations at one level (Section 3.1).
type DurationStats struct {
	Level  netaddr6.AggLevel
	N      int
	Median time.Duration
	Max    time.Duration
}

// BuildDurationStats computes duration statistics.
func BuildDurationStats(det *core.Detector, level netaddr6.AggLevel) DurationStats {
	scans := det.Scans(level)
	ds := make([]time.Duration, 0, len(scans))
	out := DurationStats{Level: level, N: len(scans)}
	for _, s := range scans {
		d := s.Duration()
		ds = append(ds, d)
		if d > out.Max {
			out.Max = d
		}
	}
	if len(ds) == 0 {
		return out
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	out.Median = ds[len(ds)/2]
	return out
}

// Render formats the stats.
func (d DurationStats) Render() string {
	return fmt.Sprintf("%s: %d scans, median duration %v, max %v\n", d.Level, d.N, d.Median, d.Max)
}

// TwinReport reproduces Appendix A.4: similarity evidence between the
// two most active /64 sources of one AS.
type TwinReport struct {
	A, B           netip.Prefix
	InDNSA, InDNSB int
	NotA, NotB     int
	Jaccard        float64
}

// BuildTwinReport compares the two highest-packet /64 scan sources
// inside the given allocation, using tracked destination sets
// (requires core.Config.TrackDsts).
func BuildTwinReport(det *core.Detector, alloc netip.Prefix, tele *telescope.Telescope) (TwinReport, bool) {
	bySrc := make(map[netip.Prefix]map[netip.Addr]struct{})
	pkts := make(map[netip.Prefix]uint64)
	for _, s := range det.Scans(netaddr6.Agg64) {
		if !alloc.Contains(s.Source.Addr()) {
			continue
		}
		set := bySrc[s.Source]
		if set == nil {
			set = make(map[netip.Addr]struct{})
			bySrc[s.Source] = set
		}
		for _, d := range s.DstAddrs {
			set[d] = struct{}{}
		}
		pkts[s.Source] += s.Packets
	}
	if len(bySrc) < 2 {
		return TwinReport{}, false
	}
	srcs := make([]netip.Prefix, 0, len(bySrc))
	for p := range bySrc {
		srcs = append(srcs, p)
	}
	sort.Slice(srcs, func(i, j int) bool {
		if pkts[srcs[i]] != pkts[srcs[j]] {
			return pkts[srcs[i]] > pkts[srcs[j]]
		}
		return srcs[i].Addr().Compare(srcs[j].Addr()) < 0
	})
	a, b := srcs[0], srcs[1]
	rep := TwinReport{A: a, B: b}
	inter := 0
	for d := range bySrc[a] {
		if tele.InDNS(d) {
			rep.InDNSA++
		} else {
			rep.NotA++
		}
		if _, ok := bySrc[b][d]; ok {
			inter++
		}
	}
	for d := range bySrc[b] {
		if tele.InDNS(d) {
			rep.InDNSB++
		} else {
			rep.NotB++
		}
	}
	union := len(bySrc[a]) + len(bySrc[b]) - inter
	rep.Jaccard = safeShareInt(inter, union)
	return rep, true
}

// Render formats the twin comparison.
func (t TwinReport) Render() string {
	return fmt.Sprintf("twin A %v: in-DNS %d, not %d\ntwin B %v: in-DNS %d, not %d\ntarget Jaccard: %.2f\n",
		t.A, t.InDNSA, t.NotA, t.B, t.InDNSB, t.NotB, t.Jaccard)
}
