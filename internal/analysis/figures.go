package analysis

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"v6scan/internal/asdb"
	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// Heatmap reproduces Figure 1: for every source /64 in the raw
// (pre-filter) firewall logs, the number of destination addresses
// targeted versus packets logged, as a 2-D histogram over base-10
// logarithmic buckets.
type Heatmap struct {
	// Cells[dstBucket][pktBucket] counts source /64s.
	Cells map[[2]int]int
	// Sources is the number of distinct source /64s.
	Sources int
}

// HeatmapCollector accumulates Figure-1 statistics from a raw record
// stream (wire it to sim.Config.RawSink).
type HeatmapCollector struct {
	perSrc map[netip.Prefix]*srcStat
}

type srcStat struct {
	dsts    map[netip.Addr]struct{}
	packets uint64
}

// NewHeatmapCollector returns an empty collector.
func NewHeatmapCollector() *HeatmapCollector {
	return &HeatmapCollector{perSrc: make(map[netip.Prefix]*srcStat)}
}

// Add ingests one raw record.
func (h *HeatmapCollector) Add(r firewall.Record) {
	key := netaddr6.Aggregate(r.Src, netaddr6.Agg64)
	s := h.perSrc[key]
	if s == nil {
		s = &srcStat{dsts: make(map[netip.Addr]struct{})}
		h.perSrc[key] = s
	}
	s.packets++
	s.dsts[r.Dst] = struct{}{}
}

// Build produces the histogram.
func (h *HeatmapCollector) Build() Heatmap {
	hm := Heatmap{Cells: make(map[[2]int]int), Sources: len(h.perSrc)}
	for _, s := range h.perSrc {
		key := [2]int{logBucket(uint64(len(s.dsts))), logBucket(s.packets)}
		hm.Cells[key]++
	}
	return hm
}

// NearOriginShare returns the fraction of source /64s in the lowest
// destination bucket (<10 destinations) — the "majority of source /64s
// cluster close to the origin" observation.
func (hm Heatmap) NearOriginShare() float64 {
	n := 0
	for k, c := range hm.Cells {
		if k[0] == 0 {
			n += c
		}
	}
	return safeShareInt(n, hm.Sources)
}

// HighDstSources returns how many source /64s targeted at least 10^b
// destinations.
func (hm Heatmap) HighDstSources(b int) int {
	n := 0
	for k, c := range hm.Cells {
		if k[0] >= b {
			n += c
		}
	}
	return n
}

// Render draws the histogram as a text grid (destination buckets as
// columns, packet buckets as rows).
func (hm Heatmap) Render() string {
	maxD, maxP := 0, 0
	for k := range hm.Cells {
		if k[0] > maxD {
			maxD = k[0]
		}
		if k[1] > maxP {
			maxP = k[1]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "source /64s by destinations (cols, 10^x) and packets (rows, 10^y)\n")
	fmt.Fprintf(&b, "%8s", "pkts\\dst")
	for d := 0; d <= maxD; d++ {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("10^%d", d))
	}
	b.WriteByte('\n')
	for p := maxP; p >= 0; p-- {
		fmt.Fprintf(&b, "%8s", fmt.Sprintf("10^%d", p))
		for d := 0; d <= maxD; d++ {
			fmt.Fprintf(&b, " %8d", hm.Cells[[2]int{d, p}])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WeeklySources reproduces Figure 2: distinct active scan sources per
// week at each aggregation level.
type WeeklySources struct {
	Epoch time.Time
	// Weeks[level][weekIdx] = distinct sources active that week.
	Weeks map[netaddr6.AggLevel]map[int]int
	// MaxWeek is the highest observed week index.
	MaxWeek int
}

// BuildWeeklySources computes Figure 2 from per-scan weekly packet
// attribution (requires the detector to have been run with WeekEpoch).
func BuildWeeklySources(det *core.Detector) WeeklySources {
	w := WeeklySources{Epoch: det.Config().WeekEpoch, Weeks: make(map[netaddr6.AggLevel]map[int]int)}
	for _, lvl := range det.Config().Levels {
		active := make(map[int]map[netip.Prefix]struct{})
		for _, s := range det.Scans(lvl) {
			for wk := range s.WeekPackets {
				set := active[wk]
				if set == nil {
					set = make(map[netip.Prefix]struct{})
					active[wk] = set
				}
				set[s.Source] = struct{}{}
			}
		}
		counts := make(map[int]int, len(active))
		for wk, set := range active {
			counts[wk] = len(set)
			if wk > w.MaxWeek {
				w.MaxWeek = wk
			}
		}
		w.Weeks[lvl] = counts
	}
	return w
}

// Render prints one row per week.
func (w WeeklySources) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "week", "/128", "/64", "/48")
	for wk := 0; wk <= w.MaxWeek; wk++ {
		ts := w.Epoch.Add(time.Duration(wk) * 7 * 24 * time.Hour)
		fmt.Fprintf(&b, "%-12s %8d %8d %8d\n", ts.Format("2006-01-02"),
			w.Weeks[netaddr6.Agg128][wk], w.Weeks[netaddr6.Agg64][wk], w.Weeks[netaddr6.Agg48][wk])
	}
	return b.String()
}

// Concentration reproduces Figure 3: weekly scan packets split into
// the most active source, the second most active, and everyone else
// (/64 aggregation).
type Concentration struct {
	Epoch time.Time
	Weeks []ConcentrationWeek
	// OverallTop2Share is the share of the two most active sources
	// measured across the entire window (paper: ≈70%).
	OverallTop2Share float64
}

// ConcentrationWeek is one week's packet split.
type ConcentrationWeek struct {
	Week               int
	Top1, Top2, Others uint64
}

// Top2Share returns the week's top-2 packet share.
func (c ConcentrationWeek) Top2Share() float64 {
	return safeShare(c.Top1+c.Top2, c.Top1+c.Top2+c.Others)
}

// BuildConcentration computes Figure 3 at the given level.
func BuildConcentration(det *core.Detector, level netaddr6.AggLevel) Concentration {
	weekly := make(map[int]map[netip.Prefix]uint64)
	totalBySrc := make(map[netip.Prefix]uint64)
	for _, s := range det.Scans(level) {
		for wk, pkts := range s.WeekPackets {
			m := weekly[wk]
			if m == nil {
				m = make(map[netip.Prefix]uint64)
				weekly[wk] = m
			}
			m[s.Source] += pkts
		}
		totalBySrc[s.Source] += s.Packets
	}
	out := Concentration{Epoch: det.Config().WeekEpoch}
	weeks := make([]int, 0, len(weekly))
	for wk := range weekly {
		weeks = append(weeks, wk)
	}
	sort.Ints(weeks)
	for _, wk := range weeks {
		var top1, top2, sum uint64
		for _, p := range weekly[wk] {
			sum += p
			if p > top1 {
				top1, top2 = p, top1
			} else if p > top2 {
				top2 = p
			}
		}
		out.Weeks = append(out.Weeks, ConcentrationWeek{Week: wk, Top1: top1, Top2: top2, Others: sum - top1 - top2})
	}
	var t1, t2, total uint64
	for _, p := range totalBySrc {
		total += p
		if p > t1 {
			t1, t2 = p, t1
		} else if p > t2 {
			t2 = p
		}
	}
	out.OverallTop2Share = safeShare(t1+t2, total)
	return out
}

// Render prints one row per week.
func (c Concentration) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s %12s %7s\n", "week", "top1", "top2", "others", "top2%")
	for _, w := range c.Weeks {
		ts := c.Epoch.Add(time.Duration(w.Week) * 7 * 24 * time.Hour)
		fmt.Fprintf(&b, "%-12s %12d %12d %12d %6.1f%%\n",
			ts.Format("2006-01-02"), w.Top1, w.Top2, w.Others, 100*w.Top2Share())
	}
	fmt.Fprintf(&b, "overall top-2 share: %.1f%%\n", 100*c.OverallTop2Share)
	return b.String()
}

// PortBreakdown reproduces Figures 4 and 8: the fraction of scans,
// scan sources, and scan packets per port class at one aggregation
// level.
type PortBreakdown struct {
	Level   netaddr6.AggLevel
	Scans   [4]float64
	Sources [4]float64
	Packets [4]float64
}

// BuildPortBreakdown computes the breakdown, optionally excluding one
// AS (the paper excludes AS #18 at /64).
func BuildPortBreakdown(det *core.Detector, db *asdb.DB, level netaddr6.AggLevel, excludeASN int) PortBreakdown {
	var (
		scanN   [4]int
		pktN    [4]uint64
		srcSet  [4]map[netip.Prefix]struct{}
		totalS  int
		totalP  uint64
		allSrcs = make(map[netip.Prefix]struct{})
	)
	// A source targeting different class counts per scan is attributed
	// to the class of its most multi-port scan, following the figure's
	// source bars.
	srcClass := make(map[netip.Prefix]core.PortClass)
	for i := range srcSet {
		srcSet[i] = make(map[netip.Prefix]struct{})
	}
	for _, s := range det.Scans(level) {
		if excludeASN != 0 {
			if as, _, ok := db.Attribute(s.Source.Addr()); ok && as.Number == excludeASN {
				continue
			}
		}
		cls := s.Class()
		scanN[cls]++
		totalS++
		pktN[cls] += s.Packets
		totalP += s.Packets
		allSrcs[s.Source] = struct{}{}
		if prev, ok := srcClass[s.Source]; !ok || cls > prev {
			srcClass[s.Source] = cls
		}
	}
	for src, cls := range srcClass {
		srcSet[cls][src] = struct{}{}
	}
	out := PortBreakdown{Level: level}
	for i := 0; i < 4; i++ {
		out.Scans[i] = safeShareInt(scanN[i], totalS)
		out.Packets[i] = safeShare(pktN[i], totalP)
		out.Sources[i] = safeShareInt(len(srcSet[i]), len(allSrcs))
	}
	return out
}

// Render prints the three bars per class.
func (p PortBreakdown) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ports per scan at %s\n", p.Level)
	fmt.Fprintf(&b, "%-14s %8s %9s %9s\n", "class", "scans", "sources", "packets")
	for i, c := range core.PortClasses() {
		fmt.Fprintf(&b, "%-14s %7.1f%% %8.1f%% %8.1f%%\n", c, 100*p.Scans[i], 100*p.Sources[i], 100*p.Packets[i])
	}
	return b.String()
}

// ASLabel resolves an AS number's Table-2 style label.
func ASLabel(db *asdb.DB, asn int) string {
	if as, ok := db.AS(asn); ok {
		return as.Label()
	}
	return fmt.Sprintf("AS%d", asn)
}
