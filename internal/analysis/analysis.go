// Package analysis turns detector output into the paper's tables and
// figures. Each builder returns a structured result with a Render
// method producing an aligned text rendition; cmd/report prints them
// and EXPERIMENTS.md records paper-vs-measured comparisons.
package analysis

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strings"

	"v6scan/internal/asdb"
	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// Table1 reproduces Table 1: detected scans, packets, sources and ASes
// per aggregation level.
type Table1 struct {
	Rows []Table1Row
}

// Table1Row is one aggregation level's totals.
type Table1Row struct {
	Level   netaddr6.AggLevel
	Scans   int
	Packets uint64
	Sources int
	ASes    int
}

// BuildTable1 computes Table 1 from a finished detector, attributing
// sources to ASes via db.
func BuildTable1(det *core.Detector, db *asdb.DB) Table1 {
	var t Table1
	for _, lvl := range det.Config().Levels {
		row := Table1Row{Level: lvl}
		srcs := make(map[netip.Prefix]struct{})
		ases := make(map[int]struct{})
		for _, s := range det.Scans(lvl) {
			row.Scans++
			row.Packets += s.Packets
			if _, seen := srcs[s.Source]; !seen {
				srcs[s.Source] = struct{}{}
				if as, _, ok := db.Attribute(s.Source.Addr()); ok {
					ases[as.Number] = struct{}{}
				}
			}
		}
		row.Sources = len(srcs)
		row.ASes = len(ases)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Render formats the table.
func (t Table1) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %10s %14s %9s %6s\n", "agg", "scans", "packets", "sources", "ASes")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6s %10d %14d %9d %6d\n", r.Level, r.Scans, r.Packets, r.Sources, r.ASes)
	}
	return b.String()
}

// Table2 reproduces Table 2: top source ASes by scan packets with
// their source counts at each aggregation level.
type Table2 struct {
	Rows         []Table2Row
	TotalPackets uint64
}

// Table2Row is one AS.
type Table2Row struct {
	Rank    int
	ASN     int
	Label   string // e.g. "Datacenter (CN)"
	Packets uint64 // at /64 aggregation
	Share   float64
	Srcs48  int
	Srcs64  int
	Srcs128 int
}

// BuildTable2 computes the top-n AS table. Packets are attributed at
// /64 aggregation as in the paper; source counts come from each
// level's scans.
func BuildTable2(det *core.Detector, db *asdb.DB, n int) Table2 {
	type agg struct {
		packets uint64
		srcs    [3]map[netip.Prefix]struct{} // /128, /64, /48
	}
	byAS := make(map[int]*agg)
	get := func(asn int) *agg {
		a := byAS[asn]
		if a == nil {
			a = &agg{}
			for i := range a.srcs {
				a.srcs[i] = make(map[netip.Prefix]struct{})
			}
			byAS[asn] = a
		}
		return a
	}
	levelIdx := map[netaddr6.AggLevel]int{netaddr6.Agg128: 0, netaddr6.Agg64: 1, netaddr6.Agg48: 2}
	var total uint64
	for lvl, idx := range levelIdx {
		for _, s := range det.Scans(lvl) {
			as, _, ok := db.Attribute(s.Source.Addr())
			if !ok {
				continue
			}
			a := get(as.Number)
			a.srcs[idx][s.Source] = struct{}{}
			if lvl == netaddr6.Agg64 {
				a.packets += s.Packets
				total += s.Packets
			}
		}
	}
	t := Table2{TotalPackets: total}
	for asn, a := range byAS {
		label := fmt.Sprintf("AS%d", asn)
		if as, ok := db.AS(asn); ok {
			label = as.Label()
		}
		t.Rows = append(t.Rows, Table2Row{
			ASN: asn, Label: label, Packets: a.packets,
			Share:  safeShare(a.packets, total),
			Srcs48: len(a.srcs[2]), Srcs64: len(a.srcs[1]), Srcs128: len(a.srcs[0]),
		})
	}
	sort.Slice(t.Rows, func(i, j int) bool {
		if t.Rows[i].Packets != t.Rows[j].Packets {
			return t.Rows[i].Packets > t.Rows[j].Packets
		}
		return t.Rows[i].ASN < t.Rows[j].ASN
	})
	if n > 0 && len(t.Rows) > n {
		t.Rows = t.Rows[:n]
	}
	for i := range t.Rows {
		t.Rows[i].Rank = i + 1
	}
	return t
}

// Render formats the table.
func (t Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-22s %12s %7s %7s %7s %7s\n", "rank", "AS", "packets", "share", "/48s", "/64s", "/128s")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "#%-3d %-22s %12d %6.1f%% %7d %7d %7d\n",
			r.Rank, r.Label, r.Packets, 100*r.Share, r.Srcs48, r.Srcs64, r.Srcs128)
	}
	return b.String()
}

// TopShare returns the combined packet share of the top-k rows.
func (t Table2) TopShare(k int) float64 {
	var sum uint64
	for i := 0; i < k && i < len(t.Rows); i++ {
		sum += t.Rows[i].Packets
	}
	return safeShare(sum, t.TotalPackets)
}

// Table3 reproduces Table 3: top services by packet share, scan share,
// and /64-source share.
type Table3 struct {
	ByPackets []ServiceShare
	ByScans   []ServiceShare
	BySources []ServiceShare
}

// ServiceShare is one service's share under one ranking.
type ServiceShare struct {
	Service firewall.Service
	Share   float64
}

// BuildTable3 computes the top-n service rankings over /64 scans,
// excluding the given ASN (the paper excludes AS #18, which holds 80%
// of /64 sources and probes a single port). Pass excludeASN 0 to keep
// everything.
func BuildTable3(det *core.Detector, db *asdb.DB, excludeASN, n int) Table3 {
	pktBy := make(map[firewall.Service]uint64)
	scanBy := make(map[firewall.Service]int)
	srcBy := make(map[firewall.Service]map[netip.Prefix]struct{})
	var totalPkts uint64
	totalScans := 0
	allSrcs := make(map[netip.Prefix]struct{})
	for _, s := range det.Scans(netaddr6.Agg64) {
		if excludeASN != 0 {
			if as, _, ok := db.Attribute(s.Source.Addr()); ok && as.Number == excludeASN {
				continue
			}
		}
		totalScans++
		allSrcs[s.Source] = struct{}{}
		for svc, cnt := range s.Ports {
			pktBy[svc] += cnt
			totalPkts += cnt
			scanBy[svc]++
			set := srcBy[svc]
			if set == nil {
				set = make(map[netip.Prefix]struct{})
				srcBy[svc] = set
			}
			set[s.Source] = struct{}{}
		}
	}
	top := func(m map[firewall.Service]float64) []ServiceShare {
		out := make([]ServiceShare, 0, len(m))
		for svc, sh := range m {
			out = append(out, ServiceShare{Service: svc, Share: sh})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Share != out[j].Share {
				return out[i].Share > out[j].Share
			}
			return out[i].Service.String() < out[j].Service.String()
		})
		if len(out) > n {
			out = out[:n]
		}
		return out
	}
	pk := make(map[firewall.Service]float64, len(pktBy))
	for svc, c := range pktBy {
		pk[svc] = safeShare(c, totalPkts)
	}
	sc := make(map[firewall.Service]float64, len(scanBy))
	for svc, c := range scanBy {
		sc[svc] = safeShareInt(c, totalScans)
	}
	sr := make(map[firewall.Service]float64, len(srcBy))
	for svc, set := range srcBy {
		sr[svc] = safeShareInt(len(set), len(allSrcs))
	}
	return Table3{ByPackets: top(pk), ByScans: top(sc), BySources: top(sr)}
}

// Render formats the three rankings side by side.
func (t Table3) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-16s %-16s %-16s\n", "rank", "by packets", "by scans", "by /64 sources")
	n := len(t.ByPackets)
	if len(t.ByScans) > n {
		n = len(t.ByScans)
	}
	if len(t.BySources) > n {
		n = len(t.BySources)
	}
	cell := func(ss []ServiceShare, i int) string {
		if i >= len(ss) {
			return ""
		}
		return fmt.Sprintf("%s %.1f%%", ss[i].Service, 100*ss[i].Share)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "#%-3d %-16s %-16s %-16s\n", i+1, cell(t.ByPackets, i), cell(t.ByScans, i), cell(t.BySources, i))
	}
	return b.String()
}

func safeShare(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

func safeShareInt(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

// logBucket returns the base-10 logarithmic bucket of v (0 → 0).
func logBucket(v uint64) int {
	if v == 0 {
		return 0
	}
	return int(math.Floor(math.Log10(float64(v))))
}
