package core

// Versioned snapshot/restore for the scan detector (checkpoint format
// kind 1). A snapshot is a consistent stream-time cut: it captures the
// detector exactly as it stood after processing every record with
// timestamp strictly before the mark — open sessions, accumulated
// scans, and drop counters. Restoring and replaying the records at or
// after the mark reconstructs the uninterrupted run byte-exactly.
//
// All state is written in canonical order (sessions sorted by key,
// scans sorted by start time then source, map entries sorted), and the
// per-level session sections are global — sessions from every shard of
// a ShardedDetector are merged into one sorted sequence per level. Two
// consequences:
//
//   - Snapshot∘Restore∘Snapshot is byte-identity (FuzzSnapshotRoundtrip);
//   - snapshots are shard-count independent: restore re-partitions each
//     session deterministically (dispatch.Partition over the coarsest
//     level, the same routing the dispatcher applies to records), so a
//     snapshot taken at N shards restores at any M ≥ 1.

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/checkpoint"
	"v6scan/internal/dispatch"
	"v6scan/internal/entropy"
	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/u128idx"
)

// preallocCap bounds slice/map preallocation hints taken from decoded
// counts, so a malformed length cannot demand gigabytes up front (the
// CRC makes this unreachable for accidental corruption; crafted inputs
// still only grow as real data arrives).
const preallocCap = 1 << 16

func preallocHint(n uint64) int {
	if n > preallocCap {
		return preallocCap
	}
	return int(n)
}

// Snapshot writes a consistent checkpoint of the detector at the given
// stream-time mark. The caller guarantees every record with timestamp
// before mark has been processed and none at or after it has (the
// pipeline checkpoint cadence arranges exactly this).
func (d *Detector) Snapshot(w io.Writer, mark time.Time) error {
	return snapshotDetectors(w, d.cfg, []*Detector{d}, mark)
}

// Snapshot writes a consistent checkpoint of the sharded detector: a
// dispatcher barrier drains in-flight batches (establishing the
// happens-before edge that makes shard state readable), then all
// shards serialize as one canonical global snapshot — byte-identical
// to the snapshot an unsharded detector would write at the same cut.
func (sd *ShardedDetector) Snapshot(w io.Writer, mark time.Time) error {
	if sd.finished {
		return fmt.Errorf("core: ShardedDetector.Snapshot after Finish")
	}
	if err := sd.disp.Barrier(); err != nil {
		return err
	}
	return snapshotDetectors(w, sd.cfg, sd.shards, mark)
}

// RestoreDetector rebuilds a detector from a snapshot opened with
// checkpoint.NewReader. The reader must be positioned at the first
// section (NewReader leaves it there).
func RestoreDetector(cr *checkpoint.Reader) (*Detector, error) {
	dets, err := restoreDetectors(cr, 1, func(cfg Config) []*Detector {
		return []*Detector{NewDetector(cfg)}
	})
	if err != nil {
		return nil, err
	}
	return dets[0], nil
}

// RestoreShardedDetector rebuilds a sharded detector from a snapshot,
// re-partitioning every session deterministically across n shards —
// n need not match the shard count the snapshot was taken at.
func RestoreShardedDetector(cr *checkpoint.Reader, n int) (*ShardedDetector, error) {
	if n < 1 {
		n = 1
	}
	var sd *ShardedDetector
	_, err := restoreDetectors(cr, n, func(cfg Config) []*Detector {
		sd = NewShardedDetector(cfg, n)
		return sd.shards
	})
	if err != nil {
		if sd != nil {
			sd.disp.Close()
		}
		return nil, err
	}
	return sd, nil
}

func snapshotDetectors(w io.Writer, cfg Config, dets []*Detector, mark time.Time) error {
	cw, err := checkpoint.NewWriter(w, checkpoint.KindDetector, mark)
	if err != nil {
		return err
	}
	var e checkpoint.Enc
	encodeDetectorConfig(&e, cfg)
	if err := cw.Section(checkpoint.SecConfig, e.B); err != nil {
		return err
	}
	// One global section per level: sessions from every shard, sorted
	// by key, so the bytes are independent of shard count and map
	// iteration order.
	type keyed struct {
		key netaddr6.U128
		s   *session
	}
	var sessions []keyed
	// setScratch is the reused sort buffer for every encoded address
	// set in the snapshot; it grows to the largest set once and keeps
	// the encode loop allocation-free (pinned by an allocs test).
	var setScratch []netaddr6.U128
	for li := range cfg.Levels {
		sessions = sessions[:0]
		for _, det := range dets {
			ls := det.levels[li]
			ls.idx.Range(func(key netaddr6.U128, h uint32) bool {
				sessions = append(sessions, keyed{key, ls.session(h)})
				return true
			})
		}
		sort.Slice(sessions, func(i, j int) bool { return sessions[i].key.Cmp(sessions[j].key) < 0 })
		e.B = e.B[:0]
		e.Varint(int64(cfg.Levels[li]))
		e.Uvarint(uint64(len(sessions)))
		for _, ks := range sessions {
			encodeSession(&e, &setScratch, ks.key, ks.s)
		}
		if err := cw.Section(checkpoint.SecLevel, e.B); err != nil {
			return err
		}
	}
	// Accumulated results, merged across shards: scans in their
	// deterministic (start, source) order, drop counters summed.
	e.B = e.B[:0]
	var scans []Scan
	for li := range cfg.Levels {
		var dropped uint64
		scans = scans[:0]
		for _, det := range dets {
			scans = append(scans, det.levels[li].scans...)
			dropped += det.levels[li].dropped
		}
		sort.Slice(scans, func(i, j int) bool {
			if !scans[i].Start.Equal(scans[j].Start) {
				return scans[i].Start.Before(scans[j].Start)
			}
			return scans[i].Source.Addr().Compare(scans[j].Source.Addr()) < 0
		})
		e.Varint(int64(cfg.Levels[li]))
		e.Uvarint(dropped)
		e.Uvarint(uint64(len(scans)))
		for i := range scans {
			encodeScan(&e, &scans[i])
		}
	}
	if err := cw.Section(checkpoint.SecResults, e.B); err != nil {
		return err
	}
	return cw.Close()
}

func restoreDetectors(cr *checkpoint.Reader, n int, mk func(cfg Config) []*Detector) ([]*Detector, error) {
	hdr := cr.Header()
	if hdr.Kind != checkpoint.KindDetector {
		return nil, fmt.Errorf("%w: snapshot kind %d, want detector (%d)",
			checkpoint.ErrFormat, hdr.Kind, checkpoint.KindDetector)
	}
	var (
		dets       []*Detector
		cfg        Config
		coarsest   netaddr6.AggLevel
		sawResults bool
	)
	for {
		kind, payload, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		dec := checkpoint.NewDec(payload)
		switch kind {
		case checkpoint.SecConfig:
			if dets != nil {
				return nil, fmt.Errorf("%w: duplicate config section", checkpoint.ErrFormat)
			}
			cfg = decodeDetectorConfig(dec)
			if err := dec.Err(); err != nil {
				return nil, err
			}
			dets = mk(cfg)
			coarsest = dispatch.CoarsestLevel(cfg.Levels)
			for _, det := range dets {
				det.lastTime = hdr.Horizon
			}
		case checkpoint.SecLevel:
			if dets == nil {
				return nil, fmt.Errorf("%w: level section before config", checkpoint.ErrFormat)
			}
			li, err := levelIndex(cfg.Levels, netaddr6.AggLevel(dec.Varint()))
			if err != nil {
				return nil, err
			}
			count := dec.Uvarint()
			for i := uint64(0); i < count && dec.Err() == nil; i++ {
				if err := decodeSession(dec, dets, li, coarsest, n); err != nil {
					return nil, err
				}
			}
			if err := dec.Err(); err != nil {
				return nil, err
			}
		case checkpoint.SecResults:
			if dets == nil {
				return nil, fmt.Errorf("%w: results section before config", checkpoint.ErrFormat)
			}
			if sawResults {
				return nil, fmt.Errorf("%w: duplicate results section", checkpoint.ErrFormat)
			}
			sawResults = true
			// Results restore into shard 0: the deterministic merge at
			// Finish makes their placement invisible.
			for dec.Len() > 0 {
				li, err := levelIndex(cfg.Levels, netaddr6.AggLevel(dec.Varint()))
				if err != nil {
					return nil, err
				}
				ls := dets[0].levels[li]
				ls.dropped = dec.Uvarint()
				scanN := dec.Uvarint()
				for i := uint64(0); i < scanN && dec.Err() == nil; i++ {
					ls.scans = append(ls.scans, decodeScan(dec))
				}
				if err := dec.Err(); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("%w: unknown section kind %d", checkpoint.ErrFormat, kind)
		}
	}
	if dets == nil {
		return nil, fmt.Errorf("%w: missing config section", checkpoint.ErrFormat)
	}
	return dets, nil
}

func encodeDetectorConfig(e *checkpoint.Enc, cfg Config) {
	e.Uvarint(uint64(cfg.MinDsts))
	e.Varint(int64(cfg.Timeout))
	if cfg.TrackDsts {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Time(cfg.WeekEpoch)
	e.Uvarint(uint64(len(cfg.Levels)))
	for _, l := range cfg.Levels {
		e.Varint(int64(l))
	}
}

func decodeDetectorConfig(d *checkpoint.Dec) Config {
	cfg := Config{
		MinDsts:   int(d.Uvarint()),
		Timeout:   time.Duration(d.Varint()),
		TrackDsts: d.U8() != 0,
		WeekEpoch: d.Time(),
	}
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		cfg.Levels = append(cfg.Levels, netaddr6.AggLevel(d.Varint()))
	}
	return cfg
}

func levelIndex(levels []netaddr6.AggLevel, l netaddr6.AggLevel) (int, error) {
	for i, have := range levels {
		if have == l {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: level %v not in configuration", checkpoint.ErrFormat, l)
}

// encodeSession writes one session's logical state: each inline-or-set
// pair is encoded as its sorted logical contents, so the in-memory
// representation (inline fast path vs materialized set) never reaches
// the wire. scratch is the caller's reused sort buffer.
func encodeSession(e *checkpoint.Enc, scratch *[]netaddr6.U128, key netaddr6.U128, s *session) {
	e.U64(key.Hi)
	e.U64(key.Lo)
	e.Time(s.start)
	e.Time(s.last)
	e.Uvarint(s.packets)
	encodeU128Set(e, scratch, &s.dsts, s.firstDst)
	encodeU128Set(e, scratch, &s.srcs, s.firstSrc)
	encodePorts(e, s.ports, s.firstSvc, s.svcN)
	encodeWeeks(e, s.weeks, int(s.firstWeek), s.weekN)
	encodeCounter(e, &s.lenCounter)
}

// decodeSession rebuilds one session into its deterministic shard
// (dispatch.Partition over the coarsest level — the same routing the
// dispatcher applies to the session's records).
func decodeSession(d *checkpoint.Dec, dets []*Detector, li int, coarsest netaddr6.AggLevel, n int) error {
	key := netaddr6.U128{Hi: d.U64(), Lo: d.U64()}
	shard := 0
	if n > 1 {
		shard = dispatch.Partition(key.ToAddr(), coarsest, n)
	}
	ls := dets[shard].levels[li]
	h, s := ls.alloc()
	s.start = d.Time()
	s.last = d.Time()
	s.packets = d.Uvarint()
	var err error
	if s.firstDst, err = decodeU128Set(d, &s.dsts); err != nil {
		return err
	}
	if s.firstSrc, err = decodeU128Set(d, &s.srcs); err != nil {
		return err
	}
	s.ports, s.firstSvc, s.svcN = decodePorts(d)
	var week int
	s.weeks, week, s.weekN = decodeWeeks(d)
	s.firstWeek = int32(week)
	decodeCounter(d, &s.lenCounter)
	if err := d.Err(); err != nil {
		return err
	}
	ls.idx.Put(key, h)
	return nil
}

// encodeU128Set writes the logical address set of an inline-or-set
// pair: the set's canonical (sorted) members when materialized (always
// ≥ 2 entries, including the first value), the single inline value
// otherwise. scratch is a reused sort buffer threaded through the
// encoder so repeated sections don't allocate.
func encodeU128Set(e *checkpoint.Enc, scratch *[]netaddr6.U128, set *u128idx.Set, first netaddr6.U128) {
	if set.Len() == 0 {
		e.Uvarint(1)
		e.U64(first.Hi)
		e.U64(first.Lo)
		return
	}
	keys := set.AppendSorted((*scratch)[:0])
	*scratch = keys
	e.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		e.U64(k.Hi)
		e.U64(k.Lo)
	}
}

// decodeU128Set fills set (assumed empty) with the encoded members and
// returns the first value; a single-member set stays on the inline
// fast path (set left empty), exactly as live ingestion would leave it.
func decodeU128Set(d *checkpoint.Dec, set *u128idx.Set) (netaddr6.U128, error) {
	n := d.Uvarint()
	if n == 0 || d.Err() != nil {
		return netaddr6.U128{}, fmt.Errorf("%w: empty address set", checkpoint.ErrFormat)
	}
	first := netaddr6.U128{Hi: d.U64(), Lo: d.U64()}
	if n == 1 {
		return first, nil
	}
	set.Add(first)
	for i := uint64(1); i < n && d.Err() == nil; i++ {
		set.Add(netaddr6.U128{Hi: d.U64(), Lo: d.U64()})
	}
	return first, d.Err()
}

// servicesSorted returns a map's services ordered by (proto, port).
func servicesSorted(m map[firewall.Service]uint64) []firewall.Service {
	svcs := make([]firewall.Service, 0, len(m))
	for s := range m {
		svcs = append(svcs, s)
	}
	sort.Slice(svcs, func(i, j int) bool {
		if svcs[i].Proto != svcs[j].Proto {
			return svcs[i].Proto < svcs[j].Proto
		}
		return svcs[i].Port < svcs[j].Port
	})
	return svcs
}

func encodePorts(e *checkpoint.Enc, m map[firewall.Service]uint64, first firewall.Service, firstN uint64) {
	if len(m) == 0 {
		e.Uvarint(1)
		e.U8(uint8(first.Proto))
		e.Uvarint(uint64(first.Port))
		e.Uvarint(firstN)
		return
	}
	svcs := servicesSorted(m)
	e.Uvarint(uint64(len(svcs)))
	for _, s := range svcs {
		e.U8(uint8(s.Proto))
		e.Uvarint(uint64(s.Port))
		e.Uvarint(m[s])
	}
}

func decodePorts(d *checkpoint.Dec) (map[firewall.Service]uint64, firewall.Service, uint64) {
	n := d.Uvarint()
	readSvc := func() (firewall.Service, uint64) {
		var s firewall.Service
		s.Proto = layers.IPProtocol(d.U8())
		s.Port = uint16(d.Uvarint())
		return s, d.Uvarint()
	}
	if n == 0 {
		return nil, firewall.Service{}, 0
	}
	if n == 1 {
		first, firstN := readSvc()
		return nil, first, firstN
	}
	m := make(map[firewall.Service]uint64, inlineMapHint)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		s, cnt := readSvc()
		m[s] = cnt
	}
	// The inline pair is never consulted once the map is materialized;
	// leave it zero.
	return m, firewall.Service{}, 0
}

func encodeWeeks(e *checkpoint.Enc, m map[int]uint64, first int, firstN uint64) {
	if len(m) == 0 {
		if firstN == 0 {
			e.Uvarint(0)
			return
		}
		e.Uvarint(1)
		e.Varint(int64(first))
		e.Uvarint(firstN)
		return
	}
	weeks := make([]int, 0, len(m))
	for w := range m {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	e.Uvarint(uint64(len(weeks)))
	for _, w := range weeks {
		e.Varint(int64(w))
		e.Uvarint(m[w])
	}
}

func decodeWeeks(d *checkpoint.Dec) (map[int]uint64, int, uint64) {
	n := d.Uvarint()
	if n == 0 {
		return nil, 0, 0
	}
	if n == 1 {
		w := int(d.Varint())
		return nil, w, d.Uvarint()
	}
	m := make(map[int]uint64, inlineMapHint)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		w := int(d.Varint())
		m[w] = d.Uvarint()
	}
	return m, 0, 0
}

// encodeCounter writes an entropy counter's (value, count) pairs in
// value order.
func encodeCounter(e *checkpoint.Enc, c *entropy.Counter) {
	type vc struct{ v, n uint64 }
	var pairs []vc
	c.Each(func(v, n uint64) { pairs = append(pairs, vc{v, n}) })
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].v < pairs[j].v })
	e.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		e.Uvarint(p.v)
		e.Uvarint(p.n)
	}
}

// decodeCounter rebuilds a counter by replaying its observations in
// value order; a single distinct value lands on the inline fast path,
// exactly as live ingestion would leave it.
func decodeCounter(d *checkpoint.Dec, c *entropy.Counter) {
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		v := d.Uvarint()
		c.ObserveN(v, d.Uvarint())
	}
}

func encodeScan(e *checkpoint.Enc, s *Scan) {
	src := netaddr6.ToU128(s.Source.Addr())
	e.U64(src.Hi)
	e.U64(src.Lo)
	e.Varint(int64(s.Source.Bits()))
	e.Time(s.Start)
	e.Time(s.End)
	e.Uvarint(s.Packets)
	e.Uvarint(uint64(s.Dsts))
	e.Uvarint(uint64(s.SrcAddrs))
	e.F64(s.LenEntropy)
	addrs := append([]netip.Addr(nil), s.DstAddrs...)
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Compare(addrs[j]) < 0 })
	e.Uvarint(uint64(len(addrs)))
	for _, a := range addrs {
		u := netaddr6.ToU128(a)
		e.U64(u.Hi)
		e.U64(u.Lo)
	}
	encodePortsAlways(e, s.Ports)
	encodeWeeks(e, s.WeekPackets, 0, 0)
}

// encodePortsAlways is encodePorts for maps that are always
// materialized (scan results), with no inline fallback.
func encodePortsAlways(e *checkpoint.Enc, m map[firewall.Service]uint64) {
	svcs := servicesSorted(m)
	e.Uvarint(uint64(len(svcs)))
	for _, s := range svcs {
		e.U8(uint8(s.Proto))
		e.Uvarint(uint64(s.Port))
		e.Uvarint(m[s])
	}
}

func decodeScan(d *checkpoint.Dec) Scan {
	src := netaddr6.U128{Hi: d.U64(), Lo: d.U64()}
	bits := int(d.Varint())
	s := Scan{
		Source:     netip.PrefixFrom(src.ToAddr(), bits),
		Level:      netaddr6.AggLevel(bits),
		Start:      d.Time(),
		End:        d.Time(),
		Packets:    d.Uvarint(),
		Dsts:       int(d.Uvarint()),
		SrcAddrs:   int(d.Uvarint()),
		LenEntropy: d.F64(),
	}
	if n := d.Uvarint(); n > 0 {
		s.DstAddrs = make([]netip.Addr, 0, preallocHint(n))
		for i := uint64(0); i < n && d.Err() == nil; i++ {
			s.DstAddrs = append(s.DstAddrs, netaddr6.U128{Hi: d.U64(), Lo: d.U64()}.ToAddr())
		}
	}
	pn := d.Uvarint()
	s.Ports = make(map[firewall.Service]uint64, preallocHint(pn))
	for i := uint64(0); i < pn && d.Err() == nil; i++ {
		var svc firewall.Service
		svc.Proto = layers.IPProtocol(d.U8())
		svc.Port = uint16(d.Uvarint())
		s.Ports[svc] = d.Uvarint()
	}
	s.WeekPackets = decodeWeeksMapOnly(d)
	return s
}

// decodeWeeksMapOnly mirrors decodeWeeks but always materializes a map
// when any entry is present (scan results hold real maps, never the
// inline pair).
func decodeWeeksMapOnly(d *checkpoint.Dec) map[int]uint64 {
	n := d.Uvarint()
	if n == 0 {
		return nil
	}
	m := make(map[int]uint64, preallocHint(n))
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		w := int(d.Varint())
		m[w] = d.Uvarint()
	}
	return m
}
