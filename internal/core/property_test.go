package core

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// genWorkload builds a random but time-ordered record stream from a
// seed: several sources with random burst/gap structure, some gaps
// exceeding the session timeout.
func genWorkload(seed int64, n int) []firewall.Record {
	rng := rand.New(rand.NewSource(seed))
	ts := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	type state struct {
		addr netip.Addr
		next int
	}
	srcs := make([]state, 5+rng.Intn(10))
	for i := range srcs {
		srcs[i].addr = netaddr6.WithIID(
			netaddr6.NthSubprefix(netaddr6.MustPrefix("2001:db8::/32"), 64, uint64(rng.Intn(64))).Addr(),
			uint64(rng.Intn(8)+1))
	}
	out := make([]firewall.Record, 0, n)
	for len(out) < n {
		s := &srcs[rng.Intn(len(srcs))]
		dst := netaddr6.WithIID(netaddr6.MustPrefix("2001:db8:ff::/64").Addr(), uint64(s.next%500+1))
		s.next++
		out = append(out, firewall.Record{
			Time: ts, Src: s.addr, Dst: dst,
			Proto: layers.ProtoTCP, DstPort: uint16(22 + rng.Intn(4)), Length: 60,
		})
		gap := time.Duration(rng.Intn(120)) * time.Second
		if rng.Intn(40) == 0 {
			gap = time.Duration(61+rng.Intn(120)) * time.Minute
		}
		ts = ts.Add(gap)
	}
	return out
}

func runDetector(t *testing.T, recs []firewall.Record, advanceEvery int) *Detector {
	t.Helper()
	d := NewDetector(DefaultConfig())
	for i, r := range recs {
		if err := d.Process(r); err != nil {
			t.Fatal(err)
		}
		if advanceEvery > 0 && i%advanceEvery == 0 {
			d.Advance(r.Time)
		}
	}
	d.Finish()
	return d
}

// Property: every emitted scan satisfies the definition — destination
// count at least MinDsts, no internal gap is checkable from outside,
// but start/end are consistent and packets ≥ dsts-distinct lower
// bounds.
func TestPropertyScanWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		recs := genWorkload(seed, 2000)
		d := runDetector(t, recs, 0)
		for _, lvl := range netaddr6.Levels() {
			for _, s := range d.Scans(lvl) {
				if s.Dsts < d.Config().MinDsts {
					return false
				}
				if s.Packets < uint64(s.Dsts) {
					return false
				}
				if s.End.Before(s.Start) {
					return false
				}
				var portSum uint64
				for _, n := range s.Ports {
					portSum += n
				}
				if portSum != s.Packets {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: scans of one source at one level are time-disjoint and
// separated by more than the timeout (sessions by construction).
func TestPropertyScansDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		recs := genWorkload(seed, 2000)
		d := runDetector(t, recs, 0)
		for _, lvl := range netaddr6.Levels() {
			last := map[netip.Prefix]time.Time{}
			for _, s := range d.Scans(lvl) {
				if prev, ok := last[s.Source]; ok {
					if s.Start.Sub(prev) <= d.Config().Timeout {
						return false
					}
				}
				if end, ok := last[s.Source]; !ok || s.End.After(end) {
					last[s.Source] = s.End
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: attributed scan packets grow monotonically with coarser
// aggregation — any /128-qualifying session lies within a /64 session
// with at least as many destinations, and so on (Table 1's packet
// column).
func TestPropertyAggregationMonotone(t *testing.T) {
	f := func(seed int64) bool {
		recs := genWorkload(seed, 3000)
		d := runDetector(t, recs, 0)
		p128 := d.TotalsFor(netaddr6.Agg128).Packets
		p64 := d.TotalsFor(netaddr6.Agg64).Packets
		p48 := d.TotalsFor(netaddr6.Agg48).Packets
		return p128 <= p64 && p64 <= p48
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: periodic Advance (the bounded-memory streaming mode) never
// changes the detected scans relative to a pure batch run.
func TestPropertyAdvanceInvariant(t *testing.T) {
	f := func(seed int64, everyRaw uint8) bool {
		recs := genWorkload(seed, 2000)
		every := int(everyRaw)%200 + 1
		batch := runDetector(t, recs, 0)
		stream := runDetector(t, recs, every)
		for _, lvl := range netaddr6.Levels() {
			a, b := batch.Scans(lvl), stream.Scans(lvl)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i].Source != b[i].Source || a[i].Packets != b[i].Packets ||
					a[i].Dsts != b[i].Dsts || !a[i].Start.Equal(b[i].Start) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: the detector is a pure function of its input stream.
func TestPropertyDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		recs := genWorkload(seed, 1500)
		a := runDetector(t, recs, 0)
		b := runDetector(t, recs, 0)
		for _, lvl := range netaddr6.Levels() {
			sa, sb := a.Scans(lvl), b.Scans(lvl)
			if len(sa) != len(sb) {
				return false
			}
			for i := range sa {
				if sa[i].Source != sb[i].Source || sa[i].Packets != sb[i].Packets {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
