package core

import (
	"fmt"
	"math"
	"net/netip"

	"v6scan/internal/netaddr6"
)

// DstSketch is a HyperLogLog cardinality estimator over destination
// addresses. The Discussion section argues that inline IDS deployments
// of the scan definition cannot afford an exact destination set per
// candidate source; this sketch bounds per-source memory to 2^precision
// bytes (default 1 KiB) at a relative error of ≈1.04/√(2^precision)
// (≈3.2% at precision 10), which is ample for a ≥100-destinations
// threshold. bench_test.go ablates it against the exact map.
type DstSketch struct {
	registers []uint8
	precision uint8
}

// NewDstSketch returns a sketch with 2^precision registers
// (4 ≤ precision ≤ 16; out-of-range values are clamped).
func NewDstSketch(precision uint8) *DstSketch {
	if precision < 4 {
		precision = 4
	}
	if precision > 16 {
		precision = 16
	}
	return &DstSketch{registers: make([]uint8, 1<<precision), precision: precision}
}

// Add observes one destination address.
func (s *DstSketch) Add(a netip.Addr) {
	s.addHash(hashAddr(a))
}

// AddU128 observes one destination already in 128-bit integer form —
// the hot-path variant for callers that convert the address once and
// feed several sketches (the IDS engine's per-level tables).
func (s *DstSketch) AddU128(u netaddr6.U128) {
	s.addHash(hashU128(u.Hi, u.Lo))
}

func (s *DstSketch) addHash(h uint64) {
	idx := h >> (64 - uint64(s.precision))
	rest := h<<s.precision | 1<<(uint64(s.precision)-1) // avoid zero tail
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s.registers[idx] {
		s.registers[idx] = rank
	}
}

// Estimate returns the approximate number of distinct addresses added.
func (s *DstSketch) Estimate() uint64 {
	m := float64(len(s.registers))
	var sum float64
	zeros := 0
	for _, r := range s.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// Small-range correction (linear counting).
	if e <= 2.5*m && zeros > 0 {
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

// MemoryBytes returns the sketch's register memory.
func (s *DstSketch) MemoryBytes() int { return len(s.registers) }

// Precision returns the sketch's precision (register count = 2^p).
func (s *DstSketch) Precision() uint8 { return s.precision }

// Registers returns the sketch's register array — its complete
// serializable state. The returned slice is the backing store: callers
// must treat it as read-only and must not retain it past the sketch's
// next mutation. Snapshot code copies it into the checkpoint payload.
func (s *DstSketch) Registers() []uint8 { return s.registers }

// RestoreDstSketch rebuilds a sketch from a precision and register
// array previously obtained from Registers. The registers are copied.
func RestoreDstSketch(precision uint8, registers []uint8) (*DstSketch, error) {
	if precision < 4 || precision > 16 {
		return nil, fmt.Errorf("core: sketch precision %d out of range [4,16]", precision)
	}
	if len(registers) != 1<<precision {
		return nil, fmt.Errorf("core: sketch register count %d does not match precision %d (want %d)",
			len(registers), precision, 1<<precision)
	}
	s := &DstSketch{registers: make([]uint8, len(registers)), precision: precision}
	copy(s.registers, registers)
	return s, nil
}

// Reset zeroes the registers, returning the sketch to its freshly
// allocated state so callers can pool and reuse sketches (the IDS
// engine's candidate arena does): a reset sketch is observationally
// identical to a new one at the same precision.
func (s *DstSketch) Reset() { clear(s.registers) }

// hashAddr is a 64-bit mix of an IPv6 address (SplitMix64-style over
// both halves) — fast, stateless, and adequate for cardinality
// sketching (not adversarially robust; an IDS would key it with a
// per-process secret).
func hashAddr(a netip.Addr) uint64 {
	b := a.As16()
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return hashU128(hi, lo)
}

func hashU128(hi, lo uint64) uint64 {
	x := hi ^ (lo * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
