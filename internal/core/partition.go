package core

import (
	"net/netip"

	"v6scan/internal/dispatch"
	"v6scan/internal/netaddr6"
)

// CoarsestLevel returns the coarsest (smallest prefix length) of the
// given aggregation levels — the partition level for sharded consumers.
// The canonical implementation lives in the dispatch package (which
// owns the sharding invariant); this wrapper keeps the established
// call sites working.
func CoarsestLevel(levels []netaddr6.AggLevel) netaddr6.AggLevel {
	return dispatch.CoarsestLevel(levels)
}

// PartitionShard routes a source address to one of n shards by its
// prefix at the partition level. Both the sharded detector and the
// sharded IDS engine use it (via dispatch.Dispatcher), so a record
// always lands on the same shard index regardless of which consumer
// processes it. Canonical implementation: dispatch.Partition.
func PartitionShard(src netip.Addr, level netaddr6.AggLevel, n int) int {
	return dispatch.Partition(src, level, n)
}
