package core

import (
	"math/bits"
	"net/netip"

	"v6scan/internal/netaddr6"
)

// CoarsestLevel returns the coarsest (smallest prefix length) of the
// given aggregation levels — the partition level for sharded consumers:
// every finer aggregate of a source nests inside its coarsest prefix,
// so state at every level lands in exactly one shard.
func CoarsestLevel(levels []netaddr6.AggLevel) netaddr6.AggLevel {
	coarsest := levels[0]
	for _, l := range levels {
		if l < coarsest {
			coarsest = l
		}
	}
	return coarsest
}

// PartitionShard routes a source address to one of n shards by its
// prefix at the partition level. Both the sharded detector and the
// sharded IDS engine use it, so a record always lands on the same shard
// index regardless of which consumer processes it.
func PartitionShard(src netip.Addr, level netaddr6.AggLevel, n int) int {
	if n <= 1 {
		return 0
	}
	key := netaddr6.ToU128(src).Mask(int(level))
	// splitmix-style finalizer over the masked 128-bit key.
	x := key.Hi ^ bits.RotateLeft64(key.Lo, 31)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(n))
}
