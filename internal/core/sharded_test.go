package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// parityRecords synthesizes a workload exercising every sharding edge:
// sources spread across many /48s (so shards balance), several /128s
// per /64 (so levels disagree), session gaps above the timeout (so
// sessions close and reopen), and a low-rate background population
// that never qualifies.
func parityRecords(n int) []firewall.Record {
	rng := rand.New(rand.NewSource(17))
	base := netaddr6.MustPrefix("2001:db8:a000::/36")
	dsts := netaddr6.MustPrefix("2001:db8:f000::/44")
	ts := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		p48 := netaddr6.NthSubprefix(base, 48, uint64(i%37))
		p64 := netaddr6.NthSubprefix(p48, 64, uint64(i%5))
		src := netaddr6.WithIID(p64.Addr(), uint64(1+i%9))
		recs = append(recs, firewall.Record{
			Time:    ts,
			Src:     src,
			Dst:     netaddr6.RandomAddrIn(dsts, rng),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1 + i%512),
			Length:  uint16(60 + i%4),
		})
		step := 40 * time.Millisecond
		if i%20000 == 19999 {
			// Periodic lull above the timeout splits sessions.
			step = 2 * time.Hour
		}
		ts = ts.Add(step)
	}
	return recs
}

func parityConfig() Config {
	return Config{
		MinDsts:   10,
		Timeout:   time.Hour,
		Levels:    []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48},
		TrackDsts: true,
		WeekEpoch: time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
}

// canonical renders a scan including every field, with map keys sorted,
// so two scan lists compare byte for byte.
func canonical(s Scan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v %v %v %v pk=%d dsts=%d srcs=%d ent=%.9f",
		s.Source, s.Level, s.Start.UnixNano(), s.End.UnixNano(),
		s.Packets, s.Dsts, s.SrcAddrs, s.LenEntropy)
	svcs := make([]string, 0, len(s.Ports))
	for svc, c := range s.Ports {
		svcs = append(svcs, fmt.Sprintf("%v=%d", svc, c))
	}
	sort.Strings(svcs)
	fmt.Fprintf(&b, " ports[%s]", strings.Join(svcs, ","))
	weeks := make([]int, 0, len(s.WeekPackets))
	for w := range s.WeekPackets {
		weeks = append(weeks, w)
	}
	sort.Ints(weeks)
	for _, w := range weeks {
		fmt.Fprintf(&b, " w%d=%d", w, s.WeekPackets[w])
	}
	for _, a := range s.DstAddrs {
		b.WriteString(" ")
		b.WriteString(a.String())
	}
	return b.String()
}

func renderLevel(scans []Scan) string {
	var b strings.Builder
	for _, s := range scans {
		b.WriteString(canonical(s))
		b.WriteString("\n")
	}
	return b.String()
}

// TestShardedParity feeds the identical record stream to an unsharded
// Detector and to ShardedDetectors at several shard counts, and
// requires byte-identical Scans() output at every aggregation level.
func TestShardedParity(t *testing.T) {
	recs := parityRecords(60_000)
	cfg := parityConfig()

	ref := NewDetector(cfg)
	for j, r := range recs {
		if err := ref.Process(r); err != nil {
			t.Fatal(err)
		}
		if j%10_000 == 9999 {
			ref.Advance(r.Time)
		}
	}
	ref.Finish()

	want := map[netaddr6.AggLevel]string{}
	for _, lvl := range cfg.Levels {
		want[lvl] = renderLevel(ref.Scans(lvl))
		if want[lvl] == "" {
			t.Fatalf("reference produced no scans at %v", lvl)
		}
	}

	for _, shards := range []int{1, 2, 8} {
		sd := NewShardedDetector(cfg, shards)
		// Mixed feeding: odd batch sizes plus the staged Process path,
		// with periodic Advance, mirroring the reference run.
		for j := 0; j < len(recs); {
			if j%3 == 0 {
				end := min(j+257, len(recs))
				if err := sd.ProcessBatch(recs[j:end]); err != nil {
					t.Fatal(err)
				}
				j = end
			} else {
				if err := sd.Process(recs[j]); err != nil {
					t.Fatal(err)
				}
				j++
			}
			if j%10_000 == 0 && j > 0 {
				if err := sd.Advance(recs[j-1].Time); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := sd.Finish(); err != nil {
			t.Fatal(err)
		}
		for _, lvl := range cfg.Levels {
			got := renderLevel(sd.Scans(lvl))
			if got != want[lvl] {
				t.Errorf("shards=%d level %v: output differs from unsharded\n got %d bytes, want %d bytes",
					shards, lvl, len(got), len(want[lvl]))
			}
		}
		for _, lvl := range cfg.Levels {
			if sd.Dropped(lvl) != ref.Dropped(lvl) {
				t.Errorf("shards=%d dropped at %v: %d != %d", shards, lvl, sd.Dropped(lvl), ref.Dropped(lvl))
			}
		}
	}
}

// TestShardedOutOfOrderError verifies per-shard time-order violations
// surface from Finish.
func TestShardedOutOfOrderError(t *testing.T) {
	sd := NewShardedDetector(parityConfig(), 4)
	src := netaddr6.MustAddr("2001:db8::1")
	dst := netaddr6.MustAddr("2001:db8:f::1")
	t0 := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := []firewall.Record{
		{Time: t0.Add(time.Hour), Src: src, Dst: dst, Proto: layers.ProtoTCP, DstPort: 22, Length: 60},
		{Time: t0, Src: src, Dst: dst, Proto: layers.ProtoTCP, DstPort: 22, Length: 60},
	}
	if err := sd.ProcessBatch(recs); err != nil {
		t.Fatalf("ProcessBatch should defer errors, got %v", err)
	}
	if err := sd.Finish(); err == nil {
		t.Fatal("expected out-of-order error from Finish")
	}
}

// TestShardedFinishAfterWorkerErrorReleasesWorkers verifies the failed
// path still shuts the shards down: a worker error surfaced at Finish
// must not leave the worker goroutines parked on their channels, and
// repeated Finish/Close calls keep re-reporting the error instead of
// hanging or panicking.
func TestShardedFinishAfterWorkerErrorReleasesWorkers(t *testing.T) {
	src := netaddr6.MustAddr("2001:db8::1")
	dst := netaddr6.MustAddr("2001:db8:f::1")
	t0 := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := []firewall.Record{
		{Time: t0.Add(time.Hour), Src: src, Dst: dst, Proto: layers.ProtoTCP, DstPort: 22, Length: 60},
		{Time: t0, Src: src, Dst: dst, Proto: layers.ProtoTCP, DstPort: 22, Length: 60},
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		sd := NewShardedDetector(parityConfig(), 4)
		if err := sd.ProcessBatch(recs); err != nil {
			t.Fatalf("ProcessBatch should defer errors, got %v", err)
		}
		// Wait until the worker has recorded the error (an empty
		// dispatch surfaces it), so Finish deterministically takes the
		// already-failed path rather than discovering the error at
		// wg.Wait.
		for j := 0; sd.ProcessBatch(nil) == nil; j++ {
			if j > 10_000 {
				t.Fatal("worker never surfaced the processing error")
			}
			time.Sleep(100 * time.Microsecond)
		}
		if err := sd.Finish(); err == nil {
			t.Fatal("expected out-of-order error from Finish")
		}
		if err := sd.Finish(); err == nil {
			t.Fatal("repeat Finish must re-report the error")
		}
	}
	// Finish joins its workers via wg.Wait, so no settling loop is
	// needed; allow a little slack for unrelated runtime goroutines.
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Fatalf("goroutines grew %d → %d: failed Finish leaks shard workers", before, after)
	}
}

// TestShardedSingleShardMatchesPlain sanity-checks the n<1 clamp.
func TestShardedSingleShardMatchesPlain(t *testing.T) {
	sd := NewShardedDetector(parityConfig(), 0)
	if sd.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", sd.NumShards())
	}
	if err := sd.Finish(); err != nil {
		t.Fatal(err)
	}
	if len(sd.Scans(netaddr6.Agg64)) != 0 {
		t.Fatal("empty stream produced scans")
	}
}
