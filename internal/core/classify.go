package core

import "v6scan/internal/firewall"

// PortClass buckets scans by how many ports they target, following
// Figure 4 / Figure 8 of the paper.
type PortClass int

// Port classes of Figures 4 and 8.
const (
	SinglePort   PortClass = iota // one port
	Ports2to10                    // 2–10 ports
	Ports10to100                  // 10–100 ports
	PortsOver100                  // >100 ports
)

// String returns the figure axis label.
func (c PortClass) String() string {
	switch c {
	case SinglePort:
		return "single port"
	case Ports2to10:
		return "2-10 ports"
	case Ports10to100:
		return "10-100 ports"
	case PortsOver100:
		return ">100 ports"
	default:
		return "unknown"
	}
}

// PortClasses lists the classes in display order.
func PortClasses() []PortClass {
	return []PortClass{SinglePort, Ports2to10, Ports10to100, PortsOver100}
}

// ClassifyPorts implements the f-rule of Appendix A.3: with f the
// fraction of the scan's packets hitting its most common port, the
// scan is single-port if f > 0.5, 2–10 ports if f > 0.09, 10–100 ports
// if f > 0.009, and >100 ports otherwise. The rule avoids
// misclassifying a scan as multi-port when only a tiny packet fraction
// strays onto other ports.
func ClassifyPorts(ports map[firewall.Service]uint64) PortClass {
	var total, top uint64
	for _, n := range ports {
		total += n
		if n > top {
			top = n
		}
	}
	if total == 0 {
		return SinglePort
	}
	f := float64(top) / float64(total)
	switch {
	case f > 0.5:
		return SinglePort
	case f > 0.09:
		return Ports2to10
	case f > 0.009:
		return Ports10to100
	default:
		return PortsOver100
	}
}

// Class returns the scan's port class under the f-rule.
func (s *Scan) Class() PortClass { return ClassifyPorts(s.Ports) }
