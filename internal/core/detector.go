// Package core implements the paper's scan-detection methodology:
//
//   - the large-scale scan definition of Section 2.2 — a source
//     targeting at least 100 distinct destination IPv6 addresses with a
//     maximum packet inter-arrival time of 3,600 seconds;
//   - multi-level source aggregation (/128, /64, /48, and arbitrary
//     prefixes such as the /32 case study), applied *before* the scan
//     definition, which the paper shows changes results dramatically;
//   - the ports-per-scan classifier of Appendix A.3 (the f-rule);
//   - the MAWI detector of Section 4, an extended Fukuda–Heidemann
//     definition adding a destination threshold and a packet-length
//     entropy criterion (mawi.go).
//
// The detector is a single-pass streaming algorithm: records arrive in
// time order, per-source sessions close when the timeout elapses, and
// closed sessions that meet the destination threshold are emitted as
// scans. Memory is proportional to concurrently active sources, which
// is what an inline IDS deployment would consume.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/entropy"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// Config parameterizes scan detection.
type Config struct {
	// MinDsts is the minimum number of distinct destination addresses
	// for a session to qualify as a scan (paper: 100; sensitivity
	// analysis also uses 50; related work used 25 and 5).
	MinDsts int
	// Timeout is the maximum packet inter-arrival time within one scan
	// session (paper: 3600 s; sensitivity: 1800 s, 900 s).
	Timeout time.Duration
	// Levels are the source-aggregation levels to track simultaneously.
	Levels []netaddr6.AggLevel
	// TrackDsts retains each scan's distinct destination addresses,
	// needed for the DNS-provenance and targeting analyses. Costs
	// memory proportional to distinct (scan, destination) pairs.
	TrackDsts bool
	// WeekEpoch anchors per-scan weekly packet attribution (Figures 2
	// and 3). Zero disables weekly tracking.
	WeekEpoch time.Time
}

// DefaultConfig returns the paper's parameters at the three tabulated
// aggregation levels.
func DefaultConfig() Config {
	return Config{
		MinDsts: 100,
		Timeout: 3600 * time.Second,
		Levels:  netaddr6.Levels(),
	}
}

// Scan is one detected scan event: a maximal session of packets from
// one aggregated source with inter-arrival gaps below the timeout and
// at least MinDsts distinct destinations.
type Scan struct {
	Source netip.Prefix      // aggregated source prefix
	Level  netaddr6.AggLevel // aggregation level the scan was detected at
	Start  time.Time         // first packet
	End    time.Time         // last packet

	Packets uint64
	// Dsts is the number of distinct destination addresses.
	Dsts int
	// DstAddrs holds the distinct destinations when Config.TrackDsts
	// is set (order unspecified).
	DstAddrs []netip.Addr
	// SrcAddrs is the number of distinct /128 source addresses the
	// aggregate emitted from during the session.
	SrcAddrs int
	// Ports counts packets per targeted service.
	Ports map[firewall.Service]uint64
	// WeekPackets counts packets per week index relative to
	// Config.WeekEpoch; nil when weekly tracking is disabled.
	WeekPackets map[int]uint64
	// LenEntropy is the normalized packet-length entropy of the
	// session (scan traffic is near 0).
	LenEntropy float64
}

// Duration returns the scan's wall-clock span.
func (s *Scan) Duration() time.Duration { return s.End.Sub(s.Start) }

// NumPorts returns the number of distinct services targeted.
func (s *Scan) NumPorts() int { return len(s.Ports) }

// session is the in-flight state for one aggregated source. The
// address sets are keyed by pointer-free U128 values rather than
// netip.Addr: the detector's working set is dominated by these maps,
// and value keys keep the garbage collector from tracing millions of
// interned-zone pointers on every cycle.
//
// Sessions additionally hold their first destination, source, service
// and week inline and materialize the maps only on the second distinct
// value: at fine aggregation levels the overwhelming majority of
// sessions are short-lived background sources that close below the
// threshold, and the fast path spares three map allocations per
// session.
type session struct {
	start, last time.Time
	packets     uint64

	firstDst, firstSrc netaddr6.U128
	firstSvc           firewall.Service
	svcN               uint64
	firstWeek          int32
	weekN              uint64

	dsts       map[netaddr6.U128]struct{}
	srcs       map[netaddr6.U128]struct{}
	ports      map[firewall.Service]uint64
	weeks      map[int]uint64
	lenCounter entropy.Counter
}

func (s *session) addDst(d netaddr6.U128) {
	if s.dsts == nil {
		if d == s.firstDst {
			return
		}
		s.dsts = map[netaddr6.U128]struct{}{s.firstDst: {}, d: {}}
		return
	}
	s.dsts[d] = struct{}{}
}

func (s *session) addSrc(a netaddr6.U128) {
	if s.srcs == nil {
		if a == s.firstSrc {
			return
		}
		s.srcs = map[netaddr6.U128]struct{}{s.firstSrc: {}, a: {}}
		return
	}
	s.srcs[a] = struct{}{}
}

func (s *session) addSvc(svc firewall.Service) {
	if s.ports == nil {
		if svc == s.firstSvc {
			s.svcN++
			return
		}
		s.ports = map[firewall.Service]uint64{s.firstSvc: s.svcN}
	}
	s.ports[svc]++
}

func (s *session) addWeek(w int) {
	if s.weeks == nil {
		if int32(w) == s.firstWeek {
			s.weekN++
			return
		}
		s.weeks = map[int]uint64{int(s.firstWeek): s.weekN}
	}
	s.weeks[w]++
}

func (s *session) numDsts() int {
	if s.dsts == nil {
		return 1
	}
	return len(s.dsts)
}

func (s *session) numSrcs() int {
	if s.srcs == nil {
		return 1
	}
	return len(s.srcs)
}

// levelState tracks all sessions at one aggregation level, keyed by
// the masked 128-bit source (the prefix length is the level itself).
type levelState struct {
	level    netaddr6.AggLevel
	sessions map[netaddr6.U128]*session
	scans    []Scan
	// dropped counts sessions that closed below the destination
	// threshold (useful for diagnostics and the Figure 1 discussion).
	dropped uint64
}

// Detector runs the scan definition at several aggregation levels in a
// single pass over a time-ordered record stream.
type Detector struct {
	cfg    Config
	levels []*levelState
	// lastTime guards the time-ordering contract.
	lastTime time.Time
	strict   bool
}

// NewDetector returns a detector for the given configuration.
func NewDetector(cfg Config) *Detector {
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Hour
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = netaddr6.Levels()
	}
	d := &Detector{cfg: cfg, strict: true}
	for _, l := range cfg.Levels {
		d.levels = append(d.levels, &levelState{
			level:    l,
			sessions: make(map[netaddr6.U128]*session),
		})
	}
	return d
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Process ingests one record. Records must be in non-decreasing time
// order; out-of-order input returns an error (small reorderings should
// be sorted by the caller — the simulator sorts per day).
func (d *Detector) Process(r firewall.Record) error {
	if r.Time.Before(d.lastTime) {
		return fmt.Errorf("core: record at %v before previous %v; detector requires time order", r.Time, d.lastTime)
	}
	d.lastTime = r.Time
	if !netaddr6.IsIPv6(r.Src) {
		panic("core: Process on non-IPv6 source " + r.Src.String())
	}
	src, dst := netaddr6.ToU128(r.Src), netaddr6.ToU128(r.Dst)
	svc := r.Service()
	weekly := !d.cfg.WeekEpoch.IsZero()
	var week int
	if weekly {
		week = weekIndex(d.cfg.WeekEpoch, r.Time)
	}
	for _, ls := range d.levels {
		key := src.Mask(int(ls.level))
		s := ls.sessions[key]
		if s != nil && r.Time.Sub(s.last) > d.cfg.Timeout {
			d.closeSession(ls, key, s)
			s = nil
		}
		if s == nil {
			s = &session{
				start: r.Time, last: r.Time, packets: 1,
				firstDst: dst, firstSrc: src, firstSvc: svc, svcN: 1,
			}
			if weekly {
				s.firstWeek, s.weekN = int32(week), 1
			}
			s.lenCounter.Observe(uint64(r.Length))
			ls.sessions[key] = s
			continue
		}
		s.last = r.Time
		s.packets++
		s.addDst(dst)
		s.addSrc(src)
		s.addSvc(svc)
		s.lenCounter.Observe(uint64(r.Length))
		if weekly {
			s.addWeek(week)
		}
	}
	return nil
}

// Advance closes every session whose timeout has elapsed as of now.
// Callers streaming bounded-memory deployments call this periodically;
// batch analyses can skip it and rely on Finish.
func (d *Detector) Advance(now time.Time) {
	for _, ls := range d.levels {
		for key, s := range ls.sessions {
			if now.Sub(s.last) > d.cfg.Timeout {
				d.closeSession(ls, key, s)
			}
		}
	}
}

// Finish closes all open sessions and returns the detector to a clean
// state. Call once after the final record.
func (d *Detector) Finish() {
	for _, ls := range d.levels {
		for key, s := range ls.sessions {
			d.closeSession(ls, key, s)
		}
	}
}

func (d *Detector) closeSession(ls *levelState, key netaddr6.U128, s *session) {
	delete(ls.sessions, key)
	if s.numDsts() < d.cfg.MinDsts {
		ls.dropped++
		return
	}
	// Qualifying sessions are the rare case; materialize any inline
	// fast-path state into the maps the Scan exposes.
	if s.ports == nil {
		s.ports = map[firewall.Service]uint64{s.firstSvc: s.svcN}
	}
	if s.weeks == nil && s.weekN > 0 {
		s.weeks = map[int]uint64{int(s.firstWeek): s.weekN}
	}
	scan := Scan{
		Source:      netip.PrefixFrom(key.ToAddr(), int(ls.level)),
		Level:       ls.level,
		Start:       s.start,
		End:         s.last,
		Packets:     s.packets,
		Dsts:        s.numDsts(),
		SrcAddrs:    s.numSrcs(),
		Ports:       s.ports,
		WeekPackets: s.weeks,
		LenEntropy:  s.lenCounter.Normalized(),
	}
	if d.cfg.TrackDsts {
		scan.DstAddrs = make([]netip.Addr, 0, s.numDsts())
		if s.dsts == nil {
			scan.DstAddrs = append(scan.DstAddrs, s.firstDst.ToAddr())
		} else {
			for a := range s.dsts {
				scan.DstAddrs = append(scan.DstAddrs, a.ToAddr())
			}
		}
		sort.Slice(scan.DstAddrs, func(i, j int) bool {
			return scan.DstAddrs[i].Compare(scan.DstAddrs[j]) < 0
		})
	}
	ls.scans = append(ls.scans, scan)
}

// Scans returns the detected scans at one aggregation level, ordered by
// start time. Valid after Finish.
func (d *Detector) Scans(level netaddr6.AggLevel) []Scan {
	for _, ls := range d.levels {
		if ls.level == level {
			out := ls.scans
			// Tie-break on source so ordering is deterministic even when
			// sessions close in map-iteration order.
			sort.Slice(out, func(i, j int) bool {
				if !out[i].Start.Equal(out[j].Start) {
					return out[i].Start.Before(out[j].Start)
				}
				return out[i].Source.Addr().Compare(out[j].Source.Addr()) < 0
			})
			return out
		}
	}
	return nil
}

// Dropped returns the number of sessions at the level that closed
// below the destination threshold.
func (d *Detector) Dropped(level netaddr6.AggLevel) uint64 {
	for _, ls := range d.levels {
		if ls.level == level {
			return ls.dropped
		}
	}
	return 0
}

// OpenSessions returns the number of in-flight sessions at the level —
// the detector's working-set size, the quantity the Discussion section
// worries about for IDS deployments.
func (d *Detector) OpenSessions(level netaddr6.AggLevel) int {
	for _, ls := range d.levels {
		if ls.level == level {
			return len(ls.sessions)
		}
	}
	return 0
}

// Totals summarizes one aggregation level the way Table 1 does.
type Totals struct {
	Level   netaddr6.AggLevel
	Scans   int
	Packets uint64
	Sources int // distinct scan source prefixes
	ASes    int // filled by analysis when an AS database is available
}

// TotalsFor computes the Table-1 row for a level (AS count left zero;
// the analysis package joins against asdb).
func (d *Detector) TotalsFor(level netaddr6.AggLevel) Totals {
	t := Totals{Level: level}
	srcs := make(map[netip.Prefix]struct{})
	for _, s := range d.Scans(level) {
		t.Scans++
		t.Packets += s.Packets
		srcs[s.Source] = struct{}{}
	}
	t.Sources = len(srcs)
	return t
}

// weekIndex returns whole weeks since epoch (negative before epoch).
func weekIndex(epoch, t time.Time) int {
	return int(t.Sub(epoch) / (7 * 24 * time.Hour))
}

// WeekIndex exposes weekly bucketing for the analysis package so all
// figures share the same week boundaries.
func WeekIndex(epoch, t time.Time) int { return weekIndex(epoch, t) }
