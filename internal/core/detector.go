// Package core implements the paper's scan-detection methodology:
//
//   - the large-scale scan definition of Section 2.2 — a source
//     targeting at least 100 distinct destination IPv6 addresses with a
//     maximum packet inter-arrival time of 3,600 seconds;
//   - multi-level source aggregation (/128, /64, /48, and arbitrary
//     prefixes such as the /32 case study), applied *before* the scan
//     definition, which the paper shows changes results dramatically;
//   - the ports-per-scan classifier of Appendix A.3 (the f-rule);
//   - the MAWI detector of Section 4, an extended Fukuda–Heidemann
//     definition adding a destination threshold and a packet-length
//     entropy criterion (mawi.go).
//
// The detector is a single-pass streaming algorithm: records arrive in
// time order, per-source sessions close when the timeout elapses, and
// closed sessions that meet the destination threshold are emitted as
// scans. Memory is proportional to concurrently active sources, which
// is what an inline IDS deployment would consume.
//
// # State index and small-set cutoffs
//
// Session lookup state lives in a u128idx.Index (open-addressed, no
// per-entry pointers) mapping masked sources to u32 handles into paged
// session arrays, and per-session destination/source sets are
// u128idx.Set values with an inline sorted-array fast path (cutoff
// u128idx.SmallSetSpill = 16) before spilling to an index. Sessions
// additionally keep their very first destination/source/service/week
// inline and materialize set or map state only on the second distinct
// value, because at fine aggregation levels most sessions close after
// a handful of packets.
//
// inlineMapHint below sizes the remaining maps (ports by service,
// packets by week) at materialization. Re-tuned against the u128idx
// port: these maps are keyed by small scalar types where the builtin
// map is already cheap, and a session that outgrows the single-value
// fast path usually keeps accumulating, so a 16-entry hint (enough
// buckets for ~26 entries growth-free) remains the measured sweet spot
// — 8 costs an extra growth step on scan-heavy sessions, 32 doubles
// the footprint of the (common) two-service sessions for no time win.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/entropy"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/u128idx"
)

// Config parameterizes scan detection.
type Config struct {
	// MinDsts is the minimum number of distinct destination addresses
	// for a session to qualify as a scan (paper: 100; sensitivity
	// analysis also uses 50; related work used 25 and 5).
	MinDsts int
	// Timeout is the maximum packet inter-arrival time within one scan
	// session (paper: 3600 s; sensitivity: 1800 s, 900 s).
	Timeout time.Duration
	// Levels are the source-aggregation levels to track simultaneously.
	Levels []netaddr6.AggLevel
	// TrackDsts retains each scan's distinct destination addresses,
	// needed for the DNS-provenance and targeting analyses. Costs
	// memory proportional to distinct (scan, destination) pairs.
	TrackDsts bool
	// WeekEpoch anchors per-scan weekly packet attribution (Figures 2
	// and 3). Zero disables weekly tracking.
	WeekEpoch time.Time
}

// DefaultConfig returns the paper's parameters at the three tabulated
// aggregation levels.
func DefaultConfig() Config {
	return Config{
		MinDsts: 100,
		Timeout: 3600 * time.Second,
		Levels:  netaddr6.Levels(),
	}
}

// Scan is one detected scan event: a maximal session of packets from
// one aggregated source with inter-arrival gaps below the timeout and
// at least MinDsts distinct destinations.
type Scan struct {
	Source netip.Prefix      // aggregated source prefix
	Level  netaddr6.AggLevel // aggregation level the scan was detected at
	Start  time.Time         // first packet
	End    time.Time         // last packet

	Packets uint64
	// Dsts is the number of distinct destination addresses.
	Dsts int
	// DstAddrs holds the distinct destinations when Config.TrackDsts
	// is set (order unspecified).
	DstAddrs []netip.Addr
	// SrcAddrs is the number of distinct /128 source addresses the
	// aggregate emitted from during the session.
	SrcAddrs int
	// Ports counts packets per targeted service.
	Ports map[firewall.Service]uint64
	// WeekPackets counts packets per week index relative to
	// Config.WeekEpoch; nil when weekly tracking is disabled.
	WeekPackets map[int]uint64
	// LenEntropy is the normalized packet-length entropy of the
	// session (scan traffic is near 0).
	LenEntropy float64
}

// Duration returns the scan's wall-clock span.
func (s *Scan) Duration() time.Duration { return s.End.Sub(s.Start) }

// NumPorts returns the number of distinct services targeted.
func (s *Scan) NumPorts() int { return len(s.Ports) }

// session is the in-flight state for one aggregated source. The
// address sets are u128idx.Set values — pointer-free U128 keys with an
// inline sorted-array fast path — rather than netip.Addr maps: the
// detector's working set is dominated by these sets, and flat value
// storage keeps the garbage collector from tracing millions of
// interned-zone pointers on every cycle.
//
// Sessions additionally hold their first destination, source, service
// and week inline and materialize the sets/maps only on the second
// distinct value: at fine aggregation levels the overwhelming majority
// of sessions are short-lived background sources that close below the
// threshold, and the fast path spares the set/map work entirely.
//
// Sessions themselves live in paged per-level arrays addressed by u32
// handles and are recycled through a free list when they close
// (levelState.alloc/recycle below): the detector's steady-state ingest
// otherwise allocates one session per source per level, which
// dominates the allocation rate on million-record days. A recycled
// session keeps its emptied sets and maps, so the "materialized" state
// is Len() > 0, not non-nil.
type session struct {
	start, last time.Time
	packets     uint64

	firstDst, firstSrc netaddr6.U128
	firstSvc           firewall.Service
	svcN               uint64
	firstWeek          int32
	weekN              uint64

	dsts       u128idx.Set
	srcs       u128idx.Set
	ports      map[firewall.Service]uint64
	weeks      map[int]uint64
	lenCounter entropy.Counter
}

// inlineMapHint pre-sizes the session ports/weeks maps at
// materialization (the U128 address sets use u128idx.Set with its own
// SmallSetSpill cutoff; see the package doc). A session that outgrows
// the inline single-value fast path usually keeps accumulating, and Go
// map growth allocates on every doubling: a 16-entry hint starts at
// enough buckets to absorb ~26 entries growth-free for a few hundred
// extra bytes on the (rare) two-entry sessions.
const inlineMapHint = 16

func (s *session) addDst(d netaddr6.U128) {
	if s.dsts.Len() == 0 {
		if d == s.firstDst {
			return
		}
		s.dsts.Add(s.firstDst)
	}
	s.dsts.Add(d)
}

func (s *session) addSrc(a netaddr6.U128) {
	if s.srcs.Len() == 0 {
		if a == s.firstSrc {
			return
		}
		s.srcs.Add(s.firstSrc)
	}
	s.srcs.Add(a)
}

func (s *session) addSvc(svc firewall.Service) {
	if len(s.ports) == 0 {
		if svc == s.firstSvc {
			s.svcN++
			return
		}
		if s.ports == nil {
			s.ports = make(map[firewall.Service]uint64, inlineMapHint)
		}
		s.ports[s.firstSvc] = s.svcN
	}
	s.ports[svc]++
}

func (s *session) addWeek(w int) {
	if len(s.weeks) == 0 {
		if int32(w) == s.firstWeek {
			s.weekN++
			return
		}
		if s.weeks == nil {
			s.weeks = make(map[int]uint64, inlineMapHint)
		}
		s.weeks[int(s.firstWeek)] = s.weekN
	}
	s.weeks[w]++
}

func (s *session) numDsts() int {
	if n := s.dsts.Len(); n > 0 {
		return n
	}
	return 1
}

func (s *session) numSrcs() int {
	if n := s.srcs.Len(); n > 0 {
		return n
	}
	return 1
}

// levelState tracks all sessions at one aggregation level. The index
// maps the masked 128-bit source (the prefix length is the level
// itself) to a u32 handle into the paged session store; pages never
// move once allocated, so *session pointers stay valid across alloc.
type levelState struct {
	level netaddr6.AggLevel
	idx   u128idx.Index
	scans []Scan
	// dropped counts sessions that closed below the destination
	// threshold (useful for diagnostics and the Figure 1 discussion).
	dropped uint64
	// pages, free and next implement the handle-addressed session
	// arena: handles are page<<sessionPageShift | offset, new sessions
	// are carved in handle order and closed sessions return through
	// free with their sets/maps emptied for reuse, keeping steady-state
	// ingest free of per-session allocations.
	pages [][]session
	free  []uint32
	next  uint32
}

// sessionPageShift sets the page granularity (512 sessions/page) —
// large enough to amortize page allocation to noise, small enough that
// a mostly-idle level does not strand much memory.
const (
	sessionPageShift = 9
	sessionPageSize  = 1 << sessionPageShift
)

// session returns the session addressed by handle h.
func (ls *levelState) session(h uint32) *session {
	return &ls.pages[h>>sessionPageShift][h&(sessionPageSize-1)]
}

// alloc returns a zeroed session and its handle, from the free list or
// by carving the next page slot.
func (ls *levelState) alloc() (uint32, *session) {
	if n := len(ls.free) - 1; n >= 0 {
		h := ls.free[n]
		ls.free = ls.free[:n]
		return h, ls.session(h)
	}
	if int(ls.next) == len(ls.pages)<<sessionPageShift {
		ls.pages = append(ls.pages, make([]session, sessionPageSize))
	}
	h := ls.next
	ls.next++
	return h, ls.session(h)
}

// recycle resets a closed session and returns its handle to the free
// list. Its sets and maps are emptied and retained (transferred maps
// must be nil'd by the caller first), so reopened sessions skip
// re-materialization.
func (ls *levelState) recycle(h uint32, s *session) {
	s.dsts.Reset()
	s.srcs.Reset()
	clear(s.ports)
	clear(s.weeks)
	s.lenCounter.Reset()
	*s = session{dsts: s.dsts, srcs: s.srcs, ports: s.ports, weeks: s.weeks, lenCounter: s.lenCounter}
	ls.free = append(ls.free, h)
}

// Detector runs the scan definition at several aggregation levels in a
// single pass over a time-ordered record stream.
type Detector struct {
	cfg    Config
	levels []*levelState
	// lastTime guards the time-ordering contract.
	lastTime time.Time
	strict   bool

	// Per-batch scratch: ProcessBatch converts each record's
	// destination/service/week once up front, then replays them across
	// all levels, so the per-level loop touches only flat arrays.
	scrDst  []netaddr6.U128
	scrSvc  []firewall.Service
	scrWeek []int32
	// dstOut is the canonical-order scratch for TrackDsts emission.
	dstOut []netaddr6.U128
	// one backs the Process single-record wrapper.
	one [1]firewall.Record
}

// NewDetector returns a detector for the given configuration.
func NewDetector(cfg Config) *Detector {
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Hour
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = netaddr6.Levels()
	}
	d := &Detector{cfg: cfg, strict: true}
	for _, l := range cfg.Levels {
		d.levels = append(d.levels, &levelState{level: l})
	}
	return d
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Process ingests one record. Records must be in non-decreasing time
// order; out-of-order input returns an error (small reorderings should
// be sorted by the caller — the simulator sorts per day).
func (d *Detector) Process(r firewall.Record) error {
	d.one[0] = r
	return d.ProcessBatch(d.one[:])
}

// ProcessBatch ingests records in order, with the same time-ordering
// contract as Process: on an out-of-order record it processes the
// in-order prefix and returns the same error Process would.
//
// Batches are where the detector earns its keep: adjacent records from
// the same source (the shape dispatch staging and real scan traffic
// produce) are grouped into runs, so N records to one source cost one
// index probe per aggregation level instead of N map lookups.
func (d *Detector) ProcessBatch(recs []firewall.Record) error {
	for i := 0; i < len(recs); {
		r0 := recs[i]
		if r0.Time.Before(d.lastTime) {
			return fmt.Errorf("core: record at %v before previous %v; detector requires time order", r0.Time, d.lastTime)
		}
		if !netaddr6.IsIPv6(r0.Src) {
			d.lastTime = r0.Time
			panic("core: Process on non-IPv6 source " + r0.Src.String())
		}
		// A run is a maximal span of same-source records in time order;
		// a time violation breaks the run so the prefix is processed
		// before the next iteration reports the error.
		j := i + 1
		for j < len(recs) && recs[j].Src == r0.Src && !recs[j].Time.Before(recs[j-1].Time) {
			j++
		}
		d.ingestRun(recs[i:j])
		d.lastTime = recs[j-1].Time
		i = j
	}
	return nil
}

// ingestRun applies one same-source run of in-order records: a single
// index probe per level resolves (or creates) the session, and each
// record then updates it through the cached pointer. Mid-run timeout
// gaps close the session and splice a fresh one into the same index
// slot — no index mutation happens inside a run, so the value pointer
// from the initial probe stays valid throughout.
func (d *Detector) ingestRun(rs []firewall.Record) {
	weekly := !d.cfg.WeekEpoch.IsZero()
	d.scrDst = d.scrDst[:0]
	d.scrSvc = d.scrSvc[:0]
	if weekly {
		d.scrWeek = d.scrWeek[:0]
	}
	for _, r := range rs {
		d.scrDst = append(d.scrDst, netaddr6.ToU128(r.Dst))
		d.scrSvc = append(d.scrSvc, r.Service())
		if weekly {
			d.scrWeek = append(d.scrWeek, int32(weekIndex(d.cfg.WeekEpoch, r.Time)))
		}
	}
	src := netaddr6.ToU128(rs[0].Src)
	for _, ls := range d.levels {
		key := src.Mask(int(ls.level))
		vp, existed := ls.idx.RefH(u128idx.Hash(key), key)
		var s *session
		if existed {
			s = ls.session(*vp)
		}
		for k, r := range rs {
			if s != nil && r.Time.Sub(s.last) > d.cfg.Timeout {
				d.emitOrDrop(ls, key, *vp, s)
				s = nil
			}
			if s == nil {
				h, ns := ls.alloc()
				*vp = h
				s = ns
				s.start, s.last, s.packets = r.Time, r.Time, 1
				s.firstDst, s.firstSrc = d.scrDst[k], src
				s.firstSvc, s.svcN = d.scrSvc[k], 1
				if weekly {
					s.firstWeek, s.weekN = d.scrWeek[k], 1
				}
				s.lenCounter.Observe(uint64(r.Length))
				continue
			}
			s.last = r.Time
			s.packets++
			s.addDst(d.scrDst[k])
			s.addSrc(src)
			s.addSvc(d.scrSvc[k])
			s.lenCounter.Observe(uint64(r.Length))
			if weekly {
				s.addWeek(int(d.scrWeek[k]))
			}
		}
	}
}

// Advance closes every session whose timeout has elapsed as of now.
// Callers streaming bounded-memory deployments call this periodically;
// batch analyses can skip it and rely on Finish.
func (d *Detector) Advance(now time.Time) {
	for _, ls := range d.levels {
		ls.idx.Range(func(key netaddr6.U128, h uint32) bool {
			s := ls.session(h)
			if now.Sub(s.last) > d.cfg.Timeout {
				d.emitOrDrop(ls, key, h, s)
				ls.idx.Delete(key)
			}
			return true
		})
	}
}

// Finish closes all open sessions and returns the detector to a clean
// state. Call once after the final record.
func (d *Detector) Finish() {
	for _, ls := range d.levels {
		ls.idx.Range(func(key netaddr6.U128, h uint32) bool {
			d.emitOrDrop(ls, key, h, ls.session(h))
			ls.idx.Delete(key)
			return true
		})
	}
}

// emitOrDrop evaluates a closing session against the scan definition,
// emits it as a Scan when it qualifies, and recycles it. The caller
// owns the index entry: Process/ingestRun overwrite the slot in place
// when a timed-out session is replaced, Advance/Finish delete it.
func (d *Detector) emitOrDrop(ls *levelState, key netaddr6.U128, h uint32, s *session) {
	if s.numDsts() < d.cfg.MinDsts {
		ls.dropped++
		ls.recycle(h, s)
		return
	}
	// Qualifying sessions are the rare case. The Scan takes ownership
	// of the materialized ports/weeks maps (nil'd here so recycle does
	// not hand them to the next session); inline fast-path state gets
	// fresh maps.
	ports := s.ports
	if len(ports) == 0 {
		ports = map[firewall.Service]uint64{s.firstSvc: s.svcN}
	} else {
		s.ports = nil
	}
	weeks := s.weeks
	if len(weeks) == 0 {
		weeks = nil
		if s.weekN > 0 {
			weeks = map[int]uint64{int(s.firstWeek): s.weekN}
		}
	} else {
		s.weeks = nil
	}
	scan := Scan{
		Source:      netip.PrefixFrom(key.ToAddr(), int(ls.level)),
		Level:       ls.level,
		Start:       s.start,
		End:         s.last,
		Packets:     s.packets,
		Dsts:        s.numDsts(),
		SrcAddrs:    s.numSrcs(),
		Ports:       ports,
		WeekPackets: weeks,
		LenEntropy:  s.lenCounter.Normalized(),
	}
	if d.cfg.TrackDsts {
		scan.DstAddrs = make([]netip.Addr, 0, s.numDsts())
		if s.dsts.Len() == 0 {
			scan.DstAddrs = append(scan.DstAddrs, s.firstDst.ToAddr())
		} else {
			// Set iteration is canonical (ascending U128), which for
			// 16-byte addresses is exactly netip.Addr.Compare order, so
			// the emitted DstAddrs stay byte-identical to the sorted
			// map-era output without a re-sort.
			d.dstOut = s.dsts.AppendSorted(d.dstOut[:0])
			for _, a := range d.dstOut {
				scan.DstAddrs = append(scan.DstAddrs, a.ToAddr())
			}
		}
	}
	ls.scans = append(ls.scans, scan)
	ls.recycle(h, s)
}

// Scans returns the detected scans at one aggregation level, ordered by
// start time. Valid after Finish.
func (d *Detector) Scans(level netaddr6.AggLevel) []Scan {
	for _, ls := range d.levels {
		if ls.level == level {
			out := ls.scans
			// Tie-break on source so ordering is deterministic even when
			// sessions close in index-iteration order.
			sort.Slice(out, func(i, j int) bool {
				if !out[i].Start.Equal(out[j].Start) {
					return out[i].Start.Before(out[j].Start)
				}
				return out[i].Source.Addr().Compare(out[j].Source.Addr()) < 0
			})
			return out
		}
	}
	return nil
}

// Dropped returns the number of sessions at the level that closed
// below the destination threshold.
func (d *Detector) Dropped(level netaddr6.AggLevel) uint64 {
	for _, ls := range d.levels {
		if ls.level == level {
			return ls.dropped
		}
	}
	return 0
}

// OpenSessions returns the number of in-flight sessions at the level —
// the detector's working-set size, the quantity the Discussion section
// worries about for IDS deployments.
func (d *Detector) OpenSessions(level netaddr6.AggLevel) int {
	for _, ls := range d.levels {
		if ls.level == level {
			return ls.idx.Len()
		}
	}
	return 0
}

// Totals summarizes one aggregation level the way Table 1 does.
type Totals struct {
	Level   netaddr6.AggLevel
	Scans   int
	Packets uint64
	Sources int // distinct scan source prefixes
	ASes    int // filled by analysis when an AS database is available
}

// TotalsFor computes the Table-1 row for a level (AS count left zero;
// the analysis package joins against asdb).
func (d *Detector) TotalsFor(level netaddr6.AggLevel) Totals {
	t := Totals{Level: level}
	srcs := make(map[netip.Prefix]struct{})
	for _, s := range d.Scans(level) {
		t.Scans++
		t.Packets += s.Packets
		srcs[s.Source] = struct{}{}
	}
	t.Sources = len(srcs)
	return t
}

// weekIndex returns whole weeks since epoch (negative before epoch).
func weekIndex(epoch, t time.Time) int {
	return int(t.Sub(epoch) / (7 * 24 * time.Hour))
}

// WeekIndex exposes weekly bucketing for the analysis package so all
// figures share the same week boundaries.
func WeekIndex(epoch, t time.Time) int { return weekIndex(epoch, t) }
