// Package core implements the paper's scan-detection methodology:
//
//   - the large-scale scan definition of Section 2.2 — a source
//     targeting at least 100 distinct destination IPv6 addresses with a
//     maximum packet inter-arrival time of 3,600 seconds;
//   - multi-level source aggregation (/128, /64, /48, and arbitrary
//     prefixes such as the /32 case study), applied *before* the scan
//     definition, which the paper shows changes results dramatically;
//   - the ports-per-scan classifier of Appendix A.3 (the f-rule);
//   - the MAWI detector of Section 4, an extended Fukuda–Heidemann
//     definition adding a destination threshold and a packet-length
//     entropy criterion (mawi.go).
//
// The detector is a single-pass streaming algorithm: records arrive in
// time order, per-source sessions close when the timeout elapses, and
// closed sessions that meet the destination threshold are emitted as
// scans. Memory is proportional to concurrently active sources, which
// is what an inline IDS deployment would consume.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/entropy"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// Config parameterizes scan detection.
type Config struct {
	// MinDsts is the minimum number of distinct destination addresses
	// for a session to qualify as a scan (paper: 100; sensitivity
	// analysis also uses 50; related work used 25 and 5).
	MinDsts int
	// Timeout is the maximum packet inter-arrival time within one scan
	// session (paper: 3600 s; sensitivity: 1800 s, 900 s).
	Timeout time.Duration
	// Levels are the source-aggregation levels to track simultaneously.
	Levels []netaddr6.AggLevel
	// TrackDsts retains each scan's distinct destination addresses,
	// needed for the DNS-provenance and targeting analyses. Costs
	// memory proportional to distinct (scan, destination) pairs.
	TrackDsts bool
	// WeekEpoch anchors per-scan weekly packet attribution (Figures 2
	// and 3). Zero disables weekly tracking.
	WeekEpoch time.Time
}

// DefaultConfig returns the paper's parameters at the three tabulated
// aggregation levels.
func DefaultConfig() Config {
	return Config{
		MinDsts: 100,
		Timeout: 3600 * time.Second,
		Levels:  netaddr6.Levels(),
	}
}

// Scan is one detected scan event: a maximal session of packets from
// one aggregated source with inter-arrival gaps below the timeout and
// at least MinDsts distinct destinations.
type Scan struct {
	Source netip.Prefix      // aggregated source prefix
	Level  netaddr6.AggLevel // aggregation level the scan was detected at
	Start  time.Time         // first packet
	End    time.Time         // last packet

	Packets uint64
	// Dsts is the number of distinct destination addresses.
	Dsts int
	// DstAddrs holds the distinct destinations when Config.TrackDsts
	// is set (order unspecified).
	DstAddrs []netip.Addr
	// SrcAddrs is the number of distinct /128 source addresses the
	// aggregate emitted from during the session.
	SrcAddrs int
	// Ports counts packets per targeted service.
	Ports map[firewall.Service]uint64
	// WeekPackets counts packets per week index relative to
	// Config.WeekEpoch; nil when weekly tracking is disabled.
	WeekPackets map[int]uint64
	// LenEntropy is the normalized packet-length entropy of the
	// session (scan traffic is near 0).
	LenEntropy float64
}

// Duration returns the scan's wall-clock span.
func (s *Scan) Duration() time.Duration { return s.End.Sub(s.Start) }

// NumPorts returns the number of distinct services targeted.
func (s *Scan) NumPorts() int { return len(s.Ports) }

// session is the in-flight state for one aggregated source. The
// address sets are keyed by pointer-free U128 values rather than
// netip.Addr: the detector's working set is dominated by these maps,
// and value keys keep the garbage collector from tracing millions of
// interned-zone pointers on every cycle.
//
// Sessions additionally hold their first destination, source, service
// and week inline and materialize the maps only on the second distinct
// value: at fine aggregation levels the overwhelming majority of
// sessions are short-lived background sources that close below the
// threshold, and the fast path spares three map allocations per
// session.
//
// Sessions themselves are slab-allocated per level and recycled
// through a free list when they close (newSession/recycle below): the
// detector's steady-state ingest otherwise allocates one session per
// source per level, which dominates the allocation rate on
// million-record days. A recycled session keeps its emptied maps, so
// the "materialized" state is len(map) > 0, not map != nil.
type session struct {
	start, last time.Time
	packets     uint64

	firstDst, firstSrc netaddr6.U128
	firstSvc           firewall.Service
	svcN               uint64
	firstWeek          int32
	weekN              uint64

	dsts       map[netaddr6.U128]struct{}
	srcs       map[netaddr6.U128]struct{}
	ports      map[firewall.Service]uint64
	weeks      map[int]uint64
	lenCounter entropy.Counter
}

// inlineMapHint pre-sizes session maps at materialization. A session
// that outgrows the inline single-value fast path usually keeps
// accumulating (coarse-level aggregates see tens of distinct values
// quickly), and Go map growth allocates on every doubling: a 16-entry
// hint starts at enough buckets to absorb ~26 entries growth-free for
// a few hundred extra bytes on the (rare) two-entry sessions.
const inlineMapHint = 16

func (s *session) addDst(d netaddr6.U128) {
	if len(s.dsts) == 0 {
		if d == s.firstDst {
			return
		}
		if s.dsts == nil {
			s.dsts = make(map[netaddr6.U128]struct{}, inlineMapHint)
		}
		s.dsts[s.firstDst] = struct{}{}
	}
	s.dsts[d] = struct{}{}
}

func (s *session) addSrc(a netaddr6.U128) {
	if len(s.srcs) == 0 {
		if a == s.firstSrc {
			return
		}
		if s.srcs == nil {
			s.srcs = make(map[netaddr6.U128]struct{}, inlineMapHint)
		}
		s.srcs[s.firstSrc] = struct{}{}
	}
	s.srcs[a] = struct{}{}
}

func (s *session) addSvc(svc firewall.Service) {
	if len(s.ports) == 0 {
		if svc == s.firstSvc {
			s.svcN++
			return
		}
		if s.ports == nil {
			s.ports = make(map[firewall.Service]uint64, inlineMapHint)
		}
		s.ports[s.firstSvc] = s.svcN
	}
	s.ports[svc]++
}

func (s *session) addWeek(w int) {
	if len(s.weeks) == 0 {
		if int32(w) == s.firstWeek {
			s.weekN++
			return
		}
		if s.weeks == nil {
			s.weeks = make(map[int]uint64, inlineMapHint)
		}
		s.weeks[int(s.firstWeek)] = s.weekN
	}
	s.weeks[w]++
}

func (s *session) numDsts() int {
	if len(s.dsts) == 0 {
		return 1
	}
	return len(s.dsts)
}

func (s *session) numSrcs() int {
	if len(s.srcs) == 0 {
		return 1
	}
	return len(s.srcs)
}

// levelState tracks all sessions at one aggregation level, keyed by
// the masked 128-bit source (the prefix length is the level itself).
type levelState struct {
	level    netaddr6.AggLevel
	sessions map[netaddr6.U128]*session
	scans    []Scan
	// dropped counts sessions that closed below the destination
	// threshold (useful for diagnostics and the Figure 1 discussion).
	dropped uint64
	// slab and free implement the per-level session arena: new
	// sessions are carved from slab chunks and closed sessions return
	// through free with their maps emptied for reuse, keeping
	// steady-state ingest free of per-session allocations.
	slab []session
	free []*session
}

// sessionSlabSize is the slab chunk granularity — large enough to
// amortize chunk allocation to noise, small enough that a mostly-idle
// level does not strand much memory.
const sessionSlabSize = 512

// newSession returns a zeroed session from the free list or the slab.
func (ls *levelState) newSession() *session {
	if n := len(ls.free) - 1; n >= 0 {
		s := ls.free[n]
		ls.free = ls.free[:n]
		return s
	}
	if len(ls.slab) == 0 {
		ls.slab = make([]session, sessionSlabSize)
	}
	s := &ls.slab[0]
	ls.slab = ls.slab[1:]
	return s
}

// recycle resets a closed session and returns it to the free list. Its
// maps are emptied and retained (transferred maps must be nil'd by the
// caller first), so reopened sessions skip re-materialization.
func (ls *levelState) recycle(s *session) {
	clear(s.dsts)
	clear(s.srcs)
	clear(s.ports)
	clear(s.weeks)
	s.lenCounter.Reset()
	*s = session{dsts: s.dsts, srcs: s.srcs, ports: s.ports, weeks: s.weeks, lenCounter: s.lenCounter}
	ls.free = append(ls.free, s)
}

// Detector runs the scan definition at several aggregation levels in a
// single pass over a time-ordered record stream.
type Detector struct {
	cfg    Config
	levels []*levelState
	// lastTime guards the time-ordering contract.
	lastTime time.Time
	strict   bool
}

// NewDetector returns a detector for the given configuration.
func NewDetector(cfg Config) *Detector {
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = 100
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Hour
	}
	if len(cfg.Levels) == 0 {
		cfg.Levels = netaddr6.Levels()
	}
	d := &Detector{cfg: cfg, strict: true}
	for _, l := range cfg.Levels {
		d.levels = append(d.levels, &levelState{
			level:    l,
			sessions: make(map[netaddr6.U128]*session),
		})
	}
	return d
}

// Config returns the detector's configuration.
func (d *Detector) Config() Config { return d.cfg }

// Process ingests one record. Records must be in non-decreasing time
// order; out-of-order input returns an error (small reorderings should
// be sorted by the caller — the simulator sorts per day).
func (d *Detector) Process(r firewall.Record) error {
	if r.Time.Before(d.lastTime) {
		return fmt.Errorf("core: record at %v before previous %v; detector requires time order", r.Time, d.lastTime)
	}
	d.lastTime = r.Time
	if !netaddr6.IsIPv6(r.Src) {
		panic("core: Process on non-IPv6 source " + r.Src.String())
	}
	src, dst := netaddr6.ToU128(r.Src), netaddr6.ToU128(r.Dst)
	svc := r.Service()
	weekly := !d.cfg.WeekEpoch.IsZero()
	var week int
	if weekly {
		week = weekIndex(d.cfg.WeekEpoch, r.Time)
	}
	for _, ls := range d.levels {
		key := src.Mask(int(ls.level))
		s := ls.sessions[key]
		if s != nil && r.Time.Sub(s.last) > d.cfg.Timeout {
			d.closeSession(ls, key, s)
			s = nil
		}
		if s == nil {
			s = ls.newSession()
			s.start, s.last, s.packets = r.Time, r.Time, 1
			s.firstDst, s.firstSrc = dst, src
			s.firstSvc, s.svcN = svc, 1
			if weekly {
				s.firstWeek, s.weekN = int32(week), 1
			}
			s.lenCounter.Observe(uint64(r.Length))
			ls.sessions[key] = s
			continue
		}
		s.last = r.Time
		s.packets++
		s.addDst(dst)
		s.addSrc(src)
		s.addSvc(svc)
		s.lenCounter.Observe(uint64(r.Length))
		if weekly {
			s.addWeek(week)
		}
	}
	return nil
}

// Advance closes every session whose timeout has elapsed as of now.
// Callers streaming bounded-memory deployments call this periodically;
// batch analyses can skip it and rely on Finish.
func (d *Detector) Advance(now time.Time) {
	for _, ls := range d.levels {
		for key, s := range ls.sessions {
			if now.Sub(s.last) > d.cfg.Timeout {
				d.closeSession(ls, key, s)
			}
		}
	}
}

// Finish closes all open sessions and returns the detector to a clean
// state. Call once after the final record.
func (d *Detector) Finish() {
	for _, ls := range d.levels {
		for key, s := range ls.sessions {
			d.closeSession(ls, key, s)
		}
	}
}

func (d *Detector) closeSession(ls *levelState, key netaddr6.U128, s *session) {
	delete(ls.sessions, key)
	if s.numDsts() < d.cfg.MinDsts {
		ls.dropped++
		ls.recycle(s)
		return
	}
	// Qualifying sessions are the rare case. The Scan takes ownership
	// of the materialized ports/weeks maps (nil'd here so recycle does
	// not hand them to the next session); inline fast-path state gets
	// fresh maps.
	ports := s.ports
	if len(ports) == 0 {
		ports = map[firewall.Service]uint64{s.firstSvc: s.svcN}
	} else {
		s.ports = nil
	}
	weeks := s.weeks
	if len(weeks) == 0 {
		weeks = nil
		if s.weekN > 0 {
			weeks = map[int]uint64{int(s.firstWeek): s.weekN}
		}
	} else {
		s.weeks = nil
	}
	scan := Scan{
		Source:      netip.PrefixFrom(key.ToAddr(), int(ls.level)),
		Level:       ls.level,
		Start:       s.start,
		End:         s.last,
		Packets:     s.packets,
		Dsts:        s.numDsts(),
		SrcAddrs:    s.numSrcs(),
		Ports:       ports,
		WeekPackets: weeks,
		LenEntropy:  s.lenCounter.Normalized(),
	}
	if d.cfg.TrackDsts {
		scan.DstAddrs = make([]netip.Addr, 0, s.numDsts())
		if len(s.dsts) == 0 {
			scan.DstAddrs = append(scan.DstAddrs, s.firstDst.ToAddr())
		} else {
			for a := range s.dsts {
				scan.DstAddrs = append(scan.DstAddrs, a.ToAddr())
			}
		}
		sort.Slice(scan.DstAddrs, func(i, j int) bool {
			return scan.DstAddrs[i].Compare(scan.DstAddrs[j]) < 0
		})
	}
	ls.scans = append(ls.scans, scan)
	ls.recycle(s)
}

// Scans returns the detected scans at one aggregation level, ordered by
// start time. Valid after Finish.
func (d *Detector) Scans(level netaddr6.AggLevel) []Scan {
	for _, ls := range d.levels {
		if ls.level == level {
			out := ls.scans
			// Tie-break on source so ordering is deterministic even when
			// sessions close in map-iteration order.
			sort.Slice(out, func(i, j int) bool {
				if !out[i].Start.Equal(out[j].Start) {
					return out[i].Start.Before(out[j].Start)
				}
				return out[i].Source.Addr().Compare(out[j].Source.Addr()) < 0
			})
			return out
		}
	}
	return nil
}

// Dropped returns the number of sessions at the level that closed
// below the destination threshold.
func (d *Detector) Dropped(level netaddr6.AggLevel) uint64 {
	for _, ls := range d.levels {
		if ls.level == level {
			return ls.dropped
		}
	}
	return 0
}

// OpenSessions returns the number of in-flight sessions at the level —
// the detector's working-set size, the quantity the Discussion section
// worries about for IDS deployments.
func (d *Detector) OpenSessions(level netaddr6.AggLevel) int {
	for _, ls := range d.levels {
		if ls.level == level {
			return len(ls.sessions)
		}
	}
	return 0
}

// Totals summarizes one aggregation level the way Table 1 does.
type Totals struct {
	Level   netaddr6.AggLevel
	Scans   int
	Packets uint64
	Sources int // distinct scan source prefixes
	ASes    int // filled by analysis when an AS database is available
}

// TotalsFor computes the Table-1 row for a level (AS count left zero;
// the analysis package joins against asdb).
func (d *Detector) TotalsFor(level netaddr6.AggLevel) Totals {
	t := Totals{Level: level}
	srcs := make(map[netip.Prefix]struct{})
	for _, s := range d.Scans(level) {
		t.Scans++
		t.Packets += s.Packets
		srcs[s.Source] = struct{}{}
	}
	t.Sources = len(srcs)
	return t
}

// weekIndex returns whole weeks since epoch (negative before epoch).
func weekIndex(epoch, t time.Time) int {
	return int(t.Sub(epoch) / (7 * 24 * time.Hour))
}

// WeekIndex exposes weekly bucketing for the analysis package so all
// figures share the same week boundaries.
func WeekIndex(epoch, t time.Time) int { return weekIndex(epoch, t) }
