package core

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// ShardedDetector runs the multi-aggregation scan definition across N
// worker shards in parallel. Records are partitioned by their source
// aggregated to the *coarsest* configured level, so every session key
// at every level — finer prefixes nest inside the coarsest — lives in
// exactly one shard and the combined output is identical to a single
// Detector's, independent of shard count (see TestShardedParity).
//
// Each shard owns a private Detector and consumes batches from a
// channel; ProcessBatch partitions input while workers drain previous
// batches, so multi-level aggregation overlaps across sources instead
// of running serially per record. Finish drains the workers and merges
// per-level results deterministically (scans ordered by start time,
// then source).
type ShardedDetector struct {
	cfg      Config
	shardLvl netaddr6.AggLevel
	shards   []*Detector
	chans    []chan shardMsg
	// err holds the first worker error; workers race to set it and
	// the dispatching goroutine polls it so failures surface at the
	// next Process/ProcessBatch call rather than only at Finish.
	err atomic.Pointer[error]
	wg  sync.WaitGroup

	// buf stages single-record Process calls until batchSize is
	// reached; ProcessBatch bypasses it.
	buf       []firewall.Record
	batchSize int
	finished  bool
	merged    *Detector
}

// shardMsg is one unit of work for a shard: a run of records and/or a
// timeout-eviction horizon.
type shardMsg struct {
	recs    []firewall.Record
	advance time.Time
}

// defaultShardBatch is the staging size for the single-record Process
// path; large enough to amortize channel traffic, small enough that
// streaming callers see timely progress.
const defaultShardBatch = 2048

// NewShardedDetector returns a detector running the configuration's
// aggregation levels across n parallel shards. n < 1 is treated as 1;
// a single shard still processes on one worker goroutine but is
// byte-identical (and close in cost) to a plain Detector.
func NewShardedDetector(cfg Config, n int) *ShardedDetector {
	if n < 1 {
		n = 1
	}
	// Normalize the config once so every shard and the merged view
	// agree (NewDetector applies the same defaults).
	probe := NewDetector(cfg)
	cfg = probe.Config()

	// Shard by the coarsest level: the smallest prefix length contains
	// every finer aggregate of the same source.
	coarsest := CoarsestLevel(cfg.Levels)
	sd := &ShardedDetector{
		cfg:       cfg,
		shardLvl:  coarsest,
		shards:    make([]*Detector, n),
		chans:     make([]chan shardMsg, n),
		batchSize: defaultShardBatch,
	}
	for i := range sd.shards {
		if i == 0 {
			sd.shards[i] = probe
		} else {
			sd.shards[i] = NewDetector(cfg)
		}
		sd.chans[i] = make(chan shardMsg, 4)
		sd.wg.Add(1)
		go sd.worker(i)
	}
	return sd
}

// Config returns the (normalized) detector configuration.
func (sd *ShardedDetector) Config() Config { return sd.cfg }

// NumShards returns the worker count.
func (sd *ShardedDetector) NumShards() int { return len(sd.shards) }

func (sd *ShardedDetector) worker(i int) {
	defer sd.wg.Done()
	det := sd.shards[i]
	failed := false
	for msg := range sd.chans[i] {
		if failed {
			continue // drain after failure
		}
		if !msg.advance.IsZero() {
			det.Advance(msg.advance)
		}
		for _, r := range msg.recs {
			if err := det.Process(r); err != nil {
				sd.err.CompareAndSwap(nil, &err)
				failed = true
				break
			}
		}
	}
}

// shardOf routes a source address to its shard.
func (sd *ShardedDetector) shardOf(src netip.Addr) int {
	return PartitionShard(src, sd.shardLvl, len(sd.shards))
}

// Process ingests one record, staging it until a batch accumulates.
// Records must be in non-decreasing time order, as for Detector.
func (sd *ShardedDetector) Process(r firewall.Record) error {
	sd.buf = append(sd.buf, r)
	if len(sd.buf) >= sd.batchSize {
		return sd.flushBuf()
	}
	return nil
}

// ProcessBatch partitions a time-ordered run of records across the
// shards and dispatches it. The slice is not retained.
func (sd *ShardedDetector) ProcessBatch(recs []firewall.Record) error {
	if len(sd.buf) > 0 {
		if err := sd.flushBuf(); err != nil {
			return err
		}
	}
	return sd.dispatch(recs, time.Time{})
}

func (sd *ShardedDetector) flushBuf() error {
	err := sd.dispatch(sd.buf, time.Time{})
	sd.buf = sd.buf[:0]
	return err
}

func (sd *ShardedDetector) dispatch(recs []firewall.Record, advance time.Time) error {
	if sd.finished {
		return fmt.Errorf("core: ShardedDetector used after Finish")
	}
	if err := sd.firstErr(); err != nil {
		return err
	}
	if len(sd.shards) == 1 {
		if len(recs) > 0 || !advance.IsZero() {
			batch := make([]firewall.Record, len(recs))
			copy(batch, recs)
			sd.chans[0] <- shardMsg{recs: batch, advance: advance}
		}
		return nil
	}
	parts := make([][]firewall.Record, len(sd.shards))
	sizeHint := len(recs)/len(sd.shards) + len(recs)/8 + 1
	for _, r := range recs {
		i := sd.shardOf(r.Src)
		if parts[i] == nil {
			parts[i] = make([]firewall.Record, 0, sizeHint)
		}
		parts[i] = append(parts[i], r)
	}
	for i, part := range parts {
		if len(part) > 0 || !advance.IsZero() {
			sd.chans[i] <- shardMsg{recs: part, advance: advance}
		}
	}
	return nil
}

// Advance closes every session idle past the timeout as of now, like
// Detector.Advance. Pending staged records are dispatched first so
// eviction sees them.
func (sd *ShardedDetector) Advance(now time.Time) error {
	if err := sd.flushBuf(); err != nil {
		return err
	}
	return sd.dispatch(nil, now)
}

// Finish drains all shards, closes every open session, and merges the
// per-shard results. It returns the first per-shard processing error,
// if any. Call once after the final record; the scan accessors are
// valid afterwards.
func (sd *ShardedDetector) Finish() error {
	if sd.finished {
		return sd.firstErr()
	}
	// Dispatch any staged records. A worker error must not skip the
	// shutdown below: the channels still have to close and the workers
	// join (they drain remaining messages after a failure), or every
	// failed run would leak its shard goroutines.
	ferr := sd.flushBuf()
	sd.finished = true
	for _, ch := range sd.chans {
		close(ch)
	}
	sd.wg.Wait()
	for _, det := range sd.shards {
		det.Finish()
	}
	// Deterministic merge: concatenate each level's scans and sum the
	// drop counters into a fresh Detector, whose Scans() ordering
	// (start time, then source) is independent of shard interleaving.
	merged := NewDetector(sd.cfg)
	for li := range merged.levels {
		for _, det := range sd.shards {
			merged.levels[li].scans = append(merged.levels[li].scans, det.levels[li].scans...)
			merged.levels[li].dropped += det.levels[li].dropped
		}
	}
	sd.merged = merged
	if err := sd.firstErr(); err != nil {
		return err
	}
	return ferr
}

func (sd *ShardedDetector) firstErr() error {
	if p := sd.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Merged returns the combined detector view — the same object the
// analysis builders consume for a single Detector. Valid after Finish.
func (sd *ShardedDetector) Merged() *Detector {
	if !sd.finished {
		panic("core: ShardedDetector.Merged before Finish")
	}
	return sd.merged
}

// Scans returns the detected scans at one aggregation level, ordered by
// start time. Valid after Finish.
func (sd *ShardedDetector) Scans(level netaddr6.AggLevel) []Scan {
	return sd.Merged().Scans(level)
}

// Dropped returns the below-threshold session count at a level across
// all shards. Valid after Finish.
func (sd *ShardedDetector) Dropped(level netaddr6.AggLevel) uint64 {
	return sd.Merged().Dropped(level)
}

// TotalsFor computes the Table-1 row for a level. Valid after Finish.
func (sd *ShardedDetector) TotalsFor(level netaddr6.AggLevel) Totals {
	return sd.Merged().TotalsFor(level)
}
