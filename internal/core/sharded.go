package core

import (
	"time"

	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// ShardedDetector runs the multi-aggregation scan definition across N
// worker shards in parallel. Records are partitioned by their source
// aggregated to the *coarsest* configured level, so every session key
// at every level — finer prefixes nest inside the coarsest — lives in
// exactly one shard and the combined output is identical to a single
// Detector's, independent of shard count (see TestShardedParity).
//
// Each shard owns a private Detector; partitioning, staging, the
// worker goroutines and their pooled batch buffers are the shared
// dispatch.Dispatcher's (see that package's doc for the ownership
// model). Finish drains the workers and merges per-level results
// deterministically (scans ordered by start time, then source);
// detector workers can fail on time-order violations, and the
// dispatcher surfaces the first such error at the next call.
type ShardedDetector struct {
	cfg      Config
	shards   []*Detector
	disp     *dispatch.Dispatcher
	finished bool
	merged   *Detector
}

// NewShardedDetector returns a detector running the configuration's
// aggregation levels across n parallel shards. n < 1 is treated as 1;
// a single shard still processes on one worker goroutine but is
// byte-identical (and close in cost) to a plain Detector.
func NewShardedDetector(cfg Config, n int) *ShardedDetector {
	if n < 1 {
		n = 1
	}
	// Normalize the config once so every shard and the merged view
	// agree (NewDetector applies the same defaults).
	probe := NewDetector(cfg)
	cfg = probe.Config()

	sd := &ShardedDetector{cfg: cfg, shards: make([]*Detector, n)}
	for i := range sd.shards {
		if i == 0 {
			sd.shards[i] = probe
		} else {
			sd.shards[i] = NewDetector(cfg)
		}
	}
	// Shard by the coarsest level: the smallest prefix length contains
	// every finer aggregate of the same source.
	sd.disp = dispatch.New(dispatch.Config{
		Shards: n,
		Level:  CoarsestLevel(cfg.Levels),
	}, func(shard int, recs []firewall.Record, mark time.Time) error {
		det := sd.shards[shard]
		if !mark.IsZero() {
			det.Advance(mark)
		}
		return det.ProcessBatch(recs)
	})
	return sd
}

// Config returns the (normalized) detector configuration.
func (sd *ShardedDetector) Config() Config { return sd.cfg }

// NumShards returns the worker count.
func (sd *ShardedDetector) NumShards() int { return len(sd.shards) }

// QueueDepth reports the dispatcher's buffered work-unit backlog,
// summed over shards. Safe from any goroutine (see
// dispatch.Dispatcher.QueueDepth).
func (sd *ShardedDetector) QueueDepth() int { return sd.disp.QueueDepth() }

// Process ingests one record, staging it until a batch accumulates.
// Records must be in non-decreasing time order, as for Detector.
func (sd *ShardedDetector) Process(r firewall.Record) error {
	return sd.disp.Process(r)
}

// ProcessBatch partitions a time-ordered run of records across the
// shards and dispatches it. The slice is not retained.
func (sd *ShardedDetector) ProcessBatch(recs []firewall.Record) error {
	return sd.disp.ProcessBatch(recs)
}

// Advance closes every session idle past the timeout as of now, like
// Detector.Advance. Pending staged records are dispatched first so
// eviction sees them.
func (sd *ShardedDetector) Advance(now time.Time) error {
	return sd.disp.Mark(now)
}

// Finish drains all shards, closes every open session, and merges the
// per-shard results. It returns the first per-shard processing error,
// if any (repeat calls re-report it). Call once after the final
// record; the scan accessors are valid afterwards.
func (sd *ShardedDetector) Finish() error {
	err := sd.disp.Close()
	if sd.finished {
		return err
	}
	sd.finished = true
	for _, det := range sd.shards {
		det.Finish()
	}
	// Deterministic merge: concatenate each level's scans and sum the
	// drop counters into a fresh Detector, whose Scans() ordering
	// (start time, then source) is independent of shard interleaving.
	merged := NewDetector(sd.cfg)
	for li := range merged.levels {
		for _, det := range sd.shards {
			merged.levels[li].scans = append(merged.levels[li].scans, det.levels[li].scans...)
			merged.levels[li].dropped += det.levels[li].dropped
		}
	}
	sd.merged = merged
	return err
}

// Merged returns the combined detector view — the same object the
// analysis builders consume for a single Detector. Valid after Finish.
func (sd *ShardedDetector) Merged() *Detector {
	if !sd.finished {
		panic("core: ShardedDetector.Merged before Finish")
	}
	return sd.merged
}

// Scans returns the detected scans at one aggregation level, ordered by
// start time. Valid after Finish.
func (sd *ShardedDetector) Scans(level netaddr6.AggLevel) []Scan {
	return sd.Merged().Scans(level)
}

// Dropped returns the below-threshold session count at a level across
// all shards. Valid after Finish.
func (sd *ShardedDetector) Dropped(level netaddr6.AggLevel) uint64 {
	return sd.Merged().Dropped(level)
}

// TotalsFor computes the Table-1 row for a level. Valid after Finish.
func (sd *ShardedDetector) TotalsFor(level netaddr6.AggLevel) Totals {
	return sd.Merged().TotalsFor(level)
}
