package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

var base = time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)

// mkRec builds a TCP record with fixed length 60.
func mkRec(ts time.Time, src, dst string, port uint16) firewall.Record {
	return firewall.Record{
		Time: ts, Src: netaddr6.MustAddr(src), Dst: netaddr6.MustAddr(dst),
		Proto: layers.ProtoTCP, SrcPort: 40000, DstPort: port, Length: 60,
	}
}

// feedScan pushes n packets from src to n distinct destinations,
// one second apart, starting at ts.
func feedScan(t *testing.T, d *Detector, ts time.Time, src string, n int, port uint16) time.Time {
	return feedScanOff(t, d, ts, src, n, 0, port)
}

// feedScanOff is feedScan with a destination-IID offset so successive
// calls target disjoint destination sets.
func feedScanOff(t *testing.T, d *Detector, ts time.Time, src string, n, off int, port uint16) time.Time {
	t.Helper()
	for i := 0; i < n; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(off+i+1))
		if err := d.Process(mkRec(ts, src, dst.String(), port)); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Second)
	}
	return ts
}

func TestDetectSimpleScan(t *testing.T) {
	d := NewDetector(DefaultConfig())
	feedScan(t, d, base, "2001:db8:1::1", 150, 22)
	d.Finish()
	for _, lvl := range netaddr6.Levels() {
		scans := d.Scans(lvl)
		if len(scans) != 1 {
			t.Fatalf("%v: %d scans, want 1", lvl, len(scans))
		}
		s := scans[0]
		if s.Packets != 150 || s.Dsts != 150 || s.SrcAddrs != 1 {
			t.Errorf("%v: %+v", lvl, s)
		}
		if s.Level != lvl {
			t.Errorf("level mismatch: %v", s.Level)
		}
		if s.LenEntropy != 0 {
			t.Errorf("constant lengths should give zero entropy, got %v", s.LenEntropy)
		}
	}
}

func TestBelowThresholdNotDetected(t *testing.T) {
	d := NewDetector(DefaultConfig())
	feedScan(t, d, base, "2001:db8:1::1", 99, 22)
	d.Finish()
	if len(d.Scans(netaddr6.Agg64)) != 0 {
		t.Error("99 destinations should not qualify")
	}
	if d.Dropped(netaddr6.Agg64) != 1 {
		t.Errorf("dropped = %d", d.Dropped(netaddr6.Agg64))
	}
}

func TestExactThresholdDetected(t *testing.T) {
	d := NewDetector(DefaultConfig())
	feedScan(t, d, base, "2001:db8:1::1", 100, 22)
	d.Finish()
	if len(d.Scans(netaddr6.Agg64)) != 1 {
		t.Error("exactly 100 destinations should qualify")
	}
}

func TestTimeoutSplitsSessions(t *testing.T) {
	d := NewDetector(DefaultConfig())
	ts := feedScan(t, d, base, "2001:db8:1::1", 120, 22)
	// Gap of 61 minutes: session closes, second session opens.
	ts = ts.Add(61 * time.Minute)
	feedScan(t, d, ts, "2001:db8:1::1", 130, 23)
	d.Finish()
	scans := d.Scans(netaddr6.Agg64)
	if len(scans) != 2 {
		t.Fatalf("%d scans, want 2", len(scans))
	}
	if scans[0].Dsts != 120 || scans[1].Dsts != 130 {
		t.Errorf("dsts: %d/%d", scans[0].Dsts, scans[1].Dsts)
	}
}

func TestGapJustUnderTimeoutMerges(t *testing.T) {
	d := NewDetector(DefaultConfig())
	ts := feedScan(t, d, base, "2001:db8:1::1", 60, 22)
	ts = ts.Add(59 * time.Minute)
	feedScanOff(t, d, ts, "2001:db8:1::1", 60, 1000, 22)
	d.Finish()
	scans := d.Scans(netaddr6.Agg64)
	if len(scans) != 1 {
		t.Fatalf("%d scans, want 1 (merged)", len(scans))
	}
	if scans[0].Dsts != 120 {
		t.Errorf("dsts = %d", scans[0].Dsts)
	}
}

func TestAggregationLevelsDiffer(t *testing.T) {
	// 4 /64s in the same /48, each probing 30 distinct dsts: none
	// qualifies at /64 or /128, but the /48 aggregate (120 dsts) does.
	d := NewDetector(DefaultConfig())
	ts := base
	for j := 0; j < 4; j++ {
		src := fmt.Sprintf("2001:db8:1:%d::1", j)
		for i := 0; i < 30; i++ {
			dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(j*1000+i+1))
			if err := d.Process(mkRec(ts, src, dst.String(), 22)); err != nil {
				t.Fatal(err)
			}
			ts = ts.Add(time.Second)
		}
	}
	d.Finish()
	if n := len(d.Scans(netaddr6.Agg128)); n != 0 {
		t.Errorf("/128 scans = %d, want 0", n)
	}
	if n := len(d.Scans(netaddr6.Agg64)); n != 0 {
		t.Errorf("/64 scans = %d, want 0", n)
	}
	scans48 := d.Scans(netaddr6.Agg48)
	if len(scans48) != 1 {
		t.Fatalf("/48 scans = %d, want 1", len(scans48))
	}
	if scans48[0].Dsts != 120 || scans48[0].SrcAddrs != 4 {
		t.Errorf("/48 scan: %+v", scans48[0])
	}
}

func TestSourceSpreadOverSlash64(t *testing.T) {
	// 10 /128s in one /64, 15 dsts each: only /64 and /48 qualify.
	d := NewDetector(DefaultConfig())
	ts := base
	for j := 0; j < 10; j++ {
		src := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:1:1::"), uint64(j+1))
		for i := 0; i < 15; i++ {
			dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(j*100+i+1))
			if err := d.Process(mkRec(ts, src.String(), dst.String(), 22)); err != nil {
				t.Fatal(err)
			}
			ts = ts.Add(time.Second)
		}
	}
	d.Finish()
	if n := len(d.Scans(netaddr6.Agg128)); n != 0 {
		t.Errorf("/128 = %d, want 0", n)
	}
	s64 := d.Scans(netaddr6.Agg64)
	if len(s64) != 1 || s64[0].SrcAddrs != 10 || s64[0].Dsts != 150 {
		t.Errorf("/64 scans: %+v", s64)
	}
}

func TestRepeatDstsCountOnce(t *testing.T) {
	d := NewDetector(DefaultConfig())
	ts := base
	// 300 packets to only 50 distinct destinations.
	for i := 0; i < 300; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(i%50+1))
		if err := d.Process(mkRec(ts, "2001:db8:1::1", dst.String(), 22)); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Second)
	}
	d.Finish()
	if len(d.Scans(netaddr6.Agg64)) != 0 {
		t.Error("50 distinct dsts should not qualify")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	d := NewDetector(DefaultConfig())
	if err := d.Process(mkRec(base, "2001:db8::1", "2001:db8:a::1", 22)); err != nil {
		t.Fatal(err)
	}
	if err := d.Process(mkRec(base.Add(-time.Second), "2001:db8::1", "2001:db8:a::2", 22)); err == nil {
		t.Error("out-of-order record accepted")
	}
}

func TestAdvanceClosesIdleSessions(t *testing.T) {
	d := NewDetector(DefaultConfig())
	feedScan(t, d, base, "2001:db8:1::1", 120, 22)
	if d.OpenSessions(netaddr6.Agg64) != 1 {
		t.Fatal("expected one open session")
	}
	d.Advance(base.Add(3 * time.Hour))
	if d.OpenSessions(netaddr6.Agg64) != 0 {
		t.Error("Advance did not close idle session")
	}
	if len(d.Scans(netaddr6.Agg64)) != 1 {
		t.Error("closed session not emitted as scan")
	}
}

func TestTrackDsts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackDsts = true
	d := NewDetector(cfg)
	feedScan(t, d, base, "2001:db8:1::1", 110, 22)
	d.Finish()
	s := d.Scans(netaddr6.Agg64)[0]
	if len(s.DstAddrs) != 110 {
		t.Fatalf("DstAddrs = %d", len(s.DstAddrs))
	}
	// Sorted.
	for i := 1; i < len(s.DstAddrs); i++ {
		if s.DstAddrs[i-1].Compare(s.DstAddrs[i]) >= 0 {
			t.Fatal("DstAddrs not sorted")
		}
	}
}

func TestWeeklyAttribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WeekEpoch = base
	d := NewDetector(cfg)
	// A scan straddling a week boundary: packets every 30 min for 8 days.
	ts := base.Add(6 * 24 * time.Hour)
	for i := 0; i < 120; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(i+1))
		if err := d.Process(mkRec(ts, "2001:db8:1::1", dst.String(), 22)); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(30 * time.Minute)
	}
	d.Finish()
	scans := d.Scans(netaddr6.Agg64)
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	wp := scans[0].WeekPackets
	if len(wp) != 2 {
		t.Fatalf("weeks = %v", wp)
	}
	if wp[0]+wp[1] != scans[0].Packets {
		t.Error("weekly packets don't sum to total")
	}
}

func TestSensitivityTimeout(t *testing.T) {
	// With a 15-minute timeout a 20-minute gap splits; with 1 hour it
	// merges — the Section 2.2 sensitivity experiment in miniature.
	for _, tc := range []struct {
		timeout time.Duration
		want    int
	}{
		{900 * time.Second, 0},  // split into two 60-dst halves → no scans
		{3600 * time.Second, 1}, // merged 120 dsts → one scan
	} {
		cfg := DefaultConfig()
		cfg.Timeout = tc.timeout
		d := NewDetector(cfg)
		ts := feedScan(t, d, base, "2001:db8:1::1", 60, 22)
		ts = ts.Add(20 * time.Minute)
		feedScanOff(t, d, ts, "2001:db8:1::1", 60, 1000, 22)
		d.Finish()
		if got := len(d.Scans(netaddr6.Agg64)); got != tc.want {
			t.Errorf("timeout %v: %d scans, want %d", tc.timeout, got, tc.want)
		}
	}
}

func TestTotalsFor(t *testing.T) {
	d := NewDetector(DefaultConfig())
	ts := feedScan(t, d, base, "2001:db8:1::1", 120, 22)
	ts = ts.Add(2 * time.Hour)
	ts = feedScan(t, d, ts, "2001:db8:1::1", 120, 22)
	ts = ts.Add(2 * time.Hour)
	feedScan(t, d, ts, "2001:db8:2::1", 150, 23)
	d.Finish()
	tot := d.TotalsFor(netaddr6.Agg64)
	if tot.Scans != 3 || tot.Sources != 2 || tot.Packets != 390 {
		t.Errorf("totals: %+v", tot)
	}
}

func TestScanDurationAndPorts(t *testing.T) {
	d := NewDetector(DefaultConfig())
	ts := base
	for i := 0; i < 200; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(i+1))
		port := uint16(22 + i%4)
		if err := d.Process(mkRec(ts, "2001:db8:1::1", dst.String(), port)); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Second)
	}
	d.Finish()
	s := d.Scans(netaddr6.Agg64)[0]
	if s.Duration() != 199*time.Second {
		t.Errorf("duration %v", s.Duration())
	}
	if s.NumPorts() != 4 {
		t.Errorf("ports %d", s.NumPorts())
	}
	var sum uint64
	for _, n := range s.Ports {
		sum += n
	}
	if sum != s.Packets {
		t.Error("port packets don't sum to total")
	}
}

func TestManySourcesStress(t *testing.T) {
	// 200 interleaved sources, each scanning 120 dsts.
	d := NewDetector(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	ts := base
	next := make([]int, 200)
	remaining := 200 * 120
	for remaining > 0 {
		i := rng.Intn(len(next))
		if next[i] >= 120 {
			continue
		}
		src := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:5::"), uint64(i+1))
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:aaaa::"), uint64(i*1000+next[i]))
		if err := d.Process(mkRec(ts, src.String(), dst.String(), 22)); err != nil {
			t.Fatal(err)
		}
		next[i]++
		remaining--
		ts = ts.Add(10 * time.Millisecond)
	}
	d.Finish()
	if n := len(d.Scans(netaddr6.Agg128)); n != 200 {
		t.Errorf("/128 scans = %d, want 200", n)
	}
	// All share one /64 → single merged source there.
	if n := d.TotalsFor(netaddr6.Agg64).Sources; n != 1 {
		t.Errorf("/64 sources = %d, want 1", n)
	}
}
