package core

import (
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// feedMAWIScan pushes one packet to each of n distinct dsts on the
// given port with constant length.
func feedMAWIScan(d *MAWIDetector, src string, n int, port uint16, length uint16) {
	ts := base
	for i := 0; i < n; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:bbbb::"), uint64(i+1))
		d.Process(firewall.Record{
			Time: ts, Src: netaddr6.MustAddr(src), Dst: dst,
			Proto: layers.ProtoTCP, DstPort: port, Length: length,
		})
		ts = ts.Add(time.Millisecond)
	}
}

func TestMAWIDetectsUniformScan(t *testing.T) {
	d := NewMAWIDetector(DefaultMAWIConfig())
	feedMAWIScan(d, "2001:db8:1::1", 150, 22, 60)
	scans := d.Finish()
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	s := scans[0]
	if s.Dsts != 150 || s.Packets != 150 || len(s.Services) != 1 {
		t.Errorf("scan: %+v", s)
	}
	if s.Services[0].Port != 22 {
		t.Errorf("service: %v", s.Services[0])
	}
	if len(s.DstIIDs) != 150 {
		t.Errorf("IIDs: %d", len(s.DstIIDs))
	}
}

func TestMAWIBelowDstThreshold(t *testing.T) {
	d := NewMAWIDetector(DefaultMAWIConfig())
	feedMAWIScan(d, "2001:db8:1::1", 99, 22, 60)
	if scans := d.Finish(); len(scans) != 0 {
		t.Errorf("scans = %d, want 0", len(scans))
	}
}

func TestMAWIFukudaHeidemannThreshold(t *testing.T) {
	cfg := DefaultMAWIConfig()
	cfg.MinDsts = 5 // the original Fukuda–Heidemann threshold
	d := NewMAWIDetector(cfg)
	feedMAWIScan(d, "2001:db8:1::1", 7, 22, 60)
	if scans := d.Finish(); len(scans) != 1 {
		t.Errorf("scans = %d, want 1 at threshold 5", len(scans))
	}
}

func TestMAWIRejectsTalkativeFlows(t *testing.T) {
	// 12 packets per destination breaks rule (iii): not a scan but a
	// service exchange.
	d := NewMAWIDetector(DefaultMAWIConfig())
	ts := base
	for rep := 0; rep < 12; rep++ {
		for i := 0; i < 150; i++ {
			dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:bbbb::"), uint64(i+1))
			d.Process(firewall.Record{
				Time: ts, Src: netaddr6.MustAddr("2001:db8:1::1"), Dst: dst,
				Proto: layers.ProtoTCP, DstPort: 22, Length: 60,
			})
			ts = ts.Add(time.Millisecond)
		}
	}
	if scans := d.Finish(); len(scans) != 0 {
		t.Errorf("talkative flow detected as scan")
	}
}

func TestMAWIRejectsHighLengthEntropy(t *testing.T) {
	// Variable packet sizes (regular traffic) break rule (iv).
	d := NewMAWIDetector(DefaultMAWIConfig())
	ts := base
	for i := 0; i < 150; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:bbbb::"), uint64(i+1))
		d.Process(firewall.Record{
			Time: ts, Src: netaddr6.MustAddr("2001:db8:1::1"), Dst: dst,
			Proto: layers.ProtoTCP, DstPort: 22, Length: uint16(60 + i*7%900),
		})
		ts = ts.Add(time.Millisecond)
	}
	if scans := d.Finish(); len(scans) != 0 {
		t.Errorf("high-entropy flow detected as scan")
	}
}

func TestMAWIMergesPortsPerSource(t *testing.T) {
	d := NewMAWIDetector(DefaultMAWIConfig())
	feedMAWIScan(d, "2001:db8:1::1", 120, 22, 60)
	feedMAWIScan(d, "2001:db8:1::1", 130, 23, 60)
	feedMAWIScan(d, "2001:db8:1::1", 20, 80, 60) // below threshold, excluded
	scans := d.Finish()
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	s := scans[0]
	if len(s.Services) != 2 || s.Services[0].Port != 22 || s.Services[1].Port != 23 {
		t.Errorf("services: %v", s.Services)
	}
	if s.Packets != 250 {
		t.Errorf("packets: %d", s.Packets)
	}
}

func TestMAWIICMPv6Scan(t *testing.T) {
	d := NewMAWIDetector(DefaultMAWIConfig())
	ts := base
	for i := 0; i < 200; i++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:bbbb::"), uint64(i+1))
		d.Process(firewall.Record{
			Time: ts, Src: netaddr6.MustAddr("2001:db8:9::1"), Dst: dst,
			Proto: layers.ProtoICMPv6, Length: 48,
		})
		ts = ts.Add(time.Millisecond)
	}
	scans := d.Finish()
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	if scans[0].Services[0].String() != "ICMPv6" {
		t.Errorf("service: %v", scans[0].Services[0])
	}
}

func TestMAWISourceAggregationLevels(t *testing.T) {
	// 3 /128s in one /64, 40 dsts each: at /128 nothing qualifies, at
	// /64 the merged flow does.
	for _, tc := range []struct {
		level netaddr6.AggLevel
		want  int
	}{
		{netaddr6.Agg128, 0},
		{netaddr6.Agg64, 1},
		{netaddr6.Agg48, 1},
	} {
		cfg := DefaultMAWIConfig()
		cfg.Level = tc.level
		d := NewMAWIDetector(cfg)
		ts := base
		for j := 0; j < 3; j++ {
			src := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:1:1::"), uint64(j+1))
			for i := 0; i < 40; i++ {
				dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:bbbb::"), uint64(j*100+i+1))
				d.Process(firewall.Record{
					Time: ts, Src: src, Dst: dst,
					Proto: layers.ProtoTCP, DstPort: 22, Length: 60,
				})
				ts = ts.Add(time.Millisecond)
			}
		}
		if got := len(d.Finish()); got != tc.want {
			t.Errorf("level %v: scans = %d, want %d", tc.level, got, tc.want)
		}
	}
}

func TestMAWIScanOrderingByPackets(t *testing.T) {
	d := NewMAWIDetector(DefaultMAWIConfig())
	feedMAWIScan(d, "2001:db8:1::1", 120, 22, 60)
	feedMAWIScan(d, "2001:db8:2::1", 400, 23, 60)
	scans := d.Finish()
	if len(scans) != 2 || scans[0].Packets < scans[1].Packets {
		t.Errorf("ordering: %+v", scans)
	}
}
