package core

import (
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/entropy"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// MAWIConfig parameterizes the Section-4 detector used on the public
// MAWI traces: an extended version of Fukuda & Heidemann's definition.
// A per-(source, service) flow qualifies as a scan when it
//
//	(i)   targets at least MinDsts destination IPs,
//	(ii)  has all packets on the same destination port (grouping is
//	      per service, so this holds by construction),
//	(iii) sends fewer than MaxPktsPerDst packets to any single
//	      destination on that port, and
//	(iv)  has normalized packet-length entropy below MaxLenEntropy.
//
// Qualified flows from the same source are then merged into one scan
// spanning multiple services.
type MAWIConfig struct {
	MinDsts       int               // paper: 100 (Fukuda–Heidemann used 5)
	MaxPktsPerDst int               // paper: 10
	MaxLenEntropy float64           // paper: 0.1
	Level         netaddr6.AggLevel // source aggregation (paper presents /64)
	// TrackDsts retains each scan's destination addresses for
	// hitlist-overlap and targeting analyses (Appendix A.2).
	TrackDsts bool
}

// DefaultMAWIConfig returns the paper's parameters at /64 aggregation.
func DefaultMAWIConfig() MAWIConfig {
	return MAWIConfig{MinDsts: 100, MaxPktsPerDst: 10, MaxLenEntropy: 0.1, Level: netaddr6.Agg64}
}

// MAWIScan is one detected scan in a MAWI capture window: all
// qualified per-port flows of one source merged together.
type MAWIScan struct {
	Source   netip.Prefix
	Services []firewall.Service // qualified services, sorted
	Packets  uint64             // packets across qualified services
	Dsts     int                // distinct destinations across qualified services
	Start    time.Time
	End      time.Time
	// DstIIDs holds the interface identifiers of targeted addresses
	// for Hamming-weight analysis (Figure 7).
	DstIIDs []uint64
	// DstAddrs holds the targeted addresses when MAWIConfig.TrackDsts
	// is set.
	DstAddrs []netip.Addr
}

type mawiFlow struct {
	start, last time.Time
	packets     uint64
	perDst      map[netip.Addr]uint32
	lenCounter  entropy.Counter
}

// MAWIDetector detects scans in one capture window (MAWI publishes 15
// minutes per day; a detector instance is used per window).
type MAWIDetector struct {
	cfg   MAWIConfig
	flows map[mawiKey]*mawiFlow
}

type mawiKey struct {
	src netip.Prefix
	svc firewall.Service
}

// NewMAWIDetector returns a detector for one capture window.
func NewMAWIDetector(cfg MAWIConfig) *MAWIDetector {
	if cfg.MinDsts <= 0 {
		cfg.MinDsts = 100
	}
	if cfg.MaxPktsPerDst <= 0 {
		cfg.MaxPktsPerDst = 10
	}
	if cfg.MaxLenEntropy <= 0 {
		cfg.MaxLenEntropy = 0.1
	}
	if !cfg.Level.Valid() {
		cfg.Level = netaddr6.Agg64
	}
	return &MAWIDetector{cfg: cfg, flows: make(map[mawiKey]*mawiFlow)}
}

// Process ingests one record. Unlike the CDN detector there is no
// timeout: a MAWI window is only 15 minutes.
func (d *MAWIDetector) Process(r firewall.Record) {
	key := mawiKey{src: netaddr6.Aggregate(r.Src, d.cfg.Level), svc: r.Service()}
	f := d.flows[key]
	if f == nil {
		f = &mawiFlow{start: r.Time, perDst: make(map[netip.Addr]uint32)}
		d.flows[key] = f
	}
	f.last = r.Time
	f.packets++
	f.perDst[r.Dst]++
	f.lenCounter.Observe(uint64(r.Length))
}

// Finish applies the qualification rules and merges per-port flows by
// source, returning scans sorted by packet count (descending).
func (d *MAWIDetector) Finish() []MAWIScan {
	bySrc := make(map[netip.Prefix]*MAWIScan)
	for key, f := range d.flows {
		if !d.qualifies(f) {
			continue
		}
		s := bySrc[key.src]
		if s == nil {
			s = &MAWIScan{Source: key.src, Start: f.start, End: f.last}
			bySrc[key.src] = s
		}
		s.Services = append(s.Services, key.svc)
		s.Packets += f.packets
		s.Dsts += len(f.perDst) // approximate union; ports rarely share dsts in scans
		if f.start.Before(s.Start) {
			s.Start = f.start
		}
		if f.last.After(s.End) {
			s.End = f.last
		}
		for dst := range f.perDst {
			s.DstIIDs = append(s.DstIIDs, netaddr6.IID(dst))
			if d.cfg.TrackDsts {
				s.DstAddrs = append(s.DstAddrs, dst)
			}
		}
	}
	out := make([]MAWIScan, 0, len(bySrc))
	for _, s := range bySrc {
		sort.Slice(s.Services, func(i, j int) bool {
			if s.Services[i].Proto != s.Services[j].Proto {
				return s.Services[i].Proto < s.Services[j].Proto
			}
			return s.Services[i].Port < s.Services[j].Port
		})
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Source.Addr().Compare(out[j].Source.Addr()) < 0
	})
	return out
}

func (d *MAWIDetector) qualifies(f *mawiFlow) bool {
	if len(f.perDst) < d.cfg.MinDsts {
		return false
	}
	for _, n := range f.perDst {
		if int(n) >= d.cfg.MaxPktsPerDst {
			return false
		}
	}
	return f.lenCounter.Normalized() < d.cfg.MaxLenEntropy
}
