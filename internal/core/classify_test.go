package core

import (
	"testing"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
)

func svc(port uint16) firewall.Service {
	return firewall.Service{Proto: layers.ProtoTCP, Port: port}
}

func TestClassifySinglePort(t *testing.T) {
	ports := map[firewall.Service]uint64{svc(22): 1000}
	if c := ClassifyPorts(ports); c != SinglePort {
		t.Errorf("got %v", c)
	}
	// A tiny stray fraction must not flip the class (the f-rule's whole
	// point): 95% on one port is still "single port".
	ports[svc(23)] = 30
	ports[svc(24)] = 20
	if c := ClassifyPorts(ports); c != SinglePort {
		t.Errorf("with strays: got %v", c)
	}
}

func TestClassifyFewPorts(t *testing.T) {
	ports := map[firewall.Service]uint64{}
	for p := uint16(0); p < 4; p++ {
		ports[svc(22+p)] = 250 // f = 0.25 → 2–10 ports
	}
	if c := ClassifyPorts(ports); c != Ports2to10 {
		t.Errorf("got %v", c)
	}
}

func TestClassifyTensOfPorts(t *testing.T) {
	ports := map[firewall.Service]uint64{}
	for p := uint16(0); p < 50; p++ {
		ports[svc(1000+p)] = 20 // f = 0.02 → 10–100
	}
	if c := ClassifyPorts(ports); c != Ports10to100 {
		t.Errorf("got %v", c)
	}
}

func TestClassifyManyPorts(t *testing.T) {
	ports := map[firewall.Service]uint64{}
	for p := uint16(0); p < 400; p++ {
		ports[svc(1000+p)] = 5 // f = 0.0025 → >100
	}
	if c := ClassifyPorts(ports); c != PortsOver100 {
		t.Errorf("got %v", c)
	}
}

func TestClassifyBoundaries(t *testing.T) {
	// f exactly 0.5 is NOT single-port (> comparison).
	ports := map[firewall.Service]uint64{svc(1): 50, svc(2): 25, svc(3): 25}
	if c := ClassifyPorts(ports); c != Ports2to10 {
		t.Errorf("f=0.5: got %v", c)
	}
	if c := ClassifyPorts(nil); c != SinglePort {
		t.Errorf("empty: got %v", c)
	}
}

func TestPortClassStrings(t *testing.T) {
	want := []string{"single port", "2-10 ports", "10-100 ports", ">100 ports"}
	for i, c := range PortClasses() {
		if c.String() != want[i] {
			t.Errorf("class %d: %q", i, c)
		}
	}
	if PortClass(9).String() != "unknown" {
		t.Error("unknown class name")
	}
}
