package core

import (
	"testing"

	"v6scan/internal/checkpoint"
	"v6scan/internal/netaddr6"
	"v6scan/internal/u128idx"
)

// TestEncodeU128SetNoAllocs pins the address-set encoder at zero
// allocations once the threaded scratch buffer and encoder are warm:
// the per-section fresh sorted slice it used to allocate is exactly the
// regression this guards against.
func TestEncodeU128SetNoAllocs(t *testing.T) {
	var spilled u128idx.Set
	for i := 0; i < 300; i++ {
		spilled.Add(netaddr6.U128{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i)})
	}
	var small u128idx.Set
	for i := 0; i < 5; i++ {
		small.Add(netaddr6.U128{Lo: uint64(i)})
	}
	var inline u128idx.Set // empty: single-value fast path
	first := netaddr6.U128{Hi: 1, Lo: 2}

	var e checkpoint.Enc
	var scratch []netaddr6.U128
	encode := func() {
		e.B = e.B[:0]
		encodeU128Set(&e, &scratch, &spilled, first)
		encodeU128Set(&e, &scratch, &small, first)
		encodeU128Set(&e, &scratch, &inline, first)
	}
	encode() // warm the scratch buffer and encoder capacity
	if allocs := testing.AllocsPerRun(20, encode); allocs != 0 {
		t.Fatalf("encodeU128Set allocated %.0f times per warm encode, want 0", allocs)
	}
}
