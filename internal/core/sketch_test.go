package core

import (
	"math"
	"math/rand"
	"testing"

	"v6scan/internal/netaddr6"
)

func TestDstSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{50, 100, 1000, 20000} {
		s := NewDstSketch(12)
		for i := 0; i < n; i++ {
			s.Add(netaddr6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}.ToAddr())
		}
		got := float64(s.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 0.08 {
			t.Errorf("n=%d: estimate %v, rel err %.3f", n, got, relErr)
		}
	}
}

func TestDstSketchDuplicatesIdempotent(t *testing.T) {
	s := NewDstSketch(12)
	a := netaddr6.MustAddr("2001:db8::1")
	for i := 0; i < 10000; i++ {
		s.Add(a)
	}
	if e := s.Estimate(); e > 3 {
		t.Errorf("single address estimated as %d", e)
	}
}

func TestDstSketchThresholdDecision(t *testing.T) {
	// The only decision the detector needs: is the cardinality ≥100?
	// With 3% error the sketch must never be wrong by 2x.
	rng := rand.New(rand.NewSource(2))
	below := NewDstSketch(12)
	for i := 0; i < 50; i++ {
		below.Add(netaddr6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}.ToAddr())
	}
	if below.Estimate() >= 100 {
		t.Errorf("50 dsts estimated as %d (false positive)", below.Estimate())
	}
	above := NewDstSketch(12)
	for i := 0; i < 200; i++ {
		above.Add(netaddr6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}.ToAddr())
	}
	if above.Estimate() < 100 {
		t.Errorf("200 dsts estimated as %d (false negative)", above.Estimate())
	}
}

func TestDstSketchResetAndMemory(t *testing.T) {
	s := NewDstSketch(10)
	if s.MemoryBytes() != 1024 {
		t.Errorf("memory = %d", s.MemoryBytes())
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		s.Add(netaddr6.U128{Hi: rng.Uint64(), Lo: rng.Uint64()}.ToAddr())
	}
	s.Reset()
	if e := s.Estimate(); e != 0 {
		t.Errorf("after reset: %d", e)
	}
}

func TestDstSketchPrecisionClamp(t *testing.T) {
	if NewDstSketch(1).MemoryBytes() != 16 {
		t.Error("low clamp failed")
	}
	if NewDstSketch(20).MemoryBytes() != 1<<16 {
		t.Error("high clamp failed")
	}
}

func TestHashAddrSpreads(t *testing.T) {
	// Sequential addresses must not collide in the high bits used for
	// register selection.
	seen := map[uint64]bool{}
	base := netaddr6.MustAddr("2001:db8::")
	for i := 0; i < 4096; i++ {
		h := hashAddr(netaddr6.WithIID(base, uint64(i))) >> 52
		seen[h] = true
	}
	if len(seen) < 2500 {
		t.Errorf("high-bit spread: %d distinct of 4096", len(seen))
	}
}
