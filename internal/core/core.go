package core
