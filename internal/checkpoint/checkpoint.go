// Package checkpoint defines the versioned binary snapshot container
// used to persist detector and IDS state across restarts — the
// durability layer the Discussion section's inline deployment needs so
// a restart does not forget a week of session and candidate history.
//
// # Format (version 1)
//
// A snapshot is a header followed by a sequence of CRC-guarded
// sections and a terminating end marker:
//
//	header   := magic[8] version:u16 kind:u8 reserved:u8
//	            mark:i64 horizon:i64 crc32c:u32      (32 bytes)
//	section  := kind:u8 len:u32 payload[len] crc32c:u32
//	end      := 0xFF 0x00000000 crc32c:u32
//
// All integers are little-endian. The header CRC covers the 28 bytes
// before it; a section CRC covers the section's kind, length, and
// payload, so a flipped bit anywhere — including in the framing — is
// detected. Times are UnixNano instants with math.MinInt64 standing in
// for the zero time.
//
// mark is the stream-time cut the snapshot was taken at: the snapshot
// contains the effect of exactly the records with timestamps strictly
// before mark. horizon is the inclusive replay skip bound, mark−1ns:
// resuming replays the same input and drops every record at or before
// horizon, which reconstructs the uninterrupted run byte-exactly.
//
// Section payload layout is owned by the writing subsystem (the
// detector and IDS snapshot code in internal/core and internal/ids);
// this package owns only the container framing, checksums, and the
// canonical little-endian primitive encoders (Enc/Dec) both use, so
// the two snapshot kinds cannot drift apart on framing.
//
// # Canonical encoding
//
// Snapshot writers emit state in canonical order (sessions and
// candidates sorted by key, map entries sorted). Restoring a snapshot
// and snapshotting again therefore reproduces the original bytes
// exactly — the invariant FuzzSnapshotRoundtrip checks — and snapshots
// of logically identical state are byte-identical regardless of shard
// count or map iteration order.
package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// magic identifies a v6scan snapshot. The trailing CR/LF pair catches
// text-mode transfer mangling the way PNG's signature does.
var magic = [8]byte{'v', '6', 's', 'n', 'a', 'p', '\r', '\n'}

// Version is the current (and only) snapshot format version.
const Version uint16 = 1

// Snapshot kinds: which subsystem's state the file holds.
const (
	KindDetector uint8 = 1 // core.Detector / core.ShardedDetector
	KindIDS      uint8 = 2 // ids.Engine / ids.ShardedEngine
)

// Section kinds shared by both snapshot kinds.
const (
	SecConfig  uint8 = 1 // the subsystem configuration
	SecLevel   uint8 = 2 // one aggregation level's live state
	SecResults uint8 = 3 // accumulated results (scans/alerts, drop counters)
	secEnd     uint8 = 0xFF
)

// Typed container errors. Restore failures wrap one of these, so
// callers can distinguish corruption from version skew.
var (
	ErrBadMagic  = errors.New("checkpoint: bad magic (not a v6scan snapshot)")
	ErrVersion   = errors.New("checkpoint: unsupported snapshot format version")
	ErrChecksum  = errors.New("checkpoint: checksum mismatch (snapshot corrupted)")
	ErrTruncated = errors.New("checkpoint: snapshot truncated")
	ErrFormat    = errors.New("checkpoint: malformed snapshot")
)

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const headerSize = 8 + 2 + 1 + 1 + 8 + 8 + 4

// timeSentinel encodes the zero time.Time.
const timeSentinel = math.MinInt64

// Header is the decoded snapshot header.
type Header struct {
	Version uint16
	Kind    uint8
	// Mark is the stream-time cut: state reflects exactly the records
	// with Time < Mark.
	Mark time.Time
	// Horizon is the inclusive replay skip bound (Mark − 1ns): resume
	// by replaying the input and dropping records with Time ≤ Horizon.
	Horizon time.Time
}

func encodeTime(t time.Time) int64 {
	if t.IsZero() {
		return timeSentinel
	}
	return t.UnixNano()
}

func decodeTime(v int64) time.Time {
	if v == timeSentinel {
		return time.Time{}
	}
	// Match the firewall record decoder's construction so restored
	// instants render identically to ones read from a log.
	return time.Unix(0, v).UTC()
}

// Writer emits one snapshot: header, sections, end marker.
type Writer struct {
	w   io.Writer
	buf []byte
	err error
}

// NewWriter writes the snapshot header and returns a section writer.
// mark must be non-zero; the horizon is derived as mark − 1ns.
func NewWriter(w io.Writer, kind uint8, mark time.Time) (*Writer, error) {
	if mark.IsZero() {
		return nil, fmt.Errorf("%w: zero mark", ErrFormat)
	}
	var h [headerSize]byte
	copy(h[0:8], magic[:])
	binary.LittleEndian.PutUint16(h[8:10], Version)
	h[10] = kind
	h[11] = 0 // reserved
	binary.LittleEndian.PutUint64(h[12:20], uint64(encodeTime(mark)))
	binary.LittleEndian.PutUint64(h[20:28], uint64(encodeTime(mark.Add(-time.Nanosecond))))
	binary.LittleEndian.PutUint32(h[28:32], crc32.Checksum(h[:28], castagnoli))
	if _, err := w.Write(h[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// Section writes one CRC-guarded section.
func (sw *Writer) Section(kind uint8, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	sw.buf = sw.buf[:0]
	sw.buf = append(sw.buf, kind)
	sw.buf = binary.LittleEndian.AppendUint32(sw.buf, uint32(len(payload)))
	sw.buf = append(sw.buf, payload...)
	sw.buf = binary.LittleEndian.AppendUint32(sw.buf, crc32.Checksum(sw.buf, castagnoli))
	_, sw.err = sw.w.Write(sw.buf)
	return sw.err
}

// Close writes the end marker. It does not close the underlying
// writer.
func (sw *Writer) Close() error {
	return sw.Section(secEnd, nil)
}

// Reader consumes one snapshot written by Writer.
type Reader struct {
	r   io.Reader
	hdr Header
	buf []byte
}

// NewReader reads and validates the snapshot header.
func NewReader(r io.Reader) (*Reader, error) {
	var h [headerSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if !bytes.Equal(h[0:8], magic[:]) {
		return nil, ErrBadMagic
	}
	if got := binary.LittleEndian.Uint32(h[28:32]); got != crc32.Checksum(h[:28], castagnoli) {
		return nil, fmt.Errorf("%w: header", ErrChecksum)
	}
	hdr := Header{
		Version: binary.LittleEndian.Uint16(h[8:10]),
		Kind:    h[10],
		Mark:    decodeTime(int64(binary.LittleEndian.Uint64(h[12:20]))),
		Horizon: decodeTime(int64(binary.LittleEndian.Uint64(h[20:28]))),
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, hdr.Version, Version)
	}
	if hdr.Mark.IsZero() || !hdr.Horizon.Equal(hdr.Mark.Add(-time.Nanosecond)) {
		return nil, fmt.Errorf("%w: inconsistent mark/horizon", ErrFormat)
	}
	return &Reader{r: r, hdr: hdr}, nil
}

// Header returns the validated header.
func (sr *Reader) Header() Header { return sr.hdr }

// Next returns the next section. At the end marker it returns io.EOF.
// The payload is only valid until the next call.
func (sr *Reader) Next() (kind uint8, payload []byte, err error) {
	var pre [5]byte
	if _, err := io.ReadFull(sr.r, pre[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: section header: %v", ErrTruncated, err)
	}
	kind = pre[0]
	n := binary.LittleEndian.Uint32(pre[1:5])
	if n > 1<<31 {
		return 0, nil, fmt.Errorf("%w: section length %d", ErrFormat, n)
	}
	// Read the payload in bounded chunks so the allocation grows only
	// with bytes actually present — a corrupted length field must fail
	// as ErrTruncated after the real input runs out, not reserve
	// gigabytes up front.
	const sectionChunk = 64 << 10
	var zero [sectionChunk]byte
	sr.buf = sr.buf[:0]
	for remaining := int(n); remaining > 0; {
		c := remaining
		if c > sectionChunk {
			c = sectionChunk
		}
		start := len(sr.buf)
		sr.buf = append(sr.buf, zero[:c]...)
		if _, err := io.ReadFull(sr.r, sr.buf[start:]); err != nil {
			return 0, nil, fmt.Errorf("%w: section payload: %v", ErrTruncated, err)
		}
		remaining -= c
	}
	var crcb [4]byte
	if _, err := io.ReadFull(sr.r, crcb[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: section checksum: %v", ErrTruncated, err)
	}
	crc := crc32.Checksum(pre[:], castagnoli)
	crc = crc32.Update(crc, castagnoli, sr.buf)
	if binary.LittleEndian.Uint32(crcb[:]) != crc {
		return 0, nil, fmt.Errorf("%w: section kind %d", ErrChecksum, kind)
	}
	if kind == secEnd {
		return 0, nil, io.EOF
	}
	return kind, sr.buf, nil
}

// Enc is an append-based canonical little-endian payload encoder.
type Enc struct {
	B []byte
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.B = append(e.B, v) }

// U16 appends a fixed-width little-endian uint16.
func (e *Enc) U16(v uint16) { e.B = binary.LittleEndian.AppendUint16(e.B, v) }

// U32 appends a fixed-width little-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.LittleEndian.AppendUint32(e.B, v) }

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.LittleEndian.AppendUint64(e.B, v) }

// F64 appends a float64 as its IEEE-754 bits.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Uvarint appends a varint-encoded uint64.
func (e *Enc) Uvarint(v uint64) { e.B = binary.AppendUvarint(e.B, v) }

// Varint appends a zigzag varint-encoded int64.
func (e *Enc) Varint(v int64) { e.B = binary.AppendVarint(e.B, v) }

// Time appends an instant (fixed-width; MinInt64 for the zero time).
func (e *Enc) Time(t time.Time) { e.U64(uint64(encodeTime(t))) }

// Raw appends bytes verbatim (the caller fixed the length elsewhere).
func (e *Enc) Raw(b []byte) { e.B = append(e.B, b...) }

// Dec decodes payloads written by Enc. Errors are sticky: after the
// first underflow every read returns zero values and Err is non-nil.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a payload.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err returns the first decode error (ErrTruncated-wrapped underflow).
func (d *Dec) Err() error { return d.err }

// Len returns the number of unread bytes.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload underflow", ErrTruncated)
	}
	d.b = nil
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// U16 reads a fixed-width little-endian uint16.
func (d *Dec) U16() uint16 {
	if len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

// U32 reads a fixed-width little-endian uint32.
func (d *Dec) U32() uint32 {
	if len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

// U64 reads a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// F64 reads a float64 from its IEEE-754 bits.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Uvarint reads a varint-encoded uint64.
func (d *Dec) Uvarint() uint64 {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Varint reads a zigzag varint-encoded int64.
func (d *Dec) Varint() int64 {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Time reads an instant written by Enc.Time.
func (d *Dec) Time() time.Time { return decodeTime(int64(d.U64())) }

// Raw reads n bytes verbatim. The returned slice aliases the payload.
func (d *Dec) Raw(n int) []byte {
	if n < 0 || len(d.b) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}
