package dispatch

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

var testLevel = netaddr6.Agg48

// testRecords synthesizes records spread over many /48s so every shard
// count partitions non-trivially. Length carries the caller-chosen
// batch tag (see the aliasing test), SrcPort a per-record sequence.
func testRecords(n int, tag uint16) []firewall.Record {
	rng := rand.New(rand.NewSource(int64(tag)*7919 + 1))
	base := netaddr6.MustPrefix("2001:db8::/36")
	ts := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		src := netaddr6.RandomSubprefix(base, 64, rng).Addr()
		recs = append(recs, firewall.Record{
			Time:    ts.Add(time.Duration(i) * time.Millisecond),
			Src:     src,
			Dst:     netaddr6.MustAddr("2001:db8:f::1"),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(i),
			DstPort: 22,
			Length:  tag,
		})
	}
	return recs
}

// TestDispatcherDeliveryParity verifies, at several shard counts, that
// every record is delivered exactly once, to the shard Partition
// routes it to, in dispatch order within the shard — the invariants
// the byte-identical merges of both sharded consumers rest on.
func TestDispatcherDeliveryParity(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := make([][]firewall.Record, shards)
			d := New(Config{Shards: shards, Level: testLevel, BatchSize: 64},
				func(shard int, recs []firewall.Record, mark time.Time) error {
					// Copy: the slice is recycled after return.
					got[shard] = append(got[shard], recs...)
					return nil
				})
			recs := testRecords(5000, 1)
			// Mixed feeding: batches of odd sizes plus the staged path.
			for i := 0; i < len(recs); {
				if i%3 == 0 {
					end := min(i+257, len(recs))
					if err := d.ProcessBatch(recs[i:end]); err != nil {
						t.Fatal(err)
					}
					i = end
				} else {
					if err := d.Process(recs[i]); err != nil {
						t.Fatal(err)
					}
					i++
				}
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			total := 0
			for shard, part := range got {
				total += len(part)
				for _, r := range part {
					if want := Partition(r.Src, testLevel, shards); want != shard {
						t.Fatalf("record %d on shard %d, Partition says %d", r.SrcPort, shard, want)
					}
				}
			}
			if total != len(recs) {
				t.Fatalf("delivered %d records, want %d", total, len(recs))
			}
			// Within a shard, records must keep dispatch order (SrcPort
			// ascends modulo uint16 wrap; 5000 < 65536 so no wrap).
			for shard, part := range got {
				for i := 1; i < len(part); i++ {
					if part[i].SrcPort < part[i-1].SrcPort {
						t.Fatalf("shard %d: record order broken at %d", shard, i)
					}
				}
			}
		})
	}
}

// TestDispatcherPoolAliasingSafety is the pool-aliasing safety test:
// batch buffers are recycled the moment a worker returns, so (a) a
// buffer must never be refilled while a worker still reads it, and
// (b) consumers must treat batches as valid only during the call.
// Slow workers re-verify their batch's integrity after yielding while
// the dispatcher races ahead refilling pooled buffers; any recycled-
// in-flight buffer shows up as a torn batch (mixed tags or mutated
// contents). Run under -race for the full effect.
func TestDispatcherPoolAliasingSafety(t *testing.T) {
	const shards = 4
	var torn atomic.Int32
	d := New(Config{Shards: shards, Level: testLevel, BatchSize: 128, Depth: 2},
		func(shard int, recs []firewall.Record, mark time.Time) error {
			if len(recs) == 0 {
				return nil
			}
			tag := recs[0].Length
			sum := uint64(0)
			for _, r := range recs {
				if r.Length != tag {
					torn.Add(1)
				}
				sum += uint64(r.SrcPort)
			}
			runtime.Gosched() // widen the in-flight window
			again := uint64(0)
			for _, r := range recs {
				if r.Length != tag {
					torn.Add(1)
				}
				again += uint64(r.SrcPort)
			}
			if sum != again {
				torn.Add(1)
			}
			return nil
		})
	for tag := uint16(2); tag < 40; tag++ {
		if err := d.ProcessBatch(testRecords(700, tag)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn-batch observations: pooled buffer recycled while in flight", n)
	}
}

// TestDispatcherErrorPath verifies the parameterized error path: the
// first worker error surfaces at a later call, Close re-reports it on
// every call, queued work drains, and no worker goroutine leaks.
func TestDispatcherErrorPath(t *testing.T) {
	boom := errors.New("boom")
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		d := New(Config{Shards: 4, Level: testLevel},
			func(shard int, recs []firewall.Record, mark time.Time) error {
				for _, r := range recs {
					if r.DstPort == 666 {
						return boom
					}
				}
				return nil
			})
		recs := testRecords(100, 1)
		recs[50].DstPort = 666
		if err := d.ProcessBatch(recs); err != nil {
			t.Fatalf("first ProcessBatch should defer the error, got %v", err)
		}
		// Poll until the worker has recorded it.
		for j := 0; d.ProcessBatch(nil) == nil; j++ {
			if j > 10_000 {
				t.Fatal("worker never surfaced the error")
			}
			time.Sleep(100 * time.Microsecond)
		}
		if err := d.Close(); !errors.Is(err, boom) {
			t.Fatalf("Close = %v, want %v", err, boom)
		}
		if err := d.Close(); !errors.Is(err, boom) {
			t.Fatalf("repeat Close = %v, want %v", err, boom)
		}
		if err := d.ProcessBatch(nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("ProcessBatch after Close = %v, want ErrClosed", err)
		}
	}
	if after := runtime.NumGoroutine(); after > before+5 {
		t.Fatalf("goroutines grew %d → %d: failed Close leaks workers", before, after)
	}
}

// TestDispatcherMarkOrdering verifies Mark flushes staged records
// first and reaches every shard — including shards that saw no
// records — ordered with the stream.
func TestDispatcherMarkOrdering(t *testing.T) {
	const shards = 4
	type event struct {
		recs int
		mark time.Time
	}
	events := make([][]event, shards)
	d := New(Config{Shards: shards, Level: testLevel, BatchSize: 1 << 20},
		func(shard int, recs []firewall.Record, mark time.Time) error {
			events[shard] = append(events[shard], event{recs: len(recs), mark: mark})
			return nil
		})
	// A handful of records (fewer shards covered than exist is fine),
	// staged but not yet flushed, then a Mark.
	recs := testRecords(10, 1)
	for _, r := range recs {
		if err := d.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	horizon := time.Date(2021, 4, 2, 0, 0, 0, 0, time.UTC)
	if err := d.Mark(horizon); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	marked := 0
	for shard, evs := range events {
		sawMark := false
		for i, ev := range evs {
			if !ev.mark.IsZero() {
				sawMark = true
				marked++
				if !ev.mark.Equal(horizon) {
					t.Fatalf("shard %d mark %v, want %v", shard, ev.mark, horizon)
				}
				// Records staged before the Mark must not arrive after it.
				for _, later := range evs[i+1:] {
					if later.recs > 0 {
						t.Fatalf("shard %d received records after the mark", shard)
					}
				}
			}
		}
		if !sawMark {
			t.Fatalf("shard %d missed the mark broadcast", shard)
		}
	}
	if marked != shards {
		t.Fatalf("mark reached %d shards, want %d", marked, shards)
	}
}

// TestDispatcherBarrier verifies Barrier establishes a happens-before
// edge: worker-written state is readable from the dispatching
// goroutine after it returns.
func TestDispatcherBarrier(t *testing.T) {
	const shards = 4
	counts := make([]int, shards) // worker-owned between barriers
	d := New(Config{Shards: shards, Level: testLevel, BatchSize: 32},
		func(shard int, recs []firewall.Record, mark time.Time) error {
			counts[shard] += len(recs)
			return nil
		})
	recs := testRecords(3000, 1)
	for _, r := range recs {
		if err := d.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(recs) {
		t.Fatalf("after Barrier %d records visible, want %d (staged records must flush first)", total, len(recs))
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != ErrClosed {
		t.Fatalf("Barrier after Close = %v, want ErrClosed", err)
	}
}

// TestDispatcherSingleShardTransfer verifies the single-shard fast
// path hands whole staged batches through (BatchSize records at a
// time) rather than re-chunking, and that Close flushes the tail.
func TestDispatcherSingleShardTransfer(t *testing.T) {
	var sizes []int
	d := New(Config{Shards: 1, Level: testLevel, BatchSize: 64},
		func(shard int, recs []firewall.Record, mark time.Time) error {
			sizes = append(sizes, len(recs))
			return nil
		})
	for _, r := range testRecords(200, 1) {
		if err := d.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	want := []int{64, 64, 64, 8}
	if len(sizes) != len(want) {
		t.Fatalf("batch sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("batch sizes %v, want %v", sizes, want)
		}
	}
}

// TestBatchArena sanity-checks the pooled buffer helpers.
func TestBatchArena(t *testing.T) {
	b := GetBatch(100)
	if len(*b) != 0 || cap(*b) < 100 {
		t.Fatalf("GetBatch: len %d cap %d", len(*b), cap(*b))
	}
	*b = append(*b, firewall.Record{SrcPort: 1})
	PutBatch(b)
	b2 := GetBatch(10)
	if len(*b2) != 0 {
		t.Fatal("recycled buffer not emptied")
	}
	PutBatch(b2)
	PutBatch(nil) // must not panic
}
