// Package dispatch provides the shared worker/staging/dispatch
// scaffolding for sharded record consumers — the scaffolding that was
// previously duplicated between core.ShardedDetector and
// ids.ShardedEngine.
//
// # Sharding invariant
//
// Records are partitioned by their source address aggregated to the
// *coarsest* configured level (Config.Level, normally
// CoarsestLevel(cfg.Levels)). Every finer aggregate of a source nests
// inside its coarsest prefix, so per-source state at every aggregation
// level lives in exactly one shard, and a deterministic merge of the
// per-shard results is byte-identical to a single serial consumer's
// output at any shard count. Consumers own their per-shard state and
// the merge; the dispatcher owns partitioning, staging, the worker
// goroutines, and their shutdown.
//
// # Pooled ownership model
//
// Dispatch is allocation-flat in steady state: per-shard batch buffers
// come from a process-wide sync.Pool arena (GetBatch/PutBatch) shared
// with the pipeline sources. The dispatching goroutine partitions each
// incoming run into pooled buffers and hands each buffer to its shard's
// channel; the worker goroutine recycles the buffer into the pool
// after the Worker callback returns. The single-shard fast path hands
// the staging buffer itself to the worker and replaces it from the
// pool, so even the staged Process path copies each record exactly
// once. The contract mirrors pipeline batch ownership: a Worker may
// read (and a consumer may compact) the slice only for the duration of
// the call, and anything that retains records beyond it must copy —
// after the call returns, the buffer re-enters the pool and WILL be
// overwritten by a later batch.
//
// # Error path
//
// The error path is parameterized by the Worker: detector workers can
// fail (time-order violations), IDS workers cannot. The first Worker
// error is recorded and surfaces at the next Process/ProcessBatch/
// Mark/Barrier call and again at Close; after a failure, workers keep
// draining (and recycling) queued batches without processing them so
// Close never leaks a goroutine. Consumers whose workers never fail
// simply ignore the returned errors.
package dispatch

import (
	"errors"
	"math/bits"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// CoarsestLevel returns the coarsest (smallest prefix length) of the
// given aggregation levels — the partition level for sharded consumers:
// every finer aggregate of a source nests inside its coarsest prefix,
// so state at every level lands in exactly one shard.
func CoarsestLevel(levels []netaddr6.AggLevel) netaddr6.AggLevel {
	coarsest := levels[0]
	for _, l := range levels {
		if l < coarsest {
			coarsest = l
		}
	}
	return coarsest
}

// Partition routes a source address to one of n shards by its prefix
// at the partition level. Every sharded consumer uses it (via
// Dispatcher or directly), so a record always lands on the same shard
// index regardless of which consumer processes it.
func Partition(src netip.Addr, level netaddr6.AggLevel, n int) int {
	if n <= 1 {
		return 0
	}
	key := netaddr6.ToU128(src).Mask(int(level))
	// splitmix-style finalizer over the masked 128-bit key.
	x := key.Hi ^ bits.RotateLeft64(key.Lo, 31)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(n))
}

// batchPool is the process-wide batch arena. Entries are pointers so
// Get/Put never allocate for the interface conversion; capacities grow
// to the largest batch dispatched and then stabilize.
var batchPool = sync.Pool{New: func() any { return new([]firewall.Record) }}

// poolGets and poolMisses count GetBatch calls and the subset that
// had to allocate (pool empty or buffer under capacity). Their ratio
// is the pool hit rate the metrics registry exports; atomic because
// every pipeline goroutine touches the pool.
var poolGets, poolMisses atomic.Uint64

// PoolStats reports GetBatch traffic: total gets and the misses that
// allocated a fresh or larger buffer. Safe from any goroutine.
func PoolStats() (gets, misses uint64) {
	return poolGets.Load(), poolMisses.Load()
}

// GetBatch returns an empty pooled record buffer with at least the
// given capacity. Pair with PutBatch when the buffer is no longer
// referenced anywhere (see the package doc's ownership model).
func GetBatch(capacity int) *[]firewall.Record {
	poolGets.Add(1)
	b := batchPool.Get().(*[]firewall.Record)
	if cap(*b) < capacity {
		poolMisses.Add(1)
		*b = make([]firewall.Record, 0, capacity)
	} else {
		*b = (*b)[:0]
	}
	return b
}

// PutBatch recycles a buffer obtained from GetBatch. The caller must
// not touch the slice afterwards; a later GetBatch anywhere in the
// process may overwrite it.
func PutBatch(b *[]firewall.Record) {
	if b == nil {
		return
	}
	*b = (*b)[:0]
	batchPool.Put(b)
}

// Worker consumes one unit of shard work: an eviction/tick horizon
// (when mark is non-zero, to apply before the records) and a run of
// records partitioned to this shard. The recs slice is only valid for
// the duration of the call — the dispatcher recycles it afterwards.
// Returning an error marks the dispatcher failed; see the package doc.
type Worker func(shard int, recs []firewall.Record, mark time.Time) error

// Config parameterizes a Dispatcher.
type Config struct {
	// Shards is the worker count; values below 1 are treated as 1.
	Shards int
	// Level is the partition aggregation level (normally
	// CoarsestLevel of the consumer's configured levels).
	Level netaddr6.AggLevel
	// BatchSize is the staging threshold for the single-record Process
	// path (default 2048) — large enough to amortize channel traffic,
	// small enough that streaming callers see timely progress.
	BatchSize int
	// Depth is the per-shard queue depth in batches (default 4).
	Depth int
}

// DefaultBatchSize is the default staging threshold for Process.
const DefaultBatchSize = 2048

// defaultDepth is the default per-shard channel depth.
const defaultDepth = 4

// msg is one unit of work for a shard: a run of records and/or a
// horizon, or a barrier request (done non-nil). buf is the pool token
// for recs; the worker recycles it after processing.
type msg struct {
	recs []firewall.Record
	buf  *[]firewall.Record
	mark time.Time
	done chan<- struct{}
}

// ErrClosed is returned by dispatcher operations after Close.
var ErrClosed = errors.New("dispatch: Dispatcher used after Close")

// Dispatcher fans a time-ordered record stream out across N worker
// shards. All methods must be called from a single dispatching
// goroutine; the Worker callback runs on the shard goroutines.
type Dispatcher struct {
	work  Worker
	level netaddr6.AggLevel
	n     int
	chans []chan msg
	wg    sync.WaitGroup
	// err holds the first worker error; workers race to set it and the
	// dispatching goroutine polls it so failures surface at the next
	// call rather than only at Close.
	err atomic.Pointer[error]

	// parts is the reused partition scratch (one slot per shard, nil
	// between dispatches); staged buffers single-record Process calls.
	parts    []*[]firewall.Record
	staged   *[]firewall.Record
	barrier  chan struct{}
	batch    int
	closed   bool
	closeErr error
}

// New returns a dispatcher running w across cfg.Shards worker
// goroutines. Callers must Close it to stop the workers.
func New(cfg Config, w Worker) *Dispatcher {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	depth := cfg.Depth
	if depth <= 0 {
		depth = defaultDepth
	}
	d := &Dispatcher{
		work:    w,
		level:   cfg.Level,
		n:       n,
		chans:   make([]chan msg, n),
		parts:   make([]*[]firewall.Record, n),
		barrier: make(chan struct{}, n),
		batch:   batch,
	}
	for i := range d.chans {
		d.chans[i] = make(chan msg, depth)
		d.wg.Add(1)
		go d.worker(i)
	}
	return d
}

// NumShards returns the worker count.
func (d *Dispatcher) NumShards() int { return d.n }

// QueueDepth reports the number of work units currently buffered in
// the shard channels, summed over shards — the backlog the workers
// have not yet picked up. Unlike every other method it is safe from
// any goroutine (len on a channel is a synchronized runtime read), so
// a metrics scrape can watch backpressure while the dispatching
// goroutine runs. The value is instantaneously stale by nature.
func (d *Dispatcher) QueueDepth() int {
	depth := 0
	for _, ch := range d.chans {
		depth += len(ch)
	}
	return depth
}

// Err returns the first worker error, if any.
func (d *Dispatcher) Err() error {
	if p := d.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (d *Dispatcher) worker(i int) {
	defer d.wg.Done()
	for m := range d.chans[i] {
		if m.done != nil {
			m.done <- struct{}{}
			continue
		}
		// After a failure, drain without processing so Close joins.
		if d.err.Load() == nil {
			if err := d.work(i, m.recs, m.mark); err != nil {
				d.err.CompareAndSwap(nil, &err)
			}
		}
		PutBatch(m.buf)
	}
}

// Process stages one record, dispatching when BatchSize accumulate.
func (d *Dispatcher) Process(r firewall.Record) error {
	if d.staged == nil {
		d.staged = GetBatch(d.batch)
	}
	*d.staged = append(*d.staged, r)
	if len(*d.staged) >= d.batch {
		return d.flushStaged()
	}
	return nil
}

// ProcessBatch partitions a run of records across the shards and
// dispatches it. The slice is not retained — records are copied into
// pooled per-shard buffers — so callers may reuse the backing array.
// Staged Process records are dispatched first to preserve order.
func (d *Dispatcher) ProcessBatch(recs []firewall.Record) error {
	if err := d.flushStaged(); err != nil {
		return err
	}
	return d.dispatch(recs, time.Time{})
}

// Mark broadcasts an eviction/tick horizon to every shard (after
// dispatching any staged records, so eviction sees them). Workers
// receive it as a non-zero mark, ordered with the record stream.
func (d *Dispatcher) Mark(t time.Time) error {
	if err := d.flushStaged(); err != nil {
		return err
	}
	return d.dispatch(nil, t)
}

// flushStaged dispatches the staging buffer. On the single-shard fast
// path the buffer itself is handed to the worker and replaced from the
// pool — no copy; multi-shard partitioning copies each record into its
// shard's pooled buffer exactly once.
func (d *Dispatcher) flushStaged() error {
	if d.staged == nil || len(*d.staged) == 0 {
		return nil
	}
	if err := d.checkLive(); err != nil {
		// The records cannot be delivered; drop them so a caller that
		// keeps Processing past the error does not grow the buffer
		// unboundedly.
		*d.staged = (*d.staged)[:0]
		return err
	}
	if d.n == 1 {
		b := d.staged
		d.staged = nil
		d.chans[0] <- msg{recs: *b, buf: b}
		return nil
	}
	err := d.dispatch(*d.staged, time.Time{})
	*d.staged = (*d.staged)[:0]
	return err
}

func (d *Dispatcher) checkLive() error {
	if d.closed {
		return ErrClosed
	}
	return d.Err()
}

func (d *Dispatcher) dispatch(recs []firewall.Record, mark time.Time) error {
	if err := d.checkLive(); err != nil {
		return err
	}
	if len(recs) == 0 && mark.IsZero() {
		return nil
	}
	if d.n == 1 {
		b := GetBatch(len(recs))
		*b = append(*b, recs...)
		d.chans[0] <- msg{recs: *b, buf: b, mark: mark}
		return nil
	}
	sizeHint := len(recs)/d.n + len(recs)/8 + 1
	// Adjacent records usually share a source (scan bursts, merged
	// ingest runs): reuse the previous record's partition instead of
	// re-hashing, which also keeps same-source runs adjacent within a
	// shard batch — the shape the detector/IDS grouped ProcessBatch
	// paths turn into single-probe lookups.
	var prevSrc netip.Addr
	prevIdx := -1
	for _, r := range recs {
		i := prevIdx
		if i < 0 || r.Src != prevSrc {
			i = Partition(r.Src, d.level, d.n)
			prevSrc, prevIdx = r.Src, i
		}
		p := d.parts[i]
		if p == nil {
			p = GetBatch(sizeHint)
			d.parts[i] = p
		}
		*p = append(*p, r)
	}
	for i, p := range d.parts {
		d.parts[i] = nil
		if p != nil {
			d.chans[i] <- msg{recs: *p, buf: p, mark: mark}
		} else if !mark.IsZero() {
			d.chans[i] <- msg{mark: mark}
		}
	}
	return nil
}

// Barrier blocks until every shard has processed all queued work
// (including any staged records, dispatched first), after which the
// dispatching goroutine may read shard-owned state directly — the
// channel round-trip establishes the happens-before edge. Returns the
// first worker error, if any.
func (d *Dispatcher) Barrier() error {
	if err := d.flushStaged(); err != nil {
		return err
	}
	if d.closed {
		return ErrClosed
	}
	for _, ch := range d.chans {
		ch <- msg{done: d.barrier}
	}
	for range d.chans {
		<-d.barrier
	}
	return d.Err()
}

// Close dispatches any staged records, stops the workers, and joins
// them. It is idempotent: repeat calls re-report the first worker
// error (or the close-time flush error). A worker error never skips
// the shutdown — the channels close and the workers drain and join
// either way, so a failed run cannot leak its shard goroutines.
func (d *Dispatcher) Close() error {
	if d.closed {
		if err := d.Err(); err != nil {
			return err
		}
		return d.closeErr
	}
	ferr := d.flushStaged()
	d.closed = true
	for _, ch := range d.chans {
		close(ch)
	}
	d.wg.Wait()
	if d.staged != nil {
		PutBatch(d.staged)
		d.staged = nil
	}
	d.closeErr = ferr
	if err := d.Err(); err != nil {
		return err
	}
	return ferr
}
