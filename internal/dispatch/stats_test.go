package dispatch

import (
	"testing"
	"time"

	"v6scan/internal/firewall"
)

func TestPoolStats(t *testing.T) {
	gets0, misses0 := PoolStats()
	b := GetBatch(64)
	PutBatch(b)
	b = GetBatch(64) // likely a hit, but the pool may shed under GC
	PutBatch(b)
	gets1, misses1 := PoolStats()
	if got := gets1 - gets0; got != 2 {
		t.Fatalf("gets delta = %d, want 2", got)
	}
	if misses1 < misses0 {
		t.Fatal("miss counter went backwards")
	}
	if misses1-misses0 > 2 {
		t.Fatalf("miss delta = %d, want ≤ 2", misses1-misses0)
	}
}

func TestQueueDepthDrainsToZero(t *testing.T) {
	d := New(Config{Shards: 4}, func(shard int, recs []firewall.Record, mark time.Time) error {
		return nil
	})
	defer d.Close()
	if err := d.Barrier(); err != nil {
		t.Fatal(err)
	}
	if got := d.QueueDepth(); got != 0 {
		t.Fatalf("QueueDepth after barrier = %d, want 0", got)
	}
}
