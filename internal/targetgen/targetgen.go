// Package targetgen implements the target-generation techniques the
// paper's related work surveys (Entropy/IP, 6Gen and successors) in a
// simplified, measurable form. The paper's discussion warns that
// large-scale IPv6 scanning stays rare only while "cheaply" finding
// destination addresses stays hard, and names target-generation
// advances as the factor most likely to change that; this package
// makes the threat model concrete and lets experiments quantify
// hit rates of learned generation versus random probing.
//
// Two strategies are provided:
//
//   - Model: a per-nybble frequency model trained on a seed set
//     (hitlist-style). Nybbles with low entropy are reproduced
//     verbatim; high-entropy nybbles are sampled from the learned
//     distribution. This captures the structure Entropy/IP exploits.
//   - NearbyExpansion: enumerate addresses adjacent to a known-active
//     seed — the pattern the paper infers for scanners discovering
//     non-DNS addresses next to DNS-exposed ones (Section 3.3).
package targetgen

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"v6scan/internal/netaddr6"
)

// nybbles is the number of 4-bit positions in an IPv6 address.
const nybbles = 32

// Model is a per-nybble frequency model of IPv6 addresses.
type Model struct {
	counts [nybbles][16]uint64
	total  uint64
}

// Train builds a model from seed addresses (e.g. a hitlist or the
// DNS-exposed addresses a scanner harvested).
func Train(seeds []netip.Addr) (*Model, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("targetgen: empty seed set")
	}
	m := &Model{}
	for _, a := range seeds {
		if !netaddr6.IsIPv6(a) {
			return nil, fmt.Errorf("targetgen: seed %v is not IPv6", a)
		}
		b := a.As16()
		for i := 0; i < nybbles; i++ {
			m.counts[i][nybbleAt(b, i)]++
		}
		m.total++
	}
	return m, nil
}

func nybbleAt(b [16]byte, i int) int {
	v := b[i/2]
	if i%2 == 0 {
		return int(v >> 4)
	}
	return int(v & 0xF)
}

func setNybble(b *[16]byte, i, v int) {
	if i%2 == 0 {
		b[i/2] = b[i/2]&0x0F | byte(v)<<4
	} else {
		b[i/2] = b[i/2]&0xF0 | byte(v)
	}
}

// Entropy returns the per-nybble Shannon entropy profile in bits
// (0 = constant nybble, 4 = uniform). This is the Entropy/IP view of
// the seed population's structure.
func (m *Model) Entropy() [nybbles]float64 {
	var out [nybbles]float64
	for i := 0; i < nybbles; i++ {
		var h float64
		for _, c := range m.counts[i] {
			if c == 0 {
				continue
			}
			p := float64(c) / float64(m.total)
			h -= p * math.Log2(p)
		}
		out[i] = h
	}
	return out
}

// Generate samples n candidate addresses from the model: each nybble
// drawn independently from its learned distribution. Duplicates are
// removed; the result may be shorter than n for very structured
// models.
func (m *Model) Generate(n int, rng *rand.Rand) []netip.Addr {
	seen := make(map[netip.Addr]struct{}, n)
	out := make([]netip.Addr, 0, n)
	// Cap attempts so fully-constant models terminate.
	for attempts := 0; len(out) < n && attempts < 4*n+16; attempts++ {
		var b [16]byte
		for i := 0; i < nybbles; i++ {
			setNybble(&b, i, m.sampleNybble(i, rng))
		}
		a := netip.AddrFrom16(b)
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}

func (m *Model) sampleNybble(i int, rng *rand.Rand) int {
	x := rng.Uint64() % m.total
	var cum uint64
	for v, c := range m.counts[i] {
		cum += c
		if x < cum {
			return v
		}
	}
	return 0
}

// TopPrefixes returns the most common /plen prefixes of the seed
// population — the "dense regions" 6Gen-style generators probe first.
// It recomputes from a fresh seed pass, so callers keep their seeds.
func TopPrefixes(seeds []netip.Addr, plen, n int) []netip.Prefix {
	counts := make(map[netip.Prefix]int)
	for _, a := range seeds {
		p, err := a.Prefix(plen)
		if err != nil {
			continue
		}
		counts[p]++
	}
	out := make([]netip.Prefix, 0, len(counts))
	for p := range counts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if counts[out[i]] != counts[out[j]] {
			return counts[out[i]] > counts[out[j]]
		}
		return out[i].Addr().Compare(out[j].Addr()) < 0
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// NearbyExpansion enumerates the addresses sharing the seed's /plen
// (excluding the seed itself), up to max addresses — the strategy the
// paper hypothesizes for discovering not-in-DNS telescope addresses
// near DNS-exposed ones ("nearby" at /124…/112).
func NearbyExpansion(seed netip.Addr, plen, max int) []netip.Addr {
	if plen < 0 || plen > 128 {
		return nil
	}
	span := 128 - plen
	var total uint64
	if span >= 63 {
		total = math.MaxUint64
	} else {
		total = uint64(1) << span
	}
	base := netaddr6.ToU128(seed).Mask(plen)
	out := make([]netip.Addr, 0, max)
	for i := uint64(0); i < total && len(out) < max; i++ {
		a := base.Add(i).ToAddr()
		if a == seed {
			continue
		}
		out = append(out, a)
	}
	return out
}

// HitRate measures how many generated candidates are contained in a
// target population — the figure of merit for a target-generation
// algorithm (and the quantity the paper argues keeps IPv6 scanning
// expensive when it is low).
func HitRate(candidates []netip.Addr, population map[netip.Addr]struct{}) float64 {
	if len(candidates) == 0 {
		return 0
	}
	hits := 0
	for _, a := range candidates {
		if _, ok := population[a]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(candidates))
}
