package targetgen

import (
	"math/rand"
	"net/netip"
	"testing"

	"v6scan/internal/netaddr6"
)

// structuredSeeds builds a hitlist-like population: low-HW IIDs inside
// a handful of /48s.
func structuredSeeds(n int, rng *rand.Rand) []netip.Addr {
	base := netaddr6.MustPrefix("2001:db8::/32")
	out := make([]netip.Addr, 0, n)
	seen := map[netip.Addr]bool{}
	for len(out) < n {
		p48 := netaddr6.NthSubprefix(base, 48, uint64(rng.Intn(4)))
		p64 := netaddr6.NthSubprefix(p48, 64, uint64(rng.Intn(256)))
		a := netaddr6.LowHammingAddrIn(p64, 2, rng)
		if !seen[a] {
			seen[a] = true
			out = append(out, a)
		}
	}
	return out
}

func TestTrainRejectsBadInput(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty seed set accepted")
	}
	if _, err := Train([]netip.Addr{netip.MustParseAddr("10.0.0.1")}); err == nil {
		t.Error("IPv4 seed accepted")
	}
}

func TestEntropyProfile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := Train(structuredSeeds(2000, rng))
	if err != nil {
		t.Fatal(err)
	}
	e := m.Entropy()
	// The /32 prefix nybbles are constant → zero entropy.
	for i := 0; i < 8; i++ {
		if e[i] != 0 {
			t.Errorf("prefix nybble %d entropy %.2f, want 0", i, e[i])
		}
	}
	// The /64-selection nybbles vary → positive entropy.
	var mid float64
	for i := 12; i < 16; i++ {
		mid += e[i]
	}
	if mid == 0 {
		t.Error("subnet nybbles have zero entropy")
	}
	// IID tail is structured → far below the 4-bit maximum.
	for i := 16; i < 30; i++ {
		if e[i] > 2 {
			t.Errorf("IID nybble %d entropy %.2f, want structured", i, e[i])
		}
	}
}

func TestGenerateStaysInLearnedSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seeds := structuredSeeds(2000, rng)
	m, err := Train(seeds)
	if err != nil {
		t.Fatal(err)
	}
	space := netaddr6.MustPrefix("2001:db8::/32")
	gen := m.Generate(500, rng)
	if len(gen) < 400 {
		t.Fatalf("generated only %d", len(gen))
	}
	for _, a := range gen {
		if !space.Contains(a) {
			t.Fatalf("candidate %v escaped the learned /32", a)
		}
	}
	// Generated IIDs inherit the structure: mean HW far below random.
	sum := 0
	for _, a := range gen {
		sum += netaddr6.HammingWeightIID(a)
	}
	if mean := float64(sum) / float64(len(gen)); mean > 8 {
		t.Errorf("generated mean IID HW %.1f, want structured", mean)
	}
}

func TestGenerateBeatsRandomHitRate(t *testing.T) {
	// The package's reason to exist: learned generation must hit a
	// structured population orders of magnitude better than random
	// probing of the covering /32.
	rng := rand.New(rand.NewSource(3))
	seeds := structuredSeeds(4000, rng)
	population := make(map[netip.Addr]struct{}, len(seeds))
	for _, a := range seeds {
		population[a] = struct{}{}
	}
	m, err := Train(seeds[:2000]) // train on half
	if err != nil {
		t.Fatal(err)
	}
	learned := m.Generate(3000, rng)
	random := make([]netip.Addr, 3000)
	for i := range random {
		random[i] = netaddr6.RandomAddrIn(netaddr6.MustPrefix("2001:db8::/32"), rng)
	}
	hrLearned := HitRate(learned, population)
	hrRandom := HitRate(random, population)
	if hrRandom > 0 {
		t.Logf("random got lucky: %.6f", hrRandom)
	}
	if hrLearned == 0 {
		t.Fatal("learned generation hit nothing")
	}
	if hrLearned <= 100*hrRandom {
		t.Errorf("learned %.4f vs random %.6f: want ≫", hrLearned, hrRandom)
	}
}

func TestGenerateConstantModelTerminates(t *testing.T) {
	m, err := Train([]netip.Addr{netaddr6.MustAddr("2001:db8::1")})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	out := m.Generate(10, rng)
	if len(out) != 1 || out[0] != netaddr6.MustAddr("2001:db8::1") {
		t.Errorf("constant model generated %v", out)
	}
}

func TestTopPrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seeds := structuredSeeds(1000, rng)
	top := TopPrefixes(seeds, 48, 3)
	if len(top) != 3 {
		t.Fatalf("got %d prefixes", len(top))
	}
	base := netaddr6.MustPrefix("2001:db8::/32")
	for _, p := range top {
		if p.Bits() != 48 || !netaddr6.PrefixContains(base, p) {
			t.Fatalf("bad prefix %v", p)
		}
	}
}

func TestNearbyExpansion(t *testing.T) {
	seed := netaddr6.MustAddr("2001:db8::10")
	got := NearbyExpansion(seed, 124, 100)
	if len(got) != 15 {
		t.Fatalf("/124 expansion size %d, want 15", len(got))
	}
	for _, a := range got {
		if a == seed {
			t.Fatal("seed included in expansion")
		}
		if !netaddr6.SameSlash(a, seed, 124) {
			t.Fatalf("%v outside the /124", a)
		}
	}
	// max caps the enumeration.
	if n := len(NearbyExpansion(seed, 112, 50)); n != 50 {
		t.Errorf("capped expansion size %d", n)
	}
	if NearbyExpansion(seed, 130, 10) != nil {
		t.Error("invalid plen accepted")
	}
}

func TestHitRateEdges(t *testing.T) {
	if HitRate(nil, nil) != 0 {
		t.Error("empty candidates")
	}
	pop := map[netip.Addr]struct{}{netaddr6.MustAddr("2001:db8::1"): {}}
	if HitRate([]netip.Addr{netaddr6.MustAddr("2001:db8::1")}, pop) != 1 {
		t.Error("full hit rate")
	}
}
