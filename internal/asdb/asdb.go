// Package asdb models the routing-registry view the paper derives from
// BGP and WHOIS: autonomous systems with a type and country label, and
// the IPv6 prefixes allocated to or announced by them.
//
// The paper attributes every detected scan source to an origin AS and
// classifies ASes as datacenter, cloud, transit, ISP, research,
// university, or cybersecurity networks (Table 2). This package
// provides the registry and a longest-prefix-match attribution lookup;
// the synthetic census of internal/scanner populates it.
package asdb

import (
	"fmt"
	"net/netip"
	"sort"

	"v6scan/internal/netaddr6"
	"v6scan/internal/rtrie"
)

// Type classifies a network, mirroring the labels used in Table 2 of
// the paper.
type Type int

// Network types observed among scan origins in the paper.
const (
	TypeUnknown Type = iota
	TypeDatacenter
	TypeCloud
	TypeCloudTransit
	TypeTransit
	TypeISP
	TypeResearch
	TypeUniversity
	TypeCybersecurity
	TypeCDN
)

var typeNames = map[Type]string{
	TypeUnknown:       "Unknown",
	TypeDatacenter:    "Datacenter",
	TypeCloud:         "Cloud",
	TypeCloudTransit:  "Cloud/Transit",
	TypeTransit:       "Transit",
	TypeISP:           "ISP",
	TypeResearch:      "Research",
	TypeUniversity:    "University",
	TypeCybersecurity: "Cybersecurity",
	TypeCDN:           "CDN",
}

// String returns the Table-2 style label, e.g. "Cloud/Transit".
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// AS describes an autonomous system.
type AS struct {
	Number  int    // AS number (synthetic in simulations)
	Name    string // organization name
	Type    Type   // network classification
	Country string // ISO 3166-1 alpha-2, e.g. "CN", "US", "DE"
}

// Label returns the anonymized Table-2 style description,
// e.g. "Datacenter (CN)".
func (a AS) Label() string {
	return fmt.Sprintf("%s (%s)", a.Type, a.Country)
}

// Allocation is a prefix registered to an AS. Kind distinguishes RIR
// allocations from more-specific BGP announcements; the AS #18 case
// study hinges on a /32 RIR allocation announced as a single prefix
// whose owner sources scans from /48s spread across it.
type Allocation struct {
	Prefix netip.Prefix
	ASN    int
	Kind   AllocationKind
}

// AllocationKind tags how a prefix entered the registry.
type AllocationKind int

// Allocation kinds.
const (
	KindRIRAllocation AllocationKind = iota // RIR → LIR allocation (e.g. /32)
	KindBGPAnnounced                        // announced in BGP (e.g. /48 PI)
	KindCustomer                            // provider → customer delegation
)

// String names the allocation kind.
func (k AllocationKind) String() string {
	switch k {
	case KindRIRAllocation:
		return "rir"
	case KindBGPAnnounced:
		return "bgp"
	case KindCustomer:
		return "customer"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// DB is the registry: AS metadata plus a longest-prefix-match table of
// allocations. The zero value is empty and ready to use.
type DB struct {
	ases  map[int]AS
	table rtrie.Trie[Allocation]
}

// New returns an empty registry.
func New() *DB {
	return &DB{ases: make(map[int]AS)}
}

// AddAS registers AS metadata, replacing any previous entry with the
// same number.
func (db *DB) AddAS(a AS) {
	if db.ases == nil {
		db.ases = make(map[int]AS)
	}
	db.ases[a.Number] = a
}

// AS returns the metadata for an AS number.
func (db *DB) AS(asn int) (AS, bool) {
	a, ok := db.ases[asn]
	return a, ok
}

// Allocate registers a prefix for an AS. The AS need not be registered
// yet, but attribution of addresses under the prefix will return
// zero-valued metadata until it is.
func (db *DB) Allocate(p netip.Prefix, asn int, kind AllocationKind) error {
	if !netaddr6.IsIPv6(p.Addr()) {
		return fmt.Errorf("asdb: allocation %v is not IPv6", p)
	}
	return db.table.Insert(p.Masked(), Allocation{Prefix: p.Masked(), ASN: asn, Kind: kind})
}

// Attribute maps an address to its origin AS via longest-prefix match,
// the way the paper attributes scan sources using BGP data. The second
// return is the matched allocation.
func (db *DB) Attribute(addr netip.Addr) (AS, Allocation, bool) {
	alloc, _, ok := db.table.Lookup(addr)
	if !ok {
		return AS{}, Allocation{}, false
	}
	a := db.ases[alloc.ASN] // zero AS if metadata missing
	if a.Number == 0 {
		a.Number = alloc.ASN
	}
	return a, alloc, true
}

// AllocationOf returns the most specific registered allocation covering
// addr, e.g. to answer "which /32 does this scanning /48 belong to?".
func (db *DB) AllocationOf(addr netip.Addr) (Allocation, bool) {
	alloc, _, ok := db.table.Lookup(addr)
	return alloc, ok
}

// Allocations returns every registered allocation, sorted by prefix.
func (db *DB) Allocations() []Allocation {
	var out []Allocation
	db.table.Walk(func(_ netip.Prefix, a Allocation) bool {
		out = append(out, a)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Prefix.Addr().Compare(out[j].Prefix.Addr()); c != 0 {
			return c < 0
		}
		return out[i].Prefix.Bits() < out[j].Prefix.Bits()
	})
	return out
}

// ASNumbers returns all registered AS numbers in ascending order.
func (db *DB) ASNumbers() []int {
	out := make([]int, 0, len(db.ases))
	for n := range db.ases {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Len returns the number of registered allocations.
func (db *DB) Len() int { return db.table.Len() }
