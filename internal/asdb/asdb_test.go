package asdb

import (
	"net/netip"
	"testing"

	"v6scan/internal/netaddr6"
)

func TestTypeString(t *testing.T) {
	if TypeCloudTransit.String() != "Cloud/Transit" {
		t.Errorf("got %q", TypeCloudTransit)
	}
	if Type(99).String() != "Type(99)" {
		t.Errorf("got %q", Type(99))
	}
}

func TestASLabel(t *testing.T) {
	a := AS{Number: 1, Type: TypeDatacenter, Country: "CN"}
	if a.Label() != "Datacenter (CN)" {
		t.Errorf("got %q", a.Label())
	}
}

func TestAttribute(t *testing.T) {
	db := New()
	db.AddAS(AS{Number: 64500, Name: "ExampleNet", Type: TypeISP, Country: "DE"})
	db.AddAS(AS{Number: 64501, Name: "ExampleCloud", Type: TypeCloud, Country: "US"})
	if err := db.Allocate(netaddr6.MustPrefix("2001:db8::/32"), 64500, KindRIRAllocation); err != nil {
		t.Fatal(err)
	}
	if err := db.Allocate(netaddr6.MustPrefix("2001:db8:ff::/48"), 64501, KindBGPAnnounced); err != nil {
		t.Fatal(err)
	}

	a, alloc, ok := db.Attribute(netaddr6.MustAddr("2001:db8::1"))
	if !ok || a.Number != 64500 || alloc.Kind != KindRIRAllocation {
		t.Errorf("attribute /32: %+v %+v %v", a, alloc, ok)
	}
	a, alloc, ok = db.Attribute(netaddr6.MustAddr("2001:db8:ff::1"))
	if !ok || a.Number != 64501 || alloc.Prefix.Bits() != 48 {
		t.Errorf("attribute /48: %+v %+v %v", a, alloc, ok)
	}
	if _, _, ok := db.Attribute(netaddr6.MustAddr("2001:db9::1")); ok {
		t.Error("unallocated address attributed")
	}
}

func TestAttributeUnknownASMetadata(t *testing.T) {
	db := New()
	db.Allocate(netaddr6.MustPrefix("2001:db8::/32"), 64999, KindRIRAllocation)
	a, _, ok := db.Attribute(netaddr6.MustAddr("2001:db8::1"))
	if !ok {
		t.Fatal("no attribution")
	}
	if a.Number != 64999 {
		t.Errorf("expected ASN backfill, got %+v", a)
	}
	if a.Type != TypeUnknown {
		t.Errorf("expected unknown type, got %v", a.Type)
	}
}

func TestAllocateRejectsIPv4(t *testing.T) {
	db := New()
	if err := db.Allocate(netip.MustParsePrefix("10.0.0.0/8"), 1, KindRIRAllocation); err == nil {
		t.Error("IPv4 allocation accepted")
	}
}

func TestAllocationsSortedAndLen(t *testing.T) {
	db := New()
	db.Allocate(netaddr6.MustPrefix("2001:db9::/32"), 2, KindRIRAllocation)
	db.Allocate(netaddr6.MustPrefix("2001:db8::/32"), 1, KindRIRAllocation)
	db.Allocate(netaddr6.MustPrefix("2001:db8:1::/48"), 3, KindCustomer)
	all := db.Allocations()
	if db.Len() != 3 || len(all) != 3 {
		t.Fatalf("len = %d/%d", db.Len(), len(all))
	}
	if all[0].ASN != 1 || all[1].ASN != 3 || all[2].ASN != 2 {
		t.Errorf("order: %+v", all)
	}
}

func TestASNumbers(t *testing.T) {
	db := New()
	db.AddAS(AS{Number: 20})
	db.AddAS(AS{Number: 10})
	got := db.ASNumbers()
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Errorf("got %v", got)
	}
}

func TestAllocationKindString(t *testing.T) {
	if KindRIRAllocation.String() != "rir" || KindBGPAnnounced.String() != "bgp" || KindCustomer.String() != "customer" {
		t.Error("kind names wrong")
	}
	if AllocationKind(9).String() != "kind(9)" {
		t.Error("unknown kind name wrong")
	}
}
