// Package scanner simulates the scan actors the paper observes. Each
// actor combines four behavioural dimensions the paper identifies:
//
//   - source addressing: a single /128, a handful of addresses in one
//     /64, per-packet variation of low source bits (AS #9), or sources
//     spread across hundreds of /48s inside a /32 allocation (AS #18);
//   - target selection: DNS-exposed telescope addresses (hitlist-style),
//     mixtures including non-DNS addresses, or exposed→hidden pair
//     sweeps (the "nearby" discovery pattern of Section 3.3);
//   - port strategy: a single service, a fixed multi-port list, or wide
//     port ranges (AS #3 probes 45k ports);
//   - temporal shape: continuous streams, daily burst slots rotating
//     across source addresses, or one-shot episodes.
//
// The census in census.go wires concrete actors mirroring Table 2.
package scanner

import (
	"math/rand"
	"net/netip"

	"v6scan/internal/netaddr6"
)

// SourcePlan yields the source address for a burst or packet.
// Implementations are deterministic functions of (day index, slot,
// packet index, rng) so simulations replay identically under a seed.
type SourcePlan interface {
	// BurstSource returns the source used for a whole burst.
	BurstSource(dayIdx, slot int, rng *rand.Rand) netip.Addr
	// PacketSource returns the source for one packet within a burst,
	// defaulting to the burst source for single-address strategies.
	PacketSource(burstSrc netip.Addr, rng *rand.Rand) netip.Addr
}

// SingleSource always emits from one address (AS #1: all 839M packets
// from a single IPv6 address).
type SingleSource struct{ Addr netip.Addr }

// BurstSource implements SourcePlan.
func (s SingleSource) BurstSource(_, _ int, _ *rand.Rand) netip.Addr { return s.Addr }

// PacketSource implements SourcePlan.
func (s SingleSource) PacketSource(b netip.Addr, _ *rand.Rand) netip.Addr { return b }

// RotatingSources cycles a fixed address list by slot: slot k of day d
// uses address (d*slotsPerDay+k) mod len. This produces the
// interleaving the paper observes where /128 sessions are short and
// separated while the covering /64 session is continuous.
type RotatingSources struct {
	Addrs       []netip.Addr
	SlotsPerDay int
}

// BurstSource implements SourcePlan.
func (s RotatingSources) BurstSource(dayIdx, slot int, _ *rand.Rand) netip.Addr {
	i := (dayIdx*s.SlotsPerDay + slot) % len(s.Addrs)
	return s.Addrs[i]
}

// PacketSource implements SourcePlan.
func (s RotatingSources) PacketSource(b netip.Addr, _ *rand.Rand) netip.Addr { return b }

// VaryLowBits emits every packet from a base address with its low bits
// randomized over a bounded variant set — the AS #9 pattern ("carrying
// out IPv6 scans and varying the lowest 7–9 bits in the source IP
// addresses").
type VaryLowBits struct {
	Bases    []netip.Addr // one or more /64 bases (AS #9 used two /64s)
	Variants int          // distinct low-bit values used per base
}

// BurstSource implements SourcePlan; the burst source is nominal since
// every packet re-picks its own source.
func (s VaryLowBits) BurstSource(dayIdx, slot int, _ *rand.Rand) netip.Addr {
	return s.Bases[(dayIdx+slot)%len(s.Bases)]
}

// PacketSource implements SourcePlan: a random base with randomized low
// bits, so all len(Bases)*Variants /128s stay simultaneously active and
// each accrues destinations continuously (how the real AS #9 entity's
// hundreds of /128s all crossed the scan threshold). Variants must be a
// power of two.
func (s VaryLowBits) PacketSource(_ netip.Addr, rng *rand.Rand) netip.Addr {
	b := s.Bases[rng.Intn(len(s.Bases))]
	v := uint64(rng.Intn(s.Variants))
	return netaddr6.WithIID(b, netaddr6.IID(b)&^uint64(s.Variants-1)|v)
}

// TargetPlan yields destination addresses.
type TargetPlan interface {
	Target(rng *rand.Rand) netip.Addr
}

// PoolTargets samples uniformly from a fixed pool. Pools mixing
// DNS-exposed and hidden telescope addresses reproduce the paper's
// in-DNS/not-in-DNS target provenance distributions.
type PoolTargets struct{ Pool []netip.Addr }

// Target implements TargetPlan.
func (t PoolTargets) Target(rng *rand.Rand) netip.Addr {
	return t.Pool[rng.Intn(len(t.Pool))]
}

// PairSweep probes machine pairs in order: the DNS-exposed address
// first, then its non-DNS sibling. A scanner behaving this way explains
// the paper's finding that for some sources every not-in-DNS target had
// a previous nearby in-DNS probe.
type PairSweep struct {
	Pairs [][2]netip.Addr // [exposed, hidden]
	pos   int
	half  int
}

// Target implements TargetPlan: exposed, hidden, exposed, hidden, ...
func (t *PairSweep) Target(_ *rand.Rand) netip.Addr {
	p := t.Pairs[t.pos%len(t.Pairs)]
	a := p[t.half]
	t.half++
	if t.half == 2 {
		t.half = 0
		t.pos++
	}
	return a
}

// MixPools samples from an exposed pool with probability 1-HiddenShare
// and from a hidden pool otherwise.
type MixPools struct {
	Exposed     []netip.Addr
	Hidden      []netip.Addr
	HiddenShare float64
}

// Target implements TargetPlan.
func (t MixPools) Target(rng *rand.Rand) netip.Addr {
	if len(t.Hidden) > 0 && rng.Float64() < t.HiddenShare {
		return t.Hidden[rng.Intn(len(t.Hidden))]
	}
	return t.Exposed[rng.Intn(len(t.Exposed))]
}

// PortPlan yields destination ports for a burst.
type PortPlan interface {
	// BurstPorts returns the ports targeted within one burst. Callers
	// must not retain the slice across calls.
	BurstPorts(dayIdx, slot int, rng *rand.Rand) []uint16
}

// SinglePort targets one service in every burst (AS #18: TCP/22 only).
type SinglePort struct{ Port uint16 }

// BurstPorts implements PortPlan.
func (p SinglePort) BurstPorts(_, _ int, _ *rand.Rand) []uint16 { return []uint16{p.Port} }

// PortList targets a fixed multi-port list every burst.
type PortList struct{ Ports []uint16 }

// BurstPorts implements PortPlan.
func (p PortList) BurstPorts(_, _ int, _ *rand.Rand) []uint16 { return p.Ports }

// ProgressivePorts targets a single port per burst, advancing through a
// list across bursts — the "distinct scanning episodes per port" entity
// of Appendix A.3 that inflates single-port scan counts at /128.
type ProgressivePorts struct {
	Ports       []uint16
	SlotsPerDay int
	buf         [1]uint16
}

// BurstPorts implements PortPlan.
func (p *ProgressivePorts) BurstPorts(dayIdx, slot int, _ *rand.Rand) []uint16 {
	i := (dayIdx*p.SlotsPerDay + slot) % len(p.Ports)
	p.buf[0] = p.Ports[i]
	return p.buf[:]
}

// WidePortRange samples K ports uniformly from [Lo, Hi] per burst
// (AS #3 targets almost the entire TCP port space).
type WidePortRange struct {
	Lo, Hi   uint16
	PerBurst int
	buf      []uint16
}

// BurstPorts implements PortPlan.
func (p *WidePortRange) BurstPorts(_, _ int, rng *rand.Rand) []uint16 {
	if cap(p.buf) < p.PerBurst {
		p.buf = make([]uint16, p.PerBurst)
	}
	p.buf = p.buf[:p.PerBurst]
	span := int(p.Hi) - int(p.Lo) + 1
	for i := range p.buf {
		p.buf[i] = p.Lo + uint16(rng.Intn(span))
	}
	return p.buf
}

// SwitchPorts changes plan at a fixed day index — AS #1 scanned ≈444
// ports continuously, then switched to a handful of ports in May 2021.
type SwitchPorts struct {
	Before    PortPlan
	After     PortPlan
	SwitchDay int // day index at which After takes over
}

// BurstPorts implements PortPlan.
func (p SwitchPorts) BurstPorts(dayIdx, slot int, rng *rand.Rand) []uint16 {
	if dayIdx < p.SwitchDay {
		return p.Before.BurstPorts(dayIdx, slot, rng)
	}
	return p.After.BurstPorts(dayIdx, slot, rng)
}
