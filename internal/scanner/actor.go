package scanner

import (
	"math/rand"
	"net/netip"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
)

// Phase is one temporal regime of an actor: between From (inclusive)
// and To (exclusive) the actor emits the given daily burst schedule.
// Actors change phases when their behaviour shifts (AS #1's port-set
// switch in May 2021; AS #9 appearing in November 2021).
type Phase struct {
	From, To time.Time
	// SlotsPerDay is the number of bursts per day.
	SlotsPerDay int
	// PacketsPerBurst is the number of probes per burst.
	PacketsPerBurst int
	// WindowStart is the offset of the first slot within the day.
	WindowStart time.Duration
	// SlotSpacing separates burst starts; packets within a burst are
	// spread over BurstLen. Spacing above one hour splits sessions at
	// the detector; spacing below merges them.
	SlotSpacing time.Duration
	// BurstLen is the duration over which a burst's packets spread.
	BurstLen time.Duration
	// Continuous, when true, ignores the slot fields and spreads
	// SlotsPerDay*PacketsPerBurst packets uniformly over the whole day
	// (AS #1's months-long single scan session; AS #9's steady stream).
	Continuous bool
	// EveryNthDay activates the phase only every N-th day (0 and 1 mean
	// every day). Episodic small scanners use this.
	EveryNthDay int
	// DayOffset shifts the EveryNthDay grid so episodic actors do not
	// all fire on the window's first day.
	DayOffset int
}

func (p Phase) activeOn(day time.Time) bool {
	return !day.Before(p.From) && day.Before(p.To)
}

// Actor is one scanning entity.
type Actor struct {
	Name    string
	ASN     int
	Proto   layers.IPProtocol
	PktLen  uint16 // constant probe size; scan traffic has near-zero length entropy
	Sources SourcePlan
	Targets TargetPlan
	Ports   PortPlan
	Phases  []Phase
	// Seed decorrelates this actor's randomness from its peers.
	Seed int64

	rng *rand.Rand
}

// EmitDay generates the actor's probes for the UTC day starting at
// day, invoking emit for each record. dayIdx is the day's index since
// the simulation start (drives source/port rotation). Records are
// emitted in non-decreasing time order.
func (a *Actor) EmitDay(day time.Time, dayIdx int, emit func(firewall.Record)) {
	if a.rng == nil {
		a.rng = rand.New(rand.NewSource(a.Seed))
	}
	for _, ph := range a.Phases {
		if !ph.activeOn(day) {
			continue
		}
		if ph.EveryNthDay > 1 && (dayIdx+ph.DayOffset)%ph.EveryNthDay != 0 {
			continue
		}
		a.emitPhase(day, dayIdx, ph, emit)
	}
}

func (a *Actor) emitPhase(day time.Time, dayIdx int, ph Phase, emit func(firewall.Record)) {
	if ph.Continuous {
		total := ph.SlotsPerDay * ph.PacketsPerBurst
		if total <= 0 {
			return
		}
		step := 24 * time.Hour / time.Duration(total)
		src := a.Sources.BurstSource(dayIdx, 0, a.rng)
		ports := a.Ports.BurstPorts(dayIdx, 0, a.rng)
		for i := 0; i < total; i++ {
			ts := day.Add(time.Duration(i) * step)
			a.emitOne(ts, src, ports, i, emit)
		}
		return
	}
	for slot := 0; slot < ph.SlotsPerDay; slot++ {
		start := day.Add(ph.WindowStart + time.Duration(slot)*ph.SlotSpacing)
		src := a.Sources.BurstSource(dayIdx, slot, a.rng)
		ports := a.Ports.BurstPorts(dayIdx, slot, a.rng)
		n := ph.PacketsPerBurst
		if n <= 0 {
			continue
		}
		var step time.Duration
		if ph.BurstLen > 0 {
			step = ph.BurstLen / time.Duration(n)
		}
		for i := 0; i < n; i++ {
			ts := start.Add(time.Duration(i) * step)
			a.emitOne(ts, src, ports, i, emit)
		}
	}
}

func (a *Actor) emitOne(ts time.Time, burstSrc netip.Addr, ports []uint16, i int, emit func(firewall.Record)) {
	src := a.Sources.PacketSource(burstSrc, a.rng)
	dst := a.Targets.Target(a.rng)
	port := ports[i%len(ports)]
	emit(firewall.Record{
		Time:    ts,
		Src:     src,
		Dst:     dst,
		Proto:   a.Proto,
		SrcPort: 40000 + uint16(i%20000),
		DstPort: port,
		Length:  a.PktLen,
	})
}

// TotalDays returns the number of UTC days in [from, to).
func TotalDays(from, to time.Time) int {
	return int(to.Sub(from) / (24 * time.Hour))
}
