package scanner

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"v6scan/internal/asdb"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/telescope"
)

func testTelescope(t *testing.T) (*telescope.Telescope, *asdb.DB) {
	t.Helper()
	cfg := telescope.DefaultConfig()
	cfg.Machines = 800
	cfg.ASes = 10
	db := asdb.New()
	tele, err := telescope.New(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	return tele, db
}

func TestSingleSource(t *testing.T) {
	a := netaddr6.MustAddr("2001:db8::1")
	s := SingleSource{Addr: a}
	rng := rand.New(rand.NewSource(1))
	if s.BurstSource(3, 7, rng) != a || s.PacketSource(a, rng) != a {
		t.Error("SingleSource not constant")
	}
}

func TestRotatingSources(t *testing.T) {
	addrs := []netip.Addr{
		netaddr6.MustAddr("2001:db8::1"),
		netaddr6.MustAddr("2001:db8::2"),
		netaddr6.MustAddr("2001:db8::3"),
	}
	s := RotatingSources{Addrs: addrs, SlotsPerDay: 2}
	rng := rand.New(rand.NewSource(1))
	// Day 0 slots 0,1 → addrs[0],addrs[1]; day 1 slot 0 → addrs[2].
	if s.BurstSource(0, 0, rng) != addrs[0] || s.BurstSource(0, 1, rng) != addrs[1] || s.BurstSource(1, 0, rng) != addrs[2] {
		t.Error("rotation order wrong")
	}
}

func TestVaryLowBits(t *testing.T) {
	base1 := netaddr6.MustAddr("2001:db8:1::100")
	base2 := netaddr6.MustAddr("2001:db8:2::100")
	s := VaryLowBits{Bases: []netip.Addr{base1, base2}, Variants: 16}
	rng := rand.New(rand.NewSource(2))
	seen := map[netip.Addr]bool{}
	for i := 0; i < 2000; i++ {
		a := s.PacketSource(base1, rng)
		in1 := netaddr6.SameSlash(a, base1, 64)
		in2 := netaddr6.SameSlash(a, base2, 64)
		if !in1 && !in2 {
			t.Fatalf("source %s escaped both bases", a)
		}
		seen[a] = true
	}
	if len(seen) != 32 {
		t.Errorf("distinct /128s = %d, want 32", len(seen))
	}
}

func TestPairSweepAlternates(t *testing.T) {
	pairs := [][2]netip.Addr{
		{netaddr6.MustAddr("2001:db8::a"), netaddr6.MustAddr("2001:db8::b")},
		{netaddr6.MustAddr("2001:db8::c"), netaddr6.MustAddr("2001:db8::d")},
	}
	sw := &PairSweep{Pairs: pairs}
	rng := rand.New(rand.NewSource(1))
	want := []string{"2001:db8::a", "2001:db8::b", "2001:db8::c", "2001:db8::d", "2001:db8::a"}
	for i, w := range want {
		if got := sw.Target(rng); got != netaddr6.MustAddr(w) {
			t.Errorf("target %d = %s, want %s", i, got, w)
		}
	}
}

func TestMixPoolsShares(t *testing.T) {
	exp := []netip.Addr{netaddr6.MustAddr("2001:db8:e::1")}
	hid := []netip.Addr{netaddr6.MustAddr("2001:db8:f::1")}
	m := MixPools{Exposed: exp, Hidden: hid, HiddenShare: 0.5}
	rng := rand.New(rand.NewSource(3))
	nHid := 0
	for i := 0; i < 10000; i++ {
		if m.Target(rng) == hid[0] {
			nHid++
		}
	}
	if nHid < 4700 || nHid > 5300 {
		t.Errorf("hidden share = %d/10000, want ≈5000", nHid)
	}
}

func TestProgressivePorts(t *testing.T) {
	p := &ProgressivePorts{Ports: []uint16{10, 20, 30}, SlotsPerDay: 1}
	rng := rand.New(rand.NewSource(1))
	if got := p.BurstPorts(0, 0, rng); len(got) != 1 || got[0] != 10 {
		t.Errorf("day0: %v", got)
	}
	if got := p.BurstPorts(1, 0, rng); got[0] != 20 {
		t.Errorf("day1: %v", got)
	}
	if got := p.BurstPorts(3, 0, rng); got[0] != 10 {
		t.Errorf("wrap: %v", got)
	}
}

func TestWidePortRange(t *testing.T) {
	p := &WidePortRange{Lo: 100, Hi: 200, PerBurst: 50}
	rng := rand.New(rand.NewSource(1))
	ports := p.BurstPorts(0, 0, rng)
	if len(ports) != 50 {
		t.Fatalf("len = %d", len(ports))
	}
	for _, x := range ports {
		if x < 100 || x > 200 {
			t.Fatalf("port %d out of range", x)
		}
	}
}

func TestSwitchPorts(t *testing.T) {
	p := SwitchPorts{
		Before:    PortList{Ports: []uint16{1}},
		After:     PortList{Ports: []uint16{2}},
		SwitchDay: 10,
	}
	rng := rand.New(rand.NewSource(1))
	if p.BurstPorts(9, 0, rng)[0] != 1 || p.BurstPorts(10, 0, rng)[0] != 2 {
		t.Error("switch day wrong")
	}
}

func TestPortListN(t *testing.T) {
	l := portListN(444)
	if len(l) != 444 {
		t.Fatalf("len = %d", len(l))
	}
	seen := map[uint16]bool{}
	for _, p := range l {
		if seen[p] {
			t.Fatalf("duplicate port %d", p)
		}
		seen[p] = true
	}
	if !seen[22] || !seen[1433] {
		t.Error("common ports missing")
	}
}

func TestActorEmitDayDeterministic(t *testing.T) {
	tele, db := testTelescope(t)
	cfg := DefaultCensusConfig()
	c1, err := BuildCensus(cfg, tele, db)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := BuildCensus(cfg, tele, asdb.New())
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	var r1, r2 []firewall.Record
	c1.EmitDay(day, func(r firewall.Record) { r1 = append(r1, r) })
	c2.EmitDay(day, func(r firewall.Record) { r2 = append(r2, r) })
	if len(r1) == 0 || len(r1) != len(r2) {
		t.Fatalf("lens: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestCensusBuilds(t *testing.T) {
	tele, db := testTelescope(t)
	c, err := BuildCensus(DefaultCensusConfig(), tele, db)
	if err != nil {
		t.Fatal(err)
	}
	// 20 major ranks (some as multiple sub-actors) + 40 minors.
	if len(c.Actors) < 60 {
		t.Errorf("actors = %d", len(c.Actors))
	}
	// Every major AS registered with its Table-2 type.
	as1, ok := db.AS(ASNOfRank(1))
	if !ok || as1.Type != asdb.TypeDatacenter || as1.Country != "CN" {
		t.Errorf("AS1 metadata: %+v", as1)
	}
	as18, _ := db.AS(ASNOfRank(18))
	if as18.Type != asdb.TypeCloudTransit {
		t.Errorf("AS18 type: %v", as18.Type)
	}
	// Every actor source address attributes back to its own AS.
	day := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	checked := 0
	c.EmitDay(day, func(r firewall.Record) {
		if checked >= 2000 {
			return
		}
		checked++
		as, _, ok := db.Attribute(r.Src)
		if !ok {
			t.Fatalf("source %s not attributable", r.Src)
		}
		if as.Number < MajorASNBase {
			t.Fatalf("source %s attributed to %d", r.Src, as.Number)
		}
	})
	if checked == 0 {
		t.Fatal("no records emitted")
	}
}

func TestCensusTargetsAreTelescopeAddrs(t *testing.T) {
	tele, db := testTelescope(t)
	c, err := BuildCensus(DefaultCensusConfig(), tele, db)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	n, miss := 0, 0
	c.EmitDay(day, func(r firewall.Record) {
		n++
		if !tele.Contains(r.Dst) {
			miss++
		}
	})
	if n == 0 {
		t.Fatal("no records")
	}
	// Twin pools may include sampled duplicates but all must be
	// telescope addresses.
	if miss != 0 {
		t.Errorf("%d/%d targets outside telescope", miss, n)
	}
}

func TestAS9OnlyAfterNovember(t *testing.T) {
	tele, db := testTelescope(t)
	c, err := BuildCensus(DefaultCensusConfig(), tele, db)
	if err != nil {
		t.Fatal(err)
	}
	as9 := Alloc(ASNOfRank(9))
	count := func(day time.Time) int {
		n := 0
		c.EmitDay(day, func(r firewall.Record) {
			if as9.Contains(r.Src) {
				n++
			}
		})
		return n
	}
	if n := count(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)); n != 0 {
		t.Errorf("AS9 active in June: %d records", n)
	}
	if n := count(time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC)); n == 0 {
		t.Error("AS9 inactive in December")
	}
}

func TestAS1PortSwitch(t *testing.T) {
	tele, db := testTelescope(t)
	c, err := BuildCensus(DefaultCensusConfig(), tele, db)
	if err != nil {
		t.Fatal(err)
	}
	as1 := Alloc(ASNOfRank(1))
	portsOn := func(day time.Time) map[uint16]bool {
		ports := map[uint16]bool{}
		c.EmitDay(day, func(r firewall.Record) {
			if as1.Contains(r.Src) {
				ports[r.DstPort] = true
			}
		})
		return ports
	}
	before := portsOn(time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC))
	after := portsOn(time.Date(2021, 8, 1, 0, 0, 0, 0, time.UTC))
	if len(before) < 300 {
		t.Errorf("pre-switch ports = %d, want ≈444", len(before))
	}
	if len(after) != 6 {
		t.Errorf("post-switch ports = %d, want 6", len(after))
	}
	for _, p := range []uint16{22, 80, 443, 3389, 8080, 8443} {
		if !after[p] {
			t.Errorf("post-switch missing port %d", p)
		}
	}
}

func TestAS18SingleService(t *testing.T) {
	tele, db := testTelescope(t)
	c, err := BuildCensus(DefaultCensusConfig(), tele, db)
	if err != nil {
		t.Fatal(err)
	}
	as18 := Alloc(ASNOfRank(18))
	day := time.Date(2021, 6, 2, 0, 0, 0, 0, time.UTC)
	srcs48 := map[netip.Prefix]bool{}
	c.EmitDay(day, func(r firewall.Record) {
		if !as18.Contains(r.Src) {
			return
		}
		if r.DstPort != 22 {
			t.Fatalf("AS18 targeted port %d", r.DstPort)
		}
		srcs48[netaddr6.Aggregate(r.Src, netaddr6.Agg48)] = true
	})
	if len(srcs48) < 2 {
		t.Errorf("AS18 /48 sources on one day = %d", len(srcs48))
	}
}

func TestTwinPoolsJaccard(t *testing.T) {
	tele, _ := testTelescope(t)
	rng := rand.New(rand.NewSource(5))
	a, b := twinPools(tele.ExposedAddrs(), tele.HiddenAddrs(), rng)
	setA := map[netip.Addr]bool{}
	for _, x := range a {
		setA[x] = true
	}
	inter, union := 0, len(setA)
	seenB := map[netip.Addr]bool{}
	for _, x := range b {
		if seenB[x] {
			continue
		}
		seenB[x] = true
		if setA[x] {
			inter++
		} else {
			union++
		}
	}
	j := float64(inter) / float64(union)
	if j < 0.70 || j > 0.86 {
		t.Errorf("twin Jaccard = %.2f, want ≈0.78", j)
	}
}

func TestDayIndex(t *testing.T) {
	if dayIndex(DefaultStart, AS1SwitchDate) != 146 {
		t.Errorf("May 27 index = %d", dayIndex(DefaultStart, AS1SwitchDate))
	}
	if dayIndex(DefaultStart, DefaultEnd) != 439 {
		t.Errorf("window days = %d", dayIndex(DefaultStart, DefaultEnd))
	}
}

func TestEmptyWindowRejected(t *testing.T) {
	tele, db := testTelescope(t)
	cfg := DefaultCensusConfig()
	cfg.End = cfg.Start
	if _, err := BuildCensus(cfg, tele, db); err == nil {
		t.Error("empty window accepted")
	}
}
