package scanner

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"v6scan/internal/asdb"
	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/telescope"
)

// CensusConfig configures the synthetic scan-actor population.
type CensusConfig struct {
	// Start and End bound the simulation window; the paper's window is
	// DefaultStart/DefaultEnd. Actors with absolute-dated behaviour
	// (AS #1's May 2021 port switch, AS #9 appearing in November 2021)
	// key off real dates, so shorter windows naturally include or
	// exclude them.
	Start, End time.Time
	// Seed drives all actor randomness.
	Seed int64
	// Minors enables the ~40 low-volume scan ASes beyond the Table-2
	// top 20.
	Minors bool
}

// Paper measurement window (Section 2.1).
var (
	DefaultStart = time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	DefaultEnd   = time.Date(2022, 3, 16, 0, 0, 0, 0, time.UTC)
	// AS1SwitchDate is when the most active scanner switched from ≈444
	// ports to a handful (Section 3.3, May 2021; the MAWI cross-check
	// pins it to May 27).
	AS1SwitchDate = time.Date(2021, 5, 27, 0, 0, 0, 0, time.UTC)
	// AS9StartDate is when the AS #9 entity appears, causing the /128
	// source uptick of Figure 2.
	AS9StartDate = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
)

// DefaultCensusConfig returns the full-window configuration.
func DefaultCensusConfig() CensusConfig {
	return CensusConfig{Start: DefaultStart, End: DefaultEnd, Seed: 7, Minors: true}
}

// ScanSpace is the address space scan-actor allocations are carved
// from; each actor AS receives a /32 (the typical RIR allocation size
// the paper highlights).
var ScanSpace = netaddr6.MustPrefix("2c00::/12")

// MajorASNBase numbers the Table-2 actors: rank r lives in ASN
// MajorASNBase+r.
const MajorASNBase = 65000

// MinorASNBase numbers the low-volume actors.
const MinorASNBase = 65100

// Census is the built actor population.
type Census struct {
	Actors []*Actor
	Start  time.Time
	End    time.Time
}

// ASNOfRank returns the AS number assigned to Table-2 rank r (1-based).
func ASNOfRank(r int) int { return MajorASNBase + r }

// Alloc returns the /32 allocated to the given actor ASN.
func Alloc(asn int) netip.Prefix {
	return netaddr6.NthSubprefix(ScanSpace, 32, uint64(asn-MajorASNBase))
}

// rankMeta describes the Table-2 AS labels.
var rankMeta = []struct {
	typ     asdb.Type
	country string
}{
	{asdb.TypeDatacenter, "CN"},    // #1
	{asdb.TypeDatacenter, "CN"},    // #2
	{asdb.TypeCybersecurity, "US"}, // #3
	{asdb.TypeCloud, "US"},         // #4
	{asdb.TypeCloud, "DE"},         // #5
	{asdb.TypeCloud, "US"},         // #6
	{asdb.TypeCloud, "US"},         // #7
	{asdb.TypeCloud, "CN"},         // #8
	{asdb.TypeTransit, "ZZ"},       // #9 (global)
	{asdb.TypeCloud, "CN"},         // #10
	{asdb.TypeCloud, "US"},         // #11
	{asdb.TypeDatacenter, "CN"},    // #12
	{asdb.TypeISP, "VN"},           // #13
	{asdb.TypeDatacenter, "CN"},    // #14
	{asdb.TypeResearch, "DE"},      // #15
	{asdb.TypeISP, "RU"},           // #16
	{asdb.TypeUniversity, "DE"},    // #17
	{asdb.TypeCloudTransit, "DE"},  // #18
	{asdb.TypeISP, "RU"},           // #19
	{asdb.TypeUniversity, "DE"},    // #20
}

// BuildCensus constructs the actor population against a telescope,
// registering every scan AS and allocation in db.
func BuildCensus(cfg CensusConfig, tele *telescope.Telescope, db *asdb.DB) (*Census, error) {
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("scanner: empty census window %v..%v", cfg.Start, cfg.End)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Census{Start: cfg.Start, End: cfg.End}

	// Register the Table-2 ASes.
	for r := 1; r <= 20; r++ {
		m := rankMeta[r-1]
		asn := ASNOfRank(r)
		db.AddAS(asdb.AS{Number: asn, Name: fmt.Sprintf("scan-as-%d", r), Type: m.typ, Country: m.country})
		if err := db.Allocate(Alloc(asn), asn, asdb.KindRIRAllocation); err != nil {
			return nil, err
		}
	}

	exposed := tele.ExposedAddrs()
	hidden := tele.HiddenAddrs()
	if len(exposed) == 0 {
		return nil, fmt.Errorf("scanner: telescope has no addresses")
	}
	switchIdx := dayIndex(cfg.Start, AS1SwitchDate)

	// --- Rank 1: single /128, 39% of packets, port-set switch in May,
	// one months-long continuous scan session.
	as1src := hostInAlloc(ASNOfRank(1), 0, 0, 1)
	c.add(&Actor{
		Name: "as1-datacenter-cn", ASN: ASNOfRank(1), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: SingleSource{Addr: as1src},
		Targets: MixPools{Exposed: exposed, Hidden: sample(hidden, len(hidden)/5, rng), HiddenShare: 0.15},
		Ports:   SwitchPorts{Before: PortList{Ports: portList444()}, After: PortList{Ports: []uint16{22, 80, 443, 3389, 8080, 8443}}, SwitchDay: switchIdx},
		Phases: []Phase{
			{From: DefaultStart, To: AS1SwitchDate, Continuous: true, SlotsPerDay: 1, PacketsPerBurst: 2940},
			{From: AS1SwitchDate, To: DefaultEnd, SlotsPerDay: 2, PacketsPerBurst: 600,
				WindowStart: 2 * time.Hour, SlotSpacing: 8 * time.Hour, BurstLen: 45 * time.Minute},
		},
		Seed: cfg.Seed ^ 0x101,
	})

	// --- Rank 2: five /128s in one /64 rotating 15-minute slots over a
	// 3-hour daily window: short /128 sessions, one continuous /64
	// session per day. 635-port list.
	as2srcs := hostsInSame64(ASNOfRank(2), 5)
	c.add(&Actor{
		Name: "as2-datacenter-cn", ASN: ASNOfRank(2), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: as2srcs, SlotsPerDay: 12},
		Targets: MixPools{Exposed: exposed, Hidden: sample(hidden, len(hidden)/10, rng), HiddenShare: 0.05},
		Ports:   PortList{Ports: portList635()},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 12, PacketsPerBurst: 133,
			WindowStart: 6 * time.Hour, SlotSpacing: 15 * time.Minute, BurstLen: 2 * time.Minute}},
		Seed: cfg.Seed ^ 0x102,
	})

	// --- Rank 3: US cybersecurity, 12 /128s in one /64, nearly the
	// whole TCP port space.
	as3srcs := hostsInSame64(ASNOfRank(3), 12)
	c.add(&Actor{
		Name: "as3-cybersec-us", ASN: ASNOfRank(3), Proto: layers.ProtoTCP, PktLen: 64,
		Sources: RotatingSources{Addrs: as3srcs, SlotsPerDay: 5},
		Targets: MixPools{Exposed: exposed, Hidden: sample(hidden, len(hidden)/6, rng), HiddenShare: 0.15},
		Ports:   &WidePortRange{Lo: 1, Hi: 45000, PerBurst: 100},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 5, PacketsPerBurst: 114,
			WindowStart: 11 * time.Hour, SlotSpacing: 10 * time.Minute, BurstLen: 3 * time.Minute}},
		Seed: cfg.Seed ^ 0x103,
	})

	// --- Rank 4: cloud, many per-VM /128s over two /64s in two /48s;
	// progressive single-port episodes (the Appendix A.3 entity that
	// inflates single-port /128 scan counts).
	as4srcs := vmAddrs(ASNOfRank(4), 2, 64)
	c.add(&Actor{
		Name: "as4-cloud-us", ASN: ASNOfRank(4), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: as4srcs, SlotsPerDay: 1},
		Targets: PoolTargets{Pool: exposed},
		Ports:   &ProgressivePorts{Ports: portListN(200), SlotsPerDay: 1},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 110,
			WindowStart: 4 * time.Hour, BurstLen: 10 * time.Minute}},
		Seed: cfg.Seed ^ 0x104,
	})

	// --- Rank 5: cloud DE, 59 /64s (one address each) across 3 /48s.
	as5srcs := spread64s(ASNOfRank(5), 3, 59)
	c.add(&Actor{
		Name: "as5-cloud-de", ASN: ASNOfRank(5), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: as5srcs, SlotsPerDay: 1},
		Targets: PoolTargets{Pool: exposed},
		Ports:   PortList{Ports: commonPorts()[:12]},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 110,
			WindowStart: 9 * time.Hour, BurstLen: 20 * time.Minute}},
		Seed: cfg.Seed ^ 0x105,
	})

	// --- Rank 6: cloud with >/96 customer allocations. Two "twin"
	// /64s share a target pool (Appendix A.4: common-actor evidence,
	// Jaccard ≈ 78%, one twin 3× the other's volume), plus a rest
	// population.
	poolA, poolB := twinPools(exposed, hidden, rng)
	twinA, twinB := hostInAlloc(ASNOfRank(6), 0, 0, 1), hostInAlloc(ASNOfRank(6), 1, 0, 1)
	c.add(&Actor{
		Name: "as6-twin-a", ASN: ASNOfRank(6), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: SingleSource{Addr: twinA},
		Targets: PoolTargets{Pool: poolA},
		Ports:   &WidePortRange{Lo: 1, Hi: 65535, PerBurst: 110},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 165,
			WindowStart: 13 * time.Hour, BurstLen: 30 * time.Minute}},
		Seed: cfg.Seed ^ 0x106,
	})
	c.add(&Actor{
		Name: "as6-twin-b", ASN: ASNOfRank(6), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: SingleSource{Addr: twinB},
		Targets: PoolTargets{Pool: poolB},
		Ports:   &WidePortRange{Lo: 1, Hi: 65535, PerBurst: 110},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 110,
			WindowStart: 15 * time.Hour, BurstLen: 30 * time.Minute, EveryNthDay: 2, DayOffset: 1}},
		Seed: cfg.Seed ^ 0x107,
	})
	as6rest := vmAddrs(ASNOfRank(6), 13, 3) // 13 /64s × 3 VMs
	c.add(&Actor{
		Name: "as6-rest", ASN: ASNOfRank(6), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: as6rest, SlotsPerDay: 1},
		Targets: MixPools{Exposed: exposed, Hidden: sample(hidden, len(hidden)/8, rng), HiddenShare: 0.35},
		Ports:   PortList{Ports: commonPorts()},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 110,
			WindowStart: 17 * time.Hour, BurstLen: 15 * time.Minute, EveryNthDay: 3, DayOffset: 2}},
		Seed: cfg.Seed ^ 0x108,
	})

	// --- Ranks 7, 8: mid-size clouds.
	c.add(&Actor{
		Name: "as7-cloud-us", ASN: ASNOfRank(7), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: spreadVMs(ASNOfRank(7), 9, 4), SlotsPerDay: 1},
		Targets: PoolTargets{Pool: exposed},
		Ports:   PortList{Ports: commonPorts()[:16]},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 150,
			WindowStart: 3 * time.Hour, BurstLen: 20 * time.Minute, EveryNthDay: 2, DayOffset: 1}},
		Seed: cfg.Seed ^ 0x109,
	})
	c.add(&Actor{
		Name: "as8-cloud-cn", ASN: ASNOfRank(8), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: spreadVMs(ASNOfRank(8), 5, 4), SlotsPerDay: 2},
		Targets: PoolTargets{Pool: exposed},
		Ports:   PortList{Ports: commonPorts()[:10]},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 2, PacketsPerBurst: 110,
			WindowStart: 7 * time.Hour, SlotSpacing: 3 * time.Hour, BurstLen: 15 * time.Minute, EveryNthDay: 4}},
		Seed: cfg.Seed ^ 0x10a,
	})

	// --- Rank 9: the November 2021 entity: continuous stream, source
	// low bits varied per packet across two /64s of one /48 — the sole
	// cause of the /128-source uptick in Figure 2.
	as9a := hostInAlloc(ASNOfRank(9), 0, 0, 0x100)
	as9b := hostInAlloc(ASNOfRank(9), 0, 1, 0x100)
	c.add(&Actor{
		Name: "as9-security-backbone", ASN: ASNOfRank(9), Proto: layers.ProtoTCP, PktLen: 60,
		Sources: VaryLowBits{Bases: []netip.Addr{as9a, as9b}, Variants: 16},
		Targets: MixPools{Exposed: exposed, Hidden: hidden, HiddenShare: 0.5},
		Ports:   PortList{Ports: []uint16{22, 80, 443, 8443}},
		Phases:  []Phase{{From: AS9StartDate, To: DefaultEnd, Continuous: true, SlotsPerDay: 1, PacketsPerBurst: 1000}},
		Seed:    cfg.Seed ^ 0x10b,
	})

	// --- Ranks 10–17, 19, 20: small single-prefix scanners.
	smalls := []struct {
		rank, n128 int
		everyNth   int
		ports      []uint16
	}{
		{10, 7, 5, commonPorts()[:8]},
		{11, 40, 11, commonPorts()[:6]},
		{12, 19, 15, commonPorts()[:10]},
		{13, 1, 20, []uint16{23}},
		{14, 2, 30, []uint16{22, 23}},
		{15, 1, 45, commonPorts()[:20]},
		{16, 2, 55, []uint16{22}},
		{17, 2, 60, commonPorts()[:30]},
		{19, 1, 70, []uint16{1433}},
		{20, 1, 80, commonPorts()[:25]},
	}
	for i, s := range smalls {
		var srcs []netip.Addr
		if s.rank == 12 {
			srcs = spreadVMs(ASNOfRank(s.rank), 12, 2)[:19] // 19 /128s over 12 /64s, 9 /48s
		} else {
			srcs = hostsInSame64(ASNOfRank(s.rank), s.n128)
		}
		c.add(&Actor{
			Name: fmt.Sprintf("as%d-small", s.rank), ASN: ASNOfRank(s.rank), Proto: layers.ProtoTCP, PktLen: 60,
			Sources: RotatingSources{Addrs: srcs, SlotsPerDay: 1},
			Targets: PoolTargets{Pool: exposed},
			Ports:   PortList{Ports: s.ports},
			Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 110,
				WindowStart: time.Duration(5+i) * time.Hour, BurstLen: 12 * time.Minute,
				EveryNthDay: s.everyNth, DayOffset: 3 * i}},
			Seed: cfg.Seed ^ int64(0x200+i),
		})
	}

	// --- Rank 18: the /32 case study. A German security company
	// sources scans from across its entire /32: hundreds of /64s (one
	// address each), probing only TCP/22, sweeping machine pairs
	// exposed-then-hidden.
	c.addAS18(cfg, tele, rng)

	// --- Minor ASes beyond the top 20.
	if cfg.Minors {
		c.addMinors(cfg, db, exposed, rng)
	}
	return c, nil
}

// addAS18 builds the four sub-populations of the AS #18 entity:
// "strong" /64s that meet the 100-destination bar individually,
// mid-tier /64s (50–99 destinations) that explode the source count
// when the threshold is relaxed to 50, /48-clustered /64s whose
// combined traffic qualifies only at /48 aggregation, and weak /64s
// only visible at /32 aggregation.
func (c *Census) addAS18(cfg CensusConfig, tele *telescope.Telescope, rng *rand.Rand) {
	asn := ASNOfRank(18)
	pairs := machinePairs(tele, rng)

	strong := make([]netip.Addr, 200)
	for i := range strong {
		strong[i] = hostInAlloc(asn, i, 0, 1) // own /48 each
	}
	c.add(&Actor{
		Name: "as18-strong", ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: strong, SlotsPerDay: 1},
		Targets: &PairSweep{Pairs: pairs},
		Ports:   SinglePort{Port: 22},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 2, PacketsPerBurst: 115,
			WindowStart: 1 * time.Hour, SlotSpacing: 3 * time.Hour, BurstLen: 25 * time.Minute}},
		Seed: cfg.Seed ^ 0x300,
	})

	mid := make([]netip.Addr, 1000)
	for i := range mid {
		mid[i] = hostInAlloc(asn, 200+i, 0, 1) // own /48 each
	}
	c.add(&Actor{
		Name: "as18-mid", ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: mid, SlotsPerDay: 4},
		Targets: &PairSweep{Pairs: pairs},
		Ports:   SinglePort{Port: 22},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 4, PacketsPerBurst: 52,
			WindowStart: 5 * time.Hour, SlotSpacing: 40 * time.Minute, BurstLen: 20 * time.Minute}},
		Seed: cfg.Seed ^ 0x301,
	})

	// 48 /64s packed four per /48; the four fire in consecutive
	// 20-minute slots so the covering /48 session accrues ≥100
	// destinations while each /64 stays below the bar.
	shared := make([]netip.Addr, 48)
	for i := range shared {
		shared[i] = hostInAlloc(asn, 700+i/4, i%4, 1)
	}
	c.add(&Actor{
		Name: "as18-shared48", ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: shared, SlotsPerDay: 4},
		Targets: &PairSweep{Pairs: pairs},
		Ports:   SinglePort{Port: 22},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 4, PacketsPerBurst: 60,
			WindowStart: 9 * time.Hour, SlotSpacing: 20 * time.Minute, BurstLen: 15 * time.Minute, EveryNthDay: 12}},
		Seed: cfg.Seed ^ 0x302,
	})

	weak := make([]netip.Addr, 250)
	for i := range weak {
		weak[i] = hostInAlloc(asn, 1000+i, 0, 1)
	}
	c.add(&Actor{
		Name: "as18-weak", ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
		Sources: RotatingSources{Addrs: weak, SlotsPerDay: 2},
		Targets: &PairSweep{Pairs: pairs},
		Ports:   SinglePort{Port: 22},
		Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 2, PacketsPerBurst: 15,
			WindowStart: 8 * time.Hour, SlotSpacing: time.Hour, BurstLen: 10 * time.Minute}},
		Seed: cfg.Seed ^ 0x303,
	})
}

// addMinors registers ~40 low-volume scan ASes in three styles whose
// detectability differs by aggregation level, producing the increasing
// AS counts of Table 1 (/128 < /64 < /48).
func (c *Census) addMinors(cfg CensusConfig, db *asdb.DB, exposed []netip.Addr, rng *rand.Rand) {
	singlePorts := []uint16{1433, 22, 23, 21, 8080, 3389, 8000, 3128, 110, 8443, 5900, 993, 995, 8888, 8081}
	for i := 0; i < 40; i++ {
		asn := MinorASNBase + i
		db.AddAS(asdb.AS{Number: asn, Name: fmt.Sprintf("minor-scan-as-%d", i), Type: minorType(i), Country: minorCountry(i)})
		alloc := netaddr6.NthSubprefix(ScanSpace, 32, uint64(asn-MajorASNBase))
		if err := db.Allocate(alloc, asn, asdb.KindRIRAllocation); err != nil {
			panic("scanner: minor allocation: " + err.Error())
		}
		style := i % 8 // 0–2: single /128; 3–5: spread over /64; 6–7: spread over /48
		var a *Actor
		switch {
		case style < 3:
			// Detected at every aggregation level.
			a = &Actor{
				Name: fmt.Sprintf("minor%d-single128", i), ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
				Sources: SingleSource{Addr: hostInAllocASN(alloc, 0, 0, 1)},
				Targets: PoolTargets{Pool: exposed},
				Ports:   PortList{Ports: []uint16{singlePorts[i%len(singlePorts)]}},
				Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 1, PacketsPerBurst: 110 + 5*(i%10),
					WindowStart: time.Duration(i%20) * time.Hour, BurstLen: 10 * time.Minute, EveryNthDay: 40 + i, DayOffset: 7 * i}},
			}
		case style < 6:
			// Six /128s in one /64, interleaved 10-minute slots: the /64
			// qualifies, no individual /128 does.
			srcs := make([]netip.Addr, 6)
			for j := range srcs {
				srcs[j] = hostInAllocASN(alloc, 0, 0, uint64(j+1))
			}
			a = &Actor{
				Name: fmt.Sprintf("minor%d-spread64", i), ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
				Sources: RotatingSources{Addrs: srcs, SlotsPerDay: 6},
				Targets: PoolTargets{Pool: exposed},
				Ports:   PortList{Ports: commonPorts()[:4+(i%6)]},
				Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 6, PacketsPerBurst: 25,
					WindowStart: time.Duration(i%20) * time.Hour, SlotSpacing: 10 * time.Minute, BurstLen: 8 * time.Minute, EveryNthDay: 30 + i, DayOffset: 5 * i}},
			}
		default:
			// Four /64s in one /48, interleaved: only the /48 qualifies.
			srcs := make([]netip.Addr, 4)
			for j := range srcs {
				srcs[j] = hostInAllocASN(alloc, 0, j, 1)
			}
			a = &Actor{
				Name: fmt.Sprintf("minor%d-spread48", i), ASN: asn, Proto: layers.ProtoTCP, PktLen: 60,
				Sources: RotatingSources{Addrs: srcs, SlotsPerDay: 4},
				Targets: PoolTargets{Pool: exposed},
				Ports:   PortList{Ports: commonPorts()[:3+(i%5)]},
				Phases: []Phase{{From: DefaultStart, To: DefaultEnd, SlotsPerDay: 4, PacketsPerBurst: 30,
					WindowStart: time.Duration(i%20) * time.Hour, SlotSpacing: 15 * time.Minute, BurstLen: 10 * time.Minute, EveryNthDay: 40 + i, DayOffset: 11 * i}},
			}
		}
		a.Seed = cfg.Seed ^ int64(0x400+i)
		c.add(a)
	}
	_ = rng
}

func minorType(i int) asdb.Type {
	types := []asdb.Type{asdb.TypeCloud, asdb.TypeDatacenter, asdb.TypeResearch, asdb.TypeCybersecurity, asdb.TypeUniversity}
	return types[i%len(types)]
}

func minorCountry(i int) string {
	countries := []string{"US", "DE", "CN", "NL", "FR", "GB", "JP", "RU"}
	return countries[i%len(countries)]
}

func (c *Census) add(a *Actor) { c.Actors = append(c.Actors, a) }

// EmitDay generates every actor's probes for one UTC day. Output order
// is per-actor chronological but not globally sorted; callers sort the
// day's records before feeding detectors.
func (c *Census) EmitDay(day time.Time, emit func(r firewall.Record)) {
	idx := dayIndex(c.Start, day)
	for _, a := range c.Actors {
		a.EmitDay(day, idx, emit)
	}
}

// Days iterates all days of the census window in order.
func (c *Census) Days(fn func(day time.Time, dayIdx int)) {
	for d, i := c.Start, 0; d.Before(c.End); d, i = d.Add(24*time.Hour), i+1 {
		fn(d, i)
	}
}

// dayIndex returns the whole days between start and t (may be
// negative).
func dayIndex(start, t time.Time) int {
	return int(t.Sub(start) / (24 * time.Hour))
}

// --- address construction helpers ---

// hostInAlloc returns address ::hostIID in the sub64-th /64 of the
// sub48-th /48 of the actor's /32.
func hostInAlloc(asn, sub48, sub64 int, hostIID uint64) netip.Addr {
	return hostInAllocASN(Alloc(asn), sub48, sub64, hostIID)
}

func hostInAllocASN(alloc netip.Prefix, sub48, sub64 int, hostIID uint64) netip.Addr {
	p48 := netaddr6.NthSubprefix(alloc, 48, uint64(sub48))
	p64 := netaddr6.NthSubprefix(p48, 64, uint64(sub64))
	return netaddr6.WithIID(p64.Addr(), hostIID)
}

// hostsInSame64 returns n host addresses ::1..::n in the actor's first
// /64.
func hostsInSame64(asn, n int) []netip.Addr {
	out := make([]netip.Addr, n)
	for i := range out {
		out[i] = hostInAlloc(asn, 0, 0, uint64(i+1))
	}
	return out
}

// vmAddrs returns per64 addresses in each of n64 /64s, the /64s split
// across two /48s — cloud tenants with very specific allocations.
func vmAddrs(asn, n64, per64 int) []netip.Addr {
	out := make([]netip.Addr, 0, n64*per64)
	for i := 0; i < n64; i++ {
		for j := 0; j < per64; j++ {
			out = append(out, hostInAlloc(asn, i%2, i/2, uint64(j+1)))
		}
	}
	return out
}

// spread64s returns one address in each of n64 /64s spread over n48
// /48s.
func spread64s(asn, n48, n64 int) []netip.Addr {
	out := make([]netip.Addr, n64)
	for i := range out {
		out[i] = hostInAlloc(asn, i%n48, i/n48, 1)
	}
	return out
}

// spreadVMs returns per64 addresses in each of n64 /64s, each /64 in
// its own /48.
func spreadVMs(asn, n64, per64 int) []netip.Addr {
	out := make([]netip.Addr, 0, n64*per64)
	for i := 0; i < n64; i++ {
		for j := 0; j < per64; j++ {
			out = append(out, hostInAlloc(asn, i, 0, uint64(j+1)))
		}
	}
	return out
}

// twinPools builds the two AS #6 twin target pools with Jaccard
// similarity ≈ 0.78 and roughly half non-DNS addresses.
func twinPools(exposed, hidden []netip.Addr, rng *rand.Rand) (a, b []netip.Addr) {
	ne, nh := min(500, len(exposed)), min(440, len(hidden))
	e := sample(exposed, ne, rng)
	h := sample(hidden, nh, rng)
	base := append(append([]netip.Addr{}, e...), h...)
	// Shared core ≈ 824/940 of the base; each twin adds its own tail.
	shared := int(float64(len(base)) * 0.877)
	if shared > len(base) {
		shared = len(base)
	}
	uniq := len(base) - shared
	a = append(append([]netip.Addr{}, base[:shared]...), base[shared:]...)
	extra := sample(exposed, uniq, rng)
	b = append(append([]netip.Addr{}, base[:shared]...), extra...)
	return a, b
}

// machinePairs returns telescope pairs [exposed, hidden] in shuffled
// order.
func machinePairs(tele *telescope.Telescope, rng *rand.Rand) [][2]netip.Addr {
	ms := tele.Machines()
	pairs := make([][2]netip.Addr, len(ms))
	for i, m := range ms {
		pairs[i] = [2]netip.Addr{m.Exposed, m.Hidden}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs
}

func sample(pool []netip.Addr, n int, rng *rand.Rand) []netip.Addr {
	if n >= len(pool) {
		out := make([]netip.Addr, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]netip.Addr, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

// --- port lists ---

// commonPorts are the services that recur across the paper's Table 3.
func commonPorts() []uint16 {
	return []uint16{22, 23, 8080, 25, 8443, 3389, 21, 5900, 993, 8081,
		110, 995, 8888, 3128, 8000, 1433, 3306, 6379, 445, 139,
		53, 111, 143, 465, 587, 990, 1080, 2000, 2222, 5060}
}

// portList444 is the ≈444-port set AS #1 scanned before May 2021.
func portList444() []uint16 { return portListN(444) }

// portList635 is the ≈635-port set of AS #2.
func portList635() []uint16 { return portListN(635) }

// portListN returns the common ports followed by deterministic filler
// up to n ports.
func portListN(n int) []uint16 {
	out := append([]uint16{}, commonPorts()...)
	next := uint16(1)
	seen := make(map[uint16]bool, n)
	for _, p := range out {
		seen[p] = true
	}
	for len(out) < n {
		if !seen[next] {
			out = append(out, next)
			seen[next] = true
		}
		next++
	}
	return out[:n]
}
