// Package metrics is a dependency-free instrumentation registry:
// atomic counters, gauges, and histograms with Prometheus text
// exposition. It exists so the pipeline, the dispatcher, and the
// serving daemon can share one observability surface without pulling
// a client library into a repository whose other dependencies are the
// standard library alone.
//
// # Hot-path discipline
//
// Instruments are allocated once at registration; every update after
// that is a single atomic add or store. All instrument methods are
// nil-safe no-ops, so instrumented code never branches on "is metrics
// enabled" — an uninstrumented pipeline carries nil instrument
// pointers and pays only the nil check. Nothing in an update path
// allocates, which is what lets the instrumented pipeline hold
// allocs/op exactly flat (see BenchmarkMetricsHotPath).
//
// # Exposition
//
// Registry.WritePrometheus renders the classic text format
// (version 0.0.4): HELP/TYPE headers, cumulative histogram buckets
// with +Inf, _sum and _count series. Families render in registration
// order, so output is deterministic and diffable.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is
// usable; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int) {
	if c != nil && n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is usable;
// a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add increments by delta (CAS loop; contention on a gauge is rare).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets (Prometheus
// convention: bucket i counts observations ≤ UpperBounds[i], with an
// implicit +Inf bucket). A nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists here are short (≤ ~16) and the scan is
	// branch-predictable, beating a binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// kind discriminates how a family renders.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one labeled instrument inside a family.
type series struct {
	labels string // pre-rendered {k="v",...} or ""
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family is one metric name with HELP/TYPE and its labeled series.
type family struct {
	name   string
	help   string
	kind   kind
	series []series
}

// Registry holds registered instruments and renders them. The zero
// value is not usable; call NewRegistry. Registration is mutex-guarded
// (it happens at setup time); updates to registered instruments are
// lock-free.
type Registry struct {
	mu       sync.Mutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

// renderLabels formats a label set deterministically (sorted by key).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// register adds a series to the named family, creating the family on
// first use and verifying kind consistency afterwards.
func (r *Registry) register(name, help string, k kind, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic("metrics: " + name + " registered with conflicting kinds")
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter. Registering the same name
// with different labels adds a series to the family.
func (r *Registry) Counter(name, help string, labels map[string]string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, series{labels: renderLabels(labels), ctr: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string, labels map[string]string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, series{labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, labels map[string]string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, series{labels: renderLabels(labels), fn: fn})
}

// Histogram registers and returns a histogram with the given upper
// bounds (must be sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, labels map[string]string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly ascending: " + name)
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	r.register(name, help, kindHistogram, series{labels: renderLabels(labels), hist: h})
	return h
}

// formatValue renders a float the way Prometheus expects (integers
// without a mantissa, +Inf spelled out).
func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.kind {
			case kindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.ctr.Value())
			case kindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.gauge.Value()))
			case kindGaugeFunc:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
			case kindHistogram:
				err = writeHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets,
// then _sum and _count.
func writeHistogram(w io.Writer, name string, s series) error {
	h := s.hist
	// Splice the le label into any existing label set.
	open := "{"
	if s.labels != "" {
		open = s.labels[:len(s.labels)-1] + ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n",
			name, open, formatValue(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, open, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
	return err
}
