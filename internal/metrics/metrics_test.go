package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", nil)
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth", "queue depth", nil)
	g.Set(7)
	g.Add(-2.5)
	if got := g.Value(); got != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", nil, []float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 2, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 110.5 {
		t.Fatalf("sum = %v, want 110.5", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative: ≤1 → 2 (0.5 and 1), ≤5 → 3, ≤10 → 4, +Inf → 5.
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="5"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 110.5`,
		`lat_count 5`,
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelsAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	for _, shard := range []string{"0", "1"} {
		c := r.Counter("drops_total", "drops", map[string]string{"shard": shard})
		c.Add(3)
	}
	r.GaugeFunc("live", "computed", map[string]string{"b": "2", "a": "1"}, func() float64 { return 42 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`drops_total{shard="0"} 3`,
		`drops_total{shard="1"} 3`,
		`live{a="1",b="2"} 42`, // label keys render sorted
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order.
	if strings.Index(out, "drops_total") > strings.Index(out, "live") {
		t.Error("families not in registration order")
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("dur", "", map[string]string{"op": "ckpt"}, []float64{1})
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`dur_bucket{op="ckpt",le="1"} 1`,
		`dur_bucket{op="ckpt",le="+Inf"} 1`,
		`dur_sum{op="ckpt"} 0.5`,
		`dur_count{op="ckpt"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConflictingKindPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	r.Gauge("x", "", nil)
}

// TestConcurrentUpdates exercises the lock-free update paths under the
// race detector.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", nil, []float64{10, 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 200))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		var b strings.Builder
		for i := 0; i < 50; i++ {
			b.Reset()
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
}
