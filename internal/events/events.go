// Package events defines the wire envelope carried between distributed
// pipeline endpoints: the unit a vantage-point collector publishes and
// an aggregator consumes. An envelope frames a run of firewall records
// (or finished alerts) for one topic, with a per-topic sequence number
// so a consumer can detect gaps, and an end-of-stream marker so a
// publisher can hand off a finite stream cleanly.
//
// # Format (version 1)
//
// One envelope is a self-contained, CRC-guarded message:
//
//	envelope := magic[8] version:u16 kind:u8 reserved:u8
//	            topicLen:u16 topic[topicLen]
//	            seq:u64 count:u32 payload crc32c:u32
//
// Header integers are little-endian, encoded with the same
// checkpoint.Enc/Dec primitives the snapshot container uses, and the
// trailing CRC-32C (Castagnoli) covers every preceding byte — the same
// corruption discipline as internal/checkpoint. The payload is count
// back-to-back fixed-width bodies: firewall records in their 47-byte
// log wire form (KindRecords), alert bodies (KindAlerts), or nothing
// (KindEOS, count must be zero). The encoding is canonical: decoding a
// valid envelope and re-encoding it reproduces the input bytes exactly
// (FuzzEnvelopeRoundtrip).
//
// # Topics
//
// Topics partition a record stream the same way the sharded consumers
// do: by the source address aggregated to the coarsest configured
// level (dispatch.Partition), so all state for a source — at every
// aggregation level — is reachable through exactly one topic. Within a
// topic, envelope order is stream order (Seq increments by one);
// across topics there is no ordering, which is precisely the freedom
// the sharding invariant licenses. RecordTopics/AlertTopic name the
// per-partition topics of one publisher's stream.
package events

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"net/netip"

	"v6scan/internal/checkpoint"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/netaddr6"
)

// magic identifies a v6scan event envelope. The CR/LF tail catches
// text-mode transfer mangling, like the snapshot container's magic.
var magic = [8]byte{'v', '6', 'e', 'v', 'n', 't', '\r', '\n'}

// Version is the current (and only) envelope format version.
const Version uint16 = 1

// Envelope kinds.
const (
	// KindRecords carries a run of firewall records in log wire form.
	KindRecords uint8 = 1
	// KindAlerts carries finished IDS alerts (an aggregator's output
	// published onward).
	KindAlerts uint8 = 2
	// KindEOS marks the end of a topic's stream: the publisher is done
	// and will not publish to this topic again. Count is always zero.
	KindEOS uint8 = 3
)

// Typed codec errors, mirroring the checkpoint container's set so
// callers distinguish corruption from version skew from truncation.
var (
	ErrBadMagic  = errors.New("events: bad magic (not a v6scan envelope)")
	ErrVersion   = errors.New("events: unsupported envelope format version")
	ErrChecksum  = errors.New("events: checksum mismatch (envelope corrupted)")
	ErrTruncated = errors.New("events: envelope truncated")
	ErrFormat    = errors.New("events: malformed envelope")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// headerSize is the fixed part before the topic bytes; minSize is the
// smallest possible envelope (empty topic, empty payload).
const (
	headerSize = 8 + 2 + 1 + 1 + 2
	minSize    = headerSize + 8 + 4 + 4
)

// alertWireSize is the fixed encoded size of one alert body:
// addr[16] bits:u8 level:u8 estDsts:u64 packets:u64
// first:i64 last:i64 escalated:u8.
const alertWireSize = 16 + 1 + 1 + 8 + 8 + 8 + 8 + 1

// Envelope is one decoded wire message. Exactly one of Records and
// Alerts is populated, matching Kind; both are nil for KindEOS.
type Envelope struct {
	Kind  uint8
	Topic string
	// Seq is the per-topic sequence number the publisher assigned,
	// starting at 0 and incrementing by one per envelope (the EOS
	// envelope takes the next number in line).
	Seq     uint64
	Records []firewall.Record
	Alerts  []ids.Alert
}

// count returns the body count for e's kind.
func (e *Envelope) count() int {
	switch e.Kind {
	case KindRecords:
		return len(e.Records)
	case KindAlerts:
		return len(e.Alerts)
	default:
		return 0
	}
}

// Append encodes e onto b and returns the extended slice. The topic
// must fit a u16 length and the kind must be one of the defined kinds
// (with Records/Alerts populated only as the kind allows).
func (e *Envelope) Append(b []byte) ([]byte, error) {
	switch e.Kind {
	case KindRecords:
		if len(e.Alerts) != 0 {
			return nil, fmt.Errorf("%w: alerts on a records envelope", ErrFormat)
		}
	case KindAlerts:
		if len(e.Records) != 0 {
			return nil, fmt.Errorf("%w: records on an alerts envelope", ErrFormat)
		}
	case KindEOS:
		if len(e.Records) != 0 || len(e.Alerts) != 0 {
			return nil, fmt.Errorf("%w: payload on an EOS envelope", ErrFormat)
		}
	default:
		return nil, fmt.Errorf("%w: unknown envelope kind %d", ErrFormat, e.Kind)
	}
	if len(e.Topic) > 0xFFFF {
		return nil, fmt.Errorf("%w: topic longer than 65535 bytes", ErrFormat)
	}
	start := len(b)
	enc := checkpoint.Enc{B: b}
	enc.Raw(magic[:])
	enc.U16(Version)
	enc.U8(e.Kind)
	enc.U8(0) // reserved
	enc.U16(uint16(len(e.Topic)))
	enc.Raw([]byte(e.Topic))
	enc.U64(e.Seq)
	enc.U32(uint32(e.count()))
	switch e.Kind {
	case KindRecords:
		for _, r := range e.Records {
			enc.B = r.AppendBinary(enc.B)
		}
	case KindAlerts:
		for _, a := range e.Alerts {
			appendAlert(&enc, a)
		}
	}
	enc.U32(crc32.Checksum(enc.B[start:], castagnoli))
	return enc.B, nil
}

// appendAlert encodes one alert body.
func appendAlert(enc *checkpoint.Enc, a ids.Alert) {
	addr := a.Prefix.Addr().As16()
	enc.Raw(addr[:])
	enc.U8(uint8(a.Prefix.Bits()))
	enc.U8(uint8(a.Level))
	enc.U64(a.EstimatedDsts)
	enc.U64(a.Packets)
	enc.Time(a.First)
	enc.Time(a.Last)
	if a.Escalated {
		enc.U8(1)
	} else {
		enc.U8(0)
	}
}

// Decode parses one complete envelope from b into e, reusing e's
// Records/Alerts backing arrays. The slice must hold exactly one
// envelope: trailing bytes are ErrFormat (the transport is
// message-framed, so extra bytes mean a framing bug, not a second
// envelope). Decoded Records/Alerts do not alias b.
func (e *Envelope) Decode(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	if !bytes.Equal(b[:8], magic[:]) {
		return ErrBadMagic
	}
	if len(b) < minSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	body, crcb := b[:len(b)-4], b[len(b)-4:]
	d := checkpoint.NewDec(crcb)
	if d.U32() != crc32.Checksum(body, castagnoli) {
		return ErrChecksum
	}
	d = checkpoint.NewDec(body[8:])
	if v := d.U16(); v != Version {
		return fmt.Errorf("%w: version %d (supported: %d)", ErrVersion, v, Version)
	}
	e.Kind = d.U8()
	if reserved := d.U8(); reserved != 0 {
		return fmt.Errorf("%w: nonzero reserved byte", ErrFormat)
	}
	e.Topic = string(d.Raw(int(d.U16())))
	e.Seq = d.U64()
	count := int(d.U32())
	if d.Err() != nil {
		// The CRC validated, so the bytes arrived intact: a header field
		// overrunning the message is an encoder bug, not truncation.
		return fmt.Errorf("%w: header fields overrun envelope", ErrFormat)
	}
	e.Records = e.Records[:0]
	e.Alerts = e.Alerts[:0]
	var bodySize int
	switch e.Kind {
	case KindRecords:
		bodySize = firewall.RecordWireSize
	case KindAlerts:
		bodySize = alertWireSize
	case KindEOS:
		if count != 0 || d.Len() != 0 {
			return fmt.Errorf("%w: payload on an EOS envelope", ErrFormat)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown envelope kind %d", ErrFormat, e.Kind)
	}
	// Compare via division so a huge count cannot overflow a multiply.
	switch {
	case count > d.Len()/bodySize:
		return fmt.Errorf("%w: payload holds %d of %d bodies", ErrTruncated,
			d.Len()/bodySize, count)
	case d.Len() > count*bodySize:
		return fmt.Errorf("%w: %d trailing payload bytes", ErrFormat,
			d.Len()-count*bodySize)
	}
	switch e.Kind {
	case KindRecords:
		for i := 0; i < count; i++ {
			var r firewall.Record
			if err := r.DecodeBinary(d.Raw(firewall.RecordWireSize)); err != nil {
				return fmt.Errorf("%w: record %d: %v", ErrFormat, i, err)
			}
			e.Records = append(e.Records, r)
		}
	case KindAlerts:
		for i := 0; i < count; i++ {
			a, err := decodeAlert(d)
			if err != nil {
				return fmt.Errorf("alert %d: %w", i, err)
			}
			e.Alerts = append(e.Alerts, a)
		}
	}
	return nil
}

// decodeAlert decodes one alert body.
func decodeAlert(d *checkpoint.Dec) (ids.Alert, error) {
	var a ids.Alert
	var addr [16]byte
	copy(addr[:], d.Raw(16))
	bits := d.U8()
	a.Level = netaddr6.AggLevel(d.U8())
	a.EstimatedDsts = d.U64()
	a.Packets = d.U64()
	a.First = d.Time()
	a.Last = d.Time()
	esc := d.U8()
	if err := d.Err(); err != nil {
		return a, err
	}
	if bits > 128 {
		return a, fmt.Errorf("%w: prefix length %d", ErrFormat, bits)
	}
	if esc > 1 {
		return a, fmt.Errorf("%w: escalated flag %d", ErrFormat, esc)
	}
	a.Prefix = netip.PrefixFrom(netip.AddrFrom16(addr), int(bits))
	a.Escalated = esc == 1
	return a, nil
}

// RecordTopic names one record-stream partition of a publisher: the
// topic records whose coarsest-level source prefix hashes to part land
// on. stream identifies the publisher (a collector name); part is the
// dispatch.Partition index.
func RecordTopic(stream string, part int) string {
	return fmt.Sprintf("rec.%s.%d", stream, part)
}

// RecordTopics names all parts partitions of stream, in partition
// order — the topic list a publisher registers and a subscriber
// merges.
func RecordTopics(stream string, parts int) []string {
	if parts < 1 {
		parts = 1
	}
	topics := make([]string, parts)
	for i := range topics {
		topics[i] = RecordTopic(stream, i)
	}
	return topics
}

// AlertTopic names the finished-alert topic of stream — the channel an
// aggregator publishes its output on.
func AlertTopic(stream string) string {
	return "alert." + stream
}
