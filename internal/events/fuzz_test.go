package events

import (
	"errors"
	"testing"
)

// FuzzEnvelopeRoundtrip drives Decode with arbitrary bytes. The codec
// contract under fuzzing:
//
//   - Decode never panics.
//   - A failed decode returns one of the five typed codec errors.
//   - A successful decode is canonical: re-encoding the decoded
//     envelope reproduces the input bytes exactly.
func FuzzEnvelopeRoundtrip(f *testing.F) {
	seed := []Envelope{
		{Kind: KindEOS, Topic: "rec.p0.0", Seq: 3},
		{Kind: KindRecords, Topic: "rec.p0.1", Seq: 0, Records: testRecords(2)},
		{Kind: KindAlerts, Topic: "alert.agg", Seq: 1, Alerts: testAlerts()},
		{Kind: KindRecords, Topic: "", Seq: 0},
	}
	for _, e := range seed {
		b, err := e.Append(nil)
		if err != nil {
			f.Fatalf("seeding: %v", err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte("v6evnt\r\n"))
	f.Add(append([]byte("v6evnt\r\n"), make([]byte, 32)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		var e Envelope
		err := e.Decode(data)
		if err != nil {
			for _, typed := range []error{ErrBadMagic, ErrVersion, ErrChecksum, ErrTruncated, ErrFormat} {
				if errors.Is(err, typed) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		}
		out, err := e.Append(nil)
		if err != nil {
			t.Fatalf("re-encoding a decoded envelope: %v", err)
		}
		if string(out) != string(data) {
			t.Fatalf("non-canonical envelope:\n in  %x\n out %x", data, out)
		}
	})
}
