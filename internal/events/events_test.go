package events

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

func testRecords(n int) []firewall.Record {
	ts := time.Date(2021, 4, 1, 12, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		p48 := netaddr6.NthSubprefix(netaddr6.MustPrefix("2001:db8::/36"), 48, uint64(i%7))
		recs = append(recs, firewall.Record{
			Time:    ts.Add(time.Duration(i) * time.Second),
			Src:     netaddr6.WithIID(p48.Addr(), uint64(i+1)),
			Dst:     netaddr6.MustAddr("2001:db8:f::1"),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(40000 + i),
			DstPort: uint16(22 + i%3),
			Length:  uint16(60 + i),
		})
	}
	return recs
}

func testAlerts() []ids.Alert {
	ts := time.Date(2021, 4, 2, 8, 30, 0, 0, time.UTC)
	return []ids.Alert{
		{
			Prefix:        netaddr6.MustPrefix("2001:db8:1::/48"),
			Level:         netaddr6.Agg48,
			EstimatedDsts: 1234,
			Packets:       99,
			First:         ts,
			Last:          ts.Add(time.Hour),
			Escalated:     true,
		},
		{
			Prefix:        netip.PrefixFrom(netaddr6.MustAddr("2001:db8:2:3:4:5:6:7"), 128),
			Level:         netaddr6.Agg128,
			EstimatedDsts: 1,
			Packets:       10,
			// Zero times exercise the sentinel path of the time codec.
			First: time.Time{},
			Last:  time.Time{},
		},
	}
}

// reCRC recomputes and patches the trailing checksum so tests can
// corrupt individual header fields without tripping ErrChecksum.
func reCRC(b []byte) []byte {
	sum := crc32.Checksum(b[:len(b)-4], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
	return b
}

func encode(t *testing.T, e Envelope) []byte {
	t.Helper()
	b, err := e.Append(nil)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return b
}

func TestRecordsRoundtrip(t *testing.T) {
	in := Envelope{
		Kind:    KindRecords,
		Topic:   "rec.pub0.3",
		Seq:     42,
		Records: testRecords(5),
	}
	b := encode(t, in)
	var out Envelope
	if err := out.Decode(b); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Kind != in.Kind || out.Topic != in.Topic || out.Seq != in.Seq {
		t.Fatalf("header mismatch: got %+v", out)
	}
	if len(out.Alerts) != 0 {
		t.Fatalf("alerts on a records envelope: %v", out.Alerts)
	}
	if !reflect.DeepEqual(normTimes(out.Records), normTimes(in.Records)) {
		t.Fatalf("records mismatch:\n got %v\nwant %v", out.Records, in.Records)
	}
	// Canonical: re-encoding the decoded envelope reproduces the bytes.
	b2 := encode(t, out)
	if string(b2) != string(b) {
		t.Fatal("re-encoded envelope differs from input bytes")
	}
}

// normTimes maps record times to UnixNano so DeepEqual ignores the
// wall-clock location the codec does not carry.
func normTimes(recs []firewall.Record) []firewall.Record {
	out := make([]firewall.Record, len(recs))
	for i, r := range recs {
		r.Time = time.Unix(0, r.Time.UnixNano()).UTC()
		out[i] = r
	}
	return out
}

func TestAlertsRoundtrip(t *testing.T) {
	in := Envelope{Kind: KindAlerts, Topic: "alert.agg", Seq: 7, Alerts: testAlerts()}
	b := encode(t, in)
	var out Envelope
	if err := out.Decode(b); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Kind != KindAlerts || out.Topic != in.Topic || out.Seq != in.Seq {
		t.Fatalf("header mismatch: got %+v", out)
	}
	if len(out.Alerts) != len(in.Alerts) {
		t.Fatalf("got %d alerts, want %d", len(out.Alerts), len(in.Alerts))
	}
	for i := range in.Alerts {
		want, got := in.Alerts[i], out.Alerts[i]
		if got.Prefix != want.Prefix || got.Level != want.Level ||
			got.EstimatedDsts != want.EstimatedDsts || got.Packets != want.Packets ||
			got.Escalated != want.Escalated ||
			!got.First.Equal(want.First) || !got.Last.Equal(want.Last) {
			t.Errorf("alert %d: got %+v, want %+v", i, got, want)
		}
	}
	if b2 := encode(t, out); string(b2) != string(b) {
		t.Fatal("re-encoded envelope differs from input bytes")
	}
}

func TestEOSRoundtrip(t *testing.T) {
	in := Envelope{Kind: KindEOS, Topic: "rec.pub1.0", Seq: 9}
	b := encode(t, in)
	// Reused envelope: stale Records/Alerts must be cleared by Decode.
	out := Envelope{Records: testRecords(2), Alerts: testAlerts()}
	if err := out.Decode(b); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Kind != KindEOS || out.Topic != in.Topic || out.Seq != in.Seq {
		t.Fatalf("header mismatch: got %+v", out)
	}
	if len(out.Records) != 0 || len(out.Alerts) != 0 {
		t.Fatal("EOS decode left stale payload slices populated")
	}
}

func TestEmptyRecordsEnvelope(t *testing.T) {
	b := encode(t, Envelope{Kind: KindRecords, Topic: "t", Seq: 0})
	var out Envelope
	if err := out.Decode(b); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(out.Records) != 0 {
		t.Fatalf("got %d records, want 0", len(out.Records))
	}
}

func TestAppendRejectsMismatchedPayload(t *testing.T) {
	cases := []Envelope{
		{Kind: KindRecords, Alerts: testAlerts()},
		{Kind: KindAlerts, Records: testRecords(1)},
		{Kind: KindEOS, Records: testRecords(1)},
		{Kind: 0},
		{Kind: 99},
	}
	for i, e := range cases {
		if _, err := e.Append(nil); !errors.Is(err, ErrFormat) {
			t.Errorf("case %d: got %v, want ErrFormat", i, err)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	valid := encode(t, Envelope{Kind: KindRecords, Topic: "tp", Seq: 1, Records: testRecords(3)})

	corrupt := func(mutate func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return mutate(b)
	}

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short magic", valid[:5], ErrTruncated},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"below min size", valid[:10], ErrTruncated},
		{"flipped payload bit", corrupt(func(b []byte) []byte { b[len(b)/2] ^= 1; return b }), ErrChecksum},
		{"future version", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[8:], 2)
			return reCRC(b)
		}), ErrVersion},
		{"reserved set", corrupt(func(b []byte) []byte { b[11] = 1; return reCRC(b) }), ErrFormat},
		{"unknown kind", corrupt(func(b []byte) []byte { b[10] = 9; return reCRC(b) }), ErrFormat},
		{"topic overruns envelope", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[12:], 0xFFFF)
			return reCRC(b)
		}), ErrFormat},
		{"count beyond payload", corrupt(func(b []byte) []byte {
			// count sits after topic ("tp", 2 bytes) and seq.
			binary.LittleEndian.PutUint32(b[headerSize+2+8:], 1<<30)
			return reCRC(b)
		}), ErrTruncated},
		{"trailing payload bytes", corrupt(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[headerSize+2+8:], 2)
			return reCRC(b)
		}), ErrFormat},
		{"payload on EOS", corrupt(func(b []byte) []byte {
			b[10] = KindEOS
			binary.LittleEndian.PutUint32(b[headerSize+2+8:], 0)
			return reCRC(b)
		}), ErrFormat},
	}
	for _, tc := range cases {
		var e Envelope
		if err := e.Decode(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeRejectsBadAlertFields(t *testing.T) {
	base := encode(t, Envelope{Kind: KindAlerts, Topic: "a", Seq: 0, Alerts: testAlerts()[:1]})
	payload := headerSize + 1 + 8 + 4 // after topic "a", seq, count

	bits := append([]byte(nil), base...)
	bits[payload+16] = 129
	var e Envelope
	if err := e.Decode(reCRC(bits)); !errors.Is(err, ErrFormat) {
		t.Errorf("prefix bits 129: got %v, want ErrFormat", err)
	}

	esc := append([]byte(nil), base...)
	esc[payload+alertWireSize-1] = 2
	if err := e.Decode(reCRC(esc)); !errors.Is(err, ErrFormat) {
		t.Errorf("escalated flag 2: got %v, want ErrFormat", err)
	}
}

func TestTopicHelpers(t *testing.T) {
	if got := RecordTopic("edge1", 3); got != "rec.edge1.3" {
		t.Errorf("RecordTopic: got %q", got)
	}
	if got := RecordTopics("edge1", 3); !reflect.DeepEqual(got, []string{
		"rec.edge1.0", "rec.edge1.1", "rec.edge1.2",
	}) {
		t.Errorf("RecordTopics: got %v", got)
	}
	if got := RecordTopics("edge1", 0); len(got) != 1 {
		t.Errorf("RecordTopics(0): got %v, want one topic", got)
	}
	if got := AlertTopic("agg"); got != "alert.agg" {
		t.Errorf("AlertTopic: got %q", got)
	}
}
