package pipeline

import (
	"bytes"
	"errors"
	"testing"

	"v6scan/internal/firewall"
)

// fuzzSeedLogs returns representative corpus seeds: a clean multi-
// record log, truncations at interesting offsets, and junk.
func fuzzSeedLogs() [][]byte {
	var buf bytes.Buffer
	w := firewall.NewWriter(&buf)
	for _, r := range streamParityRecords(200, 0) {
		w.Write(r)
	}
	w.Flush()
	clean := buf.Bytes()
	return [][]byte{
		nil,
		clean,
		clean[:len(clean)-1],
		clean[:firewall.RecordWireSize-1],
		clean[:firewall.RecordWireSize*3+17],
		bytes.Repeat([]byte{0xab}, 200),
	}
}

// FuzzParallelDecode differentially fuzzes the chunked decode path:
// for arbitrary log bytes and an arbitrary worker count, the
// ParallelLogSource must produce exactly the serial LogSource's record
// sequence and error class — including the trailing-bytes
// ErrShortRecord text on torn logs. It also checks the chunk planner's
// coverage invariants on every input.
func FuzzParallelDecode(f *testing.F) {
	for _, seed := range fuzzSeedLogs() {
		f.Add(seed, uint8(3))
	}
	f.Fuzz(func(t *testing.T, data []byte, workerSeed uint8) {
		workers := int(workerSeed%8) + 1

		chunks := firewall.PlanChunks(int64(len(data)), workers)
		var off int64
		for i, c := range chunks {
			if c.Offset != off || c.Length <= 0 {
				t.Fatalf("chunk %d = %+v, want contiguous from %d", i, c, off)
			}
			if i < len(chunks)-1 && c.Length%firewall.RecordWireSize != 0 {
				t.Fatalf("non-final chunk %d unaligned: %d bytes", i, c.Length)
			}
			off += c.Length
		}
		if off != int64(len(data)) {
			t.Fatalf("plan covers %d of %d bytes", off, len(data))
		}

		const batchSize = 64
		var want []firewall.Record
		wantErr := NewLogSource(bytes.NewReader(data)).EmitBatch(batchSize, collectBatches(&want))

		var got []firewall.Record
		src := NewParallelLogSource(bytes.NewReader(data), int64(len(data)), workers)
		gotErr := src.EmitBatch(batchSize, collectBatches(&got))

		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("workers=%d: parallel err %v, serial err %v", workers, gotErr, wantErr)
		}
		if gotErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("workers=%d: parallel err %q, serial err %q", workers, gotErr, wantErr)
			}
			if errors.Is(wantErr, firewall.ErrShortRecord) != errors.Is(gotErr, firewall.ErrShortRecord) {
				t.Fatalf("workers=%d: error class diverges: %v vs %v", workers, gotErr, wantErr)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records, serial %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d differs from serial decode", workers, i)
			}
		}
	})
}
