package pipeline

import (
	"reflect"
	"testing"

	"v6scan/internal/firewall"
)

// Batch/stream parity: every built-in stage must produce an identical
// downstream record sequence (and identical observable side state)
// whether fed record by record or in batches of any size. The batch
// driver hands each stage a copy of the chunk, since the batch
// contract allows consumers to compact the slice in place.

var parityBatchSizes = []int{1, 7, 64, 1 << 20}

// feedRecords drives the per-record path: Consume every record, then
// Flush.
func feedRecords(t *testing.T, sink RecordSink, recs []firewall.Record) {
	t.Helper()
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
}

// feedBatches drives the batch path in chunks of size n, emulating a
// batching source: each chunk is copied into a reused buffer the stage
// may mutate.
func feedBatches(t *testing.T, sink BatchSink, recs []firewall.Record, n int) {
	t.Helper()
	buf := make([]firewall.Record, 0, n)
	for start := 0; start < len(recs); start += n {
		end := min(start+n, len(recs))
		buf = append(buf[:0], recs[start:end]...)
		if err := sink.ConsumeBatch(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
}

// stageParity runs mk-built stages over both paths and requires the
// identical downstream sequence; it returns nothing — stage-specific
// side state is compared by the callers via the check hook, invoked
// once per run with the run's output.
func stageParity(t *testing.T, recs []firewall.Record,
	mk func(next RecordSink) RecordSink, check func(t *testing.T, out []firewall.Record)) {
	t.Helper()

	var want []firewall.Record
	ref := mk(Collector(func(r firewall.Record) { want = append(want, r) }))
	feedRecords(t, ref, recs)
	if check != nil {
		check(t, want)
	}

	for _, n := range parityBatchSizes {
		var got []firewall.Record
		stage := mk(Collector(func(r firewall.Record) { got = append(got, r) }))
		bs, ok := stage.(BatchSink)
		if !ok {
			t.Fatalf("stage %T is not batch-native", stage)
		}
		feedBatches(t, bs, recs, n)
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d records, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: record %d differs:\n%+v\n%+v", n, i, got[i], want[i])
			}
		}
		if check != nil {
			check(t, got)
		}
	}
}

func TestPolicyStageParity(t *testing.T) {
	stageParity(t, mixedStream(2, 1200), func(next RecordSink) RecordSink {
		return Policy(firewall.DefaultCollectPolicy(), next)
	}, func(t *testing.T, out []firewall.Record) {
		pol := firewall.DefaultCollectPolicy()
		for _, r := range out {
			if !pol.Admit(r) {
				t.Fatalf("policy let through %+v", r)
			}
		}
	})
}

func TestFilterStageParity(t *testing.T) {
	pred := func(r firewall.Record) bool { return r.DstPort == 22 }
	stageParity(t, mixedStream(2, 1200), func(next RecordSink) RecordSink {
		return Filter(pred, next)
	}, nil)
}

func TestTapStageParity(t *testing.T) {
	recs := mixedStream(2, 800)
	taps := 0
	stageParity(t, recs, func(next RecordSink) RecordSink {
		return Tap(func(firewall.Record) { taps++ }, next)
	}, nil)
	// One record-path run plus len(parityBatchSizes) batch runs.
	if want := len(recs) * (1 + len(parityBatchSizes)); taps != want {
		t.Fatalf("tap fired %d times, want %d", taps, want)
	}
}

func TestCounterStageParity(t *testing.T) {
	recs := mixedStream(2, 800)
	stageParity(t, recs, func(next RecordSink) RecordSink { return NewCounter(next) }, nil)
}

func TestCounterStageCounts(t *testing.T) {
	recs := mixedStream(1, 500)
	ref := NewCounter(Discard)
	feedRecords(t, ref, recs)
	for _, n := range parityBatchSizes {
		c := NewCounter(Discard)
		feedBatches(t, c, recs, n)
		if c.Count() != ref.Count() {
			t.Fatalf("batch=%d: count %d, want %d", n, c.Count(), ref.Count())
		}
	}
}

func TestDaySortStageParity(t *testing.T) {
	stageParity(t, mixedStream(3, 900), func(next RecordSink) RecordSink {
		return NewDaySort(next)
	}, func(t *testing.T, out []firewall.Record) {
		for i := 1; i < len(out); i++ {
			if out[i].Time.Before(out[i-1].Time) {
				t.Fatalf("output not time-ordered at %d", i)
			}
		}
	})
}

func TestArtifactStageParity(t *testing.T) {
	// The artifact filter needs day-ordered input; mixedStream days
	// arrive in order and the filter buffers per day internally, so the
	// jittered intra-day order is fine.
	recs := mixedStream(3, 1200)
	var refStats firewall.FilterStats
	{
		f := firewall.NewArtifactFilter()
		var want []firewall.Record
		feedRecords(t, NewArtifactStage(f, Collector(func(r firewall.Record) { want = append(want, r) })), recs)
		refStats = f.Stats()
		if refStats.PacketsDropped == 0 {
			t.Fatal("stream contains no artifacts; parity test is vacuous")
		}
	}
	stageParity(t, recs, func(next RecordSink) RecordSink {
		return NewArtifactStage(firewall.NewArtifactFilter(), next)
	}, nil)
	// Stats parity at every batch size.
	for _, n := range parityBatchSizes {
		f := firewall.NewArtifactFilter()
		feedBatches(t, NewArtifactStage(f, Discard), recs, n)
		if !reflect.DeepEqual(f.Stats(), refStats) {
			t.Fatalf("batch=%d: stats differ:\n%+v\n%+v", n, f.Stats(), refStats)
		}
	}
}

func TestTeeStageParity(t *testing.T) {
	recs := mixedStream(2, 700)
	mkTee := func(a, b RecordSink) BatchSink {
		return Tee(a, b).(BatchSink)
	}

	var wantA, wantB []firewall.Record
	ref := mkTee(
		Collector(func(r firewall.Record) { wantA = append(wantA, r) }),
		// The second branch filters, exercising compaction isolation.
		Chain().Filter(func(r firewall.Record) bool { return r.DstPort == 22 }).
			Into(Collector(func(r firewall.Record) { wantB = append(wantB, r) })),
	)
	feedRecords(t, ref, recs)

	for _, n := range parityBatchSizes {
		var gotA, gotB []firewall.Record
		tee := mkTee(
			Collector(func(r firewall.Record) { gotA = append(gotA, r) }),
			Chain().Filter(func(r firewall.Record) bool { return r.DstPort == 22 }).
				Into(Collector(func(r firewall.Record) { gotB = append(gotB, r) })),
		)
		feedBatches(t, tee, recs, n)
		if !reflect.DeepEqual(gotA, wantA) || !reflect.DeepEqual(gotB, wantB) {
			t.Fatalf("batch=%d: tee branches diverge (%d/%d vs %d/%d records)",
				n, len(gotA), len(gotB), len(wantA), len(wantB))
		}
	}
}

// TestFilteredChainParity runs the composed standard chain (policy →
// day sort → artifact → counter) over both paths — the whole-pipeline
// version of the per-stage checks above.
func TestFilteredChainParity(t *testing.T) {
	recs := mixedStream(3, 1500)
	build := func(next RecordSink) RecordSink {
		return Policy(firewall.DefaultCollectPolicy(),
			NewDaySort(NewArtifactStage(firewall.NewArtifactFilter(), NewCounter(next))))
	}
	stageParity(t, recs, build, nil)
}
