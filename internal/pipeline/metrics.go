package pipeline

// Pipeline observability: a Metrics bundle the builder threads through
// the source side (a batch-native meter stage) and the terminal sinks
// (cadence and checkpoint instrumentation via the shared
// checkpointPolicy plumbing), backed by the dependency-free
// internal/metrics registry.
//
// The hot-path budget is strict: every per-record or per-batch update
// is a single atomic add on a pre-registered instrument, and all
// instrument methods are nil-safe, so an uninstrumented pipeline pays
// only nil checks and the instrumented one allocates nothing per
// record (BenchmarkMetricsHotPath holds the pipeline allocation-flat
// with a registry attached).

import (
	"sync/atomic"
	"time"

	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
	"v6scan/internal/metrics"
)

// Metrics is the instrument bundle one pipeline reports into. Build
// one with RegisterMetrics (or populate fields selectively — nil
// instruments are no-ops) and attach it with Builder.Instrument.
//
// The advance/checkpoint fields are updated from the dispatching
// goroutine only; the instruments themselves are atomic, so scraping
// the registry concurrently is always safe.
type Metrics struct {
	// SourceRecords / SourceBatches / BatchOccupancy describe what the
	// source emits: total records, total batch deliveries, and the
	// per-batch record count distribution (occupancy of the 4096-record
	// default batch is the pipeline's effective batching efficiency).
	SourceRecords  *metrics.Counter
	SourceBatches  *metrics.Counter
	BatchOccupancy *metrics.Histogram

	// Advances counts eviction-cadence fires (detector Advance, IDS
	// Tick); EvictionLagSeconds is the stream-time gap between
	// consecutive fires — nominally AdvanceEvery, larger when the
	// stream jumps past several cadence marks at once.
	Advances           *metrics.Counter
	EvictionLagSeconds *metrics.Gauge

	// Checkpoint instrumentation: successful cuts, failed cuts, write
	// duration, and the wall-clock instant of the last successful cut
	// (exposed as an age gauge by RegisterMetrics).
	Checkpoints               *metrics.Counter
	CheckpointErrors          *metrics.Counter
	CheckpointDurationSeconds *metrics.Histogram

	// lastAdvance is the previous fire's stream time (dispatching
	// goroutine only); lastCkptWall is the UnixNano of the last
	// successful checkpoint write, atomic for the age GaugeFunc.
	lastAdvance  time.Time
	lastCkptWall atomic.Int64
}

// occupancyBounds covers batch sizes from near-empty to the 4096
// default; DefaultBatchSize lands in the last finite bucket.
var occupancyBounds = []float64{1, 8, 64, 256, 1024, 4096}

// durationBounds covers checkpoint writes from sub-millisecond (small
// state, page cache) to tens of seconds (large state, cold disk).
var durationBounds = []float64{0.001, 0.01, 0.1, 1, 10}

// RegisterMetrics creates a fully-populated Metrics bundle registered
// under canonical v6scan_pipeline_* names, plus the process-wide
// dispatch gauges (batch pool traffic and hit rate) that do not belong
// to any single pipeline. Call once per registry.
func RegisterMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{
		SourceRecords: reg.Counter("v6scan_pipeline_records_total",
			"Records emitted by the pipeline source.", nil),
		SourceBatches: reg.Counter("v6scan_pipeline_batches_total",
			"Batches emitted by the pipeline source.", nil),
		BatchOccupancy: reg.Histogram("v6scan_pipeline_batch_occupancy",
			"Records per emitted batch.", nil, occupancyBounds),
		Advances: reg.Counter("v6scan_pipeline_advances_total",
			"Eviction-cadence fires (detector advances / IDS ticks).", nil),
		EvictionLagSeconds: reg.Gauge("v6scan_pipeline_eviction_lag_seconds",
			"Stream-time gap between the last two eviction fires.", nil),
		Checkpoints: reg.Counter("v6scan_pipeline_checkpoints_total",
			"Checkpoints written successfully.", nil),
		CheckpointErrors: reg.Counter("v6scan_pipeline_checkpoint_errors_total",
			"Checkpoint writes that failed.", nil),
		CheckpointDurationSeconds: reg.Histogram("v6scan_pipeline_checkpoint_duration_seconds",
			"Wall-clock duration of checkpoint writes.", nil, durationBounds),
	}
	reg.GaugeFunc("v6scan_pipeline_checkpoint_age_seconds",
		"Seconds since the last successful checkpoint write (-1 before the first).",
		nil, func() float64 {
			at := m.lastCkptWall.Load()
			if at == 0 {
				return -1
			}
			return time.Since(time.Unix(0, at)).Seconds()
		})
	registerDispatchMetrics(reg)
	return m
}

// registerDispatchMetrics exposes the process-wide batch-pool traffic
// and its hit rate.
func registerDispatchMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("v6scan_dispatch_pool_gets_total",
		"GetBatch calls against the process-wide batch pool.", nil,
		func() float64 { gets, _ := dispatch.PoolStats(); return float64(gets) })
	reg.GaugeFunc("v6scan_dispatch_pool_misses_total",
		"GetBatch calls that had to allocate.", nil,
		func() float64 { _, misses := dispatch.PoolStats(); return float64(misses) })
	reg.GaugeFunc("v6scan_dispatch_pool_hit_rate",
		"Fraction of GetBatch calls served from the pool.", nil,
		func() float64 {
			gets, misses := dispatch.PoolStats()
			if gets == 0 {
				return 1
			}
			return float64(gets-misses) / float64(gets)
		})
}

// ObserveAdvance records an eviction fire at stream time t. It is the
// exported hook for terminal consumers that drive their own cadence
// outside the builder's sink plumbing (the serve daemon's pump); the
// built-in sinks report through RunInto automatically.
func (m *Metrics) ObserveAdvance(t time.Time) { m.advanceFired(t) }

// ObserveCheckpoint records the outcome of one checkpoint write, for
// the same external consumers as ObserveAdvance.
func (m *Metrics) ObserveCheckpoint(dur time.Duration, err error) { m.checkpointDone(dur, err) }

// record counts one record on the single-record path.
func (m *Metrics) record() {
	if m == nil {
		return
	}
	m.SourceRecords.Inc()
}

// recordBatch counts one batch delivery of n records.
func (m *Metrics) recordBatch(n int) {
	if m == nil {
		return
	}
	m.SourceRecords.Add(n)
	m.SourceBatches.Inc()
	m.BatchOccupancy.Observe(float64(n))
}

// advanceFired records an eviction fire at stream time t.
func (m *Metrics) advanceFired(t time.Time) {
	if m == nil {
		return
	}
	m.Advances.Inc()
	if !m.lastAdvance.IsZero() {
		m.EvictionLagSeconds.Set(t.Sub(m.lastAdvance).Seconds())
	}
	m.lastAdvance = t
}

// checkpointDone records the outcome of one checkpoint write.
func (m *Metrics) checkpointDone(dur time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.CheckpointErrors.Inc()
		return
	}
	m.Checkpoints.Inc()
	m.CheckpointDurationSeconds.Observe(dur.Seconds())
	m.lastCkptWall.Store(time.Now().UnixNano())
}

// meterStage counts source output without breaking batch continuity.
// Builder.Instrument mounts it ahead of every other stage so its
// numbers describe the raw source, not a filtered residue.
type meterStage struct {
	m    *Metrics
	next RecordSink
}

// Consume implements RecordSink.
func (s *meterStage) Consume(r firewall.Record) error {
	s.m.record()
	return s.next.Consume(r)
}

// ConsumeBatch implements BatchSink.
func (s *meterStage) ConsumeBatch(recs []firewall.Record) error {
	s.m.recordBatch(len(recs))
	return consumeBatch(s.next, recs)
}

// Flush implements RecordSink.
func (s *meterStage) Flush() error { return s.next.Flush() }
