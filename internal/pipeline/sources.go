package pipeline

import (
	"io"

	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/pcap"
)

// All EmitBatch implementations below share the pooled-buffer contract
// of the package doc ("Batch ownership"): chunk buffers are drawn from
// the dispatch package's batch arena — the same pool the sharded
// sinks' dispatcher recycles its per-shard buffers through — refilled
// in place for every chunk including the final short one, and returned
// to the pool when the source is drained. Consumers therefore must not
// retain an emitted slice beyond ConsumeBatch.

// SliceSource emits an in-memory record slice.
type SliceSource []firewall.Record

// Emit implements Source.
func (s SliceSource) Emit(emit func(r firewall.Record) error) error {
	for _, r := range s {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

// EmitBatch implements BatchSource. Each chunk is copied into a pooled
// scratch buffer before emission: the batch contract lets consumers
// (filter stages) compact the slice in place, and the caller's backing
// slice must not be mutated.
func (s SliceSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	if len(s) == 0 {
		return nil
	}
	buf := dispatch.GetBatch(min(batchSize, len(s)))
	defer dispatch.PutBatch(buf)
	for start := 0; start < len(s); start += batchSize {
		end := min(start+batchSize, len(s))
		*buf = append((*buf)[:0], s[start:end]...)
		if err := emit(*buf); err != nil {
			return err
		}
	}
	return nil
}

// LogSource streams records from a binary firewall log (the
// cmd/telescope-sim output format). Logs are written in time order, so
// no sorting stage is needed.
type LogSource struct {
	r *firewall.Reader
}

// NewLogSource returns a source reading the binary log format from r.
func NewLogSource(r io.Reader) *LogSource {
	return &LogSource{r: firewall.NewReader(r)}
}

// Emit implements Source.
func (s *LogSource) Emit(emit func(r firewall.Record) error) error {
	for {
		rec, err := s.r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
}

// EmitBatch implements BatchSource via Reader.NextBatch: each chunk is
// one bulk read plus a tight decode loop straight into the pooled
// chunk buffer, so steady-state ingest performs no per-record calls
// and no per-chunk allocations.
func (s *LogSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	buf := dispatch.GetBatch(batchSize)
	defer dispatch.PutBatch(buf)
	for {
		recs, err := s.r.NextBatch((*buf)[:0], batchSize)
		*buf = recs
		if len(recs) > 0 {
			if eerr := emit(recs); eerr != nil {
				return eerr
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// PcapSource streams decoded IPv6 frames from a classic pcap capture
// (Ethernet or raw IPv6 link types), skipping undecodable packets.
// Captures are normally time-ordered; callers with bounded disorder
// (interface-timestamp jitter) chain a WindowSort stage to repair it
// in flight, as cmd/v6scan's -window does — only unbounded disorder
// still needs collecting into a slice and SortByTime.
type PcapSource struct {
	r       io.Reader
	skipped int
}

// NewPcapSource returns a source decoding the pcap stream r.
func NewPcapSource(r io.Reader) *PcapSource { return &PcapSource{r: r} }

// Skipped reports how many packets failed to decode. It is valid
// after Emit and after EmitBatch alike — both paths count every
// undecodable packet as they pass it — and, the run having finished,
// on whichever of the two drove the pipeline.
func (s *PcapSource) Skipped() int { return s.skipped }

// Emit implements Source.
func (s *PcapSource) Emit(emit func(r firewall.Record) error) error {
	pr, err := pcap.NewReader(s.r)
	if err != nil {
		return err
	}
	var d layers.Decoded
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if perr := layers.ParseFrame(p.Data, pr.Header().LinkType, &d); perr != nil {
			s.skipped++
			continue
		}
		if err := emit(firewall.FromDecoded(p.Timestamp, &d)); err != nil {
			return err
		}
	}
}

// EmitBatch implements BatchSource: frames are decoded into a pooled
// chunk buffer and handed downstream batchSize at a time.
func (s *PcapSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	pr, err := pcap.NewReader(s.r)
	if err != nil {
		return err
	}
	var d layers.Decoded
	buf := dispatch.GetBatch(batchSize)
	defer dispatch.PutBatch(buf)
	for {
		p, err := pr.Next()
		if err == io.EOF {
			if len(*buf) > 0 {
				return emit(*buf)
			}
			return nil
		}
		if err != nil {
			return err
		}
		if perr := layers.ParseFrame(p.Data, pr.Header().LinkType, &d); perr != nil {
			s.skipped++
			continue
		}
		*buf = append(*buf, firewall.FromDecoded(p.Timestamp, &d))
		if len(*buf) == batchSize {
			if err := emit(*buf); err != nil {
				return err
			}
			*buf = (*buf)[:0]
		}
	}
}
