package pipeline

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"v6scan/internal/firewall"
)

// collectBatches appends every emitted batch into *dst (copying, since
// emitted batches are pooled loans).
func collectBatches(dst *[]firewall.Record) func([]firewall.Record) error {
	return func(recs []firewall.Record) error {
		*dst = append(*dst, recs...)
		return nil
	}
}

// serialDecode is the reference: the serial LogSource's record
// sequence and final error over the given log bytes.
func serialDecode(data []byte, batchSize int) ([]firewall.Record, error) {
	var recs []firewall.Record
	err := NewLogSource(bytes.NewReader(data)).EmitBatch(batchSize, collectBatches(&recs))
	return recs, err
}

// TestParallelLogSourceParity pins the tentpole contract: the parallel
// source's record sequence is identical to the serial LogSource at 1,
// 2, and 8 workers (run under -race in CI), across batch sizes.
func TestParallelLogSourceParity(t *testing.T) {
	recs := streamParityRecords(20_000, 0)
	data := encodeLog(t, recs)
	for _, batchSize := range []int{1, 7, 512, DefaultBatchSize} {
		want, err := serialDecode(data, batchSize)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			var got []firewall.Record
			src := NewParallelLogSource(bytes.NewReader(data), int64(len(data)), workers)
			if err := src.EmitBatch(batchSize, collectBatches(&got)); err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batchSize, workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("batch=%d workers=%d: %d records, want %d", batchSize, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("batch=%d workers=%d: record %d differs", batchSize, workers, i)
				}
			}
		}
	}
}

// TestParallelLogSourceTruncated checks error parity on a torn log:
// same decoded records, and an error in the same ErrShortRecord class
// with the same text as the serial reader's.
func TestParallelLogSourceTruncated(t *testing.T) {
	data := encodeLog(t, streamParityRecords(1000, 0))
	data = data[:len(data)-11]
	want, wantErr := serialDecode(data, 128)
	if !errors.Is(wantErr, firewall.ErrShortRecord) {
		t.Fatalf("serial err = %v", wantErr)
	}
	for _, workers := range []int{1, 2, 8} {
		var got []firewall.Record
		src := NewParallelLogSource(bytes.NewReader(data), int64(len(data)), workers)
		err := src.EmitBatch(128, collectBatches(&got))
		if !errors.Is(err, firewall.ErrShortRecord) || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: err %q, want %q", workers, err, wantErr)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d records before error, want %d", workers, len(got), len(want))
		}
	}
}

// TestParallelLogSourceEmitError verifies a downstream error aborts
// the fan-out promptly and is returned unwrapped (the Source
// contract), with all worker goroutines joined before return.
func TestParallelLogSourceEmitError(t *testing.T) {
	data := encodeLog(t, streamParityRecords(50_000, 0))
	sentinel := errors.New("downstream says stop")
	src := NewParallelLogSource(bytes.NewReader(data), int64(len(data)), 4)
	calls := 0
	err := src.EmitBatch(256, func([]firewall.Record) error {
		calls++
		if calls == 3 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel unwrapped", err)
	}
	if calls != 3 {
		t.Fatalf("emit called %d times after abort, want 3", calls)
	}
}

func TestParallelLogSourceEmpty(t *testing.T) {
	src := NewParallelLogSource(bytes.NewReader(nil), 0, 4)
	err := src.EmitBatch(64, func([]firewall.Record) error {
		t.Fatal("emit on empty input")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMergeSourceMatchesConcatenated pins the k-way merge contract:
// merging chronologically split day-files reproduces the concatenated
// single-file sequence exactly, including ties at the split points.
func TestMergeSourceMatchesConcatenated(t *testing.T) {
	recs := streamParityRecords(30_000, 0)
	whole := encodeLog(t, recs)
	want, err := serialDecode(whole, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 7} {
		srcs := make([]Source, 0, k)
		for i := 0; i < k; i++ {
			lo, hi := i*len(recs)/k, (i+1)*len(recs)/k
			srcs = append(srcs, NewLogSource(bytes.NewReader(encodeLog(t, recs[lo:hi]))))
		}
		var got []firewall.Record
		if err := NewMergeSource(srcs...).EmitBatch(512, collectBatches(&got)); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d records, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("k=%d: record %d differs from concatenated run", k, i)
			}
		}
	}
}

// TestMergeSourceInterleaved merges round-robin-split inputs — the
// maximally interleaving case — and checks the output is the stable
// time-ordered interleave (equal to the original sorted sequence,
// since each part preserves its relative order).
func TestMergeSourceInterleaved(t *testing.T) {
	recs := streamParityRecords(10_000, 0)
	const k = 4
	parts := make([][]firewall.Record, k)
	for i, r := range recs {
		parts[i%k] = append(parts[i%k], r)
	}
	srcs := make([]Source, k)
	for i := range parts {
		srcs[i] = NewLogSource(bytes.NewReader(encodeLog(t, parts[i])))
	}
	var got []firewall.Record
	if err := NewMergeSource(srcs...).EmitBatch(256, collectBatches(&got)); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("%d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d out of order in merged stream", i)
		}
	}
}

// TestMergeSourceTieBreak pins the tie rule directly: equal timestamps
// across sources come out in source-index order.
func TestMergeSourceTieBreak(t *testing.T) {
	ts := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	mk := func(port uint16) firewall.Record {
		r := streamParityRecords(1, 0)[0]
		r.Time, r.DstPort = ts, port
		return r
	}
	a, b, c := mk(1), mk(2), mk(3)
	srcs := []Source{SliceSource{a, a}, SliceSource{b}, SliceSource{c, c}}
	var got []firewall.Record
	if err := NewMergeSource(srcs...).EmitBatch(64, collectBatches(&got)); err != nil {
		t.Fatal(err)
	}
	want := []firewall.Record{a, a, b, c, c}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = port %d, want port %d", i, got[i].DstPort, want[i].DstPort)
		}
	}
}

// TestMergeSourceSourceError: a failing input aborts the merge with
// that source's error, and every feeding goroutine shuts down (the
// test would deadlock or trip -race otherwise).
func TestMergeSourceSourceError(t *testing.T) {
	good := encodeLog(t, streamParityRecords(5000, 0))
	torn := encodeLog(t, streamParityRecords(5000, 0))
	torn = torn[:len(torn)-7]
	srcs := []Source{
		NewLogSource(bytes.NewReader(good)),
		NewLogSource(bytes.NewReader(torn)),
	}
	var got []firewall.Record
	err := NewMergeSource(srcs...).EmitBatch(128, collectBatches(&got))
	if !errors.Is(err, firewall.ErrShortRecord) {
		t.Fatalf("err = %v, want ErrShortRecord from the torn source", err)
	}
}

// TestMergeSourceEmitError: a downstream error aborts all feeders and
// returns unwrapped.
func TestMergeSourceEmitError(t *testing.T) {
	srcs := make([]Source, 3)
	for i := range srcs {
		srcs[i] = NewLogSource(bytes.NewReader(encodeLog(t, streamParityRecords(5000, 0))))
	}
	sentinel := errors.New("stop the merge")
	err := NewMergeSource(srcs...).EmitBatch(64, func([]firewall.Record) error { return sentinel })
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel unwrapped", err)
	}
}

func TestMergeSourceEmpty(t *testing.T) {
	if err := NewMergeSource().EmitBatch(64, func([]firewall.Record) error {
		t.Fatal("emit with no sources")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// All-empty inputs: no emits, clean end.
	srcs := []Source{SliceSource{}, SliceSource{}}
	if err := NewMergeSource(srcs...).EmitBatch(64, func([]firewall.Record) error {
		t.Fatal("emit with all-empty sources")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFromFilesDetectParity runs the full fluent pipeline over split
// day-files with parallel decode and checks the detector output equals
// the single-source run — the end-to-end version of the parity pins.
func TestFromFilesDetectParity(t *testing.T) {
	recs := streamParityRecords(30_000, 0)
	cfg := streamParityConfig()

	ref, err := From(SliceSource(recs)).Artifact().Detect(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderDetector(ref, cfg.Levels)

	dir := t.TempDir()
	paths := make([]string, 3)
	for i := range paths {
		lo, hi := i*len(recs)/3, (i+1)*len(recs)/3
		paths[i] = filepath.Join(dir, string(rune('a'+i))+".log")
		if err := os.WriteFile(paths[i], encodeLog(t, recs[lo:hi]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 2, 8} {
		for _, shards := range []int{1, 4} {
			det, err := FromFiles(paths...).
				DecodeWorkers(workers).
				Artifact().
				Detect(context.Background(), cfg, shards)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
			}
			got := renderDetector(det, cfg.Levels)
			for _, lvl := range cfg.Levels {
				if got[lvl] != want[lvl] {
					t.Fatalf("workers=%d shards=%d: level %v diverges from single-source run", workers, shards, lvl)
				}
			}
		}
	}
}

// TestFromFilesMissing: a bad path surfaces from the run, per the
// lazy-open contract.
func TestFromFilesMissing(t *testing.T) {
	_, err := FromFiles(filepath.Join(t.TempDir(), "absent.log")).
		Detect(context.Background(), streamParityConfig(), 1)
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want wrapped os.ErrNotExist", err)
	}
}

// TestFromFilesDuplicateInput: the same log reached twice — repeated
// path, symlink, or hardlink — would silently double every record in
// the merged stream, so the run must refuse with a diagnostic naming
// both paths.
func TestFromFilesDuplicateInput(t *testing.T) {
	dir := t.TempDir()
	real := filepath.Join(dir, "day.log")
	if err := os.WriteFile(real, encodeLog(t, streamParityRecords(100, 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	other := filepath.Join(dir, "other.log")
	if err := os.WriteFile(other, encodeLog(t, streamParityRecords(50, 0)), 0o644); err != nil {
		t.Fatal(err)
	}

	aliases := map[string]func() (string, error){
		"repeated path": func() (string, error) { return real, nil },
		"symlink": func() (string, error) {
			link := filepath.Join(dir, "day-symlink.log")
			return link, os.Symlink(real, link)
		},
		"hardlink": func() (string, error) {
			link := filepath.Join(dir, "day-hardlink.log")
			return link, os.Link(real, link)
		},
	}
	for name, mk := range aliases {
		alias, err := mk()
		if err != nil {
			t.Skipf("%s: %v", name, err) // filesystem without link support
		}
		_, err = FromFiles(real, other, alias).
			Detect(context.Background(), streamParityConfig(), 1)
		if err == nil || !strings.Contains(err.Error(), "duplicate input") {
			t.Errorf("%s: err = %v, want duplicate-input diagnostic", name, err)
		}
		if err != nil && !(strings.Contains(err.Error(), real) || strings.Contains(err.Error(), alias)) {
			t.Errorf("%s: diagnostic %q names neither path", name, err)
		}
	}

	// Distinct files with identical content are not duplicates.
	copyPath := filepath.Join(dir, "copy.log")
	b, err := os.ReadFile(real)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(copyPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromFiles(real, copyPath).
		Detect(context.Background(), streamParityConfig(), 1); err != nil {
		t.Errorf("independent copy rejected: %v", err)
	}
}
