package pipeline

import (
	"bytes"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/pcap"
)

// TestPcapSkippedAfterEmitBatch pins the documented contract that
// Skipped is valid after the batch path, not just Emit: undecodable
// packets interleaved with good frames are counted while the decoded
// records still flow.
func TestPcapSkippedAfterEmitBatch(t *testing.T) {
	recs := streamParityRecords(10, 0)
	var capture bytes.Buffer
	pw := pcap.NewWriter(&capture, pcap.WriterOptions{Nanosecond: true})
	junkAt := map[int]bool{0: true, 4: true, 9: true}
	for i, r := range recs {
		if junkAt[i] {
			// Too short to hold an Ethernet + IPv6 header: undecodable.
			if err := pw.WritePacket(r.Time.Add(-time.Millisecond), []byte{0xde, 0xad, 0xbe, 0xef}); err != nil {
				t.Fatal(err)
			}
		}
		frame, err := layers.BuildTCPSYN(r.Src, r.Dst, r.SrcPort, r.DstPort,
			layers.BuildOptions{Link: layers.LinkTypeEthernet})
		if err != nil {
			t.Fatal(err)
		}
		if err := pw.WritePacket(r.Time, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, batchSize := range []int{1, 3, DefaultBatchSize} {
		src := NewPcapSource(bytes.NewReader(capture.Bytes()))
		decoded := 0
		if err := src.EmitBatch(batchSize, func(part []firewall.Record) error {
			decoded += len(part)
			return nil
		}); err != nil {
			t.Fatalf("batch=%d: %v", batchSize, err)
		}
		if decoded != len(recs) {
			t.Fatalf("batch=%d: decoded %d records, want %d", batchSize, decoded, len(recs))
		}
		if got := src.Skipped(); got != len(junkAt) {
			t.Fatalf("batch=%d: Skipped() = %d after EmitBatch, want %d", batchSize, got, len(junkAt))
		}
	}
}
