package pipeline

import (
	"fmt"
	"sort"
	"time"

	"v6scan/internal/firewall"
)

// WindowSort is a bounded-lateness streaming reorder buffer: it
// repairs record disorder up to a configurable maximum skew window
// without ever buffering more than one window's worth of stream. It is
// the streaming replacement for whole-day buffering (DaySort) on
// near-sorted sources — pcap captures with interface-timestamp jitter,
// multi-writer logs with small interleave — where buffering a full day
// costs memory proportional to the day instead of the disorder bound.
//
// Semantics: a record is held until the stream maximum has advanced at
// least `window` past its timestamp, then released downstream in
// stable timestamp order. Whenever the input's disorder is bounded by
// the window — every record is at most `window` older than the records
// before it — the emitted sequence is exactly sort.SliceStable over
// the input (TestWindowSortMatchesFullSort). Peak buffering is the
// number of records whose timestamps span one window; nothing is
// spilled.
//
// A record arriving more than the window late — trailing the stream's
// high-water mark by more than the window — may be impossible to
// place without violating the downstream time-order contract
// (everything up to high-water − window may already have been
// released), so it is rejected with an error naming the skew. The
// check is against the high-water mark, not against what happens to
// have been released so far, so acceptance is a pure function of the
// record sequence: record-by-record and batched feeding fail (or
// succeed) identically. Callers pick the window from their source's
// worst-case disorder (cmd/v6scan's -window flag).
//
// Internally the buffer reuses the run-merge machinery of SortByTime:
// arrival order is tracked as maximal sorted runs, an in-order stream
// (the common case) stays a single run and costs no sort work, and a
// release merges only the runs that actually interleave.
type WindowSort struct {
	next   RecordSink
	window time.Duration

	buf []firewall.Record
	// runs holds the start index of every non-first sorted run in buf
	// (empty while the buffer is in arrival=timestamp order); bounds
	// and scratch are reused merge workspace, as in DaySort.
	runs    []int
	bounds  []int
	scratch []firewall.Record

	// maxSeen is the stream-time high-water mark; minBuf the smallest
	// buffered timestamp (valid while buf is non-empty).
	maxSeen time.Time
	minBuf  time.Time
}

// NewWindowSort returns a reorder stage releasing records once the
// stream has advanced window past them. A non-positive window degrades
// to a pass-through that still enforces non-decreasing output order.
func NewWindowSort(window time.Duration, next RecordSink) *WindowSort {
	if window < 0 {
		window = 0
	}
	return &WindowSort{next: next, window: window}
}

// Consume implements RecordSink.
func (w *WindowSort) Consume(r firewall.Record) error {
	if err := w.admit(r); err != nil {
		return err
	}
	return w.release()
}

// ConsumeBatch implements BatchSink. The whole batch is admitted
// before one release pass, so a batch pays one merge regardless of
// size; the emitted record sequence — and which records are rejected
// as too late — is identical to the per-record path (both are pure
// functions of the high-water mark).
func (w *WindowSort) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if err := w.admit(recs[i]); err != nil {
			return err
		}
	}
	return w.release()
}

// admit buffers one record (records are values, so the batch-ownership
// rule is moot here — nothing aliases the caller's slice).
func (w *WindowSort) admit(r firewall.Record) error {
	// Lateness is judged against the high-water mark before this
	// record (a record can never be late relative to itself). Anything
	// trailing by ≤ window is by construction newer than everything
	// released (releases stop at maxSeen − window), so accepted records
	// always still fit the output order.
	if !w.maxSeen.IsZero() && r.Time.Before(w.maxSeen.Add(-w.window)) {
		return fmt.Errorf("pipeline: record at %v trails the stream high-water mark %v by %v, exceeding the %v reorder window; increase the window to at least the source's worst-case disorder",
			r.Time, w.maxSeen, w.maxSeen.Sub(r.Time), w.window)
	}
	if n := len(w.buf); n > 0 && r.Time.Before(w.buf[n-1].Time) {
		w.runs = append(w.runs, n)
	}
	if len(w.buf) == 0 || r.Time.Before(w.minBuf) {
		w.minBuf = r.Time
	}
	w.buf = append(w.buf, r)
	if r.Time.After(w.maxSeen) {
		w.maxSeen = r.Time
	}
	return nil
}

// release emits every buffered record the high-water mark has advanced
// window past, in stable timestamp order.
func (w *WindowSort) release() error {
	if len(w.buf) == 0 {
		return nil
	}
	horizon := w.maxSeen.Add(-w.window)
	if w.minBuf.After(horizon) {
		return nil // even the oldest buffered record is still in flight
	}
	w.sortBuf()
	idx := sort.Search(len(w.buf), func(i int) bool { return w.buf[i].Time.After(horizon) })
	if idx == 0 {
		return nil
	}
	err := consumeBatch(w.next, w.buf[:idx])
	// The retained tail is untouched by downstream compaction (which
	// only writes within the emitted prefix). Reslice past the
	// released prefix rather than sliding the tail down: the next
	// growing append reallocates from the live tail alone, so memory
	// stays O(window) while a release costs O(released) — a memmove
	// here would make the steady-state per-record Consume path
	// O(window) per record. runs is empty after sortBuf, so no stored
	// index refers to the dropped prefix.
	w.buf = w.buf[idx:]
	if len(w.buf) > 0 {
		w.minBuf = w.buf[0].Time
	}
	return err
}

// sortBuf merges the arrival runs so buf is in stable timestamp order.
func (w *WindowSort) sortBuf() {
	if len(w.runs) == 0 {
		return
	}
	w.bounds = append(append(w.bounds[:0], 0), w.runs...)
	w.bounds = append(w.bounds, len(w.buf))
	mergeBounds(w.buf, w.bounds, &w.scratch)
	w.runs = w.runs[:0]
}

// Flush drains every still-buffered record downstream in order.
func (w *WindowSort) Flush() error {
	if len(w.buf) > 0 {
		w.sortBuf()
		if err := consumeBatch(w.next, w.buf); err != nil {
			return err
		}
		w.buf = w.buf[:0]
	}
	return w.next.Flush()
}
