package pipeline

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"v6scan/internal/firewall"
)

// ErrLateRecord reports a record that trails the stream too far to be
// placed without violating the downstream time-order contract. Callers
// can distinguish it from decode errors with errors.As and read how
// far the record trailed:
//
//	var late *pipeline.ErrLateRecord
//	if errors.As(err, &late) { ... late.RecordTime, late.Horizon ... }
type ErrLateRecord struct {
	// RecordTime is the rejected record's timestamp.
	RecordTime time.Time
	// Horizon is the earliest timestamp still admissible at the point
	// of rejection: high-water − window in the buffered regime, the
	// last released timestamp once a spill-enabled sort has stopped
	// releasing.
	Horizon time.Time
	// HighWater is the stream-time high-water mark at rejection.
	HighWater time.Time
	// Window is the configured reorder window.
	Window time.Duration
}

// Error implements error.
func (e *ErrLateRecord) Error() string {
	return fmt.Sprintf("pipeline: record at %v trails the stream high-water mark %v by %v, exceeding the %v reorder window (admissible horizon %v); increase the window to at least the source's worst-case disorder, or enable spill-to-disk",
		e.RecordTime, e.HighWater, e.HighWater.Sub(e.RecordTime), e.Window, e.Horizon)
}

// WindowSort is a bounded-lateness streaming reorder buffer: it
// repairs record disorder up to a configurable maximum skew window
// without ever buffering more than one window's worth of stream. It is
// the streaming replacement for whole-day buffering (DaySort) on
// near-sorted sources — pcap captures with interface-timestamp jitter,
// multi-writer logs with small interleave — where buffering a full day
// costs memory proportional to the day instead of the disorder bound.
//
// Semantics: a record is held until the stream maximum has advanced at
// least `window` past its timestamp, then released downstream in
// stable timestamp order. Whenever the input's disorder is bounded by
// the window — every record is at most `window` older than the records
// before it — the emitted sequence is exactly sort.SliceStable over
// the input (TestWindowSortMatchesFullSort). Peak buffering is the
// number of records whose timestamps span one window; nothing is
// spilled.
//
// A record arriving more than the window late — trailing the stream's
// high-water mark by more than the window — may be impossible to
// place without violating the downstream time-order contract
// (everything up to high-water − window may already have been
// released), so it is rejected with *ErrLateRecord naming the skew.
// The check is against the high-water mark, not against what happens
// to have been released so far, so acceptance is a pure function of
// the record sequence: record-by-record and batched feeding fail (or
// succeed) identically. Callers pick the window from their source's
// worst-case disorder (cmd/v6scan's -window flag) — or arm
// EnableSpill, which diverts beyond-window disorder through sorted
// on-disk run files merged at Flush instead of failing fast.
//
// Internally the buffer reuses the run-merge machinery of SortByTime:
// arrival order is tracked as maximal sorted runs, an in-order stream
// (the common case) stays a single run and costs no sort work, and a
// release merges only the runs that actually interleave.
type WindowSort struct {
	next   RecordSink
	window time.Duration

	buf []firewall.Record
	// runs holds the start index of every non-first sorted run in buf
	// (empty while the buffer is in arrival=timestamp order); bounds
	// and scratch are reused merge workspace, as in DaySort.
	runs    []int
	bounds  []int
	scratch []firewall.Record

	// maxSeen is the stream-time high-water mark; minBuf the smallest
	// buffered timestamp (valid while buf is non-empty); lastOut the
	// timestamp of the last record released downstream.
	maxSeen time.Time
	minBuf  time.Time
	lastOut time.Time

	// Spill-to-disk state (EnableSpill): beyond-window disorder stops
	// streaming releases and diverts the tail of the stream through
	// sorted on-disk run files merged at Flush, instead of failing
	// fast.
	spillEnabled bool
	spillDir     string
	spillMax     int
	spilling     bool
	spillRuns    []*os.File // sorted spill runs, in creation order
}

// defaultSpillRunRecords is the in-memory buffer bound while spilling:
// one sorted run file is written per this many buffered records
// (~7 MiB of records; ~6 MiB on the wire).
const defaultSpillRunRecords = 1 << 17

// EnableSpill arms the spill-to-disk path: when the stream's disorder
// exceeds the window, the sort stops streaming releases, buffers up to
// maxRun records (default defaultSpillRunRecords), writes each full
// buffer as a sorted run file under dir (default os.TempDir()), and
// k-way merges the run files with the in-memory remainder at Flush —
// the emitted sequence equals sort.SliceStable over the whole input.
// The price is that nothing more is emitted until Flush; the win is
// that multi-day disorder no longer aborts the run or demands
// stream-sized memory.
//
// A record older than the last record already released downstream is
// still rejected with *ErrLateRecord — it cannot be placed behind
// emitted output by any amount of buffering.
func (w *WindowSort) EnableSpill(dir string, maxRun int) {
	if maxRun <= 0 {
		maxRun = defaultSpillRunRecords
	}
	w.spillEnabled = true
	w.spillDir = dir
	w.spillMax = maxRun
}

// NewWindowSort returns a reorder stage releasing records once the
// stream has advanced window past them. A non-positive window degrades
// to a pass-through that still enforces non-decreasing output order.
func NewWindowSort(window time.Duration, next RecordSink) *WindowSort {
	if window < 0 {
		window = 0
	}
	return &WindowSort{next: next, window: window}
}

// Consume implements RecordSink.
func (w *WindowSort) Consume(r firewall.Record) error {
	if err := w.admit(r); err != nil {
		return err
	}
	if w.spilling {
		return w.maybeSpill()
	}
	return w.release()
}

// ConsumeBatch implements BatchSink. The whole batch is admitted
// before one release pass, so a batch pays one merge regardless of
// size; the emitted record sequence — and, in the fail-fast regime,
// which records are rejected as too late — is identical to the
// per-record path (both are pure functions of the high-water mark).
// In the spill regime rejection instead compares against output
// already released downstream, which does depend on release
// granularity: a record the eagerly-releasing record path has passed
// may still be placeable when it arrives mid-batch.
func (w *WindowSort) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if err := w.admit(recs[i]); err != nil {
			return err
		}
	}
	if w.spilling {
		return w.maybeSpill()
	}
	return w.release()
}

// admit buffers one record (records are values, so the batch-ownership
// rule is moot here — nothing aliases the caller's slice).
func (w *WindowSort) admit(r firewall.Record) error {
	// Lateness is judged against the high-water mark before this
	// record (a record can never be late relative to itself). Anything
	// trailing by ≤ window is by construction newer than everything
	// released (releases stop at maxSeen − window), so accepted records
	// always still fit the output order.
	if !w.maxSeen.IsZero() && r.Time.Before(w.maxSeen.Add(-w.window)) {
		if !w.spillEnabled {
			return &ErrLateRecord{RecordTime: r.Time, Horizon: w.maxSeen.Add(-w.window), HighWater: w.maxSeen, Window: w.window}
		}
		// Spill regime: the record is placeable as long as it is not
		// older than what has already been emitted (lastOut ≤
		// maxSeen − window always, so this branch subsumes the one
		// above once spilling).
		if r.Time.Before(w.lastOut) {
			return &ErrLateRecord{RecordTime: r.Time, Horizon: w.lastOut, HighWater: w.maxSeen, Window: w.window}
		}
		w.spilling = true
	}
	if n := len(w.buf); n > 0 && r.Time.Before(w.buf[n-1].Time) {
		w.runs = append(w.runs, n)
	}
	if len(w.buf) == 0 || r.Time.Before(w.minBuf) {
		w.minBuf = r.Time
	}
	w.buf = append(w.buf, r)
	if r.Time.After(w.maxSeen) {
		w.maxSeen = r.Time
	}
	return nil
}

// release emits every buffered record the high-water mark has advanced
// window past, in stable timestamp order.
func (w *WindowSort) release() error {
	if len(w.buf) == 0 {
		return nil
	}
	horizon := w.maxSeen.Add(-w.window)
	if w.minBuf.After(horizon) {
		return nil // even the oldest buffered record is still in flight
	}
	w.sortBuf()
	idx := sort.Search(len(w.buf), func(i int) bool { return w.buf[i].Time.After(horizon) })
	if idx == 0 {
		return nil
	}
	// Record the release high-water before emitting: downstream
	// compaction may overwrite the emitted prefix during the call.
	w.lastOut = w.buf[idx-1].Time
	err := consumeBatch(w.next, w.buf[:idx])
	// The retained tail is untouched by downstream compaction (which
	// only writes within the emitted prefix). Reslice past the
	// released prefix rather than sliding the tail down: the next
	// growing append reallocates from the live tail alone, so memory
	// stays O(window) while a release costs O(released) — a memmove
	// here would make the steady-state per-record Consume path
	// O(window) per record. runs is empty after sortBuf, so no stored
	// index refers to the dropped prefix.
	w.buf = w.buf[idx:]
	if len(w.buf) > 0 {
		w.minBuf = w.buf[0].Time
	}
	return err
}

// sortBuf merges the arrival runs so buf is in stable timestamp order.
func (w *WindowSort) sortBuf() {
	if len(w.runs) == 0 {
		return
	}
	w.bounds = append(append(w.bounds[:0], 0), w.runs...)
	w.bounds = append(w.bounds, len(w.buf))
	mergeBounds(w.buf, w.bounds, &w.scratch)
	w.runs = w.runs[:0]
}

// Flush drains every still-buffered record downstream in order. In the
// spill regime it k-way merges the sorted run files with the in-memory
// remainder first; the full emitted sequence (streamed prefix + merged
// tail) equals sort.SliceStable over the entire input.
func (w *WindowSort) Flush() error {
	if w.spilling {
		if err := w.mergeSpill(); err != nil {
			return err
		}
		return w.next.Flush()
	}
	if len(w.buf) > 0 {
		w.sortBuf()
		if err := consumeBatch(w.next, w.buf); err != nil {
			return err
		}
		w.buf = w.buf[:0]
	}
	return w.next.Flush()
}

// maybeSpill writes the in-memory buffer as one sorted run file when
// it reaches the spill bound, keeping memory O(spillMax) no matter how
// long the disordered tail runs.
func (w *WindowSort) maybeSpill() error {
	if len(w.buf) < w.spillMax {
		return nil
	}
	w.sortBuf()
	f, err := os.CreateTemp(w.spillDir, "windowsort-*.run")
	if err != nil {
		return fmt.Errorf("pipeline: creating spill run: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	fw := firewall.NewWriter(bw)
	for i := range w.buf {
		if err := fw.Write(w.buf[i]); err != nil {
			f.Close()
			os.Remove(f.Name())
			return err
		}
	}
	if err := fw.Flush(); err == nil {
		err = bw.Flush()
	} else {
		bw.Flush()
	}
	if err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("pipeline: writing spill run: %w", err)
	}
	w.spillRuns = append(w.spillRuns, f)
	w.buf = w.buf[:0]
	return nil
}

// spillCursor streams one sorted run during the merge: the on-disk
// runs decode in batches through the firewall reader; the in-memory
// remainder is just a slice.
type spillCursor struct {
	rd    *firewall.Reader
	batch []firewall.Record
	i     int
	done  bool
}

func (c *spillCursor) head() *firewall.Record { return &c.batch[c.i] }

// advance refills the cursor's batch when exhausted; done is set at
// end of run.
func (c *spillCursor) advance() error {
	c.i++
	if c.i < len(c.batch) {
		return nil
	}
	if c.rd == nil {
		c.done = true
		return nil
	}
	recs, err := c.rd.NextBatch(c.batch[:0], cap(c.batch))
	c.batch, c.i = recs, 0
	if len(recs) == 0 {
		c.done = true
		if err == io.EOF {
			err = nil
		}
		return err
	}
	if err == io.EOF {
		err = nil
	}
	return err
}

// mergeSpill merges the spill run files and the in-memory remainder
// downstream in stable timestamp order: ties resolve to the
// earliest-created run (the in-memory remainder last), which is
// arrival order — exactly sort.SliceStable's tie rule.
func (w *WindowSort) mergeSpill() error {
	defer func() {
		for _, f := range w.spillRuns {
			f.Close()
			os.Remove(f.Name())
		}
		w.spillRuns = nil
	}()
	w.sortBuf()
	cursors := make([]*spillCursor, 0, len(w.spillRuns)+1)
	for _, f := range w.spillRuns {
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("pipeline: rewinding spill run: %w", err)
		}
		c := &spillCursor{
			rd:    firewall.NewReader(bufio.NewReaderSize(f, 1<<16)),
			batch: make([]firewall.Record, 0, DefaultBatchSize),
			i:     -1,
		}
		if err := c.advance(); err != nil {
			return err
		}
		cursors = append(cursors, c)
	}
	if len(w.buf) > 0 {
		cursors = append(cursors, &spillCursor{batch: w.buf})
	}
	out := make([]firewall.Record, 0, DefaultBatchSize)
	for {
		// Linear min-scan over the live cursors: the run count is
		// input-size/spillMax, small enough that a heap would not pay
		// for itself before hundreds of runs.
		var min *spillCursor
		for _, c := range cursors {
			if c.done {
				continue
			}
			if min == nil || c.head().Time.Before(min.head().Time) {
				min = c
			}
		}
		if min == nil {
			break
		}
		out = append(out, *min.head())
		if err := min.advance(); err != nil {
			return err
		}
		if len(out) == cap(out) {
			if err := consumeBatch(w.next, out); err != nil {
				return err
			}
			out = out[:0]
		}
	}
	w.buf = w.buf[:0]
	if len(out) > 0 {
		return consumeBatch(w.next, out)
	}
	return nil
}
