package pipeline

import (
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
)

// Every built-in terminal sink implements the unified Sink lifecycle:
// Flush finalizes results exactly once (repeat calls are no-ops),
// Close implies Flush, is idempotent, and releases held resources —
// so the builder's RunInto can tear any terminal down uniformly, even
// after a mid-stream error. Results are read through each sink's typed
// Result accessor, valid after Flush.

// SinkFunc adapts a record function to RecordSink; Flush is a no-op.
type SinkFunc func(r firewall.Record) error

// Consume implements RecordSink.
func (f SinkFunc) Consume(r firewall.Record) error { return f(r) }

// ConsumeBatch implements BatchSink so function sinks (collectors,
// Discard) terminate a batch chain without breaking continuity.
func (f SinkFunc) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if err := f(recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink.
func (f SinkFunc) Flush() error { return nil }

// Close implements Sink.
func (f SinkFunc) Close() error { return nil }

// Collector adapts an error-free accumulator (the analysis package's
// HeatmapCollector.Add, DNSCollector.Add, …) to RecordSink.
func Collector(add func(r firewall.Record)) RecordSink {
	return SinkFunc(func(r firewall.Record) error {
		add(r)
		return nil
	})
}

// Discard drops every record; useful as a Tee branch terminator.
var Discard RecordSink = SinkFunc(func(firewall.Record) error { return nil })

// DetectorSink terminates a pipeline in the multi-aggregation scan
// detector. Flush calls Finish, after which the detector's scan
// accessors are valid.
type DetectorSink struct {
	D       *core.Detector
	flushed bool
}

// NewDetectorSink wraps a detector.
func NewDetectorSink(d *core.Detector) *DetectorSink { return &DetectorSink{D: d} }

// Consume implements RecordSink.
func (s *DetectorSink) Consume(r firewall.Record) error { return s.D.Process(r) }

// ConsumeBatch implements BatchSink.
func (s *DetectorSink) ConsumeBatch(recs []firewall.Record) error {
	for _, r := range recs {
		if err := s.D.Process(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink, finalizing the detector exactly once.
func (s *DetectorSink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.D.Finish()
	}
	return nil
}

// Close implements Sink.
func (s *DetectorSink) Close() error { return s.Flush() }

// Result returns the finished detector. Valid after Flush.
func (s *DetectorSink) Result() *core.Detector { return s.D }

// ShardedSink terminates a pipeline in the sharded detector,
// forwarding batches to its parallel ProcessBatch path. Flush calls
// Finish, which merges the shards and surfaces any worker error.
type ShardedSink struct {
	D *core.ShardedDetector
}

// NewShardedSink wraps a sharded detector.
func NewShardedSink(d *core.ShardedDetector) *ShardedSink { return &ShardedSink{D: d} }

// Consume implements RecordSink via the detector's staged batching.
func (s *ShardedSink) Consume(r firewall.Record) error { return s.D.Process(r) }

// ConsumeBatch implements BatchSink.
func (s *ShardedSink) ConsumeBatch(recs []firewall.Record) error { return s.D.ProcessBatch(recs) }

// Flush implements RecordSink. The detector's Finish is idempotent, so
// repeat flushes only re-report the first worker error.
func (s *ShardedSink) Flush() error { return s.D.Finish() }

// Close implements Sink, stopping the worker shards if Flush has not
// already.
func (s *ShardedSink) Close() error { return s.D.Finish() }

// Result returns the merged single-detector view of all shards — the
// same object the analysis builders consume. Valid after Flush.
func (s *ShardedSink) Result() *core.Detector { return s.D.Merged() }

// MAWISink terminates a pipeline in a capture-window MAWI detector;
// Flush stores the window's scans in Scans.
type MAWISink struct {
	D       *core.MAWIDetector
	Scans   []core.MAWIScan
	flushed bool
}

// NewMAWISink wraps a MAWI detector.
func NewMAWISink(d *core.MAWIDetector) *MAWISink { return &MAWISink{D: d} }

// Consume implements RecordSink.
func (s *MAWISink) Consume(r firewall.Record) error {
	s.D.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink.
func (s *MAWISink) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		s.D.Process(recs[i])
	}
	return nil
}

// Flush implements RecordSink, finalizing the window exactly once.
func (s *MAWISink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.Scans = s.D.Finish()
	}
	return nil
}

// Close implements Sink.
func (s *MAWISink) Close() error { return s.Flush() }

// Result returns the window's detected scans. Valid after Flush.
func (s *MAWISink) Result() []core.MAWIScan { return s.Scans }

// IDSSink terminates a pipeline in the dynamic-aggregation IDS engine;
// Flush stores the accumulated alerts in Alerts.
//
// TickEvery, when positive, forwards Engine.Tick on a stream-time
// cadence (checked at record/batch granularity) so idle candidates
// are evicted mid-stream as in an inline deployment; zero leaves all
// eviction to Flush.
type IDSSink struct {
	E         *ids.Engine
	TickEvery time.Duration
	Alerts    []ids.Alert
	lastTick  time.Time
	flushed   bool
}

// NewIDSSink wraps an IDS engine.
func NewIDSSink(e *ids.Engine) *IDSSink { return &IDSSink{E: e} }

// Consume implements RecordSink. The cadence check runs before the
// record is ingested: a record whose timestamp jumped past the
// cadence first advances the engine clock (evicting candidates that
// went idle during the gap, as an inline deployment's timer would)
// and only then contributes its own activity.
func (s *IDSSink) Consume(r firewall.Record) error {
	if due(&s.lastTick, s.TickEvery, r.Time) {
		s.E.Tick(r.Time)
	}
	s.E.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink. The batch is split at every
// cadence point so ticks fire at the same stream positions as on the
// per-record path — batch size (and stages that force the record
// path) never change which sessions merge.
func (s *IDSSink) ConsumeBatch(recs []firewall.Record) error {
	if s.TickEvery <= 0 {
		s.E.ProcessBatch(recs)
		return nil
	}
	start := 0
	for i, r := range recs {
		if due(&s.lastTick, s.TickEvery, r.Time) {
			s.E.ProcessBatch(recs[start:i])
			s.E.Tick(r.Time)
			start = i
		}
	}
	s.E.ProcessBatch(recs[start:])
	return nil
}

// Flush implements RecordSink, draining the engine exactly once (a
// second Flush would return an empty alert set, so repeats are
// no-ops).
func (s *IDSSink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.Alerts = s.E.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *IDSSink) Close() error { return s.Flush() }

// Result returns the accumulated alerts. Valid after Flush.
func (s *IDSSink) Result() []ids.Alert { return s.Alerts }

// ShardedIDSSink terminates a pipeline in the sharded IDS engine,
// forwarding batches to its parallel ProcessBatch path; Flush stops
// the workers and stores the deterministically merged alerts in
// Alerts. TickEvery behaves as on IDSSink.
type ShardedIDSSink struct {
	E         *ids.ShardedEngine
	TickEvery time.Duration
	Alerts    []ids.Alert
	lastTick  time.Time
	flushed   bool
}

// NewShardedIDSSink wraps a sharded IDS engine.
func NewShardedIDSSink(e *ids.ShardedEngine) *ShardedIDSSink { return &ShardedIDSSink{E: e} }

// Consume implements RecordSink via the engine's staged batching; the
// cadence check runs before ingestion, as on IDSSink.
func (s *ShardedIDSSink) Consume(r firewall.Record) error {
	if due(&s.lastTick, s.TickEvery, r.Time) {
		s.E.Tick(r.Time)
	}
	s.E.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink, splitting at cadence points as
// on IDSSink.
func (s *ShardedIDSSink) ConsumeBatch(recs []firewall.Record) error {
	if s.TickEvery <= 0 {
		s.E.ProcessBatch(recs)
		return nil
	}
	start := 0
	for i, r := range recs {
		if due(&s.lastTick, s.TickEvery, r.Time) {
			s.E.ProcessBatch(recs[start:i])
			s.E.Tick(r.Time)
			start = i
		}
	}
	s.E.ProcessBatch(recs[start:])
	return nil
}

// Flush implements RecordSink, stopping the workers and merging the
// alerts exactly once.
func (s *ShardedIDSSink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.Alerts = s.E.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *ShardedIDSSink) Close() error { return s.Flush() }

// Result returns the deterministically merged alerts. Valid after
// Flush.
func (s *ShardedIDSSink) Result() []ids.Alert { return s.Alerts }

// due reports whether a stream-time tick cadence has elapsed at t,
// advancing the stored mark when it has. A zero or negative cadence
// never fires; the first record only arms the mark.
func due(last *time.Time, every time.Duration, t time.Time) bool {
	if every <= 0 {
		return false
	}
	if last.IsZero() || t.Sub(*last) >= every {
		fire := !last.IsZero()
		*last = t
		return fire
	}
	return false
}

// LogSink writes every record to a binary firewall log; Flush drains
// the writer's buffer.
type LogSink struct {
	W *firewall.Writer
}

// NewLogSink wraps a log writer.
func NewLogSink(w *firewall.Writer) *LogSink { return &LogSink{W: w} }

// Consume implements RecordSink.
func (s *LogSink) Consume(r firewall.Record) error { return s.W.Write(r) }

// ConsumeBatch implements BatchSink.
func (s *LogSink) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if err := s.W.Write(recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink; draining the writer's buffer is
// naturally idempotent.
func (s *LogSink) Flush() error { return s.W.Flush() }

// Close implements Sink.
func (s *LogSink) Close() error { return s.W.Flush() }
