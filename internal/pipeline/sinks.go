package pipeline

import (
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
)

// Every built-in terminal sink implements the unified Sink lifecycle:
// Flush finalizes results exactly once (repeat calls are no-ops),
// Close implies Flush, is idempotent, and releases held resources —
// so the builder's RunInto can tear any terminal down uniformly, even
// after a mid-stream error. Results are read through each sink's typed
// Result accessor, valid after Flush.

// SinkFunc adapts a record function to RecordSink; Flush is a no-op.
type SinkFunc func(r firewall.Record) error

// Consume implements RecordSink.
func (f SinkFunc) Consume(r firewall.Record) error { return f(r) }

// ConsumeBatch implements BatchSink so function sinks (collectors,
// Discard) terminate a batch chain without breaking continuity.
func (f SinkFunc) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if err := f(recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink.
func (f SinkFunc) Flush() error { return nil }

// Close implements Sink.
func (f SinkFunc) Close() error { return nil }

// Collector adapts an error-free accumulator (the analysis package's
// HeatmapCollector.Add, DNSCollector.Add, …) to RecordSink.
func Collector(add func(r firewall.Record)) RecordSink {
	return SinkFunc(func(r firewall.Record) error {
		add(r)
		return nil
	})
}

// Discard drops every record; useful as a Tee branch terminator.
var Discard RecordSink = SinkFunc(func(firewall.Record) error { return nil })

// DetectorSink terminates a pipeline in the multi-aggregation scan
// detector. Flush calls Finish, after which the detector's scan
// accessors are valid.
//
// AdvanceEvery, when positive, forwards Detector.Advance on a
// stream-time cadence (checked at record/batch granularity) so
// sessions idle past the timeout are closed mid-stream and the
// working set stays proportional to one timeout of stream instead of
// growing until Flush. Advancing never changes the detected scans —
// a session closed early by Advance is exactly the session Finish
// would have closed — so the cadence is purely a memory bound.
//
// The embedded checkpointPolicy (Builder.CheckpointEvery) adds a
// second cadence that snapshots the detector to disk at consistent
// stream-time cuts; at a shared fire point the advance runs first, so
// the snapshot includes the eviction horizon's effect.
type DetectorSink struct {
	D            *core.Detector
	AdvanceEvery time.Duration
	checkpointPolicy
	lastAdvance time.Time
	flushed     bool
}

// NewDetectorSink wraps a detector.
func NewDetectorSink(d *core.Detector) *DetectorSink { return &DetectorSink{D: d} }

// setCadence lets Builder.AdvanceEvery reach this sink through
// RunInto.
func (s *DetectorSink) setCadence(d time.Duration) { s.AdvanceEvery = d }

// Consume implements RecordSink. The cadence check runs before the
// record is ingested, as on IDSSink: a record that jumped past the
// cadence first advances the eviction horizon, then contributes its
// own activity.
func (s *DetectorSink) Consume(r firewall.Record) error {
	switch {
	case due(&s.lastAdvance, s.AdvanceEvery, r.Time):
		s.D.Advance(r.Time)
		s.met.advanceFired(r.Time)
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	case s.AdvanceEvery <= 0:
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	}
	return s.D.Process(r)
}

// ConsumeBatch implements BatchSink, splitting the batch at every
// cadence point so advances and checkpoints fire at the same stream
// positions as on the per-record path.
func (s *DetectorSink) ConsumeBatch(recs []firewall.Record) error {
	return splitByCadences(recs,
		s.cadences(s, s.AdvanceEvery, &s.lastAdvance,
			func(t time.Time) error { s.D.Advance(t); return nil }),
		func(part []firewall.Record) error {
			return s.D.ProcessBatch(part)
		})
}

// Flush implements RecordSink, finalizing the detector exactly once.
func (s *DetectorSink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.D.Finish()
	}
	return nil
}

// Close implements Sink.
func (s *DetectorSink) Close() error { return s.Flush() }

// Result returns the finished detector. Valid after Flush.
func (s *DetectorSink) Result() *core.Detector { return s.D }

// ShardedSink terminates a pipeline in the sharded detector,
// forwarding batches to its parallel ProcessBatch path. Flush calls
// Finish, which merges the shards and surfaces any worker error.
//
// AdvanceEvery behaves as on DetectorSink: the cadence forwards a
// global stream-time horizon to every shard through the dispatcher's
// mark channel (ordered with the record stream), so per-shard session
// state is evicted continuously — even on shards whose own records
// lag the global clock — and the merged output stays byte-identical
// to the unsharded, un-advanced detector's.
type ShardedSink struct {
	D            *core.ShardedDetector
	AdvanceEvery time.Duration
	checkpointPolicy
	lastAdvance time.Time
}

// NewShardedSink wraps a sharded detector.
func NewShardedSink(d *core.ShardedDetector) *ShardedSink { return &ShardedSink{D: d} }

// setCadence lets Builder.AdvanceEvery reach this sink through
// RunInto.
func (s *ShardedSink) setCadence(d time.Duration) { s.AdvanceEvery = d }

// Consume implements RecordSink via the detector's staged batching;
// the cadence check runs before ingestion, as on DetectorSink.
func (s *ShardedSink) Consume(r firewall.Record) error {
	switch {
	case due(&s.lastAdvance, s.AdvanceEvery, r.Time):
		if err := s.D.Advance(r.Time); err != nil {
			return err
		}
		s.met.advanceFired(r.Time)
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	case s.AdvanceEvery <= 0:
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	}
	return s.D.Process(r)
}

// ConsumeBatch implements BatchSink, splitting at cadence points as on
// DetectorSink.
func (s *ShardedSink) ConsumeBatch(recs []firewall.Record) error {
	return splitByCadences(recs,
		s.cadences(s, s.AdvanceEvery, &s.lastAdvance, s.D.Advance),
		s.D.ProcessBatch)
}

// Flush implements RecordSink. The detector's Finish is idempotent, so
// repeat flushes only re-report the first worker error.
func (s *ShardedSink) Flush() error { return s.D.Finish() }

// Close implements Sink, stopping the worker shards if Flush has not
// already.
func (s *ShardedSink) Close() error { return s.D.Finish() }

// Result returns the merged single-detector view of all shards — the
// same object the analysis builders consume. Valid after Flush.
func (s *ShardedSink) Result() *core.Detector { return s.D.Merged() }

// MAWISink terminates a pipeline in a capture-window MAWI detector;
// Flush stores the window's scans in Scans.
type MAWISink struct {
	D       *core.MAWIDetector
	Scans   []core.MAWIScan
	flushed bool
}

// NewMAWISink wraps a MAWI detector.
func NewMAWISink(d *core.MAWIDetector) *MAWISink { return &MAWISink{D: d} }

// Consume implements RecordSink.
func (s *MAWISink) Consume(r firewall.Record) error {
	s.D.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink.
func (s *MAWISink) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		s.D.Process(recs[i])
	}
	return nil
}

// Flush implements RecordSink, finalizing the window exactly once.
func (s *MAWISink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.Scans = s.D.Finish()
	}
	return nil
}

// Close implements Sink.
func (s *MAWISink) Close() error { return s.Flush() }

// Result returns the window's detected scans. Valid after Flush.
func (s *MAWISink) Result() []core.MAWIScan { return s.Scans }

// IDSSink terminates a pipeline in the dynamic-aggregation IDS engine;
// Flush stores the accumulated alerts in Alerts.
//
// AdvanceEvery, when positive, forwards Engine.Tick on a stream-time
// cadence (checked at record/batch granularity) so idle candidates
// are evicted mid-stream as in an inline deployment; zero leaves all
// eviction to Flush. The field carries the same name on every
// cadence-capable sink, so Builder.AdvanceEvery drives whichever
// terminal follows. The embedded checkpointPolicy behaves as on
// DetectorSink: the tick fires before the snapshot at a shared cut.
type IDSSink struct {
	E *ids.Engine
	// AdvanceEvery is the unified eviction cadence.
	AdvanceEvery time.Duration
	// TickEvery is the cadence's original name on the IDS sinks.
	// It still works — AdvanceEvery wins when both are set.
	//
	// Deprecated: set AdvanceEvery (or Builder.AdvanceEvery) instead.
	TickEvery time.Duration
	checkpointPolicy
	Alerts      []ids.Alert
	lastAdvance time.Time
	flushed     bool
}

// NewIDSSink wraps an IDS engine.
func NewIDSSink(e *ids.Engine) *IDSSink { return &IDSSink{E: e} }

// setCadence lets Builder.AdvanceEvery reach this sink through
// RunInto (the builder cadence drives Tick here).
func (s *IDSSink) setCadence(d time.Duration) { s.AdvanceEvery = d }

// advanceCadence resolves the unified field against its deprecated
// alias: AdvanceEvery when set, else TickEvery.
func (s *IDSSink) advanceCadence() time.Duration {
	if s.AdvanceEvery > 0 {
		return s.AdvanceEvery
	}
	return s.TickEvery
}

// Consume implements RecordSink. The cadence check runs before the
// record is ingested: a record whose timestamp jumped past the
// cadence first advances the engine clock (evicting candidates that
// went idle during the gap, as an inline deployment's timer would)
// and only then contributes its own activity.
func (s *IDSSink) Consume(r firewall.Record) error {
	adv := s.advanceCadence()
	switch {
	case due(&s.lastAdvance, adv, r.Time):
		s.E.Tick(r.Time)
		s.met.advanceFired(r.Time)
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	case adv <= 0:
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	}
	s.E.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink. The batch is split at every
// cadence point so ticks and checkpoints fire at the same stream
// positions as on the per-record path — batch size (and stages that
// force the record path) never change which sessions merge.
func (s *IDSSink) ConsumeBatch(recs []firewall.Record) error {
	return splitByCadences(recs,
		s.cadences(s, s.advanceCadence(), &s.lastAdvance,
			func(t time.Time) error { s.E.Tick(t); return nil }),
		func(part []firewall.Record) error { s.E.ProcessBatch(part); return nil })
}

// Flush implements RecordSink, draining the engine exactly once (a
// second Flush would return an empty alert set, so repeats are
// no-ops).
func (s *IDSSink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.Alerts = s.E.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *IDSSink) Close() error { return s.Flush() }

// Result returns the accumulated alerts. Valid after Flush.
func (s *IDSSink) Result() []ids.Alert { return s.Alerts }

// ShardedIDSSink terminates a pipeline in the sharded IDS engine,
// forwarding batches to its parallel ProcessBatch path; Flush stops
// the workers and stores the deterministically merged alerts in
// Alerts. AdvanceEvery (and the deprecated TickEvery alias) behaves
// as on IDSSink.
type ShardedIDSSink struct {
	E *ids.ShardedEngine
	// AdvanceEvery is the unified eviction cadence.
	AdvanceEvery time.Duration
	// TickEvery is the cadence's original name on the IDS sinks.
	// It still works — AdvanceEvery wins when both are set.
	//
	// Deprecated: set AdvanceEvery (or Builder.AdvanceEvery) instead.
	TickEvery time.Duration
	checkpointPolicy
	Alerts      []ids.Alert
	lastAdvance time.Time
	flushed     bool
}

// NewShardedIDSSink wraps a sharded IDS engine.
func NewShardedIDSSink(e *ids.ShardedEngine) *ShardedIDSSink { return &ShardedIDSSink{E: e} }

// setCadence lets Builder.AdvanceEvery reach this sink through
// RunInto (the builder cadence drives Tick here).
func (s *ShardedIDSSink) setCadence(d time.Duration) { s.AdvanceEvery = d }

// advanceCadence resolves the unified field against its deprecated
// alias, as on IDSSink.
func (s *ShardedIDSSink) advanceCadence() time.Duration {
	if s.AdvanceEvery > 0 {
		return s.AdvanceEvery
	}
	return s.TickEvery
}

// Consume implements RecordSink via the engine's staged batching; the
// cadence check runs before ingestion, as on IDSSink.
func (s *ShardedIDSSink) Consume(r firewall.Record) error {
	adv := s.advanceCadence()
	switch {
	case due(&s.lastAdvance, adv, r.Time):
		s.E.Tick(r.Time)
		s.met.advanceFired(r.Time)
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	case adv <= 0:
		if err := s.maybeCheckpoint(s, r.Time); err != nil {
			return err
		}
	}
	s.E.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink, splitting at cadence points as
// on IDSSink.
func (s *ShardedIDSSink) ConsumeBatch(recs []firewall.Record) error {
	return splitByCadences(recs,
		s.cadences(s, s.advanceCadence(), &s.lastAdvance,
			func(t time.Time) error { s.E.Tick(t); return nil }),
		func(part []firewall.Record) error { s.E.ProcessBatch(part); return nil })
}

// Flush implements RecordSink, stopping the workers and merging the
// alerts exactly once.
func (s *ShardedIDSSink) Flush() error {
	if !s.flushed {
		s.flushed = true
		s.Alerts = s.E.Flush()
	}
	return nil
}

// Close implements Sink.
func (s *ShardedIDSSink) Close() error { return s.Flush() }

// Result returns the deterministically merged alerts. Valid after
// Flush.
func (s *ShardedIDSSink) Result() []ids.Alert { return s.Alerts }

// cadence is one stream-time cadence a batch is split against: a
// mark, a period, and the action to run at each fire point. A zero
// cadence (nil mark or non-positive period) never fires.
type cadence struct {
	last  *time.Time
	every time.Duration
	fire  func(time.Time) error
}

// splitByCadences drives a batch through process, splitting it at the
// union of every cadence's stream-time fire points and invoking the
// fires there first — exactly the positions the per-record path (due
// checks before each Consume) would fire at, so batch size never
// changes which sessions merge, when eviction horizons advance, or
// where checkpoints cut. All-zero cadences degrade to one process
// call. Shared by the detector sinks (fire = Advance) and the IDS
// sinks (fire = Tick); checkpointPolicy.cadences assembles each
// sink's list, with the checkpoint check riding inside the eviction
// fire when both are configured.
func splitByCadences(recs []firewall.Record, cads []cadence,
	process func([]firewall.Record) error) error {
	active := false
	for i := range cads {
		if cads[i].last != nil && cads[i].every > 0 {
			active = true
		}
	}
	if !active {
		return process(recs)
	}
	start := 0
	for i := range recs {
		t := recs[i].Time
		split := false
		for j := range cads {
			c := &cads[j]
			if c.last == nil || !due(c.last, c.every, t) {
				continue
			}
			if !split {
				if err := process(recs[start:i]); err != nil {
					return err
				}
				start = i
				split = true
			}
			if err := c.fire(t); err != nil {
				return err
			}
		}
	}
	return process(recs[start:])
}

// due reports whether a stream-time tick cadence has elapsed at t,
// advancing the stored mark when it has. A zero or negative cadence
// never fires; the first record only arms the mark.
func due(last *time.Time, every time.Duration, t time.Time) bool {
	if every <= 0 {
		return false
	}
	if last.IsZero() || t.Sub(*last) >= every {
		fire := !last.IsZero()
		*last = t
		return fire
	}
	return false
}

// LogSink writes every record to a binary firewall log; Flush drains
// the writer's buffer.
type LogSink struct {
	W *firewall.Writer
}

// NewLogSink wraps a log writer.
func NewLogSink(w *firewall.Writer) *LogSink { return &LogSink{W: w} }

// Consume implements RecordSink.
func (s *LogSink) Consume(r firewall.Record) error { return s.W.Write(r) }

// ConsumeBatch implements BatchSink.
func (s *LogSink) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if err := s.W.Write(recs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink; draining the writer's buffer is
// naturally idempotent.
func (s *LogSink) Flush() error { return s.W.Flush() }

// Close implements Sink.
func (s *LogSink) Close() error { return s.W.Flush() }
