package pipeline

import (
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
)

// SinkFunc adapts a record function to RecordSink; Flush is a no-op.
type SinkFunc func(r firewall.Record) error

// Consume implements RecordSink.
func (f SinkFunc) Consume(r firewall.Record) error { return f(r) }

// Flush implements RecordSink.
func (f SinkFunc) Flush() error { return nil }

// Collector adapts an error-free accumulator (the analysis package's
// HeatmapCollector.Add, DNSCollector.Add, …) to RecordSink.
func Collector(add func(r firewall.Record)) RecordSink {
	return SinkFunc(func(r firewall.Record) error {
		add(r)
		return nil
	})
}

// Discard drops every record; useful as a Tee branch terminator.
var Discard RecordSink = SinkFunc(func(firewall.Record) error { return nil })

// DetectorSink terminates a pipeline in the multi-aggregation scan
// detector. Flush calls Finish, after which the detector's scan
// accessors are valid.
type DetectorSink struct {
	D *core.Detector
}

// NewDetectorSink wraps a detector.
func NewDetectorSink(d *core.Detector) *DetectorSink { return &DetectorSink{D: d} }

// Consume implements RecordSink.
func (s *DetectorSink) Consume(r firewall.Record) error { return s.D.Process(r) }

// ConsumeBatch implements BatchSink.
func (s *DetectorSink) ConsumeBatch(recs []firewall.Record) error {
	for _, r := range recs {
		if err := s.D.Process(r); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink.
func (s *DetectorSink) Flush() error {
	s.D.Finish()
	return nil
}

// ShardedSink terminates a pipeline in the sharded detector,
// forwarding batches to its parallel ProcessBatch path. Flush calls
// Finish, which merges the shards and surfaces any worker error.
type ShardedSink struct {
	D *core.ShardedDetector
}

// NewShardedSink wraps a sharded detector.
func NewShardedSink(d *core.ShardedDetector) *ShardedSink { return &ShardedSink{D: d} }

// Consume implements RecordSink via the detector's staged batching.
func (s *ShardedSink) Consume(r firewall.Record) error { return s.D.Process(r) }

// ConsumeBatch implements BatchSink.
func (s *ShardedSink) ConsumeBatch(recs []firewall.Record) error { return s.D.ProcessBatch(recs) }

// Flush implements RecordSink.
func (s *ShardedSink) Flush() error { return s.D.Finish() }

// MAWISink terminates a pipeline in a capture-window MAWI detector;
// Flush stores the window's scans in Scans.
type MAWISink struct {
	D     *core.MAWIDetector
	Scans []core.MAWIScan
}

// NewMAWISink wraps a MAWI detector.
func NewMAWISink(d *core.MAWIDetector) *MAWISink { return &MAWISink{D: d} }

// Consume implements RecordSink.
func (s *MAWISink) Consume(r firewall.Record) error {
	s.D.Process(r)
	return nil
}

// Flush implements RecordSink.
func (s *MAWISink) Flush() error {
	s.Scans = s.D.Finish()
	return nil
}

// IDSSink terminates a pipeline in the dynamic-aggregation IDS engine;
// Flush stores the accumulated alerts in Alerts.
//
// TickEvery, when positive, forwards Engine.Tick on a stream-time
// cadence (checked at record/batch granularity) so idle candidates
// are evicted mid-stream as in an inline deployment; zero leaves all
// eviction to Flush.
type IDSSink struct {
	E         *ids.Engine
	TickEvery time.Duration
	Alerts    []ids.Alert
	lastTick  time.Time
}

// NewIDSSink wraps an IDS engine.
func NewIDSSink(e *ids.Engine) *IDSSink { return &IDSSink{E: e} }

// Consume implements RecordSink. The cadence check runs before the
// record is ingested: a record whose timestamp jumped past the
// cadence first advances the engine clock (evicting candidates that
// went idle during the gap, as an inline deployment's timer would)
// and only then contributes its own activity.
func (s *IDSSink) Consume(r firewall.Record) error {
	if due(&s.lastTick, s.TickEvery, r.Time) {
		s.E.Tick(r.Time)
	}
	s.E.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink. The batch is split at every
// cadence point so ticks fire at the same stream positions as on the
// per-record path — batch size (and stages that force the record
// path) never change which sessions merge.
func (s *IDSSink) ConsumeBatch(recs []firewall.Record) error {
	if s.TickEvery <= 0 {
		s.E.ProcessBatch(recs)
		return nil
	}
	start := 0
	for i, r := range recs {
		if due(&s.lastTick, s.TickEvery, r.Time) {
			s.E.ProcessBatch(recs[start:i])
			s.E.Tick(r.Time)
			start = i
		}
	}
	s.E.ProcessBatch(recs[start:])
	return nil
}

// Flush implements RecordSink.
func (s *IDSSink) Flush() error {
	s.Alerts = s.E.Flush()
	return nil
}

// ShardedIDSSink terminates a pipeline in the sharded IDS engine,
// forwarding batches to its parallel ProcessBatch path; Flush stops
// the workers and stores the deterministically merged alerts in
// Alerts. TickEvery behaves as on IDSSink.
type ShardedIDSSink struct {
	E         *ids.ShardedEngine
	TickEvery time.Duration
	Alerts    []ids.Alert
	lastTick  time.Time
}

// NewShardedIDSSink wraps a sharded IDS engine.
func NewShardedIDSSink(e *ids.ShardedEngine) *ShardedIDSSink { return &ShardedIDSSink{E: e} }

// Consume implements RecordSink via the engine's staged batching; the
// cadence check runs before ingestion, as on IDSSink.
func (s *ShardedIDSSink) Consume(r firewall.Record) error {
	if due(&s.lastTick, s.TickEvery, r.Time) {
		s.E.Tick(r.Time)
	}
	s.E.Process(r)
	return nil
}

// ConsumeBatch implements BatchSink, splitting at cadence points as
// on IDSSink.
func (s *ShardedIDSSink) ConsumeBatch(recs []firewall.Record) error {
	if s.TickEvery <= 0 {
		s.E.ProcessBatch(recs)
		return nil
	}
	start := 0
	for i, r := range recs {
		if due(&s.lastTick, s.TickEvery, r.Time) {
			s.E.ProcessBatch(recs[start:i])
			s.E.Tick(r.Time)
			start = i
		}
	}
	s.E.ProcessBatch(recs[start:])
	return nil
}

// Flush implements RecordSink.
func (s *ShardedIDSSink) Flush() error {
	s.Alerts = s.E.Flush()
	return nil
}

// due reports whether a stream-time tick cadence has elapsed at t,
// advancing the stored mark when it has. A zero or negative cadence
// never fires; the first record only arms the mark.
func due(last *time.Time, every time.Duration, t time.Time) bool {
	if every <= 0 {
		return false
	}
	if last.IsZero() || t.Sub(*last) >= every {
		fire := !last.IsZero()
		*last = t
		return fire
	}
	return false
}

// LogSink writes every record to a binary firewall log; Flush drains
// the writer's buffer.
type LogSink struct {
	W *firewall.Writer
}

// NewLogSink wraps a log writer.
func NewLogSink(w *firewall.Writer) *LogSink { return &LogSink{W: w} }

// Consume implements RecordSink.
func (s *LogSink) Consume(r firewall.Record) error { return s.W.Write(r) }

// Flush implements RecordSink.
func (s *LogSink) Flush() error { return s.W.Flush() }
