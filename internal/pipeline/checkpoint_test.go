package pipeline

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"v6scan/internal/checkpoint"
	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// The kill/restore suite pins the durable-state contract end to end:
// a run interrupted mid-stream and resumed from its latest checkpoint
// must produce byte-identical results to the uninterrupted run — for
// the detector and the IDS, at matching and at differing shard
// counts, with the eviction cadence in phase across the cut. The
// corruption tests pin the container's rejection behavior, and the
// committed v1 fixtures pin the on-disk format itself.

var updateCkptFixtures = flag.Bool("update-ckpt-fixtures", false,
	"regenerate the committed v1 checkpoint fixtures in testdata/")

// ckptRecords synthesizes a ten-day stream mixing persistent scanners
// (sessions alive across checkpoints at every level), one-shot churn
// sources (fresh /48 per record, the open-session bulk a snapshot
// must carry), periodic lulls above the timeout (sessions closing
// into results), and mixed protocols/ports/lengths so every encoded
// field — port maps, week histograms, entropy counters — is
// exercised.
func ckptRecords(n int) []firewall.Record {
	rng := rand.New(rand.NewSource(97))
	scanBase := netaddr6.MustPrefix("2001:db8:a000::/36")
	churnBase := netaddr6.MustPrefix("2600::/24")
	dsts := netaddr6.MustPrefix("2001:db8:f000::/44")
	step := 10 * 24 * time.Hour / time.Duration(n)
	ts := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		var src netip.Addr
		switch i % 3 {
		case 0:
			// Hot /128 scanners: a six-address pool, each address
			// recurring every few minutes — far inside the timeout, so
			// these accumulate destinations into address-level scans.
			p48 := netaddr6.NthSubprefix(scanBase, 48, uint64(i/3%3))
			src = netaddr6.WithIID(p48.Addr(), uint64(1+i/3%2))
		case 1:
			// /64-spread scanners: mostly-unique addresses inside a
			// small set of recurring /64s and /48s, so scans emerge
			// only at the aggregated levels.
			p48 := netaddr6.NthSubprefix(scanBase, 48, uint64(8+i/3%7))
			p64 := netaddr6.NthSubprefix(p48, 64, uint64(i/3%4))
			src = netaddr6.WithIID(p64.Addr(), uint64(1+i))
		default:
			// Churn: a fresh /48 per record — open one-packet sessions
			// a snapshot must carry, never qualifying as scans.
			src = netaddr6.WithIID(netaddr6.NthSubprefix(churnBase, 48, uint64(i)).Addr(), 1)
		}
		proto := layers.ProtoTCP
		if i%11 == 0 {
			proto = layers.ProtoUDP
		}
		recs = append(recs, firewall.Record{
			Time:    ts,
			Src:     src,
			Dst:     netaddr6.RandomAddrIn(dsts, rng),
			Proto:   proto,
			SrcPort: uint16(40000 + i%997),
			DstPort: uint16(1 + i%512),
			Length:  uint16(60 + i%23),
		})
		ts = ts.Add(step)
		if i%9000 == 8999 {
			ts = ts.Add(3 * time.Hour) // lull above the timeout
		}
	}
	return recs
}

// killIndex returns the index of the first record at or past the
// given stream-time offset — the "crash point" a truncated run stops
// at.
func killIndex(recs []firewall.Record, offset time.Duration) int {
	return sort.Search(len(recs), func(i int) bool {
		return recs[i].Time.Sub(recs[0].Time) >= offset
	})
}

// TestCheckpointKillRestoreParityDetector: run ten days of stream to
// completion; separately, run it truncated mid-day-six with daily
// checkpoints ("the crash"), restore the latest snapshot, and replay
// the full input with the processed prefix skipped. The two
// detectors' rendered scans must match byte for byte — including when
// the snapshot was taken at 4 shards and restored at 4, and when it
// is re-partitioned 4→2.
func TestCheckpointKillRestoreParityDetector(t *testing.T) {
	recs := ckptRecords(50_000)
	cfg := streamParityConfig()
	const cadence = 30 * time.Minute
	kill := killIndex(recs, 5*24*time.Hour+12*time.Hour)

	ref, err := From(SliceSource(recs)).
		AdvanceEvery(cadence).
		Detect(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderDetector(ref, cfg.Levels)
	for lvl, s := range want {
		if s == "" {
			t.Fatalf("reference produced no scans at %v", lvl)
		}
	}

	for _, tc := range []struct{ snapShards, resumeShards int }{
		{1, 1}, {4, 4}, {4, 2},
	} {
		t.Run(fmt.Sprintf("snap%d-resume%d", tc.snapShards, tc.resumeShards), func(t *testing.T) {
			dir := t.TempDir()
			if _, err := From(SliceSource(recs[:kill])).
				AdvanceEvery(cadence).
				CheckpointEvery(24*time.Hour, dir).
				Detect(context.Background(), cfg, tc.snapShards); err != nil {
				t.Fatal(err)
			}
			path, err := LatestCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if path == "" {
				t.Fatal("interrupted run left no checkpoint")
			}
			res, err := ResumeFile(path, tc.resumeShards)
			if err != nil {
				t.Fatal(err)
			}
			if res.Kind != checkpoint.KindDetector {
				t.Fatalf("snapshot kind = %d, want detector", res.Kind)
			}
			if age := res.Mark.Sub(recs[0].Time); age < 4*24*time.Hour {
				t.Fatalf("latest checkpoint mark only %v into the stream", age)
			}
			if err := From(SliceSource(recs)).
				AdvanceEvery(cadence).
				ResumeFrom(res.Horizon).
				RunInto(context.Background(), res.Sink); err != nil {
				t.Fatal(err)
			}
			var det *core.Detector
			switch s := res.Sink.(type) {
			case *DetectorSink:
				det = s.Result()
			case *ShardedSink:
				det = s.Result()
			default:
				t.Fatalf("unexpected resumed sink type %T", res.Sink)
			}
			got := renderDetector(det, cfg.Levels)
			for _, lvl := range cfg.Levels {
				if got[lvl] != want[lvl] {
					t.Errorf("level %v: resumed output differs from uninterrupted run (%d vs %d bytes)",
						lvl, len(got[lvl]), len(want[lvl]))
				}
			}
		})
	}
}

func ckptIDSConfig() ids.Config {
	return ids.Config{
		MinDsts: 20,
		Timeout: time.Hour,
		Levels:  []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
	}
}

// TestCheckpointKillRestoreParityIDS is the IDS twin of the detector
// parity test. The IDS raises the bar: its tick cadence is semantic
// (it decides when idle candidates close and alerts emit), so parity
// additionally proves the resumed run's cadence is exactly in phase
// with the uninterrupted one across the cut.
func TestCheckpointKillRestoreParityIDS(t *testing.T) {
	recs := ckptRecords(50_000)
	cfg := ckptIDSConfig()
	const cadence = 10 * time.Minute
	kill := killIndex(recs, 5*24*time.Hour+12*time.Hour)

	refAlerts, err := From(SliceSource(recs)).
		AdvanceEvery(cadence).
		IDS(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalIDSAlerts(refAlerts)
	if want == "" {
		t.Fatal("reference produced no alerts")
	}

	for _, tc := range []struct{ snapShards, resumeShards int }{
		{1, 1}, {4, 4}, {4, 2},
	} {
		t.Run(fmt.Sprintf("snap%d-resume%d", tc.snapShards, tc.resumeShards), func(t *testing.T) {
			dir := t.TempDir()
			if _, err := From(SliceSource(recs[:kill])).
				AdvanceEvery(cadence).
				CheckpointEvery(24*time.Hour, dir).
				IDS(context.Background(), cfg, tc.snapShards); err != nil {
				t.Fatal(err)
			}
			path, err := LatestCheckpoint(dir)
			if err != nil {
				t.Fatal(err)
			}
			if path == "" {
				t.Fatal("interrupted run left no checkpoint")
			}
			res, err := ResumeFile(path, tc.resumeShards)
			if err != nil {
				t.Fatal(err)
			}
			if res.Kind != checkpoint.KindIDS {
				t.Fatalf("snapshot kind = %d, want IDS", res.Kind)
			}
			if err := From(SliceSource(recs)).
				AdvanceEvery(cadence).
				ResumeFrom(res.Horizon).
				RunInto(context.Background(), res.Sink); err != nil {
				t.Fatal(err)
			}
			var alerts []ids.Alert
			switch s := res.Sink.(type) {
			case *IDSSink:
				alerts = s.Result()
			case *ShardedIDSSink:
				alerts = s.Result()
			default:
				t.Fatalf("unexpected resumed sink type %T", res.Sink)
			}
			if got := canonicalIDSAlerts(alerts); got != want {
				t.Errorf("resumed alerts differ from uninterrupted run\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// snapshotDetectorBytes builds deterministic detector state from the
// stream prefix and snapshots it at the next record's time.
func snapshotDetectorBytes(t *testing.T, recs []firewall.Record, upto int) []byte {
	t.Helper()
	d := core.NewDetector(streamParityConfig())
	for _, r := range recs[:upto] {
		if err := d.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf, recs[upto].Time); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// snapshotIDSBytes is the IDS twin of snapshotDetectorBytes.
func snapshotIDSBytes(t *testing.T, recs []firewall.Record, upto int) []byte {
	t.Helper()
	e := ids.New(ckptIDSConfig())
	for _, r := range recs[:upto] {
		e.Process(r)
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf, recs[upto].Time); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCheckpointRejectsCorruption: every way a snapshot file can rot —
// foreign bytes, bit flips in header or body, a future format
// version, truncation — must be rejected with the matching typed
// error, never a partial or garbage restore.
func TestCheckpointRejectsCorruption(t *testing.T) {
	recs := ckptRecords(4_000)
	valid := snapshotDetectorBytes(t, recs, 3_000)
	table := crc32.MakeTable(crc32.Castagnoli)
	// fixHeaderCRC recomputes the header checksum so a corruption lands
	// past header validation when the test wants it to.
	fixHeaderCRC := func(b []byte) {
		crc := crc32.Checksum(b[:28], table)
		b[28] = byte(crc)
		b[29] = byte(crc >> 8)
		b[30] = byte(crc >> 16)
		b[31] = byte(crc >> 24)
	}

	cases := []struct {
		name    string
		corrupt func(b []byte) []byte
		want    error
	}{
		{"bad magic", func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		}, checkpoint.ErrBadMagic},
		{"header bit flip", func(b []byte) []byte {
			b[13] ^= 0x01 // mark byte; CRC left stale
			return b
		}, checkpoint.ErrChecksum},
		{"future version", func(b []byte) []byte {
			b[8], b[9] = 99, 0
			fixHeaderCRC(b)
			return b
		}, checkpoint.ErrVersion},
		{"unknown kind", func(b []byte) []byte {
			b[10] = 77
			fixHeaderCRC(b)
			return b
		}, checkpoint.ErrFormat},
		{"zero mark", func(b []byte) []byte {
			for i := 12; i < 28; i++ {
				b[i] = 0
			}
			fixHeaderCRC(b)
			return b
		}, checkpoint.ErrFormat},
		{"section bit flip", func(b []byte) []byte {
			b[len(b)/2] ^= 0x10
			return b
		}, checkpoint.ErrChecksum},
		{"truncated header", func(b []byte) []byte {
			return b[:16]
		}, checkpoint.ErrTruncated},
		{"truncated body", func(b []byte) []byte {
			return b[:len(b)-7]
		}, checkpoint.ErrTruncated},
		{"empty", func(b []byte) []byte {
			return nil
		}, checkpoint.ErrTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.corrupt(append([]byte(nil), valid...))
			for _, shards := range []int{1, 4} {
				_, err := Resume(bytes.NewReader(b), shards)
				if err == nil {
					t.Fatalf("shards=%d: corrupted snapshot restored without error", shards)
				}
				if !errors.Is(err, tc.want) {
					t.Errorf("shards=%d: err = %v, want errors.Is(err, %v)", shards, err, tc.want)
				}
			}
		})
	}

	// The pristine bytes must still restore — the corruptions above,
	// not the baseline, are what is being rejected.
	if _, err := Resume(bytes.NewReader(valid), 1); err != nil {
		t.Fatalf("pristine snapshot failed to restore: %v", err)
	}
}

// TestCheckpointV1Fixture pins the on-disk v1 format with committed
// fixture files: each must carry version 1, restore cleanly, and
// re-snapshot to the identical bytes. A failure here means the
// snapshot encoding changed shape without a format-version bump —
// bump Version and add a migration path instead of regenerating the
// fixture in place. Regenerate (after an intentional, versioned
// change) with: go test ./internal/pipeline -run TestCheckpointV1Fixture -update-ckpt-fixtures
func TestCheckpointV1Fixture(t *testing.T) {
	recs := ckptRecords(4_000)
	fixtures := []struct {
		file string
		kind uint8
		gen  func() []byte
	}{
		{"detector-v1.ckpt", checkpoint.KindDetector, func() []byte { return snapshotDetectorBytes(t, recs, 3_000) }},
		{"ids-v1.ckpt", checkpoint.KindIDS, func() []byte { return snapshotIDSBytes(t, recs, 3_000) }},
	}
	for _, fx := range fixtures {
		t.Run(fx.file, func(t *testing.T) {
			path := filepath.Join("testdata", fx.file)
			if *updateCkptFixtures {
				if err := os.WriteFile(path, fx.gen(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Resume(bytes.NewReader(data), 1)
			if err != nil {
				t.Fatalf("committed v1 fixture no longer restores: %v", err)
			}
			if res.Kind != fx.kind {
				t.Fatalf("fixture kind = %d, want %d", res.Kind, fx.kind)
			}
			var buf bytes.Buffer
			if err := res.Sink.(Checkpointer).Checkpoint(&buf, res.Mark); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), data) {
				t.Errorf("restored fixture re-snapshots to different bytes (%d vs %d): format drifted without a version bump",
					buf.Len(), len(data))
			}
			// And the current encoder still produces exactly the committed
			// bytes for the same state.
			if live := fx.gen(); !bytes.Equal(live, data) {
				t.Errorf("live snapshot of the fixture state differs from the committed fixture (%d vs %d bytes)",
					len(live), len(data))
			}
		})
	}
}

// FuzzSnapshotRoundtrip feeds arbitrary bytes to Resume. Inputs the
// container or a decoder rejects are fine; any accepted input must
// re-snapshot deterministically — Snapshot∘Restore∘Snapshot is
// byte-identity — and must never panic, hang, or over-allocate on the
// way in. Seeds are valid detector and IDS snapshots, so mutation
// explores the decode paths from the inside.
func FuzzSnapshotRoundtrip(f *testing.F) {
	// Seeds stay small (a few hundred records of state) so each fuzz
	// exec — two restores plus two snapshots — runs in well under a
	// millisecond and a 30-second smoke budget buys real mutation
	// coverage.
	recs := ckptRecords(300)
	var seedT testing.T
	f.Add(snapshotDetectorBytes(&seedT, recs, 220))
	f.Add(snapshotIDSBytes(&seedT, recs, 220))
	if seedT.Failed() {
		f.Fatal("building seed snapshots failed")
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := Resume(bytes.NewReader(data), 1)
		if err != nil {
			return // rejected: the only acceptable failure mode
		}
		var first bytes.Buffer
		if err := res.Sink.(Checkpointer).Checkpoint(&first, res.Mark); err != nil {
			t.Fatalf("accepted snapshot failed to re-snapshot: %v", err)
		}
		res2, err := Resume(bytes.NewReader(first.Bytes()), 1)
		if err != nil {
			t.Fatalf("re-snapshot of accepted input does not restore: %v", err)
		}
		var second bytes.Buffer
		if err := res2.Sink.(Checkpointer).Checkpoint(&second, res2.Mark); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("Snapshot∘Restore is not idempotent")
		}
	})
}

// TestCheckpointFilePublishing: checkpoint files appear atomically
// under their mark-derived names, temp files never linger after a
// successful write, and LatestCheckpoint picks the newest while
// ignoring unrelated directory entries.
func TestCheckpointFilePublishing(t *testing.T) {
	dir := t.TempDir()
	if path, err := LatestCheckpoint(dir); err != nil || path != "" {
		t.Fatalf("empty dir: LatestCheckpoint = (%q, %v), want (\"\", nil)", path, err)
	}
	if path, err := LatestCheckpoint(filepath.Join(dir, "missing")); err != nil || path != "" {
		t.Fatalf("missing dir: LatestCheckpoint = (%q, %v), want (\"\", nil)", path, err)
	}

	recs := ckptRecords(2_000)
	sink := NewDetectorSink(core.NewDetector(streamParityConfig()))
	for _, r := range recs[:1_000] {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	m1, m2 := recs[1_000].Time, recs[1_500].Time
	if err := WriteCheckpoint(dir, sink, m1); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[1_000:1_500] {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteCheckpoint(dir, sink, m2); err != nil {
		t.Fatal(err)
	}
	// Distractors a latest-scan must skip: a dotted temp leftover and a
	// foreign file.
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-tmp123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ckpts []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".ckpt" {
			ckpts = append(ckpts, e.Name())
		}
	}
	if len(ckpts) != 2 {
		t.Fatalf("got %d .ckpt files, want 2: %v", len(ckpts), ckpts)
	}
	path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, fmt.Sprintf("%020d.ckpt", m2.UnixNano())); path != want {
		t.Fatalf("LatestCheckpoint = %q, want %q", path, want)
	}
	res, err := ResumeFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mark.Equal(m2) {
		t.Fatalf("restored mark = %v, want %v", res.Mark, m2)
	}
}

// TestResumeKindDispatch: a detector snapshot restores detector
// sinks, an IDS snapshot IDS sinks, plain at one shard and sharded
// above.
func TestResumeKindDispatch(t *testing.T) {
	recs := ckptRecords(2_000)
	det := snapshotDetectorBytes(t, recs, 1_000)
	eng := snapshotIDSBytes(t, recs, 1_000)
	cases := []struct {
		name   string
		data   []byte
		shards int
		want   string
	}{
		{"detector-1", det, 1, "*pipeline.DetectorSink"},
		{"detector-4", det, 4, "*pipeline.ShardedSink"},
		{"ids-1", eng, 1, "*pipeline.IDSSink"},
		{"ids-4", eng, 4, "*pipeline.ShardedIDSSink"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Resume(bytes.NewReader(tc.data), tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprintf("%T", res.Sink); got != tc.want {
				t.Errorf("sink type = %s, want %s", got, tc.want)
			}
			if !res.Horizon.Add(time.Nanosecond).Equal(res.Mark) {
				t.Errorf("horizon %v is not mark−1ns (%v)", res.Horizon, res.Mark)
			}
			// Sharded restores spin up worker goroutines; close them.
			if s, ok := res.Sink.(Sink); ok {
				if err := s.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestLatestCheckpointDirtyDir: a checkpoint directory littered with
// everything a crashed writer, a sidecar-writing daemon, or a stray
// operator can leave behind still resolves to the well-formed file
// with the largest mark — and equal marks break ties toward the
// lexically greatest name, deterministically.
func TestLatestCheckpointDirtyDir(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Junk of every stripe: interrupted-write temp files, sidecars,
	// non-numeric stems, a subdirectory named like a checkpoint, an
	// overlong stem, and an extensionless number.
	write(".ckpt-tmp4567")
	write("00000000000000000042.ckpt-partial")
	write("00000000000000000042.ckpt.marks")
	write("latest.ckpt")
	write("notes.txt")
	write("123456789012345678901.ckpt") // 21 digits: overflow bait
	write("42")
	if err := os.Mkdir(filepath.Join(dir, "00000000000000000099.ckpt"), 0o755); err != nil {
		t.Fatal(err)
	}

	// Only junk: no checkpoint to find.
	if path, err := LatestCheckpoint(dir); err != nil || path != "" {
		t.Fatalf("junk-only dir: LatestCheckpoint = (%q, %v), want (\"\", nil)", path, err)
	}

	// Real checkpoints: the largest mark wins even though shorter
	// names sort lexically before longer zero-padded ones.
	write("00000000000000000042.ckpt")
	write("7.ckpt")
	path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "00000000000000000042.ckpt"); path != want {
		t.Fatalf("LatestCheckpoint = %q, want %q", path, want)
	}

	// Equal marks under different paddings: lexically greatest name is
	// the deterministic winner.
	write("042.ckpt")
	write("0000000000000000000042.ckpt") // 22 digits: ignored, too long
	path, err = LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "042.ckpt"); path != want {
		t.Fatalf("tie-break: LatestCheckpoint = %q, want %q", path, want)
	}
}

// TestSweepCheckpointTemps: a crash between CreateTemp and the rename
// strands a partial ".ckpt-*" staging file. A resume sweeps those —
// and only those — before scanning for the latest checkpoint, so
// crashed writes neither accumulate nor ever shadow a real snapshot.
func TestSweepCheckpointTemps(t *testing.T) {
	dir := t.TempDir()

	// A real checkpoint, published atomically.
	sink := NewDetectorSink(core.NewDetector(streamParityConfig()))
	recs := ckptRecords(500)
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	mark := recs[len(recs)-1].Time
	if err := WriteCheckpoint(dir, sink, mark); err != nil {
		t.Fatal(err)
	}

	// Crashed writes: partial staging temps exactly as os.CreateTemp
	// would leave them, including an empty one.
	for _, name := range []string{".ckpt-1834719382", ".ckpt-99", ".ckpt-"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("partial snapshot bytes"), 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, ".ckpt-empty"), nil, 0o600); err != nil {
		t.Fatal(err)
	}
	// Bystanders the sweep must not touch.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, ".ckpt-dir"), 0o755); err != nil {
		t.Fatal(err)
	}

	removed, err := SweepCheckpointTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("swept %d temps, want 4", removed)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{".ckpt-dir", fmt.Sprintf("%020d.ckpt", mark.UnixNano()), "notes.txt"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after sweep: %v, want %v", names, want)
	}

	// The surviving checkpoint still resumes.
	path, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, fmt.Sprintf("%020d.ckpt", mark.UnixNano())); path != want {
		t.Fatalf("LatestCheckpoint = %q, want %q", path, want)
	}

	// Idempotent, and a missing directory is not an error.
	if n, err := SweepCheckpointTemps(dir); err != nil || n != 0 {
		t.Fatalf("second sweep: (%d, %v), want (0, nil)", n, err)
	}
	if n, err := SweepCheckpointTemps(filepath.Join(dir, "missing")); err != nil || n != 0 {
		t.Fatalf("missing dir: (%d, %v), want (0, nil)", n, err)
	}
}
