package pipeline

import (
	"context"
	"fmt"
	"net/netip"
	"strings"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/metrics"
)

// meterRecords builds an hour of one-record-per-second traffic.
func meterRecords(n int) []firewall.Record {
	base := time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, firewall.Record{
			Time: base.Add(time.Duration(i) * time.Second),
			Src:  netip.MustParseAddr(fmt.Sprintf("2001:db8::%x", i%256+1)),
			Dst:  netip.MustParseAddr("2001:db8:ffff::1"),
		})
	}
	return recs
}

// TestInstrumentedPipelineCounts: the meter stage counts raw source
// output, the terminal reports advance fires and checkpoint writes,
// and none of it changes the pipeline's results.
func TestInstrumentedPipelineCounts(t *testing.T) {
	recs := meterRecords(3600)
	reg := metrics.NewRegistry()
	m := RegisterMetrics(reg)
	dir := t.TempDir()

	sink := NewIDSSink(ids.New(ids.Config{}))
	err := From(SliceSource(recs)).
		Instrument(m).
		AdvanceEvery(10*time.Minute).
		CheckpointEvery(30*time.Minute, dir).
		RunInto(context.Background(), sink)
	if err != nil {
		t.Fatal(err)
	}

	if got := m.SourceRecords.Value(); got != 3600 {
		t.Errorf("SourceRecords = %d, want 3600", got)
	}
	if got := m.SourceBatches.Value(); got == 0 {
		t.Error("SourceBatches = 0, want > 0")
	}
	if got := m.BatchOccupancy.Count(); got != m.SourceBatches.Value() {
		t.Errorf("BatchOccupancy observations = %d, want %d", got, m.SourceBatches.Value())
	}
	// Fires at 00:10, 00:20, ..., 00:59 → 5 fires (the first record
	// only arms the cadence; the last fire ≤ 59:59 is at 00:50).
	if got := m.Advances.Value(); got != 5 {
		t.Errorf("Advances = %d, want 5", got)
	}
	if got := m.EvictionLagSeconds.Value(); got != 600 {
		t.Errorf("EvictionLagSeconds = %v, want 600", got)
	}
	// Checkpoints ride advance fires: the checkpoint cadence arms at
	// the first fire (00:10) and cuts at the first fire ≥ 30m later
	// (00:40) — at least one cut in the hour.
	if got := m.Checkpoints.Value(); got == 0 {
		t.Error("Checkpoints = 0, want > 0")
	}
	if got := m.CheckpointDurationSeconds.Count(); got != m.Checkpoints.Value() {
		t.Errorf("duration observations = %d, want %d", got, m.Checkpoints.Value())
	}

	// Exposition sanity: every family renders.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"v6scan_pipeline_records_total 3600",
		"v6scan_pipeline_advances_total 5",
		"v6scan_pipeline_batch_occupancy_bucket",
		"v6scan_dispatch_pool_hit_rate",
		"v6scan_pipeline_checkpoint_age_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestInstrumentSinkVariants: all four terminal sinks accept the
// bundle through RunInto and report advances.
func TestInstrumentSinkVariants(t *testing.T) {
	recs := meterRecords(3600)
	sinks := map[string]RecordSink{
		"detector":    NewDetectorSink(core.NewDetector(core.Config{})),
		"sharded":     NewShardedSink(core.NewShardedDetector(core.Config{}, 4)),
		"ids":         NewIDSSink(ids.New(ids.Config{})),
		"sharded-ids": NewShardedIDSSink(ids.NewSharded(ids.Config{}, 4)),
	}
	for name, sink := range sinks {
		t.Run(name, func(t *testing.T) {
			reg := metrics.NewRegistry()
			m := RegisterMetrics(reg)
			err := From(SliceSource(recs)).
				Instrument(m).
				AdvanceEvery(10*time.Minute).
				RunInto(context.Background(), sink)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Advances.Value(); got != 5 {
				t.Errorf("Advances = %d, want 5", got)
			}
			if got := m.SourceRecords.Value(); got != 3600 {
				t.Errorf("SourceRecords = %d, want 3600", got)
			}
		})
	}
}

// TestInstrumentRecordPath: forcing the record path (a SourceFunc hides
// batching) counts identically — fires and records are path-invariant.
func TestInstrumentRecordPath(t *testing.T) {
	recs := meterRecords(3600)
	reg := metrics.NewRegistry()
	m := RegisterMetrics(reg)
	sink := NewIDSSink(ids.New(ids.Config{}))
	err := From(SourceFunc(SliceSource(recs).Emit)).
		Instrument(m).
		AdvanceEvery(10*time.Minute).
		RunInto(context.Background(), sink)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.SourceRecords.Value(); got != 3600 {
		t.Errorf("SourceRecords = %d, want 3600", got)
	}
	if got := m.Advances.Value(); got != 5 {
		t.Errorf("Advances = %d, want 5", got)
	}
	if got := m.SourceBatches.Value(); got != 0 {
		t.Errorf("SourceBatches = %d on the record path, want 0", got)
	}
}
