package pipeline

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

func scanStream(n int) []firewall.Record {
	rng := rand.New(rand.NewSource(3))
	src := netaddr6.MustAddr("2001:db8:bad::1")
	dsts := netaddr6.MustPrefix("2001:db8:f::/48")
	ts := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, firewall.Record{
			Time: ts, Src: src, Dst: netaddr6.RandomAddrIn(dsts, rng),
			Proto: layers.ProtoTCP, SrcPort: 40000, DstPort: 22, Length: 60,
		})
		ts = ts.Add(time.Second)
	}
	return recs
}

func TestPipelineDetectsScan(t *testing.T) {
	det := core.NewDetector(core.DefaultConfig())
	p := New(SliceSource(scanStream(150)), NewDetectorSink(det))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	scans := det.Scans(netaddr6.Agg64)
	if len(scans) != 1 || scans[0].Dsts != 150 {
		t.Fatalf("scans: %+v", scans)
	}
}

func TestPolicyStageFilters(t *testing.T) {
	recs := scanStream(10)
	recs[3].DstPort = 443 // excluded by the CDN policy
	recs[7].Proto = layers.ProtoICMPv6
	cnt := NewCounter(Discard)
	p := New(SliceSource(recs), Policy(firewall.DefaultCollectPolicy(), cnt))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if cnt.Count() != 8 {
		t.Fatalf("counted %d, want 8", cnt.Count())
	}
}

func TestDaySortOrders(t *testing.T) {
	day := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	src := netaddr6.MustAddr("2001:db8::1")
	dst := netaddr6.MustAddr("2001:db8:f::1")
	mk := func(ts time.Time) firewall.Record {
		return firewall.Record{Time: ts, Src: src, Dst: dst, Proto: layers.ProtoTCP, DstPort: 22, Length: 60}
	}
	// Two days, each emitted out of order.
	in := []firewall.Record{
		mk(day.Add(5 * time.Hour)), mk(day.Add(2 * time.Hour)), mk(day.Add(9 * time.Hour)),
		mk(day.Add(26 * time.Hour)), mk(day.Add(25 * time.Hour)),
	}
	var got []firewall.Record
	p := New(SliceSource(in), NewDaySort(Collector(func(r firewall.Record) { got = append(got, r) })))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("got %d records, want %d", len(got), len(in))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time.Before(got[i-1].Time) {
			t.Fatalf("record %d out of order: %v < %v", i, got[i].Time, got[i-1].Time)
		}
	}
}

func TestArtifactStageDrops(t *testing.T) {
	day := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	dst := netaddr6.MustAddr("2001:db8:f::1")
	var in []firewall.Record
	// Artifact source: 40 packets to one (dst, port) pair — dropped.
	art := netaddr6.MustAddr("2001:db8:aaaa::1")
	for i := 0; i < 40; i++ {
		in = append(in, firewall.Record{
			Time: day.Add(time.Duration(i) * time.Minute), Src: art, Dst: dst,
			Proto: layers.ProtoTCP, DstPort: 25, Length: 80,
		})
	}
	// Clean source: distinct destinations — survives.
	clean := netaddr6.MustAddr("2001:db8:bbbb::1")
	for i := 0; i < 40; i++ {
		in = append(in, firewall.Record{
			Time: day.Add(time.Duration(i) * time.Minute), Src: clean,
			Dst:   netaddr6.WithIID(dst, uint64(i+10)),
			Proto: layers.ProtoTCP, DstPort: 22, Length: 60,
		})
	}
	f := firewall.NewArtifactFilter()
	cnt := NewCounter(Discard)
	p := New(SliceSource(in), NewDaySort(NewArtifactStage(f, cnt)))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if cnt.Count() != 40 {
		t.Fatalf("survivors = %d, want 40", cnt.Count())
	}
	if st := f.Stats(); st.PacketsDropped != 40 || st.SourcesDropped != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestTeeFansOut(t *testing.T) {
	a, b := NewCounter(Discard), NewCounter(Discard)
	p := New(SliceSource(scanStream(25)), Tee(a, b))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 25 || b.Count() != 25 {
		t.Fatalf("counts: %d, %d", a.Count(), b.Count())
	}
}

func TestLogRoundTripThroughPipeline(t *testing.T) {
	recs := scanStream(120)
	var buf bytes.Buffer
	w := firewall.NewWriter(&buf)
	if err := New(SliceSource(recs), NewLogSink(w)).Run(); err != nil {
		t.Fatal(err)
	}
	det := core.NewDetector(core.DefaultConfig())
	if err := New(NewLogSource(&buf), NewDetectorSink(det)).Run(); err != nil {
		t.Fatal(err)
	}
	if scans := det.Scans(netaddr6.Agg64); len(scans) != 1 || scans[0].Dsts != 120 {
		t.Fatalf("scans after round trip: %+v", scans)
	}
}

// TestRunUsesBatchPath verifies that a BatchSource feeding a BatchSink
// streams in chunks (and that the per-record path still sees every
// record when a non-batch stage intervenes).
func TestRunUsesBatchPath(t *testing.T) {
	recs := scanStream(10_000)
	var batches, records int
	sink := &countingBatchSink{onBatch: func(n int) { batches++; records += n }}
	if err := New(SliceSource(recs), sink).Run(); err != nil {
		t.Fatal(err)
	}
	if records != len(recs) {
		t.Fatalf("batch path consumed %d records, want %d", records, len(recs))
	}
	if want := (len(recs) + DefaultBatchSize - 1) / DefaultBatchSize; batches != want {
		t.Fatalf("batch path saw %d batches, want %d", batches, want)
	}
	// Filter stages are batch-native now, so an intermediate filter no
	// longer breaks the batch path.
	batches, records = 0, 0
	sink2 := &countingBatchSink{onBatch: func(n int) { batches++; records += n }}
	p := New(SliceSource(recs), Filter(func(firewall.Record) bool { return true }, sink2))
	if !p.Batched() {
		t.Fatal("filtered chain should stay batched")
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if records != len(recs) || batches >= len(recs) {
		t.Fatalf("filtered batch path consumed %d records in %d batches", records, batches)
	}
	// A sink chain whose head hides batch capability forces the record
	// path, and every record still arrives.
	records = 0
	sink3 := &countingBatchSink{onBatch: func(n int) { records += n }}
	p = New(SliceSource(recs), &wrapRecordOnly{sink3})
	if p.Batched() {
		t.Fatal("record-only head cannot be batched")
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if records != len(recs) {
		t.Fatalf("record path consumed %d records, want %d", records, len(recs))
	}
}

type countingBatchSink struct {
	onBatch func(n int)
}

func (s *countingBatchSink) Consume(firewall.Record) error { s.onBatch(1); return nil }
func (s *countingBatchSink) ConsumeBatch(recs []firewall.Record) error {
	s.onBatch(len(recs))
	return nil
}
func (s *countingBatchSink) Flush() error { return nil }

// TestLogSourceEmitBatch round-trips a log through the chunked reader
// into the batch-path IDS sink and checks the alert matches the
// record-path engine's.
func TestLogSourceEmitBatch(t *testing.T) {
	recs := scanStream(150)
	var buf bytes.Buffer
	w := firewall.NewWriter(&buf)
	if err := New(SliceSource(recs), NewLogSink(w)).Run(); err != nil {
		t.Fatal(err)
	}
	ref := ids.New(ids.DefaultConfig())
	for _, r := range recs {
		ref.Process(r)
	}
	want := ref.Flush()

	sink := NewIDSSink(ids.New(ids.DefaultConfig()))
	if err := New(NewLogSource(&buf), sink).Run(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Alerts) != len(want) || len(want) == 0 {
		t.Fatalf("alerts: %v, want %v", sink.Alerts, want)
	}
	if sink.Alerts[0] != want[0] {
		t.Fatalf("alert differs: %+v vs %+v", sink.Alerts[0], want[0])
	}
}

// TestIDSSinkTickEvery verifies the stream-time Tick cadence: with it,
// a candidate idle past the engine timeout is evicted mid-stream, so a
// source that scans, goes quiet, and scans again yields two alerts;
// without it, eviction waits for Flush and the sessions merge.
func TestIDSSinkTickEvery(t *testing.T) {
	burst := scanStream(150)
	var recs []firewall.Record
	recs = append(recs, burst...)
	for _, r := range burst {
		r.Time = r.Time.Add(3 * time.Hour) // beyond the 1h timeout
		recs = append(recs, r)
	}
	merged := NewIDSSink(ids.New(ids.DefaultConfig()))
	if err := New(SliceSource(recs), merged).Run(); err != nil {
		t.Fatal(err)
	}
	if len(merged.Alerts) != 1 {
		t.Fatalf("without TickEvery: %d alerts, want 1 merged", len(merged.Alerts))
	}
	// Both paths must split at the same stream point: the batch path
	// (default Run over a SliceSource) splits batches at cadence
	// points, and the record path (forced by the Tap stage) ticks per
	// record.
	for name, stage := range map[string]func(RecordSink) RecordSink{
		"batch":  func(s RecordSink) RecordSink { return s },
		"record": func(s RecordSink) RecordSink { return Tap(func(firewall.Record) {}, s) },
	} {
		split := NewIDSSink(ids.New(ids.DefaultConfig()))
		split.TickEvery = time.Minute
		if err := New(SliceSource(recs), stage(split)).Run(); err != nil {
			t.Fatal(err)
		}
		if len(split.Alerts) != 2 {
			t.Fatalf("%s path with TickEvery: %d alerts, want 2 split sessions: %v",
				name, len(split.Alerts), split.Alerts)
		}
	}
}

// TestShardedIDSSinkMatchesIDSSink runs the same stream through the
// plain and sharded IDS sinks and requires identical alerts.
func TestShardedIDSSinkMatchesIDSSink(t *testing.T) {
	recs := scanStream(300)
	plain := NewIDSSink(ids.New(ids.DefaultConfig()))
	if err := New(SliceSource(recs), plain).Run(); err != nil {
		t.Fatal(err)
	}
	sharded := NewShardedIDSSink(ids.NewSharded(ids.DefaultConfig(), 4))
	if err := New(SliceSource(recs), sharded).Run(); err != nil {
		t.Fatal(err)
	}
	if len(plain.Alerts) != len(sharded.Alerts) || len(plain.Alerts) == 0 {
		t.Fatalf("alert counts differ: %d vs %d", len(plain.Alerts), len(sharded.Alerts))
	}
	for i := range plain.Alerts {
		if plain.Alerts[i] != sharded.Alerts[i] {
			t.Fatalf("alert %d differs: %+v vs %+v", i, plain.Alerts[i], sharded.Alerts[i])
		}
	}
}

func TestShardedSinkMatchesDetectorSink(t *testing.T) {
	recs := scanStream(500)
	plain := core.NewDetector(core.DefaultConfig())
	if err := New(SliceSource(recs), NewDetectorSink(plain)).Run(); err != nil {
		t.Fatal(err)
	}
	sharded := core.NewShardedDetector(core.DefaultConfig(), 4)
	if err := New(SliceSource(recs), NewDaySort(NewShardedSink(sharded))).Run(); err != nil {
		t.Fatal(err)
	}
	ps, ss := plain.Scans(netaddr6.Agg64), sharded.Scans(netaddr6.Agg64)
	if len(ps) != len(ss) || len(ps) == 0 {
		t.Fatalf("scan counts differ: %d vs %d", len(ps), len(ss))
	}
	if ps[0].Packets != ss[0].Packets || ps[0].Dsts != ss[0].Dsts || ps[0].Source != ss[0].Source {
		t.Fatalf("scan differs: %+v vs %+v", ps[0], ss[0])
	}
}
