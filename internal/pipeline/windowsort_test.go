package pipeline

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// disorderedRecs builds n records whose timestamps advance ~1s per
// record but jitter backwards by up to maxSkew; SrcPort carries the
// arrival index and DstPort a small duplicate-timestamp class, so both
// stability violations and reorderings are observable.
func disorderedRecs(n int, maxSkew time.Duration, seed int64) []firewall.Record {
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		back := time.Duration(0)
		if maxSkew > 0 {
			back = time.Duration(rng.Int63n(int64(maxSkew) + 1))
		}
		ts := t0.Add(time.Duration(i) * time.Second).Add(-back)
		if ts.Before(t0) {
			ts = t0
		}
		recs = append(recs, firewall.Record{
			Time:    ts,
			Src:     netaddr6.MustAddr("2001:db8::1"),
			Dst:     netaddr6.MustAddr("2001:db8:f::1"),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(i),
			DstPort: uint16(i % 5),
			Length:  60,
		})
	}
	return recs
}

// maxDisorder returns the stream's actual disorder bound: the largest
// amount any record trails an earlier record by.
func maxDisorder(recs []firewall.Record) time.Duration {
	var worst time.Duration
	var maxSeen time.Time
	for _, r := range recs {
		if r.Time.After(maxSeen) {
			maxSeen = r.Time
		} else if d := maxSeen.Sub(r.Time); d > worst {
			worst = d
		}
	}
	return worst
}

func stableByTime(recs []firewall.Record) []firewall.Record {
	out := append([]firewall.Record(nil), recs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// TestSortByTimeProperty is the property test of the run-merge sorter:
// random record streams at varying disorder bounds (including sorted,
// fully random, and duplicate-heavy inputs) must match sort.SliceStable
// exactly — order and stability.
func TestSortByTimeProperty(t *testing.T) {
	skews := []time.Duration{0, time.Second, 5 * time.Second, 30 * time.Second,
		5 * time.Minute, time.Hour}
	for _, skew := range skews {
		for seed := int64(0); seed < 6; seed++ {
			recs := disorderedRecs(700, skew, 100+seed)
			want := stableByTime(recs)
			SortByTime(recs)
			if !reflect.DeepEqual(recs, want) {
				t.Fatalf("skew=%v seed=%d: SortByTime differs from sort.SliceStable", skew, seed)
			}
		}
	}
}

// TestWindowSortMatchesFullSort is the WindowSort correctness
// property: whenever the stream's disorder is bounded by the window,
// the released sequence equals a full stable sort of the input — on
// both the record and the batch dispatch path, at several batch sizes.
func TestWindowSortMatchesFullSort(t *testing.T) {
	skews := []time.Duration{0, time.Second, 7 * time.Second, time.Minute}
	for _, skew := range skews {
		for seed := int64(0); seed < 4; seed++ {
			recs := disorderedRecs(900, skew, 200+seed)
			window := maxDisorder(recs) // tightest window that must still be exact
			want := stableByTime(recs)

			var got []firewall.Record
			ws := NewWindowSort(window, Collector(func(r firewall.Record) { got = append(got, r) }))
			feedRecords(t, ws, recs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("skew=%v seed=%d window=%v: record path differs from full stable sort", skew, seed, window)
			}

			for _, n := range []int{1, 7, 64, len(recs)} {
				var batched []firewall.Record
				ws := NewWindowSort(window, Collector(func(r firewall.Record) { batched = append(batched, r) }))
				feedBatches(t, ws, recs, n)
				if !reflect.DeepEqual(batched, want) {
					t.Fatalf("skew=%v seed=%d window=%v batch=%d: batch path differs from full stable sort", skew, seed, window, n)
				}
			}
		}
	}
}

// TestWindowSortWiderWindowSameOutput: any window at least as large as
// the disorder produces the identical sequence (release timing changes,
// content and order do not).
func TestWindowSortWiderWindowSameOutput(t *testing.T) {
	recs := disorderedRecs(600, 9*time.Second, 7)
	want := stableByTime(recs)
	for _, window := range []time.Duration{maxDisorder(recs), time.Minute, 24 * time.Hour} {
		var got []firewall.Record
		ws := NewWindowSort(window, Collector(func(r firewall.Record) { got = append(got, r) }))
		feedRecords(t, ws, recs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("window=%v: output differs from full stable sort", window)
		}
	}
}

// TestWindowSortBoundedBuffer pins the memory bound the stage exists
// for: while streaming a long near-sorted input, the internal buffer
// never holds more than the records spanning one window (plus the
// batch in flight).
func TestWindowSortBoundedBuffer(t *testing.T) {
	const n = 20_000
	window := 10 * time.Second // 10 records/sec below → ~100 in-window records
	t0 := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	peak := 0
	ws := NewWindowSort(window, Discard)
	for i := 0; i < n; i++ {
		jitter := time.Duration(i%3) * time.Second
		r := firewall.Record{
			Time: t0.Add(time.Duration(i) * 100 * time.Millisecond).Add(-jitter),
			Src:  netaddr6.MustAddr("2001:db8::1"), Dst: netaddr6.MustAddr("2001:db8:f::1"),
			Proto: layers.ProtoTCP, SrcPort: uint16(i), DstPort: 22, Length: 60,
		}
		if err := ws.Consume(r); err != nil {
			t.Fatal(err)
		}
		if len(ws.buf) > peak {
			peak = len(ws.buf)
		}
	}
	if err := ws.Flush(); err != nil {
		t.Fatal(err)
	}
	// One window spans ~100 records at this rate; allow generous slack
	// for the release granularity but nothing day-scale.
	if peak > 300 {
		t.Fatalf("buffer peaked at %d records; a 10s window over a 10 rec/s stream should stay ~100", peak)
	}
}

// TestWindowSortLateRecordError: a record trailing the stream
// high-water mark by more than the window must abort with a
// diagnostic instead of risking an out-of-order emission — and the
// decision must be identical on the record and batch paths (it is a
// pure function of the record sequence, not of release timing).
func TestWindowSortLateRecordError(t *testing.T) {
	t0 := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(off time.Duration) firewall.Record {
		return firewall.Record{Time: t0.Add(off), Src: netaddr6.MustAddr("2001:db8::1"),
			Dst: netaddr6.MustAddr("2001:db8:f::1"), Proto: layers.ProtoTCP, DstPort: 22, Length: 60}
	}
	// High-water +10s, window 1s: +9s trails by exactly the window and
	// is accepted; +2s trails by 8s and must be rejected.
	stream := []firewall.Record{mk(0), mk(time.Second), mk(10 * time.Second), mk(9 * time.Second)}
	late := mk(2 * time.Second)

	ws := NewWindowSort(time.Second, Discard)
	for _, r := range stream {
		if err := ws.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	err := ws.Consume(late)
	if err == nil {
		t.Fatal("over-window-late record accepted on the record path")
	}
	if !strings.Contains(err.Error(), "reorder window") {
		t.Fatalf("unexpected error text: %v", err)
	}

	// The identical sequence in one batch must fail identically.
	wsb := NewWindowSort(time.Second, Discard)
	if err := wsb.ConsumeBatch(append(append([]firewall.Record(nil), stream...), late)); err == nil {
		t.Fatal("over-window-late record accepted on the batch path")
	}
}

// TestWindowSortStageParity runs the standard stage parity harness so
// WindowSort composes with the batch-native chain like every other
// stage.
func TestWindowSortStageParity(t *testing.T) {
	recs := disorderedRecs(1200, 5*time.Second, 99)
	window := maxDisorder(recs)
	stageParity(t, recs, func(next RecordSink) RecordSink {
		return NewWindowSort(window, next)
	}, func(t *testing.T, out []firewall.Record) {
		for i := 1; i < len(out); i++ {
			if out[i].Time.Before(out[i-1].Time) {
				t.Fatalf("output not time-ordered at %d", i)
			}
		}
	})
}
