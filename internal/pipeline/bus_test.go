package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"v6scan/internal/bus"
	"v6scan/internal/dispatch"
	"v6scan/internal/events"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/netaddr6"
)

// The tests here close the tentpole acceptance loop: a record stream
// split across N publishers — each partitioning its chunk over
// per-publisher topics by coarsest-level source prefix — merged back
// by one FromBus subscriber must reduce to output byte-identical to
// the in-process run, at every shard count. The publishers run
// concurrently with the subscriber, as the real collectors→aggregator
// topology would.

const (
	busParityPublishers = 3
	busParityTopics     = 4 // partitions per publisher
)

func TestBusDetectParity(t *testing.T) {
	recs := streamParityRecords(30_000, 0)
	cfg := streamParityConfig()
	level := dispatch.CoarsestLevel(cfg.Levels)
	ctx := context.Background()

	for _, shards := range []int{1, 2, 8} {
		ref, err := From(SliceSource(recs)).Detect(ctx, cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		want := renderDetector(ref, cfg.Levels)
		if strings.TrimSpace(want[cfg.Levels[0]]) == "" {
			t.Fatal("reference detected no scans")
		}

		b := bus.New()
		// Subscribe (inside FromBusContext) before the publishers start,
		// so no envelope is dropped.
		topics, startPubs := publishSplitSetup(t, recs)
		agg := FromBusContext(ctx, b, topics...)
		wait := startPubs(ctx, b, level)
		det, err := agg.Detect(ctx, cfg, shards)
		wait()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		got := renderDetector(det, cfg.Levels)
		for _, lvl := range cfg.Levels {
			if got[lvl] != want[lvl] {
				t.Errorf("shards=%d level %v: distributed output differs from in-process", shards, lvl)
			}
		}
	}
}

func TestBusIDSParity(t *testing.T) {
	recs := streamParityRecords(30_000, 0)
	cfg := ids.Config{
		MinDsts: 20,
		Timeout: time.Hour,
		Levels:  []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
	}
	level := dispatch.CoarsestLevel(cfg.Levels)
	ctx := context.Background()

	refAlerts, err := From(SliceSource(recs)).IDS(ctx, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalIDSAlerts(refAlerts)
	if want == "" {
		t.Fatal("reference produced no alerts")
	}

	for _, shards := range []int{1, 2, 8} {
		b := bus.New()
		topics, startPubs := publishSplitSetup(t, recs)
		agg := FromBusContext(ctx, b, topics...)
		wait := startPubs(ctx, b, level)
		alerts, err := agg.IDS(ctx, cfg, shards)
		wait()
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got := canonicalIDSAlerts(alerts); got != want {
			t.Errorf("shards=%d: distributed alerts differ from in-process\n got:\n%s\nwant:\n%s",
				shards, got, want)
		}
	}
}

// publishSplitSetup returns the publisher-major topic list up front —
// so the subscriber can attach first — and a start function that
// launches the publisher goroutines and returns their wait func.
func publishSplitSetup(t *testing.T, recs []firewall.Record) ([]string, func(ctx context.Context, b *bus.Bus, level netaddr6.AggLevel) func()) {
	t.Helper()
	perPub := make([][]string, busParityPublishers)
	var topics []string
	for i := range perPub {
		perPub[i] = events.RecordTopics(fmt.Sprintf("pub%d", i), busParityTopics)
		topics = append(topics, perPub[i]...)
	}
	start := func(ctx context.Context, b *bus.Bus, level netaddr6.AggLevel) func() {
		var wg sync.WaitGroup
		for i := 0; i < busParityPublishers; i++ {
			lo := len(recs) * i / busParityPublishers
			hi := len(recs) * (i + 1) / busParityPublishers
			wg.Add(1)
			go func(i, lo, hi int) {
				defer wg.Done()
				err := From(SliceSource(recs[lo:hi])).
					PublishInto(ctx, b, level, perPub[i]...)
				if err != nil {
					t.Errorf("publisher %d: %v", i, err)
				}
			}(i, lo, hi)
		}
		return wg.Wait
	}
	return topics, start
}

func TestSubscribeSeqGap(t *testing.T) {
	ctx := context.Background()
	b := bus.New()
	src := NewSubscribeSource(ctx, b, "t")

	// First envelope skips ahead: publisher claims seq 2, subscriber
	// expects 0.
	env := events.Envelope{Kind: events.KindRecords, Topic: "t", Seq: 2, Records: streamParityRecords(3, 0)}
	data, err := env.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(ctx, "t", data); err != nil {
		t.Fatal(err)
	}
	err = src.EmitBatch(0, func([]firewall.Record) error { return nil })
	if !errors.Is(err, ErrEnvelopeGap) {
		t.Fatalf("got %v, want ErrEnvelopeGap", err)
	}
}

func TestSubscribeRejectsMisaddressedEnvelope(t *testing.T) {
	ctx := context.Background()
	b := bus.New()
	src := NewSubscribeSource(ctx, b, "t")
	env := events.Envelope{Kind: events.KindEOS, Topic: "other", Seq: 0}
	data, err := env.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish(ctx, "t", data); err != nil {
		t.Fatal(err)
	}
	err = src.EmitBatch(0, func([]firewall.Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "addressed to") {
		t.Fatalf("got %v, want misaddressed-envelope error", err)
	}
}

func TestSubscribeBusClosedBeforeEOS(t *testing.T) {
	ctx := context.Background()
	b := bus.New()
	src := NewSubscribeSource(ctx, b, "t")
	b.Close()
	err := src.EmitBatch(0, func([]firewall.Record) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "before end of stream") {
		t.Fatalf("got %v, want bus-closed error", err)
	}
}

func TestPublishSinkFlushIdempotent(t *testing.T) {
	ctx := context.Background()
	b := bus.New()
	sub, err := b.Subscribe(16, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	sink := NewPublishSink(ctx, b, netaddr6.Agg48, "a", "b")
	recs := streamParityRecords(10, 0)
	if err := sink.ConsumeBatch(recs); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	// Every topic sees its records (if any) and then exactly one EOS.
	eos := map[string]int{}
	total := 0
	for i := uint64(0); i < sink.Envelopes(); i++ {
		msg, err := sub.Pull(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var env events.Envelope
		if err := env.Decode(msg.Data); err != nil {
			t.Fatal(err)
		}
		switch env.Kind {
		case events.KindEOS:
			eos[env.Topic]++
		case events.KindRecords:
			if eos[env.Topic] > 0 {
				t.Fatalf("topic %s: records after EOS", env.Topic)
			}
			total += len(env.Records)
		}
	}
	if eos["a"] != 1 || eos["b"] != 1 {
		t.Fatalf("EOS counts: %v, want exactly one per topic", eos)
	}
	if total != len(recs) {
		t.Fatalf("published %d records, want %d", total, len(recs))
	}
}

func TestPublishSinkRoutesByCoarsestPrefix(t *testing.T) {
	ctx := context.Background()
	b := bus.New()
	const parts = 4
	topics := events.RecordTopics("p", parts)
	sub, err := b.Subscribe(64, topics...)
	if err != nil {
		t.Fatal(err)
	}
	recs := streamParityRecords(2_000, 0)
	if err := From(SliceSource(recs)).PublishInto(ctx, b, netaddr6.Agg48, topics...); err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		msg, err := sub.Pull(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var env events.Envelope
		if err := env.Decode(msg.Data); err != nil {
			t.Fatal(err)
		}
		if env.Kind == events.KindEOS {
			continue
		}
		// Every record in a topic's envelope must hash to that topic.
		for _, r := range env.Records {
			want := topics[dispatch.Partition(r.Src, netaddr6.Agg48, parts)]
			if env.Topic != want {
				t.Fatalf("record %v routed to %s, want %s", r.Src, env.Topic, want)
			}
		}
		got += len(env.Records)
		if got == len(recs) {
			break
		}
	}
}
