package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// TestErrLateRecordFields pins the typed lateness diagnostic: callers
// must be able to pull the rejected record's time and the admissible
// horizon out of the error with errors.As instead of parsing text.
func TestErrLateRecordFields(t *testing.T) {
	t0 := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(off time.Duration) firewall.Record {
		return firewall.Record{Time: t0.Add(off), Src: netaddr6.MustAddr("2001:db8::1"),
			Dst: netaddr6.MustAddr("2001:db8:f::1"), Proto: layers.ProtoTCP, DstPort: 22, Length: 60}
	}
	const window = time.Second
	ws := NewWindowSort(window, Discard)
	for _, off := range []time.Duration{0, 10 * time.Second} {
		if err := ws.Consume(mk(off)); err != nil {
			t.Fatal(err)
		}
	}
	err := ws.Consume(mk(2 * time.Second))
	if err == nil {
		t.Fatal("over-window-late record accepted")
	}
	var late *ErrLateRecord
	if !errors.As(err, &late) {
		t.Fatalf("error is %T, want *ErrLateRecord (err: %v)", err, err)
	}
	if !late.RecordTime.Equal(t0.Add(2 * time.Second)) {
		t.Errorf("RecordTime = %v, want %v", late.RecordTime, t0.Add(2*time.Second))
	}
	if !late.HighWater.Equal(t0.Add(10 * time.Second)) {
		t.Errorf("HighWater = %v, want %v", late.HighWater, t0.Add(10*time.Second))
	}
	if late.Window != window {
		t.Errorf("Window = %v, want %v", late.Window, window)
	}
	if !late.Horizon.Equal(late.HighWater.Add(-window)) {
		t.Errorf("Horizon = %v, want high-water − window = %v",
			late.Horizon, late.HighWater.Add(-window))
	}
}

// spillStream models the workload EnableSpill exists for: an
// in-order prefix (streaming releases engage), then a lagging writer
// whose records trail the high-water mark by up to 90 seconds — far
// beyond the window, but never behind output already released, so the
// spill path absorbs them instead of failing. SrcPort carries the
// arrival index and DstPort a duplicate-timestamp class, making both
// reorderings and stability violations observable.
func spillStream(n int, seed int64) []firewall.Record {
	rng := rand.New(rand.NewSource(seed))
	t0 := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(ts time.Time, i int) firewall.Record {
		return firewall.Record{Time: ts, Src: netaddr6.MustAddr("2001:db8::1"),
			Dst: netaddr6.MustAddr("2001:db8:f::1"), Proto: layers.ProtoTCP,
			SrcPort: uint16(i), DstPort: uint16(i % 5), Length: 60}
	}
	m := n / 4
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < m; i++ { // sorted ramp: releases stream
		recs = append(recs, mk(t0.Add(time.Duration(i)*time.Second), i))
	}
	// A forward jump opens a gap between the release horizon and the
	// last released record, then the disordered tail lands inside it.
	head := time.Duration(m)*time.Second + 30*time.Second
	recs = append(recs, mk(t0.Add(head), m))
	for i := m + 1; i < n; i++ {
		off := head + time.Duration(rng.Int63n(int64(90*time.Second)))
		recs = append(recs, mk(t0.Add(off), i))
	}
	return recs
}

// TestWindowSortSpillMatchesFullSort: with spill armed, disorder far
// beyond the window must no longer abort the run — the emitted
// sequence must still equal sort.SliceStable over the whole input, on
// the record path and the batch path, with a run size small enough to
// force many on-disk run files. The spill directory must be empty
// again after Flush.
func TestWindowSortSpillMatchesFullSort(t *testing.T) {
	recs := spillStream(20_000, 41)
	const window = 5 * time.Second
	if d := maxDisorder(recs); d <= window {
		t.Fatalf("generator produced disorder %v, need > window %v", d, window)
	}
	want := stableByTime(recs)

	// Without spill the same stream must fail — the spill path below is
	// then doing real work, not riding the buffered regime.
	plain := NewWindowSort(window, Discard)
	var plainErr error
	for _, r := range recs {
		if plainErr = plain.Consume(r); plainErr != nil {
			break
		}
	}
	var late *ErrLateRecord
	if !errors.As(plainErr, &late) {
		t.Fatalf("spill-less run: err = %v, want *ErrLateRecord", plainErr)
	}

	feed := map[string]func(ws *WindowSort) error{
		"record": func(ws *WindowSort) error {
			for _, r := range recs {
				if err := ws.Consume(r); err != nil {
					return err
				}
			}
			return ws.Flush()
		},
		"batch": func(ws *WindowSort) error {
			for i := 0; i < len(recs); i += 512 {
				end := i + 512
				if end > len(recs) {
					end = len(recs)
				}
				if err := ws.ConsumeBatch(append([]firewall.Record(nil), recs[i:end]...)); err != nil {
					return err
				}
			}
			return ws.Flush()
		},
	}
	for name, run := range feed {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			var got []firewall.Record
			ws := NewWindowSort(window, Collector(func(r firewall.Record) { got = append(got, r) }))
			ws.EnableSpill(dir, 1024) // tiny runs: ~20 spill files
			if err := run(ws); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("spill output differs from sort.SliceStable (%d vs %d records)", len(got), len(want))
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(entries) != 0 {
				t.Errorf("spill dir not cleaned after Flush: %d leftover files", len(entries))
			}
		})
	}
}

// TestWindowSortSpillBuilderStage drives the same contract through the
// builder's WindowSortSpill stage inside a full chain.
func TestWindowSortSpillBuilderStage(t *testing.T) {
	recs := spillStream(8_000, 43)
	want := stableByTime(recs)
	var got []firewall.Record
	err := From(SliceSource(recs)).
		WindowSortSpill(2*time.Second, t.TempDir()).
		RunInto(context.Background(), Collector(func(r firewall.Record) { got = append(got, r) }))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("builder spill output differs from sort.SliceStable (%d vs %d records)", len(got), len(want))
	}
}

// TestWindowSortSpillRejectsBehindEmitted: spill absorbs beyond-window
// disorder, but a record older than output already released downstream
// is unplaceable by any amount of buffering and must still fail with
// the typed error.
func TestWindowSortSpillRejectsBehindEmitted(t *testing.T) {
	t0 := time.Date(2021, 7, 1, 0, 0, 0, 0, time.UTC)
	mk := func(off time.Duration) firewall.Record {
		return firewall.Record{Time: t0.Add(off), Src: netaddr6.MustAddr("2001:db8::1"),
			Dst: netaddr6.MustAddr("2001:db8:f::1"), Proto: layers.ProtoTCP, DstPort: 22, Length: 60}
	}
	var lastOut time.Time
	ws := NewWindowSort(time.Second, Collector(func(r firewall.Record) { lastOut = r.Time }))
	ws.EnableSpill(t.TempDir(), 0)
	// Drive the high-water mark far ahead so early records are released.
	for _, off := range []time.Duration{0, time.Second, time.Minute} {
		if err := ws.Consume(mk(off)); err != nil {
			t.Fatal(err)
		}
	}
	if lastOut.IsZero() {
		t.Fatal("no records released; cannot exercise behind-emitted rejection")
	}
	err := ws.Consume(mk(lastOut.Sub(t0) - time.Millisecond))
	var late *ErrLateRecord
	if !errors.As(err, &late) {
		t.Fatalf("record behind released output: err = %v, want *ErrLateRecord", err)
	}
}
