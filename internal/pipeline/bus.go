package pipeline

// Distributed pipeline endpoints: PublishSink ships a pipeline's
// record stream onto a bus as topic-partitioned event envelopes, and
// SubscribeSource replays one topic's envelopes back into a pipeline.
// Together they split one logical pipeline across processes — N
// vantage-point collectors publishing, one aggregator subscribing —
// with output byte-identical to the in-process sharded run (see the
// package doc's "Wire layer" section for the topic scheme and the
// ordering argument).

import (
	"context"
	"errors"
	"fmt"

	"v6scan/internal/bus"
	"v6scan/internal/dispatch"
	"v6scan/internal/events"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
)

// ErrEnvelopeGap reports a hole in a topic's envelope sequence: the
// subscriber attached after publishing started, or the broker lost a
// message. The stream cannot be trusted past a gap, so the run aborts.
var ErrEnvelopeGap = errors.New("pipeline: envelope sequence gap")

// PublishSink is a terminal sink that publishes the record stream onto
// a bus, partitioned across topics by the coarsest-level source prefix
// (dispatch.Partition) — the same routing the in-process sharded
// consumers use, so a subscriber merging the topics reconstructs a
// stream the detector/IDS reduce to byte-identical output.
//
// The sink is batch-native and follows the pooled-batch contract:
// incoming batches are only read during the call (records are copied
// into per-topic staging buffers, and the bus copies again on
// publish). Each topic's envelopes carry consecutive sequence numbers
// from 0; Flush publishes any staged remainder and then one EOS
// envelope per topic, idempotently — a second Flush is a no-op, and
// Close (which implies Flush) releases the staging buffers.
type PublishSink struct {
	ctx    context.Context
	bus    *bus.Bus
	level  netaddr6.AggLevel
	topics []string

	stage []*[]firewall.Record
	seqs  []uint64
	eos   []bool
	enc   []byte
	env   events.Envelope

	envelopes uint64
	flushed   bool
	closed    bool
}

// NewPublishSink returns a sink publishing onto b, routing each record
// to topics[dispatch.Partition(r.Src, level, len(topics))]. level is
// the partition level — the coarsest configured aggregation level
// (dispatch.CoarsestLevel), so that all of a source's state lands
// behind one topic. ctx bounds blocking publishes (backpressure): when
// it is cancelled, in-flight and future publishes fail with its error.
func NewPublishSink(ctx context.Context, b *bus.Bus, level netaddr6.AggLevel, topics ...string) *PublishSink {
	if len(topics) == 0 {
		panic("pipeline: PublishSink needs at least one topic")
	}
	if !level.Valid() {
		panic("pipeline: PublishSink needs a valid partition level")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &PublishSink{
		ctx:    ctx,
		bus:    b,
		level:  level,
		topics: append([]string(nil), topics...),
		stage:  make([]*[]firewall.Record, len(topics)),
		seqs:   make([]uint64, len(topics)),
		eos:    make([]bool, len(topics)),
	}
	for i := range s.stage {
		s.stage[i] = dispatch.GetBatch(DefaultBatchSize)
	}
	return s
}

// Envelopes returns the number of envelopes published so far
// (including EOS markers). Safe after the run ends.
func (s *PublishSink) Envelopes() uint64 { return s.envelopes }

// route stages one record on its topic, publishing the topic's stage
// when it reaches a full batch.
func (s *PublishSink) route(r firewall.Record) error {
	p := 0
	if len(s.topics) > 1 {
		p = dispatch.Partition(r.Src, s.level, len(s.topics))
	}
	st := s.stage[p]
	*st = append(*st, r)
	if len(*st) >= DefaultBatchSize {
		return s.publishTopic(p)
	}
	return nil
}

// Consume implements RecordSink.
func (s *PublishSink) Consume(r firewall.Record) error { return s.route(r) }

// ConsumeBatch implements BatchSink: the batch is partitioned into the
// staging buffers and every non-empty stage is published before the
// call returns, so a topic never lags the stream by more than one
// batch — that bound is what keeps a merging subscriber's bounded
// buffers from stalling a publisher on skewed traffic.
func (s *PublishSink) ConsumeBatch(recs []firewall.Record) error {
	for _, r := range recs {
		if err := s.route(r); err != nil {
			return err
		}
	}
	return s.publishPending()
}

// publishPending publishes every non-empty staging buffer.
func (s *PublishSink) publishPending() error {
	for i := range s.stage {
		if len(*s.stage[i]) > 0 {
			if err := s.publishTopic(i); err != nil {
				return err
			}
		}
	}
	return nil
}

// publishTopic encodes topic i's stage as one envelope and publishes
// it, blocking under subscriber backpressure.
func (s *PublishSink) publishTopic(i int) error {
	st := s.stage[i]
	s.env = events.Envelope{
		Kind:    events.KindRecords,
		Topic:   s.topics[i],
		Seq:     s.seqs[i],
		Records: *st,
	}
	b, err := s.env.Append(s.enc[:0])
	if err != nil {
		return err
	}
	s.enc = b
	if err := s.bus.Publish(s.ctx, s.topics[i], b); err != nil {
		return fmt.Errorf("pipeline: publishing to %s: %w", s.topics[i], err)
	}
	s.seqs[i]++
	s.envelopes++
	*st = (*st)[:0]
	return nil
}

// Flush implements RecordSink: staged remainders are published, then
// one EOS envelope per topic ends each stream. Idempotent — after the
// first successful Flush further calls are no-ops, and a failed Flush
// resumes where it stopped (EOS is sent at most once per topic).
func (s *PublishSink) Flush() error {
	if s.flushed {
		return nil
	}
	if err := s.publishPending(); err != nil {
		return err
	}
	for i := range s.topics {
		if s.eos[i] {
			continue
		}
		s.env = events.Envelope{Kind: events.KindEOS, Topic: s.topics[i], Seq: s.seqs[i]}
		b, err := s.env.Append(s.enc[:0])
		if err != nil {
			return err
		}
		s.enc = b
		if err := s.bus.Publish(s.ctx, s.topics[i], b); err != nil {
			return fmt.Errorf("pipeline: publishing to %s: %w", s.topics[i], err)
		}
		s.seqs[i]++
		s.envelopes++
		s.eos[i] = true
	}
	s.flushed = true
	return nil
}

// Close implements Sink: Flush, then release the staging buffers.
// Idempotent.
func (s *PublishSink) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.Flush()
	for _, st := range s.stage {
		dispatch.PutBatch(st)
	}
	s.stage = nil
	return err
}

// SubscribeSource replays one topic's record envelopes from a bus into
// a pipeline: it subscribes at construction time (so envelopes
// published between construction and the run are buffered, not lost),
// pulls and decodes envelopes, verifies the per-topic sequence is
// gapless, and ends cleanly at the topic's EOS envelope. Emitted
// batches follow the pooled-batch contract. To consume several topics
// in one pipeline, merge SubscribeSources with FromBus.
type SubscribeSource struct {
	ctx   context.Context
	topic string
	sub   *bus.Subscription
	err   error
}

// NewSubscribeSource subscribes to topic on b (with the bus default
// buffer depth) and returns the source. A subscribe failure (closed
// bus) surfaces when the source runs, keeping construction fluent.
func NewSubscribeSource(ctx context.Context, b *bus.Bus, topic string) *SubscribeSource {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &SubscribeSource{ctx: ctx, topic: topic}
	s.sub, s.err = b.Subscribe(0, topic)
	return s
}

// Emit implements Source by riding EmitBatch.
func (s *SubscribeSource) Emit(emit func(r firewall.Record) error) error {
	return s.EmitBatch(DefaultBatchSize, func(recs []firewall.Record) error {
		for _, r := range recs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// EmitBatch implements BatchSource.
func (s *SubscribeSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	if s.err != nil {
		return fmt.Errorf("pipeline: subscribing to %s: %w", s.topic, s.err)
	}
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	defer s.sub.Close()
	buf := dispatch.GetBatch(batchSize)
	var env events.Envelope
	env.Records = *buf
	defer func() {
		*buf = env.Records[:0]
		dispatch.PutBatch(buf)
	}()
	var nextSeq uint64
	for {
		msg, err := s.sub.Pull(s.ctx)
		if err != nil {
			if errors.Is(err, bus.ErrClosed) {
				return fmt.Errorf("pipeline: topic %s: bus closed before end of stream", s.topic)
			}
			return fmt.Errorf("pipeline: topic %s: %w", s.topic, err)
		}
		if err := env.Decode(msg.Data); err != nil {
			return fmt.Errorf("pipeline: topic %s: %w", s.topic, err)
		}
		if env.Topic != s.topic {
			return fmt.Errorf("pipeline: topic %s: envelope addressed to %q", s.topic, env.Topic)
		}
		if env.Seq != nextSeq {
			return fmt.Errorf("%w: topic %s: got seq %d, want %d",
				ErrEnvelopeGap, s.topic, env.Seq, nextSeq)
		}
		nextSeq++
		switch env.Kind {
		case events.KindEOS:
			return nil
		case events.KindRecords:
			for start := 0; start < len(env.Records); start += batchSize {
				end := start + batchSize
				if end > len(env.Records) {
					end = len(env.Records)
				}
				if err := emit(env.Records[start:end]); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("pipeline: topic %s: unexpected envelope kind %d", s.topic, env.Kind)
		}
	}
}

// FromBus starts a builder consuming the given topics from b: one
// SubscribeSource per topic, k-way merged in timestamp order
// (MergeSource) when there is more than one. Subscriptions attach
// immediately, so publishers started after FromBus returns cannot race
// the run. Topic order is the merge tie-break order: list the topics
// of lower-indexed publishers first to reproduce concatenation order
// on equal timestamps (see the package doc, "Wire layer").
func FromBus(b *bus.Bus, topics ...string) *Builder {
	return FromBusContext(context.Background(), b, topics...)
}

// FromBusContext is FromBus with an explicit context bounding the
// blocking pulls: cancel it to abort a subscriber waiting on
// publishers that will never finish.
func FromBusContext(ctx context.Context, b *bus.Bus, topics ...string) *Builder {
	srcs := make([]Source, len(topics))
	for i, tp := range topics {
		srcs[i] = NewSubscribeSource(ctx, b, tp)
	}
	if len(srcs) == 1 {
		return From(srcs[0])
	}
	return From(NewMergeSource(srcs...))
}

// PublishInto terminates the pipeline in a PublishSink and runs it:
// the stream is partitioned by the coarsest-level source prefix across
// topics and published onto b, ending each topic with EOS. The
// collector half of a distributed split; the aggregator half is
// FromBus.
func (b *Builder) PublishInto(ctx context.Context, bb *bus.Bus, level netaddr6.AggLevel, topics ...string) error {
	return b.RunInto(ctx, NewPublishSink(ctx, bb, level, topics...))
}
