package pipeline

// Durable-state plumbing: periodic checkpoints of terminal sink state
// at consistent stream-time cuts, and resume from the latest one.
//
// # Consistency
//
// A checkpoint is only ever written at a cadence fire point: the
// moment the cadence machinery (due/splitByCadences) observes the first
// record at or past the cadence boundary, before that record is
// processed. Records are non-decreasing, and the cadence fires at the
// FIRST record carrying its timestamp, so at a fire with time t every
// processed record has Time < t — the snapshot is exactly the state
// of the prefix {Time < t}, and the snapshot's mark is t.
//
// Resume replays the same input and drops every record with
// Time ≤ horizon (= mark − 1ns, i.e. Time < mark) ahead of the
// terminal, which reconstructs the uninterrupted run byte-exactly.
//
// When an eviction cadence (AdvanceEvery) is configured, the
// checkpoint cadence rides it: snapshots are cut only at eviction
// fire points (the first one at least CheckpointEvery past the last
// snapshot), immediately after the advance/tick runs. Two things
// follow. First, a snapshot always includes the eviction horizon's
// effect, in the order the live run applied it. Second, at every cut
// the eviction cadence's own mark equals the snapshot mark, so Resume
// — which restores both marks to the snapshot's — puts the resumed
// run's eviction schedule exactly in phase with the uninterrupted
// one. That matters for the IDS, whose tick timing is semantic:
// checkpointing never perturbs the tick schedule, and a resumed run
// ticks where the uninterrupted run would have. Without an eviction
// cadence the checkpoint cadence fires (and splits batches) on its
// own, and there is no eviction phase to preserve.
//
// # Files
//
// Checkpoints are one file per cut, named by the mark's UnixNano
// (zero-padded so lexical order is time order), written to a temp file
// and renamed into place — a crash mid-write never leaves a readable
// partial checkpoint, and LatestCheckpoint never picks one up.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"v6scan/internal/checkpoint"
	"v6scan/internal/core"
	"v6scan/internal/ids"
)

// Checkpointer is implemented by terminal sinks that can write a
// versioned snapshot of their state at a consistent stream-time cut.
// The caller guarantees mark is a valid cut: every record with Time <
// mark consumed, none with Time ≥ mark. All built-in detector and IDS
// sinks (plain and sharded) implement it.
type Checkpointer interface {
	Checkpoint(w io.Writer, mark time.Time) error
}

// checkpointPolicy is the embedded per-sink checkpoint cadence: which
// directory to write to, how often (stream time), and the cadence
// mark. It shares the due/splitByCadences machinery with the eviction
// cadence, so checkpoint cuts land exactly at cadence fire points on
// both the record and batch paths.
type checkpointPolicy struct {
	CheckpointEvery time.Duration
	CheckpointDir   string
	lastCkpt        time.Time
	// met is the sink's metrics bundle (nil when uninstrumented). It
	// lives on the embedded policy so every terminal sink gets the
	// setMetrics hook, the advance-fire counter, and checkpoint timing
	// from one place.
	met *Metrics
}

// setCheckpoint lets Builder.CheckpointEvery reach a sink through
// RunInto, mirroring setCadence.
func (p *checkpointPolicy) setCheckpoint(every time.Duration, dir string) {
	p.CheckpointEvery = every
	p.CheckpointDir = dir
}

// setMetrics lets Builder.Instrument reach a sink through RunInto,
// mirroring setCadence. Promoted onto all four terminal sinks by
// embedding.
func (p *checkpointPolicy) setMetrics(m *Metrics) { p.met = m }

// writeTimed is WriteCheckpoint with duration/outcome instrumentation.
func (p *checkpointPolicy) writeTimed(ck Checkpointer, t time.Time) error {
	start := time.Now()
	err := WriteCheckpoint(p.CheckpointDir, ck, t)
	p.met.checkpointDone(time.Since(start), err)
	return err
}

// enabled reports whether the policy should participate in the
// cadence machinery.
func (p *checkpointPolicy) enabled() bool {
	return p.CheckpointEvery > 0 && p.CheckpointDir != ""
}

// maybeCheckpoint is the cadence check run at eviction fire points
// (or at every record when no eviction cadence exists): when due at
// t, snapshot ck at mark t. Running it only after the advance/tick
// keeps the snapshot inclusive of the eviction's effect and the
// eviction mark equal to the snapshot mark (see the package comment
// above on resume phase).
func (p *checkpointPolicy) maybeCheckpoint(ck Checkpointer, t time.Time) error {
	if p.enabled() && due(&p.lastCkpt, p.CheckpointEvery, t) {
		return p.writeTimed(ck, t)
	}
	return nil
}

// cadences assembles a sink's batch-path cadence list: the eviction
// cadence with the checkpoint check riding inside its fire (so
// snapshots land only on eviction fire points), or — when the sink
// has no eviction cadence — the checkpoint cadence alone driving the
// batch splits. Mirrors exactly what the sinks' Consume does record
// by record.
func (p *checkpointPolicy) cadences(ck Checkpointer, advEvery time.Duration,
	lastAdv *time.Time, advFire func(time.Time) error) []cadence {
	if advEvery > 0 {
		fire := func(t time.Time) error {
			if err := advFire(t); err != nil {
				return err
			}
			p.met.advanceFired(t)
			return p.maybeCheckpoint(ck, t)
		}
		return []cadence{{lastAdv, advEvery, fire}}
	}
	if p.enabled() {
		return []cadence{{&p.lastCkpt, p.CheckpointEvery,
			func(t time.Time) error { return p.writeTimed(ck, t) }}}
	}
	return nil
}

// checkpointFileName names a checkpoint by its mark so lexical order
// is stream-time order.
func checkpointFileName(mark time.Time) string {
	return fmt.Sprintf("%020d.ckpt", mark.UnixNano())
}

// CheckpointPath returns the path WriteCheckpoint publishes a cut at
// mark under — for callers that place sidecar files next to a
// checkpoint (the serve daemon's cadence-phase marks).
func CheckpointPath(dir string, mark time.Time) string {
	return filepath.Join(dir, checkpointFileName(mark))
}

// WriteCheckpoint writes one snapshot of ck at mark into dir,
// atomically: the bytes land in a temp file that is renamed into its
// final name only after a successful sync, so readers never observe a
// partial checkpoint.
func WriteCheckpoint(dir string, ck Checkpointer, mark time.Time) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: creating checkpoint dir: %w", err)
	}
	f, err := os.CreateTemp(dir, checkpointTempPattern)
	if err != nil {
		return fmt.Errorf("pipeline: creating checkpoint: %w", err)
	}
	tmp := f.Name()
	if err := ck.Checkpoint(f, mark); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pipeline: writing checkpoint: %w", err)
	}
	final := filepath.Join(dir, checkpointFileName(mark))
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("pipeline: publishing checkpoint: %w", err)
	}
	return nil
}

// checkpointTempPattern is the os.CreateTemp pattern WriteCheckpoint
// stages bytes under; checkpointTempPrefix selects the files it
// produces. The prefix deliberately cannot collide with a published
// checkpoint name (those have all-digit stems), so checkpointMark
// never selects a temp file — but a crashed writer leaves its temp
// behind forever, which is what SweepCheckpointTemps cleans up.
const (
	checkpointTempPattern = ".ckpt-*"
	checkpointTempPrefix  = ".ckpt-"
)

// SweepCheckpointTemps removes leftover checkpoint temp files from
// interrupted WriteCheckpoint calls — a crash between CreateTemp and
// the rename strands the partially-written temp, and nothing else ever
// collects it. Call it when resuming from a checkpoint directory
// (cmd/v6scan and the serve daemon do); it is safe alongside a live
// writer only in the sense that it may race a write in progress, so
// sweep before starting the pipeline, not during. Returns the number
// of temp files removed. A missing directory sweeps zero files.
func SweepCheckpointTemps(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	removed := 0
	for _, e := range entries {
		if !e.Type().IsRegular() || !strings.HasPrefix(e.Name(), checkpointTempPrefix) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, fmt.Errorf("pipeline: sweeping checkpoint temp: %w", err)
		}
		removed++
	}
	return removed, nil
}

// checkpointMark parses the mark out of a checkpoint file name.
// Only names of the exact form WriteCheckpoint produces — an
// all-digit stem plus ".ckpt" — qualify; anything else (temp files
// from interrupted writes, sidecar files, stray directory content)
// reports ok=false and is skipped.
func checkpointMark(name string) (mark int64, ok bool) {
	stem, found := strings.CutSuffix(name, ".ckpt")
	if !found || stem == "" || len(stem) > 20 {
		return 0, false
	}
	for _, c := range stem {
		if c < '0' || c > '9' {
			return 0, false
		}
	}
	n, err := strconv.ParseInt(stem, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// LatestCheckpoint returns the path of the newest checkpoint in dir
// (the one with the largest parsed mark), or "" when the directory
// holds none. Entries that are not well-formed checkpoint files —
// leftover ".ckpt-*" temp files, sidecar files, non-numeric stems,
// subdirectories — are ignored, so a dirty directory (crashed writer,
// operator droppings) never confuses resume. When two names parse to
// the same mark (e.g. differing zero-padding), the lexically greatest
// name wins, a deterministic tie-break.
func LatestCheckpoint(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", err
	}
	best := ""
	var bestMark int64
	for _, e := range entries {
		name := e.Name()
		if !e.Type().IsRegular() {
			continue
		}
		mark, ok := checkpointMark(name)
		if !ok {
			continue
		}
		if best == "" || mark > bestMark || (mark == bestMark && name > best) {
			best, bestMark = name, mark
		}
	}
	if best == "" {
		return "", nil
	}
	return filepath.Join(dir, best), nil
}

// Resumed is a terminal sink rebuilt from a checkpoint, plus what a
// caller needs to resume: skip the replayed input through Horizon
// (Builder.ResumeFrom) and run into Sink.
type Resumed struct {
	// Sink is the restored terminal: *DetectorSink or *ShardedSink for
	// a detector checkpoint, *IDSSink or *ShardedIDSSink for an IDS
	// one, matching the requested shard count.
	Sink RecordSink
	// Kind is the snapshot kind (checkpoint.KindDetector or
	// checkpoint.KindIDS).
	Kind uint8
	// Mark is the checkpoint's stream-time cut; Horizon = Mark − 1ns is
	// the inclusive replay skip bound.
	Mark, Horizon time.Time
}

// Resume rebuilds a terminal sink from a snapshot stream. shards > 1
// restores the sharded variant — the shard count need not match the
// one the snapshot was taken at. The restored sink's cadence marks are
// set to the snapshot's cut, so eviction and checkpoint cadences
// resume in phase with the interrupted run.
func Resume(r io.Reader, shards int) (*Resumed, error) {
	cr, err := checkpoint.NewReader(r)
	if err != nil {
		return nil, err
	}
	hdr := cr.Header()
	res := &Resumed{Kind: hdr.Kind, Mark: hdr.Mark, Horizon: hdr.Horizon}
	switch hdr.Kind {
	case checkpoint.KindDetector:
		if shards > 1 {
			d, err := core.RestoreShardedDetector(cr, shards)
			if err != nil {
				return nil, err
			}
			s := NewShardedSink(d)
			s.lastAdvance = hdr.Mark
			s.lastCkpt = hdr.Mark
			res.Sink = s
		} else {
			d, err := core.RestoreDetector(cr)
			if err != nil {
				return nil, err
			}
			s := NewDetectorSink(d)
			s.lastAdvance = hdr.Mark
			s.lastCkpt = hdr.Mark
			res.Sink = s
		}
	case checkpoint.KindIDS:
		if shards > 1 {
			e, err := ids.RestoreShardedEngine(cr, shards)
			if err != nil {
				return nil, err
			}
			s := NewShardedIDSSink(e)
			s.lastAdvance = hdr.Mark
			s.lastCkpt = hdr.Mark
			res.Sink = s
		} else {
			e, err := ids.RestoreEngine(cr)
			if err != nil {
				return nil, err
			}
			s := NewIDSSink(e)
			s.lastAdvance = hdr.Mark
			s.lastCkpt = hdr.Mark
			res.Sink = s
		}
	default:
		return nil, fmt.Errorf("%w: unknown snapshot kind %d", checkpoint.ErrFormat, hdr.Kind)
	}
	return res, nil
}

// ResumeFile is Resume over a checkpoint file path.
func ResumeFile(path string, shards int) (*Resumed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Resume(f, shards)
}

// Checkpoint implements Checkpointer: a consistent snapshot of the
// wrapped detector.
func (s *DetectorSink) Checkpoint(w io.Writer, mark time.Time) error {
	return s.D.Snapshot(w, mark)
}

// Checkpoint implements Checkpointer: a dispatcher barrier drains
// in-flight batches, then all shards snapshot as one global cut.
func (s *ShardedSink) Checkpoint(w io.Writer, mark time.Time) error {
	return s.D.Snapshot(w, mark)
}

// Checkpoint implements Checkpointer: a consistent snapshot of the
// wrapped engine.
func (s *IDSSink) Checkpoint(w io.Writer, mark time.Time) error {
	return s.E.Snapshot(w, mark)
}

// Checkpoint implements Checkpointer: a dispatcher barrier drains
// in-flight batches, then all shards snapshot as one global cut.
func (s *ShardedIDSSink) Checkpoint(w io.Writer, mark time.Time) error {
	return s.E.Snapshot(w, mark)
}
