package pipeline

// TailSource: follow-mode ingestion of a growing binary firewall log —
// the daemon-facing counterpart of LogSource's finite read. See the
// package doc's "Serving" section for the ownership and rotation
// rules.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
)

// DefaultTailPoll is the growth-poll interval when TailConfig.Poll is
// zero: frequent enough that a live dashboard feels current, rare
// enough that an idle tail costs nothing measurable.
const DefaultTailPoll = 250 * time.Millisecond

// TailConfig tunes a TailSource.
type TailConfig struct {
	// Poll is the sleep between growth checks (default DefaultTailPoll).
	Poll time.Duration
	// Context ends the tail: once done, the source drains every byte
	// already durable in the file and returns cleanly (nil), so the
	// pipeline flushes normally — the graceful-shutdown path.
	Context context.Context
}

// TailStats is a point-in-time copy of a tail's progress counters.
type TailStats struct {
	// Offset is the byte position consumed so far in the current file.
	Offset int64
	// Rotations counts reopen events (the path pointed at a new file).
	Rotations int
	// Truncations counts in-place shrinks (offset reset to zero).
	Truncations int
}

// TailSource follows a growing binary firewall log. It emits every
// whole record as soon as it is visible, holds partial trailing writes
// until they complete, survives rotation (the path re-pointed at a
// fresh file: the old handle is drained, then the new file is read
// from the start) and in-place truncation (offset resets), and ends
// cleanly when its context is cancelled — after a final drain, so a
// shutdown never abandons records already durable.
//
// A TailSource is single-use and single-goroutine, like every other
// source: the pipeline's run goroutine calls Emit/EmitBatch, and
// Stats must only be called from code running inside that pipeline
// (a stage or sink) or after the run ends.
type TailSource struct {
	path string
	cfg  TailConfig

	f      *os.File
	info   os.FileInfo // identity of the open handle, for rotation checks
	offset int64
	stats  TailStats

	// buf is the reused raw-read scratch sized to the largest chunk.
	buf []byte
}

// NewTailSource follows the binary firewall log at path. The file may
// not exist yet; the tail waits for it to appear.
func NewTailSource(path string, cfg TailConfig) *TailSource {
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultTailPoll
	}
	if cfg.Context == nil {
		cfg.Context = context.Background()
	}
	return &TailSource{path: path, cfg: cfg}
}

// Stats returns the progress counters. See TailSource on when calling
// it is safe.
func (t *TailSource) Stats() TailStats { return t.stats }

// Emit implements Source by riding EmitBatch.
func (t *TailSource) Emit(emit func(r firewall.Record) error) error {
	return t.EmitBatch(DefaultBatchSize, func(recs []firewall.Record) error {
		for _, r := range recs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// EmitBatch implements BatchSource: an open-drain-sleep loop that ends
// only on context cancellation (clean, after a final drain) or an
// emit/read error. Chunk buffers follow the pooled-batch contract of
// the other sources.
func (t *TailSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	batch := dispatch.GetBatch(batchSize)
	defer dispatch.PutBatch(batch)
	defer func() {
		if t.f != nil {
			t.f.Close()
			t.f = nil
		}
	}()
	done := t.cfg.Context.Done()
	timer := time.NewTimer(t.cfg.Poll)
	defer timer.Stop()
	for {
		if err := t.drain(batchSize, batch, emit); err != nil {
			return err
		}
		select {
		case <-done:
			// Final sweep: records appended between the drain above and
			// the cancellation are still owed downstream.
			return t.drain(batchSize, batch, emit)
		case <-timer.C:
			timer.Reset(t.cfg.Poll)
		}
	}
}

// tailRaceHook and tailReopenHook are test seams: when non-nil they
// run between a drain pass and the rotation check, and between a
// rotation reopen and its re-stat, respectively — the two windows a
// concurrent writer can rotate in. Tests use them to force the
// drain/rotate races deterministically; production never sets them.
var (
	tailRaceHook   func()
	tailReopenHook func()
)

// drain consumes everything currently visible: whole records in the
// open handle, then — if the path has rotated to a new file — the new
// file from the start, repeating until no step makes progress.
func (t *TailSource) drain(batchSize int, batch *[]firewall.Record,
	emit func(recs []firewall.Record) error) error {
	for {
		progressed, err := t.drainHandle(batchSize, batch, emit)
		if err != nil {
			return err
		}
		if tailRaceHook != nil {
			tailRaceHook()
		}
		rotated, err := t.checkRotate(batchSize, batch, emit)
		if err != nil {
			return err
		}
		if !progressed && !rotated {
			return nil
		}
	}
}

// drainHandle reads every whole record the open handle holds past the
// current offset, in ≈batchSize-record chunks planned by
// firewall.PlanChunks so reads stay record-aligned. A partial trailing
// record (a writer mid-append) is left for the next poll.
func (t *TailSource) drainHandle(batchSize int, batch *[]firewall.Record,
	emit func(recs []firewall.Record) error) (bool, error) {
	if t.f == nil && !t.open() {
		return false, nil
	}
	st, err := t.f.Stat()
	if err != nil {
		return false, fmt.Errorf("pipeline: tailing %s: %w", t.path, err)
	}
	size := st.Size()
	if size < t.offset {
		// Truncated in place: the writer restarted the file under the
		// same identity. Start over from the top.
		t.offset = 0
		t.stats.Truncations++
		t.stats.Offset = 0
	}
	whole := (size - t.offset) / firewall.RecordWireSize * firewall.RecordWireSize
	if whole <= 0 {
		return false, nil
	}
	nChunks := int((whole/firewall.RecordWireSize + int64(batchSize) - 1) / int64(batchSize))
	for _, c := range firewall.PlanChunks(whole, nChunks) {
		if int64(cap(t.buf)) < c.Length {
			t.buf = make([]byte, c.Length)
		}
		buf := t.buf[:c.Length]
		n, err := t.f.ReadAt(buf, t.offset)
		// A concurrent shrink between Stat and ReadAt surfaces as a
		// short read; decode the whole records that did arrive and let
		// the next drain observe the truncation.
		n -= n % firewall.RecordWireSize
		if n > 0 {
			recs, derr := firewall.DecodeChunk(buf[:n], (*batch)[:0])
			*batch = recs
			if derr != nil {
				return false, derr
			}
			t.offset += int64(n)
			t.stats.Offset = t.offset
			if eerr := emit(recs); eerr != nil {
				return false, eerr
			}
		}
		if err != nil && !errors.Is(err, io.EOF) {
			return false, fmt.Errorf("pipeline: tailing %s: %w", t.path, err)
		}
		if n < len(buf) {
			return n > 0, nil
		}
	}
	return true, nil
}

// open tries to attach to the path; reports whether a handle is open.
func (t *TailSource) open() bool {
	f, err := os.Open(t.path)
	if err != nil {
		return false
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return false
	}
	t.f, t.info, t.offset = f, st, 0
	t.stats.Offset = 0
	return true
}

// checkRotate detects the path pointing at a different file than the
// open handle (logrotate's rename-and-recreate) and swaps to the new
// file. Two races with a concurrent rotation are handled here:
//
//   - The writer may have appended to the old file after the caller's
//     last drain but before renaming it, so the old handle gets one
//     final drain before it is closed — the writer stopped touching the
//     file at the rename, which makes that drain complete. Without it,
//     the old generation's tail would be silently skipped.
//   - A second rotation can land between the path stat and the reopen,
//     making the handle just opened itself an old generation. After
//     every reopen the path is re-stat'ed, and the drain-close-reopen
//     step loops until the handle and the path agree — every
//     generation this tail ever holds is drained before being dropped.
//
// Only a generation renamed away before the tail ever opens it can
// still be missed, which is why the rotation rule (package doc,
// "Serving") requires rotation intervals long enough for a tail to
// observe each generation.
func (t *TailSource) checkRotate(batchSize int, batch *[]firewall.Record,
	emit func(recs []firewall.Record) error) (bool, error) {
	if t.f == nil {
		return false, nil
	}
	st, err := os.Stat(t.path)
	if err != nil {
		// Path missing: rotated away with no replacement yet. Keep the
		// old handle; a future poll sees the recreated file.
		return false, nil
	}
	rotated := false
	for !os.SameFile(t.info, st) {
		// Final drain of the outgoing handle: the writer's last appends
		// landed before the rename, so they are visible now.
		if _, err := t.drainHandle(batchSize, batch, emit); err != nil {
			return rotated, err
		}
		t.f.Close()
		t.f = nil
		t.stats.Rotations++
		rotated = true
		if !t.open() {
			// The path vanished again between stat and open; the caller's
			// drain loop (and the next poll) retries from scratch.
			return rotated, nil
		}
		if tailReopenHook != nil {
			tailReopenHook()
		}
		st, err = os.Stat(t.path)
		if err != nil {
			return rotated, nil
		}
	}
	return rotated, nil
}
