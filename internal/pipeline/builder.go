package pipeline

import (
	"context"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
)

// Builder assembles a pipeline fluently, left to right — the order
// stages are named is the order records traverse them, mirroring the
// paper's fixed processing chain (collection policy → per-day ordering
// → 5-duplicate artifact filter → detection):
//
//	det, err := pipeline.From(src).
//		Policy(firewall.DefaultCollectPolicy()).
//		DaySort().
//		Artifact().
//		Detect(ctx, core.DefaultConfig(), 8)
//
// Builder methods mutate and return the same builder, so conditional
// stages compose naturally (b := From(src); if filter { b.Artifact() }).
// A builder is single-use: exactly one of the terminal calls (Build,
// RunInto, Detect, IDS, MAWI — or Into for a source-less Chain) may be
// made, after which the builder is spent; a second terminal call
// panics.
//
// Every stage the builder emits is batch-native, so when the source
// batches (BatchSource) and the terminal sink consumes batches
// (BatchSink), the built pipeline reports Batched() == true and
// records flow batch-to-batch through the entire chain. The terminal
// helpers own the sink lifecycle: they run the pipeline, Flush
// (finalize) and Close (release) the sink even on mid-stream errors,
// and return the sink's typed result.
type Builder struct {
	src    Source
	stages []func(next RecordSink) RecordSink
	// branches collects Tee side sinks so RunInto can extend the
	// terminal lifecycle (Close) to them.
	branches []RecordSink
	// advanceEvery is the stream-time eviction cadence the terminal
	// helpers apply by setting the sink's AdvanceEvery (the unified
	// name on every cadence-capable sink — detector Advance, IDS
	// Tick). Zero leaves eviction to Flush.
	advanceEvery time.Duration
	// ckptEvery/ckptDir is the checkpoint cadence RunInto applies to
	// terminals that can snapshot their state (the detector and IDS
	// sinks, plain and sharded).
	ckptEvery time.Duration
	ckptDir   string
	// met is the metrics bundle Instrument attached: Build mounts a
	// meter stage ahead of every other stage, and RunInto hands the
	// bundle to the terminal sink for cadence/checkpoint timing.
	met   *Metrics
	spent bool
}

// From starts a builder reading from src.
func From(src Source) *Builder { return &Builder{src: src} }

// FromFiles starts a builder ingesting one or more binary firewall
// log files: each file decodes in parallel chunks (see DecodeWorkers)
// and multiple files — day-logs, typically — merge into one
// time-ordered stream. Files are opened when the pipeline runs, so an
// unreadable path surfaces as the run error rather than breaking the
// fluent chain:
//
//	det, err := pipeline.FromFiles("day1.log", "day2.log").
//		DecodeWorkers(8).
//		Artifact().
//		Detect(ctx, core.DefaultConfig(), 8)
func FromFiles(paths ...string) *Builder { return From(NewFilesSource(paths...)) }

// DecodeWorkers sets the decode worker count on sources that shard
// their decode — the FromFiles source, a ParallelLogSource, or a
// MergeSource over them (which forwards the setting to its inputs).
// Non-positive (and the default) means one worker per CPU; sources
// without a parallel decode ignore the option.
func (b *Builder) DecodeWorkers(n int) *Builder {
	if s, ok := b.src.(interface{ SetDecodeWorkers(int) }); ok {
		s.SetDecodeWorkers(n)
	}
	return b
}

// Chain starts a source-less builder: a stage chain terminated with
// Into, for composing the sink side of a pipeline (simulation taps,
// Tee branches) with the same left-to-right syntax.
func Chain() *Builder { return &Builder{} }

func (b *Builder) stage(f func(next RecordSink) RecordSink) *Builder {
	b.stages = append(b.stages, f)
	return b
}

// Policy appends a collection-policy filter stage (the CDN's
// no-TCP/80, no-TCP/443, no-ICMPv6 rule).
func (b *Builder) Policy(p firewall.CollectPolicy) *Builder {
	return b.stage(func(next RecordSink) RecordSink { return Policy(p, next) })
}

// Filter appends a predicate filter stage.
func (b *Builder) Filter(pred func(r firewall.Record) bool) *Builder {
	return b.stage(func(next RecordSink) RecordSink { return Filter(pred, next) })
}

// Tap appends an observer stage invoking fn on every record.
func (b *Builder) Tap(fn func(r firewall.Record)) *Builder {
	return b.stage(func(next RecordSink) RecordSink { return Tap(fn, next) })
}

// Counter appends a counting stage and stores it in *out at build
// time, so the caller can read Count after the run:
//
//	var logged *pipeline.Counter
//	b.Counter(&logged)
func (b *Builder) Counter(out **Counter) *Builder {
	return b.stage(func(next RecordSink) RecordSink {
		c := NewCounter(next)
		*out = c
		return c
	})
}

// DaySort appends a per-UTC-day buffering sort stage.
func (b *Builder) DaySort() *Builder {
	return b.stage(func(next RecordSink) RecordSink { return NewDaySort(next) })
}

// WindowSort appends a bounded-lateness streaming reorder stage: a
// record is released, in stable timestamp order, once the stream has
// advanced window past it. The memory-bounded replacement for DaySort
// on near-sorted sources — whenever the input's disorder stays within
// the window, the emitted stream equals a full stable sort. Records
// later than the window abort the run with a *ErrLateRecord.
func (b *Builder) WindowSort(window time.Duration) *Builder {
	return b.stage(func(next RecordSink) RecordSink { return NewWindowSort(window, next) })
}

// WindowSortSpill appends a WindowSort stage with the spill-to-disk
// path enabled: disorder beyond the window switches the stage to
// buffering sorted runs in dir (the OS temp dir when empty) instead of
// aborting, and Flush merges them back into one stable
// timestamp-ordered stream. Output is identical to a full stable sort
// of the input regardless of how far the disorder exceeds the window.
func (b *Builder) WindowSortSpill(window time.Duration, dir string) *Builder {
	return b.stage(func(next RecordSink) RecordSink {
		w := NewWindowSort(window, next)
		w.EnableSpill(dir, 0)
		return w
	})
}

// AdvanceEvery sets the stream-time eviction cadence RunInto — and so
// every terminal helper — applies to a cadence-capable terminal sink:
// the detector sinks forward Detector.Advance (scan output is
// unchanged — only peak memory is bounded), the IDS sinks forward
// Engine.Tick (the inline deployment's timer, which does determine
// when idle candidates close). On the sharded terminals the horizon
// travels to every shard through the dispatcher's marks, ordered with
// the record stream, so output stays byte-identical at any shard
// count. Zero (the default) leaves all eviction to Flush and never
// touches the sink, so a cadence configured on the sink directly is
// preserved; a non-zero builder cadence wins over one set on the
// sink. Terminals without an eviction cadence ignore it — MAWI
// detectors are bounded by construction (one capture window), and
// arbitrary RunInto sinks opt in by implementing
// setCadence(time.Duration) (all built-in detector/IDS sinks do).
func (b *Builder) AdvanceEvery(every time.Duration) *Builder {
	b.advanceEvery = every
	return b
}

// CheckpointEvery sets a stream-time checkpoint cadence on the
// terminal: RunInto's sink snapshots its state into dir (one file per
// cut, atomically renamed into place; see LatestCheckpoint and
// Resume). Every snapshot is a consistent prefix of the stream — all
// records strictly before the cut applied, none at or after it. When
// an AdvanceEvery cadence is configured, checkpoints ride it: the
// snapshot is cut at the first eviction fire at least every past the
// previous snapshot, right after the advance/tick runs, which keeps
// the eviction schedule untouched by checkpointing and lets a
// resumed run pick the schedule up exactly in phase. Without
// AdvanceEvery the checkpoint cadence fires on its own. Terminals
// that cannot snapshot (MAWI, arbitrary sinks) ignore the cadence;
// the built-in detector and IDS sinks opt in by implementing
// setCheckpoint(time.Duration, string).
func (b *Builder) CheckpointEvery(every time.Duration, dir string) *Builder {
	b.ckptEvery = every
	b.ckptDir = dir
	return b
}

// Instrument attaches a metrics bundle (RegisterMetrics) to the
// pipeline: a batch-native meter stage mounted ahead of every other
// stage counts raw source output (records, batches, occupancy), and
// the terminal sink — any of the four built-ins — reports eviction
// fires and checkpoint outcomes into the same bundle. Instrumentation
// is allocation-free per record, so an instrumented pipeline's
// allocs/op match the uninstrumented one (BenchmarkMetricsHotPath).
func (b *Builder) Instrument(m *Metrics) *Builder {
	b.met = m
	return b
}

// ResumeFrom appends a filter dropping every record at or before
// horizon — the replay-skip half of checkpoint resume. Feed the same
// input the interrupted run saw, restore its sink (Resume), and the
// combination reconstructs the uninterrupted run byte-exactly:
//
//	res, _ := pipeline.ResumeFile(path, shards)
//	err := pipeline.FromFiles(logs...).
//		ResumeFrom(res.Horizon).
//		RunInto(ctx, res.Sink)
//
// Place it where the terminal's view is cut — after any reordering
// stage (DaySort, WindowSort), so the skip applies to the ordered
// stream the snapshot was cut from, not the raw arrival order.
func (b *Builder) ResumeFrom(horizon time.Time) *Builder {
	return b.Filter(func(r firewall.Record) bool { return r.Time.After(horizon) })
}

// Artifact appends the 5-duplicate artifact pre-filter. With no
// argument a fresh filter with the paper's parameters is created at
// build time; pass your own (at most one) to configure it or to read
// its Stats after the run.
func (b *Builder) Artifact(filter ...*firewall.ArtifactFilter) *Builder {
	return b.stage(func(next RecordSink) RecordSink {
		f := firewall.NewArtifactFilter()
		if len(filter) > 0 {
			f = filter[0]
		}
		return NewArtifactStage(f, next)
	})
}

// Tee appends a fan-out stage: every branch sees each record (side
// branches first, in argument order), and the stream continues down
// the main chain. Branches are flushed when the pipeline flushes, and
// RunInto closes branches implementing Sink along with the terminal.
// On the batch path each batch-capable branch but the main chain
// receives a copy, so a compacting branch cannot corrupt its
// siblings' view.
func (b *Builder) Tee(branches ...RecordSink) *Builder {
	b.branches = append(b.branches, branches...)
	return b.stage(func(next RecordSink) RecordSink {
		sinks := make([]RecordSink, 0, len(branches)+1)
		sinks = append(sinks, branches...)
		sinks = append(sinks, next)
		return &teeStage{sinks: sinks}
	})
}

// mark enforces single use: stage factories hold out-pointers and
// build-time state (the Artifact filter), so folding them twice would
// silently share state between runs.
func (b *Builder) mark() {
	if b.spent {
		panic("pipeline: builder reused after Build/Into/RunInto (builders are single-use)")
	}
	b.spent = true
}

// Into folds the stages around sink and returns the head of the
// resulting chain — the terminal for source-less Chain builders.
func (b *Builder) Into(sink RecordSink) RecordSink {
	b.mark()
	head := sink
	for i := len(b.stages) - 1; i >= 0; i-- {
		head = b.stages[i](head)
	}
	return head
}

// Build folds the stages around sink and couples the source to the
// chain. The returned pipeline's Batched() asserts full batch
// continuity: the source batches, every stage is batch-native, and
// the terminal sink consumes batches.
func (b *Builder) Build(sink RecordSink) *Pipeline {
	if b.src == nil {
		panic("pipeline: Build on a source-less Chain builder (use Into)")
	}
	b.mark()
	_, batched := sink.(BatchSink)
	head := sink
	for i := len(b.stages) - 1; i >= 0; i-- {
		head = b.stages[i](head)
		if _, ok := head.(BatchSink); !ok {
			batched = false
		}
	}
	if b.met != nil {
		head = &meterStage{m: b.met, next: head}
	}
	p := New(b.src, head)
	p.batched = p.batched && batched
	return p
}

// RunInto builds the pipeline into sink and runs it under ctx, owning
// the sink lifecycle: the chain is flushed even on a mid-stream error,
// and afterwards the terminal — and every Tee branch sink — that
// implements Sink is closed. The run error wins over any teardown
// error; otherwise the first teardown error is returned.
func (b *Builder) RunInto(ctx context.Context, sink RecordSink) error {
	if b.advanceEvery > 0 {
		if cs, ok := sink.(interface{ setCadence(time.Duration) }); ok {
			cs.setCadence(b.advanceEvery)
		}
	}
	if b.ckptEvery > 0 && b.ckptDir != "" {
		if cs, ok := sink.(interface{ setCheckpoint(time.Duration, string) }); ok {
			cs.setCheckpoint(b.ckptEvery, b.ckptDir)
		}
	}
	if b.met != nil {
		if ms, ok := sink.(interface{ setMetrics(*Metrics) }); ok {
			ms.setMetrics(b.met)
		}
	}
	branches := b.branches
	err := b.Build(sink).RunContext(ctx)
	for _, s := range append([]RecordSink{sink}, branches...) {
		if c, ok := s.(Sink); ok {
			if cerr := c.Close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Detect terminates the pipeline in the multi-aggregation scan
// detector — sharded across shards worker goroutines when shards > 1,
// plain otherwise — runs it, and returns the finished detector (for
// the sharded path, the deterministically merged view; output is
// identical at any shard count).
func (b *Builder) Detect(ctx context.Context, cfg core.Config, shards int) (*core.Detector, error) {
	if shards > 1 {
		sink := NewShardedSink(core.NewShardedDetector(cfg, shards))
		if err := b.RunInto(ctx, sink); err != nil {
			return nil, err
		}
		return sink.Result(), nil
	}
	sink := NewDetectorSink(core.NewDetector(cfg))
	if err := b.RunInto(ctx, sink); err != nil {
		return nil, err
	}
	return sink.Result(), nil
}

// IDS terminates the pipeline in the dynamic-aggregation IDS engine —
// sharded when shards > 1 — runs it, and returns the accumulated
// alerts (byte-identical at any shard count). AdvanceEvery sets the
// inline Tick cadence; for engine introspection (dropped-candidate
// counts, memory estimates), construct an IDSSink / ShardedIDSSink
// directly and use RunInto.
func (b *Builder) IDS(ctx context.Context, cfg ids.Config, shards int) ([]ids.Alert, error) {
	if shards > 1 {
		sink := NewShardedIDSSink(ids.NewSharded(cfg, shards))
		if err := b.RunInto(ctx, sink); err != nil {
			return nil, err
		}
		return sink.Result(), nil
	}
	sink := NewIDSSink(ids.New(cfg))
	if err := b.RunInto(ctx, sink); err != nil {
		return nil, err
	}
	return sink.Result(), nil
}

// MAWI terminates the pipeline in a capture-window MAWI detector
// (extended Fukuda–Heidemann definition), runs it, and returns the
// window's scans.
func (b *Builder) MAWI(ctx context.Context, cfg core.MAWIConfig) ([]core.MAWIScan, error) {
	sink := NewMAWISink(core.NewMAWIDetector(cfg))
	if err := b.RunInto(ctx, sink); err != nil {
		return nil, err
	}
	return sink.Result(), nil
}
