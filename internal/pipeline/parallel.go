package pipeline

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
)

// ParallelLogSource decodes a binary firewall log with the decode
// itself sharded: the log is split into record-aligned chunks
// (firewall.PlanChunks), a worker pool bulk-decodes each chunk into a
// pooled batch (firewall.DecodeChunk into the dispatch arena), and the
// emitter reassembles the batches in file order. The emitted record
// sequence — including the error class on a truncated log — is
// byte-identical to the serial LogSource at any worker count
// (TestParallelLogSourceParity, FuzzParallelDecode); only the batch
// boundaries may differ, which no stage observes.
//
// The source requires random access (io.ReaderAt) because workers read
// their chunks concurrently; streaming inputs such as stdin stay on
// the serial LogSource.
type ParallelLogSource struct {
	r       io.ReaderAt
	size    int64
	workers int
}

// NewParallelLogSource returns a source decoding the byte range
// [0, size) of r across workers decode goroutines. A non-positive
// worker count resolves to GOMAXPROCS at run time.
func NewParallelLogSource(r io.ReaderAt, size int64, workers int) *ParallelLogSource {
	return &ParallelLogSource{r: r, size: size, workers: workers}
}

// SetDecodeWorkers adjusts the worker count; it is the hook the
// builder's DecodeWorkers option resolves against.
func (s *ParallelLogSource) SetDecodeWorkers(n int) { s.workers = n }

// Emit implements Source on top of the batch path.
func (s *ParallelLogSource) Emit(emit func(r firewall.Record) error) error {
	return s.EmitBatch(DefaultBatchSize, func(recs []firewall.Record) error {
		for _, r := range recs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// decodedChunk is one worker's result: a pooled batch holding the
// chunk's records, plus the decode or read error, if any.
type decodedChunk struct {
	buf *[]firewall.Record
	err error
}

// EmitBatch implements BatchSource. Each planned chunk holds at most
// batchSize records and becomes exactly one emitted batch; a bounded
// window of decoded-but-unemitted chunks (2× the worker count) keeps
// workers busy ahead of the emitter without unbounded buffering.
func (s *ParallelLogSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	workers := s.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if s.size <= 0 {
		return nil
	}
	// One chunk per batch; when the file is small, split further so
	// every worker still gets work.
	nChunks := int((s.size/firewall.RecordWireSize + int64(batchSize) - 1) / int64(batchSize))
	if nChunks < workers {
		nChunks = workers
	}
	chunks := firewall.PlanChunks(s.size, nChunks)
	maxLen := 0
	for _, c := range chunks {
		if int(c.Length) > maxLen {
			maxLen = int(c.Length)
		}
	}

	type job struct {
		c   firewall.Chunk
		out chan decodedChunk
	}
	var (
		work  = make(chan job)
		slots = make(chan chan decodedChunk, 2*workers)
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]byte, maxLen)
			for j := range work {
				// The result channel is buffered, so the send cannot
				// block even when the emitter has already aborted.
				j.out <- s.decodeChunk(j.c, scratch, batchSize)
			}
		}()
	}
	// Dispatcher: hand chunks to workers and queue their result
	// channels in file order. A job is dispatched before its slot is
	// queued, so every queued slot is guaranteed a result and the
	// emitter can drain slots without deadlocking on abort.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(slots)
		defer close(work)
		for _, c := range chunks {
			out := make(chan decodedChunk, 1)
			select {
			case work <- job{c: c, out: out}:
			case <-stop:
				return
			}
			select {
			case slots <- out:
			case <-stop:
				return
			}
		}
	}()

	// Reassembly: slots arrive in file order, so emitting each result
	// as its slot completes reproduces the serial record sequence. The
	// serial source emits decoded records before surfacing the error
	// that stopped it; matching that here keeps error parity exact.
	var firstErr error
	for out := range slots {
		res := <-out
		if firstErr == nil {
			if res.buf != nil && len(*res.buf) > 0 {
				firstErr = emit(*res.buf)
			}
			if firstErr == nil && res.err != nil {
				firstErr = res.err
			}
			if firstErr != nil {
				halt()
			}
		}
		dispatch.PutBatch(res.buf)
	}
	wg.Wait()
	return firstErr
}

// decodeChunk reads one chunk into the worker's scratch buffer and
// bulk-decodes it into a pooled batch.
func (s *ParallelLogSource) decodeChunk(c firewall.Chunk, scratch []byte, batchSize int) decodedChunk {
	buf := scratch[:c.Length]
	n, err := s.r.ReadAt(buf, c.Offset)
	if int64(n) == c.Length {
		err = nil // a full read may still report io.EOF at the file end
	} else if err == nil {
		err = io.ErrUnexpectedEOF
	}
	if err != nil {
		return decodedChunk{err: fmt.Errorf("pipeline: reading log chunk at offset %d: %w", c.Offset, err)}
	}
	out := dispatch.GetBatch(min(batchSize, c.Records()+1))
	recs, derr := firewall.DecodeChunk(buf, (*out)[:0])
	*out = recs
	return decodedChunk{buf: out, err: derr}
}
