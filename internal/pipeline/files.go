package pipeline

import (
	"fmt"
	"os"
	"runtime"

	"v6scan/internal/firewall"
)

// FilesSource ingests one or more binary firewall log files — the
// multi-day workload: each file decodes through its own
// ParallelLogSource and, with more than one file, the per-file streams
// k-way merge in timestamp order (MergeSource), so a month of day-logs
// is one pipeline run. Files are opened lazily when the source runs,
// which is what lets the fluent FromFiles builder entry stay
// error-free: an unreadable path surfaces from the run itself.
type FilesSource struct {
	paths   []string
	workers int
}

// NewFilesSource returns a source over the given log files, merged in
// timestamp order when there is more than one.
func NewFilesSource(paths ...string) *FilesSource {
	return &FilesSource{paths: append([]string(nil), paths...)}
}

// SetDecodeWorkers sets the total decode worker budget; it is the hook
// the builder's DecodeWorkers option resolves against. Non-positive
// means one worker per CPU.
func (s *FilesSource) SetDecodeWorkers(n int) { s.workers = n }

// Emit implements Source on top of the batch path.
func (s *FilesSource) Emit(emit func(r firewall.Record) error) error {
	return s.EmitBatch(DefaultBatchSize, func(recs []firewall.Record) error {
		for _, r := range recs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// EmitBatch implements BatchSource. The worker budget is divided
// across files (rounding up, minimum one each): the merge consumes the
// files at similar rates, so per-file decode only needs a share of the
// total throughput.
func (s *FilesSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	if len(s.paths) == 0 {
		return nil
	}
	workers := s.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	perFile := (workers + len(s.paths) - 1) / len(s.paths)

	var files []*os.File
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	srcs := make([]Source, 0, len(s.paths))
	infos := make([]os.FileInfo, 0, len(s.paths))
	for _, p := range s.paths {
		f, err := os.Open(p)
		if err != nil {
			return fmt.Errorf("pipeline: opening log: %w", err)
		}
		files = append(files, f)
		fi, err := f.Stat()
		if err != nil {
			return fmt.Errorf("pipeline: sizing log %s: %w", p, err)
		}
		// The same file listed twice — same path, a symlink, a hardlink —
		// would silently double its records in the merged stream, so the
		// opened handles' identities must be pairwise distinct.
		for j, prev := range infos {
			if os.SameFile(prev, fi) {
				return fmt.Errorf("pipeline: duplicate input: %q and %q are the same file",
					s.paths[j], p)
			}
		}
		infos = append(infos, fi)
		srcs = append(srcs, NewParallelLogSource(f, fi.Size(), perFile))
	}
	if len(srcs) == 1 {
		return srcs[0].(BatchSource).EmitBatch(batchSize, emit)
	}
	return NewMergeSource(srcs...).EmitBatch(batchSize, emit)
}
