package pipeline

import (
	"sort"
	"time"

	"v6scan/internal/firewall"
)

// funcStage implements RecordSink with closures; all simple stages are
// built on it.
type funcStage struct {
	consume func(r firewall.Record) error
	flush   func() error
}

func (s *funcStage) Consume(r firewall.Record) error { return s.consume(r) }
func (s *funcStage) Flush() error                    { return s.flush() }

// Tap invokes fn on every record before passing it downstream —
// the hook analysis collectors attach with.
func Tap(fn func(r firewall.Record), next RecordSink) RecordSink {
	return &funcStage{
		consume: func(r firewall.Record) error {
			fn(r)
			return next.Consume(r)
		},
		flush: next.Flush,
	}
}

// Filter passes only records satisfying pred downstream.
func Filter(pred func(r firewall.Record) bool, next RecordSink) RecordSink {
	return &funcStage{
		consume: func(r firewall.Record) error {
			if !pred(r) {
				return nil
			}
			return next.Consume(r)
		},
		flush: next.Flush,
	}
}

// Policy applies a firewall collection policy (the CDN's no-TCP/80,
// no-TCP/443, no-ICMPv6 rule) as a filter stage.
func Policy(p firewall.CollectPolicy, next RecordSink) RecordSink {
	return Filter(p.Admit, next)
}

// Tee duplicates the stream into every sink. Consume fans out in
// argument order and stops at the first error; Flush always reaches
// every sink — so each releases its resources — and returns the first
// error encountered.
func Tee(sinks ...RecordSink) RecordSink {
	return &funcStage{
		consume: func(r firewall.Record) error {
			for _, s := range sinks {
				if err := s.Consume(r); err != nil {
					return err
				}
			}
			return nil
		},
		flush: func() error {
			var first error
			for _, s := range sinks {
				if err := s.Flush(); err != nil && first == nil {
					first = err
				}
			}
			return first
		},
	}
}

// Counter counts records passing through, for the pipeline statistics
// every consumer reports (records generated / logged / detected).
type Counter struct {
	n    uint64
	next RecordSink
}

// NewCounter returns a counting pass-through stage.
func NewCounter(next RecordSink) *Counter { return &Counter{next: next} }

// Consume implements RecordSink.
func (c *Counter) Consume(r firewall.Record) error {
	c.n++
	return c.next.Consume(r)
}

// ConsumeBatch implements BatchSink so counters do not break a
// downstream batch path.
func (c *Counter) ConsumeBatch(recs []firewall.Record) error {
	c.n += uint64(len(recs))
	return consumeBatch(c.next, recs)
}

// Flush implements RecordSink.
func (c *Counter) Flush() error { return c.next.Flush() }

// Count returns the number of records seen so far.
func (c *Counter) Count() uint64 { return c.n }

// DaySort buffers records per UTC day and forwards each completed day
// stably sorted by timestamp — the ordering contract the detectors and
// the artifact filter require from per-actor-ordered simulator output.
// Input days must arrive in order (records of day N all precede day
// N+1); within a day any order is accepted.
type DaySort struct {
	next RecordSink
	day  time.Time
	buf  []firewall.Record
}

// NewDaySort returns a day-sorting stage.
func NewDaySort(next RecordSink) *DaySort { return &DaySort{next: next} }

// Consume implements RecordSink.
func (d *DaySort) Consume(r firewall.Record) error {
	day := r.Time.UTC().Truncate(24 * time.Hour)
	if !d.day.IsZero() && day.After(d.day) {
		if err := d.emit(); err != nil {
			return err
		}
	}
	d.day = day
	d.buf = append(d.buf, r)
	return nil
}

// Flush drains the buffered day downstream.
func (d *DaySort) Flush() error {
	if err := d.emit(); err != nil {
		return err
	}
	return d.next.Flush()
}

func (d *DaySort) emit() error {
	if len(d.buf) == 0 {
		return nil
	}
	sort.SliceStable(d.buf, func(i, j int) bool { return d.buf[i].Time.Before(d.buf[j].Time) })
	err := consumeBatch(d.next, d.buf)
	d.buf = d.buf[:0]
	return err
}

// ArtifactStage runs the 5-duplicate artifact pre-filter as a pipeline
// stage. The caller keeps the filter to read its Stats after the run.
type ArtifactStage struct {
	f    *firewall.ArtifactFilter
	next RecordSink
}

// NewArtifactStage wraps an artifact filter around next.
func NewArtifactStage(f *firewall.ArtifactFilter, next RecordSink) *ArtifactStage {
	return &ArtifactStage{f: f, next: next}
}

// Consume implements RecordSink; completed days' survivors flow
// downstream as batches.
func (a *ArtifactStage) Consume(r firewall.Record) error {
	if out := a.f.Push(r); len(out) > 0 {
		return consumeBatch(a.next, out)
	}
	return nil
}

// Flush finalizes the buffered day and drains downstream.
func (a *ArtifactStage) Flush() error {
	if out := a.f.Close(); len(out) > 0 {
		if err := consumeBatch(a.next, out); err != nil {
			return err
		}
	}
	return a.next.Flush()
}
