package pipeline

import (
	"time"

	"v6scan/internal/firewall"
)

// tapStage invokes a hook on every record before passing it downstream
// — the hook analysis collectors attach with. The batch path forwards
// each run untouched, preserving batch continuity.
type tapStage struct {
	fn   func(r firewall.Record)
	next RecordSink
}

// Tap invokes fn on every record before passing it downstream.
func Tap(fn func(r firewall.Record), next RecordSink) RecordSink {
	return &tapStage{fn: fn, next: next}
}

// Consume implements RecordSink.
func (s *tapStage) Consume(r firewall.Record) error {
	s.fn(r)
	return s.next.Consume(r)
}

// ConsumeBatch implements BatchSink.
func (s *tapStage) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		s.fn(recs[i])
	}
	return consumeBatch(s.next, recs)
}

// Flush implements RecordSink.
func (s *tapStage) Flush() error { return s.next.Flush() }

// filterStage passes only records satisfying pred downstream. The
// batch path compacts each run in place — survivors slide to the front
// of the slice and flow on as one contiguous batch (the batch contract
// permits consumers to mutate the slice within the call).
type filterStage struct {
	pred func(r firewall.Record) bool
	next RecordSink
}

// Filter passes only records satisfying pred downstream.
func Filter(pred func(r firewall.Record) bool, next RecordSink) RecordSink {
	return &filterStage{pred: pred, next: next}
}

// Consume implements RecordSink.
func (s *filterStage) Consume(r firewall.Record) error {
	if !s.pred(r) {
		return nil
	}
	return s.next.Consume(r)
}

// ConsumeBatch implements BatchSink with in-place compaction.
func (s *filterStage) ConsumeBatch(recs []firewall.Record) error {
	kept := recs[:0]
	for _, r := range recs {
		if s.pred(r) {
			kept = append(kept, r)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return consumeBatch(s.next, kept)
}

// Flush implements RecordSink.
func (s *filterStage) Flush() error { return s.next.Flush() }

// Policy applies a firewall collection policy (the CDN's no-TCP/80,
// no-TCP/443, no-ICMPv6 rule) as a filter stage.
func Policy(p firewall.CollectPolicy, next RecordSink) RecordSink {
	return Filter(p.Admit, next)
}

// teeStage duplicates the stream into every sink.
type teeStage struct {
	sinks   []RecordSink
	scratch []firewall.Record
}

// Tee duplicates the stream into every sink. Consume fans out in
// argument order and stops at the first error; Flush always reaches
// every sink — so each releases its resources — and returns the first
// error encountered. (The builder's Tee is the pass-through variant:
// side branches plus the continuing main chain.)
func Tee(sinks ...RecordSink) RecordSink {
	return &teeStage{sinks: sinks}
}

// Consume implements RecordSink.
func (s *teeStage) Consume(r firewall.Record) error {
	for _, sk := range s.sinks {
		if err := sk.Consume(r); err != nil {
			return err
		}
	}
	return nil
}

// ConsumeBatch implements BatchSink, fanning each run out in argument
// order. Downstream batch consumers may compact the slice in place, so
// every batch-capable branch but the last receives a fresh copy from a
// reused scratch buffer; the last branch gets the original, and
// record-only branches are fed per record (they only ever see value
// copies, so no slice copy is needed).
func (s *teeStage) ConsumeBatch(recs []firewall.Record) error {
	for i, sk := range s.sinks {
		bs, batch := sk.(BatchSink)
		if !batch {
			for _, r := range recs {
				if err := sk.Consume(r); err != nil {
					return err
				}
			}
			continue
		}
		run := recs
		if i < len(s.sinks)-1 {
			s.scratch = append(s.scratch[:0], recs...)
			run = s.scratch
		}
		if err := bs.ConsumeBatch(run); err != nil {
			return err
		}
	}
	return nil
}

// Flush implements RecordSink.
func (s *teeStage) Flush() error {
	var first error
	for _, sk := range s.sinks {
		if err := sk.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Counter counts records passing through, for the pipeline statistics
// every consumer reports (records generated / logged / detected).
type Counter struct {
	n    uint64
	next RecordSink
}

// NewCounter returns a counting pass-through stage.
func NewCounter(next RecordSink) *Counter { return &Counter{next: next} }

// Consume implements RecordSink.
func (c *Counter) Consume(r firewall.Record) error {
	c.n++
	return c.next.Consume(r)
}

// ConsumeBatch implements BatchSink so counters do not break a
// downstream batch path.
func (c *Counter) ConsumeBatch(recs []firewall.Record) error {
	c.n += uint64(len(recs))
	return consumeBatch(c.next, recs)
}

// Flush implements RecordSink.
func (c *Counter) Flush() error { return c.next.Flush() }

// Count returns the number of records seen so far.
func (c *Counter) Count() uint64 { return c.n }

// DaySort buffers records per UTC day and forwards each completed day
// stably sorted by timestamp — the ordering contract the detectors and
// the artifact filter require from per-actor-ordered simulator output.
// Input days must arrive in order (records of day N all precede day
// N+1); within a day any order is accepted.
//
// Sorting is run-aware (see SortByTime): maximal sorted runs are
// detected while buffering, so an already-ordered day — the common
// case for LogSource and PcapSource input — drains with zero sort
// work, and a mostly-ordered day pays only bounded-window merges of
// its few disordered runs instead of a whole-day sort.
type DaySort struct {
	next RecordSink
	day  time.Time
	buf  []firewall.Record
	// runs holds the start index of every non-first sorted run in buf
	// (empty while the day is in order); bounds and scratch are reused
	// merge workspace.
	runs    []int
	bounds  []int
	scratch []firewall.Record
}

// NewDaySort returns a day-sorting stage.
func NewDaySort(next RecordSink) *DaySort { return &DaySort{next: next} }

// Consume implements RecordSink.
func (d *DaySort) Consume(r firewall.Record) error {
	day := r.Time.UTC().Truncate(24 * time.Hour)
	if !d.day.IsZero() && day.After(d.day) {
		if err := d.emit(); err != nil {
			return err
		}
	}
	d.day = day
	d.buffer(r)
	return nil
}

// ConsumeBatch implements BatchSink: runs between day boundaries are
// buffered, and each completed day drains downstream exactly where the
// record path would drain it.
func (d *DaySort) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		day := recs[i].Time.UTC().Truncate(24 * time.Hour)
		if !d.day.IsZero() && day.After(d.day) {
			if err := d.emit(); err != nil {
				return err
			}
		}
		d.day = day
		d.buffer(recs[i])
	}
	return nil
}

// buffer appends one record to the day buffer, recording a new run
// start when it breaks the current non-decreasing run.
func (d *DaySort) buffer(r firewall.Record) {
	if n := len(d.buf); n > 0 && r.Time.Before(d.buf[n-1].Time) {
		d.runs = append(d.runs, n)
	}
	d.buf = append(d.buf, r)
}

// Flush drains the buffered day downstream.
func (d *DaySort) Flush() error {
	if err := d.emit(); err != nil {
		return err
	}
	return d.next.Flush()
}

func (d *DaySort) emit() error {
	if len(d.buf) == 0 {
		return nil
	}
	if len(d.runs) > 0 {
		d.bounds = append(append(d.bounds[:0], 0), d.runs...)
		d.bounds = append(d.bounds, len(d.buf))
		mergeBounds(d.buf, d.bounds, &d.scratch)
		d.runs = d.runs[:0]
	}
	err := consumeBatch(d.next, d.buf)
	d.buf = d.buf[:0]
	return err
}

// ArtifactStage runs the 5-duplicate artifact pre-filter as a pipeline
// stage. The caller keeps the filter to read its Stats after the run.
type ArtifactStage struct {
	f    *firewall.ArtifactFilter
	next RecordSink
}

// NewArtifactStage wraps an artifact filter around next.
func NewArtifactStage(f *firewall.ArtifactFilter, next RecordSink) *ArtifactStage {
	return &ArtifactStage{f: f, next: next}
}

// Consume implements RecordSink; completed days' survivors flow
// downstream as batches.
func (a *ArtifactStage) Consume(r firewall.Record) error {
	if out := a.f.Push(r); len(out) > 0 {
		return consumeBatch(a.next, out)
	}
	return nil
}

// ConsumeBatch implements BatchSink. The filter buffers per day
// internally, so the batch path's contribution is on the output side:
// each completed day's survivors (a fresh slice the filter hands over)
// flow downstream as one batch, keeping the chain batch-to-batch.
func (a *ArtifactStage) ConsumeBatch(recs []firewall.Record) error {
	for i := range recs {
		if out := a.f.Push(recs[i]); len(out) > 0 {
			if err := consumeBatch(a.next, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush finalizes the buffered day and drains downstream.
func (a *ArtifactStage) Flush() error {
	if out := a.f.Close(); len(out) > 0 {
		if err := consumeBatch(a.next, out); err != nil {
			return err
		}
	}
	return a.next.Flush()
}
