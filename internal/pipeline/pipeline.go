// Package pipeline is the composable streaming architecture that every
// record consumer in this repository plugs into: a Source produces a
// time-ordered stream of firewall records, zero or more stages
// (collect-policy filter, day sorter, 5-duplicate artifact filter,
// taps, tees) transform or observe it, and a terminal sink — the
// multi-aggregation Detector (plain or sharded), the MAWI detector,
// the dynamic-aggregation IDS engine, or an analysis collector —
// consumes it. Everything downstream of a Source implements the one
// RecordSink interface, so ingestion (binary firewall logs, pcap
// captures, the CDN and MAWI simulators) composes freely with
// processing and terminal consumers.
//
// Pipelines are assembled left to right with the fluent Builder — the
// order stages are named is the order records traverse them:
//
//	det, err := pipeline.From(pipeline.NewLogSource(f)).
//		Policy(firewall.DefaultCollectPolicy()).
//		Artifact().
//		Detect(ctx, core.DefaultConfig(), 8)
//
// Every built-in stage is batch-native: when the source can emit
// chunked runs (BatchSource) and the terminal sink consumes them
// (BatchSink), records flow batch-to-batch through the whole chain —
// filter stages compact each run in place — and Pipeline.Batched
// reports that the fast path engaged. Stages pass records downstream
// synchronously; parallelism lives in the sharded sinks, which
// partition batches across worker shards. Flush propagates
// end-of-stream down the chain so buffered stages drain and detectors
// finalize exactly once; Close (on terminal sinks) releases resources
// and is owned by the builder's RunInto.
//
// # Batch ownership
//
// One rule governs every batch slice in the system, whichever hop it
// is on (source → stage, stage → stage, dispatcher → worker shard):
//
//   - A batch is valid only for the duration of the call that
//     delivers it (ConsumeBatch, EmitBatch's emit, dispatch.Worker).
//     The producer owns the backing array and WILL refill it: sources
//     reuse one pooled chunk buffer for every chunk including the
//     final short one, and the sharded sinks' dispatcher recycles its
//     per-shard buffers through the same arena (dispatch.GetBatch /
//     PutBatch) the moment the worker returns.
//   - Within the call, the consumer may mutate the slice in place —
//     filter stages compact survivors to the front; Tee therefore
//     hands copies to every batch branch but its last.
//   - Anything that retains records beyond the call must copy them
//     (the analysis collectors copy record values; the sharded
//     consumers partition into their own pooled buffers).
//
// TestBatchRetentionUnsafe codifies the rule from the consumer side:
// a sink that stores an emitted slice observes it change under later
// batches.
//
// Streaming sources obey the same rule from the producer side: Log and
// Pcap sources decode incrementally from their io.Reader into one
// pooled chunk buffer (dispatch.GetBatch) that every chunk — including
// the final short one — refills in place, so a whole capture or
// multi-day log flows through the chain holding only O(batch) decode
// state. Record values themselves are safe to copy out of a batch at
// any time (they contain no producer-owned pointers); only the slice
// is loaned.
//
// The concurrent sources keep the rule intact across goroutines:
//
//   - ParallelLogSource decodes each file chunk into its own pooled
//     batch on a worker goroutine, but ownership transfers with the
//     reassembly — the emitting goroutine (the EmitBatch caller's)
//     loans each batch downstream in file order and recycles it to the
//     arena only after emit returns, so consumers see the standard
//     single-threaded loan and no worker ever touches a batch that is
//     downstream. Unlike the serial sources it cycles through a window
//     of pooled buffers rather than refilling one, which changes
//     nothing for a contract-abiding consumer.
//   - MergeSource never forwards an input's batch at all: each input
//     source stays parked inside its own emit — holding its loan —
//     until the merger has drained the batch, and merged record values
//     are copied into the merger's own pooled output batches. The
//     batches a MergeSource emits are therefore fresh loans under the
//     standard rule, and downstream compaction cannot reach back into
//     any input source's buffer.
//
// # Streaming reorder and lateness
//
// WindowSort extends the ownership rule across buffering: it copies
// record values out of incoming batches into its own reorder buffer
// (never aliasing a producer's slice) and emits released prefixes of
// that buffer downstream under the standard loan — consumers may
// compact the emitted prefix in place; the retained tail is outside
// it. Its lateness contract is the streaming counterpart of DaySort's
// "days arrive in order" precondition: a record may trail the stream's
// high-water mark by at most the configured window. Records trailing
// further may already be unplaceable (their slot can have been
// released), so the stage fails fast with a diagnostic — identically
// on the record and batch paths — instead of silently corrupting
// downstream time order. Callers size the window to their source's
// worst-case disorder and get full-sort-equivalent output (see the
// WindowSort doc) in exchange for window-bounded memory. When the
// window cannot be sized in advance, EnableSpill (or the builder's
// WindowSortSpill) absorbs beyond-window disorder into sorted on-disk
// runs merged back at Flush — full-sort-equivalent for any disorder,
// at the price of temp-file I/O.
//
// # Checkpoint consistency
//
// The durable-state layer (Checkpointer, Builder.CheckpointEvery,
// Resume) extends the ownership and ordering rules to snapshots:
//
//   - Snapshots are cut only at cadence fire points. The cadence
//     machinery (due on the record path, splitByCadences on the batch
//     path) fires at the FIRST record at or past the boundary, before
//     that record is consumed, so a snapshot with mark t captures
//     exactly the records with Time < t — the same cut on both paths,
//     at any batch size.
//   - When an eviction cadence (Advance/Tick) is configured, the
//     checkpoint cadence rides it: snapshots are cut only at eviction
//     fire points, immediately after the advance/tick runs. A
//     checkpoint therefore always reflects the eviction horizon the
//     live run had applied, checkpointing never perturbs the (for the
//     IDS, semantic) eviction schedule, and a resumed run's cadence
//     marks — both restored to the snapshot mark — are exactly in
//     phase with the uninterrupted run's.
//   - Sharded sinks snapshot through a dispatcher barrier: the barrier
//     drains every in-flight batch and establishes a happens-before
//     edge from each worker to the snapshotting goroutine, so reading
//     shard state during the snapshot involves no data race and no
//     batch loan outlives its call.
//   - A snapshot owns nothing of the live sink: all state is encoded
//     by value into the checkpoint stream, and a restored sink is
//     built from fresh allocations — restore never aliases the bytes
//     of the snapshot buffer or any prior sink's state.
//   - Restored state is canonical (key-sorted sections, global across
//     shards), so restoring at a different shard count re-partitions
//     deterministically and Snapshot∘Restore∘Snapshot is
//     byte-identity.
//
// # State index
//
// The stateful sinks' working sets — the detector's per-level session
// tables, the IDS engine's per-level candidate tables, and each
// session's destination/source address sets — live in internal/u128idx
// rather than built-in maps: an open-addressed index specialized for
// pointer-free U128 keys whose u32 values are handles into paged
// per-level arenas that the detector and IDS own. Three rules keep
// that invisible at the pipeline layer:
//
//   - Ownership follows the sink. An index and its arena belong to
//     exactly one shard's detector/engine, mutated only by that
//     shard's worker goroutine; the dispatcher barrier that makes
//     shard state readable for snapshots covers them like any other
//     shard state. Nothing in a batch ever holds an index reference,
//     so the batch-loan rule above is unaffected.
//   - Iteration order is NOT deterministic, exactly like map order.
//     Every output seam (snapshot sections, sharded merges, Scans and
//     Drain orderings) sorts canonically — by key, or by the
//     deterministic alert/scan total orders — before bytes leave the
//     sink, so index layout, shard count, and probe history never
//     reach an output. u128idx.AppendKeysSorted is the
//     canonical-iteration helper those seams use.
//   - Small sets stay inline. Per-session address sets start as a
//     sorted array (u128idx.SmallSetSpill entries) and spill to an
//     index only beyond it; both representations serialize as the same
//     sorted logical set, so the cutoff is a pure time/space knob —
//     re-tune it freely without touching any format or golden output.
//
// Batches also feed the index efficiently: the detector's and IDS's
// ProcessBatch group adjacent same-source records so a burst costs one
// probe per aggregation level, and the dispatcher preserves that
// adjacency when partitioning (same-source runs stay contiguous within
// a shard's batch).
//
// # Serving
//
// TailSource is the follow-mode counterpart of LogSource: it polls a
// growing binary log, emits every whole record as soon as it is
// durable, holds a torn trailing write until its remaining bytes
// land, and ends — cleanly, after a final drain of everything durable
// — when its TailConfig.Context is cancelled. It is the ingestion
// edge of the serve daemon (internal/serve, cmd/v6scand), but plugs
// into any pipeline like a finite source.
//
// Ownership and rotation rules:
//
//   - A TailSource is single-use and single-goroutine like every
//     other source; only the pipeline's run goroutine may call
//     Emit/EmitBatch, and Stats is safe only from code inside that
//     pipeline or after the run ends. Emitted batches follow the
//     standard pooled-batch loan.
//   - The tailed file must grow by appends in non-decreasing record
//     time; the tail never re-reads bytes behind its offset.
//   - Rename-and-recreate rotation is detected by file identity: once
//     the path points at a new file, the old handle is drained one
//     last time and reading restarts at the new file's start. The
//     writer must stop appending to the old file BEFORE creating the
//     new one — records appended to a renamed file after the tail's
//     final drain of it are lost. In-place truncation (same inode,
//     size shrinks) restarts the offset at zero.
//
// The serving layer on top (internal/serve) adds the read-side
// contract: detection state is owned by the pipeline goroutine alone;
// HTTP handlers read immutable published snapshots. Its SSE alert
// stream applies backpressure by shedding, never by blocking — each
// client has a bounded buffer, a slow client's overflow drops alerts
// for that client only (counted per client and globally), and a
// bounded in-memory ring serves pagination and reconnect backlog.
//
// # Wire layer
//
// PublishSink and SubscribeSource split one logical pipeline across
// processes: N vantage-point collectors each terminate their local
// pipeline in a PublishSink (Builder.PublishInto), and one aggregator
// consumes every published topic with FromBus. Records travel as
// events.Envelope messages (a CRC-guarded, versioned frame of
// record-wire bodies) over an internal/bus broker — in-memory here,
// but the endpoints assume only the broker contract: per-topic FIFO
// delivery, bounded subscriber buffers, blocking backpressure.
//
// The topic scheme is the sharding invariant made routable. A
// publisher partitions its stream across its topics by the source
// address aggregated to the COARSEST configured detection level
// (dispatch.Partition at dispatch.CoarsestLevel), so every record of
// one coarsest-level prefix — and therefore all detector/IDS state
// that prefix can ever touch, at every level — flows through exactly
// one topic. Cross-topic order is then immaterial to detection output,
// which is what makes the distributed run byte-identical to the
// in-process one (TestBusDetectParity, TestBusIDSParity, and the
// -publish goldens pin this at shard counts 1, 2, and 8).
//
// Ordering and delivery guarantees, endpoint by endpoint:
//
//   - Within a topic: envelopes carry consecutive sequence numbers
//     from 0; SubscribeSource verifies the sequence is gapless
//     (ErrEnvelopeGap otherwise) and records within and across a
//     topic's envelopes arrive in publish order.
//   - Across topics: FromBus merges the per-topic streams in
//     timestamp order (MergeSource), ties breaking to the
//     earlier-listed topic. List lower-indexed publishers' topics
//     first and records tying on a chunk-boundary timestamp reproduce
//     concatenation order.
//   - End of stream: Flush (owned by RunInto) publishes each topic's
//     staged remainder, then exactly one EOS envelope per topic, all
//     idempotently; a subscriber ends cleanly at EOS.
//   - Batch ownership: both endpoints obey the pooled-batch rule —
//     the publisher copies records into per-topic staging buffers
//     during ConsumeBatch (and the bus copies the encoded envelope),
//     the subscriber decodes into its own pooled batch and loans it
//     downstream per the standard rule.
//
// Liveness is the one place the wire layer is weaker than an
// in-process chain. A merging subscriber refuses to advance past a
// silent topic (that is what makes the merge correct), while each
// subscription buffers at most its depth: a publisher routing a long
// run to one topic while another stays silent can fill the first
// topic's buffer and block. PublishSink bounds the skew — every
// non-empty stage is published at each ConsumeBatch, so a topic lags
// the stream by at most one batch — and bus.DefaultDepth (64
// envelopes) absorbs that comfortably for any publisher whose batches
// interleave topics. A deployment with pathologically skewed routing
// (one topic silent for more than depth× the batch size while another
// streams) must raise the subscription depth, add publishers, or
// reduce per-publisher topics.
package pipeline

import (
	"context"

	"v6scan/internal/firewall"
)

// RecordSink consumes a time-ordered record stream. Every stage and
// terminal consumer implements it.
type RecordSink interface {
	// Consume ingests one record.
	Consume(r firewall.Record) error
	// Flush signals end-of-stream: buffered stages drain downstream,
	// detectors close open sessions. A sink is not reusable after
	// Flush.
	Flush() error
}

// BatchSink is implemented by sinks with a fast batch path. All
// built-in stages and terminal sinks implement it, so a fully filtered
// pipeline stays batch-to-batch. ConsumeBatch receives a slice under
// the package doc's batch-ownership rule: valid only during the call,
// compactable in place, copy on retain.
type BatchSink interface {
	RecordSink
	ConsumeBatch(recs []firewall.Record) error
}

// Sink is the unified terminal-sink lifecycle. Flush finalizes
// results exactly once (further calls are no-ops), after which the
// sink's typed result accessor — DetectorSink.Result, MAWISink.Result,
// IDSSink.Result, … — is valid. Close releases held resources (worker
// goroutines, buffered writers); it is idempotent, implies Flush, and
// is safe after a mid-stream error. The builder's RunInto owns calling
// both.
type Sink interface {
	RecordSink
	Close() error
}

// Source produces records in non-decreasing time order, pushing each
// into emit. Emit's error aborts production and is returned unwrapped.
type Source interface {
	Emit(emit func(r firewall.Record) error) error
}

// BatchSource is implemented by sources that can emit chunked runs of
// records (the slice, log and pcap sources). Pipelines coupling one to
// a BatchSink chain stream batch-to-batch, skipping the per-record
// indirection entirely.
type BatchSource interface {
	Source
	// EmitBatch pushes runs of up to batchSize records into emit,
	// under the package doc's batch-ownership rule: the source owns
	// (and refills) the backing array, consumers may compact in
	// place, and sinks that retain records must copy (the sharded
	// consumers already partition into their own pooled buffers).
	EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error
}

// DefaultBatchSize is the chunk size Run uses on the batch path —
// large enough to amortize dispatch overhead, small enough to keep
// per-chunk buffers cache-friendly.
const DefaultBatchSize = 4096

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(emit func(r firewall.Record) error) error

// Emit implements Source.
func (f SourceFunc) Emit(emit func(r firewall.Record) error) error { return f(emit) }

// Pipeline couples a source to a sink chain.
type Pipeline struct {
	src     Source
	sink    RecordSink
	batched bool
}

// New returns a pipeline streaming src into sink. Prefer assembling
// chains with From(...).Build / RunInto — the builder also verifies
// batch continuity through every intermediate stage.
func New(src Source, sink RecordSink) *Pipeline {
	_, bok := src.(BatchSource)
	_, sok := sink.(BatchSink)
	return &Pipeline{src: src, sink: sink, batched: bok && sok}
}

// Batched reports whether Run streams in batches rather than record by
// record. For a pipeline from New it covers the first hop (BatchSource
// into a BatchSink chain head); for a builder-built pipeline it
// additionally asserts that every intermediate stage is batch-native,
// so true means batch-to-batch from EmitBatch to the terminal sink.
func (p *Pipeline) Batched() bool { return p.batched }

// Run is RunContext with a background context.
func (p *Pipeline) Run() error { return p.RunContext(context.Background()) }

// RunContext streams every record from the source through the sink
// chain, then flushes it. When the source can emit chunks and the
// first sink consumes them (BatchSource into BatchSink), records flow
// in batches of DefaultBatchSize; otherwise record by record. The
// first error — from the source, a stage, the terminal sink, or ctx
// being cancelled (checked per record or per batch) — aborts the run.
// The chain is flushed even on a mid-stream error so sinks holding
// resources (the sharded consumers' worker goroutines, buffered
// writers) release them; the original error wins over any flush error.
func (p *Pipeline) RunContext(ctx context.Context) error {
	err := p.stream(ctx)
	ferr := p.sink.Flush()
	if err != nil {
		return err
	}
	return ferr
}

func (p *Pipeline) stream(ctx context.Context) error {
	cancellable := ctx.Done() != nil
	if bsrc, ok := p.src.(BatchSource); ok {
		if bsink, ok := p.sink.(BatchSink); ok {
			emit := bsink.ConsumeBatch
			if cancellable {
				emit = func(recs []firewall.Record) error {
					if err := ctx.Err(); err != nil {
						return err
					}
					return bsink.ConsumeBatch(recs)
				}
			}
			return bsrc.EmitBatch(DefaultBatchSize, emit)
		}
	}
	emit := p.sink.Consume
	if cancellable {
		emit = func(r firewall.Record) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return p.sink.Consume(r)
		}
	}
	return p.src.Emit(emit)
}

// consumeBatch forwards a run of records to next, using the batch path
// when available.
func consumeBatch(next RecordSink, recs []firewall.Record) error {
	if bs, ok := next.(BatchSink); ok {
		return bs.ConsumeBatch(recs)
	}
	for _, r := range recs {
		if err := next.Consume(r); err != nil {
			return err
		}
	}
	return nil
}
