// Package pipeline is the composable streaming architecture that every
// record consumer in this repository plugs into: a Source produces a
// time-ordered stream of firewall records, zero or more stages
// (collect-policy filter, day sorter, 5-duplicate artifact filter,
// taps, tees) transform or observe it, and a terminal sink — the
// multi-aggregation Detector (plain or sharded), the MAWI detector,
// the dynamic-aggregation IDS engine, or an analysis collector —
// consumes it. Everything downstream of a Source implements the one
// RecordSink interface, so ingestion (binary firewall logs, pcap
// captures, the CDN and MAWI simulators) composes freely with
// processing and terminal consumers.
//
//	src := pipeline.NewLogSource(f)
//	det := core.NewShardedDetector(core.DefaultConfig(), 8)
//	p := pipeline.New(src,
//		pipeline.Policy(firewall.DefaultCollectPolicy(),
//			pipeline.NewArtifactStage(firewall.NewArtifactFilter(),
//				pipeline.NewShardedSink(det))))
//	if err := p.Run(); err != nil { ... }
//
// Stages pass records downstream synchronously; parallelism lives in
// the sharded detector sink, which partitions batches across worker
// shards. Flush propagates end-of-stream down the chain so buffered
// stages drain and detectors finalize exactly once.
package pipeline

import (
	"v6scan/internal/firewall"
)

// RecordSink consumes a time-ordered record stream. Every stage and
// terminal consumer implements it.
type RecordSink interface {
	// Consume ingests one record.
	Consume(r firewall.Record) error
	// Flush signals end-of-stream: buffered stages drain downstream,
	// detectors close open sessions. A sink is not reusable after
	// Flush.
	Flush() error
}

// BatchSink is implemented by sinks with a fast batch path (the
// sharded detector). Stages that buffer runs of records hand them to
// ConsumeBatch when the downstream supports it.
type BatchSink interface {
	RecordSink
	ConsumeBatch(recs []firewall.Record) error
}

// Source produces records in non-decreasing time order, pushing each
// into emit. Emit's error aborts production and is returned unwrapped.
type Source interface {
	Emit(emit func(r firewall.Record) error) error
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(emit func(r firewall.Record) error) error

// Emit implements Source.
func (f SourceFunc) Emit(emit func(r firewall.Record) error) error { return f(emit) }

// Pipeline couples a source to a sink chain.
type Pipeline struct {
	src  Source
	sink RecordSink
}

// New returns a pipeline streaming src into sink.
func New(src Source, sink RecordSink) *Pipeline {
	return &Pipeline{src: src, sink: sink}
}

// Run streams every record from the source through the sink chain,
// then flushes it. The first error — from the source, a stage, or the
// terminal sink — aborts the run. The chain is flushed even on a
// mid-stream error so sinks holding resources (the sharded detector's
// worker goroutines, buffered writers) release them; the original
// error wins over any flush error.
func (p *Pipeline) Run() error {
	err := p.src.Emit(p.sink.Consume)
	ferr := p.sink.Flush()
	if err != nil {
		return err
	}
	return ferr
}

// consumeBatch forwards a run of records to next, using the batch path
// when available.
func consumeBatch(next RecordSink, recs []firewall.Record) error {
	if bs, ok := next.(BatchSink); ok {
		return bs.ConsumeBatch(recs)
	}
	for _, r := range recs {
		if err := next.Consume(r); err != nil {
			return err
		}
	}
	return nil
}
