// Package pipeline is the composable streaming architecture that every
// record consumer in this repository plugs into: a Source produces a
// time-ordered stream of firewall records, zero or more stages
// (collect-policy filter, day sorter, 5-duplicate artifact filter,
// taps, tees) transform or observe it, and a terminal sink — the
// multi-aggregation Detector (plain or sharded), the MAWI detector,
// the dynamic-aggregation IDS engine, or an analysis collector —
// consumes it. Everything downstream of a Source implements the one
// RecordSink interface, so ingestion (binary firewall logs, pcap
// captures, the CDN and MAWI simulators) composes freely with
// processing and terminal consumers.
//
//	src := pipeline.NewLogSource(f)
//	det := core.NewShardedDetector(core.DefaultConfig(), 8)
//	p := pipeline.New(src,
//		pipeline.Policy(firewall.DefaultCollectPolicy(),
//			pipeline.NewArtifactStage(firewall.NewArtifactFilter(),
//				pipeline.NewShardedSink(det))))
//	if err := p.Run(); err != nil { ... }
//
// Stages pass records downstream synchronously; parallelism lives in
// the sharded detector sink, which partitions batches across worker
// shards. Flush propagates end-of-stream down the chain so buffered
// stages drain and detectors finalize exactly once.
package pipeline

import (
	"v6scan/internal/firewall"
)

// RecordSink consumes a time-ordered record stream. Every stage and
// terminal consumer implements it.
type RecordSink interface {
	// Consume ingests one record.
	Consume(r firewall.Record) error
	// Flush signals end-of-stream: buffered stages drain downstream,
	// detectors close open sessions. A sink is not reusable after
	// Flush.
	Flush() error
}

// BatchSink is implemented by sinks with a fast batch path (the
// sharded detector). Stages that buffer runs of records hand them to
// ConsumeBatch when the downstream supports it.
type BatchSink interface {
	RecordSink
	ConsumeBatch(recs []firewall.Record) error
}

// Source produces records in non-decreasing time order, pushing each
// into emit. Emit's error aborts production and is returned unwrapped.
type Source interface {
	Emit(emit func(r firewall.Record) error) error
}

// BatchSource is implemented by sources that can emit chunked runs of
// records (the slice, log and pcap sources). Pipelines whose terminal
// sink is a BatchSink stream batch-to-batch, skipping the per-record
// indirection entirely — the path the sharded detector and sharded IDS
// engine are fed through.
type BatchSource interface {
	Source
	// EmitBatch pushes runs of up to batchSize records into emit. The
	// slice is only valid for the duration of the call: sources reuse
	// the backing array, so sinks that retain records must copy (the
	// sharded consumers already partition into fresh slices).
	EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error
}

// DefaultBatchSize is the chunk size Run uses on the batch path —
// large enough to amortize dispatch overhead, small enough to keep
// per-chunk buffers cache-friendly.
const DefaultBatchSize = 4096

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(emit func(r firewall.Record) error) error

// Emit implements Source.
func (f SourceFunc) Emit(emit func(r firewall.Record) error) error { return f(emit) }

// Pipeline couples a source to a sink chain.
type Pipeline struct {
	src  Source
	sink RecordSink
}

// New returns a pipeline streaming src into sink.
func New(src Source, sink RecordSink) *Pipeline {
	return &Pipeline{src: src, sink: sink}
}

// Run streams every record from the source through the sink chain,
// then flushes it. When the source can emit chunks and the first sink
// consumes them (BatchSource into BatchSink), records flow in batches
// of DefaultBatchSize; otherwise record by record. The first error —
// from the source, a stage, or the terminal sink — aborts the run. The
// chain is flushed even on a mid-stream error so sinks holding
// resources (the sharded consumers' worker goroutines, buffered
// writers) release them; the original error wins over any flush error.
func (p *Pipeline) Run() error {
	var err error
	bsrc, bok := p.src.(BatchSource)
	bsink, sok := p.sink.(BatchSink)
	if bok && sok {
		err = bsrc.EmitBatch(DefaultBatchSize, bsink.ConsumeBatch)
	} else {
		err = p.src.Emit(p.sink.Consume)
	}
	ferr := p.sink.Flush()
	if err != nil {
		return err
	}
	return ferr
}

// consumeBatch forwards a run of records to next, using the batch path
// when available.
func consumeBatch(next RecordSink, recs []firewall.Record) error {
	if bs, ok := next.(BatchSink); ok {
		return bs.ConsumeBatch(recs)
	}
	for _, r := range recs {
		if err := next.Consume(r); err != nil {
			return err
		}
	}
	return nil
}
