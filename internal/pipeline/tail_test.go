package pipeline

import (
	"bufio"
	"context"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"v6scan/internal/firewall"
)

// tailTestPoll keeps the tail loops tight so tests finish fast.
const tailTestPoll = 2 * time.Millisecond

// tailRecords builds n ordered records starting at second `from`.
func tailRecords(from, n int) []firewall.Record {
	base := time.Date(2021, 5, 20, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, firewall.Record{
			Time: base.Add(time.Duration(from+i) * time.Second),
			Src:  netip.MustParseAddr(fmt.Sprintf("2001:db8::%x", (from+i)%512+1)),
			Dst:  netip.MustParseAddr("2001:db8:ffff::1"),
		})
	}
	return recs
}

// appendRecords appends encoded records to path (creating it).
func appendRecords(t *testing.T, path string, recs []firewall.Record) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	w := firewall.NewWriter(bw)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendBytes appends raw bytes (for partial-record scenarios).
func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// collectTail runs a TailSource until cancel, collecting every record
// into out under mu.
type tailRun struct {
	cancel context.CancelFunc
	mu     sync.Mutex
	got    []firewall.Record
	done   chan error
	src    *TailSource
}

func startTail(path string) *tailRun {
	ctx, cancel := context.WithCancel(context.Background())
	tr := &tailRun{cancel: cancel, done: make(chan error, 1)}
	tr.src = NewTailSource(path, TailConfig{Poll: tailTestPoll, Context: ctx})
	go func() {
		tr.done <- tr.src.EmitBatch(256, func(recs []firewall.Record) error {
			tr.mu.Lock()
			tr.got = append(tr.got, recs...)
			tr.mu.Unlock()
			return nil
		})
	}()
	return tr
}

func (tr *tailRun) count() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.got)
}

// waitCount polls until the tail has delivered n records.
func (tr *tailRun) waitCount(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d records, have %d", n, tr.count())
		}
		time.Sleep(time.Millisecond)
	}
}

// stop cancels and returns the collected records after a clean exit.
func (tr *tailRun) stop(t *testing.T) []firewall.Record {
	t.Helper()
	tr.cancel()
	if err := <-tr.done; err != nil {
		t.Fatalf("tail returned %v, want nil", err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.got
}

// TestTailGrowth: records appended across several writes all arrive,
// in order, and match what LogSource reads from the final file.
func TestTailGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fw.log")
	tr := startTail(path) // file does not exist yet: tail must wait
	appendRecords(t, path, tailRecords(0, 1000))
	tr.waitCount(t, 1000)
	appendRecords(t, path, tailRecords(1000, 500))
	appendRecords(t, path, tailRecords(1500, 500))
	tr.waitCount(t, 2000)
	got := tr.stop(t)

	var want []firewall.Record
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := NewLogSource(f).Emit(func(r firewall.Record) error {
		want = append(want, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("tail delivered %d records, LogSource %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d differs: tail %+v, log %+v", i, got[i], want[i])
		}
	}
	if st := tr.src.Stats(); st.Rotations != 0 || st.Truncations != 0 {
		t.Fatalf("unexpected rotations/truncations: %+v", st)
	}
}

// TestTailPartialRecord: a half-written trailing record is held until
// its remaining bytes land — never delivered, never an error.
func TestTailPartialRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fw.log")
	recs := tailRecords(0, 3)
	var enc []byte
	for _, r := range recs {
		enc = r.AppendBinary(enc)
	}
	tr := startTail(path)
	split := 2*firewall.RecordWireSize + 11 // two whole records + a torn third
	appendBytes(t, path, enc[:split])
	tr.waitCount(t, 2)
	// Give the poller time to misbehave on the torn tail, then heal it.
	time.Sleep(10 * tailTestPoll)
	if n := tr.count(); n != 2 {
		t.Fatalf("delivered %d records with a torn tail, want 2", n)
	}
	appendBytes(t, path, enc[split:])
	tr.waitCount(t, 3)
	got := tr.stop(t)
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d differs after torn write", i)
		}
	}
}

// TestTailRotation: rename-and-recreate rotation switches the tail to
// the new file without losing either side's records.
func TestTailRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fw.log")
	tr := startTail(path)
	appendRecords(t, path, tailRecords(0, 800))
	tr.waitCount(t, 800) // old file fully drained before rotating
	if err := os.Rename(path, filepath.Join(dir, "fw.log.1")); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, path, tailRecords(800, 600))
	tr.waitCount(t, 1400)
	got := tr.stop(t)
	want := tailRecords(0, 1400)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs across rotation", i)
		}
	}
	if st := tr.src.Stats(); st.Rotations != 1 {
		t.Fatalf("Rotations = %d, want 1", st.Rotations)
	}
}

// TestTailTruncation: an in-place truncate (same inode, size shrinks)
// restarts the offset at zero.
func TestTailTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fw.log")
	tr := startTail(path)
	appendRecords(t, path, tailRecords(0, 500))
	tr.waitCount(t, 500)
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	appendRecords(t, path, tailRecords(500, 300))
	tr.waitCount(t, 800)
	tr.stop(t)
	if st := tr.src.Stats(); st.Truncations != 1 {
		t.Fatalf("Truncations = %d, want 1", st.Truncations)
	}
}

// TestTailCancelDrains: records appended immediately before
// cancellation are still delivered — the final sweep guarantee the
// daemon's graceful shutdown relies on.
func TestTailCancelDrains(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fw.log")
	appendRecords(t, path, tailRecords(0, 100))
	ctx, cancel := context.WithCancel(context.Background())
	src := NewTailSource(path, TailConfig{Poll: time.Hour, Context: ctx})
	var got int
	done := make(chan error, 1)
	go func() {
		first := true
		done <- src.EmitBatch(64, func(recs []firewall.Record) error {
			got += len(recs)
			if first {
				first = false
				// While the tail is mid-run: more records, then cancel.
				// The hour-long poll means only the final sweep can
				// deliver them.
				appendRecords(t, path, tailRecords(100, 50))
				cancel()
			}
			return nil
		})
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got != 150 {
		t.Fatalf("delivered %d records, want 150 (cancel must drain)", got)
	}
}

// TestTailIntoPipeline: a tail feeds the builder/sink machinery like
// any other source — the end-to-end composition the daemon uses.
func TestTailIntoPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fw.log")
	appendRecords(t, path, tailRecords(0, 2000))
	ctx, cancel := context.WithCancel(context.Background())
	src := NewTailSource(path, TailConfig{Poll: tailTestPoll, Context: ctx})
	sink := &atomicCountSink{}
	done := make(chan error, 1)
	go func() {
		done <- From(src).RunInto(context.Background(), sink)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for sink.n.Load() < 2000 {
		if time.Now().After(deadline) {
			t.Fatalf("timeout: pipeline saw %d records", sink.n.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := sink.n.Load(); got != 2000 {
		t.Fatalf("pipeline consumed %d records, want 2000", got)
	}
}

// atomicCountSink counts records with cross-goroutine-safe reads
// (batch-native so the tail's batch path is exercised end to end).
type atomicCountSink struct{ n atomic.Int64 }

func (s *atomicCountSink) Consume(firewall.Record) error { s.n.Add(1); return nil }
func (s *atomicCountSink) ConsumeBatch(recs []firewall.Record) error {
	s.n.Add(int64(len(recs)))
	return nil
}
func (s *atomicCountSink) Flush() error { return nil }

// encodeTailRecords renders records to their on-disk bytes for the
// rotation-race hooks, which run on the tail goroutine and therefore
// cannot use the *testing.T helpers (Fatal must stay on the test
// goroutine). Failures panic — loud enough for a test.
func encodeTailRecords(recs []firewall.Record) []byte {
	var b []byte
	for _, r := range recs {
		b = r.AppendBinary(b)
	}
	return b
}

func mustAppendFile(path string, b []byte) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		panic(err)
	}
	if _, err := f.Write(b); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
}

// TestTailRotationRaces forces, deterministically, the two windows a
// concurrent logrotate can slip through:
//
//  1. The writer appends to the old generation after the tail's last
//     drain of it, then renames it — those appends are only visible to
//     the already-open handle, so checkRotate must drain it once more
//     before closing (the old code closed immediately and lost them).
//  2. A second rotation lands right after the reopen, making the fresh
//     handle itself an old generation — checkRotate must re-stat and
//     loop until handle and path agree.
//
// The tail must deliver every record of all three generations, in
// order.
func TestTailRotationRaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fw.log")

	genA := tailRecords(0, 300)
	lateA := tailRecords(300, 100) // appended to A inside window 1
	genB := tailRecords(400, 200)
	genC := tailRecords(600, 150)

	appendRecords(t, path, genA)

	const drainedA = int64(300 * firewall.RecordWireSize)
	var raced, reraced bool
	tailRaceHook = func() {
		// Fires between a drain pass and the rotation check. Act exactly
		// once, after the initial generation is fully consumed: append
		// the old generation's tail, rotate it away, and start B.
		if raced {
			return
		}
		if st, err := os.Stat(path); err != nil || st.Size() != drainedA {
			return
		}
		raced = true
		mustAppendFile(path, encodeTailRecords(lateA))
		if err := os.Rename(path, filepath.Join(dir, "fw.log.1")); err != nil {
			panic(err)
		}
		mustAppendFile(path, encodeTailRecords(genB))
	}
	tailReopenHook = func() {
		// Fires between a rotation reopen and its re-stat: the first
		// firing rotates again, so the handle just opened (B) is already
		// stale.
		if reraced {
			return
		}
		reraced = true
		if err := os.Rename(path, filepath.Join(dir, "fw.log.2")); err != nil {
			panic(err)
		}
		mustAppendFile(path, encodeTailRecords(genC))
	}
	defer func() { tailRaceHook, tailReopenHook = nil, nil }()

	tr := startTail(path)
	tr.waitCount(t, 750)
	got := tr.stop(t)

	want := tailRecords(0, 750)
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs across the forced rotations", i)
		}
	}
	if st := tr.src.Stats(); st.Rotations != 2 {
		t.Fatalf("Rotations = %d, want 2", st.Rotations)
	}
	if !raced || !reraced {
		t.Fatal("race hooks never fired")
	}
}
