package pipeline

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// mixedStream synthesizes days of interleaved traffic exercising every
// standard stage: a scanner (detected), artifact duplicates (dropped
// by the 5-duplicate filter), policy-excluded records (TCP/443,
// ICMPv6), and out-of-order timestamps within each day (fixed by
// DaySort).
func mixedStream(days, perDay int) []firewall.Record {
	rng := rand.New(rand.NewSource(17))
	scanner := netaddr6.MustAddr("2001:db8:bad::1")
	artifact := netaddr6.MustAddr("2001:db8:aaaa::1")
	client := netaddr6.MustAddr("2001:db8:c11e::1")
	dsts := netaddr6.MustPrefix("2001:db8:f::/48")
	artDst := netaddr6.MustAddr("2001:db8:f::99")
	day0 := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	var recs []firewall.Record
	for d := 0; d < days; d++ {
		day := day0.Add(time.Duration(d) * 24 * time.Hour)
		for i := 0; i < perDay; i++ {
			// Jittered (not monotonic) intra-day timestamps.
			ts := day.Add(time.Duration(rng.Intn(20*3600)) * time.Second)
			switch i % 4 {
			case 0: // scanner probe
				recs = append(recs, firewall.Record{
					Time: ts, Src: scanner, Dst: netaddr6.RandomAddrIn(dsts, rng),
					Proto: layers.ProtoTCP, SrcPort: 40000, DstPort: 22, Length: 60,
				})
			case 1: // artifact duplicate (same dst, same service, all day)
				recs = append(recs, firewall.Record{
					Time: ts, Src: artifact, Dst: artDst,
					Proto: layers.ProtoTCP, DstPort: 25, Length: 80,
				})
			case 2: // excluded by the CDN collection policy
				recs = append(recs, firewall.Record{
					Time: ts, Src: client, Dst: netaddr6.RandomAddrIn(dsts, rng),
					Proto: layers.ProtoTCP, DstPort: 443, Length: 60,
				})
			case 3: // ICMPv6, also excluded
				recs = append(recs, firewall.Record{
					Time: ts, Src: client, Dst: netaddr6.RandomAddrIn(dsts, rng),
					Proto: layers.ProtoICMPv6, Length: 48,
				})
			}
		}
	}
	// Days must arrive in order; within a day any order is accepted.
	return recs
}

// recordOnlySink deliberately does not implement BatchSink, to force
// and to detect the per-record path.
type recordOnlySink struct {
	recs    []firewall.Record
	flushes int
}

func (s *recordOnlySink) Consume(r firewall.Record) error { s.recs = append(s.recs, r); return nil }
func (s *recordOnlySink) Flush() error                    { s.flushes++; return nil }

// TestBuilderMatchesNestedChain runs the full paper chain (policy →
// day sort → artifact filter → detector) both ways — nested
// constructors fed record by record, and the batch-native builder
// pipeline — and requires identical scans and filter statistics.
func TestBuilderMatchesNestedChain(t *testing.T) {
	recs := mixedStream(3, 2000)
	pol := firewall.DefaultCollectPolicy()

	refFilter := firewall.NewArtifactFilter()
	refDet := core.NewDetector(core.DefaultConfig())
	refHead := Policy(pol, NewDaySort(NewArtifactStage(refFilter, NewDetectorSink(refDet))))
	for _, r := range recs {
		if err := refHead.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := refHead.Flush(); err != nil {
		t.Fatal(err)
	}

	filter := firewall.NewArtifactFilter()
	var counted *Counter
	b := From(SliceSource(recs)).Policy(pol).DaySort().Artifact(filter).Counter(&counted)
	det, err := b.Detect(context.Background(), core.DefaultConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}

	for _, lvl := range []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48} {
		want, got := refDet.Scans(lvl), det.Scans(lvl)
		if len(want) != len(got) {
			t.Fatalf("%v: %d scans vs %d", lvl, len(got), len(want))
		}
		for i := range want {
			if want[i].Source != got[i].Source || want[i].Packets != got[i].Packets || want[i].Dsts != got[i].Dsts {
				t.Fatalf("%v scan %d differs: %+v vs %+v", lvl, i, got[i], want[i])
			}
		}
	}
	if !reflect.DeepEqual(refFilter.Stats(), filter.Stats()) {
		t.Fatalf("filter stats differ:\n%+v\n%+v", filter.Stats(), refFilter.Stats())
	}
	if counted.Count() == 0 || counted.Count() >= uint64(len(recs)) {
		t.Fatalf("post-filter count %d implausible for %d input records", counted.Count(), len(recs))
	}
}

// TestBuilderBatchContinuity verifies the Batched assertion: true only
// when the source batches, every stage is batch-native, and the
// terminal consumes batches.
func TestBuilderBatchContinuity(t *testing.T) {
	recs := scanStream(10)
	full := From(SliceSource(recs)).
		Policy(firewall.DefaultCollectPolicy()).
		DaySort().
		Artifact().
		Build(NewShardedSink(core.NewShardedDetector(core.DefaultConfig(), 2)))
	if !full.Batched() {
		t.Fatal("fully filtered builder pipeline should be batched end to end")
	}
	if err := full.Run(); err != nil {
		t.Fatal(err)
	}

	if p := From(SliceSource(recs)).Build(&recordOnlySink{}); p.Batched() {
		t.Fatal("record-only terminal cannot be batched")
	}
	src := SourceFunc(SliceSource(recs).Emit)
	if p := From(src).Policy(firewall.DefaultCollectPolicy()).Build(Discard); p.Batched() {
		t.Fatal("non-batching source cannot be batched")
	}
	if p := New(SliceSource(recs), Discard); !p.Batched() {
		t.Fatal("New with batch source and batch sink should report batched")
	}
}

// TestBuilderTeeBranchesSeePreCompactionStream verifies batch-path
// mutation safety: a Tee branch must observe the full stream even when
// the continuing main chain compacts batches in place.
func TestBuilderTeeBranchesSeePreCompactionStream(t *testing.T) {
	recs := scanStream(1000)
	for i := range recs {
		if i%2 == 1 {
			recs[i].DstPort = 443 // dropped by the policy stage downstream
		}
	}
	var branch, main *Counter
	b := From(SliceSource(recs)).
		Tee(Chain().Counter(&branch).Into(Discard)).
		Policy(firewall.DefaultCollectPolicy()).
		Counter(&main)
	p := b.Build(Discard)
	if !p.Batched() {
		t.Fatal("tee chain should stay batched")
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if branch.Count() != uint64(len(recs)) {
		t.Fatalf("branch saw %d of %d records", branch.Count(), len(recs))
	}
	if main.Count() != uint64(len(recs)/2) {
		t.Fatalf("main chain saw %d records, want %d", main.Count(), len(recs)/2)
	}
	// The caller's slice must not have been mutated by the compacting
	// policy stage (SliceSource hands out copies).
	for i := range recs {
		if i%2 == 1 && recs[i].DstPort != 443 {
			t.Fatalf("input slice mutated at %d", i)
		}
	}
}

// closeTrackingSink records lifecycle calls, for branch-teardown
// checks.
type closeTrackingSink struct {
	recs    int
	flushes int
	closes  int
}

func (s *closeTrackingSink) Consume(firewall.Record) error { s.recs++; return nil }
func (s *closeTrackingSink) Flush() error                  { s.flushes++; return nil }
func (s *closeTrackingSink) Close() error                  { s.closes++; return nil }

// TestRunIntoClosesTeeBranches verifies the unified lifecycle reaches
// Tee side sinks: RunInto must close branch sinks implementing Sink,
// not just the terminal.
func TestRunIntoClosesTeeBranches(t *testing.T) {
	recs := scanStream(100)
	branch := &closeTrackingSink{}
	term := &closeTrackingSink{}
	if err := From(SliceSource(recs)).Tee(branch).RunInto(context.Background(), term); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*closeTrackingSink{"branch": branch, "terminal": term} {
		if s.recs != len(recs) || s.flushes != 1 || s.closes != 1 {
			t.Fatalf("%s: recs=%d flushes=%d closes=%d, want %d/1/1", name, s.recs, s.flushes, s.closes, len(recs))
		}
	}
}

// TestBuilderSingleUse verifies a second terminal call panics instead
// of silently sharing stage state (Artifact filters, Counter
// out-pointers) between runs.
func TestBuilderSingleUse(t *testing.T) {
	b := From(SliceSource(scanStream(10))).Artifact()
	if err := b.RunInto(context.Background(), Discard); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("reusing a spent builder should panic")
		}
	}()
	b.Build(Discard)
}

// TestTeeRecordOnlyBranchOnBatchPath checks a non-batch branch sink
// still sees every record when the tee runs on the batch path.
func TestTeeRecordOnlyBranchOnBatchPath(t *testing.T) {
	recs := scanStream(1000)
	branch := &recordOnlySink{}
	var main *Counter
	b := From(SliceSource(recs)).Tee(branch).Counter(&main)
	p := b.Build(Discard)
	if !p.Batched() {
		t.Fatal("main chain should stay batched around a record-only branch")
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(branch.recs) != len(recs) || main.Count() != uint64(len(recs)) {
		t.Fatalf("branch saw %d, main %d, want %d", len(branch.recs), main.Count(), len(recs))
	}
}

// TestBuilderTerminalHelpers checks that Detect/IDS/MAWI produce the
// same results as hand-run engines, serial and sharded.
func TestBuilderTerminalHelpers(t *testing.T) {
	recs := scanStream(400)

	serial, err := From(SliceSource(recs)).Detect(context.Background(), core.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := From(SliceSource(recs)).Detect(context.Background(), core.DefaultConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ss, sh := serial.Scans(netaddr6.Agg64), sharded.Scans(netaddr6.Agg64)
	if len(ss) != 1 || len(sh) != 1 || ss[0].Dsts != sh[0].Dsts {
		t.Fatalf("detect results differ: %+v vs %+v", ss, sh)
	}

	ref := ids.New(ids.DefaultConfig())
	for _, r := range recs {
		ref.Process(r)
	}
	want := ref.Flush()
	for _, shards := range []int{1, 3} {
		alerts, err := From(SliceSource(recs)).IDS(context.Background(), ids.DefaultConfig(), shards)
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) != len(want) || len(want) == 0 {
			t.Fatalf("IDS(%d): %v, want %v", shards, alerts, want)
		}
		if alerts[0] != want[0] {
			t.Fatalf("IDS(%d) alert differs: %+v vs %+v", shards, alerts[0], want[0])
		}
	}

	mref := core.NewMAWIDetector(core.DefaultMAWIConfig())
	for _, r := range recs {
		mref.Process(r)
	}
	wantScans := mref.Finish()
	scans, err := From(SliceSource(recs)).MAWI(context.Background(), core.DefaultMAWIConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(scans) != len(wantScans) || len(scans) == 0 || scans[0].Dsts != wantScans[0].Dsts {
		t.Fatalf("MAWI helper: %+v, want %+v", scans, wantScans)
	}
}

// TestChainInto composes a source-less stage chain for a tap sink and
// checks left-to-right order semantics.
func TestChainInto(t *testing.T) {
	var seen []firewall.Record
	sink := Chain().
		Filter(func(r firewall.Record) bool { return r.DstPort == 22 }).
		DaySort().
		Into(Collector(func(r firewall.Record) { seen = append(seen, r) }))

	recs := scanStream(50)
	recs[7].DstPort = 80
	// Shuffle within the day to prove DaySort runs after Filter.
	recs[3], recs[40] = recs[40], recs[3]
	for _, r := range recs {
		if err := sink.Consume(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 49 {
		t.Fatalf("saw %d records, want 49", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Time.Before(seen[i-1].Time) {
			t.Fatalf("output not sorted at %d", i)
		}
	}
}

// TestRunContextCancel verifies cancellation aborts both dispatch
// paths with ctx's error while still flushing the chain.
func TestRunContextCancel(t *testing.T) {
	recs := scanStream(10_000)

	t.Run("batch", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		sink := &recordOnlySink{}
		// SinkFunc-based head keeps the chain batched; cancel fires
		// mid-first-batch, so the second batch must never arrive.
		head := Tap(func(firewall.Record) {
			if n++; n == 100 {
				cancel()
			}
		}, sink)
		p := From(SliceSource(recs)).Build(head)
		err := p.RunContext(ctx)
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(sink.recs) != DefaultBatchSize {
			t.Fatalf("consumed %d records, want exactly the first batch (%d)", len(sink.recs), DefaultBatchSize)
		}
		if sink.flushes != 1 {
			t.Fatalf("flushes = %d, want 1 (chain must flush on abort)", sink.flushes)
		}
	})

	t.Run("record", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		sink := &recordOnlySink{}
		// The head must hide its batch capability to force the
		// per-record dispatch path.
		p := New(SliceSource(recs), &wrapRecordOnly{Tap(func(firewall.Record) {
			if n++; n == 100 {
				cancel()
			}
		}, sink)})
		err := p.RunContext(ctx)
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if len(sink.recs) != 100 {
			t.Fatalf("consumed %d records, want 100", len(sink.recs))
		}
		if sink.flushes != 1 {
			t.Fatalf("flushes = %d, want 1", sink.flushes)
		}
	})

	t.Run("sharded terminal releases workers", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		n := 0
		sink := NewShardedSink(core.NewShardedDetector(core.DefaultConfig(), 4))
		b := From(SliceSource(recs)).Tap(func(firewall.Record) {
			if n++; n == 5000 {
				cancel()
			}
		})
		// RunInto flushes and closes the sharded sink even though the
		// run aborted, so Finish has run and Result is safe to read.
		if err := b.RunInto(ctx, sink); err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		_ = sink.Result() // must not panic: Close implies Finish
	})
}

// wrapRecordOnly hides an inner sink's batch capability.
type wrapRecordOnly struct{ inner RecordSink }

func (w *wrapRecordOnly) Consume(r firewall.Record) error { return w.inner.Consume(r) }
func (w *wrapRecordOnly) Flush() error                    { return w.inner.Flush() }
