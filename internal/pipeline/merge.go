package pipeline

import (
	"errors"
	"sync"

	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
)

// MergeSource k-way merges N time-ordered sources — one per day-file —
// into a single time-ordered stream, so a month of logs becomes one
// pipeline run. Each input source runs in its own goroutine and hands
// batches to the merger under a blocking handshake: the source stays
// parked inside its own emit until the merger has drained the batch,
// so pooled input batches are never copied and never outlive their
// loan (see "Batch ownership" in the package doc). The merge itself is
// a loser tree over the k batch heads: each pop costs one leaf-to-root
// replay (⌈log₂ k⌉ comparisons) instead of a k-way scan.
//
// Ties across sources break toward the lower source index, so merging
// chronologically split day-files reproduces exactly the concatenated
// single-file run (TestMergeSourceMatchesConcatenated and the
// cmd/v6scan multi-file goldens). Inputs must individually be in
// non-decreasing time order; disorder within a source travels into the
// output untouched, as with any time-ordered source.
type MergeSource struct {
	srcs []Source
}

// NewMergeSource returns a source merging srcs in timestamp order.
func NewMergeSource(srcs ...Source) *MergeSource {
	return &MergeSource{srcs: append([]Source(nil), srcs...)}
}

// SetDecodeWorkers forwards the builder's DecodeWorkers option to
// every input source that supports it.
func (m *MergeSource) SetDecodeWorkers(n int) {
	for _, s := range m.srcs {
		if ds, ok := s.(interface{ SetDecodeWorkers(int) }); ok {
			ds.SetDecodeWorkers(n)
		}
	}
}

// Emit implements Source on top of the batch path.
func (m *MergeSource) Emit(emit func(r firewall.Record) error) error {
	return m.EmitBatch(DefaultBatchSize, func(recs []firewall.Record) error {
		for _, r := range recs {
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	})
}

// errMergeStopped aborts a feeding source's emit when the merge halts
// early (downstream error or another source failing). It never escapes
// EmitBatch.
var errMergeStopped = errors.New("pipeline: merge stopped")

// mergeFeed is the handshake between one source goroutine and the
// merger: a batch travels over ch, and the source blocks until ack
// confirms the merger is done reading it. err is set before ch closes.
type mergeFeed struct {
	ch  chan []firewall.Record
	ack chan struct{}
	err error
}

// EmitBatch implements BatchSource. Merged records are copied off the
// input batch heads into the merger's own pooled output batches, so
// downstream compaction never aliases an input source's buffer.
func (m *MergeSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	k := len(m.srcs)
	switch k {
	case 0:
		return nil
	case 1:
		// Nothing to merge; delegate without the goroutine handshake.
		return emitViaBatches(m.srcs[0], batchSize, emit)
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	var wg sync.WaitGroup
	defer wg.Wait() // runs after halt: stop releases any parked source
	defer halt()

	feeds := make([]*mergeFeed, k)
	for i, src := range m.srcs {
		f := &mergeFeed{ch: make(chan []firewall.Record), ack: make(chan struct{})}
		feeds[i] = f
		wg.Add(1)
		go func(src Source, f *mergeFeed) {
			defer wg.Done()
			defer close(f.ch)
			f.err = feedSource(src, batchSize, f, stop)
		}(src, f)
	}

	var (
		cur    = make([][]firewall.Record, k) // loaned batch per source
		pos    = make([]int, k)
		heads  = make([]firewall.Record, k)
		done   = make([]bool, k)
		failed error
	)
	// load pulls source i's next batch; on channel close it marks the
	// source exhausted and surfaces its error, if any.
	load := func(i int) {
		recs, ok := <-feeds[i].ch
		if !ok {
			done[i] = true
			cur[i] = nil
			if feeds[i].err != nil && failed == nil {
				failed = feeds[i].err
			}
			return
		}
		cur[i], pos[i], heads[i] = recs, 0, recs[0]
	}
	// advance pops source i's head; a drained batch is acked back to
	// its parked source goroutine before the next one is loaded.
	advance := func(i int) {
		pos[i]++
		if pos[i] < len(cur[i]) {
			heads[i] = cur[i][pos[i]]
			return
		}
		feeds[i].ack <- struct{}{}
		load(i)
	}

	for i := 0; i < k; i++ {
		load(i)
		if failed != nil {
			return failed
		}
	}

	lt := newLoserTree(k, func(a, b int) bool {
		if done[a] != done[b] {
			return !done[a] // live sources beat exhausted ones
		}
		if done[a] {
			return a < b
		}
		if heads[a].Time.Before(heads[b].Time) {
			return true
		}
		if heads[b].Time.Before(heads[a].Time) {
			return false
		}
		return a < b // tie: lower source index first (= concatenation order)
	})

	out := dispatch.GetBatch(batchSize)
	defer dispatch.PutBatch(out)
	for {
		w := lt.winner()
		if done[w] {
			break // winner exhausted ⇒ every source is
		}
		*out = append(*out, heads[w])
		if len(*out) == batchSize {
			if err := emit(*out); err != nil {
				return err
			}
			*out = (*out)[:0]
		}
		advance(w)
		if failed != nil {
			return failed
		}
		lt.replay(w)
	}
	if len(*out) > 0 {
		return emit(*out)
	}
	return nil
}

// feedSource runs src inside its goroutine, delivering every batch
// through f's handshake. errMergeStopped from a halted merge is the
// normal early-shutdown path, not a source failure.
func feedSource(src Source, batchSize int, f *mergeFeed, stop <-chan struct{}) error {
	deliver := func(recs []firewall.Record) error {
		if len(recs) == 0 {
			return nil
		}
		select {
		case f.ch <- recs:
		case <-stop:
			return errMergeStopped
		}
		select {
		case <-f.ack:
			return nil
		case <-stop:
			return errMergeStopped
		}
	}
	err := emitViaBatches(src, batchSize, deliver)
	if err == errMergeStopped {
		return nil // the merger told us to stop; not a source failure
	}
	return err
}

// emitViaBatches runs src as a batch producer, adapting record-only
// sources through a pooled buffer.
func emitViaBatches(src Source, batchSize int, emit func(recs []firewall.Record) error) error {
	if bs, ok := src.(BatchSource); ok {
		return bs.EmitBatch(batchSize, emit)
	}
	buf := dispatch.GetBatch(batchSize)
	defer dispatch.PutBatch(buf)
	err := src.Emit(func(r firewall.Record) error {
		*buf = append(*buf, r)
		if len(*buf) == batchSize {
			if err := emit(*buf); err != nil {
				return err
			}
			*buf = (*buf)[:0]
		}
		return nil
	})
	if err != nil {
		return err
	}
	if len(*buf) > 0 {
		return emit(*buf)
	}
	return nil
}

// loserTree is a tournament tree over k sources: node[0] holds the
// overall winner, node[1..k-1] the loser of the match played at each
// internal node. Popping the winner costs one replay along the
// winner's leaf-to-root path — ⌈log₂ k⌉ comparisons — instead of a
// k-way scan, which is what makes wide merges (a month of day-files)
// cheap per record.
type loserTree struct {
	k    int
	node []int
	less func(a, b int) bool
}

// newLoserTree builds the tree by replaying each leaf; unplayed
// matches hold -1 and adopt the first arrival (the standard implicit
// construction, correct for any k ≥ 2).
func newLoserTree(k int, less func(a, b int) bool) *loserTree {
	t := &loserTree{k: k, node: make([]int, k), less: less}
	for i := range t.node {
		t.node[i] = -1
	}
	for s := k - 1; s >= 0; s-- {
		t.replay(s)
	}
	return t
}

// winner returns the current overall winner's source index.
func (t *loserTree) winner() int { return t.node[0] }

// replay re-runs source s's matches from its leaf to the root after
// its head changed, leaving the new overall winner in node[0].
func (t *loserTree) replay(s int) {
	w := s
	for i := (s + t.k) / 2; i >= 1; i /= 2 {
		if t.node[i] == -1 { // construction: park here, match unplayed
			t.node[i] = w
			return
		}
		if t.less(t.node[i], w) {
			w, t.node[i] = t.node[i], w
		}
	}
	t.node[0] = w
}
