package pipeline

import (
	"v6scan/internal/firewall"
)

// Run-aware stable time sorting.
//
// The pipeline's record sources are time-ordered in the common case —
// firewall logs are written in order, pcap captures nearly always are
// — so a full sort.SliceStable over a buffered day does O(n log n)
// comparisons to discover what one linear scan already knows. The
// sorter here tracks maximal non-decreasing runs as records arrive:
// already-sorted input is a single run and costs nothing to "sort",
// and disordered input is repaired by stable bottom-up merges of
// adjacent runs whose scratch window is bounded by the longest left
// run of a pass — not the whole buffer — cutting both sort cost and
// peak auxiliary memory on mostly-sorted streams.

// SortByTime stably sorts records by timestamp in place. One scan
// detects the sorted runs; fully ordered input returns immediately,
// anything else pays one merge pass per doubling of run count.
func SortByTime(recs []firewall.Record) {
	var bounds []int
	bounds = append(bounds, 0)
	for i := 1; i < len(recs); i++ {
		if recs[i].Time.Before(recs[i-1].Time) {
			bounds = append(bounds, i)
		}
	}
	if len(bounds) == 1 {
		return
	}
	bounds = append(bounds, len(recs))
	var scratch []firewall.Record
	mergeBounds(recs, bounds, &scratch)
}

// mergeBounds stably merges the sorted runs delimited by bounds
// (bounds[0] == 0, bounds[len-1] == len(recs), interior entries are
// run starts) until one run remains. bounds is consumed as scratch.
func mergeBounds(recs []firewall.Record, bounds []int, scratch *[]firewall.Record) {
	for len(bounds) > 2 {
		w := 1
		i := 0
		for ; i+2 < len(bounds); i += 2 {
			mergeRuns(recs, bounds[i], bounds[i+1], bounds[i+2], scratch)
			bounds[w] = bounds[i+2]
			w++
		}
		if i+1 < len(bounds) {
			// Odd run out: carries to the next pass unmerged, which
			// preserves stability (it is the rightmost, latest run).
			bounds[w] = bounds[i+1]
			w++
		}
		bounds = bounds[:w]
	}
}

// mergeRuns stably merges the adjacent sorted runs recs[lo:mid] and
// recs[mid:hi] in place. Ties take from the left run, preserving
// arrival order among equal timestamps (the sort.SliceStable
// contract). Only the left run is copied to scratch; the right run
// streams directly, so auxiliary memory is bounded by the left run.
func mergeRuns(recs []firewall.Record, lo, mid, hi int, scratch *[]firewall.Record) {
	if !recs[mid].Time.Before(recs[mid-1].Time) {
		// Already ordered across the boundary (common once early
		// passes have repaired local disorder).
		return
	}
	left := append((*scratch)[:0], recs[lo:mid]...)
	*scratch = left
	i, j, k := 0, mid, lo
	for i < len(left) && j < hi {
		if recs[j].Time.Before(left[i].Time) {
			recs[k] = recs[j]
			j++
		} else {
			recs[k] = left[i]
			i++
		}
		k++
	}
	for i < len(left) {
		recs[k] = left[i]
		i++
		k++
	}
	// Any remainder of the right run is already in place.
}
