package pipeline

import (
	"context"
	"runtime"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/dispatch"
	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// churnSource synthesizes an adversarial-churn stream without ever
// materializing it: every record comes from a brand-new source prefix
// (unique at /48, /64 and /128 simultaneously), sends one packet, and
// goes silent — the workload the Discussion section worries about,
// where an un-advanced detector accretes one session per source per
// level until Finish. Records are generated straight into the pooled
// chunk buffer, so the source itself holds O(batch) memory.
type churnSource struct {
	n    int           // total records
	span time.Duration // stream-time span (10 days for the test)
}

func (c churnSource) record(i int) firewall.Record {
	// 24 bits of /48 index keep every source's coarsest prefix unique,
	// which both maximizes churn at every level and spreads records
	// across the shard partition.
	base := netaddr6.MustPrefix("2400::/24")
	p48 := netaddr6.NthSubprefix(base, 48, uint64(i))
	t0 := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	return firewall.Record{
		Time:    t0.Add(time.Duration(int64(c.span) / int64(c.n) * int64(i))),
		Src:     netaddr6.WithIID(p48.Addr(), 1),
		Dst:     netaddr6.MustAddr("2001:db8:f::1"),
		Proto:   layers.ProtoTCP,
		SrcPort: 40000,
		DstPort: 22,
		Length:  60,
	}
}

// Emit implements Source.
func (c churnSource) Emit(emit func(r firewall.Record) error) error {
	for i := 0; i < c.n; i++ {
		if err := emit(c.record(i)); err != nil {
			return err
		}
	}
	return nil
}

// EmitBatch implements BatchSource on the pooled-buffer contract.
func (c churnSource) EmitBatch(batchSize int, emit func(recs []firewall.Record) error) error {
	buf := dispatch.GetBatch(batchSize)
	defer dispatch.PutBatch(buf)
	for i := 0; i < c.n; {
		*buf = (*buf)[:0]
		for ; i < c.n && len(*buf) < batchSize; i++ {
			*buf = append(*buf, c.record(i))
		}
		if err := emit(*buf); err != nil {
			return err
		}
	}
	return nil
}

// liveHeap forces a collection and returns the live heap size.
func liveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// runChurn streams the 10-day churn workload into a 4-shard detector,
// sampling the live-heap high-water mark every sampleEvery records via
// a Tap stage, and returns the peak growth over the pre-run heap.
func runChurn(t *testing.T, src churnSource, advanceEvery time.Duration, sampleEvery int) uint64 {
	t.Helper()
	cfg := core.Config{
		MinDsts: 100, // one-packet sources never qualify: no scan growth either way
		Timeout: time.Hour,
		Levels:  []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48},
	}
	before := liveHeap()
	var peak uint64
	seen := 0
	b := From(src).Tap(func(firewall.Record) {
		seen++
		if seen%sampleEvery == 0 {
			if h := liveHeap(); h > peak {
				peak = h
			}
		}
	})
	if advanceEvery > 0 {
		b.AdvanceEvery(advanceEvery)
	}
	if _, err := b.Detect(context.Background(), cfg, 4); err != nil {
		t.Fatal(err)
	}
	// Final sample: the baseline's working set is largest just before
	// Finish.
	if h := liveHeap(); h > peak {
		peak = h
	}
	if peak <= before {
		return 0
	}
	return peak - before
}

// TestAdvanceEveryBoundsPeakMemory is the peak-memory regression test
// of the bounded-memory ingest path: a synthetic 10-day
// adversarial-churn stream (every record a fresh source at every
// aggregation level) through the sharded detector must hold a flat
// live heap when AdvanceEvery evicts idle sessions continuously, and
// must measurably beat the unbounded baseline that only evicts at
// Finish. Guards against regressions that silently stop forwarding
// horizons (e.g. dropping dispatcher marks) or re-materialize the
// stream.
func TestAdvanceEveryBoundsPeakMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory high-water test is not -short friendly")
	}
	src := churnSource{n: 120_000, span: 10 * 24 * time.Hour}
	const sampleEvery = 10_000

	bounded := runChurn(t, src, 30*time.Minute, sampleEvery)
	baseline := runChurn(t, src, 0, sampleEvery)

	t.Logf("peak live-heap growth: bounded=%d KiB baseline=%d KiB", bounded/1024, baseline/1024)
	if baseline < 20<<20 {
		t.Fatalf("baseline grew only %d KiB; churn workload no longer stresses the un-advanced detector and the test is vacuous", baseline/1024)
	}
	// The bounded run's working set is ~one timeout+cadence of stream
	// (≈750 of 120k sources); anything within a quarter of the
	// baseline means advancement stopped evicting.
	if bounded*4 > baseline {
		t.Fatalf("AdvanceEvery run peaked at %d KiB, more than 1/4 of the unbounded baseline's %d KiB — periodic advancement is not bounding memory",
			bounded/1024, baseline/1024)
	}
}
