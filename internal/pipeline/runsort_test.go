package pipeline

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// sortRecs builds a workload with duplicate timestamps (SrcPort is the
// arrival index, so stability violations are observable).
func sortRecs(n int, disorder func(i int) time.Duration) []firewall.Record {
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, firewall.Record{
			Time:    t0.Add(disorder(i)),
			Src:     netaddr6.MustAddr("2001:db8::1"),
			Dst:     netaddr6.MustAddr("2001:db8:f::1"),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(i),
			DstPort: 22,
			Length:  60,
		})
	}
	return recs
}

func TestSortByTime(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := map[string]func(i int) time.Duration{
		"sorted":     func(i int) time.Duration { return time.Duration(i) * time.Second },
		"reversed":   func(i int) time.Duration { return time.Duration(-i) * time.Second },
		"random":     func(i int) time.Duration { return time.Duration(rng.Intn(1000)) * time.Second },
		"duplicates": func(i int) time.Duration { return time.Duration(i%7) * time.Second },
		"tail-late": func(i int) time.Duration {
			if i == 999 {
				return 0 // one record belongs at the front
			}
			return time.Duration(i) * time.Second
		},
		"two-streams": func(i int) time.Duration {
			// Interleaved halves of two sorted streams — many short runs.
			return time.Duration(i/2) * time.Second
		},
	}
	for name, disorder := range cases {
		t.Run(name, func(t *testing.T) {
			recs := sortRecs(1000, disorder)
			want := append([]firewall.Record(nil), recs...)
			sort.SliceStable(want, func(i, j int) bool { return want[i].Time.Before(want[j].Time) })
			SortByTime(recs)
			if !reflect.DeepEqual(recs, want) {
				t.Fatal("SortByTime differs from sort.SliceStable (order or stability broken)")
			}
		})
	}
}

// TestSortByTimeNoWorkWhenSorted pins the fast path: sorted input must
// not allocate (the scan finds a single run and returns).
func TestSortByTimeNoWorkWhenSorted(t *testing.T) {
	recs := sortRecs(10_000, func(i int) time.Duration { return time.Duration(i) * time.Millisecond })
	allocs := testing.AllocsPerRun(10, func() { SortByTime(recs) })
	if allocs > 1 { // the bounds slice's first append may allocate once
		t.Fatalf("SortByTime on sorted input allocated %.0f times per run", allocs)
	}
}

// TestDaySortRunAware verifies the rewritten DaySort still matches the
// sort.SliceStable contract per day, on both dispatch paths, for
// in-order and disordered days.
func TestDaySortRunAware(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	var recs []firewall.Record
	for day := 0; day < 3; day++ {
		base := t0.Add(time.Duration(day) * 24 * time.Hour)
		for i := 0; i < 500; i++ {
			off := time.Duration(i) * time.Second
			if day == 1 { // middle day arrives shuffled
				off = time.Duration(rng.Intn(86_400)) * time.Second
			}
			recs = append(recs, firewall.Record{
				Time: base.Add(off), Src: netaddr6.MustAddr("2001:db8::1"),
				Dst: netaddr6.MustAddr("2001:db8:f::1"), Proto: layers.ProtoTCP,
				SrcPort: uint16(i), DstPort: 22, Length: 60,
			})
		}
	}
	want := func() []firewall.Record {
		out := append([]firewall.Record(nil), recs...)
		for day := 0; day < 3; day++ {
			seg := out[day*500 : (day+1)*500]
			sort.SliceStable(seg, func(i, j int) bool { return seg[i].Time.Before(seg[j].Time) })
		}
		return out
	}()

	for name, feed := range map[string]func(d *DaySort) error{
		"record": func(d *DaySort) error {
			for _, r := range recs {
				if err := d.Consume(r); err != nil {
					return err
				}
			}
			return nil
		},
		"batch": func(d *DaySort) error {
			scratch := make([]firewall.Record, 0, 64)
			for i := 0; i < len(recs); i += 64 {
				end := min(i+64, len(recs))
				scratch = append(scratch[:0], recs[i:end]...)
				if err := d.ConsumeBatch(scratch); err != nil {
					return err
				}
			}
			return nil
		},
	} {
		t.Run(name, func(t *testing.T) {
			var got []firewall.Record
			d := NewDaySort(Collector(func(r firewall.Record) { got = append(got, r) }))
			if err := feed(d); err != nil {
				t.Fatal(err)
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("DaySort output differs from per-day sort.SliceStable")
			}
		})
	}
}

// TestBatchRetentionUnsafe codifies the batch-ownership rule of the
// package doc from the consumer side: an emitted batch slice is valid
// only during ConsumeBatch — a sink that retains it observes the
// producer refill the backing array on later batches, while a sink
// that copies keeps a faithful view. (If this test ever "fails"
// because retention became safe, the pooled-buffer contract — and the
// allocation-flat ingest path built on it — has silently changed.)
func TestBatchRetentionUnsafe(t *testing.T) {
	var log bytes.Buffer
	w := firewall.NewWriter(&log)
	t0 := time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 8; i++ {
		if err := w.Write(firewall.Record{
			Time: t0.Add(time.Duration(i) * time.Second),
			Src:  netaddr6.MustAddr("2001:db8::1"), Dst: netaddr6.MustAddr("2001:db8:f::1"),
			Proto: layers.ProtoTCP, SrcPort: uint16(i), DstPort: 22, Length: 60,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	var retained, copied []firewall.Record
	src := NewLogSource(bytes.NewReader(log.Bytes()))
	err := src.EmitBatch(4, func(recs []firewall.Record) error {
		if retained == nil {
			retained = recs // illegal: aliases the pooled buffer
			copied = append([]firewall.Record(nil), recs...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(retained) != 4 || len(copied) != 4 {
		t.Fatalf("retained %d / copied %d records, want 4", len(retained), len(copied))
	}
	if reflect.DeepEqual(retained, copied) {
		t.Fatal("retained batch survived later emissions; the source no longer reuses its pooled buffer and the ownership contract in the package doc is stale")
	}
	if retained[0].SrcPort != 4 {
		t.Fatalf("retained slice shows SrcPort %d, want 4 (the refilled second chunk)", retained[0].SrcPort)
	}
}
