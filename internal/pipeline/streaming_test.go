package pipeline

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/ids"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pcap"
)

// The tests here extend the core/ids sharded parity suites
// (TestShardedParity, TestShardedIDSParity) to the full streaming
// path this package owns: a chunked source (binary log, pcap) feeding
// the builder chain with WindowSort reordering and a sink-driven
// AdvanceEvery/TickEvery cadence that forwards eviction horizons
// through the dispatcher's marks. The invariants:
//
//   - Detector: AdvanceEvery only bounds memory — output at any shard
//     count, with any cadence, equals the materializing no-advance
//     reference byte for byte.
//   - IDS: Tick cadence is semantic (it decides when idle candidates
//     close), so sharded output at every shard count must equal the
//     unsharded engine's at the identical cadence.
//   - WindowSort: for in-window disorder, the streaming reorder path
//     equals materialize-then-sort exactly.

// streamParityRecords synthesizes the detection workload: sources
// spread across /48s and /64s, timeout-splitting lulls, and a bounded
// timestamp jitter so WindowSort has disorder to repair.
func streamParityRecords(n int, jitter time.Duration) []firewall.Record {
	rng := rand.New(rand.NewSource(59))
	base := netaddr6.MustPrefix("2001:db8:a000::/36")
	dsts := netaddr6.MustPrefix("2001:db8:f000::/44")
	ts := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]firewall.Record, 0, n)
	for i := 0; i < n; i++ {
		p48 := netaddr6.NthSubprefix(base, 48, uint64(i%37))
		p64 := netaddr6.NthSubprefix(p48, 64, uint64(i%5))
		src := netaddr6.WithIID(p64.Addr(), uint64(1+i%9))
		rt := ts
		if jitter > 0 {
			rt = rt.Add(-time.Duration(rng.Int63n(int64(jitter) + 1)))
		}
		recs = append(recs, firewall.Record{
			Time:    rt,
			Src:     src,
			Dst:     netaddr6.RandomAddrIn(dsts, rng),
			Proto:   layers.ProtoTCP,
			SrcPort: uint16(40000 + i%1000),
			DstPort: uint16(1 + i%512),
			Length:  uint16(60 + i%4),
		})
		step := 40 * time.Millisecond
		if i%15000 == 14999 {
			step = 2 * time.Hour // lull above the timeout splits sessions
		}
		ts = ts.Add(step)
	}
	return recs
}

func streamParityConfig() core.Config {
	return core.Config{
		MinDsts:   10,
		Timeout:   time.Hour,
		Levels:    []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48},
		TrackDsts: true,
		WeekEpoch: time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC),
	}
}

// canonicalScans renders every field of a level's scans so two
// detectors compare byte for byte (the pipeline-side twin of the core
// parity suite's renderer).
func canonicalScans(scans []core.Scan) string {
	var b strings.Builder
	for _, s := range scans {
		fmt.Fprintf(&b, "%v %v %v %v pk=%d dsts=%d srcs=%d ent=%.9f",
			s.Source, s.Level, s.Start.UnixNano(), s.End.UnixNano(),
			s.Packets, s.Dsts, s.SrcAddrs, s.LenEntropy)
		svcs := make([]string, 0, len(s.Ports))
		for svc, c := range s.Ports {
			svcs = append(svcs, fmt.Sprintf("%v=%d", svc, c))
		}
		sort.Strings(svcs)
		fmt.Fprintf(&b, " ports[%s]", strings.Join(svcs, ","))
		weeks := make([]int, 0, len(s.WeekPackets))
		for w := range s.WeekPackets {
			weeks = append(weeks, w)
		}
		sort.Ints(weeks)
		for _, w := range weeks {
			fmt.Fprintf(&b, " w%d=%d", w, s.WeekPackets[w])
		}
		for _, a := range s.DstAddrs {
			b.WriteString(" ")
			b.WriteString(a.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func renderDetector(d *core.Detector, levels []netaddr6.AggLevel) map[netaddr6.AggLevel]string {
	out := map[netaddr6.AggLevel]string{}
	for _, lvl := range levels {
		out[lvl] = canonicalScans(d.Scans(lvl))
	}
	return out
}

// encodeLog writes records to an in-memory binary log.
func encodeLog(t *testing.T, recs []firewall.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := firewall.NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedParityStreamingAdvanceEvery extends TestShardedParity to
// the bounded-memory streaming path: a chunked LogSource feeding
// Detect with a 30-minute AdvanceEvery cadence must be byte-identical
// to the materializing, never-advanced reference at 1, 2 and 8 shards.
func TestShardedParityStreamingAdvanceEvery(t *testing.T) {
	recs := streamParityRecords(40_000, 0)
	cfg := streamParityConfig()

	ref, err := From(SliceSource(recs)).Detect(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderDetector(ref, cfg.Levels)
	for lvl, s := range want {
		if s == "" {
			t.Fatalf("reference produced no scans at %v", lvl)
		}
	}

	log := encodeLog(t, recs)
	for _, shards := range []int{1, 2, 8} {
		det, err := From(NewLogSource(bytes.NewReader(log))).
			AdvanceEvery(30*time.Minute).
			Detect(context.Background(), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := renderDetector(det, cfg.Levels)
		for _, lvl := range cfg.Levels {
			if got[lvl] != want[lvl] {
				t.Errorf("shards=%d level %v: streaming+AdvanceEvery output differs from materializing reference (%d vs %d bytes)",
					shards, lvl, len(got[lvl]), len(want[lvl]))
			}
		}
	}
}

// TestShardedParityWindowSortStreaming adds bounded disorder: the
// jittered stream flows through WindowSort + AdvanceEvery and must
// equal the materialize-then-SortByTime reference at every shard
// count.
func TestShardedParityWindowSortStreaming(t *testing.T) {
	const jitter = 2 * time.Second
	recs := streamParityRecords(40_000, jitter)
	cfg := streamParityConfig()

	sorted := append([]firewall.Record(nil), recs...)
	SortByTime(sorted)
	ref, err := From(SliceSource(sorted)).Detect(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := renderDetector(ref, cfg.Levels)

	for _, shards := range []int{1, 2, 8} {
		det, err := From(SliceSource(recs)).
			WindowSort(jitter).
			AdvanceEvery(30*time.Minute).
			Detect(context.Background(), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := renderDetector(det, cfg.Levels)
		for _, lvl := range cfg.Levels {
			if got[lvl] != want[lvl] {
				t.Errorf("shards=%d level %v: WindowSort streaming output differs from materialize+sort reference", shards, lvl)
			}
		}
	}
}

// canonicalIDSAlerts renders every alert field (the ids parity suite's
// renderer, local to this package).
func canonicalIDSAlerts(alerts []ids.Alert) string {
	var b strings.Builder
	for _, a := range alerts {
		fmt.Fprintf(&b, "%v %v est=%d pk=%d %d %d esc=%v\n",
			a.Prefix, a.Level, a.EstimatedDsts, a.Packets,
			a.First.UnixNano(), a.Last.UnixNano(), a.Escalated)
	}
	return b.String()
}

// TestShardedIDSParityStreamingTickEvery extends TestShardedIDSParity
// to the sink-driven cadence: IDS ticks are semantic, so the sharded
// streaming engines must match the unsharded engine run at the
// identical TickEvery cadence, byte for byte.
func TestShardedIDSParityStreamingTickEvery(t *testing.T) {
	recs := streamParityRecords(40_000, 0)
	cfg := ids.Config{
		MinDsts: 20,
		Timeout: time.Hour,
		Levels:  []netaddr6.AggLevel{netaddr6.Agg128, netaddr6.Agg64, netaddr6.Agg48, netaddr6.Agg32},
	}
	const cadence = 10 * time.Minute

	log := encodeLog(t, recs)
	refAlerts, err := From(NewLogSource(bytes.NewReader(log))).
		AdvanceEvery(cadence).
		IDS(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := canonicalIDSAlerts(refAlerts)
	if want == "" {
		t.Fatal("reference produced no alerts")
	}

	for _, shards := range []int{2, 8} {
		alerts, err := From(NewLogSource(bytes.NewReader(log))).
			AdvanceEvery(cadence).
			IDS(context.Background(), cfg, shards)
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalIDSAlerts(alerts); got != want {
			t.Errorf("shards=%d: streaming TickEvery alerts differ from unsharded\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}

// TestRunIntoAppliesAdvanceEvery pins the cadence hand-off: a builder
// cadence reaches a cadence-capable terminal passed to RunInto
// directly (not only via the Detect/IDS helpers), and a zero builder
// cadence leaves a sink-configured cadence alone.
func TestRunIntoAppliesAdvanceEvery(t *testing.T) {
	recs := scanStream(10)

	sink := NewDetectorSink(core.NewDetector(core.DefaultConfig()))
	if err := From(SliceSource(recs)).AdvanceEvery(5*time.Minute).
		RunInto(context.Background(), sink); err != nil {
		t.Fatal(err)
	}
	if sink.AdvanceEvery != 5*time.Minute {
		t.Fatalf("RunInto did not apply the builder cadence: AdvanceEvery = %v", sink.AdvanceEvery)
	}

	ids1 := NewIDSSink(ids.New(ids.DefaultConfig()))
	ids1.TickEvery = time.Minute
	if err := From(SliceSource(recs)).RunInto(context.Background(), ids1); err != nil {
		t.Fatal(err)
	}
	if ids1.TickEvery != time.Minute {
		t.Fatalf("zero builder cadence clobbered the sink's TickEvery: %v", ids1.TickEvery)
	}
}

// TestPcapStreamingMatchesMaterializing: the cmd/v6scan streaming pcap
// path (PcapSource → WindowSort) must produce the identical record
// sequence as decode-everything-then-SortByTime, for a capture with
// bounded timestamp jitter.
func TestPcapStreamingMatchesMaterializing(t *testing.T) {
	const jitter = time.Second
	recs := streamParityRecords(2_000, jitter)

	var capture bytes.Buffer
	pw := pcap.NewWriter(&capture, pcap.WriterOptions{Nanosecond: true})
	for _, r := range recs {
		frame, err := layers.BuildTCPSYN(r.Src, r.Dst, r.SrcPort, r.DstPort,
			layers.BuildOptions{Link: layers.LinkTypeEthernet})
		if err != nil {
			t.Fatal(err)
		}
		if err := pw.WritePacket(r.Time, frame); err != nil {
			t.Fatal(err)
		}
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Materializing reference: decode everything, then run-aware sort.
	var want []firewall.Record
	ref := NewPcapSource(bytes.NewReader(capture.Bytes()))
	if err := ref.EmitBatch(DefaultBatchSize, func(part []firewall.Record) error {
		want = append(want, part...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ref.Skipped() != 0 {
		t.Fatalf("reference skipped %d packets", ref.Skipped())
	}
	SortByTime(want)

	// Streaming path: bounded reorder buffer, no materialization.
	var got []firewall.Record
	src := NewPcapSource(bytes.NewReader(capture.Bytes()))
	p := From(src).WindowSort(jitter).Build(Collector(func(r firewall.Record) { got = append(got, r) }))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming pcap path differs from materialize+sort (%d vs %d records)", len(got), len(want))
	}
}
