package telescope

import (
	"math/rand"
	"net/netip"
	"testing"

	"v6scan/internal/asdb"
	"v6scan/internal/netaddr6"
)

func buildSmall(t *testing.T) (*Telescope, *asdb.DB) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Machines = 500
	cfg.ASes = 20
	db := asdb.New()
	ts, err := New(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	return ts, db
}

func TestBuildCounts(t *testing.T) {
	ts, db := buildSmall(t)
	if ts.NumMachines() != 500 {
		t.Errorf("machines = %d", ts.NumMachines())
	}
	if len(ts.ExposedAddrs()) != 500 || len(ts.HiddenAddrs()) != 500 {
		t.Error("address list lengths wrong")
	}
	if len(db.ASNumbers()) != 20 {
		t.Errorf("ASes = %d", len(db.ASNumbers()))
	}
	if db.Len() != 20 {
		t.Errorf("allocations = %d", db.Len())
	}
}

func TestAddressesDistinct(t *testing.T) {
	ts, _ := buildSmall(t)
	seen := map[netip.Addr]bool{}
	for _, m := range ts.Machines() {
		if m.Exposed == m.Hidden {
			t.Fatalf("machine %d: identical pair", m.ID)
		}
		for _, a := range []netip.Addr{m.Exposed, m.Hidden} {
			if seen[a] {
				t.Fatalf("duplicate address %s", a)
			}
			seen[a] = true
		}
	}
}

func TestPairsShareSlash64AndCloseness(t *testing.T) {
	ts, _ := buildSmall(t)
	within123 := 0
	for _, m := range ts.Machines() {
		if !netaddr6.SameSlash(m.Exposed, m.Hidden, 64) {
			t.Fatalf("pair not in same /64: %s / %s", m.Exposed, m.Hidden)
		}
		if !netaddr6.SameSlash(m.Exposed, m.Hidden, 112) {
			t.Fatalf("pair not within /112: %s / %s", m.Exposed, m.Hidden)
		}
		if netaddr6.SameSlash(m.Exposed, m.Hidden, 123) {
			within123++
		}
	}
	share := float64(within123) / float64(ts.NumMachines())
	if share < 0.75 || share > 0.95 {
		t.Errorf("within-/123 share = %.2f, want ≈0.85", share)
	}
}

func TestInDNSAndPairOf(t *testing.T) {
	ts, _ := buildSmall(t)
	m := ts.Machines()[0]
	if !ts.InDNS(m.Exposed) {
		t.Error("exposed address not in DNS")
	}
	if ts.InDNS(m.Hidden) {
		t.Error("hidden address in DNS")
	}
	if p, ok := ts.PairOf(m.Exposed); !ok || p != m.Hidden {
		t.Error("PairOf(exposed) wrong")
	}
	if p, ok := ts.PairOf(m.Hidden); !ok || p != m.Exposed {
		t.Error("PairOf(hidden) wrong")
	}
	outside := netaddr6.MustAddr("2001:db8::1")
	if ts.Contains(outside) || ts.InDNS(outside) {
		t.Error("outside address claimed")
	}
	if _, ok := ts.PairOf(outside); ok {
		t.Error("PairOf(outside) matched")
	}
}

func TestMachineOf(t *testing.T) {
	ts, _ := buildSmall(t)
	m := ts.Machines()[42]
	got, ok := ts.MachineOf(m.Hidden)
	if !ok || got.ID != m.ID {
		t.Errorf("MachineOf = %+v, %v", got, ok)
	}
}

func TestAttributionThroughASDB(t *testing.T) {
	ts, db := buildSmall(t)
	for _, m := range ts.Machines()[:50] {
		as, _, ok := db.Attribute(m.Exposed)
		if !ok {
			t.Fatalf("machine %d not attributable", m.ID)
		}
		if as.Number != m.ASN {
			t.Fatalf("machine %d: attributed to AS%d, want AS%d", m.ID, as.Number, m.ASN)
		}
		if as.Type != asdb.TypeCDN {
			t.Fatalf("machine AS type %v", as.Type)
		}
	}
}

func TestSkewedDeployment(t *testing.T) {
	ts, _ := buildSmall(t)
	perAS := map[int]int{}
	for _, m := range ts.Machines() {
		perAS[m.ASN]++
	}
	largest, smallest := 0, 1<<30
	for _, c := range perAS {
		if c > largest {
			largest = c
		}
		if c < smallest {
			smallest = c
		}
	}
	if largest < 5*smallest {
		t.Errorf("deployment not skewed: largest %d, smallest %d", largest, smallest)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 200
	cfg.ASes = 10
	a, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Machines() {
		if a.Machines()[i] != b.Machines()[i] {
			t.Fatalf("machine %d differs across identical builds", i)
		}
	}
	cfg.Seed = 2
	c, _ := New(cfg, nil)
	same := true
	for i := range a.Machines() {
		if a.Machines()[i] != c.Machines()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seed produced identical telescope")
	}
}

func TestSampleExposed(t *testing.T) {
	ts, _ := buildSmall(t)
	rng := rand.New(rand.NewSource(9))
	s := ts.SampleExposed(50, rng)
	if len(s) != 50 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[netip.Addr]bool{}
	for _, a := range s {
		if !ts.InDNS(a) {
			t.Fatalf("sampled non-exposed address %s", a)
		}
		if seen[a] {
			t.Fatal("sample with replacement")
		}
		seen[a] = true
	}
	// Oversized request returns everything.
	all := ts.SampleHidden(10_000, rng)
	if len(all) != ts.NumMachines() {
		t.Errorf("oversample = %d", len(all))
	}
}

func TestExposedAddressesAreStructured(t *testing.T) {
	ts, _ := buildSmall(t)
	// CDN machine addresses are low-Hamming-weight; mean IID HW must be
	// far below the random expectation of 32.
	sum := 0
	for _, a := range ts.ExposedAddrs() {
		sum += netaddr6.HammingWeightIID(a)
	}
	mean := float64(sum) / float64(len(ts.ExposedAddrs()))
	if mean > 8 {
		t.Errorf("mean exposed HW = %.1f, want structured (≤8)", mean)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Machines: 0, ASes: 5}, nil); err == nil {
		t.Error("zero machines accepted")
	}
	if _, err := New(Config{Machines: 3, ASes: 5}, nil); err == nil {
		t.Error("more ASes than machines accepted")
	}
}
