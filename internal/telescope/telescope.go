// Package telescope models the paper's vantage point: a CDN whose
// machines log unsolicited IPv6 traffic. Each machine carries a
// DNS-exposed ("client-facing") address — returned in AAAA answers to
// clients and therefore discoverable by scanners harvesting DNS or
// hitlists — and a non-exposed address that never appears in DNS.
// The two addresses of a machine are close in address space, usually
// within the same /123, mirroring the 160,000-address-pair analysis of
// Section 3.3 that the paper uses to infer how scanners find targets.
//
// The telescope registers its deployment ASes and prefixes into an
// asdb.DB so that detection-side AS attribution treats CDN space like
// any other network.
package telescope

import (
	"fmt"
	"math/rand"
	"net/netip"

	"v6scan/internal/asdb"
	"v6scan/internal/netaddr6"
)

// Config sizes the synthetic telescope. The paper's deployment is
// ≈230,000 machines in >700 ASes; simulations default to a scaled-down
// deployment with the same structure.
type Config struct {
	// Machines is the number of CDN machines (each contributes one
	// exposed and one hidden address).
	Machines int
	// ASes is the number of deployment networks machines spread over.
	ASes int
	// ASNBase is the first AS number used for deployment networks.
	ASNBase int
	// BasePrefix is the address space deployment allocations are carved
	// from; each AS receives one /32.
	BasePrefix netip.Prefix
	// PairWithin123Share is the fraction of machines whose hidden
	// address lies within the same /123 as the exposed one (the paper:
	// "often within a /123"); the remainder fall within the same /112.
	PairWithin123Share float64
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig returns a laptop-scale telescope preserving the
// paper's structure: machines spread unevenly over many ASes.
func DefaultConfig() Config {
	return Config{
		Machines:           4000,
		ASes:               70,
		ASNBase:            64512,
		BasePrefix:         netaddr6.MustPrefix("2a00::/12"),
		PairWithin123Share: 0.85,
		Seed:               1,
	}
}

// Machine is one CDN machine with its address pair.
type Machine struct {
	ID      int
	ASN     int
	Exposed netip.Addr // client-facing, present in DNS
	Hidden  netip.Addr // never returned in DNS
}

// Telescope is the built vantage point.
type Telescope struct {
	cfg      Config
	machines []Machine
	exposed  []netip.Addr
	hidden   []netip.Addr
	index    map[netip.Addr]int32 // addr → machine index (negative-1 offset scheme not needed)
	inDNS    map[netip.Addr]bool
}

// New builds a telescope and registers its deployment ASes and
// allocations into db (pass nil to skip registration).
func New(cfg Config, db *asdb.DB) (*Telescope, error) {
	if cfg.Machines <= 0 || cfg.ASes <= 0 {
		return nil, fmt.Errorf("telescope: need positive Machines and ASes, got %d/%d", cfg.Machines, cfg.ASes)
	}
	if cfg.ASes > cfg.Machines {
		return nil, fmt.Errorf("telescope: more ASes (%d) than machines (%d)", cfg.ASes, cfg.Machines)
	}
	if !cfg.BasePrefix.IsValid() {
		cfg.BasePrefix = DefaultConfig().BasePrefix
	}
	if cfg.PairWithin123Share == 0 {
		cfg.PairWithin123Share = DefaultConfig().PairWithin123Share
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	t := &Telescope{
		cfg:      cfg,
		machines: make([]Machine, 0, cfg.Machines),
		exposed:  make([]netip.Addr, 0, cfg.Machines),
		hidden:   make([]netip.Addr, 0, cfg.Machines),
		index:    make(map[netip.Addr]int32, 2*cfg.Machines),
		inDNS:    make(map[netip.Addr]bool, 2*cfg.Machines),
	}

	// Deployment sizes follow a skewed (Zipf-like) distribution: a few
	// large ASes host most machines, like real CDN deployments.
	weights := make([]float64, cfg.ASes)
	var wSum float64
	for i := range weights {
		weights[i] = 1 / float64(i+1)
		wSum += weights[i]
	}
	counts := make([]int, cfg.ASes)
	assigned := 0
	for i := range counts {
		counts[i] = int(float64(cfg.Machines) * weights[i] / wSum)
		if counts[i] == 0 {
			counts[i] = 1
		}
		assigned += counts[i]
	}
	// Distribute the remainder (or trim overshoot) on the largest AS.
	counts[0] += cfg.Machines - assigned
	if counts[0] < 1 {
		return nil, fmt.Errorf("telescope: config produces empty largest AS")
	}

	id := 0
	for asIdx := 0; asIdx < cfg.ASes; asIdx++ {
		asn := cfg.ASNBase + asIdx
		alloc := netaddr6.NthSubprefix(cfg.BasePrefix, 32, uint64(asIdx))
		if db != nil {
			db.AddAS(asdb.AS{
				Number:  asn,
				Name:    fmt.Sprintf("cdn-deploy-%d", asIdx),
				Type:    asdb.TypeCDN,
				Country: deployCountry(asIdx),
			})
			if err := db.Allocate(alloc, asn, asdb.KindRIRAllocation); err != nil {
				return nil, fmt.Errorf("telescope: %w", err)
			}
		}
		for j := 0; j < counts[asIdx]; j++ {
			// Each machine sits in its own /64 within one of the AS's
			// /48 clusters.
			cluster := netaddr6.NthSubprefix(alloc, 48, uint64(j/256))
			mnet := netaddr6.NthSubprefix(cluster, 64, uint64(j%256))
			m := buildMachine(id, asn, mnet, cfg.PairWithin123Share, rng)
			t.addMachine(m)
			id++
		}
	}
	return t, nil
}

// buildMachine synthesizes the address pair for one machine.
func buildMachine(id, asn int, mnet netip.Prefix, within123 float64, rng *rand.Rand) Machine {
	// Exposed addresses are structured (low Hamming weight), as CDN
	// infrastructure addresses tend to be.
	exposed := netaddr6.LowHammingAddrIn(mnet, 4, rng)
	var hidden netip.Addr
	for {
		iid := netaddr6.IID(exposed)
		if rng.Float64() < within123 {
			// Same /123: flip only low 5 bits.
			delta := uint64(1 + rng.Intn(31))
			hidden = netaddr6.WithIID(exposed, iid^delta)
		} else {
			// Same /112: differ somewhere in the low 16 bits.
			delta := uint64(1 + rng.Intn(0xFFFF))
			hidden = netaddr6.WithIID(exposed, iid^delta)
		}
		if hidden != exposed {
			break
		}
	}
	return Machine{ID: id, ASN: asn, Exposed: exposed, Hidden: hidden}
}

func (t *Telescope) addMachine(m Machine) {
	idx := int32(len(t.machines))
	t.machines = append(t.machines, m)
	t.exposed = append(t.exposed, m.Exposed)
	t.hidden = append(t.hidden, m.Hidden)
	t.index[m.Exposed] = idx
	t.index[m.Hidden] = idx
	t.inDNS[m.Exposed] = true
	t.inDNS[m.Hidden] = false
}

// deployCountry spreads deployments over a fixed country list.
func deployCountry(i int) string {
	countries := []string{"US", "DE", "JP", "BR", "IN", "GB", "FR", "NL", "AU", "SG"}
	return countries[i%len(countries)]
}

// Machines returns all machines (callers must not mutate).
func (t *Telescope) Machines() []Machine { return t.machines }

// NumMachines returns the machine count.
func (t *Telescope) NumMachines() int { return len(t.machines) }

// ExposedAddrs returns every DNS-exposed address; this doubles as the
// ground truth behind the synthetic "IPv6 hitlist" of the MAWI
// cross-check.
func (t *Telescope) ExposedAddrs() []netip.Addr { return t.exposed }

// HiddenAddrs returns every non-DNS address.
func (t *Telescope) HiddenAddrs() []netip.Addr { return t.hidden }

// Contains reports whether addr belongs to the telescope.
func (t *Telescope) Contains(addr netip.Addr) bool {
	_, ok := t.index[addr]
	return ok
}

// InDNS reports whether addr is a telescope address exposed via DNS.
// Non-telescope addresses return false.
func (t *Telescope) InDNS(addr netip.Addr) bool { return t.inDNS[addr] }

// PairOf returns the sibling address of a telescope address (hidden ↔
// exposed) and whether addr belongs to the telescope.
func (t *Telescope) PairOf(addr netip.Addr) (netip.Addr, bool) {
	idx, ok := t.index[addr]
	if !ok {
		return netip.Addr{}, false
	}
	m := t.machines[idx]
	if addr == m.Exposed {
		return m.Hidden, true
	}
	return m.Exposed, true
}

// MachineOf returns the machine owning addr.
func (t *Telescope) MachineOf(addr netip.Addr) (Machine, bool) {
	idx, ok := t.index[addr]
	if !ok {
		return Machine{}, false
	}
	return t.machines[idx], true
}

// SampleExposed returns n exposed addresses drawn without replacement
// (or all of them if n exceeds the population).
func (t *Telescope) SampleExposed(n int, rng *rand.Rand) []netip.Addr {
	return sampleAddrs(t.exposed, n, rng)
}

// SampleHidden returns n hidden addresses drawn without replacement.
func (t *Telescope) SampleHidden(n int, rng *rand.Rand) []netip.Addr {
	return sampleAddrs(t.hidden, n, rng)
}

func sampleAddrs(pool []netip.Addr, n int, rng *rand.Rand) []netip.Addr {
	if n >= len(pool) {
		out := make([]netip.Addr, len(pool))
		copy(out, pool)
		return out
	}
	idx := rng.Perm(len(pool))[:n]
	out := make([]netip.Addr, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}
