package firewall

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
	"time"

	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

var t0 = time.Date(2021, 6, 1, 12, 0, 0, 0, time.UTC)

func rec(ts time.Time, src, dst string, proto layers.IPProtocol, dport uint16) Record {
	return Record{
		Time: ts, Src: netaddr6.MustAddr(src), Dst: netaddr6.MustAddr(dst),
		Proto: proto, SrcPort: 54321, DstPort: dport, Length: 60,
	}
}

func TestServiceString(t *testing.T) {
	if s := (Service{layers.ProtoTCP, 22}).String(); s != "TCP/22" {
		t.Errorf("got %q", s)
	}
	if s := (Service{layers.ProtoUDP, 500}).String(); s != "UDP/500" {
		t.Errorf("got %q", s)
	}
	if s := (Service{layers.ProtoICMPv6, 0}).String(); s != "ICMPv6" {
		t.Errorf("got %q", s)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := rec(t0, "2001:db8::1", "2001:db8:f::2", layers.ProtoTCP, 22)
	b := r.AppendBinary(nil)
	if len(b) != recordWireSize {
		t.Fatalf("size %d", len(b))
	}
	var got Record
	if err := got.DecodeBinary(b); err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("got %+v want %+v", got, r)
	}
}

func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(ns int64, hi1, lo1, hi2, lo2 uint64, proto uint8, sp, dp, ln uint16) bool {
		r := Record{
			Time:  time.Unix(0, ns).UTC(),
			Src:   netaddr6.U128{Hi: hi1, Lo: lo1}.ToAddr(),
			Dst:   netaddr6.U128{Hi: hi2, Lo: lo2}.ToAddr(),
			Proto: layers.IPProtocol(proto), SrcPort: sp, DstPort: dp, Length: ln,
		}
		var got Record
		if err := got.DecodeBinary(r.AppendBinary(nil)); err != nil {
			return false
		}
		return got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeShort(t *testing.T) {
	var r Record
	if err := r.DecodeBinary(make([]byte, 10)); err != ErrShortRecord {
		t.Errorf("got %v", err)
	}
}

func TestWriterReaderStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []Record
	for i := 0; i < 500; i++ {
		r := rec(t0.Add(time.Duration(i)*time.Second), "2001:db8::1", "2001:db8:f::2", layers.ProtoTCP, uint16(i))
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 500 {
		t.Errorf("count %d", w.Count())
	}
	rd := NewReader(&buf)
	for i := 0; ; i++ {
		r, err := rd.Next()
		if err == io.EOF {
			if i != 500 {
				t.Fatalf("read %d", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if r != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReaderTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoTCP, 22))
	w.Flush()
	data := buf.Bytes()[:recordWireSize-3]
	rd := NewReader(bytes.NewReader(data))
	if _, err := rd.Next(); err == nil || err == io.EOF {
		t.Errorf("got %v", err)
	}
}

func TestCollectPolicy(t *testing.T) {
	p := DefaultCollectPolicy()
	tests := []struct {
		r    Record
		want bool
	}{
		{rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoTCP, 22), true},
		{rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoTCP, 80), false},
		{rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoTCP, 443), false},
		{rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoUDP, 443), true}, // only TCP excluded
		{rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoICMPv6, 0), false},
		{rec(t0, "2001:db8::1", "2001:db8::2", layers.ProtoUDP, 500), true},
	}
	for i, tt := range tests {
		if got := p.Admit(tt.r); got != tt.want {
			t.Errorf("case %d: Admit = %v, want %v", i, got, tt.want)
		}
	}
	// Non-IPv6 records are never admitted.
	bad := Record{Proto: layers.ProtoTCP, DstPort: 22}
	if p.Admit(bad) {
		t.Error("zero addresses admitted")
	}
}

func TestFromDecoded(t *testing.T) {
	src, dst := netaddr6.MustAddr("2001:db8::1"), netaddr6.MustAddr("2001:db8::2")
	frame, err := layers.BuildTCPSYN(src, dst, 1234, 22, layers.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var d layers.Decoded
	if err := layers.ParseFrame(frame, layers.LinkTypeRaw, &d); err != nil {
		t.Fatal(err)
	}
	r := FromDecoded(t0, &d)
	if r.Src != src || r.Dst != dst || r.Proto != layers.ProtoTCP || r.DstPort != 22 {
		t.Errorf("record %+v", r)
	}
	if int(r.Length) != len(frame) {
		t.Errorf("length %d, frame %d", r.Length, len(frame))
	}
}

// --- artifact filter ---

func TestArtifactFilterDropsSMTPRetries(t *testing.T) {
	f := NewArtifactFilter()
	// An SMTP server retrying delivery: 20 packets to each of 3
	// telescope IPs on TCP/25 — 15 duplicates out of 20 per pair, well
	// above 30%.
	var n int
	for i := 0; i < 20; i++ {
		for j := 0; j < 3; j++ {
			dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(j))
			out := f.Push(rec(t0.Add(time.Duration(n)*time.Second), "2001:db8:bad::1", dst.String(), layers.ProtoTCP, 25))
			if len(out) != 0 {
				t.Fatal("unexpected early emit")
			}
			n++
		}
	}
	// A legitimate-looking scanner: 1 packet each to 50 dsts.
	for j := 0; j < 50; j++ {
		dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(100+j))
		f.Push(rec(t0.Add(time.Duration(n)*time.Second), "2001:db8:5ca::1", dst.String(), layers.ProtoTCP, 22))
		n++
	}
	out := f.Close()
	for _, r := range out {
		if r.DstPort == 25 {
			t.Fatal("SMTP artifact survived filter")
		}
	}
	if len(out) != 50 {
		t.Errorf("survivors = %d, want 50", len(out))
	}
	st := f.Stats()
	if st.SourcesDropped != 1 || st.PacketsDropped != 60 {
		t.Errorf("stats: %+v", st)
	}
	top := st.TopFilteredServices(5)
	if len(top) != 1 || top[0].Service.String() != "TCP/25" || top[0].Packets != 60 || top[0].Sources != 1 {
		t.Errorf("top filtered: %+v", top)
	}
}

func TestArtifactFilterKeepsScannersHittingManyDsts(t *testing.T) {
	f := NewArtifactFilter()
	// A scanner probing 200 dsts twice each: duplicates are 0 (2 ≤ 5).
	n := 0
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < 200; j++ {
			dst := netaddr6.WithIID(netaddr6.MustAddr("2001:db8:f::"), uint64(j))
			f.Push(rec(t0.Add(time.Duration(n)*time.Millisecond), "2001:db8:5ca::1", dst.String(), layers.ProtoTCP, 22))
			n++
		}
	}
	out := f.Close()
	if len(out) != 400 {
		t.Errorf("survivors = %d, want 400", len(out))
	}
}

func TestArtifactFilterDayBoundary(t *testing.T) {
	f := NewArtifactFilter()
	day1 := time.Date(2021, 6, 1, 23, 0, 0, 0, time.UTC)
	day2 := time.Date(2021, 6, 2, 1, 0, 0, 0, time.UTC)
	// 6 packets to one (dst,port) on day 1 → 1 duplicate / 6 = 17% → kept.
	for i := 0; i < 6; i++ {
		if out := f.Push(rec(day1.Add(time.Duration(i)*time.Minute), "2001:db8::1", "2001:db8:f::1", layers.ProtoUDP, 500)); len(out) != 0 {
			t.Fatal("premature emit")
		}
	}
	// First packet of day 2 flushes day 1.
	out := f.Push(rec(day2, "2001:db8::1", "2001:db8:f::1", layers.ProtoUDP, 500))
	if len(out) != 6 {
		t.Fatalf("day flush emitted %d", len(out))
	}
	// Times must be ordered.
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Fatal("emitted out of order")
		}
	}
	if len(f.Close()) != 1 {
		t.Error("day 2 record lost")
	}
}

func TestArtifactFilterPerDayIndependence(t *testing.T) {
	// 10 packets to one pair within a single day trips the filter (5
	// duplicates / 10 = 50%); the same 10 packets spread across two days
	// (5+5) do not.
	oneDay := NewArtifactFilter()
	for i := 0; i < 10; i++ {
		oneDay.Push(rec(t0.Add(time.Duration(i)*time.Hour), "2001:db8::1", "2001:db8:f::1", layers.ProtoTCP, 25))
	}
	if out := oneDay.Close(); len(out) != 0 {
		t.Errorf("single-day: %d survived, want 0", len(out))
	}

	twoDays := NewArtifactFilter()
	total := 0
	for d := 0; d < 2; d++ {
		for i := 0; i < 5; i++ {
			ts := t0.Add(time.Duration(d)*24*time.Hour + time.Duration(i)*time.Hour)
			total += len(twoDays.Push(rec(ts, "2001:db8::1", "2001:db8:f::1", layers.ProtoTCP, 25)))
		}
	}
	total += len(twoDays.Close())
	if total != 10 {
		t.Errorf("two-day: %d survived, want 10", total)
	}
}

func TestArtifactFilterAggregatesBySlash64(t *testing.T) {
	f := NewArtifactFilter()
	// Two /128s in the same /64, each 4 packets to the same (dst,port):
	// combined 8 packets → 3 duplicates / 8 = 37.5% → the whole /64 drops.
	for i := 0; i < 4; i++ {
		f.Push(rec(t0.Add(time.Duration(i)*time.Second), "2001:db8:a::1", "2001:db8:f::1", layers.ProtoUDP, 500))
		f.Push(rec(t0.Add(time.Duration(i)*time.Second), "2001:db8:a::2", "2001:db8:f::1", layers.ProtoUDP, 500))
	}
	if out := f.Close(); len(out) != 0 {
		t.Errorf("%d survived, want 0 (per-/64 aggregation)", len(out))
	}
}

func TestFilterStatsPacketsIn(t *testing.T) {
	f := NewArtifactFilter()
	f.Push(rec(t0, "2001:db8::1", "2001:db8:f::1", layers.ProtoTCP, 22))
	f.Close()
	if f.Stats().PacketsIn != 1 {
		t.Errorf("PacketsIn = %d", f.Stats().PacketsIn)
	}
}
