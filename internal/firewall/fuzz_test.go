package firewall

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// fuzzSeedLog encodes the fixture-style records the package's unit
// tests use — valid multi-record logs, extreme timestamps, the zero
// record — so the fuzzer starts from structurally meaningful corpora
// rather than only random bytes.
func fuzzSeedLog() [][]byte {
	mk := func(recs ...Record) []byte {
		var b []byte
		for _, r := range recs {
			b = r.AppendBinary(b)
		}
		return b
	}
	t0 := time.Date(2021, 4, 1, 0, 0, 0, 0, time.UTC)
	r1 := Record{
		Time: t0, Src: netaddr6.MustAddr("2001:db8::1"), Dst: netaddr6.MustAddr("2001:db8:f::1"),
		Proto: layers.ProtoTCP, SrcPort: 40000, DstPort: 22, Length: 60,
	}
	r2 := r1
	r2.Time = t0.Add(time.Second)
	r2.Proto, r2.DstPort = layers.ProtoUDP, 53
	extreme := Record{
		Time: time.Unix(0, -1<<62).UTC(), Src: netaddr6.MustAddr("::"),
		Dst:   netaddr6.MustAddr("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff"),
		Proto: layers.IPProtocol(255), SrcPort: 65535, DstPort: 65535, Length: 65535,
	}
	full := mk(r1, r2, r1, r2, extreme, Record{})
	return [][]byte{
		nil,
		mk(r1),
		full,
		full[:len(full)-13],     // truncated trailing record
		full[:recordWireSize-1], // shorter than one record
		bytes.Repeat([]byte{0xff}, 3*recordWireSize),
	}
}

// FuzzFirewallReader is the binary-log decoder fuzz target: for any
// byte stream, Next and NextBatch must never panic or overread, and —
// the differential property — must decode the identical record
// sequence and agree on how the stream ends (clean EOF vs truncated
// record, including the reported trailing-byte count).
func FuzzFirewallReader(f *testing.F) {
	for _, seed := range fuzzSeedLog() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Reference: one record at a time.
		var nextRecs []Record
		var nextErr error
		rd := NewReader(bytes.NewReader(data))
		for {
			r, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				nextErr = err
				break
			}
			nextRecs = append(nextRecs, r)
		}

		// Bulk path at several batch sizes, always through the
		// io.EOF-with-records contract.
		for _, max := range []int{1, 3, 64} {
			var recs []Record
			var batchErr error
			rd := NewReader(bytes.NewReader(data))
			buf := make([]Record, 0, max)
			for {
				out, err := rd.NextBatch(buf[:0], max)
				recs = append(recs, out...)
				if err == io.EOF {
					break
				}
				if err != nil {
					batchErr = err
					break
				}
			}
			if len(recs) != len(nextRecs) {
				t.Fatalf("max=%d: NextBatch decoded %d records, Next %d", max, len(recs), len(nextRecs))
			}
			for i := range recs {
				if recs[i] != nextRecs[i] {
					t.Fatalf("max=%d: record %d differs:\nbatch %+v\n next %+v", max, i, recs[i], nextRecs[i])
				}
			}
			if (batchErr == nil) != (nextErr == nil) {
				t.Fatalf("max=%d: NextBatch err %v, Next err %v", max, batchErr, nextErr)
			}
			if batchErr != nil {
				if !errors.Is(batchErr, ErrShortRecord) || !errors.Is(nextErr, ErrShortRecord) {
					t.Fatalf("max=%d: unexpected error classes: batch %v, next %v", max, batchErr, nextErr)
				}
				if batchErr.Error() != nextErr.Error() {
					t.Fatalf("max=%d: truncation diagnostics disagree: batch %q, next %q", max, batchErr, nextErr)
				}
			}
		}

		// Decoded prefix must round-trip: len(recs)*wire bytes of input.
		var re []byte
		for _, r := range nextRecs {
			re = r.AppendBinary(re)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("decoded records do not round-trip the input prefix")
		}
	})
}
