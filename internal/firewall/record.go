// Package firewall models the paper's primary data source: unsolicited
// packets logged at the firewall of CDN machines. It defines the log
// record schema, a compact binary codec for log files, the collection
// policy (no TCP/80, no TCP/443, no ICMPv6 — Section 2.1), and the
// "5-duplicate" artifact pre-filter of Appendix A.1 that removes SMTP
// fallback and IPsec misconfiguration traffic before scan detection.
package firewall

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

// Record is one unsolicited packet logged by a machine's firewall.
// This is the schema every detector in this repository consumes; the
// CDN pipeline produces it from decoded frames, the MAWI pipeline from
// pcap records.
type Record struct {
	Time    time.Time
	Src     netip.Addr
	Dst     netip.Addr
	Proto   layers.IPProtocol
	SrcPort uint16
	DstPort uint16
	// Length is the IPv6 payload length plus the 40-byte fixed header:
	// the on-wire L3 packet size. The MAWI detector's packet-length
	// entropy criterion consumes it.
	Length uint16
}

// Service identifies a targeted service as protocol + destination port,
// the unit of the paper's port analyses ("TCP/22").
type Service struct {
	Proto layers.IPProtocol
	Port  uint16
}

// String renders the Table-3 style label, e.g. "TCP/22" or "ICMPv6".
func (s Service) String() string {
	if s.Proto == layers.ProtoICMPv6 {
		return "ICMPv6"
	}
	return fmt.Sprintf("%v/%d", s.Proto, s.Port)
}

// Service returns the record's targeted service.
func (r Record) Service() Service {
	return Service{Proto: r.Proto, Port: r.DstPort}
}

// FromDecoded converts a parsed frame into a log record.
func FromDecoded(ts time.Time, d *layers.Decoded) Record {
	return Record{
		Time:    ts,
		Src:     d.IPv6.Src,
		Dst:     d.IPv6.Dst,
		Proto:   d.Transport,
		SrcPort: d.SrcPort(),
		DstPort: d.DstPort(),
		Length:  d.IPv6.Length + 40,
	}
}

// CollectPolicy is the CDN logging policy of Section 2.1.
type CollectPolicy struct {
	// ExcludedTCPPorts are destination ports never logged because the
	// machines serve them (TCP/80 and TCP/443 at the CDN).
	ExcludedTCPPorts map[uint16]bool
	// LogICMPv6 is false at the CDN (ICMPv6 is not collected).
	LogICMPv6 bool
}

// DefaultCollectPolicy returns the paper's CDN policy.
func DefaultCollectPolicy() CollectPolicy {
	return CollectPolicy{
		ExcludedTCPPorts: map[uint16]bool{80: true, 443: true},
		LogICMPv6:        false,
	}
}

// Admit reports whether the policy logs this record.
func (p CollectPolicy) Admit(r Record) bool {
	if !netaddr6.IsIPv6(r.Src) || !netaddr6.IsIPv6(r.Dst) {
		return false
	}
	switch r.Proto {
	case layers.ProtoTCP:
		return !p.ExcludedTCPPorts[r.DstPort]
	case layers.ProtoICMPv6:
		return p.LogICMPv6
	default:
		return true
	}
}

// recordWireSize is the fixed encoded size of a Record.
const recordWireSize = 8 + 16 + 16 + 1 + 2 + 2 + 2 // 47

// RecordWireSize is the fixed encoded size of a Record in a binary
// log: the alignment unit for chunked decoding (PlanChunks) and for
// splitting log files at record boundaries.
const RecordWireSize = recordWireSize

// Errors returned by the codec.
var (
	ErrShortRecord = errors.New("firewall: short record")
)

// AppendBinary encodes r in the fixed 47-byte wire form.
func (r Record) AppendBinary(b []byte) []byte {
	var tmp [recordWireSize]byte
	binary.BigEndian.PutUint64(tmp[0:8], uint64(r.Time.UnixNano()))
	src, dst := r.Src.As16(), r.Dst.As16()
	copy(tmp[8:24], src[:])
	copy(tmp[24:40], dst[:])
	tmp[40] = uint8(r.Proto)
	binary.BigEndian.PutUint16(tmp[41:43], r.SrcPort)
	binary.BigEndian.PutUint16(tmp[43:45], r.DstPort)
	binary.BigEndian.PutUint16(tmp[45:47], r.Length)
	return append(b, tmp[:]...)
}

// DecodeBinary decodes a record from the fixed wire form.
func (r *Record) DecodeBinary(b []byte) error {
	if len(b) < recordWireSize {
		return ErrShortRecord
	}
	r.Time = time.Unix(0, int64(binary.BigEndian.Uint64(b[0:8]))).UTC()
	var a [16]byte
	copy(a[:], b[8:24])
	r.Src = netip.AddrFrom16(a)
	copy(a[:], b[24:40])
	r.Dst = netip.AddrFrom16(a)
	r.Proto = layers.IPProtocol(b[40])
	r.SrcPort = binary.BigEndian.Uint16(b[41:43])
	r.DstPort = binary.BigEndian.Uint16(b[43:45])
	r.Length = binary.BigEndian.Uint16(b[45:47])
	return nil
}

// Writer streams records to a log file in binary form.
type Writer struct {
	w   io.Writer
	buf []byte
	n   uint64
}

// NewWriter returns a log writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 64*recordWireSize)}
}

// Write appends one record, buffering internally; call Flush when done.
func (w *Writer) Write(r Record) error {
	w.buf = r.AppendBinary(w.buf)
	w.n++
	if len(w.buf) >= cap(w.buf)-recordWireSize {
		return w.Flush()
	}
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush writes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Reader streams records from a binary log file, one at a time (Next)
// or in bulk (NextBatch, the ingest hot path: one buffered read and a
// tight decode loop per batch instead of one read syscall-ish hop per
// record).
type Reader struct {
	r    io.Reader
	buf  [recordWireSize]byte
	bulk []byte
}

// NewReader returns a log reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record; io.EOF signals a clean end.
func (rd *Reader) Next() (Record, error) {
	if n, err := io.ReadFull(rd.r, rd.buf[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			// n is the actual partial length (the fuzz harness pins the
			// count against NextBatch's; this used to misreport the full
			// record size).
			return Record{}, fmt.Errorf("%w: trailing %d bytes", ErrShortRecord, n)
		}
		return Record{}, err
	}
	var r Record
	if err := r.DecodeBinary(rd.buf[:]); err != nil {
		return Record{}, err
	}
	return r, nil
}

// NextBatch decodes up to max records in one bulk read, appending them
// to dst (normally dst has len 0 and cap ≥ max, so the call does not
// allocate). It returns the extended slice and one of:
//
//   - nil — max records were decoded and more may follow;
//   - io.EOF — the stream ended cleanly; any final records are in the
//     returned slice (len > len(dst) is possible alongside io.EOF);
//   - another error — decoding stopped there (ErrShortRecord for a
//     truncated trailing record; records decoded before the error are
//     returned).
func (rd *Reader) NextBatch(dst []Record, max int) ([]Record, error) {
	if max <= 0 {
		return dst, nil
	}
	need := max * recordWireSize
	// Grow on demand, but also re-allocate smaller once the requested
	// batch drops well below the buffer: without the second arm, one
	// huge batch request pins its buffer for the reader's lifetime. The
	// floor keeps small-batch callers from thrashing allocations.
	if cap(rd.bulk) < need ||
		(cap(rd.bulk) >= bulkShrinkFactor*need && cap(rd.bulk) > bulkRetainBytes) {
		rd.bulk = make([]byte, need)
	}
	buf := rd.bulk[:need]
	n, err := io.ReadFull(rd.r, buf)
	dst = appendDecoded(dst, buf[:n-n%recordWireSize])
	switch err {
	case nil:
		return dst, nil
	case io.EOF:
		// Read nothing: clean end of stream.
		return dst, io.EOF
	case io.ErrUnexpectedEOF:
		if rem := n % recordWireSize; rem != 0 {
			return dst, fmt.Errorf("%w: trailing %d bytes", ErrShortRecord, rem)
		}
		return dst, io.EOF
	default:
		return dst, err
	}
}

// Bulk-buffer right-sizing policy: shrink when the buffer is at least
// bulkShrinkFactor times the current need, but never below
// bulkRetainBytes (small buffers are cheap to keep and expensive to
// thrash).
const (
	bulkShrinkFactor = 4
	bulkRetainBytes  = 64 * recordWireSize
)

// appendDecoded bulk-decodes the record-aligned buf into dst. It is
// the shared decode loop of NextBatch and DecodeChunk; buf's length
// must be a multiple of recordWireSize.
func appendDecoded(dst []Record, buf []byte) []Record {
	for i := 0; i+recordWireSize <= len(buf); i += recordWireSize {
		var r Record
		// Length is fixed and pre-checked, so DecodeBinary cannot fail.
		r.DecodeBinary(buf[i : i+recordWireSize])
		dst = append(dst, r)
	}
	return dst
}

// Chunk is a contiguous byte range of a binary log, planned by
// PlanChunks for one decode worker.
type Chunk struct {
	Offset int64
	Length int64
}

// Records returns the number of complete records in the chunk.
func (c Chunk) Records() int { return int(c.Length / recordWireSize) }

// PlanChunks splits a log of size bytes into at most n contiguous
// record-aligned chunks covering [0, size) exactly. Records are spread
// near-evenly (every chunk but the last holds ceil(records/n) whole
// records), so the plan is deterministic for a given (size, n). Any
// trailing partial-record bytes ride the last chunk, where DecodeChunk
// reproduces the serial reader's ErrShortRecord diagnostic. A size
// smaller than one record yields a single chunk holding just those
// trailing bytes; a non-positive size yields no chunks.
func PlanChunks(size int64, n int) []Chunk {
	if size <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	records := size / recordWireSize
	per := (records + int64(n) - 1) / int64(n) // records per chunk, ≥ 0
	if per == 0 {
		// Fewer bytes than one record: a single trailing-bytes chunk.
		return []Chunk{{Offset: 0, Length: size}}
	}
	chunks := make([]Chunk, 0, (records+per-1)/per)
	for off := int64(0); off < records*recordWireSize; off += per * recordWireSize {
		length := per * recordWireSize
		if rest := records*recordWireSize - off; length > rest {
			length = rest
		}
		chunks = append(chunks, Chunk{Offset: off, Length: length})
	}
	chunks[len(chunks)-1].Length += size - records*recordWireSize
	return chunks
}

// DecodeChunk bulk-decodes every complete record in buf, appending to
// dst (normally len 0, cap ≥ len(buf)/RecordWireSize, so the call does
// not allocate). Trailing bytes that do not form a whole record yield
// the same "trailing N bytes" ErrShortRecord the serial reader
// reports, with the decoded records still returned — so a chunked
// decode of a truncated log fails with a byte-identical error to
// Reader.NextBatch.
func DecodeChunk(buf []byte, dst []Record) ([]Record, error) {
	dst = appendDecoded(dst, buf)
	if rem := len(buf) % recordWireSize; rem != 0 {
		return dst, fmt.Errorf("%w: trailing %d bytes", ErrShortRecord, rem)
	}
	return dst, nil
}
