package firewall

import (
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/netaddr6"
)

// ArtifactFilter implements the CDN artifact pre-filter of Section 2.1
// and Appendix A.1: for each UTC day, a source /64 is dropped entirely
// if more than MaxDupShare of its packets are "k-duplicates" — packets
// hitting a (destination IP, destination port) pair that receives more
// than DupThreshold packets from that source over the course of the
// day. This removes repeated failing connection attempts (SMTP
// fallback to AAAA records, ISAKMP re-tries) which otherwise mimic
// scans by touching many telescope addresses.
//
// The filter is port-agnostic by design: the paper filters on the
// duplicate *pattern*, not on port numbers, since any port may also be
// scanned legitimately.
//
// Records are buffered per day and emitted when the day completes, so
// input must be time-ordered across days (the order log files are
// written in). Within a day, any order is accepted.
type ArtifactFilter struct {
	// DupThreshold is the per-(dst,port) daily packet count above which
	// further packets count as duplicates (paper: 5).
	DupThreshold int
	// MaxDupShare is the duplicate share above which the source /64 is
	// dropped for the day (paper: 0.30).
	MaxDupShare float64

	day     time.Time // start of the buffered UTC day; zero when empty
	sources map[netip.Prefix]*daySource
	stats   FilterStats
}

type daySource struct {
	records []Record
	// dupCount counts packets per (dst, proto, port) triple.
	dupCount map[dupKey]int
}

type dupKey struct {
	dst netip.Addr
	svc Service
}

// FilterStats accumulates what the filter removed, powering the
// Appendix A.1 analysis (ISAKMP and SMTP dominate filtered traffic).
type FilterStats struct {
	PacketsIn           uint64
	PacketsDropped      uint64
	SourcesDropped      uint64
	DroppedByService    map[Service]uint64
	DroppedSrcByService map[Service]map[netip.Prefix]struct{}
}

// NewArtifactFilter returns a filter with the paper's parameters
// (5-duplicate, 30% share).
func NewArtifactFilter() *ArtifactFilter {
	return &ArtifactFilter{
		DupThreshold: 5,
		MaxDupShare:  0.30,
		sources:      make(map[netip.Prefix]*daySource),
		stats: FilterStats{
			DroppedByService:    make(map[Service]uint64),
			DroppedSrcByService: make(map[Service]map[netip.Prefix]struct{}),
		},
	}
}

// Push adds one record. If the record starts a new UTC day, the
// previous day is finalized and its surviving records returned in
// timestamp order.
func (f *ArtifactFilter) Push(r Record) []Record {
	day := r.Time.UTC().Truncate(24 * time.Hour)
	var out []Record
	if !f.day.IsZero() && day.After(f.day) {
		out = f.flush()
	}
	f.day = day
	f.stats.PacketsIn++
	src := netaddr6.Aggregate(r.Src, netaddr6.Agg64)
	ds := f.sources[src]
	if ds == nil {
		ds = &daySource{dupCount: make(map[dupKey]int)}
		f.sources[src] = ds
	}
	ds.records = append(ds.records, r)
	ds.dupCount[dupKey{dst: r.Dst, svc: r.Service()}]++
	return out
}

// Close finalizes the buffered day and returns its surviving records.
func (f *ArtifactFilter) Close() []Record {
	out := f.flush()
	f.day = time.Time{}
	return out
}

// Stats returns what has been filtered so far. Valid after flushes;
// callers typically read it after Close.
func (f *ArtifactFilter) Stats() FilterStats { return f.stats }

func (f *ArtifactFilter) flush() []Record {
	var out []Record
	// Deterministic iteration: sort sources.
	srcs := make([]netip.Prefix, 0, len(f.sources))
	for p := range f.sources {
		srcs = append(srcs, p)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Addr().Compare(srcs[j].Addr()) < 0 })
	for _, p := range srcs {
		ds := f.sources[p]
		if f.isArtifact(ds) {
			f.stats.SourcesDropped++
			f.stats.PacketsDropped += uint64(len(ds.records))
			for _, r := range ds.records {
				svc := r.Service()
				f.stats.DroppedByService[svc]++
				set := f.stats.DroppedSrcByService[svc]
				if set == nil {
					set = make(map[netip.Prefix]struct{})
					f.stats.DroppedSrcByService[svc] = set
				}
				set[p] = struct{}{}
			}
			continue
		}
		out = append(out, ds.records...)
	}
	f.sources = make(map[netip.Prefix]*daySource)
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// isArtifact applies the k-duplicate share rule to one source-day.
func (f *ArtifactFilter) isArtifact(ds *daySource) bool {
	if len(ds.records) == 0 {
		return false
	}
	var dupPackets int
	for _, cnt := range ds.dupCount {
		if cnt > f.DupThreshold {
			// Packets beyond the threshold are the duplicates.
			dupPackets += cnt - f.DupThreshold
		}
	}
	return float64(dupPackets)/float64(len(ds.records)) > f.MaxDupShare
}

// TopFilteredServices returns the services that dominate dropped
// traffic, ordered by dropped packets (Appendix A.1: UDP/500 and
// TCP/25 lead).
func (s FilterStats) TopFilteredServices(n int) []ServiceCount {
	out := make([]ServiceCount, 0, len(s.DroppedByService))
	for svc, c := range s.DroppedByService {
		out = append(out, ServiceCount{
			Service: svc,
			Packets: c,
			Sources: uint64(len(s.DroppedSrcByService[svc])),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Service.String() < out[j].Service.String()
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ServiceCount pairs a service with dropped packet/source counts.
type ServiceCount struct {
	Service Service
	Packets uint64
	Sources uint64
}
