package firewall

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"v6scan/internal/layers"
)

// encodeRecords writes n sequential records and returns the log bytes
// and the expected decode.
func encodeRecords(t *testing.T, n int) ([]byte, []Record) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var want []Record
	for i := 0; i < n; i++ {
		r := rec(t0.Add(time.Duration(i)*time.Second), "2001:db8::1", "2001:db8:f::2", layers.ProtoTCP, uint16(i))
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), want
}

func TestNextBatchRoundTrip(t *testing.T) {
	data, want := encodeRecords(t, 500)
	for _, max := range []int{1, 7, 100, 500, 512} {
		rd := NewReader(bytes.NewReader(data))
		buf := make([]Record, 0, max)
		var got []Record
		for {
			recs, err := rd.NextBatch(buf[:0], max)
			got = append(got, recs...)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("max=%d: %v", max, err)
			}
			if len(recs) != max {
				t.Fatalf("max=%d: non-final batch of %d", max, len(recs))
			}
			buf = recs[:0]
		}
		if len(got) != len(want) {
			t.Fatalf("max=%d: decoded %d records, want %d", max, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("max=%d: record %d mismatch", max, i)
			}
		}
	}
}

// TestNextBatchMatchesNext verifies bulk and single-record decoding
// agree byte for byte over the same stream.
func TestNextBatchMatchesNext(t *testing.T) {
	data, _ := encodeRecords(t, 97)
	single := NewReader(bytes.NewReader(data))
	bulk := NewReader(bytes.NewReader(data))
	got, err := bulk.NextBatch(nil, 1000)
	if err != io.EOF {
		t.Fatalf("NextBatch err = %v, want io.EOF with final records", err)
	}
	for i := 0; ; i++ {
		r, err := single.Next()
		if err == io.EOF {
			if i != len(got) {
				t.Fatalf("Next yielded %d records, NextBatch %d", i, len(got))
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if i >= len(got) || got[i] != r {
			t.Fatalf("record %d differs between Next and NextBatch", i)
		}
	}
}

func TestNextBatchEmptyStream(t *testing.T) {
	rd := NewReader(bytes.NewReader(nil))
	recs, err := rd.NextBatch(nil, 16)
	if err != io.EOF || len(recs) != 0 {
		t.Fatalf("got %d records, err %v; want 0, io.EOF", len(recs), err)
	}
}

func TestNextBatchTruncatedTail(t *testing.T) {
	data, _ := encodeRecords(t, 10)
	rd := NewReader(bytes.NewReader(data[:len(data)-5]))
	recs, err := rd.NextBatch(nil, 16)
	if !errors.Is(err, ErrShortRecord) {
		t.Fatalf("err = %v, want ErrShortRecord", err)
	}
	if len(recs) != 9 {
		t.Fatalf("decoded %d complete records before the truncation, want 9", len(recs))
	}
}

func TestNextBatchZeroMax(t *testing.T) {
	data, _ := encodeRecords(t, 3)
	rd := NewReader(bytes.NewReader(data))
	if recs, err := rd.NextBatch(nil, 0); err != nil || len(recs) != 0 {
		t.Fatalf("max=0: got %d records, err %v", len(recs), err)
	}
	// The stream must be untouched; a full batch reports nil (EOF
	// surfaces on the following call).
	recs, err := rd.NextBatch(nil, 3)
	if err != nil || len(recs) != 3 {
		t.Fatalf("after max=0: got %d records, err %v", len(recs), err)
	}
	if recs, err = rd.NextBatch(nil, 3); err != io.EOF || len(recs) != 0 {
		t.Fatalf("at end: got %d records, err %v; want 0, io.EOF", len(recs), err)
	}
}

// TestNextBatchNoAllocSteadyState pins the hot-path property the bulk
// decoder exists for: with a caller-owned batch buffer of sufficient
// capacity, steady-state decoding performs no allocations beyond the
// reader's one-time bulk buffer.
func TestNextBatchNoAllocSteadyState(t *testing.T) {
	data, _ := encodeRecords(t, 256)
	rd := NewReader(bytes.NewReader(data))
	buf := make([]Record, 0, 64)
	// Warm up: first call sizes the reader's internal bulk buffer.
	if _, err := rd.NextBatch(buf[:0], 64); err != nil {
		t.Fatal(err)
	}
	src := bytes.NewReader(data)
	allocs := testing.AllocsPerRun(20, func() {
		src.Seek(0, io.SeekStart)
		rd2 := rd // reuse the same reader's bulk buffer
		rd2.r = src
		for {
			recs, err := rd2.NextBatch(buf[:0], 64)
			_ = recs
			if err != nil {
				return
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state NextBatch allocated %.1f times per run", allocs)
	}
}
