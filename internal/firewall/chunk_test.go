package firewall

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestPlanChunksInvariants checks the planner's contract over a grid
// of sizes and worker counts: chunks are contiguous from offset 0,
// cover the size exactly, every chunk but the last is record-aligned,
// and record counts are near-even.
func TestPlanChunksInvariants(t *testing.T) {
	sizes := []int64{0, 1, 46, 47, 48, 94, 47 * 7, 47*1000 + 13, 47 * 4096}
	for _, size := range sizes {
		for _, n := range []int{1, 2, 3, 8, 100} {
			chunks := PlanChunks(size, n)
			if size <= 0 {
				if chunks != nil {
					t.Fatalf("size=%d n=%d: want nil plan, got %v", size, n, chunks)
				}
				continue
			}
			if len(chunks) == 0 || len(chunks) > n {
				t.Fatalf("size=%d n=%d: %d chunks", size, n, len(chunks))
			}
			var off int64
			for i, c := range chunks {
				if c.Offset != off {
					t.Fatalf("size=%d n=%d: chunk %d offset %d, want %d", size, n, i, c.Offset, off)
				}
				if c.Length <= 0 {
					t.Fatalf("size=%d n=%d: chunk %d empty", size, n, i)
				}
				if i < len(chunks)-1 && c.Length%RecordWireSize != 0 {
					t.Fatalf("size=%d n=%d: non-final chunk %d unaligned (%d bytes)", size, n, i, c.Length)
				}
				off += c.Length
			}
			if off != size {
				t.Fatalf("size=%d n=%d: plan covers %d bytes", size, n, off)
			}
			// Near-even: no chunk holds more than ceil(records/n) records.
			records := size / RecordWireSize
			per := (records + int64(n) - 1) / int64(n)
			for i, c := range chunks {
				if records > 0 && int64(c.Records()) > per {
					t.Fatalf("size=%d n=%d: chunk %d holds %d records, cap %d", size, n, i, c.Records(), per)
				}
			}
		}
	}
}

// TestDecodeChunksMatchSerial decodes a log chunk-by-chunk and checks
// the concatenation equals the serial NextBatch decode, including for
// a truncated log where the final chunk must reproduce the serial
// trailing-bytes error text.
func TestDecodeChunksMatchSerial(t *testing.T) {
	data, want := encodeRecords(t, 333)
	for _, cut := range []int{0, 13} { // clean log and truncated tail
		data := data[:len(data)-cut]
		want := want[:len(data)/RecordWireSize] // complete records only
		for _, n := range []int{1, 2, 5, 8} {
			var got []Record
			var gotErr error
			for _, c := range PlanChunks(int64(len(data)), n) {
				recs, err := DecodeChunk(data[c.Offset:c.Offset+c.Length], nil)
				got = append(got, recs...)
				if err != nil {
					gotErr = err
				}
			}
			if len(got) != len(want) {
				t.Fatalf("cut=%d n=%d: decoded %d records, want %d", cut, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("cut=%d n=%d: record %d mismatch", cut, n, i)
				}
			}
			// The chunked error must be byte-identical to the serial one.
			rd := NewReader(bytes.NewReader(data))
			var serialErr error
			for {
				_, err := rd.NextBatch(nil, 64)
				if err == io.EOF {
					break
				}
				if err != nil {
					serialErr = err
					break
				}
			}
			if (gotErr == nil) != (serialErr == nil) {
				t.Fatalf("cut=%d n=%d: chunked err %v, serial err %v", cut, n, gotErr, serialErr)
			}
			if gotErr != nil {
				if gotErr.Error() != serialErr.Error() {
					t.Fatalf("cut=%d n=%d: chunked err %q, serial err %q", cut, n, gotErr, serialErr)
				}
				if !errors.Is(gotErr, ErrShortRecord) {
					t.Fatalf("cut=%d n=%d: err %v not ErrShortRecord", cut, n, gotErr)
				}
			}
		}
	}
}

// TestDecodeChunkSubRecord covers the degenerate plan for a log
// shorter than one record: a single chunk whose decode yields zero
// records and the trailing-bytes error.
func TestDecodeChunkSubRecord(t *testing.T) {
	chunks := PlanChunks(20, 4)
	if len(chunks) != 1 || chunks[0].Length != 20 {
		t.Fatalf("plan = %v, want one 20-byte chunk", chunks)
	}
	recs, err := DecodeChunk(make([]byte, 20), nil)
	if len(recs) != 0 || !errors.Is(err, ErrShortRecord) {
		t.Fatalf("got %d records, err %v", len(recs), err)
	}
}

// TestNextBatchBulkRightSizing pins the fix for the bulk buffer being
// pinned at the largest batch ever requested: when a caller settles
// into much smaller batches the reader re-allocates a right-sized
// buffer, while buffers at or below the retain floor are kept to avoid
// thrash.
func TestNextBatchBulkRightSizing(t *testing.T) {
	data, want := encodeRecords(t, 600)
	rd := NewReader(bytes.NewReader(data))
	recs, err := rd.NextBatch(make([]Record, 0, 512), 512)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]Record(nil), recs...)
	if cap(rd.bulk) != 512*recordWireSize {
		t.Fatalf("after 512-record batch: bulk cap %d, want %d", cap(rd.bulk), 512*recordWireSize)
	}

	// Dropping to 8-record batches right-sizes the buffer on the next
	// call, and decoding stays correct across the re-allocation.
	for {
		recs, err := rd.NextBatch(nil, 8)
		got = append(got, recs...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if cap(rd.bulk) != 8*recordWireSize {
		t.Fatalf("after 8-record batches: bulk cap %d, want %d", cap(rd.bulk), 8*recordWireSize)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records across the resize, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch after resize", i)
		}
	}

	// Below the retain floor the buffer is kept even when the request
	// shrinks further: 64 records is exactly the floor.
	rd2 := NewReader(bytes.NewReader(data))
	if _, err := rd2.NextBatch(nil, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := rd2.NextBatch(nil, 1); err != nil {
		t.Fatal(err)
	}
	if cap(rd2.bulk) != 64*recordWireSize {
		t.Fatalf("sub-floor buffer was resized: cap %d, want %d", cap(rd2.bulk), 64*recordWireSize)
	}
}
