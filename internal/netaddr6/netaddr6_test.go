package netaddr6

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestU128RoundTrip(t *testing.T) {
	cases := []string{
		"::",
		"::1",
		"2001:db8::",
		"2001:db8:ffff:eeee:dddd:cccc:bbbb:aaaa",
		"ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff",
		"fe80::1",
	}
	for _, s := range cases {
		a := MustAddr(s)
		got := ToU128(a).ToAddr()
		if got != a {
			t.Errorf("round trip %s: got %s", s, got)
		}
	}
}

func TestU128RoundTripQuick(t *testing.T) {
	f := func(hi, lo uint64) bool {
		u := U128{Hi: hi, Lo: lo}
		return ToU128(u.ToAddr()) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128Bit(t *testing.T) {
	a := MustAddr("8000::1") // bit 0 set, bit 127 set
	u := ToU128(a)
	if u.Bit(0) != 1 {
		t.Errorf("bit 0 = %d, want 1", u.Bit(0))
	}
	if u.Bit(127) != 1 {
		t.Errorf("bit 127 = %d, want 1", u.Bit(127))
	}
	for _, i := range []int{1, 63, 64, 126} {
		if u.Bit(i) != 0 {
			t.Errorf("bit %d = %d, want 0", i, u.Bit(i))
		}
	}
}

func TestU128SetBitInverseQuick(t *testing.T) {
	f := func(hi, lo uint64, pos uint8) bool {
		i := int(pos) % 128
		u := U128{Hi: hi, Lo: lo}
		set := u.SetBit(i, 1)
		clr := u.SetBit(i, 0)
		return set.Bit(i) == 1 && clr.Bit(i) == 0 &&
			set.SetBit(i, 0) == clr && clr.SetBit(i, 1) == set
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128MaskMatchesPrefix(t *testing.T) {
	f := func(hi, lo uint64, plenRaw uint8) bool {
		plen := int(plenRaw) % 129
		u := U128{Hi: hi, Lo: lo}
		a := u.ToAddr()
		p, err := a.Prefix(plen)
		if err != nil {
			return false
		}
		return u.Mask(plen).ToAddr() == p.Addr()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestU128Add(t *testing.T) {
	u := U128{Hi: 0, Lo: ^uint64(0)}
	got := u.Add(1)
	want := U128{Hi: 1, Lo: 0}
	if got != want {
		t.Errorf("Add carry: got %+v want %+v", got, want)
	}
	if (U128{}).Add(5) != (U128{Lo: 5}) {
		t.Error("Add basic failed")
	}
}

func TestAggregate(t *testing.T) {
	a := MustAddr("2001:db8:1:2:3:4:5:6")
	tests := []struct {
		level AggLevel
		want  string
	}{
		{Agg128, "2001:db8:1:2:3:4:5:6/128"},
		{Agg64, "2001:db8:1:2::/64"},
		{Agg48, "2001:db8:1::/48"},
		{Agg32, "2001:db8::/32"},
	}
	for _, tt := range tests {
		got := Aggregate(a, tt.level)
		if got != MustPrefix(tt.want) {
			t.Errorf("Aggregate(%s) = %s, want %s", tt.level, got, tt.want)
		}
	}
}

func TestAggregatePanicsOnIPv4(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for IPv4 address")
		}
	}()
	Aggregate(netip.MustParseAddr("192.0.2.1"), Agg64)
}

func TestAggLevelString(t *testing.T) {
	if Agg64.String() != "/64" {
		t.Errorf("got %q", Agg64.String())
	}
	if !Agg48.Valid() || AggLevel(0).Valid() || AggLevel(129).Valid() {
		t.Error("Valid() misbehaves")
	}
}

func TestIIDAndWithIID(t *testing.T) {
	a := MustAddr("2001:db8::dead:beef")
	if IID(a) != 0xdeadbeef {
		t.Errorf("IID = %x", IID(a))
	}
	b := WithIID(a, 0x1234)
	if b != MustAddr("2001:db8::1234") {
		t.Errorf("WithIID = %s", b)
	}
}

func TestHammingWeightIID(t *testing.T) {
	tests := []struct {
		addr string
		want int
	}{
		{"2001:db8::", 0},
		{"2001:db8::1", 1},
		{"2001:db8::3", 2},
		{"2001:db8::ffff:ffff:ffff:ffff", 64},
		{"ffff:ffff:ffff:ffff::", 0}, // high bits don't count
	}
	for _, tt := range tests {
		if got := HammingWeightIID(MustAddr(tt.addr)); got != tt.want {
			t.Errorf("HW(%s) = %d, want %d", tt.addr, got, tt.want)
		}
	}
}

func TestHammingDistanceSymmetricQuick(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64) bool {
		a := U128{h1, l1}.ToAddr()
		b := U128{h2, l2}.ToAddr()
		d := HammingDistance(a, b)
		return d == HammingDistance(b, a) &&
			d >= 0 && d <= 128 &&
			(d == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSameSlash(t *testing.T) {
	a := MustAddr("2001:db8::1:0")
	b := MustAddr("2001:db8::1:7")
	c := MustAddr("2001:db8::2:0")
	if !SameSlash(a, b, 124) {
		t.Error("a,b should share /124")
	}
	if SameSlash(a, c, 124) {
		t.Error("a,c should not share /124")
	}
	if !SameSlash(a, c, 108) {
		t.Error("a,c should share /108")
	}
	if !SameSlash(a, c, 0) {
		t.Error("everything shares /0")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"2001:db8::", "2001:db8::", 128},
		{"2001:db8::", "2001:db8::1", 127},
		{"8000::", "::", 0},
		{"2001:db8::", "2001:db9::", 31},
	}
	for _, tt := range tests {
		if got := CommonPrefixLen(MustAddr(tt.a), MustAddr(tt.b)); got != tt.want {
			t.Errorf("CommonPrefixLen(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCommonPrefixConsistentWithSameSlashQuick(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64, plenRaw uint8) bool {
		a := U128{h1, l1}.ToAddr()
		b := U128{h2, l2}.ToAddr()
		plen := int(plenRaw) % 129
		return SameSlash(a, b, plen) == (CommonPrefixLen(a, b) >= plen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFirstLast(t *testing.T) {
	p := MustPrefix("2001:db8::/64")
	if First(p) != MustAddr("2001:db8::") {
		t.Errorf("First = %s", First(p))
	}
	if Last(p) != MustAddr("2001:db8::ffff:ffff:ffff:ffff") {
		t.Errorf("Last = %s", Last(p))
	}
	p32 := MustPrefix("2001:db8::/32")
	if Last(p32) != MustAddr("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff") {
		t.Errorf("Last /32 = %s", Last(p32))
	}
	host := MustPrefix("2001:db8::5/128")
	if First(host) != Last(host) {
		t.Error("host prefix first != last")
	}
}

func TestPrefixContains(t *testing.T) {
	p32 := MustPrefix("2001:db8::/32")
	p48 := MustPrefix("2001:db8:5::/48")
	if !PrefixContains(p32, p48) {
		t.Error("/32 should contain /48")
	}
	if PrefixContains(p48, p32) {
		t.Error("/48 should not contain /32")
	}
	other := MustPrefix("2001:db9::/48")
	if PrefixContains(p32, other) {
		t.Error("disjoint prefixes")
	}
}

func TestRandomAddrInStaysInPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ps := range []string{"2001:db8::/32", "2001:db8:1::/48", "2001:db8:1:2::/64", "2001:db8::1/128"} {
		p := MustPrefix(ps)
		for i := 0; i < 200; i++ {
			a := RandomAddrIn(p, rng)
			if !p.Contains(a) {
				t.Fatalf("RandomAddrIn(%s) produced %s outside prefix", p, a)
			}
		}
	}
}

func TestRandomAddrInCoversSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := MustPrefix("2001:db8::/64")
	seen := map[netip.Addr]bool{}
	for i := 0; i < 100; i++ {
		seen[RandomAddrIn(p, rng)] = true
	}
	if len(seen) < 99 {
		t.Errorf("expected ~100 distinct random addresses, got %d", len(seen))
	}
}

func TestLowHammingAddrIn(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := MustPrefix("2001:db8:1:2::/64")
	for i := 0; i < 500; i++ {
		a := LowHammingAddrIn(p, 6, rng)
		if !p.Contains(a) {
			t.Fatalf("address %s escaped prefix", a)
		}
		if hw := HammingWeightIID(a); hw > 6 {
			t.Fatalf("HW %d > 6 for %s", hw, a)
		}
	}
}

func TestLowBitsVariedAddr(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := MustAddr("2001:db8::100")
	seen := map[netip.Addr]bool{}
	for i := 0; i < 300; i++ {
		a := LowBitsVariedAddr(base, 8, rng)
		if CommonPrefixLen(base, a) < 120 {
			t.Fatalf("varied more than 8 bits: %s", a)
		}
		seen[a] = true
	}
	// 8 bits of variation => at most 256 distinct addresses, and with 300
	// samples we should see a decent spread.
	if len(seen) < 100 || len(seen) > 256 {
		t.Errorf("unexpected distinct count %d", len(seen))
	}
	if got := LowBitsVariedAddr(base, 0, rng); got != base {
		t.Error("vary=0 should be identity")
	}
}

func TestSequentialAddrs(t *testing.T) {
	base := MustAddr("2001:db8::fffe")
	got := SequentialAddrs(base, 4, 1)
	want := []string{"2001:db8::fffe", "2001:db8::ffff", "2001:db8::1:0", "2001:db8::1:1"}
	for i, w := range want {
		if got[i] != MustAddr(w) {
			t.Errorf("seq[%d] = %s, want %s", i, got[i], w)
		}
	}
}

func TestRandomSubprefix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := MustPrefix("2001:db8::/32")
	for i := 0; i < 100; i++ {
		sp := RandomSubprefix(p, 48, rng)
		if sp.Bits() != 48 || !PrefixContains(p, sp) {
			t.Fatalf("bad subprefix %s", sp)
		}
	}
}

func TestNthSubprefix(t *testing.T) {
	p := MustPrefix("2001:db8::/32")
	sp0 := NthSubprefix(p, 48, 0)
	if sp0 != MustPrefix("2001:db8::/48") {
		t.Errorf("0th = %s", sp0)
	}
	sp1 := NthSubprefix(p, 48, 1)
	if sp1 != MustPrefix("2001:db8:1::/48") {
		t.Errorf("1st = %s", sp1)
	}
	// Wraps modulo 2^16 inside /32 → /48.
	if NthSubprefix(p, 48, 1<<16) != sp0 {
		t.Error("expected wrap-around")
	}
	// Distinctness for sequential indexes.
	seen := map[netip.Prefix]bool{}
	for i := uint64(0); i < 64; i++ {
		seen[NthSubprefix(p, 48, i)] = true
	}
	if len(seen) != 64 {
		t.Errorf("expected 64 distinct subprefixes, got %d", len(seen))
	}
}

func TestNthSubprefixDeepSplit(t *testing.T) {
	// Splitting a /64 into /96s crosses the Hi/Lo boundary.
	p := MustPrefix("2001:db8:0:1::/64")
	sp := NthSubprefix(p, 96, 5)
	if sp != MustPrefix("2001:db8:0:1:0:5::/96") {
		t.Errorf("got %s", sp)
	}
}

func TestGaussianIIDAddr(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := MustAddr("2001:db8::")
	n := 2000
	sum := 0
	for i := 0; i < n; i++ {
		sum += HammingWeightIID(GaussianIIDAddr(base, rng))
	}
	mean := float64(sum) / float64(n)
	if mean < 30 || mean > 34 {
		t.Errorf("mean HW of random IIDs = %.2f, want ≈32", mean)
	}
}

func TestIsIPv6(t *testing.T) {
	if IsIPv6(netip.MustParseAddr("192.0.2.1")) {
		t.Error("IPv4 accepted")
	}
	if IsIPv6(netip.MustParseAddr("::ffff:192.0.2.1")) {
		t.Error("IPv4-mapped accepted")
	}
	if !IsIPv6(MustAddr("2001:db8::1")) {
		t.Error("IPv6 rejected")
	}
	var zero netip.Addr
	if IsIPv6(zero) {
		t.Error("zero Addr accepted")
	}
}

func TestU128CmpQuick(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64) bool {
		a, b := U128{h1, l1}, U128{h2, l2}
		c := a.Cmp(b)
		return c == -b.Cmp(a) && (c == 0) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
