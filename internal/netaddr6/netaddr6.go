// Package netaddr6 provides IPv6 address manipulation helpers used across
// the v6scan library: 128-bit integer views of addresses, prefix
// aggregation to the levels the paper analyzes (/32, /48, /64, /128),
// interface-identifier (IID) extraction and synthesis, Hamming-weight
// computation, and "nearby" predicates used for target-provenance
// analysis.
//
// All functions operate on netip.Addr and netip.Prefix from the standard
// library. IPv4 and IPv4-mapped addresses are rejected or return zero
// values; this library is deliberately IPv6-only, mirroring the paper's
// scope.
package netaddr6

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
)

// U128 is an unsigned 128-bit integer view of an IPv6 address. It exists
// because netip.Addr does not expose arithmetic, and the radix trie,
// address generators, and Hamming analyses all need cheap bit
// manipulation.
type U128 struct {
	Hi uint64 // most-significant 64 bits (network part for /64s)
	Lo uint64 // least-significant 64 bits (the IID for /64-addressed hosts)
}

// ToU128 converts an IPv6 address to its 128-bit integer view.
// The address must be a valid IPv6 address (Is6 or 4-in-6 excluded);
// callers that may hold IPv4 addresses should check IsIPv6 first.
func ToU128(a netip.Addr) U128 {
	b := a.As16()
	return U128{
		Hi: binary.BigEndian.Uint64(b[0:8]),
		Lo: binary.BigEndian.Uint64(b[8:16]),
	}
}

// ToAddr converts a 128-bit integer view back to a netip.Addr.
func (u U128) ToAddr() netip.Addr {
	var b [16]byte
	binary.BigEndian.PutUint64(b[0:8], u.Hi)
	binary.BigEndian.PutUint64(b[8:16], u.Lo)
	return netip.AddrFrom16(b)
}

// Xor returns the bitwise exclusive-or of two 128-bit values.
func (u U128) Xor(v U128) U128 {
	return U128{Hi: u.Hi ^ v.Hi, Lo: u.Lo ^ v.Lo}
}

// And returns the bitwise and of two 128-bit values.
func (u U128) And(v U128) U128 {
	return U128{Hi: u.Hi & v.Hi, Lo: u.Lo & v.Lo}
}

// Or returns the bitwise or of two 128-bit values.
func (u U128) Or(v U128) U128 {
	return U128{Hi: u.Hi | v.Hi, Lo: u.Lo | v.Lo}
}

// Add returns u+d with wrap-around, treating u as a big-endian 128-bit
// unsigned integer. Useful for sequential target generation.
func (u U128) Add(d uint64) U128 {
	lo, carry := bits.Add64(u.Lo, d, 0)
	return U128{Hi: u.Hi + carry, Lo: lo}
}

// Bit returns the bit at position i, where i=0 is the most-significant
// bit of the address (the leftmost bit of the first byte). This matches
// prefix-length semantics: bits [0, plen) form the prefix.
func (u U128) Bit(i int) int {
	if i < 64 {
		return int(u.Hi >> (63 - i) & 1)
	}
	return int(u.Lo >> (127 - i) & 1)
}

// SetBit returns a copy of u with bit i (MSB-first indexing) set to v
// (0 or 1).
func (u U128) SetBit(i, v int) U128 {
	if i < 64 {
		mask := uint64(1) << (63 - i)
		if v == 0 {
			u.Hi &^= mask
		} else {
			u.Hi |= mask
		}
		return u
	}
	mask := uint64(1) << (127 - i)
	if v == 0 {
		u.Lo &^= mask
	} else {
		u.Lo |= mask
	}
	return u
}

// OnesCount returns the number of set bits in the 128-bit value.
func (u U128) OnesCount() int {
	return bits.OnesCount64(u.Hi) + bits.OnesCount64(u.Lo)
}

// LeadingZeros returns the number of leading zero bits (MSB-first).
func (u U128) LeadingZeros() int {
	if u.Hi != 0 {
		return bits.LeadingZeros64(u.Hi)
	}
	return 64 + bits.LeadingZeros64(u.Lo)
}

// Mask returns u with all bits beyond plen cleared (network mask).
func (u U128) Mask(plen int) U128 {
	switch {
	case plen <= 0:
		return U128{}
	case plen >= 128:
		return u
	case plen <= 64:
		return U128{Hi: u.Hi &^ (^uint64(0) >> plen)}
	default:
		return U128{Hi: u.Hi, Lo: u.Lo &^ (^uint64(0) >> (plen - 64))}
	}
}

// Cmp compares two 128-bit values, returning -1, 0, or +1.
func (u U128) Cmp(v U128) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	default:
		return 0
	}
}

// String formats the value as the IPv6 address it encodes.
func (u U128) String() string { return u.ToAddr().String() }

// IsIPv6 reports whether a is a plain IPv6 address (not IPv4, not
// IPv4-mapped). The zero Addr returns false.
func IsIPv6(a netip.Addr) bool {
	return a.Is6() && !a.Is4In6()
}

// AggLevel is a source-aggregation level: the prefix length at which
// packets are grouped before scan detection runs. The paper analyzes
// /128 (no aggregation), /64, /48, and case-study /32.
type AggLevel int

// Aggregation levels studied in the paper.
const (
	Agg128 AggLevel = 128 // treat each source address individually
	Agg64  AggLevel = 64  // typical end-site subnet
	Agg48  AggLevel = 48  // smallest globally routable IPv6 entity
	Agg32  AggLevel = 32  // typical RIR allocation to an entire ISP
)

// Levels returns the standard aggregation levels in the order the paper
// tabulates them (most to least specific).
func Levels() []AggLevel { return []AggLevel{Agg128, Agg64, Agg48} }

// Valid reports whether l is a meaningful IPv6 aggregation level.
func (l AggLevel) Valid() bool { return l > 0 && l <= 128 }

// String returns e.g. "/64".
func (l AggLevel) String() string { return fmt.Sprintf("/%d", int(l)) }

// Aggregate masks addr to the aggregation level, returning the canonical
// prefix used as a source key. Aggregate panics if addr is not IPv6;
// telescope inputs are validated at ingest.
func Aggregate(addr netip.Addr, level AggLevel) netip.Prefix {
	if !IsIPv6(addr) {
		panic("netaddr6: Aggregate on non-IPv6 address " + addr.String())
	}
	p, err := addr.Prefix(int(level))
	if err != nil {
		panic("netaddr6: invalid aggregation level " + level.String())
	}
	return p
}

// IID returns the interface identifier: the low 64 bits of an IPv6
// address. The paper uses the IID's Hamming weight as a randomness
// indicator for scan targets.
func IID(a netip.Addr) uint64 {
	return ToU128(a).Lo
}

// WithIID returns the address formed by the /64 network of a and the
// given interface identifier.
func WithIID(a netip.Addr, iid uint64) netip.Addr {
	u := ToU128(a)
	u.Lo = iid
	return u.ToAddr()
}

// HammingWeightIID returns the number of 1-bits in the IID (low 64 bits)
// of the address. Low values indicate structured, non-random addresses
// (e.g. ::1, ::53); random IIDs concentrate near 32 (binomial n=64,
// p=1/2).
func HammingWeightIID(a netip.Addr) int {
	return bits.OnesCount64(IID(a))
}

// HammingDistance returns the number of differing bits between two
// addresses across all 128 bits.
func HammingDistance(a, b netip.Addr) int {
	return ToU128(a).Xor(ToU128(b)).OnesCount()
}

// SameSlash reports whether a and b share their first plen bits, i.e.
// fall into the same /plen. It is the "nearby" predicate of Section 3.3
// (used there with plen of 124, 120, 116, 112).
func SameSlash(a, b netip.Addr, plen int) bool {
	if plen <= 0 {
		return true
	}
	if plen > 128 {
		plen = 128
	}
	ua, ub := ToU128(a), ToU128(b)
	return ua.Mask(plen) == ub.Mask(plen)
}

// CommonPrefixLen returns the length of the longest common prefix of a
// and b in bits (0..128).
func CommonPrefixLen(a, b netip.Addr) int {
	x := ToU128(a).Xor(ToU128(b))
	if x == (U128{}) {
		return 128
	}
	return x.LeadingZeros()
}

// MustAddr parses an IPv6 address or panics; intended for tests, tables
// and package-level constants.
func MustAddr(s string) netip.Addr {
	a := netip.MustParseAddr(s)
	if !IsIPv6(a) {
		panic("netaddr6: not IPv6: " + s)
	}
	return a
}

// MustPrefix parses an IPv6 prefix or panics. The prefix is returned in
// masked (canonical) form.
func MustPrefix(s string) netip.Prefix {
	p := netip.MustParsePrefix(s)
	if !IsIPv6(p.Addr()) {
		panic("netaddr6: not IPv6: " + s)
	}
	return p.Masked()
}

// PrefixContains reports whether outer contains the entire inner prefix.
func PrefixContains(outer, inner netip.Prefix) bool {
	return outer.Bits() <= inner.Bits() && outer.Contains(inner.Addr())
}

// First returns the first (numerically lowest) address in p.
func First(p netip.Prefix) netip.Addr {
	return p.Masked().Addr()
}

// Last returns the last (numerically highest) address in p.
func Last(p netip.Prefix) netip.Addr {
	u := ToU128(p.Masked().Addr())
	host := hostMask(p.Bits())
	return u.Or(host).ToAddr()
}

func hostMask(plen int) U128 {
	switch {
	case plen <= 0:
		return U128{Hi: ^uint64(0), Lo: ^uint64(0)}
	case plen >= 128:
		return U128{}
	case plen < 64:
		return U128{Hi: ^uint64(0) >> plen, Lo: ^uint64(0)}
	case plen == 64:
		return U128{Lo: ^uint64(0)}
	default:
		return U128{Lo: ^uint64(0) >> (plen - 64)}
	}
}
