package netaddr6

import (
	"math/rand"
	"net/netip"
)

// This file contains deterministic address generators. They model how
// the paper's observed scan actors pick source and destination
// addresses: uniformly random within a prefix, low-Hamming-weight
// structured IIDs, small-range low-bit variation (the AS #9 pattern of
// varying only the bottom 7–9 bits), and sequential enumeration.
//
// All generators take an explicit *rand.Rand so simulations are
// reproducible under a fixed seed.

// RandomAddrIn returns a uniformly random address inside p.
func RandomAddrIn(p netip.Prefix, rng *rand.Rand) netip.Addr {
	base := ToU128(p.Masked().Addr())
	host := hostMask(p.Bits())
	r := U128{Hi: rng.Uint64(), Lo: rng.Uint64()}
	return base.Or(r.And(host)).ToAddr()
}

// LowHammingAddrIn returns an address inside p whose host bits have at
// most maxOnes set bits, placed at random positions. This reproduces the
// "structured IID" populations the paper observes for DNS-exposed CDN
// machines and for hitlist-derived scan targets (Figure 7: low Hamming
// weight).
func LowHammingAddrIn(p netip.Prefix, maxOnes int, rng *rand.Rand) netip.Addr {
	base := ToU128(p.Masked().Addr())
	plen := p.Bits()
	hostBits := 128 - plen
	if hostBits <= 0 {
		return p.Addr()
	}
	ones := 0
	if maxOnes > 0 {
		ones = rng.Intn(maxOnes + 1)
	}
	if ones > hostBits {
		ones = hostBits
	}
	u := base
	for i := 0; i < ones; i++ {
		// Bias positions toward the least-significant bits: real
		// structured IIDs are small integers (::1, ::25, ::1:2).
		span := hostBits
		if span > 16 && rng.Intn(4) != 0 {
			span = 16
		}
		pos := 128 - 1 - rng.Intn(span)
		u = u.SetBit(pos, 1)
	}
	return u.ToAddr()
}

// LowBitsVariedAddr returns base with its bottom `vary` bits replaced by
// random bits. This is the AS #9 pattern: a scanner sourcing from a
// single /64 but varying the lowest 7–9 bits of the source address per
// packet.
func LowBitsVariedAddr(base netip.Addr, vary int, rng *rand.Rand) netip.Addr {
	if vary <= 0 {
		return base
	}
	if vary > 64 {
		vary = 64
	}
	u := ToU128(base)
	mask := ^uint64(0) >> (64 - vary)
	u.Lo = (u.Lo &^ mask) | (rng.Uint64() & mask)
	return u.ToAddr()
}

// SequentialAddrs returns n addresses starting at base, each step apart.
// Scan actors enumerating nearby addresses around a known (in-DNS)
// target use step 1.
func SequentialAddrs(base netip.Addr, n int, step uint64) []netip.Addr {
	out := make([]netip.Addr, 0, n)
	u := ToU128(base)
	for i := 0; i < n; i++ {
		out = append(out, u.ToAddr())
		u = u.Add(step)
	}
	return out
}

// RandomSubprefix returns a random /sub prefix contained in p.
// It panics if sub < p.Bits(). Used to model cloud providers handing
// out more-specific allocations (AS #6 hands out prefixes more specific
// than /96) and the AS #18 actor spreading over /48s within a /32.
func RandomSubprefix(p netip.Prefix, sub int, rng *rand.Rand) netip.Prefix {
	if sub < p.Bits() {
		panic("netaddr6: RandomSubprefix: sub shorter than parent prefix")
	}
	if sub > 128 {
		sub = 128
	}
	a := RandomAddrIn(p, rng)
	out, err := a.Prefix(sub)
	if err != nil {
		panic("netaddr6: RandomSubprefix: " + err.Error())
	}
	return out
}

// NthSubprefix returns the i-th /sub prefix inside p, in address order.
// It panics if sub < p.Bits(). The index wraps modulo the number of
// available subprefixes (capped at 2^63 to stay in uint64 arithmetic),
// making it convenient for deterministic round-robin assignment.
func NthSubprefix(p netip.Prefix, sub int, i uint64) netip.Prefix {
	if sub < p.Bits() {
		panic("netaddr6: NthSubprefix: sub shorter than parent prefix")
	}
	if sub > 128 {
		sub = 128
	}
	span := sub - p.Bits()
	if span > 63 {
		span = 63
	}
	if span < 64 {
		i %= uint64(1) << span
	}
	base := ToU128(p.Masked().Addr())
	// Shift the index into position: the subprefix index occupies bits
	// [p.Bits(), sub) of the address.
	shift := 128 - sub
	var u U128
	if shift >= 64 {
		u = U128{Hi: i << (shift - 64)}
	} else {
		u = U128{Hi: i >> (64 - shift), Lo: i << shift}
	}
	out, err := base.Or(u).ToAddr().Prefix(sub)
	if err != nil {
		panic("netaddr6: NthSubprefix: " + err.Error())
	}
	return out
}

// GaussianIIDAddr returns an address in the /64 of base whose IID bits
// are independently random — producing the binomial (visually Gaussian)
// Hamming-weight distribution the paper observes for the Dec 24, 2021
// MAWI peak scanner.
func GaussianIIDAddr(base netip.Addr, rng *rand.Rand) netip.Addr {
	return WithIID(base, rng.Uint64())
}
