// Package mawi simulates the paper's second vantage point: the MAWI
// archive's daily 15-minute packet captures on a Japanese transit link
// (Section 4 and Appendix A.2). Unlike the CDN telescope, the transit
// link observes probes to arbitrary destinations — including ICMPv6,
// which the CDN does not log — so the MAWI view contains:
//
//   - the AS #1 entity (the same most active scanner seen at the CDN),
//     including its May 27, 2021 hitlist day and port-set switch;
//   - routine ICMPv6 scanning on most days (342 of 439 in the paper);
//   - the July 6, 2021 ICMPv6 peak from 7 source addresses in one /124
//     of the AS #3 cybersecurity company;
//   - the December 24, 2021 peak: a single /128 from a US cloud
//     provider probing one fully random IID in a distinct /64 per
//     packet (Gaussian Hamming-weight signature);
//   - sub-threshold scanners visible at the Fukuda–Heidemann ≥5
//     destination bar but not at ≥100;
//   - regular bidirectional traffic (talkative, variable length) that
//     the detector must reject.
//
// Days are emitted as record slices and can round-trip through
// internal/pcap as LINKTYPE_RAW captures, exercising the same decode
// path a real MAWI consumer would use.
package mawi

import (
	"fmt"
	"io"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"v6scan/internal/firewall"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pcap"
	"v6scan/internal/scanner"
)

// Notable dates of Section 4.
var (
	HitlistDay = time.Date(2021, 5, 27, 0, 0, 0, 0, time.UTC)
	July6Peak  = time.Date(2021, 7, 6, 0, 0, 0, 0, time.UTC)
	Dec24Peak  = time.Date(2021, 12, 24, 0, 0, 0, 0, time.UTC)
)

// DecPeakASN is the US cloud provider behind the December 24 peak
// (not among the Table-2 top 20).
const DecPeakASN = 64900

// Config sizes the MAWI simulation.
type Config struct {
	Start, End time.Time
	// WindowStart is the daily capture offset (MAWI captures 15
	// minutes per day).
	WindowStart time.Duration
	// WindowLen is the capture duration.
	WindowLen time.Duration
	// HitlistSize is the synthetic IPv6-hitlist size.
	HitlistSize int
	// Seed drives all randomness.
	Seed int64
}

// DefaultConfig covers the paper window.
func DefaultConfig() Config {
	return Config{
		Start:       scanner.DefaultStart,
		End:         scanner.DefaultEnd,
		WindowStart: 5 * time.Hour,
		WindowLen:   15 * time.Minute,
		HitlistSize: 4000,
		Seed:        23,
	}
}

// Simulator produces daily capture windows.
type Simulator struct {
	cfg     Config
	hitlist []netip.Addr
	hitSet  map[netip.Addr]struct{}
	rng     *rand.Rand

	as1Src  netip.Addr
	as3Srcs []netip.Addr // 7 sources in one /124
	decSrc  netip.Addr
}

// New builds a simulator. The synthetic hitlist plays the role of the
// public IPv6 hitlist: structured, low-Hamming-weight responsive
// addresses.
func New(cfg Config) *Simulator {
	if cfg.WindowLen == 0 {
		cfg.WindowLen = 15 * time.Minute
	}
	if cfg.HitlistSize == 0 {
		cfg.HitlistSize = 4000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulator{cfg: cfg, rng: rng, hitSet: make(map[netip.Addr]struct{})}
	space := netaddr6.MustPrefix("2400::/12") // "responsive Internet" space
	for i := 0; i < cfg.HitlistSize; i++ {
		p64 := netaddr6.RandomSubprefix(space, 64, rng)
		a := netaddr6.LowHammingAddrIn(p64, 3, rng)
		if _, dup := s.hitSet[a]; dup {
			continue
		}
		s.hitlist = append(s.hitlist, a)
		s.hitSet[a] = struct{}{}
	}
	// AS #1: the same single source address the CDN census uses.
	s.as1Src = netaddr6.WithIID(netaddr6.NthSubprefix(scanner.Alloc(scanner.ASNOfRank(1)), 64, 0).Addr(), 1)
	// AS #3 ICMPv6 peak: 7 addresses within one /124.
	base := netaddr6.WithIID(netaddr6.NthSubprefix(scanner.Alloc(scanner.ASNOfRank(3)), 64, 1).Addr(), 0x50)
	for i := 0; i < 7; i++ {
		s.as3Srcs = append(s.as3Srcs, netaddr6.WithIID(base, netaddr6.IID(base)|uint64(i+1)))
	}
	// December 24 peak source: a cloud AS outside the top 20.
	s.decSrc = netaddr6.WithIID(netaddr6.MustPrefix("2d00:100::/32").Addr(), 0xbeef)
	return s
}

// Hitlist returns the synthetic IPv6 hitlist.
func (s *Simulator) Hitlist() []netip.Addr { return s.hitlist }

// InHitlist reports membership.
func (s *Simulator) InHitlist(a netip.Addr) bool {
	_, ok := s.hitSet[a]
	return ok
}

// AS1Source returns the AS #1 scanner's address.
func (s *Simulator) AS1Source() netip.Addr { return s.as1Src }

// Dec24Source returns the December-24 peak source.
func (s *Simulator) Dec24Source() netip.Addr { return s.decSrc }

// EmitDay produces the day's 15-minute capture window, time-ordered.
func (s *Simulator) EmitDay(day time.Time) []firewall.Record {
	// Per-day deterministic randomness: replaying any single day gives
	// identical output regardless of which days were emitted before.
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ day.Unix()))
	start := day.Add(s.cfg.WindowStart)
	var out []firewall.Record

	s.emitAS1(day, start, rng, &out)
	s.emitICMPv6Routine(day, start, rng, &out)
	s.emitSubThreshold(start, rng, &out)
	s.emitBackground(start, rng, &out)

	if day.Equal(July6Peak) {
		s.emitJuly6(start, rng, &out)
	}
	if day.Equal(Dec24Peak) {
		s.emitDec24(start, rng, &out)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// emitAS1 models the most active scanner: visible every day, constant
// packet size, hundreds of ports before May 27 then exactly six TCP
// ports, structured low-HW targets. On May 27 it probes only hitlist
// addresses (99.2% overlap, far fewer uniques).
func (s *Simulator) emitAS1(day, start time.Time, rng *rand.Rand, out *[]firewall.Record) {
	const pkts = 3000
	step := s.cfg.WindowLen / pkts
	hitlistDay := day.Equal(HitlistDay)
	var ports []uint16
	if day.Before(HitlistDay) {
		// Pre-switch the entity covers ≈444 ports over time; within a
		// single 15-minute window it works a rotating subset, keeping
		// each per-port flow above the 100-destination bar (the paper's
		// MAWI detector qualifies flows per port).
		all := portSample(444, rng)
		dayIdx := int(day.Sub(s.cfg.Start) / (24 * time.Hour))
		for k := 0; k < 10; k++ {
			ports = append(ports, all[(dayIdx*10+k)%len(all)])
		}
	} else {
		ports = []uint16{22, 80, 443, 3389, 8080, 8443}
	}
	var pool []netip.Addr
	if hitlistDay {
		// ≈300 hitlist targets probed repeatedly (the paper sees uniques
		// drop from 50k+ to 2.3k with 99.2% hitlist overlap).
		pool = s.sampleHitlist(300, rng)
	}
	for i := 0; i < pkts; i++ {
		var dst netip.Addr
		if hitlistDay {
			dst = pool[rng.Intn(len(pool))]
		} else {
			// Structured low-HW target in a fresh /64: not hitlist
			// members, median ≈2 addresses per destination /64.
			p64 := netaddr6.RandomSubprefix(netaddr6.MustPrefix("2400::/12"), 64, rng)
			dst = netaddr6.LowHammingAddrIn(p64, 4, rng)
		}
		*out = append(*out, firewall.Record{
			Time: start.Add(time.Duration(i) * step), Src: s.as1Src, Dst: dst,
			Proto: layers.ProtoTCP, SrcPort: 43000, DstPort: ports[i%len(ports)], Length: 60,
		})
	}
}

// emitICMPv6Routine: most days carry at least one large ICMPv6 scan
// (342 of 439 days in the paper). Day hashing keeps ≈78% of days
// active.
func (s *Simulator) emitICMPv6Routine(day, start time.Time, rng *rand.Rand, out *[]firewall.Record) {
	dayIdx := int(day.Sub(s.cfg.Start) / (24 * time.Hour))
	if dayIdx%9 == 0 || dayIdx%9 == 4 { // ≈22% of days silent
		return
	}
	nScanners := 2 + rng.Intn(3)
	for k := 0; k < nScanners; k++ {
		src := netaddr6.WithIID(netaddr6.NthSubprefix(netaddr6.MustPrefix("2c40::/12"), 64, uint64(100+k)).Addr(), uint64(k+1))
		pkts := 150 + rng.Intn(300)
		step := s.cfg.WindowLen / time.Duration(pkts)
		for i := 0; i < pkts; i++ {
			p64 := netaddr6.RandomSubprefix(netaddr6.MustPrefix("2400::/12"), 64, rng)
			dst := netaddr6.LowHammingAddrIn(p64, 5, rng)
			*out = append(*out, firewall.Record{
				Time: start.Add(time.Duration(i) * step), Src: src, Dst: dst,
				Proto: layers.ProtoICMPv6, Length: 48,
			})
		}
	}
}

// emitSubThreshold adds scanners visible at the ≥5 destination bar but
// not ≥100 — the order-of-magnitude gap of Figure 5.
func (s *Simulator) emitSubThreshold(start time.Time, rng *rand.Rand, out *[]firewall.Record) {
	n := 40 + rng.Intn(30)
	for k := 0; k < n; k++ {
		src := netaddr6.RandomAddrIn(netaddr6.MustPrefix("2c80::/12"), rng)
		dsts := 5 + rng.Intn(60)
		port := uint16(1 + rng.Intn(10000))
		step := s.cfg.WindowLen / time.Duration(dsts+1)
		for i := 0; i < dsts; i++ {
			p64 := netaddr6.RandomSubprefix(netaddr6.MustPrefix("2400::/12"), 64, rng)
			dst := netaddr6.LowHammingAddrIn(p64, 6, rng)
			*out = append(*out, firewall.Record{
				Time: start.Add(time.Duration(i) * step), Src: src, Dst: dst,
				Proto: layers.ProtoTCP, SrcPort: 50000, DstPort: port, Length: 60,
			})
		}
	}
}

// emitBackground adds regular traffic the detector must reject:
// bidirectional-looking flows with variable lengths and many packets
// per destination.
func (s *Simulator) emitBackground(start time.Time, rng *rand.Rand, out *[]firewall.Record) {
	flows := 150
	for k := 0; k < flows; k++ {
		src := netaddr6.RandomAddrIn(netaddr6.MustPrefix("2400::/12"), rng)
		dst := netaddr6.RandomAddrIn(netaddr6.MustPrefix("2400::/12"), rng)
		port := uint16(443)
		if rng.Intn(3) == 0 {
			port = 80
		}
		pkts := 20 + rng.Intn(60)
		step := s.cfg.WindowLen / time.Duration(pkts+1)
		for i := 0; i < pkts; i++ {
			*out = append(*out, firewall.Record{
				Time: start.Add(time.Duration(i) * step), Src: src, Dst: dst,
				Proto: layers.ProtoTCP, SrcPort: uint16(32768 + k), DstPort: port,
				Length: uint16(52 + rng.Intn(1400)),
			})
		}
	}
}

// emitJuly6 models the first ICMPv6 peak: echo requests from 7 source
// addresses within one /124 of the AS #3 cybersecurity company,
// low-Hamming-weight targets.
func (s *Simulator) emitJuly6(start time.Time, rng *rand.Rand, out *[]firewall.Record) {
	const pkts = 20000
	step := s.cfg.WindowLen / pkts
	for i := 0; i < pkts; i++ {
		p64 := netaddr6.RandomSubprefix(netaddr6.MustPrefix("2400::/12"), 64, rng)
		dst := netaddr6.LowHammingAddrIn(p64, 4, rng)
		*out = append(*out, firewall.Record{
			Time: start.Add(time.Duration(i) * step), Src: s.as3Srcs[i%len(s.as3Srcs)], Dst: dst,
			Proto: layers.ProtoICMPv6, Length: 48,
		})
	}
}

// emitDec24 models the largest peak: a single /128 probing one fully
// random IID in a distinct /64 per packet — the Gaussian
// Hamming-weight signature of Figure 7.
func (s *Simulator) emitDec24(start time.Time, rng *rand.Rand, out *[]firewall.Record) {
	const pkts = 50000
	step := s.cfg.WindowLen / pkts
	for i := 0; i < pkts; i++ {
		p64 := netaddr6.NthSubprefix(netaddr6.MustPrefix("2400::/12"), 64, uint64(i)*2654435761)
		dst := netaddr6.GaussianIIDAddr(p64.Addr(), rng)
		*out = append(*out, firewall.Record{
			Time: start.Add(time.Duration(i) * step), Src: s.decSrc, Dst: dst,
			Proto: layers.ProtoICMPv6, Length: 48,
		})
	}
}

func (s *Simulator) sampleHitlist(n int, rng *rand.Rand) []netip.Addr {
	if n > len(s.hitlist) {
		n = len(s.hitlist)
	}
	idx := rng.Perm(len(s.hitlist))[:n]
	out := make([]netip.Addr, n)
	for i, j := range idx {
		out[i] = s.hitlist[j]
	}
	return out
}

// portSample returns n deterministic ports (for the AS #1 pre-switch
// wide set as seen at MAWI).
func portSample(n int, _ *rand.Rand) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(i + 1)
	}
	return out
}

// WritePcapDay serializes a day's records as a LINKTYPE_RAW pcap
// stream, building real IPv6 wire frames.
func WritePcapDay(w io.Writer, recs []firewall.Record) error {
	pw := pcap.NewWriter(w, pcap.WriterOptions{LinkType: layers.LinkTypeRaw, Nanosecond: true})
	for _, r := range recs {
		frame, err := buildFrame(r)
		if err != nil {
			return fmt.Errorf("mawi: building frame: %w", err)
		}
		if err := pw.WritePacket(r.Time, frame); err != nil {
			return err
		}
	}
	return pw.Flush()
}

func buildFrame(r firewall.Record) ([]byte, error) {
	payload := 0
	switch r.Proto {
	case layers.ProtoTCP:
		if int(r.Length) > 60 {
			payload = int(r.Length) - 60
		}
		return layers.BuildTCPSYN(r.Src, r.Dst, r.SrcPort, r.DstPort, layers.BuildOptions{PayloadLen: payload})
	case layers.ProtoUDP:
		if int(r.Length) > 48 {
			payload = int(r.Length) - 48
		}
		return layers.BuildUDPProbe(r.Src, r.Dst, r.SrcPort, r.DstPort, layers.BuildOptions{PayloadLen: payload})
	case layers.ProtoICMPv6:
		return layers.BuildICMPv6Echo(r.Src, r.Dst, 7, uint16(r.Time.UnixNano()), layers.BuildOptions{})
	default:
		return nil, fmt.Errorf("mawi: unsupported protocol %v", r.Proto)
	}
}

// ReadPcapDay parses a LINKTYPE_RAW pcap stream back into records,
// exercising the full decode path.
func ReadPcapDay(r io.Reader) ([]firewall.Record, error) {
	pr, err := pcap.NewReader(r)
	if err != nil {
		return nil, err
	}
	var (
		out []firewall.Record
		d   layers.Decoded
	)
	for {
		p, err := pr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		if err := layers.ParseFrame(p.Data, pr.Header().LinkType, &d); err != nil {
			continue // count-and-skip semantics for malformed packets
		}
		out = append(out, firewall.FromDecoded(p.Timestamp, &d))
	}
}

// Days iterates the configured window.
func (s *Simulator) Days(fn func(day time.Time)) {
	for d := s.cfg.Start; d.Before(s.cfg.End); d = d.Add(24 * time.Hour) {
		fn(d)
	}
}
