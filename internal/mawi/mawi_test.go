package mawi

import (
	"bytes"
	"testing"
	"time"

	"v6scan/internal/core"
	"v6scan/internal/entropy"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
)

func testConfig(start time.Time, days int) Config {
	cfg := DefaultConfig()
	cfg.Start = start
	cfg.End = start.Add(time.Duration(days) * 24 * time.Hour)
	cfg.HitlistSize = 1000
	return cfg
}

func detectDay(t *testing.T, s *Simulator, day time.Time, mc core.MAWIConfig) []core.MAWIScan {
	t.Helper()
	det := core.NewMAWIDetector(mc)
	for _, r := range s.EmitDay(day) {
		det.Process(r)
	}
	return det.Finish()
}

func TestOrdinaryDayDetection(t *testing.T) {
	day := time.Date(2021, 3, 10, 0, 0, 0, 0, time.UTC)
	s := New(testConfig(day.Add(-24*time.Hour), 3))
	scans := detectDay(t, s, day, core.DefaultMAWIConfig())
	if len(scans) < 2 {
		t.Fatalf("scans = %d, want several (AS1 + ICMPv6 routine)", len(scans))
	}
	// AS1 must be among the detected sources and the most active.
	if !scans[0].Source.Contains(s.AS1Source()) {
		t.Errorf("top scan source %v is not AS1", scans[0].Source)
	}
	// ICMPv6 sources must be the majority of scan sources on a routine
	// day (paper: on 236 of 342 ICMPv6 days).
	icmp, other := 0, 0
	for _, sc := range scans {
		if sc.Services[0].Proto == layers.ProtoICMPv6 {
			icmp++
		} else {
			other++
		}
	}
	if icmp == 0 {
		t.Error("no ICMPv6 scan sources on a routine day")
	}
}

func TestBackgroundTrafficRejected(t *testing.T) {
	day := time.Date(2021, 3, 10, 0, 0, 0, 0, time.UTC)
	s := New(testConfig(day, 2))
	scans := detectDay(t, s, day, core.DefaultMAWIConfig())
	for _, sc := range scans {
		for _, svc := range sc.Services {
			// Background flows are on 80/443 with high length entropy and
			// >10 packets per destination; none may qualify.
			if svc.Proto == layers.ProtoTCP && (svc.Port == 443) && sc.Dsts < 100 {
				t.Errorf("background flow detected: %+v", sc)
			}
		}
	}
}

func TestFiveVsHundredThreshold(t *testing.T) {
	// Figure 5: the ≥5 destination bar yields an order of magnitude
	// more sources than ≥100.
	day := time.Date(2021, 4, 2, 0, 0, 0, 0, time.UTC)
	s := New(testConfig(day.Add(-24*time.Hour), 3))
	strict := core.DefaultMAWIConfig()
	loose := core.DefaultMAWIConfig()
	loose.MinDsts = 5
	nStrict := len(detectDay(t, s, day, strict))
	nLoose := len(detectDay(t, s, day, loose))
	if nLoose < 5*nStrict {
		t.Errorf("sources at ≥5 = %d vs ≥100 = %d: want ≥5x", nLoose, nStrict)
	}
}

func TestJuly6Peak(t *testing.T) {
	s := New(testConfig(July6Peak.Add(-24*time.Hour), 3))
	scans := detectDay(t, s, July6Peak, core.DefaultMAWIConfig())
	top := scans[0]
	if top.Services[0].Proto != layers.ProtoICMPv6 {
		t.Fatalf("top scan on Jul 6 not ICMPv6: %+v", top.Services)
	}
	// The peak comes from 7 sources within one /124 → at /64
	// aggregation a single source; HW of targets is low.
	hw := entropy.SummarizeHamming(entropy.HammingHistogram64(top.DstIIDs))
	if hw.Mean > 10 {
		t.Errorf("Jul 6 target HW mean %.1f, want low", hw.Mean)
	}
	if entropy.LooksGaussian(entropy.HammingHistogram64(top.DstIIDs)) {
		t.Error("Jul 6 targets misclassified as random")
	}
}

func TestDec24PeakGaussian(t *testing.T) {
	s := New(testConfig(Dec24Peak.Add(-24*time.Hour), 3))
	mc := core.DefaultMAWIConfig()
	mc.TrackDsts = true
	scans := detectDay(t, s, Dec24Peak, mc)
	top := scans[0]
	if !top.Source.Contains(s.Dec24Source()) {
		t.Fatalf("top scan on Dec 24 from %v", top.Source)
	}
	if top.Packets < 10000 {
		t.Errorf("Dec 24 peak packets = %d, want massive", top.Packets)
	}
	hist := entropy.HammingHistogram64(top.DstIIDs)
	if !entropy.LooksGaussian(hist) {
		st := entropy.SummarizeHamming(hist)
		t.Errorf("Dec 24 HW not Gaussian: mean %.1f σ %.1f", st.Mean, st.StdDev)
	}
	// Every packet targets a distinct /64.
	seen := map[string]bool{}
	dup := 0
	for _, a := range top.DstAddrs {
		k := netaddr6.Aggregate(a, netaddr6.Agg64).String()
		if seen[k] {
			dup++
		}
		seen[k] = true
	}
	if dup > len(top.DstAddrs)/100 {
		t.Errorf("Dec 24 scan repeats destination /64s: %d dups of %d", dup, len(top.DstAddrs))
	}
}

func TestHitlistOverlapMay27(t *testing.T) {
	cfg := testConfig(HitlistDay.Add(-24*time.Hour), 3)
	s := New(cfg)
	mc := core.DefaultMAWIConfig()
	mc.TrackDsts = true

	// May 26: essentially no hitlist overlap.
	before := detectDay(t, s, HitlistDay.Add(-24*time.Hour), mc)
	var as1Before *core.MAWIScan
	for i := range before {
		if before[i].Source.Contains(s.AS1Source()) {
			as1Before = &before[i]
		}
	}
	if as1Before == nil {
		t.Fatal("AS1 not detected on May 26")
	}
	if ov := hitlistOverlap(s, as1Before); ov > 0.05 {
		t.Errorf("May 26 hitlist overlap %.2f, want ≈0", ov)
	}

	// May 27: almost complete overlap, far fewer uniques.
	on := detectDay(t, s, HitlistDay, mc)
	var as1On *core.MAWIScan
	for i := range on {
		if on[i].Source.Contains(s.AS1Source()) {
			as1On = &on[i]
		}
	}
	if as1On == nil {
		t.Fatal("AS1 not detected on May 27")
	}
	if ov := hitlistOverlap(s, as1On); ov < 0.95 {
		t.Errorf("May 27 hitlist overlap %.2f, want ≈0.99", ov)
	}
	if as1On.Dsts >= as1Before.Dsts {
		t.Errorf("May 27 uniques (%d) should drop versus May 26 (%d)", as1On.Dsts, as1Before.Dsts)
	}
}

func hitlistOverlap(s *Simulator, sc *core.MAWIScan) float64 {
	if len(sc.DstAddrs) == 0 {
		return 0
	}
	n := 0
	for _, a := range sc.DstAddrs {
		if s.InHitlist(a) {
			n++
		}
	}
	return float64(n) / float64(len(sc.DstAddrs))
}

func TestAS1PortSetAtMAWI(t *testing.T) {
	// Unlike the CDN (which cannot see TCP/80+443), MAWI observes the
	// full six-port set after the switch.
	day := time.Date(2021, 8, 10, 0, 0, 0, 0, time.UTC)
	s := New(testConfig(day, 2))
	ports := map[uint16]bool{}
	for _, r := range s.EmitDay(day) {
		if r.Src == s.AS1Source() {
			ports[r.DstPort] = true
		}
	}
	if len(ports) != 6 || !ports[80] || !ports[443] {
		t.Errorf("AS1 MAWI ports = %v, want the six-port set", ports)
	}
}

func TestPcapRoundTrip(t *testing.T) {
	day := time.Date(2021, 3, 10, 0, 0, 0, 0, time.UTC)
	s := New(testConfig(day, 2))
	recs := s.EmitDay(day)
	var buf bytes.Buffer
	if err := WritePcapDay(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcapDay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip: %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].Src != recs[i].Src || got[i].Dst != recs[i].Dst ||
			got[i].Proto != recs[i].Proto || got[i].DstPort != recs[i].DstPort {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
		if !got[i].Time.Equal(recs[i].Time) {
			t.Fatalf("record %d timestamp mismatch", i)
		}
	}
	// Detection over the round-tripped records must agree.
	d1 := core.NewMAWIDetector(core.DefaultMAWIConfig())
	d2 := core.NewMAWIDetector(core.DefaultMAWIConfig())
	for _, r := range recs {
		d1.Process(r)
	}
	for _, r := range got {
		d2.Process(r)
	}
	s1, s2 := d1.Finish(), d2.Finish()
	if len(s1) != len(s2) {
		t.Fatalf("detection differs after round trip: %d vs %d", len(s1), len(s2))
	}
}

func TestEmitDayDeterministic(t *testing.T) {
	day := time.Date(2021, 6, 6, 0, 0, 0, 0, time.UTC)
	a := New(testConfig(day, 2)).EmitDay(day)
	b := New(testConfig(day, 2)).EmitDay(day)
	if len(a) != len(b) {
		t.Fatalf("lens differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestICMPv6DayShare(t *testing.T) {
	start := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	s := New(testConfig(start, 18))
	icmpDays := 0
	total := 0
	s.Days(func(day time.Time) {
		total++
		for _, sc := range detectDay(t, s, day, core.DefaultMAWIConfig()) {
			if sc.Services[0].Proto == layers.ProtoICMPv6 {
				icmpDays++
				break
			}
		}
	})
	share := float64(icmpDays) / float64(total)
	if share < 0.6 || share > 0.95 {
		t.Errorf("ICMPv6 days share = %.2f, want ≈0.78", share)
	}
}

func TestHitlistProperties(t *testing.T) {
	s := New(testConfig(time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC), 2))
	if len(s.Hitlist()) < 900 {
		t.Fatalf("hitlist size %d", len(s.Hitlist()))
	}
	for _, a := range s.Hitlist()[:100] {
		if !s.InHitlist(a) {
			t.Fatal("hitlist membership broken")
		}
		if netaddr6.HammingWeightIID(a) > 3 {
			t.Fatalf("hitlist address %s not structured", a)
		}
	}
}
