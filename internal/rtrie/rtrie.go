// Package rtrie implements a binary radix trie over IPv6 prefixes with
// longest-prefix-match lookup. It backs AS attribution (prefix →
// origin AS) and allocation lookups (address → registered allocation),
// mirroring what the paper derives from BGP and WHOIS data.
//
// The trie is a plain binary trie walked one bit at a time. IPv6
// routing tables in this system hold at most a few thousand synthetic
// allocations, so path compression is unnecessary; lookups are O(128)
// worst case and allocation-free.
//
// The zero value of Trie is ready to use. Trie is not safe for
// concurrent mutation; concurrent lookups without writers are safe.
package rtrie

import (
	"fmt"
	"net/netip"
	"sort"

	"v6scan/internal/netaddr6"
)

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// Trie maps IPv6 prefixes to values with longest-prefix-match lookup
// semantics.
type Trie[V any] struct {
	root node[V]
	size int
}

// New returns an empty trie. Equivalent to new(Trie[V]).
func New[V any]() *Trie[V] { return &Trie[V]{} }

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert associates v with prefix p, replacing any existing value for
// exactly p. It returns an error if p is not a valid IPv6 prefix.
func (t *Trie[V]) Insert(p netip.Prefix, v V) error {
	if !p.IsValid() || !netaddr6.IsIPv6(p.Addr()) {
		return fmt.Errorf("rtrie: invalid IPv6 prefix %v", p)
	}
	p = p.Masked()
	u := netaddr6.ToU128(p.Addr())
	n := &t.root
	for i := 0; i < p.Bits(); i++ {
		b := u.Bit(i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
	return nil
}

// Lookup returns the value of the longest prefix containing addr, the
// matched prefix, and whether any prefix matched.
func (t *Trie[V]) Lookup(addr netip.Addr) (V, netip.Prefix, bool) {
	var (
		bestVal V
		bestLen = -1
	)
	if !netaddr6.IsIPv6(addr) {
		var zero V
		return zero, netip.Prefix{}, false
	}
	u := netaddr6.ToU128(addr)
	n := &t.root
	for i := 0; ; i++ {
		if n.set {
			bestVal, bestLen = n.val, i
		}
		if i == 128 {
			break
		}
		n = n.child[u.Bit(i)]
		if n == nil {
			break
		}
	}
	if bestLen < 0 {
		var zero V
		return zero, netip.Prefix{}, false
	}
	p, _ := addr.Prefix(bestLen)
	return bestVal, p, true
}

// Get returns the value stored for exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (V, bool) {
	var zero V
	if !p.IsValid() || !netaddr6.IsIPv6(p.Addr()) {
		return zero, false
	}
	p = p.Masked()
	u := netaddr6.ToU128(p.Addr())
	n := &t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[u.Bit(i)]
		if n == nil {
			return zero, false
		}
	}
	if !n.set {
		return zero, false
	}
	return n.val, true
}

// Delete removes the value stored for exactly prefix p, reporting
// whether a value was present. Interior nodes are not pruned; the
// synthetic tables in this system are built once and queried many
// times, so reclaiming a handful of nodes is not worth the bookkeeping.
func (t *Trie[V]) Delete(p netip.Prefix) bool {
	if !p.IsValid() || !netaddr6.IsIPv6(p.Addr()) {
		return false
	}
	p = p.Masked()
	u := netaddr6.ToU128(p.Addr())
	n := &t.root
	for i := 0; i < p.Bits(); i++ {
		n = n.child[u.Bit(i)]
		if n == nil {
			return false
		}
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Walk visits every stored (prefix, value) pair in depth-first,
// address order. Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, v V) bool) {
	t.walk(&t.root, netaddr6.U128{}, 0, fn)
}

func (t *Trie[V]) walk(n *node[V], u netaddr6.U128, depth int, fn func(netip.Prefix, V) bool) bool {
	if n.set {
		p, _ := u.ToAddr().Prefix(depth)
		if !fn(p, n.val) {
			return false
		}
	}
	if depth == 128 {
		return true
	}
	if c := n.child[0]; c != nil {
		if !t.walk(c, u, depth+1, fn) {
			return false
		}
	}
	if c := n.child[1]; c != nil {
		if !t.walk(c, u.SetBit(depth, 1), depth+1, fn) {
			return false
		}
	}
	return true
}

// Prefixes returns all stored prefixes sorted by address then length.
func (t *Trie[V]) Prefixes() []netip.Prefix {
	out := make([]netip.Prefix, 0, t.size)
	t.Walk(func(p netip.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Addr().Compare(out[j].Addr()); c != 0 {
			return c < 0
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
