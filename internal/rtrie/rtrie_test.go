package rtrie

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"v6scan/internal/netaddr6"
)

func mustP(s string) netip.Prefix { return netaddr6.MustPrefix(s) }
func mustA(s string) netip.Addr   { return netaddr6.MustAddr(s) }

func TestEmptyTrie(t *testing.T) {
	var tr Trie[int]
	if tr.Len() != 0 {
		t.Error("empty trie has nonzero len")
	}
	if _, _, ok := tr.Lookup(mustA("2001:db8::1")); ok {
		t.Error("lookup on empty trie matched")
	}
	if _, ok := tr.Get(mustP("2001:db8::/32")); ok {
		t.Error("get on empty trie matched")
	}
}

func TestInsertLookupLongestMatch(t *testing.T) {
	tr := New[string]()
	for p, v := range map[string]string{
		"2001:db8::/32":     "allocation",
		"2001:db8:5::/48":   "site",
		"2001:db8:5:1::/64": "subnet",
	} {
		if err := tr.Insert(mustP(p), v); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		addr string
		want string
		plen int
	}{
		{"2001:db8:5:1::42", "subnet", 64},
		{"2001:db8:5:2::42", "site", 48},
		{"2001:db8:6::42", "allocation", 32},
	}
	for _, tt := range tests {
		v, p, ok := tr.Lookup(mustA(tt.addr))
		if !ok || v != tt.want || p.Bits() != tt.plen {
			t.Errorf("Lookup(%s) = %v,%v,%v; want %s at /%d", tt.addr, v, p, ok, tt.want, tt.plen)
		}
	}
	if _, _, ok := tr.Lookup(mustA("2001:db9::1")); ok {
		t.Error("address outside all prefixes matched")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := New[int]()
	p := mustP("2001:db8::/48")
	tr.Insert(p, 1)
	tr.Insert(p, 2)
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	if v, ok := tr.Get(p); !ok || v != 2 {
		t.Errorf("Get = %d,%v", v, ok)
	}
}

func TestInsertRejectsIPv4(t *testing.T) {
	tr := New[int]()
	if err := tr.Insert(netip.MustParsePrefix("10.0.0.0/8"), 1); err == nil {
		t.Error("IPv4 prefix accepted")
	}
}

func TestDefaultRoute(t *testing.T) {
	tr := New[string]()
	tr.Insert(mustP("::/0"), "default")
	tr.Insert(mustP("2001:db8::/32"), "doc")
	if v, _, ok := tr.Lookup(mustA("fe80::1")); !ok || v != "default" {
		t.Errorf("default route: %v %v", v, ok)
	}
	if v, _, ok := tr.Lookup(mustA("2001:db8::1")); !ok || v != "doc" {
		t.Errorf("more specific beats default: %v %v", v, ok)
	}
}

func TestHostRoute(t *testing.T) {
	tr := New[int]()
	tr.Insert(mustP("2001:db8::1/128"), 7)
	if v, p, ok := tr.Lookup(mustA("2001:db8::1")); !ok || v != 7 || p.Bits() != 128 {
		t.Errorf("host route lookup: %v %v %v", v, p, ok)
	}
	if _, _, ok := tr.Lookup(mustA("2001:db8::2")); ok {
		t.Error("host route over-matched")
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	p32, p48 := mustP("2001:db8::/32"), mustP("2001:db8:1::/48")
	tr.Insert(p32, 1)
	tr.Insert(p48, 2)
	if !tr.Delete(p48) {
		t.Fatal("delete failed")
	}
	if tr.Delete(p48) {
		t.Fatal("double delete succeeded")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Lookup now falls back to the /32.
	if v, _, ok := tr.Lookup(mustA("2001:db8:1::5")); !ok || v != 1 {
		t.Errorf("fallback after delete: %v %v", v, ok)
	}
}

func TestWalkAndPrefixes(t *testing.T) {
	tr := New[int]()
	ins := []string{"2001:db8::/32", "2001:db8:1::/48", "2001:db7::/32", "::/0"}
	for i, s := range ins {
		tr.Insert(mustP(s), i)
	}
	got := tr.Prefixes()
	if len(got) != len(ins) {
		t.Fatalf("Prefixes len = %d", len(got))
	}
	want := []string{"::/0", "2001:db7::/32", "2001:db8::/32", "2001:db8:1::/48"}
	for i, w := range want {
		if got[i] != mustP(w) {
			t.Errorf("Prefixes[%d] = %s, want %s", i, got[i], w)
		}
	}
	// Early stop.
	count := 0
	tr.Walk(func(netip.Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("walk early stop visited %d", count)
	}
}

func TestLookupMatchesLinearScanQuick(t *testing.T) {
	// Property: trie longest-prefix match agrees with a brute-force scan
	// over the inserted prefixes.
	rng := rand.New(rand.NewSource(42))
	tr := New[int]()
	var prefixes []netip.Prefix
	base := mustP("2001:db8::/32")
	for i := 0; i < 300; i++ {
		plen := 32 + rng.Intn(97) // 32..128
		p := netaddr6.RandomSubprefix(base, plen, rng)
		if err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, p)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		addr := netaddr6.RandomAddrIn(base, r)
		// Occasionally test near prefix boundaries.
		if r.Intn(2) == 0 {
			p := prefixes[r.Intn(len(prefixes))]
			addr = netaddr6.RandomAddrIn(p, r)
		}
		bestLen := -1
		for _, p := range prefixes {
			if p.Contains(addr) && p.Bits() > bestLen {
				bestLen = p.Bits()
			}
		}
		_, got, ok := tr.Lookup(addr)
		if bestLen < 0 {
			return !ok
		}
		return ok && got.Bits() == bestLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGetVsLookupDistinction(t *testing.T) {
	tr := New[int]()
	tr.Insert(mustP("2001:db8::/32"), 1)
	// Get requires exact prefix; a more specific prefix is absent.
	if _, ok := tr.Get(mustP("2001:db8::/48")); ok {
		t.Error("Get matched non-inserted prefix")
	}
	if v, ok := tr.Get(mustP("2001:db8::/32")); !ok || v != 1 {
		t.Error("Get missed inserted prefix")
	}
}
