// Package entropy provides the entropy measures used by the scan
// detectors: normalized Shannon entropy of discrete observations
// (the MAWI detector requires packet-length entropy < 0.1 for a flow to
// qualify as a scan, following Fukuda & Heidemann's definition), and
// per-bit entropy of interface identifiers used in target-randomness
// analysis.
package entropy

import (
	"math"
	"math/bits"
)

// Counter accumulates observations of discrete values (e.g. packet
// lengths) and computes normalized Shannon entropy over them. The zero
// value is ready to use. A single distinct value — the common case for
// scan flows, whose probes are near-identical — is held inline; the
// map materializes on the second distinct value, keeping single-valued
// counters allocation-free.
type Counter struct {
	counts map[uint64]uint64
	first  uint64
	firstN uint64
	total  uint64
}

// Observe records one occurrence of value v.
func (c *Counter) Observe(v uint64) { c.ObserveN(v, 1) }

// ObserveN records n occurrences of value v.
func (c *Counter) ObserveN(v uint64, n uint64) {
	if n == 0 {
		return
	}
	c.total += n
	if c.counts == nil {
		if c.firstN == 0 || c.first == v {
			c.first = v
			c.firstN += n
			return
		}
		c.counts = make(map[uint64]uint64, 4)
		c.counts[c.first] = c.firstN
		c.firstN = 0
	}
	c.counts[v] += n
}

// Total returns the number of recorded observations.
func (c *Counter) Total() uint64 { return c.total }

// Distinct returns the number of distinct observed values.
func (c *Counter) Distinct() int {
	if c.counts == nil {
		if c.firstN > 0 {
			return 1
		}
		return 0
	}
	return len(c.counts)
}

// Shannon returns the Shannon entropy H = -Σ p·log2(p) in bits.
// Zero observations yield 0.
func (c *Counter) Shannon() float64 {
	if c.total == 0 || c.counts == nil {
		// Zero or one distinct value: entropy 0.
		return 0
	}
	var h float64
	n := float64(c.total)
	for _, cnt := range c.counts {
		p := float64(cnt) / n
		h -= p * math.Log2(p)
	}
	return h
}

// Normalized returns the Shannon entropy divided by log2(total
// observations), mapping to [0,1]: 0 when every observation has the
// same value, 1 when every observation is distinct. This matches the
// packet-length entropy criterion of the MAWI scan definition, where a
// scanner emitting near-identical probe packets scores close to 0.
// Fewer than two observations yield 0.
func (c *Counter) Normalized() float64 {
	if c.total < 2 {
		return 0
	}
	return c.Shannon() / math.Log2(float64(c.total))
}

// Each calls f once per distinct observed value with its count, in
// unspecified order. Snapshot code serializes counters through it (and
// rebuilds them with ObserveN), so the counter's inline/materialized
// representation never leaks into the encoding.
func (c *Counter) Each(f func(v, n uint64)) {
	if c.counts == nil {
		if c.firstN > 0 {
			f(c.first, c.firstN)
		}
		return
	}
	for v, n := range c.counts {
		f(v, n)
	}
}

// Merge adds all observations of other into c.
func (c *Counter) Merge(other *Counter) {
	if other.counts == nil {
		c.ObserveN(other.first, other.firstN)
		return
	}
	for v, n := range other.counts {
		c.ObserveN(v, n)
	}
}

// Reset discards all observations, retaining allocated capacity.
func (c *Counter) Reset() {
	clear(c.counts)
	c.firstN = 0
	c.total = 0
}

// BitEntropy64 returns the per-bit Shannon entropy of a set of 64-bit
// values: for each bit position the entropy of its 0/1 distribution,
// averaged over all 64 positions. Structured IIDs (low Hamming weight,
// shared patterns) score near 0; uniformly random IIDs score near 1.
// The paper's Appendix A.2 uses Hamming weights directly; bit entropy
// is the complementary aggregate view exposed for analyses and the
// ids-aggregation example.
func BitEntropy64(values []uint64) float64 {
	if len(values) == 0 {
		return 0
	}
	var ones [64]int
	for _, v := range values {
		for v != 0 {
			i := bits.TrailingZeros64(v)
			ones[i]++
			v &= v - 1
		}
	}
	n := float64(len(values))
	var sum float64
	for _, c := range ones {
		p := float64(c) / n
		sum += binaryEntropy(p)
	}
	return sum / 64
}

// binaryEntropy returns H(p) for a Bernoulli(p) variable, in bits.
func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// HammingHistogram64 returns a 65-bucket histogram of Hamming weights
// (popcounts) of the given 64-bit values, as used for Figure 7 of the
// paper (Hamming weight of destination IIDs).
func HammingHistogram64(values []uint64) [65]uint64 {
	var h [65]uint64
	for _, v := range values {
		h[bits.OnesCount64(v)]++
	}
	return h
}

// HammingStats summarizes a Hamming-weight histogram.
type HammingStats struct {
	N      uint64  // number of values
	Mean   float64 // mean Hamming weight
	StdDev float64 // standard deviation
	Median int     // median bucket
}

// SummarizeHamming computes summary statistics over a Hamming-weight
// histogram as returned by HammingHistogram64.
func SummarizeHamming(h [65]uint64) HammingStats {
	var s HammingStats
	for w, c := range h {
		s.N += c
		s.Mean += float64(w) * float64(c)
	}
	if s.N == 0 {
		return s
	}
	s.Mean /= float64(s.N)
	var varSum float64
	for w, c := range h {
		d := float64(w) - s.Mean
		varSum += d * d * float64(c)
	}
	s.StdDev = math.Sqrt(varSum / float64(s.N))
	var cum, half uint64
	half = (s.N + 1) / 2
	for w, c := range h {
		cum += c
		if cum >= half {
			s.Median = w
			break
		}
	}
	return s
}

// LooksGaussian reports whether a Hamming-weight histogram is
// consistent with uniformly random 64-bit values: mean near 32 and
// standard deviation near 4 (binomial n=64, p=1/2 has σ=4). The paper
// uses this signature to conclude the Dec 24, 2021 scanner generated
// fully random IIDs.
func LooksGaussian(h [65]uint64) bool {
	s := SummarizeHamming(h)
	if s.N < 30 {
		return false
	}
	return math.Abs(s.Mean-32) < 2 && math.Abs(s.StdDev-4) < 1.5
}
