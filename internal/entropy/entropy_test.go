package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCounterEmpty(t *testing.T) {
	var c Counter
	if c.Shannon() != 0 || c.Normalized() != 0 || c.Total() != 0 || c.Distinct() != 0 {
		t.Error("zero counter should report zeros")
	}
}

func TestCounterConstant(t *testing.T) {
	var c Counter
	for i := 0; i < 100; i++ {
		c.Observe(40) // e.g. constant TCP SYN length
	}
	if got := c.Shannon(); got != 0 {
		t.Errorf("Shannon of constant = %v", got)
	}
	if got := c.Normalized(); got != 0 {
		t.Errorf("Normalized of constant = %v", got)
	}
}

func TestCounterAllDistinct(t *testing.T) {
	var c Counter
	for i := uint64(0); i < 64; i++ {
		c.Observe(i)
	}
	if got := c.Normalized(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Normalized of all-distinct = %v, want 1", got)
	}
	if got := c.Shannon(); math.Abs(got-6) > 1e-9 {
		t.Errorf("Shannon of 64 distinct = %v, want 6", got)
	}
}

func TestCounterUniformTwoValues(t *testing.T) {
	var c Counter
	c.ObserveN(1, 50)
	c.ObserveN(2, 50)
	if got := c.Shannon(); math.Abs(got-1) > 1e-9 {
		t.Errorf("Shannon = %v, want 1 bit", got)
	}
}

func TestScanLikeLengthDistribution(t *testing.T) {
	// A scanner sending 10k packets of one length with a handful of
	// stragglers must stay under the 0.1 MAWI threshold.
	var c Counter
	c.ObserveN(60, 10000)
	c.Observe(72)
	c.Observe(80)
	if got := c.Normalized(); got >= 0.1 {
		t.Errorf("scan-like distribution entropy %v, want < 0.1", got)
	}
	// Regular traffic with diverse lengths must exceed it.
	var reg Counter
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		reg.Observe(uint64(40 + rng.Intn(1400)))
	}
	if got := reg.Normalized(); got <= 0.1 {
		t.Errorf("diverse distribution entropy %v, want > 0.1", got)
	}
}

func TestCounterMergeEquivalence(t *testing.T) {
	f := func(a, b []uint8) bool {
		var c1, c2, m Counter
		for _, v := range a {
			c1.Observe(uint64(v))
			m.Observe(uint64(v))
		}
		for _, v := range b {
			c2.Observe(uint64(v))
			m.Observe(uint64(v))
		}
		var merged Counter
		merged.Merge(&c1)
		merged.Merge(&c2)
		return math.Abs(merged.Shannon()-m.Shannon()) < 1e-12 &&
			merged.Total() == m.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterReset(t *testing.T) {
	var c Counter
	c.ObserveN(5, 10)
	c.Reset()
	if c.Total() != 0 || c.Distinct() != 0 {
		t.Error("reset did not clear")
	}
	c.Observe(1)
	if c.Total() != 1 {
		t.Error("counter unusable after reset")
	}
}

func TestNormalizedBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		var c Counter
		for _, v := range vals {
			c.Observe(uint64(v))
		}
		n := c.Normalized()
		return n >= 0 && n <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitEntropy64(t *testing.T) {
	if got := BitEntropy64(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Constant values: zero entropy.
	if got := BitEntropy64([]uint64{7, 7, 7, 7}); got != 0 {
		t.Errorf("constant = %v", got)
	}
	// Random values: near 1.
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint64, 4000)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	if got := BitEntropy64(vals); got < 0.95 {
		t.Errorf("random = %v, want ≈1", got)
	}
	// Structured: only low 4 bits vary.
	for i := range vals {
		vals[i] = uint64(rng.Intn(16))
	}
	if got := BitEntropy64(vals); got > 0.1 {
		t.Errorf("structured = %v, want ≈4/64", got)
	}
}

func TestHammingHistogram64(t *testing.T) {
	h := HammingHistogram64([]uint64{0, 1, 3, ^uint64(0)})
	if h[0] != 1 || h[1] != 1 || h[2] != 1 || h[64] != 1 {
		t.Errorf("histogram wrong: %v", h[:5])
	}
	var total uint64
	for _, c := range h {
		total += c
	}
	if total != 4 {
		t.Errorf("total = %d", total)
	}
}

func TestSummarizeHamming(t *testing.T) {
	var h [65]uint64
	h[10] = 5
	s := SummarizeHamming(h)
	if s.N != 5 || s.Mean != 10 || s.StdDev != 0 || s.Median != 10 {
		t.Errorf("stats: %+v", s)
	}
	if s := SummarizeHamming([65]uint64{}); s.N != 0 {
		t.Error("empty histogram")
	}
}

func TestLooksGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint64, 5000)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	if !LooksGaussian(HammingHistogram64(vals)) {
		t.Error("random IIDs should look Gaussian")
	}
	// Low-HW structured addresses should not.
	for i := range vals {
		vals[i] = uint64(i % 8)
	}
	if LooksGaussian(HammingHistogram64(vals)) {
		t.Error("structured IIDs misclassified as Gaussian")
	}
	// Too few samples: never Gaussian.
	if LooksGaussian(HammingHistogram64(vals[:10])) {
		t.Error("tiny sample classified Gaussian")
	}
}
