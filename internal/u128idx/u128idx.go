// Package u128idx provides a cache-friendly open-addressed hash index
// specialized for netaddr6.U128 keys — the state-table primitive under
// the detector's session maps and the IDS engine's candidate tables.
//
// # Design
//
// The index is a swiss-table-style flat layout: one control-byte array
// (7-bit hash fragments plus empty/deleted markers, probed a group of
// eight at a time with branch-free word operations), one contiguous
// key array, and one uint32 value array. Values are indices into a
// consumer-owned slab (the detector's and IDS's per-level session and
// candidate arenas), so the index itself holds no per-entry pointers:
// the garbage collector never traces it bucket by bucket, lookups
// touch two contiguous cache lines per probe group instead of chasing
// bucket chains, and a Reset re-arms the whole table for reuse without
// freeing anything.
//
// Compared with map[netaddr6.U128]*T on the same workloads, the index
// wins on exactly the operations the hot paths are made of: a combined
// lookup-or-insert is a single probe (Ref), eviction sweeps scan flat
// arrays instead of walking map buckets, and value slots are 4 bytes,
// so a probe group's keys and values stay resident in cache.
//
// # Determinism
//
// Probe order depends on the hash and table size and is NOT canonical.
// Range visits entries in slot order (arbitrary, like map iteration);
// any output that must be deterministic goes through AppendKeysSorted
// (or sorts what Range collected), exactly as the snapshot/merge seams
// in core and ids already do. Hashing is seedless and deterministic
// across processes — canonical byte output never depends on it because
// every serialization path sorts first.
//
// # Debug knob
//
// When the U128IDX_DEBUG_TINYCAP environment variable is non-empty,
// every index starts at the minimum capacity (one 8-slot group)
// regardless of size hints, so growth and tombstone-rehash paths are
// exercised constantly. CI runs the detector/IDS parity suites under
// this knob with -race; it is not meant for production use.
package u128idx

import (
	"encoding/binary"
	"math/bits"
	"os"
	"slices"

	"v6scan/internal/netaddr6"
)

// groupSize is the number of control bytes probed per step: one
// 64-bit word.
const groupSize = 8

// Control byte states. Full slots hold the 7-bit hash fragment h2
// (0x00..0x7F, high bit clear); empty and deleted have the high bit
// set so one word-AND finds insertable slots.
const (
	ctrlEmpty   = 0x80
	ctrlDeleted = 0xFE
)

const (
	loBits = 0x0101010101010101
	hiBits = 0x8080808080808080
)

// debugTinyCap forces minimum initial capacity so resize paths run
// under ordinary workloads (set via U128IDX_DEBUG_TINYCAP; see the
// package doc).
var debugTinyCap = os.Getenv("U128IDX_DEBUG_TINYCAP") != ""

// Hash returns the probe hash for a key: a murmur3-style finalizer
// over a rotation-fold of both halves. It is deterministic (seedless)
// — see the package doc for why canonical output never depends on it —
// and strong enough that masked prefix keys (low bits all zero) and
// /128 address keys (high bits shared) both spread across groups.
func Hash(k netaddr6.U128) uint64 {
	x := k.Lo ^ bits.RotateLeft64(k.Hi, 31)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// matchByte returns a word with the high bit set in every byte of g
// equal to b. Exact for the control alphabet in use: the classic
// zero-byte borrow false-positive requires a byte equal to b^0x01
// below a true match in the same word, which the three control states
// plus 7-bit fragments cannot produce for the probes the index issues
// (h2 false positives are filtered by the key comparison anyway).
func matchByte(g uint64, b uint8) uint64 {
	x := g ^ (loBits * uint64(b))
	return (x - loBits) &^ x & hiBits
}

// Index maps netaddr6.U128 keys to uint32 values with open addressing.
// The zero value is an empty index ready for use. Not safe for
// concurrent use; the sharded consumers give each shard its own.
type Index struct {
	ctrl   []uint8         // len = groups*groupSize
	keys   []netaddr6.U128 // parallel to ctrl
	vals   []uint32        // parallel to ctrl
	gmask  uint64          // groups-1 (groups is a power of two)
	n      int             // live entries
	dead   int             // tombstones
	growAt int             // occupied (live+dead) threshold triggering rehash
}

// NewIndex returns an index pre-sized for about hint entries. A zero
// or negative hint (or the zero Index value) starts at one group.
func NewIndex(hint int) *Index {
	ix := new(Index)
	if hint > 0 && !debugTinyCap {
		ix.init(groupsFor(hint))
	}
	return ix
}

// Reserve pre-sizes an empty, never-initialized index for about hint
// entries, saving the doubling steps a zero value would otherwise pay
// on the way up. It is a no-op once the table exists (Reset keeps the
// arrays, so reused indexes are already sized).
func (ix *Index) Reserve(hint int) {
	if ix.ctrl == nil && hint > 0 && !debugTinyCap {
		ix.init(groupsFor(hint))
	}
}

// groupsFor returns the power-of-two group count whose 7/8 load
// threshold accommodates hint entries.
func groupsFor(hint int) uint64 {
	groups := uint64(1)
	for int(groups*groupSize)*7/8 < hint {
		groups *= 2
	}
	return groups
}

func (ix *Index) init(groups uint64) {
	if debugTinyCap {
		groups = 1
	}
	slots := groups * groupSize
	ix.ctrl = make([]uint8, slots)
	for i := range ix.ctrl {
		ix.ctrl[i] = ctrlEmpty
	}
	ix.keys = make([]netaddr6.U128, slots)
	ix.vals = make([]uint32, slots)
	ix.gmask = groups - 1
	ix.growAt = int(slots) * 7 / 8
}

// Len returns the number of live entries.
func (ix *Index) Len() int { return ix.n }

// Cap returns the current slot count (0 before first use). Exposed
// for tests and capacity diagnostics.
func (ix *Index) Cap() int { return len(ix.ctrl) }

// Get looks up a key.
func (ix *Index) Get(k netaddr6.U128) (uint32, bool) {
	return ix.GetH(Hash(k), k)
}

// GetH is Get with a caller-computed hash (the batched pre-hash path:
// one Hash per record group, reused across probe calls).
func (ix *Index) GetH(h uint64, k netaddr6.U128) (uint32, bool) {
	if ix.n == 0 {
		return 0, false
	}
	s := ix.find(h, k)
	if s < 0 {
		return 0, false
	}
	return ix.vals[s], true
}

// find returns the slot of k, or -1. The probe walks groups linearly
// from the hash's home group; a group containing an empty slot
// terminates the chain (insertion would have used it).
func (ix *Index) find(h uint64, k netaddr6.U128) int {
	h2 := uint8(h & 0x7f)
	g := (h >> 7) & ix.gmask
	for {
		cw := binary.LittleEndian.Uint64(ix.ctrl[g*groupSize:])
		m := matchByte(cw, h2)
		for m != 0 {
			s := g*groupSize + uint64(bits.TrailingZeros64(m)>>3)
			if ix.keys[s] == k {
				return int(s)
			}
			m &= m - 1
		}
		if matchByte(cw, ctrlEmpty) != 0 {
			return -1
		}
		g = (g + 1) & ix.gmask
	}
}

// Ref returns a pointer to the value slot for k, inserting the key if
// absent (existed reports which). A fresh slot's value is zeroed; the
// caller assigns it. The pointer is valid only until the next
// mutating call (Put/Ref insert, Delete, Reset) — reads through it
// after that observe unrelated entries.
func (ix *Index) Ref(k netaddr6.U128) (v *uint32, existed bool) {
	return ix.RefH(Hash(k), k)
}

// RefH is Ref with a caller-computed hash.
func (ix *Index) RefH(h uint64, k netaddr6.U128) (v *uint32, existed bool) {
	if ix.ctrl == nil {
		ix.init(1)
	}
	if s := ix.find(h, k); s >= 0 {
		return &ix.vals[s], true
	}
	if ix.n+ix.dead >= ix.growAt {
		ix.rehash()
	}
	s := ix.insertSlot(h)
	if ix.ctrl[s] == ctrlDeleted {
		ix.dead--
	}
	ix.ctrl[s] = uint8(h & 0x7f)
	ix.keys[s] = k
	ix.vals[s] = 0
	ix.n++
	return &ix.vals[s], false
}

// insertSlot returns the first empty-or-deleted slot on k's probe
// chain. Callers have established that k is absent.
func (ix *Index) insertSlot(h uint64) uint64 {
	g := (h >> 7) & ix.gmask
	for {
		cw := binary.LittleEndian.Uint64(ix.ctrl[g*groupSize:])
		if m := cw & hiBits; m != 0 {
			return g*groupSize + uint64(bits.TrailingZeros64(m)>>3)
		}
		g = (g + 1) & ix.gmask
	}
}

// Put sets k's value, inserting if absent.
func (ix *Index) Put(k netaddr6.U128, v uint32) {
	ix.PutH(Hash(k), k, v)
}

// PutH is Put with a caller-computed hash.
func (ix *Index) PutH(h uint64, k netaddr6.U128, v uint32) {
	p, _ := ix.RefH(h, k)
	*p = v
}

// Delete removes k, returning its value. Deleting the key most
// recently yielded by a Range callback is allowed (the slot becomes a
// tombstone or empty in place; nothing moves).
func (ix *Index) Delete(k netaddr6.U128) (uint32, bool) {
	return ix.DeleteH(Hash(k), k)
}

// DeleteH is Delete with a caller-computed hash.
func (ix *Index) DeleteH(h uint64, k netaddr6.U128) (uint32, bool) {
	if ix.n == 0 {
		return 0, false
	}
	s := ix.find(h, k)
	if s < 0 {
		return 0, false
	}
	v := ix.vals[s]
	// If the slot's group still has an empty slot, no probe chain
	// passes through this group, so the slot can re-become empty
	// instead of a tombstone (the abseil "never-full group" rule).
	g := uint64(s) / groupSize
	cw := binary.LittleEndian.Uint64(ix.ctrl[g*groupSize:])
	if matchByte(cw, ctrlEmpty) != 0 {
		ix.ctrl[s] = ctrlEmpty
	} else {
		ix.ctrl[s] = ctrlDeleted
		ix.dead++
	}
	ix.n--
	return v, true
}

// Reset empties the index, retaining its arrays for reuse at the same
// capacity — the recycle-for-reuse discipline of the hot-path arenas.
func (ix *Index) Reset() {
	for i := range ix.ctrl {
		ix.ctrl[i] = ctrlEmpty
	}
	ix.n, ix.dead = 0, 0
}

// rehash rebuilds the table: doubled when genuinely full, at the same
// size when tombstones account for the pressure (churn workloads), so
// sustained delete/insert cycles stay O(1) amortized without growing.
func (ix *Index) rehash() {
	groups := ix.gmask + 1
	if ix.n >= ix.growAt/2 {
		groups *= 2
	}
	oldCtrl, oldKeys, oldVals := ix.ctrl, ix.keys, ix.vals
	slots := groups * groupSize
	ix.ctrl = make([]uint8, slots)
	for i := range ix.ctrl {
		ix.ctrl[i] = ctrlEmpty
	}
	ix.keys = make([]netaddr6.U128, slots)
	ix.vals = make([]uint32, slots)
	ix.gmask = groups - 1
	ix.growAt = int(slots) * 7 / 8
	ix.dead = 0
	for s, c := range oldCtrl {
		if c&0x80 != 0 {
			continue
		}
		h := Hash(oldKeys[s])
		ns := ix.insertSlot(h)
		ix.ctrl[ns] = uint8(h & 0x7f)
		ix.keys[ns] = oldKeys[s]
		ix.vals[ns] = oldVals[s]
	}
}

// Range calls f for every entry in slot order (arbitrary; see the
// package doc) until f returns false. f may Delete the key it was
// called with; it must not insert.
func (ix *Index) Range(f func(k netaddr6.U128, v uint32) bool) {
	for s, c := range ix.ctrl {
		if c&0x80 == 0 {
			if !f(ix.keys[s], ix.vals[s]) {
				return
			}
		}
	}
}

// AppendKeysSorted appends every live key to dst in canonical
// (numeric, equivalently netip.Addr.Compare) order and returns the
// extended slice — the deterministic-iteration helper the
// snapshot/merge seams consume.
func (ix *Index) AppendKeysSorted(dst []netaddr6.U128) []netaddr6.U128 {
	start := len(dst)
	for s, c := range ix.ctrl {
		if c&0x80 == 0 {
			dst = append(dst, ix.keys[s])
		}
	}
	tail := dst[start:]
	slices.SortFunc(tail, netaddr6.U128.Cmp)
	return dst
}
