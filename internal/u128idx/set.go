package u128idx

import (
	"sort"

	"v6scan/internal/netaddr6"
)

// SmallSetSpill is the inline fast-path bound for Set: up to this many
// members live in one small sorted array (binary-searched inserts, no
// hashing, one cache line of keys for the common case); the set spills
// into an Index beyond it. Tuned on BenchmarkDetectorStreaming /
// BenchmarkDetectorSharded4: detector sessions at fine aggregation
// levels overwhelmingly hold a handful of distinct destinations, where
// the sorted array beats any hash table on both time and memory, while
// qualifying scans (hundreds to thousands of members) amortize the
// spill instantly. 16 keeps the array at 256 bytes — two entries short
// of where memmove cost in sorted inserts starts showing up against
// the index at the cutover sizes measured here (12 and 24 were within
// noise on time; 16 wins slightly on allocation volume because fewer
// short-lived sessions spill).
const SmallSetSpill = 16

// Set is a set of netaddr6.U128 values with an inline sorted-array
// fast path before spilling to an open-addressed Index. The zero
// value is an empty set. Reset retains both the array and the spilled
// index for reuse, so pooled owners (recycled detector sessions) add
// members allocation-free in steady state.
type Set struct {
	small []netaddr6.U128 // sorted; authoritative while idx is empty
	idx   Index           // authoritative when non-empty
}

// Len returns the number of members.
func (s *Set) Len() int {
	if n := s.idx.Len(); n > 0 {
		return n
	}
	return len(s.small)
}

// Add inserts k, reporting whether it was absent.
func (s *Set) Add(k netaddr6.U128) bool {
	if s.idx.Len() > 0 {
		_, existed := s.idx.Ref(k)
		return !existed
	}
	if s.small == nil {
		// Materialize the inline array at full capacity in one shot;
		// letting append grow it would cost log2(SmallSetSpill) allocs
		// per materialized set on the session hot path.
		s.small = make([]netaddr6.U128, 0, SmallSetSpill)
	}
	i := sort.Search(len(s.small), func(i int) bool { return s.small[i].Cmp(k) >= 0 })
	if i < len(s.small) && s.small[i] == k {
		return false
	}
	if len(s.small) < SmallSetSpill {
		s.small = append(s.small, netaddr6.U128{})
		copy(s.small[i+1:], s.small[i:])
		s.small[i] = k
		return true
	}
	// Spill: move the array into the index (its backing arrays are
	// reused across lives when the owner recycles), then insert there.
	s.idx.Reserve(4 * SmallSetSpill)
	for _, m := range s.small {
		s.idx.Ref(m)
	}
	s.small = s.small[:0]
	s.idx.Ref(k)
	return true
}

// Contains reports membership.
func (s *Set) Contains(k netaddr6.U128) bool {
	if s.idx.Len() > 0 {
		_, ok := s.idx.Get(k)
		return ok
	}
	i := sort.Search(len(s.small), func(i int) bool { return s.small[i].Cmp(k) >= 0 })
	return i < len(s.small) && s.small[i] == k
}

// Reset empties the set, retaining the inline array and any spilled
// index for reuse.
func (s *Set) Reset() {
	s.small = s.small[:0]
	s.idx.Reset()
}

// AppendSorted appends the members to dst in canonical order and
// returns the extended slice. The inline fast path is already sorted
// (a copy); the spilled path collects and sorts. Callers reuse dst as
// a scratch buffer across calls to keep serialization allocation-free.
func (s *Set) AppendSorted(dst []netaddr6.U128) []netaddr6.U128 {
	if s.idx.Len() > 0 {
		return s.idx.AppendKeysSorted(dst)
	}
	return append(dst, s.small...)
}
