package u128idx

import (
	"encoding/binary"
	"testing"

	"v6scan/internal/netaddr6"
)

// FuzzU128Idx interprets the fuzz input as an op tape against a map
// model: each 3-byte step is (op, keylo, keyhi-ish) over a compact key
// space so the tape revisits keys. Runs in the CI fuzz smoke step.
func FuzzU128Idx(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 2, 0, 2, 1, 0, 3, 0, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 2, 2, 0, 0, 1, 0, 0})
	seed := make([]byte, 0, 3*200)
	for i := 0; i < 200; i++ {
		seed = append(seed, byte(i%5), byte(i), byte(i>>3))
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		ix := NewIndex(0)
		ref := make(map[netaddr6.U128]uint32)
		var step uint32
		for len(data) >= 3 {
			op, b1, b2 := data[0], data[1], data[2]
			data = data[3:]
			step++
			// Two correlated key families so h2 fragments collide
			// within groups now and then.
			k := netaddr6.U128{Hi: uint64(b2 & 3), Lo: uint64(b1)}
			switch op % 5 {
			case 0, 1: // insert/update via Ref
				_, wantExisted := ref[k]
				p, existed := ix.Ref(k)
				if existed != wantExisted {
					t.Fatalf("Ref(%v) existed=%v, want %v", k, existed, wantExisted)
				}
				*p = step
				ref[k] = step
			case 2: // delete
				want, wantOK := ref[k]
				got, ok := ix.Delete(k)
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("Delete(%v) = %d,%v, want %d,%v", k, got, ok, want, wantOK)
				}
				delete(ref, k)
			case 3: // lookup
				want, wantOK := ref[k]
				got, ok := ix.Get(k)
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("Get(%v) = %d,%v, want %d,%v", k, got, ok, want, wantOK)
				}
			case 4: // occasional reset
				if b1%32 == 0 {
					ix.Reset()
					clear(ref)
				}
			}
		}
		if ix.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", ix.Len(), len(ref))
		}
		for k, want := range ref {
			got, ok := ix.Get(k)
			if !ok || got != want {
				t.Fatalf("final Get(%v) = %d,%v, want %d,true", k, got, ok, want)
			}
		}
		// Canonical iteration must be sorted and complete.
		keys := ix.AppendKeysSorted(nil)
		if len(keys) != len(ref) {
			t.Fatalf("AppendKeysSorted: %d keys, want %d", len(keys), len(ref))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1].Cmp(keys[i]) >= 0 {
				t.Fatalf("keys out of order at %d: %v >= %v", i, keys[i-1], keys[i])
			}
		}
	})
}

// FuzzHashConsistency checks Hash is a pure function of the key bytes
// and that Put/Get round-trip for arbitrary 128-bit keys (wide key
// space, unlike FuzzU128Idx's compact one).
func FuzzHashConsistency(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1), uint64(1))
	f.Add(^uint64(0), ^uint64(0), uint64(0), ^uint64(0))
	f.Fuzz(func(t *testing.T, ahi, alo, bhi, blo uint64) {
		a := netaddr6.U128{Hi: ahi, Lo: alo}
		b := netaddr6.U128{Hi: bhi, Lo: blo}
		if Hash(a) != Hash(a) {
			t.Fatal("Hash not deterministic")
		}
		if a == b && Hash(a) != Hash(b) {
			t.Fatal("equal keys, unequal hashes")
		}
		ix := NewIndex(0)
		ix.Put(a, 1)
		ix.Put(b, 2)
		wantA := uint32(1)
		if a == b {
			wantA = 2
		}
		if got, ok := ix.Get(a); !ok || got != wantA {
			t.Fatalf("Get(a) = %d,%v, want %d,true", got, ok, wantA)
		}
		if got, ok := ix.Get(b); !ok || got != 2 {
			t.Fatalf("Get(b) = %d,%v, want 2,true", got, ok)
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], Hash(a))
		_ = buf
	})
}
