package u128idx

import (
	"testing"

	"v6scan/internal/netaddr6"
)

const benchKeys = 1 << 14

func benchKeySet() []netaddr6.U128 {
	keys := make([]netaddr6.U128, benchKeys)
	for i := range keys {
		// splitmix-style spread so the keys behave like masked prefixes.
		z := uint64(i)*0x9e3779b97f4a7c15 + 1
		keys[i] = netaddr6.U128{Hi: z ^ z>>31, Lo: uint64(i) << 16}
	}
	return keys
}

// BenchmarkU128IdxInsert measures bulk insert into a reused (Reset)
// table, the detector's session-create path.
func BenchmarkU128IdxInsert(b *testing.B) {
	keys := benchKeySet()
	ix := NewIndex(benchKeys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Reset()
		for j, k := range keys {
			p, _ := ix.Ref(k)
			*p = uint32(j)
		}
	}
}

// BenchmarkMapU128Insert is the builtin-map baseline for Insert.
func BenchmarkMapU128Insert(b *testing.B) {
	keys := benchKeySet()
	m := make(map[netaddr6.U128]uint32, benchKeys)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(m)
		for j, k := range keys {
			m[k] = uint32(j)
		}
	}
}

// BenchmarkU128IdxLookup measures hit lookups on a full table, the
// detector's session-update path.
func BenchmarkU128IdxLookup(b *testing.B) {
	keys := benchKeySet()
	ix := NewIndex(benchKeys)
	for j, k := range keys {
		ix.Put(k, uint32(j))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			v, _ := ix.Get(k)
			sink += v
		}
	}
	_ = sink
}

// BenchmarkMapU128Lookup is the builtin-map baseline for Lookup.
func BenchmarkMapU128Lookup(b *testing.B) {
	keys := benchKeySet()
	m := make(map[netaddr6.U128]uint32, benchKeys)
	for j, k := range keys {
		m[k] = uint32(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			sink += m[k]
		}
	}
	_ = sink
}

// BenchmarkU128IdxChurn measures steady-state delete+insert over a
// fixed working set — the session timeout/recycle pattern, which is
// where tombstone handling earns or loses its keep.
func BenchmarkU128IdxChurn(b *testing.B) {
	keys := benchKeySet()
	ix := NewIndex(benchKeys)
	for j, k := range keys {
		ix.Put(k, uint32(j))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, k := range keys {
			ix.Delete(k)
			ix.Put(k, uint32(j))
		}
	}
}

// BenchmarkMapU128Churn is the builtin-map baseline for Churn.
func BenchmarkMapU128Churn(b *testing.B) {
	keys := benchKeySet()
	m := make(map[netaddr6.U128]uint32, benchKeys)
	for j, k := range keys {
		m[k] = uint32(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, k := range keys {
			delete(m, k)
			m[k] = uint32(j)
		}
	}
}
