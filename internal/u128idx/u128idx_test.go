package u128idx

import (
	"math/rand"
	"sort"
	"testing"

	"v6scan/internal/netaddr6"
)

// refModel drives an Index and a map[U128]uint32 through the same
// operation sequence and asserts equivalence after every step.
type refModel struct {
	t   *testing.T
	ix  *Index
	ref map[netaddr6.U128]uint32
}

func newModel(t *testing.T, hint int) *refModel {
	return &refModel{t: t, ix: NewIndex(hint), ref: make(map[netaddr6.U128]uint32)}
}

func (m *refModel) put(k netaddr6.U128, v uint32) {
	m.t.Helper()
	_, wantExisted := m.ref[k]
	p, existed := m.ix.Ref(k)
	if existed != wantExisted {
		m.t.Fatalf("Ref(%v) existed=%v, want %v", k, existed, wantExisted)
	}
	*p = v
	m.ref[k] = v
}

func (m *refModel) del(k netaddr6.U128) {
	m.t.Helper()
	want, wantOK := m.ref[k]
	got, ok := m.ix.Delete(k)
	if ok != wantOK || (ok && got != want) {
		m.t.Fatalf("Delete(%v) = %d,%v, want %d,%v", k, got, ok, want, wantOK)
	}
	delete(m.ref, k)
}

func (m *refModel) get(k netaddr6.U128) {
	m.t.Helper()
	want, wantOK := m.ref[k]
	got, ok := m.ix.Get(k)
	if ok != wantOK || (ok && got != want) {
		m.t.Fatalf("Get(%v) = %d,%v, want %d,%v", k, got, ok, want, wantOK)
	}
}

func (m *refModel) reset() {
	m.ix.Reset()
	clear(m.ref)
}

// check verifies full equivalence: length, membership both ways, and
// canonical iteration order.
func (m *refModel) check() {
	m.t.Helper()
	if m.ix.Len() != len(m.ref) {
		m.t.Fatalf("Len = %d, want %d", m.ix.Len(), len(m.ref))
	}
	seen := 0
	m.ix.Range(func(k netaddr6.U128, v uint32) bool {
		want, ok := m.ref[k]
		if !ok {
			m.t.Fatalf("Range yielded absent key %v", k)
		}
		if v != want {
			m.t.Fatalf("Range %v = %d, want %d", k, v, want)
		}
		seen++
		return true
	})
	if seen != len(m.ref) {
		m.t.Fatalf("Range yielded %d entries, want %d", seen, len(m.ref))
	}
	wantKeys := make([]netaddr6.U128, 0, len(m.ref))
	for k := range m.ref {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i].Cmp(wantKeys[j]) < 0 })
	gotKeys := m.ix.AppendKeysSorted(nil)
	if len(gotKeys) != len(wantKeys) {
		m.t.Fatalf("AppendKeysSorted: %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			m.t.Fatalf("AppendKeysSorted[%d] = %v, want %v", i, gotKeys[i], wantKeys[i])
		}
	}
}

// randomKey draws from a small key space so the sequence revisits keys
// (exercising updates, deletes of live keys, and tombstone reuse).
func randomKey(rng *rand.Rand, space int) netaddr6.U128 {
	n := uint64(rng.Intn(space))
	switch rng.Intn(3) {
	case 0: // /128-style: varying low bits
		return netaddr6.U128{Hi: 0x20010db800000000, Lo: n}
	case 1: // masked-prefix-style: varying high bits, zero low
		return netaddr6.U128{Hi: 0x2001000000000000 | n<<16, Lo: 0}
	default: // adversarial-ish: both halves correlated
		return netaddr6.U128{Hi: n, Lo: n}
	}
}

// TestIndexDifferentialRandomOps is the property test of record: random
// insert/update/delete/get/reset sequences against the map model, at
// hint sizes spanning the growth schedule.
func TestIndexDifferentialRandomOps(t *testing.T) {
	for _, hint := range []int{0, 1, 7, 64, 1024} {
		rng := rand.New(rand.NewSource(int64(hint)*7919 + 1))
		m := newModel(t, hint)
		for step := 0; step < 20_000; step++ {
			k := randomKey(rng, 512)
			switch op := rng.Intn(10); {
			case op < 5:
				m.put(k, uint32(step))
			case op < 7:
				m.del(k)
			case op < 9:
				m.get(k)
			default:
				if rng.Intn(200) == 0 {
					m.reset()
				}
			}
			if step%997 == 0 {
				m.check()
			}
		}
		m.check()
	}
}

// TestIndexChurnRehashesInPlace drives sustained delete/insert cycles
// over a fixed-size working set: tombstone pressure must trigger
// same-size rehashes, not unbounded growth.
func TestIndexChurnRehashesInPlace(t *testing.T) {
	if debugTinyCap {
		t.Skip("capacity schedule intentionally perturbed by U128IDX_DEBUG_TINYCAP")
	}
	ix := NewIndex(64)
	keys := make([]netaddr6.U128, 64)
	for i := range keys {
		keys[i] = netaddr6.U128{Hi: uint64(i), Lo: ^uint64(i)}
	}
	for i, k := range keys {
		ix.Put(k, uint32(i))
	}
	capBefore := ix.Cap()
	for cycle := 0; cycle < 10_000; cycle++ {
		k := keys[cycle%len(keys)]
		if _, ok := ix.Delete(k); !ok {
			t.Fatalf("cycle %d: key missing", cycle)
		}
		ix.Put(k, uint32(cycle))
	}
	if ix.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(keys))
	}
	if ix.Cap() > capBefore*2 {
		t.Fatalf("churn grew table from %d to %d slots; tombstones not reclaimed", capBefore, ix.Cap())
	}
}

// TestIndexRangeDeleteCurrent exercises the documented delete-during-
// Range contract the eviction sweeps rely on.
func TestIndexRangeDeleteCurrent(t *testing.T) {
	ix := NewIndex(0)
	const n = 1000
	for i := 0; i < n; i++ {
		ix.Put(netaddr6.U128{Hi: uint64(i) * 0x9e3779b9, Lo: uint64(i)}, uint32(i))
	}
	ix.Range(func(k netaddr6.U128, v uint32) bool {
		if v%2 == 0 {
			if _, ok := ix.Delete(k); !ok {
				t.Fatalf("delete of current key %v failed", k)
			}
		}
		return true
	})
	if ix.Len() != n/2 {
		t.Fatalf("Len = %d after deleting evens, want %d", ix.Len(), n/2)
	}
	ix.Range(func(k netaddr6.U128, v uint32) bool {
		if v%2 == 0 {
			t.Fatalf("even entry %d survived", v)
		}
		return true
	})
}

// TestIndexRefPointerWrite verifies the single-probe read-modify-write
// pattern the detector hot path uses.
func TestIndexRefPointerWrite(t *testing.T) {
	ix := NewIndex(0)
	k := netaddr6.U128{Hi: 1, Lo: 2}
	p, existed := ix.Ref(k)
	if existed {
		t.Fatal("fresh key reported existing")
	}
	if *p != 0 {
		t.Fatalf("fresh slot = %d, want 0", *p)
	}
	*p = 42
	if v, ok := ix.Get(k); !ok || v != 42 {
		t.Fatalf("Get = %d,%v, want 42,true", v, ok)
	}
	p2, existed := ix.Ref(k)
	if !existed || *p2 != 42 {
		t.Fatalf("re-Ref = %d,%v, want 42,true", *p2, existed)
	}
}

// TestSetDifferential drives Set through random adds/resets against a
// map model, crossing the spill threshold both ways via Reset.
func TestSetDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s Set
	ref := make(map[netaddr6.U128]struct{})
	check := func() {
		t.Helper()
		if s.Len() != len(ref) {
			t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
		}
		got := s.AppendSorted(nil)
		want := make([]netaddr6.U128, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Cmp(want[j]) < 0 })
		if len(got) != len(want) {
			t.Fatalf("AppendSorted: %d members, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("AppendSorted[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	for step := 0; step < 30_000; step++ {
		k := randomKey(rng, 300)
		switch {
		case rng.Intn(100) == 0:
			s.Reset()
			clear(ref)
		default:
			_, existed := ref[k]
			if added := s.Add(k); added != !existed {
				t.Fatalf("Add(%v) = %v with map existing=%v", k, added, existed)
			}
			ref[k] = struct{}{}
			if s.Contains(k) != true {
				t.Fatalf("Contains(%v) = false after Add", k)
			}
		}
		if step%613 == 0 {
			check()
		}
	}
	check()
}

// TestSetSpillBoundary pins the inline→spilled transition exactly at
// SmallSetSpill and membership integrity across it.
func TestSetSpillBoundary(t *testing.T) {
	var s Set
	for i := 0; i < SmallSetSpill; i++ {
		s.Add(netaddr6.U128{Lo: uint64(i)})
	}
	if s.idx.Len() > 0 {
		t.Fatalf("spilled at %d members; inline bound is %d", s.Len(), SmallSetSpill)
	}
	s.Add(netaddr6.U128{Lo: uint64(SmallSetSpill)})
	if s.idx.Len() != SmallSetSpill+1 {
		t.Fatalf("no spill past the bound (idx.Len=%d)", s.idx.Len())
	}
	for i := 0; i <= SmallSetSpill; i++ {
		if !s.Contains(netaddr6.U128{Lo: uint64(i)}) {
			t.Fatalf("member %d lost across spill", i)
		}
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after Reset", s.Len())
	}
	if !s.Add(netaddr6.U128{Lo: 7}) || s.Len() != 1 {
		t.Fatal("post-Reset Add broken")
	}
	// Back on the inline path after Reset.
	if len(s.small) != 1 {
		t.Fatalf("post-Reset inline array has %d members, want 1", len(s.small))
	}
}
