package sim

import (
	"testing"
	"time"

	"v6scan/internal/artifacts"
	"v6scan/internal/layers"
	"v6scan/internal/netaddr6"
	"v6scan/internal/scanner"
)

// runSixWeeks executes a six-week slice of the experiment once and
// shares the result across integration tests.
var sixWeeks *Result

func sixWeeksResult(t *testing.T) *Result {
	t.Helper()
	if sixWeeks != nil {
		return sixWeeks
	}
	cfg := QuickConfig(1200, 15, time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC), 42)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sixWeeks = res
	return res
}

func TestRunProducesScansAtAllLevels(t *testing.T) {
	res := sixWeeksResult(t)
	for _, lvl := range netaddr6.Levels() {
		if len(res.Scans(lvl)) == 0 {
			t.Errorf("no scans at %v", lvl)
		}
	}
	if res.RecordsGenerated == 0 || res.RecordsLogged == 0 || res.RecordsDetected == 0 {
		t.Errorf("counters: %+v", res)
	}
	// The collection policy and artifact filter must both bite.
	if res.RecordsLogged >= res.RecordsGenerated {
		t.Error("collection policy dropped nothing (TCP/80+443 exist in census)")
	}
	if res.RecordsDetected >= res.RecordsLogged {
		t.Error("artifact filter dropped nothing")
	}
}

func TestAggregationShapesTable1(t *testing.T) {
	res := sixWeeksResult(t)
	t128 := res.Detector.TotalsFor(netaddr6.Agg128)
	t64 := res.Detector.TotalsFor(netaddr6.Agg64)
	t48 := res.Detector.TotalsFor(netaddr6.Agg48)

	// Table 1 shape: scans at /128 far exceed scans at /64; packets
	// attributed grow (slightly) with coarser aggregation; /64 source
	// count is far below /128.
	if t128.Scans < 2*t64.Scans {
		t.Errorf("scans /128=%d /64=%d: expected ≥2x", t128.Scans, t64.Scans)
	}
	if t128.Sources <= t64.Sources {
		t.Errorf("sources /128=%d /64=%d", t128.Sources, t64.Sources)
	}
	if t48.Packets < t64.Packets || t64.Packets < t128.Packets {
		t.Errorf("packets not monotone: %d %d %d", t128.Packets, t64.Packets, t48.Packets)
	}
}

func TestTopTwoConcentration(t *testing.T) {
	res := sixWeeksResult(t)
	scans := res.Scans(netaddr6.Agg64)
	perSrc := map[string]uint64{}
	var total uint64
	for _, s := range scans {
		perSrc[s.Source.String()] += s.Packets
		total += s.Packets
	}
	var top1, top2 uint64
	for _, p := range perSrc {
		if p > top1 {
			top1, top2 = p, top1
		} else if p > top2 {
			top2 = p
		}
	}
	share := float64(top1+top2) / float64(total)
	if share < 0.55 {
		t.Errorf("top-2 source share = %.2f, want ≥0.55 (paper ≈0.70)", share)
	}
}

func TestArtifactsFiltered(t *testing.T) {
	res := sixWeeksResult(t)
	// No artifact client (eyeball space) may surface as a scan source.
	for _, s := range res.Scans(netaddr6.Agg64) {
		if artifacts.EyeballSpace.Contains(s.Source.Addr()) {
			t.Errorf("artifact source %v detected as scan", s.Source)
		}
	}
	// The filter's top services are the artifact ports.
	top := res.Filter.TopFilteredServices(2)
	if len(top) < 2 {
		t.Fatalf("filtered services: %+v", top)
	}
	names := map[string]bool{top[0].Service.String(): true, top[1].Service.String(): true}
	if !names["TCP/25"] && !names["UDP/500"] {
		t.Errorf("top filtered services %v, want TCP/25 and UDP/500", names)
	}
}

func TestNoExcludedPortsReachDetector(t *testing.T) {
	res := sixWeeksResult(t)
	for _, s := range res.Scans(netaddr6.Agg64) {
		for svc := range s.Ports {
			if svc.Proto == layers.ProtoTCP && (svc.Port == 80 || svc.Port == 443) {
				t.Fatalf("excluded port TCP/%d in scan from %v", svc.Port, s.Source)
			}
			if svc.Proto == layers.ProtoICMPv6 {
				t.Fatalf("ICMPv6 logged by CDN policy")
			}
		}
	}
}

func TestScanSourcesAttributable(t *testing.T) {
	res := sixWeeksResult(t)
	for _, s := range res.Scans(netaddr6.Agg64) {
		if _, _, ok := res.DB.Attribute(s.Source.Addr()); !ok {
			t.Errorf("scan source %v not attributable to an AS", s.Source)
		}
	}
}

func TestMultiPortDominatesPackets(t *testing.T) {
	// Figure 4 shape: most scan packets belong to scans targeting >100
	// ports (AS #1 pre-switch, AS #2, AS #3).
	res := sixWeeksResult(t)
	var total, over100 uint64
	for _, s := range res.Scans(netaddr6.Agg64) {
		total += s.Packets
		if s.Class() == 3 { // PortsOver100
			over100 += s.Packets
		}
	}
	if total == 0 {
		t.Fatal("no scan packets")
	}
	if share := float64(over100) / float64(total); share < 0.5 {
		t.Errorf(">100-port packet share = %.2f, want ≥0.5 (paper ≈0.8)", share)
	}
}

func TestAS18IsLargestSourcePopulation(t *testing.T) {
	// Paper: AS #18 contains ~80% of all /64 scan sources over the full
	// 15-month window. On a six-week slice we assert the weaker,
	// window-proportional property: AS #18 holds more distinct /64 scan
	// sources than any other AS.
	res := sixWeeksResult(t)
	perAS := map[int]map[string]bool{}
	for _, s := range res.Scans(netaddr6.Agg64) {
		as, _, ok := res.DB.Attribute(s.Source.Addr())
		if !ok {
			continue
		}
		if perAS[as.Number] == nil {
			perAS[as.Number] = map[string]bool{}
		}
		perAS[as.Number][s.Source.String()] = true
	}
	as18 := len(perAS[scanner.ASNOfRank(18)])
	for asn, srcs := range perAS {
		if asn != scanner.ASNOfRank(18) && len(srcs) > as18 {
			t.Errorf("AS%d has %d /64 sources > AS18's %d", asn, len(srcs), as18)
		}
	}
	if as18 == 0 {
		t.Fatal("AS18 produced no /64 scan sources")
	}
}

func TestThreshold50ExplodesSources(t *testing.T) {
	// Section 2.2 sensitivity: dropping the destination threshold from
	// 100 to 50 multiplies /64 sources, dominated by AS #18.
	start := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	strict := QuickConfig(1200, 15, start, 21)
	relaxed := QuickConfig(1200, 15, start, 21)
	relaxed.Detector.MinDsts = 50

	rs, err := Run(strict)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Run(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	nStrict := rs.Detector.TotalsFor(netaddr6.Agg64).Sources
	nRelaxed := rr.Detector.TotalsFor(netaddr6.Agg64).Sources
	if float64(nRelaxed) < 1.4*float64(nStrict) {
		t.Errorf("sources at 50 = %d vs at 100 = %d: expected ≥1.4x", nRelaxed, nStrict)
	}
	// The new sources must be dominated by AS #18 (paper: 92%).
	as18 := scanner.Alloc(scanner.ASNOfRank(18))
	n18 := 0
	seen := map[string]bool{}
	for _, s := range rr.Scans(netaddr6.Agg64) {
		if seen[s.Source.String()] {
			continue
		}
		seen[s.Source.String()] = true
		if as18.Contains(s.Source.Addr()) {
			n18++
		}
	}
	if n18*2 < nRelaxed-nStrict {
		t.Errorf("AS18 sources at threshold 50 = %d of %d new", n18, nRelaxed-nStrict)
	}
}

func TestTimeoutInsensitivity(t *testing.T) {
	// Section 2.2: shortening the timeout from 3600s to 900s loses only
	// a few percent of scans.
	start := time.Date(2021, 2, 1, 0, 0, 0, 0, time.UTC)
	long := QuickConfig(1200, 15, start, 21)
	short := QuickConfig(1200, 15, start, 21)
	short.Detector.Timeout = 900 * time.Second

	rl, err := Run(long)
	if err != nil {
		t.Fatal(err)
	}
	rsh, err := Run(short)
	if err != nil {
		t.Fatal(err)
	}
	nLong := rl.Detector.TotalsFor(netaddr6.Agg64).Scans
	nShort := rsh.Detector.TotalsFor(netaddr6.Agg64).Scans
	lo, hi := int(float64(nLong)*0.85), int(float64(nLong)*1.2)
	if nShort < lo || nShort > hi {
		t.Errorf("scans at 900s = %d vs 3600s = %d: expected within ≈15%%", nShort, nLong)
	}
}

func TestShardedRunMatchesSerial(t *testing.T) {
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	serial, err := Run(QuickConfig(600, 8, start, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := QuickConfig(600, 8, start, 7)
	cfg.Shards = 4
	sharded, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.RecordsGenerated != sharded.RecordsGenerated ||
		serial.RecordsLogged != sharded.RecordsLogged ||
		serial.RecordsDetected != sharded.RecordsDetected {
		t.Errorf("counters differ: %d/%d/%d vs %d/%d/%d",
			serial.RecordsGenerated, serial.RecordsLogged, serial.RecordsDetected,
			sharded.RecordsGenerated, sharded.RecordsLogged, sharded.RecordsDetected)
	}
	for _, lvl := range netaddr6.Levels() {
		ss, sh := serial.Scans(lvl), sharded.Scans(lvl)
		if len(ss) != len(sh) {
			t.Fatalf("%v scan counts differ: %d vs %d", lvl, len(ss), len(sh))
		}
		for i := range ss {
			if ss[i].Source != sh[i].Source || ss[i].Packets != sh[i].Packets ||
				ss[i].Dsts != sh[i].Dsts || !ss[i].Start.Equal(sh[i].Start) {
				t.Fatalf("%v scan %d differs: %+v vs %+v", lvl, i, ss[i], sh[i])
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	start := time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC)
	a, err := Run(QuickConfig(600, 8, start, 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(QuickConfig(600, 8, start, 7))
	if err != nil {
		t.Fatal(err)
	}
	if a.RecordsGenerated != b.RecordsGenerated || a.RecordsDetected != b.RecordsDetected {
		t.Errorf("counters differ: %d/%d vs %d/%d",
			a.RecordsGenerated, a.RecordsDetected, b.RecordsGenerated, b.RecordsDetected)
	}
	sa, sb := a.Scans(netaddr6.Agg64), b.Scans(netaddr6.Agg64)
	if len(sa) != len(sb) {
		t.Fatalf("scan counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Source != sb[i].Source || sa[i].Packets != sb[i].Packets {
			t.Fatalf("scan %d differs", i)
		}
	}
}
