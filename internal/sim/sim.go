// Package sim drives end-to-end CDN experiments: it wires a telescope,
// the Table-2 scan-actor census, and the artifact population into one
// day-by-day record stream and runs it through the standard pipeline —
// collection policy, day sorter, 5-duplicate artifact filter, and the
// multi-aggregation scan detector (sharded across workers when
// Config.Shards > 1). Every table and figure of the paper's CDN
// sections is computed from the outputs of a Run.
package sim

import (
	"context"
	"fmt"
	"time"

	"v6scan/internal/artifacts"
	"v6scan/internal/asdb"
	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/pipeline"
	"v6scan/internal/scanner"
	"v6scan/internal/telescope"
)

// Config assembles one experiment.
type Config struct {
	Telescope telescope.Config
	Census    scanner.CensusConfig
	Artifacts artifacts.Config
	Detector  core.Config
	// Shards > 1 runs detection on the sharded detector with that many
	// worker shards; results are identical to the single-shard path.
	Shards int
	// RawSink, when set, receives every record before policy filtering
	// (Figure 1 consumes the pre-filter view).
	RawSink pipeline.RecordSink
	// FilteredSink, when set, receives every record surviving the
	// artifact filter, in detector order.
	FilteredSink pipeline.RecordSink
}

// DefaultConfig returns a full-window, laptop-scale experiment.
func DefaultConfig() Config {
	det := core.DefaultConfig()
	det.WeekEpoch = scanner.DefaultStart
	return Config{
		Telescope: telescope.DefaultConfig(),
		Census:    scanner.DefaultCensusConfig(),
		Artifacts: artifacts.DefaultConfig(),
		Detector:  det,
	}
}

// Result is everything a Run produces.
type Result struct {
	Telescope *telescope.Telescope
	DB        *asdb.DB
	Census    *scanner.Census
	Detector  *core.Detector
	Filter    firewall.FilterStats

	// RecordsGenerated counts records before the collection policy.
	RecordsGenerated uint64
	// RecordsLogged counts records admitted by the collection policy.
	RecordsLogged uint64
	// RecordsDetected counts records that reached the detector.
	RecordsDetected uint64
}

// Scans returns the detected scans at a level.
func (r *Result) Scans(level netaddr6.AggLevel) []core.Scan {
	return r.Detector.Scans(level)
}

// Run executes the experiment. It is deterministic under the config's
// seeds, regardless of shard count.
func Run(cfg Config) (*Result, error) {
	db := asdb.New()
	tele, err := telescope.New(cfg.Telescope, db)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	census, err := scanner.BuildCensus(cfg.Census, tele, db)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	arts := artifacts.New(cfg.Artifacts, tele, db)
	if cfg.Detector.WeekEpoch.IsZero() {
		cfg.Detector.WeekEpoch = cfg.Census.Start
	}

	src := pipeline.SourceFunc(func(emit func(firewall.Record) error) error {
		var emitErr error
		collect := func(r firewall.Record) {
			if emitErr == nil {
				emitErr = emit(r)
			}
		}
		for day := cfg.Census.Start; day.Before(cfg.Census.End); day = day.Add(24 * time.Hour) {
			census.EmitDay(day, collect)
			arts.EmitDay(day, collect)
			if emitErr != nil {
				return emitErr
			}
		}
		return nil
	})

	// The paper's chain, left to right: generated counter (+ raw tap)
	// → collection policy → logged counter → day sorter → artifact
	// filter → detected counter (+ filtered tap) → detector.
	filter := firewall.NewArtifactFilter()
	var generated, logged, detected *pipeline.Counter
	b := pipeline.From(src).Counter(&generated)
	if cfg.RawSink != nil {
		b.Tee(cfg.RawSink)
	}
	b.Policy(firewall.DefaultCollectPolicy()).Counter(&logged).DaySort().Artifact(filter).Counter(&detected)
	if cfg.FilteredSink != nil {
		b.Tee(cfg.FilteredSink)
	}
	det, err := b.Detect(context.Background(), cfg.Detector, cfg.Shards)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}

	return &Result{
		Telescope:        tele,
		DB:               db,
		Census:           census,
		Detector:         det,
		Filter:           filter.Stats(),
		RecordsGenerated: generated.Count(),
		RecordsLogged:    logged.Count(),
		RecordsDetected:  detected.Count(),
	}, nil
}

// QuickConfig returns a reduced-window configuration for tests: a
// telescope of the given size and a census covering [start, start+days).
func QuickConfig(machines, ases int, start time.Time, days int) Config {
	cfg := DefaultConfig()
	cfg.Telescope.Machines = machines
	cfg.Telescope.ASes = ases
	cfg.Census.Start = start
	cfg.Census.End = start.Add(time.Duration(days) * 24 * time.Hour)
	cfg.Detector.WeekEpoch = start
	return cfg
}
