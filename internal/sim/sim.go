// Package sim drives end-to-end CDN experiments: it wires a telescope,
// the Table-2 scan-actor census, and the artifact population into one
// day-by-day record stream, applies the collection policy and the
// 5-duplicate artifact filter, and feeds the survivors to the
// multi-aggregation scan detector. Every table and figure of the
// paper's CDN sections is computed from the outputs of a Run.
package sim

import (
	"fmt"
	"sort"
	"time"

	"v6scan/internal/artifacts"
	"v6scan/internal/asdb"
	"v6scan/internal/core"
	"v6scan/internal/firewall"
	"v6scan/internal/netaddr6"
	"v6scan/internal/scanner"
	"v6scan/internal/telescope"
)

// Config assembles one experiment.
type Config struct {
	Telescope telescope.Config
	Census    scanner.CensusConfig
	Artifacts artifacts.Config
	Detector  core.Config
	// RawTap, when set, receives every record before policy filtering
	// (Figure 1 consumes the pre-filter view).
	RawTap func(firewall.Record)
	// FilteredTap, when set, receives every record surviving the
	// artifact filter, in detector order.
	FilteredTap func(firewall.Record)
}

// DefaultConfig returns a full-window, laptop-scale experiment.
func DefaultConfig() Config {
	det := core.DefaultConfig()
	det.WeekEpoch = scanner.DefaultStart
	return Config{
		Telescope: telescope.DefaultConfig(),
		Census:    scanner.DefaultCensusConfig(),
		Artifacts: artifacts.DefaultConfig(),
		Detector:  det,
	}
}

// Result is everything a Run produces.
type Result struct {
	Telescope *telescope.Telescope
	DB        *asdb.DB
	Census    *scanner.Census
	Detector  *core.Detector
	Filter    firewall.FilterStats

	// RecordsGenerated counts records before the collection policy.
	RecordsGenerated uint64
	// RecordsLogged counts records admitted by the collection policy.
	RecordsLogged uint64
	// RecordsDetected counts records that reached the detector.
	RecordsDetected uint64
}

// Scans returns the detected scans at a level.
func (r *Result) Scans(level netaddr6.AggLevel) []core.Scan {
	return r.Detector.Scans(level)
}

// Run executes the experiment. It is deterministic under the config's
// seeds.
func Run(cfg Config) (*Result, error) {
	db := asdb.New()
	tele, err := telescope.New(cfg.Telescope, db)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	census, err := scanner.BuildCensus(cfg.Census, tele, db)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	arts := artifacts.New(cfg.Artifacts, tele, db)
	if cfg.Detector.WeekEpoch.IsZero() {
		cfg.Detector.WeekEpoch = cfg.Census.Start
	}
	det := core.NewDetector(cfg.Detector)
	policy := firewall.DefaultCollectPolicy()
	filter := firewall.NewArtifactFilter()

	res := &Result{Telescope: tele, DB: db, Census: census, Detector: det}

	var dayBuf []firewall.Record
	process := func(recs []firewall.Record) error {
		for _, r := range recs {
			res.RecordsDetected++
			if cfg.FilteredTap != nil {
				cfg.FilteredTap(r)
			}
			if err := det.Process(r); err != nil {
				return err
			}
		}
		return nil
	}

	for day := cfg.Census.Start; day.Before(cfg.Census.End); day = day.Add(24 * time.Hour) {
		dayBuf = dayBuf[:0]
		collect := func(r firewall.Record) {
			res.RecordsGenerated++
			if cfg.RawTap != nil {
				cfg.RawTap(r)
			}
			if !policy.Admit(r) {
				return
			}
			res.RecordsLogged++
			dayBuf = append(dayBuf, r)
		}
		census.EmitDay(day, collect)
		arts.EmitDay(day, collect)
		sort.SliceStable(dayBuf, func(i, j int) bool { return dayBuf[i].Time.Before(dayBuf[j].Time) })
		for _, r := range dayBuf {
			if out := filter.Push(r); len(out) > 0 {
				if err := process(out); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := process(filter.Close()); err != nil {
		return nil, err
	}
	det.Finish()
	res.Filter = filter.Stats()
	return res, nil
}

// QuickConfig returns a reduced-window configuration for tests: a
// telescope of the given size and a census covering [start, start+days).
func QuickConfig(machines, ases int, start time.Time, days int) Config {
	cfg := DefaultConfig()
	cfg.Telescope.Machines = machines
	cfg.Telescope.ASes = ases
	cfg.Census.Start = start
	cfg.Census.End = start.Add(time.Duration(days) * 24 * time.Hour)
	cfg.Detector.WeekEpoch = start
	return cfg
}
