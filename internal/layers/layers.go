// Package layers implements zero-copy decoding and serialization for
// the protocol stack the telescope and the MAWI vantage observe:
// Ethernet, IPv6 (including hop-by-hop, destination-options, routing
// and fragment extension headers), TCP, UDP, and ICMPv6.
//
// The design follows the gopacket DecodingLayer idiom: each layer type
// has a DecodeFromBytes method that parses into a preallocated struct
// without copying payload bytes, and a SerializeTo method that prepends
// its wire form onto a SerializeBuffer. Parsing a full frame with a
// reused Decoded struct performs no per-packet allocations, which is
// what lets the simulators push tens of millions of packets through the
// detection pipeline in benchmarks.
package layers

import (
	"errors"
	"fmt"
)

// LayerType identifies a protocol layer handled by this package.
type LayerType int

// Layer types.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv6
	LayerTypeIPv6Extension
	LayerTypeTCP
	LayerTypeUDP
	LayerTypeICMPv6
	LayerTypePayload
)

// String names the layer type.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv6:
		return "IPv6"
	case LayerTypeIPv6Extension:
		return "IPv6Extension"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeICMPv6:
		return "ICMPv6"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
}

// IPProtocol is an IPv6 next-header / protocol number.
type IPProtocol uint8

// Protocol numbers used by the telescope.
const (
	ProtoHopByHop IPProtocol = 0
	ProtoTCP      IPProtocol = 6
	ProtoUDP      IPProtocol = 17
	ProtoRouting  IPProtocol = 43
	ProtoFragment IPProtocol = 44
	ProtoICMPv6   IPProtocol = 58
	ProtoNoNext   IPProtocol = 59
	ProtoDestOpts IPProtocol = 60
)

// String names common protocols the way the paper's tables do
// ("TCP/22" is rendered by callers as Proto.String() + "/" + port).
func (p IPProtocol) String() string {
	switch p {
	case ProtoHopByHop:
		return "HopByHop"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	case ProtoRouting:
		return "Routing"
	case ProtoFragment:
		return "Fragment"
	case ProtoICMPv6:
		return "ICMPv6"
	case ProtoNoNext:
		return "NoNextHeader"
	case ProtoDestOpts:
		return "DestOpts"
	default:
		return fmt.Sprintf("Proto(%d)", uint8(p))
	}
}

// IsExtension reports whether p is an IPv6 extension header this
// package can skip while walking the header chain.
func (p IPProtocol) IsExtension() bool {
	switch p {
	case ProtoHopByHop, ProtoRouting, ProtoFragment, ProtoDestOpts:
		return true
	default:
		return false
	}
}

// Decoding errors. Callers (the firewall ingest path, the MAWI reader)
// branch on these to count malformed packets without stopping.
var (
	ErrTruncated     = errors.New("layers: packet truncated")
	ErrNotIPv6       = errors.New("layers: not an IPv6 packet")
	ErrUnknownNext   = errors.New("layers: unsupported next header")
	ErrChainTooLong  = errors.New("layers: extension header chain too long")
	ErrBadHeaderSize = errors.New("layers: invalid header size field")
)

// SerializeOptions controls serialization behaviour, mirroring
// gopacket.SerializeOptions.
type SerializeOptions struct {
	// FixLengths recomputes length fields (IPv6 payload length, UDP
	// length) from actual payload sizes.
	FixLengths bool
	// ComputeChecksums recomputes TCP/UDP/ICMPv6 checksums over the
	// IPv6 pseudo-header.
	ComputeChecksums bool
}

// SerializeBuffer accumulates a packet back to front: each layer
// prepends its header in front of what is already present, so layers
// serialize innermost-first (payload, TCP, IPv6, Ethernet), exactly as
// in gopacket.
type SerializeBuffer struct {
	buf   []byte
	start int
}

// NewSerializeBuffer returns a buffer with room to prepend
// expectedPrepend bytes without copying.
func NewSerializeBuffer(expectedPrepend int) *SerializeBuffer {
	if expectedPrepend < 0 {
		expectedPrepend = 0
	}
	return &SerializeBuffer{buf: make([]byte, expectedPrepend), start: expectedPrepend}
}

// Bytes returns the serialized packet so far. The slice is valid until
// the next Prepend or Clear call.
func (b *SerializeBuffer) Bytes() []byte { return b.buf[b.start:] }

// Len returns the current packet length.
func (b *SerializeBuffer) Len() int { return len(b.buf) - b.start }

// Prepend makes room for n bytes in front of the current content and
// returns that region for the caller to fill.
func (b *SerializeBuffer) Prepend(n int) []byte {
	if n <= b.start {
		b.start -= n
		return b.buf[b.start : b.start+n]
	}
	grow := n - b.start
	if grow < 64 {
		grow = 64
	}
	nb := make([]byte, grow+len(b.buf))
	copy(nb[grow:], b.buf)
	b.start += grow
	b.buf = nb
	b.start -= n
	return b.buf[b.start : b.start+n]
}

// Append adds n bytes after the current content and returns the region.
// Used for payloads.
func (b *SerializeBuffer) Append(n int) []byte {
	old := len(b.buf)
	b.buf = append(b.buf, make([]byte, n)...)
	return b.buf[old:]
}

// Clear empties the buffer, retaining capacity for reuse.
func (b *SerializeBuffer) Clear() {
	b.start = len(b.buf)
}

// SerializableLayer is implemented by layers that can write themselves
// onto a SerializeBuffer.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer, opts SerializeOptions) error
	LayerType() LayerType
}

// SerializeLayers clears b and serializes the given layers so they wrap
// each other: the first argument becomes the outermost header.
func SerializeLayers(b *SerializeBuffer, opts SerializeOptions, ls ...SerializableLayer) error {
	b.Clear()
	for i := len(ls) - 1; i >= 0; i-- {
		if err := ls[i].SerializeTo(b, opts); err != nil {
			return fmt.Errorf("serializing %v: %w", ls[i].LayerType(), err)
		}
	}
	return nil
}

// Payload is a raw application payload used as the innermost layer.
type Payload []byte

// LayerType implements SerializableLayer.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	copy(b.Prepend(len(p)), p)
	return nil
}
