package layers

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// TCPFlags is the 8-bit TCP flags field.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// String renders set flags, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagFIN, "FIN"}, {FlagSYN, "SYN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"},
		{FlagACK, "ACK"}, {FlagURG, "URG"}, {FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	out := ""
	for _, n := range names {
		if f&n.bit != 0 {
			if out != "" {
				out += "|"
			}
			out += n.name
		}
	}
	if out == "" {
		return "none"
	}
	return out
}

// TCP is a decoded TCP header. Options are kept as raw bytes aliasing
// the input.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            TCPFlags
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte

	payload []byte
	netSrc  netip.Addr
	netDst  netip.Addr
	hasNet  bool
}

const tcpMinHeaderLen = 20

// LayerType implements SerializableLayer.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// Payload returns the TCP payload bytes.
func (t *TCP) Payload() []byte { return t.payload }

// SetNetworkLayerForChecksum provides the IPv6 addresses used in the
// pseudo-header when serializing with ComputeChecksums.
func (t *TCP) SetNetworkLayerForChecksum(ip *IPv6) {
	t.netSrc, t.netDst, t.hasNet = ip.Src, ip.Dst, true
}

// DecodeFromBytes parses a TCP header.
func (t *TCP) DecodeFromBytes(data []byte) error {
	if len(data) < tcpMinHeaderLen {
		return fmt.Errorf("tcp header: %w", ErrTruncated)
	}
	t.SrcPort = binary.BigEndian.Uint16(data[0:2])
	t.DstPort = binary.BigEndian.Uint16(data[2:4])
	t.Seq = binary.BigEndian.Uint32(data[4:8])
	t.Ack = binary.BigEndian.Uint32(data[8:12])
	t.DataOffset = data[12] >> 4
	hlen := int(t.DataOffset) * 4
	if hlen < tcpMinHeaderLen || hlen > len(data) {
		return fmt.Errorf("tcp data offset %d: %w", t.DataOffset, ErrBadHeaderSize)
	}
	t.Flags = TCPFlags(data[13])
	t.Window = binary.BigEndian.Uint16(data[14:16])
	t.Checksum = binary.BigEndian.Uint16(data[16:18])
	t.Urgent = binary.BigEndian.Uint16(data[18:20])
	t.Options = data[tcpMinHeaderLen:hlen]
	t.payload = data[hlen:]
	return nil
}

// SerializeTo prepends the TCP header. Options must be a multiple of 4
// bytes. With ComputeChecksums set, SetNetworkLayerForChecksum must
// have been called.
func (t *TCP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("tcp serialize: options length %d: %w", len(t.Options), ErrBadHeaderSize)
	}
	hlen := tcpMinHeaderLen + len(t.Options)
	if opts.FixLengths {
		t.DataOffset = uint8(hlen / 4)
	}
	h := b.Prepend(hlen)
	binary.BigEndian.PutUint16(h[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], t.DstPort)
	binary.BigEndian.PutUint32(h[4:8], t.Seq)
	binary.BigEndian.PutUint32(h[8:12], t.Ack)
	h[12] = t.DataOffset << 4
	h[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(h[14:16], t.Window)
	binary.BigEndian.PutUint16(h[16:18], 0)
	binary.BigEndian.PutUint16(h[18:20], t.Urgent)
	copy(h[tcpMinHeaderLen:], t.Options)
	if opts.ComputeChecksums {
		if !t.hasNet {
			return fmt.Errorf("tcp serialize: checksum requested without network layer")
		}
		t.Checksum = transportChecksum(t.netSrc, t.netDst, ProtoTCP, b.Bytes())
	}
	binary.BigEndian.PutUint16(h[16:18], t.Checksum)
	return nil
}

// VerifyChecksum recomputes the checksum over the given full segment
// (header+payload) and reports whether it is consistent.
func (t *TCP) VerifyChecksum(src, dst netip.Addr, segment []byte) bool {
	return transportChecksum(src, dst, ProtoTCP, segment) == 0
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16

	payload []byte
	netSrc  netip.Addr
	netDst  netip.Addr
	hasNet  bool
}

const udpHeaderLen = 8

// LayerType implements SerializableLayer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// Payload returns the UDP payload bytes.
func (u *UDP) Payload() []byte { return u.payload }

// SetNetworkLayerForChecksum provides the IPv6 addresses used in the
// pseudo-header when serializing with ComputeChecksums.
func (u *UDP) SetNetworkLayerForChecksum(ip *IPv6) {
	u.netSrc, u.netDst, u.hasNet = ip.Src, ip.Dst, true
}

// DecodeFromBytes parses a UDP header.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < udpHeaderLen {
		return fmt.Errorf("udp header: %w", ErrTruncated)
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.Length = binary.BigEndian.Uint16(data[4:6])
	u.Checksum = binary.BigEndian.Uint16(data[6:8])
	if int(u.Length) < udpHeaderLen || int(u.Length) > len(data) {
		return fmt.Errorf("udp length %d: %w", u.Length, ErrBadHeaderSize)
	}
	u.payload = data[udpHeaderLen:u.Length]
	return nil
}

// SerializeTo prepends the UDP header.
func (u *UDP) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if opts.FixLengths {
		if b.Len()+udpHeaderLen > 0xFFFF {
			return fmt.Errorf("udp serialize: payload too large")
		}
		u.Length = uint16(b.Len() + udpHeaderLen)
	}
	h := b.Prepend(udpHeaderLen)
	binary.BigEndian.PutUint16(h[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(h[2:4], u.DstPort)
	binary.BigEndian.PutUint16(h[4:6], u.Length)
	binary.BigEndian.PutUint16(h[6:8], 0)
	if opts.ComputeChecksums {
		if !u.hasNet {
			return fmt.Errorf("udp serialize: checksum requested without network layer")
		}
		u.Checksum = transportChecksum(u.netSrc, u.netDst, ProtoUDP, b.Bytes())
		if u.Checksum == 0 {
			u.Checksum = 0xFFFF // RFC 8200: zero means "no checksum", transmit as all-ones
		}
	}
	binary.BigEndian.PutUint16(h[6:8], u.Checksum)
	return nil
}

// VerifyChecksum recomputes the checksum over the given full datagram
// and reports whether it is consistent.
func (u *UDP) VerifyChecksum(src, dst netip.Addr, segment []byte) bool {
	return transportChecksum(src, dst, ProtoUDP, segment) == 0
}
