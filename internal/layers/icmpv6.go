package layers

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ICMPv6Type is the ICMPv6 message type.
type ICMPv6Type uint8

// ICMPv6 types relevant to scanning: echo requests are what the MAWI
// ICMPv6 scan peaks consist of.
const (
	ICMPv6DstUnreachable  ICMPv6Type = 1
	ICMPv6PacketTooBig    ICMPv6Type = 2
	ICMPv6TimeExceeded    ICMPv6Type = 3
	ICMPv6ParamProblem    ICMPv6Type = 4
	ICMPv6EchoRequest     ICMPv6Type = 128
	ICMPv6EchoReply       ICMPv6Type = 129
	ICMPv6NeighborSolicit ICMPv6Type = 135
	ICMPv6NeighborAdvert  ICMPv6Type = 136
)

// String names the message type.
func (t ICMPv6Type) String() string {
	switch t {
	case ICMPv6DstUnreachable:
		return "DstUnreachable"
	case ICMPv6PacketTooBig:
		return "PacketTooBig"
	case ICMPv6TimeExceeded:
		return "TimeExceeded"
	case ICMPv6ParamProblem:
		return "ParamProblem"
	case ICMPv6EchoRequest:
		return "EchoRequest"
	case ICMPv6EchoReply:
		return "EchoReply"
	case ICMPv6NeighborSolicit:
		return "NeighborSolicit"
	case ICMPv6NeighborAdvert:
		return "NeighborAdvert"
	default:
		return fmt.Sprintf("ICMPv6Type(%d)", uint8(t))
	}
}

// ICMPv6 is a decoded ICMPv6 message. For echo request/reply the
// Identifier and SeqNumber fields are populated from the body.
type ICMPv6 struct {
	Type       ICMPv6Type
	Code       uint8
	Checksum   uint16
	Identifier uint16 // echo only
	SeqNumber  uint16 // echo only

	body   []byte
	netSrc netip.Addr
	netDst netip.Addr
	hasNet bool
}

const icmpv6HeaderLen = 4

// LayerType implements SerializableLayer.
func (*ICMPv6) LayerType() LayerType { return LayerTypeICMPv6 }

// Payload returns the message body after the 4-byte header.
func (ic *ICMPv6) Payload() []byte { return ic.body }

// SetNetworkLayerForChecksum provides the IPv6 addresses used in the
// pseudo-header when serializing with ComputeChecksums.
func (ic *ICMPv6) SetNetworkLayerForChecksum(ip *IPv6) {
	ic.netSrc, ic.netDst, ic.hasNet = ip.Src, ip.Dst, true
}

// DecodeFromBytes parses an ICMPv6 message.
func (ic *ICMPv6) DecodeFromBytes(data []byte) error {
	if len(data) < icmpv6HeaderLen {
		return fmt.Errorf("icmpv6 header: %w", ErrTruncated)
	}
	ic.Type = ICMPv6Type(data[0])
	ic.Code = data[1]
	ic.Checksum = binary.BigEndian.Uint16(data[2:4])
	ic.body = data[icmpv6HeaderLen:]
	ic.Identifier, ic.SeqNumber = 0, 0
	if ic.Type == ICMPv6EchoRequest || ic.Type == ICMPv6EchoReply {
		if len(ic.body) < 4 {
			return fmt.Errorf("icmpv6 echo body: %w", ErrTruncated)
		}
		ic.Identifier = binary.BigEndian.Uint16(ic.body[0:2])
		ic.SeqNumber = binary.BigEndian.Uint16(ic.body[2:4])
	}
	return nil
}

// SerializeTo prepends the ICMPv6 header. For echo types the
// identifier/sequence pair is prepended as well (callers provide any
// additional echo data as a Payload layer).
func (ic *ICMPv6) SerializeTo(b *SerializeBuffer, opts SerializeOptions) error {
	if ic.Type == ICMPv6EchoRequest || ic.Type == ICMPv6EchoReply {
		e := b.Prepend(4)
		binary.BigEndian.PutUint16(e[0:2], ic.Identifier)
		binary.BigEndian.PutUint16(e[2:4], ic.SeqNumber)
	}
	h := b.Prepend(icmpv6HeaderLen)
	h[0] = uint8(ic.Type)
	h[1] = ic.Code
	binary.BigEndian.PutUint16(h[2:4], 0)
	if opts.ComputeChecksums {
		if !ic.hasNet {
			return fmt.Errorf("icmpv6 serialize: checksum requested without network layer")
		}
		ic.Checksum = transportChecksum(ic.netSrc, ic.netDst, ProtoICMPv6, b.Bytes())
	}
	binary.BigEndian.PutUint16(h[2:4], ic.Checksum)
	return nil
}

// VerifyChecksum recomputes the checksum over the full message and
// reports whether it is consistent.
func (ic *ICMPv6) VerifyChecksum(src, dst netip.Addr, segment []byte) bool {
	return transportChecksum(src, dst, ProtoICMPv6, segment) == 0
}
