package layers

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"

	"v6scan/internal/netaddr6"
)

var (
	testSrc = netaddr6.MustAddr("2001:db8:1::1")
	testDst = netaddr6.MustAddr("2001:db8:2::2")
)

func TestBuildAndParseTCPSYN(t *testing.T) {
	frame, err := BuildTCPSYN(testSrc, testDst, 40000, 22, BuildOptions{Link: LinkTypeEthernet})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(frame, LinkTypeEthernet, &d); err != nil {
		t.Fatal(err)
	}
	if !d.HasEthernet || d.Ethernet.EtherType != EtherTypeIPv6 {
		t.Error("ethernet layer wrong")
	}
	if d.IPv6.Src != testSrc || d.IPv6.Dst != testDst {
		t.Errorf("addresses: %v → %v", d.IPv6.Src, d.IPv6.Dst)
	}
	if d.Transport != ProtoTCP || d.TCP.DstPort != 22 || d.TCP.SrcPort != 40000 {
		t.Errorf("transport: %v %d→%d", d.Transport, d.SrcPort(), d.DstPort())
	}
	if d.TCP.Flags != FlagSYN {
		t.Errorf("flags: %v", d.TCP.Flags)
	}
	// Checksum must verify over the TCP segment.
	seg := frame[ethernetHeaderLen+ipv6HeaderLen:]
	if !d.TCP.VerifyChecksum(testSrc, testDst, seg) {
		t.Error("TCP checksum does not verify")
	}
}

func TestBuildAndParseUDP(t *testing.T) {
	frame, err := BuildUDPProbe(testSrc, testDst, 5353, 500, BuildOptions{PayloadLen: 16})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(frame, LinkTypeRaw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Transport != ProtoUDP || d.UDP.DstPort != 500 {
		t.Errorf("udp: %v %d", d.Transport, d.UDP.DstPort)
	}
	if len(d.UDP.Payload()) != 16 {
		t.Errorf("payload len %d", len(d.UDP.Payload()))
	}
	if !d.UDP.VerifyChecksum(testSrc, testDst, frame[ipv6HeaderLen:]) {
		t.Error("UDP checksum does not verify")
	}
}

func TestBuildAndParseICMPv6Echo(t *testing.T) {
	frame, err := BuildICMPv6Echo(testSrc, testDst, 77, 3, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(frame, LinkTypeRaw, &d); err != nil {
		t.Fatal(err)
	}
	if d.Transport != ProtoICMPv6 || d.ICMPv6.Type != ICMPv6EchoRequest {
		t.Errorf("icmp: %v %v", d.Transport, d.ICMPv6.Type)
	}
	if d.ICMPv6.Identifier != 77 || d.ICMPv6.SeqNumber != 3 {
		t.Errorf("echo id/seq: %d/%d", d.ICMPv6.Identifier, d.ICMPv6.SeqNumber)
	}
	if !d.ICMPv6.VerifyChecksum(testSrc, testDst, frame[ipv6HeaderLen:]) {
		t.Error("ICMPv6 checksum does not verify")
	}
	if d.SrcPort() != 0 || d.DstPort() != 0 {
		t.Error("ICMPv6 should report zero ports")
	}
}

func TestParseExtensionChain(t *testing.T) {
	ip := &IPv6{NextHeader: ProtoHopByHop, HopLimit: 64, Src: testSrc, Dst: testDst}
	tcp := &TCP{SrcPort: 1, DstPort: 2, DataOffset: 5, Flags: FlagSYN}
	tcp.SetNetworkLayerForChecksum(ip)
	hbh := NewPadExtension(ProtoHopByHop, ProtoDestOpts)
	dst := NewPadExtension(ProtoDestOpts, ProtoTCP)
	buf := NewSerializeBuffer(128)
	if err := SerializeLayers(buf, buildSerializeOpts, ip, hbh, dst, tcp); err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(buf.Bytes(), LinkTypeRaw, &d); err != nil {
		t.Fatal(err)
	}
	if d.NumExtensions != 2 {
		t.Fatalf("extensions: %d", d.NumExtensions)
	}
	if d.Extensions[0].Protocol != ProtoHopByHop || d.Extensions[1].Protocol != ProtoDestOpts {
		t.Errorf("chain: %v %v", d.Extensions[0].Protocol, d.Extensions[1].Protocol)
	}
	if d.Transport != ProtoTCP || d.TCP.DstPort != 2 {
		t.Errorf("transport after chain: %v", d.Transport)
	}
}

func TestParseFragmentHeader(t *testing.T) {
	ip := &IPv6{NextHeader: ProtoFragment, HopLimit: 64, Src: testSrc, Dst: testDst}
	frag := &Extension{
		Protocol:   ProtoFragment,
		NextHeader: ProtoUDP,
		Contents:   []byte{uint8(ProtoUDP), 0, 0, 0, 0, 0, 0, 1},
	}
	udp := &UDP{SrcPort: 9, DstPort: 53}
	udp.SetNetworkLayerForChecksum(ip)
	buf := NewSerializeBuffer(128)
	if err := SerializeLayers(buf, buildSerializeOpts, ip, frag, udp); err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(buf.Bytes(), LinkTypeRaw, &d); err != nil {
		t.Fatal(err)
	}
	if d.NumExtensions != 1 || d.Extensions[0].Protocol != ProtoFragment {
		t.Fatalf("fragment not decoded: %+v", d.NumExtensions)
	}
	if d.Transport != ProtoUDP {
		t.Errorf("transport: %v", d.Transport)
	}
}

func TestParseTruncated(t *testing.T) {
	frame, _ := BuildTCPSYN(testSrc, testDst, 1, 2, BuildOptions{Link: LinkTypeEthernet})
	for _, n := range []int{0, 5, ethernetHeaderLen + 3, ethernetHeaderLen + ipv6HeaderLen + 2} {
		var d Decoded
		err := ParseFrame(frame[:n], LinkTypeEthernet, &d)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("truncated at %d: err = %v", n, err)
		}
	}
}

func TestParseNotIPv6(t *testing.T) {
	var d Decoded
	// IPv4 version nibble.
	pkt := make([]byte, 40)
	pkt[0] = 0x45
	if err := ParseFrame(pkt, LinkTypeRaw, &d); !errors.Is(err, ErrNotIPv6) {
		t.Errorf("v4 raw: %v", err)
	}
	// Ethernet with IPv4 ethertype.
	frame := make([]byte, 60)
	frame[12], frame[13] = 0x08, 0x00
	if err := ParseFrame(frame, LinkTypeEthernet, &d); !errors.Is(err, ErrNotIPv6) {
		t.Errorf("v4 eth: %v", err)
	}
}

func TestParseUnknownTransportNotError(t *testing.T) {
	ip := &IPv6{NextHeader: IPProtocol(132) /* SCTP */, HopLimit: 64, Src: testSrc, Dst: testDst}
	buf := NewSerializeBuffer(64)
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, ip, Payload(make([]byte, 12))); err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(buf.Bytes(), LinkTypeRaw, &d); err != nil {
		t.Fatalf("unknown transport should parse: %v", err)
	}
	if d.Transport != IPProtocol(132) {
		t.Errorf("transport: %v", d.Transport)
	}
}

func TestExtensionChainTooLong(t *testing.T) {
	ip := &IPv6{NextHeader: ProtoDestOpts, HopLimit: 64, Src: testSrc, Dst: testDst}
	ls := []SerializableLayer{ip}
	for i := 0; i < maxExtensionHeaders+1; i++ {
		next := ProtoDestOpts
		if i == maxExtensionHeaders {
			next = ProtoNoNext
		}
		ls = append(ls, NewPadExtension(ProtoDestOpts, next))
	}
	buf := NewSerializeBuffer(256)
	if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, ls...); err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(buf.Bytes(), LinkTypeRaw, &d); !errors.Is(err, ErrChainTooLong) {
		t.Errorf("err = %v, want ErrChainTooLong", err)
	}
}

func TestEthernetPaddingRespectsIPv6Length(t *testing.T) {
	frame, err := BuildTCPSYN(testSrc, testDst, 1, 2, BuildOptions{Link: LinkTypeEthernet})
	if err != nil {
		t.Fatal(err)
	}
	padded := append(frame, make([]byte, 10)...) // Ethernet min-frame padding
	var d Decoded
	if err := ParseFrame(padded, LinkTypeEthernet, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.TCP.Payload()) != 0 {
		t.Errorf("padding leaked into payload: %d bytes", len(d.TCP.Payload()))
	}
}

func TestTCPRoundTripQuick(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16) bool {
		ip := &IPv6{NextHeader: ProtoTCP, HopLimit: 1, Src: testSrc, Dst: testDst}
		in := &TCP{SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack, DataOffset: 5, Flags: TCPFlags(flags), Window: win}
		in.SetNetworkLayerForChecksum(ip)
		buf := NewSerializeBuffer(64)
		if err := SerializeLayers(buf, buildSerializeOpts, ip, in); err != nil {
			return false
		}
		var d Decoded
		if err := ParseFrame(buf.Bytes(), LinkTypeRaw, &d); err != nil {
			return false
		}
		out := &d.TCP
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Flags == TCPFlags(flags) && out.Window == win &&
			out.VerifyChecksum(testSrc, testDst, buf.Bytes()[ipv6HeaderLen:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv6RoundTripQuick(t *testing.T) {
	f := func(hi1, lo1, hi2, lo2 uint64, tc uint8, fl uint32, hop uint8) bool {
		src := netaddr6.U128{Hi: hi1, Lo: lo1}.ToAddr()
		dst := netaddr6.U128{Hi: hi2, Lo: lo2}.ToAddr()
		in := &IPv6{TrafficClass: tc, FlowLabel: fl & 0xFFFFF, NextHeader: ProtoNoNext, HopLimit: hop, Src: src, Dst: dst}
		buf := NewSerializeBuffer(64)
		if err := SerializeLayers(buf, SerializeOptions{FixLengths: true}, in); err != nil {
			return false
		}
		var out IPv6
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.Src == src && out.Dst == dst && out.TrafficClass == tc &&
			out.FlowLabel == fl&0xFFFFF && out.HopLimit == hop && out.Version == 6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071-style sanity: checksum of a buffer containing its own
	// checksum must verify (sum to 0xFFFF before complement).
	src := netaddr6.MustAddr("fe80::1")
	dst := netaddr6.MustAddr("fe80::2")
	seg := []byte{0x10, 0x92, 0x00, 0x07, 0, 0, 0, 0, 0, 0, 0, 0, 0x50, 0x02, 0xff, 0xff, 0, 0, 0, 0}
	c := transportChecksum(src, dst, ProtoTCP, seg)
	seg[16], seg[17] = byte(c>>8), byte(c)
	if transportChecksum(src, dst, ProtoTCP, seg) != 0 {
		t.Error("checksum self-verification failed")
	}
	// Odd-length segment exercises the trailing-byte path.
	odd := append(seg, 0xAB)
	c2 := transportChecksum(src, dst, ProtoTCP, odd[:len(odd)-1])
	_ = c2
	oddC := transportChecksum(src, dst, ProtoTCP, odd)
	if oddC == 0 {
		t.Error("odd checksum unexpectedly zero")
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBuffer(2)
	copy(b.Prepend(4), []byte{1, 2, 3, 4})
	copy(b.Prepend(3), []byte{5, 6, 7})
	got := b.Bytes()
	want := []byte{5, 6, 7, 1, 2, 3, 4}
	if string(got) != string(want) {
		t.Errorf("got %v want %v", got, want)
	}
	b.Clear()
	if b.Len() != 0 {
		t.Error("clear failed")
	}
	copy(b.Append(2), []byte{9, 9})
	if b.Len() != 2 {
		t.Error("append after clear failed")
	}
}

func TestTCPOptionsRoundTrip(t *testing.T) {
	ip := &IPv6{NextHeader: ProtoTCP, HopLimit: 64, Src: testSrc, Dst: testDst}
	in := &TCP{SrcPort: 1, DstPort: 2, Flags: FlagSYN, Options: []byte{2, 4, 0x05, 0xb4}} // MSS 1460
	in.SetNetworkLayerForChecksum(ip)
	buf := NewSerializeBuffer(64)
	if err := SerializeLayers(buf, buildSerializeOpts, ip, in); err != nil {
		t.Fatal(err)
	}
	var d Decoded
	if err := ParseFrame(buf.Bytes(), LinkTypeRaw, &d); err != nil {
		t.Fatal(err)
	}
	if string(d.TCP.Options) != string(in.Options) {
		t.Errorf("options: %v", d.TCP.Options)
	}
	if d.TCP.DataOffset != 6 {
		t.Errorf("data offset: %d", d.TCP.DataOffset)
	}
	// Misaligned options must be rejected.
	bad := &TCP{Options: []byte{1, 2, 3}}
	if err := bad.SerializeTo(NewSerializeBuffer(64), SerializeOptions{}); !errors.Is(err, ErrBadHeaderSize) {
		t.Errorf("misaligned options: %v", err)
	}
}

func TestTCPFlagsString(t *testing.T) {
	if got := (FlagSYN | FlagACK).String(); got != "SYN|ACK" {
		t.Errorf("got %q", got)
	}
	if got := TCPFlags(0).String(); got != "none" {
		t.Errorf("got %q", got)
	}
}

func TestStringers(t *testing.T) {
	if ProtoTCP.String() != "TCP" || ProtoICMPv6.String() != "ICMPv6" {
		t.Error("proto names")
	}
	if IPProtocol(200).String() != "Proto(200)" {
		t.Error("unknown proto name")
	}
	if LayerTypeIPv6.String() != "IPv6" || LayerType(99).String() != "LayerType(99)" {
		t.Error("layer type names")
	}
	if ICMPv6EchoRequest.String() != "EchoRequest" || ICMPv6Type(7).String() != "ICMPv6Type(7)" {
		t.Error("icmp type names")
	}
	m := MACAddr{0xaa, 0xbb, 0xcc, 0, 1, 2}
	if m.String() != "aa:bb:cc:00:01:02" {
		t.Errorf("mac: %s", m)
	}
}

func TestChecksumRequiresNetworkLayer(t *testing.T) {
	tcp := &TCP{DataOffset: 5}
	err := tcp.SerializeTo(NewSerializeBuffer(64), SerializeOptions{ComputeChecksums: true})
	if err == nil {
		t.Error("TCP checksum without network layer accepted")
	}
	udp := &UDP{}
	if err := udp.SerializeTo(NewSerializeBuffer(64), SerializeOptions{ComputeChecksums: true}); err == nil {
		t.Error("UDP checksum without network layer accepted")
	}
	ic := &ICMPv6{Type: ICMPv6EchoRequest}
	if err := ic.SerializeTo(NewSerializeBuffer(64), SerializeOptions{ComputeChecksums: true}); err == nil {
		t.Error("ICMPv6 checksum without network layer accepted")
	}
}

func TestIPv6SerializeRejectsIPv4(t *testing.T) {
	ip := &IPv6{Src: netip.MustParseAddr("10.0.0.1"), Dst: testDst}
	if err := ip.SerializeTo(NewSerializeBuffer(64), SerializeOptions{}); err == nil {
		t.Error("IPv4 src accepted")
	}
}

func TestUDPBadLengthField(t *testing.T) {
	// Length field smaller than header must error.
	raw := []byte{0, 1, 0, 2, 0, 4, 0, 0}
	var u UDP
	if err := u.DecodeFromBytes(raw); !errors.Is(err, ErrBadHeaderSize) {
		t.Errorf("got %v", err)
	}
}

func TestUnknownLinkType(t *testing.T) {
	var d Decoded
	if err := ParseFrame(make([]byte, 64), LinkType(999), &d); !errors.Is(err, ErrUnknownNext) {
		t.Errorf("got %v", err)
	}
}
