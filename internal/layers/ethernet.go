package layers

import (
	"encoding/binary"
	"fmt"
)

// EtherType identifies the protocol carried in an Ethernet frame.
type EtherType uint16

// EtherTypes relevant to the telescope.
const (
	EtherTypeIPv4 EtherType = 0x0800
	EtherTypeIPv6 EtherType = 0x86DD
)

// MACAddr is a 48-bit Ethernet address.
type MACAddr [6]byte

// String formats the address as colon-separated hex.
func (m MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is a decoded Ethernet II header. Decoding is zero-copy: the
// payload slice aliases the input buffer.
type Ethernet struct {
	Dst, Src  MACAddr
	EtherType EtherType

	payload []byte
}

const ethernetHeaderLen = 14

// LayerType implements SerializableLayer.
func (*Ethernet) LayerType() LayerType { return LayerTypeEthernet }

// Payload returns the bytes following the Ethernet header.
func (e *Ethernet) Payload() []byte { return e.payload }

// DecodeFromBytes parses an Ethernet II header.
func (e *Ethernet) DecodeFromBytes(data []byte) error {
	if len(data) < ethernetHeaderLen {
		return fmt.Errorf("ethernet header: %w", ErrTruncated)
	}
	copy(e.Dst[:], data[0:6])
	copy(e.Src[:], data[6:12])
	e.EtherType = EtherType(binary.BigEndian.Uint16(data[12:14]))
	e.payload = data[ethernetHeaderLen:]
	return nil
}

// SerializeTo prepends the Ethernet header.
func (e *Ethernet) SerializeTo(b *SerializeBuffer, _ SerializeOptions) error {
	h := b.Prepend(ethernetHeaderLen)
	copy(h[0:6], e.Dst[:])
	copy(h[6:12], e.Src[:])
	binary.BigEndian.PutUint16(h[12:14], uint16(e.EtherType))
	return nil
}
