package layers

import (
	"net/netip"
)

// This file provides convenience packet builders used by the telescope,
// scanner, and MAWI simulators. Each returns a freshly allocated wire
// frame; simulators that need zero-allocation hot paths use
// SerializeLayers with reused buffers instead.

// BuildOptions configures the convenience builders.
type BuildOptions struct {
	Link       LinkType // LinkTypeEthernet or LinkTypeRaw (default raw)
	HopLimit   uint8    // default 64
	PayloadLen int      // application payload bytes (zero-filled)
}

func (o BuildOptions) hopLimit() uint8 {
	if o.HopLimit == 0 {
		return 64
	}
	return o.HopLimit
}

var buildSerializeOpts = SerializeOptions{FixLengths: true, ComputeChecksums: true}

// BuildTCPSYN constructs a TCP SYN probe — the archetypal scan packet —
// from src to dst:port.
func BuildTCPSYN(src, dst netip.Addr, srcPort, dstPort uint16, opt BuildOptions) ([]byte, error) {
	ip := &IPv6{
		NextHeader: ProtoTCP,
		HopLimit:   opt.hopLimit(),
		Src:        src,
		Dst:        dst,
	}
	tcp := &TCP{
		SrcPort:    srcPort,
		DstPort:    dstPort,
		Seq:        uint32(srcPort)<<16 | uint32(dstPort), // deterministic, irrelevant to detection
		DataOffset: 5,
		Flags:      FlagSYN,
		Window:     64240,
	}
	tcp.SetNetworkLayerForChecksum(ip)
	return buildFrame(opt, ip, tcp, make(Payload, opt.PayloadLen))
}

// BuildUDPProbe constructs a UDP probe from src to dst:port.
func BuildUDPProbe(src, dst netip.Addr, srcPort, dstPort uint16, opt BuildOptions) ([]byte, error) {
	ip := &IPv6{
		NextHeader: ProtoUDP,
		HopLimit:   opt.hopLimit(),
		Src:        src,
		Dst:        dst,
	}
	udp := &UDP{SrcPort: srcPort, DstPort: dstPort}
	udp.SetNetworkLayerForChecksum(ip)
	return buildFrame(opt, ip, udp, make(Payload, opt.PayloadLen))
}

// BuildICMPv6Echo constructs an ICMPv6 echo request, the probe type of
// the MAWI ICMPv6 scan peaks.
func BuildICMPv6Echo(src, dst netip.Addr, id, seq uint16, opt BuildOptions) ([]byte, error) {
	ip := &IPv6{
		NextHeader: ProtoICMPv6,
		HopLimit:   opt.hopLimit(),
		Src:        src,
		Dst:        dst,
	}
	ic := &ICMPv6{Type: ICMPv6EchoRequest, Identifier: id, SeqNumber: seq}
	ic.SetNetworkLayerForChecksum(ip)
	return buildFrame(opt, ip, ic, make(Payload, opt.PayloadLen))
}

func buildFrame(opt BuildOptions, ip *IPv6, rest ...SerializableLayer) ([]byte, error) {
	buf := NewSerializeBuffer(ethernetHeaderLen + ipv6HeaderLen + 40)
	ls := make([]SerializableLayer, 0, len(rest)+2)
	if opt.Link == LinkTypeEthernet {
		ls = append(ls, &Ethernet{
			Dst:       MACAddr{0x02, 0, 0, 0, 0, 0x01},
			Src:       MACAddr{0x02, 0, 0, 0, 0, 0x02},
			EtherType: EtherTypeIPv6,
		})
	}
	ls = append(ls, ip)
	ls = append(ls, rest...)
	if err := SerializeLayers(buf, buildSerializeOpts, ls...); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}
